// Unit tests for src/cli: argument parsing, value parsers and the
// in-process command driver.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "cli/args.hpp"
#include "cli/cli.hpp"
#include "service/batch_report.hpp"

namespace mlcd::cli {
namespace {

Args parse(std::vector<const char*> argv,
           const std::vector<std::string>& flags = {}) {
  argv.insert(argv.begin(), "mlcd");
  return Args::parse(static_cast<int>(argv.size()), argv.data(), flags);
}

// ------------------------------------------------------------------- Args

TEST(Args, InlineAndSeparateValues) {
  const Args a = parse({"deploy", "--model=resnet", "--budget", "100"});
  EXPECT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "deploy");
  EXPECT_EQ(a.get("model").value(), "resnet");
  EXPECT_EQ(a.get("budget").value(), "100");
}

TEST(Args, FlagsTakeNoValue) {
  const Args a = parse({"deploy", "--trace", "--model", "bert"},
                       {"trace"});
  EXPECT_TRUE(a.has("trace"));
  EXPECT_EQ(a.get("model").value(), "bert");
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(parse({"--model"}), std::invalid_argument);
}

TEST(Args, BareDashesThrow) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Args, GetOrFallsBack) {
  const Args a = parse({});
  EXPECT_EQ(a.get_or("platform", "tensorflow"), "tensorflow");
  EXPECT_FALSE(a.get("platform").has_value());
}

TEST(Args, NamesListsOptions) {
  const Args a = parse({"--alpha=1", "--beta=2"});
  const auto names = a.names();
  EXPECT_EQ(names.size(), 2u);
}

// ------------------------------------------------------------- value parse

TEST(ValueParse, Durations) {
  EXPECT_DOUBLE_EQ(parse_duration_hours("6h"), 6.0);
  EXPECT_DOUBLE_EQ(parse_duration_hours("90m"), 1.5);
  EXPECT_DOUBLE_EQ(parse_duration_hours("45s"), 45.0 / 3600.0);
  EXPECT_DOUBLE_EQ(parse_duration_hours("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_duration_hours("1.5H"), 1.5);
}

TEST(ValueParse, DurationErrors) {
  EXPECT_THROW(parse_duration_hours(""), std::invalid_argument);
  EXPECT_THROW(parse_duration_hours("abc"), std::invalid_argument);
  EXPECT_THROW(parse_duration_hours("-5h"), std::invalid_argument);
  EXPECT_THROW(parse_duration_hours("5h30m"), std::invalid_argument);
}

TEST(ValueParse, Money) {
  EXPECT_DOUBLE_EQ(parse_money("$120"), 120.0);
  EXPECT_DOUBLE_EQ(parse_money("99.50"), 99.5);
  EXPECT_THROW(parse_money("$"), std::invalid_argument);
  EXPECT_THROW(parse_money("-3"), std::invalid_argument);
  EXPECT_THROW(parse_money(""), std::invalid_argument);
}

TEST(ValueParse, Lists) {
  const auto v = parse_list("a,b,c");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], "b");
  EXPECT_TRUE(parse_list("").empty());
  EXPECT_EQ(parse_list("one").size(), 1u);
  EXPECT_EQ(parse_list("a,,b").size(), 2u);  // empty segment dropped
}

TEST(ValueParse, PositiveInt) {
  EXPECT_EQ(parse_positive_int("42"), 42);
  EXPECT_THROW(parse_positive_int("0"), std::invalid_argument);
  EXPECT_THROW(parse_positive_int("3.5"), std::invalid_argument);
  EXPECT_THROW(parse_positive_int("x"), std::invalid_argument);
}

TEST(ValueParse, Fractions) {
  EXPECT_DOUBLE_EQ(parse_fraction("0"), 0.0);
  EXPECT_DOUBLE_EQ(parse_fraction("0.3"), 0.3);
  EXPECT_THROW(parse_fraction("1"), std::invalid_argument);
  EXPECT_THROW(parse_fraction("1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fraction("-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fraction(""), std::invalid_argument);
  EXPECT_THROW(parse_fraction("half"), std::invalid_argument);
  // NaN compares false to every bound, so a naive range check would let
  // it through; the parser must reject it explicitly.
  EXPECT_THROW(parse_fraction("nan"), std::invalid_argument);
}

TEST(ValueParse, RejectsNonFiniteAndOverflowingNumbers) {
  EXPECT_THROW(parse_money("nan"), std::invalid_argument);
  EXPECT_THROW(parse_money("inf"), std::invalid_argument);
  EXPECT_THROW(parse_money("1e999"), std::invalid_argument);
  EXPECT_THROW(parse_duration_hours("nan"), std::invalid_argument);
  EXPECT_THROW(parse_duration_hours("inf"), std::invalid_argument);
  EXPECT_THROW(parse_positive_int("99999999999999999999"),
               std::invalid_argument);
}

// -------------------------------------------------------------------- run

int drive(std::vector<const char*> argv, std::string* out_text = nullptr,
          std::string* err_text = nullptr) {
  argv.insert(argv.begin(), "mlcd");
  std::ostringstream out, err;
  const int rc =
      run(static_cast<int>(argv.size()), argv.data(), out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return rc;
}

TEST(CliRun, HelpPrintsUsage) {
  std::string out;
  EXPECT_EQ(drive({"help"}, &out), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

TEST(CliRun, NoArgsIsHelp) {
  std::string out;
  EXPECT_EQ(drive({}, &out), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

TEST(CliRun, UnknownCommandIsUsageError) {
  std::string err;
  EXPECT_EQ(drive({"frobnicate"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(CliRun, DeployRequiresModel) {
  std::string err;
  EXPECT_EQ(drive({"deploy"}, nullptr, &err), 2);
  EXPECT_NE(err.find("--model"), std::string::npos);
}

TEST(CliRun, DeployEndToEnd) {
  std::string out;
  const int rc = drive({"deploy", "--model", "resnet", "--budget", "$100",
                        "--types", "c5.4xlarge", "--seed", "7"},
                       &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("MLCD run report"), std::string::npos);
  EXPECT_NE(out.find("constraints met"), std::string::npos);
}

TEST(CliRun, DeployWithTracePrintsSteps) {
  std::string out;
  const int rc = drive({"deploy", "--model", "resnet", "--types",
                        "c5.4xlarge", "--trace"},
                       &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("search trace"), std::string::npos);
  EXPECT_NE(out.find("init"), std::string::npos);
}

TEST(CliRun, DeployUnknownModelIsUsageError) {
  std::string err;
  EXPECT_EQ(drive({"deploy", "--model", "vgg"}, nullptr, &err), 2);
}

TEST(CliRun, DeployBadBudgetIsUsageError) {
  std::string err;
  EXPECT_EQ(drive({"deploy", "--model", "resnet", "--budget", "lots"},
                  nullptr, &err),
            2);
}

TEST(CliRun, DeployJsonMode) {
  std::string out;
  const int rc = drive({"deploy", "--model", "resnet", "--types",
                        "c5.4xlarge", "--budget", "100", "--json"},
                       &out);
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(out.front(), '{');
  EXPECT_NE(out.find("\"constraints_met\":true"), std::string::npos);
  EXPECT_EQ(out.find("MLCD run report"), std::string::npos);
}

TEST(CliRun, ModelsListsZoo) {
  std::string out;
  EXPECT_EQ(drive({"models"}, &out), 0);
  EXPECT_NE(out.find("resnet"), std::string::npos);
  EXPECT_NE(out.find("bert"), std::string::npos);
}

TEST(CliRun, InstancesFilterByFamily) {
  std::string out;
  EXPECT_EQ(drive({"instances", "--family", "p3"}, &out), 0);
  EXPECT_NE(out.find("p3.2xlarge"), std::string::npos);
  EXPECT_EQ(out.find("c5.xlarge"), std::string::npos);
}

TEST(CliRun, ExportAndLoadCustomCatalog) {
  const std::string path = testing::TempDir() + "/mlcd_cli_catalog.csv";
  std::string out;
  ASSERT_EQ(drive({"export-catalog", "--out", path.c_str()}, &out), 0);
  EXPECT_NE(out.find("62 instance types"), std::string::npos);

  // Deploying against the exported catalog behaves like the default.
  std::string deploy_out;
  const int rc = drive({"deploy", "--model", "resnet", "--types",
                        "c5.4xlarge", "--catalog", path.c_str(), "--seed",
                        "7"},
                       &deploy_out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(deploy_out.find("c5.4xlarge"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CliRun, ExportCatalogRequiresOut) {
  std::string err;
  EXPECT_EQ(drive({"export-catalog"}, nullptr, &err), 2);
}

TEST(CliRun, SaveAndWarmStartFlow) {
  const std::string path = testing::TempDir() + "/mlcd_cli_trace.csv";
  std::string out;
  ASSERT_EQ(drive({"deploy", "--model", "resnet", "--types", "c5.4xlarge",
                   "--save-trace", path.c_str()},
                  &out),
            0);
  std::string warm_out;
  const int rc = drive({"deploy", "--model", "resnet", "--types",
                        "c5.4xlarge", "--warm-start", path.c_str(),
                        "--trace", "--seed", "11"},
                       &warm_out);
  EXPECT_EQ(rc, 0);
  // Warm-started runs skip the mandatory init/curve waves.
  EXPECT_EQ(warm_out.find(" init "), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CliRun, ChaosFlagsRoundTripIntoJson) {
  std::string out;
  const int rc = drive({"deploy", "--model", "resnet", "--types",
                        "c5.4xlarge", "--budget", "100", "--seed", "7",
                        "--failure-rate", "0.25", "--max-retries", "4",
                        "--chaos-seed", "99", "--json"},
                       &out);
  EXPECT_EQ(rc, 0);
  // The request echoes the chaos knobs...
  EXPECT_NE(out.find("\"failure_rate\":0.25"), std::string::npos);
  EXPECT_NE(out.find("\"max_retries\":4"), std::string::npos);
  EXPECT_NE(out.find("\"chaos_seed\":99"), std::string::npos);
  // ...and the result carries per-run and per-step fault accounting.
  EXPECT_NE(out.find("\"probe_attempts\":"), std::string::npos);
  EXPECT_NE(out.find("\"failed_probes\":"), std::string::npos);
  EXPECT_NE(out.find("\"backoff_hours\":"), std::string::npos);
  EXPECT_NE(out.find("\"fault\":"), std::string::npos);
}

TEST(CliRun, ChaosFlagsRejectGarbage) {
  std::string err;
  EXPECT_EQ(drive({"deploy", "--model", "resnet", "--types", "c5.4xlarge",
                   "--failure-rate", "1.5"},
                  nullptr, &err),
            2);
  EXPECT_NE(err.find("parse_fraction"), std::string::npos);
  EXPECT_EQ(drive({"deploy", "--model", "resnet", "--types", "c5.4xlarge",
                   "--max-retries", "0"},
                  nullptr, &err),
            2);
}

TEST(CliRun, CompareRunsAllMethods) {
  std::string out;
  const int rc = drive({"compare", "--model", "resnet", "--types",
                        "c5.4xlarge", "--budget", "120", "--max-nodes",
                        "20"},
                       &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("heterbo"), std::string::npos);
  EXPECT_NE(out.find("conv-bo"), std::string::npos);
  EXPECT_NE(out.find("paleo"), std::string::npos);
}

TEST(CliRun, SearchersListsRegistryWithDescriptions) {
  std::string out;
  EXPECT_EQ(drive({"searchers"}, &out), 0);
  // Every built-in method, each with its one-line description.
  for (const char* method :
       {"heterbo", "conv-bo", "bo-improved", "cherrypick",
        "cherrypick-improved", "random", "exhaustive", "paleo", "pareto"}) {
    EXPECT_NE(out.find(method), std::string::npos) << method;
  }
  EXPECT_NE(out.find("description"), std::string::npos);
  EXPECT_NE(out.find("protective reserve"), std::string::npos);
  EXPECT_NE(out.find("Pareto front"), std::string::npos);
}

TEST(CliRun, BatchRequiresWorkloadFile) {
  std::string err;
  EXPECT_EQ(drive({"batch"}, nullptr, &err), 2);
  EXPECT_NE(err.find("workload"), std::string::npos);
}

TEST(CliRun, BatchMissingFileFailsWithWorkloadExitCode) {
  std::string err;
  // Exit 3: broken workload artifact, distinct from flag mistakes (2).
  EXPECT_EQ(drive({"batch", "/no/such/workload.json"}, nullptr, &err), 3);
  EXPECT_NE(err.find("cannot read"), std::string::npos);
}

TEST(CliRun, BatchMalformedWorkloadIsExitCode3) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string workload = (tmp / "mlcd_cli_batch_malformed.json").string();
  {
    std::ofstream f(workload);
    f << "{\"jobs\": [{\"name\": ";  // truncated JSON
  }
  std::string err;
  EXPECT_EQ(drive({"batch", workload.c_str()}, nullptr, &err), 3);
  EXPECT_NE(err.find("workload"), std::string::npos);
  std::remove(workload.c_str());
}

TEST(CliRun, BatchEndToEnd) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string workload = (tmp / "mlcd_cli_batch.json").string();
  const std::string report_out = (tmp / "mlcd_cli_batch_out.json").string();
  {
    std::ofstream f(workload);
    f << R"({"jobs": [
      {"name": "a", "tenant": "t1", "model": "resnet",
       "deadline_hours": 24, "seed": 7, "max_nodes": 8},
      {"name": "b", "tenant": "t2", "model": "resnet",
       "deadline_hours": 30, "seed": 7, "max_nodes": 8}
    ]})";
  }
  std::string out;
  const int rc = drive({"batch", workload.c_str(), "--threads", "2",
                        "--capacity", "16", "--tenant-quota", "1", "--json",
                        "--out", report_out.c_str()},
                       &out);
  EXPECT_EQ(rc, 0);
  // The batch document is schema v5; the embedded (ladder-free)
  // RunReports keep their own v3 version key.
  EXPECT_NE(out.find("\"schema_version\":6"), std::string::npos);
  EXPECT_NE(out.find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(out.find("\"resumed_jobs\":0"), std::string::npos);
  EXPECT_NE(out.find("\"replayed_reports\":0"), std::string::npos);
  EXPECT_NE(out.find("\"probe_granularity\":true"), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"b\""), std::string::npos);
  // --out writes the same document.
  std::ifstream in(report_out, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), out);
  std::remove(workload.c_str());
  std::remove(report_out.c_str());
}

TEST(CliRun, BatchChaosKnobsOverrideWorkload) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string workload = (tmp / "mlcd_cli_batch_chaos.json").string();
  {
    std::ofstream f(workload);
    // The workload declares a chaotic environment; the CLI overrides
    // the seed and adds a stall hazard per flag.
    f << R"({"jobs": [
      {"name": "a", "tenant": "t1", "model": "resnet",
       "deadline_hours": 24, "seed": 7, "max_nodes": 8}
    ],
    "chaos": {"seed": 3, "probe_loss_rate": 1.0}})";
  }
  std::string out;
  const int rc = drive({"batch", workload.c_str(), "--threads", "2",
                        "--chaos-seed", "11", "--chaos-stall-rate", "0.5",
                        "--json"},
                       &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("\"chaos_seed\":11"), std::string::npos);
  EXPECT_NE(out.find("\"probe_loss_rate\":1"), std::string::npos);
  EXPECT_NE(out.find("\"stall_rate\":0.5"), std::string::npos);
  // Every live probe's result envelope was lost and recovered from its
  // write-ahead record image.
  EXPECT_EQ(out.find("\"probe_losses\":0"), std::string::npos);
  std::remove(workload.c_str());
}

TEST(CliRun, BatchRejectsOutOfRangeChaosRate) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string workload = (tmp / "mlcd_cli_batch_badrate.json").string();
  {
    std::ofstream f(workload);
    f << R"({"jobs": [{"name": "a", "model": "resnet", "max_nodes": 8}]})";
  }
  std::string err;
  EXPECT_EQ(drive({"batch", workload.c_str(), "--chaos-lane-crash-rate",
                   "1.5"},
                  nullptr, &err),
            2);
  std::remove(workload.c_str());
}

TEST(CliRun, BatchRefusesOverCapacityWorkload) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string workload = (tmp / "mlcd_cli_batch_cap.json").string();
  {
    std::ofstream f(workload);
    f << R"({"jobs": [{"name": "a", "model": "resnet", "max_nodes": 50}]})";
  }
  std::string err;
  EXPECT_EQ(drive({"batch", workload.c_str(), "--capacity", "10"}, nullptr,
                  &err),
            2);
  EXPECT_NE(err.find("admission refused"), std::string::npos);
  std::remove(workload.c_str());
}

// ---------------------------------------------------- batch exit codes

namespace {

/// Writes a one-job workload file and returns its path.
std::string write_workload(const std::string& name, const char* json) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string path = (tmp / name).string();
  std::ofstream f(path);
  f << json;
  return path;
}

}  // namespace

TEST(CliRun, BatchJobFailureIsExitCode1) {
  const std::string workload = write_workload(
      "mlcd_cli_exit1.json",
      R"({"jobs": [{"name": "a", "model": "no_such_model",
                    "max_nodes": 8}]})");
  EXPECT_EQ(drive({"batch", workload.c_str()}), 1);
  std::remove(workload.c_str());
}

TEST(CliRun, BatchPerJobJournalErrorIsExitCode4) {
  // A job whose declared journal cannot be created fails typed under
  // the (default) abort policy, and the journal error outranks the
  // plain-failure exit code.
  const std::string workload = write_workload(
      "mlcd_cli_exit4.json",
      R"({"jobs": [{"name": "a", "model": "resnet", "max_nodes": 8,
                    "journal": "/no/such/dir/a.mlcdj"}]})");
  std::string out;
  EXPECT_EQ(drive({"batch", workload.c_str(), "--json"}, &out), 4);
  EXPECT_NE(out.find("\"code\":\"journal_error\""), std::string::npos);
  std::remove(workload.c_str());
}

TEST(CliRun, BatchUnreadableManifestOnResumeIsExitCode4) {
  const std::string workload = write_workload(
      "mlcd_cli_exit4b.json",
      R"({"jobs": [{"name": "a", "model": "resnet", "max_nodes": 8}]})");
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string dir = (tmp / "mlcd_cli_exit4b_nodir").string();
  std::filesystem::remove_all(dir);
  // --resume with no manifest on disk: a batch-level journal read error.
  std::string err;
  EXPECT_EQ(drive({"batch", workload.c_str(), "--journal-dir", dir.c_str(),
                   "--resume"},
                  nullptr, &err),
            4);
  std::filesystem::remove_all(dir);
  std::remove(workload.c_str());
}

TEST(CliRun, BatchSloBreachIsExitCode5) {
  const std::string workload = write_workload(
      "mlcd_cli_exit5.json",
      R"({"jobs": [{"name": "a", "model": "resnet", "max_nodes": 8,
                    "slo_max_probes": 3}]})");
  std::string out;
  EXPECT_EQ(drive({"batch", workload.c_str(), "--json"}, &out), 5);
  EXPECT_NE(out.find("\"code\":\"slo_exceeded\""), std::string::npos);
  std::remove(workload.c_str());
}

TEST(CliRun, BatchResumeWithoutJournalDirIsUsageError) {
  const std::string workload = write_workload(
      "mlcd_cli_resume_nodir.json",
      R"({"jobs": [{"name": "a", "model": "resnet", "max_nodes": 8}]})");
  std::string err;
  EXPECT_EQ(drive({"batch", workload.c_str(), "--resume"}, nullptr, &err),
            2);
  EXPECT_NE(err.find("--journal-dir"), std::string::npos);
  std::remove(workload.c_str());
}

TEST(CliRun, BatchBadJournalOnErrorPolicyIsUsageError) {
  const std::string workload = write_workload(
      "mlcd_cli_badpolicy.json",
      R"({"jobs": [{"name": "a", "model": "resnet", "max_nodes": 8}]})");
  std::string err;
  EXPECT_EQ(drive({"batch", workload.c_str(), "--journal-on-error",
                   "sometimes"},
                  nullptr, &err),
            2);
  EXPECT_NE(err.find("journal-on-error"), std::string::npos);
  std::remove(workload.c_str());
}

TEST(CliRun, BatchExitCodePrecedenceIsPinned) {
  // 4 (journal) > 6 (internal) > 1 (failed) > 5 (SLO) > 0.
  service::BatchReport report;
  report.jobs.resize(4);
  report.jobs[0].ok = true;
  report.jobs[1].ok = true;
  report.jobs[1].slo = service::SloBreach::kProbes;
  report.jobs[2].error_code = "unknown_model";
  report.jobs[3].error_code = "internal";
  EXPECT_EQ(batch_exit_code(report), 6);
  report.jobs[3].error_code = "journal_error";
  EXPECT_EQ(batch_exit_code(report), 4);
  report.jobs[3].ok = true;
  report.jobs[3].error_code.clear();
  EXPECT_EQ(batch_exit_code(report), 1);
  report.jobs[2].ok = true;
  report.jobs[2].error_code.clear();
  EXPECT_EQ(batch_exit_code(report), 5);
  report.jobs[1].slo = service::SloBreach::kNone;
  EXPECT_EQ(batch_exit_code(report), 0);
}

TEST(CliRun, BatchDurableResumeReplaysBitIdentically) {
  // End-to-end through the CLI: run a durable batch, then resume the
  // (fully finished) batch — every report must come back replayed from
  // the per-job journals, identical modulo resume bookkeeping.
  const std::string workload = write_workload(
      "mlcd_cli_durable.json",
      R"({"jobs": [
        {"name": "a", "tenant": "t1", "model": "resnet", "seed": 7,
         "max_nodes": 8},
        {"name": "b", "tenant": "t2", "model": "alexnet", "seed": 9,
         "max_nodes": 8, "method": "random"}
      ]})");
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string dir = (tmp / "mlcd_cli_durable_dir").string();
  std::filesystem::remove_all(dir);

  std::string first;
  ASSERT_EQ(drive({"batch", workload.c_str(), "--threads", "2",
                   "--journal-dir", dir.c_str(), "--json"},
                  &first),
            0);
  ASSERT_TRUE(std::filesystem::exists(dir + "/batch.mlcdb"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/job-0-a.mlcdj"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/job-1-b.mlcdj"));

  std::string second;
  ASSERT_EQ(drive({"batch", workload.c_str(), "--threads", "2",
                   "--journal-dir", dir.c_str(), "--resume", "--json"},
                  &second),
            0);
  EXPECT_NE(second.find("\"replayed_reports\":2"), std::string::npos);
  EXPECT_NE(second.find("\"replayed_from_journal\":true"),
            std::string::npos);
  // The replayed run re-executed nothing: every trace step carries the
  // replay marker and the probe-by-probe content matches the original.
  EXPECT_EQ(second.find("\"replayed\":false"), std::string::npos);
  const auto trace_of = [](const std::string& doc, const char* job) {
    const std::size_t at = doc.find(std::string("\"name\":\"") + job);
    const std::size_t begin = doc.find("\"trace\":[", at);
    // Fault-free steps carry no nested arrays, so the first ']' closes
    // the trace.
    const std::size_t end = doc.find(']', begin);
    return doc.substr(begin, end - begin + 1);
  };
  for (const char* job : {"a", "b"}) {
    std::string a = trace_of(first, job);
    std::string b = trace_of(second, job);
    // Normalize the only legitimate difference inside a trace step.
    const auto scrub = [](std::string& text) {
      for (std::size_t at = text.find("\"replayed\":");
           at != std::string::npos; at = text.find("\"replayed\":", at)) {
        const std::size_t value = at + std::string("\"replayed\":").size();
        const std::size_t comma = text.find_first_of(",}", value);
        text.replace(value, comma - value, "X");
        at = value;
      }
    };
    scrub(a);
    scrub(b);
    EXPECT_EQ(a, b) << "job " << job;
  }
  std::filesystem::remove_all(dir);
  std::remove(workload.c_str());
}

}  // namespace
}  // namespace mlcd::cli
