// Unit and property tests for src/perf: the training performance model.
//
// These tests pin the *qualitative* behaviours the paper's search method
// depends on: concave scale-out curves, non-linear scale-up, CPU/GPU
// efficiency crossovers by model kind, topology and platform effects, and
// memory feasibility (incl. ZeRO partitioning).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cloud/instance.hpp"
#include "models/model_zoo.hpp"
#include "perf/perf_model.hpp"
#include "perf/platform.hpp"

namespace mlcd::perf {
namespace {

TrainingConfig config_for(const char* model, const char* platform,
                          CommTopology topology) {
  TrainingConfig c;
  c.model = models::paper_zoo().model(model);
  c.platform = platform_by_name(platform);
  c.topology = topology;
  return c;
}

std::size_t type_of(const char* name) {
  return *cloud::aws_catalog().find(name);
}

class PerfModelTest : public testing::Test {
 protected:
  TrainingPerfModel perf_{cloud::aws_catalog()};
};

// ------------------------------------------------------------ basic sanity

TEST_F(PerfModelTest, SingleNodeHasNoCommunication) {
  const auto cfg = config_for("resnet", "tensorflow",
                              CommTopology::kParameterServer);
  const IterationBreakdown b = perf_.breakdown(cfg, {type_of("c5.xlarge"), 1});
  EXPECT_TRUE(b.feasible);
  EXPECT_DOUBLE_EQ(b.comm_s, 0.0);
  EXPECT_DOUBLE_EQ(b.iteration_s, b.compute_s);
  EXPECT_GT(b.speed, 0.0);
}

TEST_F(PerfModelTest, SpeedDeterministic) {
  const auto cfg = config_for("resnet", "tensorflow",
                              CommTopology::kParameterServer);
  const cloud::Deployment d{type_of("c5.4xlarge"), 10};
  EXPECT_DOUBLE_EQ(perf_.true_speed(cfg, d), perf_.true_speed(cfg, d));
}

TEST_F(PerfModelTest, TrainingHoursMatchesSpeed) {
  const auto cfg = config_for("resnet", "tensorflow",
                              CommTopology::kParameterServer);
  const cloud::Deployment d{type_of("c5.4xlarge"), 10};
  const double speed = perf_.true_speed(cfg, d);
  const auto hours = perf_.training_hours(cfg, d);
  ASSERT_TRUE(hours.has_value());
  EXPECT_NEAR(*hours, cfg.model.samples_to_train / speed / 3600.0, 1e-9);
}

TEST_F(PerfModelTest, InvalidOptionsThrow) {
  PerfModelOptions bad;
  bad.ps_incast_alpha = -1.0;
  EXPECT_THROW(TrainingPerfModel(cloud::aws_catalog(), bad),
               std::invalid_argument);
  PerfModelOptions bad2;
  bad2.zero_comm_factor = 0.5;
  EXPECT_THROW(TrainingPerfModel(cloud::aws_catalog(), bad2),
               std::invalid_argument);
}

TEST_F(PerfModelTest, ZeroNodesThrows) {
  const auto cfg = config_for("resnet", "tensorflow",
                              CommTopology::kParameterServer);
  EXPECT_THROW(perf_.breakdown(cfg, {0, 0}), std::invalid_argument);
}

// -------------------------------------------------- concave scale-out (3b)

// Property over (model x type): the scale-out curve rises, peaks, then
// declines — and never collapses between n=1 and n=2 (the shape the
// concavity prior depends on).
struct ScaleOutCase {
  const char* model;
  const char* type;
  CommTopology topology;
};

class ScaleOutShape : public testing::TestWithParam<ScaleOutCase> {};

TEST_P(ScaleOutShape, ConcaveWithInteriorPeak) {
  const ScaleOutCase& c = GetParam();
  TrainingPerfModel perf(cloud::aws_catalog());
  const auto cfg = config_for(c.model, "tensorflow", c.topology);
  const std::size_t t = type_of(c.type);

  std::vector<double> speed;
  for (int n = 1; n <= 50; ++n) {
    speed.push_back(perf.true_speed(cfg, {t, n}));
  }
  // Find the peak.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < speed.size(); ++i) {
    if (speed[i] > speed[peak]) peak = i;
  }
  // Rises to the peak...
  for (std::size_t i = 1; i <= peak; ++i) {
    EXPECT_GE(speed[i], speed[i - 1] * 0.999) << "dip before peak at n="
                                              << i + 1;
  }
  // ...and declines monotonically after it.
  for (std::size_t i = peak + 1; i < speed.size(); ++i) {
    EXPECT_LE(speed[i], speed[i - 1] * 1.001) << "rise after peak at n="
                                              << i + 1;
  }
  // Scale-out helps at all before communication wins.
  EXPECT_GT(speed[peak], speed[0] * 1.5);
  // The peak is interior: the curve does decline inside the space.
  EXPECT_LT(peak, speed.size() - 1);
}

INSTANTIATE_TEST_SUITE_P(
    PaperWorkloads, ScaleOutShape,
    testing::Values(
        ScaleOutCase{"resnet", "c5.4xlarge", CommTopology::kParameterServer},
        ScaleOutCase{"resnet", "c5.xlarge", CommTopology::kParameterServer},
        ScaleOutCase{"alexnet", "c5.4xlarge", CommTopology::kParameterServer},
        ScaleOutCase{"char_rnn", "c5.xlarge", CommTopology::kParameterServer},
        ScaleOutCase{"char_rnn", "p2.xlarge", CommTopology::kParameterServer},
        ScaleOutCase{"resnet", "c5.4xlarge", CommTopology::kRingAllReduce}));

// ------------------------------------------------ non-linear scale-up (3a)

TEST_F(PerfModelTest, ScaleUpIsSublinearWithinFamily) {
  const auto cfg = config_for("char_rnn", "tensorflow",
                              CommTopology::kParameterServer);
  const double s_x = perf_.true_speed(cfg, {type_of("c5.xlarge"), 1});
  const double s_4x = perf_.true_speed(cfg, {type_of("c5.4xlarge"), 1});
  // 4x the vCPUs helps, but less than 4x (paper Fig. 3a's non-linearity).
  EXPECT_GT(s_4x, 2.0 * s_x);
  EXPECT_LT(s_4x, 4.0 * s_x);
}

TEST_F(PerfModelTest, ScaleUpMonotoneWithinFamily) {
  const auto cfg = config_for("char_rnn", "tensorflow",
                              CommTopology::kParameterServer);
  const auto& cat = cloud::aws_catalog();
  double prev = 0.0;
  for (std::size_t idx : cat.family_indices("c5")) {
    const double s = perf_.true_speed(cfg, {idx, 1});
    EXPECT_GT(s, prev) << cat.at(idx).name;
    prev = s;
  }
}

// ---------------------------------------------- device efficiency (Fig 1b)

TEST(DeviceEfficiency, RnnsUnderutilizeGpus) {
  EXPECT_LT(model_device_efficiency(models::ModelKind::kRnn,
                                    cloud::DeviceKind::kGpuK80),
            0.5);
  EXPECT_DOUBLE_EQ(model_device_efficiency(models::ModelKind::kRnn,
                                           cloud::DeviceKind::kCpuAvx512),
                   1.0);
}

TEST(DeviceEfficiency, TransformersPreferGpus) {
  EXPECT_GT(model_device_efficiency(models::ModelKind::kTransformer,
                                    cloud::DeviceKind::kGpuV100),
            model_device_efficiency(models::ModelKind::kTransformer,
                                    cloud::DeviceKind::kCpuAvx512));
}

TEST_F(PerfModelTest, Fig1bEqualCostComparison) {
  // Paper Fig. 1b: at equal $/h, 10 x c5.4xlarge beats both 40 x
  // c5.xlarge and 9 x p2.xlarge for Char-RNN, by roughly 3x over the
  // worst option.
  const auto cfg = config_for("char_rnn", "tensorflow",
                              CommTopology::kParameterServer);
  const double many_small =
      perf_.true_speed(cfg, {type_of("c5.xlarge"), 40});
  const double balanced =
      perf_.true_speed(cfg, {type_of("c5.4xlarge"), 10});
  const double few_gpu = perf_.true_speed(cfg, {type_of("p2.xlarge"), 9});
  EXPECT_GT(balanced, many_small);
  EXPECT_GT(balanced, few_gpu);
  EXPECT_GT(balanced / few_gpu, 2.0);
}

TEST_F(PerfModelTest, CnnFastestOnV100) {
  const auto cfg = config_for("resnet", "tensorflow",
                              CommTopology::kParameterServer);
  const double gpu = perf_.true_speed(cfg, {type_of("p3.2xlarge"), 1});
  const double cpu = perf_.true_speed(cfg, {type_of("c5.4xlarge"), 1});
  EXPECT_GT(gpu, cpu);
}

// ------------------------------------------------------- topology effects

TEST_F(PerfModelTest, RingBeatsPsForLargeGradientsAtScale) {
  // BERT's 1.36 GB gradient: ring all-reduce's bandwidth-optimal exchange
  // should beat PS incast at moderate scale.
  const auto ps = config_for("bert", "tensorflow",
                             CommTopology::kParameterServer);
  const auto ring = config_for("bert", "tensorflow",
                               CommTopology::kRingAllReduce);
  const cloud::Deployment d{type_of("c5n.4xlarge"), 16};
  EXPECT_GT(perf_.true_speed(ring, d), perf_.true_speed(ps, d));
}

TEST_F(PerfModelTest, TopologyIrrelevantOnSingleNode) {
  const auto ps = config_for("resnet", "tensorflow",
                             CommTopology::kParameterServer);
  const auto ring = config_for("resnet", "tensorflow",
                               CommTopology::kRingAllReduce);
  const cloud::Deployment d{type_of("c5.4xlarge"), 1};
  EXPECT_DOUBLE_EQ(perf_.true_speed(ps, d), perf_.true_speed(ring, d));
}

TEST_F(PerfModelTest, BetterNicHelpsCommBoundWorkloads) {
  // c5n.4xlarge has 3x the NIC of c5.4xlarge at the same compute: a
  // comm-bound workload (BERT PS at scale) must benefit.
  const auto cfg = config_for("bert", "tensorflow",
                              CommTopology::kRingAllReduce);
  const double c5 = perf_.true_speed(cfg, {type_of("c5.4xlarge"), 16});
  const double c5n = perf_.true_speed(cfg, {type_of("c5n.4xlarge"), 16});
  EXPECT_GT(c5n, c5 * 1.25);
}

// ------------------------------------------------------- platform effects

TEST(Platform, ByNameAndErrors) {
  EXPECT_EQ(platform_by_name("tensorflow").name, "tensorflow");
  EXPECT_EQ(platform_by_name("mxnet").name, "mxnet");
  EXPECT_THROW(platform_by_name("caffe"), std::invalid_argument);
}

TEST(Platform, TopologyNames) {
  EXPECT_EQ(comm_topology_name(CommTopology::kParameterServer),
            "parameter-server");
  EXPECT_EQ(comm_topology_name(CommTopology::kRingAllReduce),
            "ring-all-reduce");
}

TEST_F(PerfModelTest, PlatformsDifferButAgreeQualitatively) {
  const auto tf = config_for("bert", "tensorflow",
                             CommTopology::kRingAllReduce);
  const auto mx = config_for("bert", "mxnet", CommTopology::kRingAllReduce);
  const cloud::Deployment d{type_of("c5n.4xlarge"), 8};
  const double s_tf = perf_.true_speed(tf, d);
  const double s_mx = perf_.true_speed(mx, d);
  EXPECT_NE(s_tf, s_mx);
  EXPECT_NEAR(s_tf / s_mx, 1.0, 0.35);  // same ballpark
}

TEST(Platform, OverlapSelection) {
  const PlatformProfile tf = tensorflow_profile();
  EXPECT_DOUBLE_EQ(tf.overlap(CommTopology::kParameterServer),
                   tf.overlap_ps);
  EXPECT_DOUBLE_EQ(tf.overlap(CommTopology::kRingAllReduce),
                   tf.overlap_ring);
}

// --------------------------------------------------- feasibility and ZeRO

TEST_F(PerfModelTest, LargeModelDoesNotFitWithoutPartitioning) {
  // 20B params x 16 B = 298 GiB of training state vs 128 GiB of GPU
  // memory on p3.16xlarge: infeasible without state partitioning.
  PerfModelOptions no_zero;
  no_zero.allow_zero_partitioning = false;
  TrainingPerfModel perf(cloud::aws_catalog(), no_zero);
  const auto cfg = config_for("zero_20b", "tensorflow",
                              CommTopology::kRingAllReduce);
  EXPECT_DOUBLE_EQ(perf.true_speed(cfg, {type_of("p3.16xlarge"), 1}), 0.0);
  EXPECT_FALSE(
      perf.training_hours(cfg, {type_of("p3.16xlarge"), 1}).has_value());
}

TEST_F(PerfModelTest, ZeroPartitioningUnlocksLargeModels) {
  const auto cfg = config_for("zero_20b", "tensorflow",
                              CommTopology::kRingAllReduce);
  // 298 GiB of state split across 4 x 128 GiB nodes fits.
  const IterationBreakdown b =
      perf_.breakdown(cfg, {type_of("p3.16xlarge"), 4});
  EXPECT_TRUE(b.feasible);
  EXPECT_TRUE(b.used_zero_partitioning);
}

TEST_F(PerfModelTest, Bert8bFitsBigGpuNodeWithoutPartitioning) {
  // 8B x 16 B = 119 GiB just fits p3.16xlarge's 128 GiB — no ZeRO needed.
  const auto cfg = config_for("zero_8b", "tensorflow",
                              CommTopology::kRingAllReduce);
  const IterationBreakdown b =
      perf_.breakdown(cfg, {type_of("p3.16xlarge"), 1});
  EXPECT_TRUE(b.feasible);
  EXPECT_FALSE(b.used_zero_partitioning);
}

TEST_F(PerfModelTest, ZeroPartitioningStillBoundedByNodeCount) {
  const auto cfg = config_for("zero_20b", "tensorflow",
                              CommTopology::kRingAllReduce);
  // 20B x 16 B = 320 GB over 2 K80 nodes (12 GB each) cannot fit.
  EXPECT_DOUBLE_EQ(perf_.true_speed(cfg, {type_of("p2.xlarge"), 2}), 0.0);
}

TEST_F(PerfModelTest, SmallModelsNeverUseZero) {
  const auto cfg = config_for("alexnet", "tensorflow",
                              CommTopology::kParameterServer);
  const IterationBreakdown b =
      perf_.breakdown(cfg, {type_of("c5.xlarge"), 10});
  EXPECT_TRUE(b.feasible);
  EXPECT_FALSE(b.used_zero_partitioning);
}

// ------------------------------------------- full catalog x model sweep

// Property sweep over the entire 62-type catalog x the full model zoo:
// the substrate must be well-behaved everywhere — finite non-negative
// speeds, memory-consistent feasibility, breakdown components that add
// up — because searchers may probe any point.
class SubstrateSweep : public testing::TestWithParam<const char*> {};

TEST_P(SubstrateSweep, WellBehavedEverywhere) {
  TrainingPerfModel perf(cloud::aws_catalog());
  const auto cfg = config_for(GetParam(), "tensorflow",
                              CommTopology::kRingAllReduce);
  for (std::size_t t = 0; t < cloud::aws_catalog().size(); ++t) {
    for (int n : {1, 2, 7, 20, 50}) {
      const cloud::Deployment d{t, n};
      const IterationBreakdown b = perf.breakdown(cfg, d);
      // Feasibility agrees with the static memory check.
      EXPECT_EQ(b.feasible, perf.memory_feasible(cfg, d))
          << cloud::aws_catalog().at(t).name << " n=" << n;
      if (!b.feasible) {
        EXPECT_DOUBLE_EQ(b.speed, 0.0);
        continue;
      }
      EXPECT_TRUE(std::isfinite(b.speed));
      EXPECT_GT(b.speed, 0.0);
      EXPECT_GT(b.compute_s, 0.0);
      EXPECT_GE(b.comm_s, 0.0);
      // The iteration cannot be shorter than compute, nor longer than
      // compute + comm (overlap only helps).
      EXPECT_GE(b.iteration_s, b.compute_s - 1e-12);
      EXPECT_LE(b.iteration_s, b.compute_s + b.comm_s + 1e-12);
      // Aggregate speed is n*batch per iteration.
      EXPECT_NEAR(b.speed,
                  n * cfg.model.batch_per_node / b.iteration_s,
                  1e-6 * b.speed);
    }
  }
}

TEST_P(SubstrateSweep, SingleNodeCommFreeEverywhere) {
  TrainingPerfModel perf(cloud::aws_catalog());
  const auto cfg = config_for(GetParam(), "mxnet",
                              CommTopology::kParameterServer);
  for (std::size_t t = 0; t < cloud::aws_catalog().size(); ++t) {
    const IterationBreakdown b = perf.breakdown(cfg, {t, 1});
    if (b.feasible) EXPECT_DOUBLE_EQ(b.comm_s, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, SubstrateSweep,
                         testing::Values("alexnet", "resnet",
                                         "inception_v3", "char_rnn",
                                         "bert", "zero_8b", "zero_20b"));

// ------------------------------------------------------ Paleo-style knobs

TEST(PerfOptions, RemovingNuancesInflatesLargeScaleSpeed) {
  // Zeroing congestion/straggler/scale-up losses (what the Paleo baseline
  // plans with) must over-predict speed at scale but match at n=1 apart
  // from scale-up efficiency.
  PerfModelOptions ideal;
  ideal.ps_incast_alpha = 0.0;
  ideal.ps_incast_beta = 0.0;
  ideal.ring_straggler_beta = 0.0;
  ideal.cpu_scaleup_exponent = 0.0;
  ideal.gpu_scaleup_exponent = 0.0;
  TrainingPerfModel real(cloud::aws_catalog());
  TrainingPerfModel paleo(cloud::aws_catalog(), ideal);
  const auto cfg = config_for("resnet", "tensorflow",
                              CommTopology::kParameterServer);
  const cloud::Deployment big{type_of("c5.4xlarge"), 40};
  EXPECT_GT(paleo.true_speed(cfg, big), real.true_speed(cfg, big) * 1.3);
}

}  // namespace
}  // namespace mlcd::perf
