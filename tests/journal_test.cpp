// Crash-safety tests: journal framing and round-tripping, the kill-point
// resume sweep (truncate after every record boundary and mid-record,
// resume, assert the continuation is bit-identical to the golden run with
// zero probes re-executed), typed refusals for corrupt/mismatched
// journals, probe watchdog semantics, and graceful searcher degradation.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/deployment.hpp"
#include "journal/journal.hpp"
#include "mlcd/mlcd.hpp"
#include "models/model_zoo.hpp"
#include "profiler/profiler.hpp"
#include "search/conv_bo.hpp"
#include "search/heter_bo.hpp"
#include "service/batch_journal.hpp"

namespace mlcd {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Byte offsets of every record boundary (position just after each '\n'),
/// including 0 and the file size.
std::vector<std::size_t> record_boundaries(const std::string& bytes) {
  std::vector<std::size_t> offsets = {0};
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == '\n') offsets.push_back(i + 1);
  }
  return offsets;
}

// ----------------------------------------------------------------- framing

TEST(Crc32, MatchesTheStandardCheckValue) {
  EXPECT_EQ(journal::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(journal::crc32(""), 0u);
}

journal::JournalHeader sample_header() {
  journal::JournalHeader h;
  h.method = "heterbo";
  h.model = "resnet";
  h.platform = "tensorflow";
  h.scenario_kind = 2;
  h.deadline_hours = 0.0;
  h.budget_dollars = 150.0;
  h.seed = 0xDEADBEEFCAFEF00DULL;  // exercises the full uint64 range
  h.max_nodes = 8;
  h.use_spot = false;
  h.gp_refit_every = 1;
  h.catalog_hash = 0xFFFFFFFFFFFFFFFFULL;
  h.profiler_options_hash = 12345;
  h.warm_start_hash = 0;
  return h;
}

TEST(Journal, RoundTripsRecordsBitExactly) {
  const std::string path = temp_path("roundtrip.mlcdj");
  const journal::JournalHeader header = sample_header();

  journal::ProbeRecord probe;
  probe.type_index = 1;
  probe.nodes = 5;
  probe.failed = false;
  probe.feasible = true;
  // Doubles that are not exactly representable in short decimal form:
  // the journal must round-trip the exact bit pattern.
  probe.measured_speed = 0.1 + 0.2;
  probe.true_speed = 1.0 / 3.0;
  probe.profile_hours = 5e-324;  // smallest denormal
  probe.profile_cost = 1.2345678901234567;
  probe.cum_profile_hours = 1e308;
  probe.cum_profile_cost = 42.0;
  probe.acquisition = -0.007;
  probe.reason = "tei";
  probe.attempts = 2;
  probe.fault = 4;
  probe.backoff_hours = 0.031;
  probe.attempt_log = {{1, 0.05, 0.25, 0.031}, {0, 0.17, 0.85, 0.0}};

  {
    journal::RunJournal j = journal::RunJournal::create(path, header);
    j.append_probe(probe);
    j.append_degrade({3, "chaos degrade hook"});
  }

  const journal::JournalContents back = journal::read_journal(path);
  EXPECT_FALSE(back.truncated_tail);
  EXPECT_EQ(back.valid_bytes, read_file(path).size());
  EXPECT_EQ(back.header.method, header.method);
  EXPECT_EQ(back.header.model, header.model);
  EXPECT_EQ(back.header.platform, header.platform);
  EXPECT_EQ(back.header.scenario_kind, header.scenario_kind);
  EXPECT_EQ(back.header.budget_dollars, header.budget_dollars);
  EXPECT_EQ(back.header.seed, header.seed);
  EXPECT_EQ(back.header.catalog_hash, header.catalog_hash);

  ASSERT_EQ(back.probes.size(), 1u);
  const journal::ProbeRecord& p = back.probes[0];
  EXPECT_EQ(p.type_index, probe.type_index);
  EXPECT_EQ(p.nodes, probe.nodes);
  EXPECT_EQ(p.failed, probe.failed);
  EXPECT_EQ(p.feasible, probe.feasible);
  EXPECT_EQ(p.measured_speed, probe.measured_speed);  // bit-exact
  EXPECT_EQ(p.true_speed, probe.true_speed);
  EXPECT_EQ(p.profile_hours, probe.profile_hours);
  EXPECT_EQ(p.profile_cost, probe.profile_cost);
  EXPECT_EQ(p.cum_profile_hours, probe.cum_profile_hours);
  EXPECT_EQ(p.acquisition, probe.acquisition);
  EXPECT_EQ(p.reason, probe.reason);
  EXPECT_EQ(p.attempts, probe.attempts);
  EXPECT_EQ(p.fault, probe.fault);
  ASSERT_EQ(p.attempt_log.size(), 2u);
  EXPECT_EQ(p.attempt_log[0].fault, 1);
  EXPECT_EQ(p.attempt_log[0].hours, 0.05);
  EXPECT_EQ(p.attempt_log[1].cost, 0.85);

  ASSERT_EQ(back.degraded.size(), 1u);
  EXPECT_EQ(back.degraded[0].iteration, 3);
  EXPECT_EQ(back.degraded[0].why, "chaos degrade hook");
}

TEST(Journal, TornTailIsDroppedNotFatal) {
  const std::string path = temp_path("torn.mlcdj");
  {
    journal::RunJournal j =
        journal::RunJournal::create(path, sample_header());
    journal::ProbeRecord probe;
    probe.nodes = 1;
    j.append_probe(probe);
    probe.nodes = 2;
    j.append_probe(probe);
  }
  const std::string bytes = read_file(path);
  const std::vector<std::size_t> offsets = record_boundaries(bytes);
  ASSERT_EQ(offsets.size(), 4u);  // header + 2 probes + EOF

  // Cut mid-way through the last record: crash landed mid-append.
  const std::size_t cut = offsets[2] + (offsets[3] - offsets[2]) / 2;
  write_file(path, bytes.substr(0, cut));
  const journal::JournalContents back = journal::read_journal(path);
  EXPECT_TRUE(back.truncated_tail);
  EXPECT_EQ(back.valid_bytes, offsets[2]);
  ASSERT_EQ(back.probes.size(), 1u);
  EXPECT_EQ(back.probes[0].nodes, 1);
}

TEST(Journal, MidFileCorruptionRefusedTyped) {
  const std::string path = temp_path("corrupt.mlcdj");
  {
    journal::RunJournal j =
        journal::RunJournal::create(path, sample_header());
    journal::ProbeRecord probe;
    probe.nodes = 3;
    j.append_probe(probe);
    probe.nodes = 4;
    j.append_probe(probe);
  }
  std::string bytes = read_file(path);
  const std::vector<std::size_t> offsets = record_boundaries(bytes);
  // Flip a payload byte inside the *first probe* record (not the tail).
  bytes[offsets[1] + 30] ^= 0x20;
  write_file(path, bytes);
  try {
    journal::read_journal(path);
    FAIL() << "corrupt journal was accepted";
  } catch (const journal::JournalError& e) {
    EXPECT_EQ(e.code(), journal::JournalErrorCode::kCorrupt);
  }
}

TEST(Journal, EmptyOrHeaderlessFileRefused) {
  const std::string path = temp_path("empty.mlcdj");
  write_file(path, "");
  EXPECT_THROW(journal::read_journal(path), journal::JournalError);
}

// ------------------------------------------------- end-to-end crash safety

system::JobRequest base_request() {
  system::JobRequest request;
  request.model = "resnet";
  request.instance_types = {"c5.xlarge", "c5.4xlarge"};
  request.max_nodes = 8;
  request.requirements.budget_dollars = 150.0;
  request.seed = 7;
  // Faults on, so the sweep also replays multi-attempt records (the
  // fault stream is the hardest state to restore bit-exactly).
  request.profiler_options.faults.launch_failure_per_node = 0.02;
  request.profiler_options.faults.straggler_rate = 0.15;
  return request;
}

void expect_traces_identical(const search::SearchResult& a,
                             const search::SearchResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const search::ProbeStep& x = a.trace[i];
    const search::ProbeStep& y = b.trace[i];
    EXPECT_EQ(x.deployment, y.deployment) << "step " << i;
    EXPECT_EQ(x.failed, y.failed) << "step " << i;
    EXPECT_EQ(x.feasible, y.feasible) << "step " << i;
    EXPECT_EQ(x.measured_speed, y.measured_speed) << "step " << i;
    EXPECT_EQ(x.true_speed, y.true_speed) << "step " << i;
    EXPECT_EQ(x.profile_hours, y.profile_hours) << "step " << i;
    EXPECT_EQ(x.profile_cost, y.profile_cost) << "step " << i;
    EXPECT_EQ(x.cum_profile_hours, y.cum_profile_hours) << "step " << i;
    EXPECT_EQ(x.cum_profile_cost, y.cum_profile_cost) << "step " << i;
    EXPECT_EQ(x.reason, y.reason) << "step " << i;
    EXPECT_EQ(x.attempts, y.attempts) << "step " << i;
    EXPECT_EQ(x.fault, y.fault) << "step " << i;
    EXPECT_EQ(x.backoff_hours, y.backoff_hours) << "step " << i;
    ASSERT_EQ(x.attempt_log.size(), y.attempt_log.size()) << "step " << i;
    for (std::size_t k = 0; k < x.attempt_log.size(); ++k) {
      EXPECT_EQ(x.attempt_log[k].fault, y.attempt_log[k].fault);
      EXPECT_EQ(x.attempt_log[k].hours, y.attempt_log[k].hours);
      EXPECT_EQ(x.attempt_log[k].cost, y.attempt_log[k].cost);
      EXPECT_EQ(x.attempt_log[k].backoff_hours,
                y.attempt_log[k].backoff_hours);
    }
  }
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_measured_speed, b.best_measured_speed);
  EXPECT_EQ(a.profile_hours, b.profile_hours);
  EXPECT_EQ(a.profile_cost, b.profile_cost);
  EXPECT_EQ(a.training_hours, b.training_hours);
  EXPECT_EQ(a.training_cost, b.training_cost);
  EXPECT_EQ(a.degraded_iterations, b.degraded_iterations);
}

TEST(CrashSafety, JournalingDoesNotPerturbTheSearch) {
  const system::Mlcd mlcd;
  system::JobRequest plain = base_request();
  const system::RunReport bare = mlcd.deploy(plain).report();

  system::JobRequest journaled = base_request();
  journaled.journal_path = temp_path("noperturb.mlcdj");
  const system::RunReport logged = mlcd.deploy(journaled).report();

  expect_traces_identical(bare.result, logged.result);
  EXPECT_EQ(logged.result.replayed_probes, 0);

  // Every probe made it to disk, in order.
  const journal::JournalContents contents =
      journal::read_journal(journaled.journal_path);
  ASSERT_EQ(contents.probes.size(), logged.result.trace.size());
  for (std::size_t i = 0; i < contents.probes.size(); ++i) {
    EXPECT_EQ(contents.probes[i].nodes,
              logged.result.trace[i].deployment.nodes);
    EXPECT_EQ(contents.probes[i].cum_profile_cost,
              logged.result.trace[i].cum_profile_cost);
  }
}

TEST(CrashSafety, KillPointSweepResumesBitIdentically) {
  const system::Mlcd mlcd;
  system::JobRequest golden_request = base_request();
  golden_request.journal_path = temp_path("golden.mlcdj");
  const system::RunReport golden = mlcd.deploy(golden_request).report();
  ASSERT_GE(golden.result.trace.size(), 3u);

  const std::string bytes = read_file(golden_request.journal_path);
  const std::vector<std::size_t> offsets = record_boundaries(bytes);
  // offsets[1] is the end of the header; a journal cut before that has no
  // header and is rightly refused, so the sweep starts at the header
  // boundary. For every later record boundary AND a cut in the middle of
  // the record that follows it (a torn write), the resumed run must be
  // bit-identical to the golden run with zero probes re-executed.
  for (std::size_t b = 1; b + 1 < offsets.size(); ++b) {
    for (const bool torn : {false, true}) {
      const std::size_t cut =
          torn ? offsets[b] + (offsets[b + 1] - offsets[b]) / 2
               : offsets[b];
      const std::string label =
          "cut at byte " + std::to_string(cut) +
          (torn ? " (mid-record)" : " (record boundary)");
      const std::string path = temp_path("killpoint.mlcdj");
      write_file(path, bytes.substr(0, cut));
      const int journaled_probes = static_cast<int>(
          journal::read_journal(path).probes.size());

      system::JobRequest resume_request = base_request();
      resume_request.resume_path = path;
      const system::DeployResult outcome = mlcd.deploy(resume_request);
      ASSERT_TRUE(outcome.ok()) << label << ": "
                                << outcome.error().message;
      const system::RunReport& resumed = outcome.report();
      SCOPED_TRACE(label);
      expect_traces_identical(golden.result, resumed.result);
      EXPECT_EQ(resumed.result.replayed_probes, journaled_probes);
      EXPECT_EQ(resumed.resumed_from, path);
      for (int i = 0; i < journaled_probes; ++i) {
        EXPECT_TRUE(resumed.result.trace[i].replayed) << label;
      }
      for (std::size_t i = journaled_probes;
           i < resumed.result.trace.size(); ++i) {
        EXPECT_FALSE(resumed.result.trace[i].replayed) << label;
      }

      // The continued journal must converge to the golden file's record
      // sequence — resuming the resumed file reproduces the same run.
      const journal::JournalContents final_contents =
          journal::read_journal(path);
      ASSERT_EQ(final_contents.probes.size(), golden.result.trace.size())
          << label;
      for (std::size_t i = 0; i < final_contents.probes.size(); ++i) {
        EXPECT_EQ(final_contents.probes[i].cum_profile_cost,
                  golden.result.trace[i].cum_profile_cost);
      }
    }
  }
}

TEST(CrashSafety, ResumeOfACompletedRunReexecutesNothing) {
  const system::Mlcd mlcd;
  system::JobRequest request = base_request();
  request.journal_path = temp_path("complete.mlcdj");
  const system::RunReport golden = mlcd.deploy(request).report();

  system::JobRequest resume = base_request();
  resume.resume_path = request.journal_path;
  const system::RunReport resumed = mlcd.deploy(resume).report();
  expect_traces_identical(golden.result, resumed.result);
  EXPECT_EQ(resumed.result.replayed_probes,
            static_cast<int>(golden.result.trace.size()));
}

TEST(CrashSafety, HeaderMismatchRefusedWithFieldName) {
  const system::Mlcd mlcd;
  system::JobRequest request = base_request();
  request.journal_path = temp_path("mismatch.mlcdj");
  ASSERT_TRUE(mlcd.deploy(request).ok());

  system::JobRequest other = base_request();
  other.resume_path = request.journal_path;
  other.seed = 8;  // different search
  const system::DeployResult outcome = mlcd.deploy(other);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, system::JobErrorCode::kJournalError);
  EXPECT_NE(outcome.error().message.find("seed"), std::string::npos)
      << outcome.error().message;

  // Changing a profiler knob (not in the header verbatim, only hashed)
  // is caught too.
  system::JobRequest chaotic = base_request();
  chaotic.resume_path = request.journal_path;
  chaotic.profiler_options.faults.straggler_rate = 0.5;
  const system::DeployResult outcome2 = mlcd.deploy(chaotic);
  ASSERT_FALSE(outcome2.ok());
  EXPECT_EQ(outcome2.error().code, system::JobErrorCode::kJournalError);
}

TEST(CrashSafety, CorruptJournalRefusedAtDeploy) {
  const system::Mlcd mlcd;
  system::JobRequest request = base_request();
  request.journal_path = temp_path("deploycorrupt.mlcdj");
  ASSERT_TRUE(mlcd.deploy(request).ok());

  std::string bytes = read_file(request.journal_path);
  const std::vector<std::size_t> offsets = record_boundaries(bytes);
  ASSERT_GE(offsets.size(), 3u);
  bytes[offsets[1] + 25] ^= 0x01;  // corrupt the first probe record
  write_file(request.journal_path, bytes);

  system::JobRequest resume = base_request();
  resume.resume_path = request.journal_path;
  const system::DeployResult outcome = mlcd.deploy(resume);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, system::JobErrorCode::kJournalError);
  EXPECT_NE(outcome.error().message.find("corrupt"), std::string::npos)
      << outcome.error().message;
}

TEST(CrashSafety, JournalAndResumeMustNameTheSameFile) {
  const system::Mlcd mlcd;
  system::JobRequest request = base_request();
  request.journal_path = temp_path("a.mlcdj");
  request.resume_path = temp_path("b.mlcdj");
  const system::DeployResult outcome = mlcd.deploy(request);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, system::JobErrorCode::kInvalidRequest);
}

TEST(CrashSafety, ReportCarriesSchema3CrashFields) {
  const system::Mlcd mlcd;
  system::JobRequest request = base_request();
  request.journal_path = temp_path("schema3.mlcdj");
  const system::RunReport golden = mlcd.deploy(request).report();

  system::JobRequest resume = base_request();
  resume.resume_path = request.journal_path;
  const system::RunReport resumed = mlcd.deploy(resume).report();
  EXPECT_EQ(system::RunReport::kJsonSchemaVersion, 4);
  const std::string json = resumed.to_json();
  // Ladder-free runs keep emitting the byte-identical v3 document.
  EXPECT_NE(json.find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(json.find("\"resumed_from\""), std::string::npos);
  EXPECT_NE(json.find("\"replayed_probes\""), std::string::npos);
  EXPECT_NE(json.find("\"probe_timeouts\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded_iterations\""), std::string::npos);
  EXPECT_GT(resumed.result.replayed_probes, 0);
  (void)golden;
}

// -------------------------------------------------------- probe watchdog

TEST(Watchdog, ShortDeadlineTimesOutEveryAttemptAndStillBills) {
  const cloud::InstanceCatalog cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 8);
  const perf::TrainingPerfModel perf(cat);
  perf::TrainingConfig config;
  config.model = models::paper_zoo().model("resnet");
  config.platform = perf::tensorflow_profile();
  config.topology = perf::CommTopology::kParameterServer;

  profiler::ProfilerOptions options;
  // Far below the ~10-minute base window: every attempt is killed at the
  // deadline, billed for the elapsed window, and retried.
  options.probe_attempt_timeout_hours = 0.05;
  cloud::BillingMeter meter(space);
  profiler::Profiler profiler(perf, space, meter, 7, options);
  const profiler::ProfileResult r = profiler.profile(config, {0, 2});

  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.fault, cloud::FaultKind::kProbeTimeout);
  EXPECT_EQ(r.attempts, options.retry.max_attempts);
  ASSERT_EQ(r.attempt_log.size(),
            static_cast<std::size_t>(options.retry.max_attempts));
  double billed = 0.0;
  for (const cloud::AttemptRecord& a : r.attempt_log) {
    EXPECT_EQ(a.fault, cloud::FaultKind::kProbeTimeout);
    EXPECT_EQ(a.hours, options.probe_attempt_timeout_hours);
    EXPECT_GT(a.cost, 0.0);  // elapsed reserve is still billed
    billed += a.cost;
  }
  EXPECT_EQ(r.profile_cost, billed);
  EXPECT_EQ(r.profile_cost, meter.total_cost());

  // The worst-case bound the reserve budgets against caps at the
  // deadline too.
  EXPECT_LE(profiler.worst_case_profile_hours(config, {0, 2}),
            options.retry.max_attempts *
                    (options.probe_attempt_timeout_hours +
                     options.retry.max_backoff_hours) +
                1e-12);
}

TEST(Watchdog, GenerousDeadlineIsBitIdenticalToNoWatchdog) {
  const cloud::InstanceCatalog cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 8);
  const perf::TrainingPerfModel perf(cat);
  perf::TrainingConfig config;
  config.model = models::paper_zoo().model("resnet");
  config.platform = perf::tensorflow_profile();
  config.topology = perf::CommTopology::kParameterServer;

  cloud::BillingMeter meter_a(space);
  profiler::Profiler bare(perf, space, meter_a, 7);
  const profiler::ProfileResult a = bare.profile(config, {0, 3});

  profiler::ProfilerOptions options;
  options.probe_attempt_timeout_hours = 100.0;
  options.watchdog_wall_seconds = 3600.0;
  cloud::BillingMeter meter_b(space);
  profiler::Profiler guarded(perf, space, meter_b, 7, options);
  const profiler::ProfileResult b = guarded.profile(config, {0, 3});

  EXPECT_EQ(a.measured_speed, b.measured_speed);
  EXPECT_EQ(a.profile_hours, b.profile_hours);
  EXPECT_EQ(a.profile_cost, b.profile_cost);
  EXPECT_EQ(a.extensions, b.extensions);
}

TEST(Watchdog, TimeoutsSurviveTheResumeSweep) {
  // A deadline between the 1-node window and the stretched large-window
  // probes: some probes time out, and the journaled kProbeTimeout
  // attempts must replay bit-exactly.
  const system::Mlcd mlcd;
  system::JobRequest request = base_request();
  request.profiler_options.probe_attempt_timeout_hours = 0.2;
  request.journal_path = temp_path("timeout-golden.mlcdj");
  const system::RunReport golden = mlcd.deploy(request).report();

  const std::string bytes = read_file(request.journal_path);
  const std::vector<std::size_t> offsets = record_boundaries(bytes);
  // Resume from the halfway record boundary.
  const std::size_t cut = offsets[offsets.size() / 2];
  const std::string path = temp_path("timeout-resume.mlcdj");
  write_file(path, bytes.substr(0, cut));

  system::JobRequest resume = base_request();
  resume.profiler_options.probe_attempt_timeout_hours = 0.2;
  resume.resume_path = path;
  const system::DeployResult outcome = mlcd.deploy(resume);
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  expect_traces_identical(golden.result, outcome.report().result);
  EXPECT_EQ(golden.result.probe_timeout_count(),
            outcome.report().result.probe_timeout_count());
}

// -------------------------------------------------- graceful degradation

class DegradeTest : public testing::Test {
 protected:
  DegradeTest()
      : cat_(cloud::aws_catalog().subset(std::vector<std::string>{
            "c5.xlarge", "c5.4xlarge", "p2.xlarge"})),
        space_(cat_, 10),
        perf_(cat_) {}

  search::SearchProblem problem(std::uint64_t seed = 7) const {
    search::SearchProblem p;
    p.config.model = models::paper_zoo().model("resnet");
    p.config.platform = perf::tensorflow_profile();
    p.config.topology = perf::CommTopology::kParameterServer;
    p.space = &space_;
    p.scenario = search::Scenario::fastest_under_budget(200.0);
    p.seed = seed;
    return p;
  }

  cloud::InstanceCatalog cat_;
  cloud::DeploymentSpace space_;
  perf::TrainingPerfModel perf_;
};

TEST_F(DegradeTest, HeterBoSurvivesChaosDegradeAndJournalsIt) {
  search::SearchProblem p = problem();
  p.chaos_degrade_hook = [](int iteration) {
    return iteration == 2 || iteration == 3;
  };
  const std::string path = temp_path("degrade.mlcdj");
  journal::JournalHeader header;
  header.method = "heterbo";
  journal::RunJournal writer = journal::RunJournal::create(path, header);
  p.journal = &writer;

  search::HeterBoSearcher searcher(perf_);
  const search::SearchResult result = searcher.run(p);
  EXPECT_EQ(result.degraded_iterations, 2);
  EXPECT_TRUE(result.found);
  int degraded_probes = 0;
  for (const search::ProbeStep& s : result.trace) {
    if (s.reason == "degraded") ++degraded_probes;
  }
  EXPECT_EQ(degraded_probes, 2);

  const journal::JournalContents contents = journal::read_journal(path);
  ASSERT_EQ(contents.degraded.size(), 2u);
  EXPECT_EQ(contents.degraded[0].iteration, 2);
  EXPECT_EQ(contents.degraded[0].why, "chaos degrade hook");

  // Degradation is deterministic: a replayed continuation re-derives the
  // same episodes and the same trace.
  search::SearchProblem replayed = problem();
  replayed.chaos_degrade_hook = p.chaos_degrade_hook;
  replayed.replay = contents.probes;
  const search::SearchResult again = searcher.run(replayed);
  ASSERT_EQ(again.trace.size(), result.trace.size());
  for (std::size_t i = 0; i < again.trace.size(); ++i) {
    EXPECT_EQ(again.trace[i].deployment, result.trace[i].deployment);
    EXPECT_EQ(again.trace[i].cum_profile_cost,
              result.trace[i].cum_profile_cost);
  }
  EXPECT_EQ(again.degraded_iterations, result.degraded_iterations);
  EXPECT_EQ(again.replayed_probes,
            static_cast<int>(contents.probes.size()));
}

TEST_F(DegradeTest, ConvBoSurvivesChaosDegrade) {
  search::SearchProblem p = problem();
  p.chaos_degrade_hook = [](int iteration) { return iteration == 1; };
  search::ConvBoSearcher searcher(perf_);
  const search::SearchResult result = searcher.run(p);
  EXPECT_EQ(result.degraded_iterations, 1);
  EXPECT_TRUE(result.found);
  bool saw_degraded_probe = false;
  for (const search::ProbeStep& s : result.trace) {
    saw_degraded_probe = saw_degraded_probe || s.reason == "degraded";
  }
  EXPECT_TRUE(saw_degraded_probe);
}

TEST_F(DegradeTest, PermanentDegradationNeverViolatesTheReserve) {
  // Every iteration degrades: the search runs entirely in safe mode and
  // must still respect the protective reserve / budget.
  search::SearchProblem p = problem();
  p.scenario = search::Scenario::fastest_under_budget(60.0);
  p.chaos_degrade_hook = [](int) { return true; };
  search::HeterBoSearcher searcher(perf_);
  const search::SearchResult result = searcher.run(p);
  EXPECT_GT(result.degraded_iterations, 0);
  EXPECT_LE(result.profile_cost, 60.0);
  if (result.found) {
    EXPECT_TRUE(result.meets_constraints(p.scenario));
  }
}

// ------------------------------------------------------------- fuzz sweep

/// A small but representative run journal: header plus probes carrying
/// strings, attempt logs, and extreme doubles.
std::string valid_journal_bytes() {
  const std::string path = temp_path("fuzz.mlcdj");
  journal::RunJournal j = journal::RunJournal::create(path, sample_header());
  journal::ProbeRecord probe;
  probe.type_index = 3;
  probe.nodes = 5;
  probe.feasible = true;
  probe.measured_speed = 0.1 + 0.2;
  probe.profile_hours = 5e-324;
  probe.reason = "tei \"quoted\"";
  probe.attempt_log = {{1, 0.05, 0.25, 0.031}};
  j.append_probe(probe);
  probe.nodes = 2;
  probe.failed = true;
  j.append_probe(probe);
  j.append_degrade({1, "fuzz"});
  return read_file(path);
}

std::string valid_manifest_bytes() {
  const std::string path = temp_path("fuzz.mlcdb");
  service::BatchManifestHeader header;
  header.workload_hash = 0xDEADBEEFCAFEF00DULL;
  header.job_count = 2;
  std::unique_ptr<service::BatchJournal> manifest =
      service::BatchJournal::create(path, header);
  service::BatchJobRecord record;
  record.name = "a";
  manifest->append(record);
  record.phase = service::BatchJobPhase::kFinished;
  record.journal_file = "job-0-a.mlcdj";
  record.ok = true;
  record.outcome = "ok";
  record.report_digest = 77;
  manifest->append(record);
  manifest.reset();
  return read_file(path);
}

/// One fuzz verdict: the reader accepted the bytes (possibly dropping a
/// torn tail) or refused them with a typed JournalError. Anything else —
/// a crash, a hang, or an untyped exception — fails the sweep.
enum class FuzzVerdict { kAccepted, kAcceptedTruncated, kRefusedTyped };

template <typename Reader>
FuzzVerdict fuzz_read(const std::string& path, const Reader& reader) {
  try {
    return reader(path) ? FuzzVerdict::kAcceptedTruncated
                        : FuzzVerdict::kAccepted;
  } catch (const journal::JournalError&) {
    return FuzzVerdict::kRefusedTyped;
  }
  // Any other exception type escapes and fails the test: corruption must
  // surface as the typed error, never as a generic crash.
}

template <typename Reader>
void run_fuzz_sweep(const std::string& bytes, const std::string& path,
                    const Reader& reader) {
  // Truncation at every byte: a kill can land anywhere. Every prefix
  // must read as a valid journal with a dropped tail, or refuse typed.
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    write_file(path, bytes.substr(0, cut));
    fuzz_read(path, reader);  // must return, not crash or hang
  }
  // Seeded single-bit flip at every byte: at-rest corruption. The framing
  // CRC must catch every flip — acceptance is only legal when the flip
  // landed in the final record (dropped as a torn tail).
  // Corrupting the newline that *ends* the penultimate record merges it
  // into the final line, so the droppable tail zone starts one byte
  // before the final record.
  const std::size_t last_line = bytes.rfind('\n', bytes.size() - 2);
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ (1u << (state % 8)));
    write_file(path, flipped);
    const FuzzVerdict verdict = fuzz_read(path, reader);
    EXPECT_NE(verdict, FuzzVerdict::kAccepted)
        << "bit flip at byte " << i << " was silently accepted";
    if (verdict == FuzzVerdict::kAcceptedTruncated) {
      EXPECT_GE(i, last_line)
          << "flip at byte " << i << " before the tail read as torn tail";
    }
  }
}

TEST(JournalFuzz, RunJournalSurvivesBitFlipAndTruncationSweep) {
  const std::string path = temp_path("fuzz_run_sweep.mlcdj");
  run_fuzz_sweep(valid_journal_bytes(), path, [](const std::string& p) {
    return journal::read_journal(p).truncated_tail;
  });
}

TEST(JournalFuzz, BatchManifestSurvivesBitFlipAndTruncationSweep) {
  const std::string path = temp_path("fuzz_manifest_sweep.mlcdb");
  run_fuzz_sweep(valid_manifest_bytes(), path, [](const std::string& p) {
    return service::read_manifest(p).truncated_tail;
  });
}

}  // namespace
}  // namespace mlcd
