// Unit and property tests for src/gp: kernels, Nelder–Mead, GP regression.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "gp/gp_regressor.hpp"
#include "gp/kernel.hpp"
#include "gp/nelder_mead.hpp"
#include "linalg/cholesky.hpp"
#include "util/rng.hpp"

namespace mlcd::gp {
namespace {

std::vector<std::unique_ptr<Kernel>> all_kernels(std::size_t dim) {
  std::vector<std::unique_ptr<Kernel>> out;
  out.push_back(std::make_unique<SquaredExponentialKernel>(dim));
  out.push_back(std::make_unique<Matern32Kernel>(dim));
  out.push_back(std::make_unique<Matern52Kernel>(dim));
  return out;
}

// ----------------------------------------------------------------- kernel

TEST(Kernel, SelfCovarianceIsSignalVariance) {
  for (const auto& k : all_kernels(2)) {
    const std::vector<double> x{0.3, -1.2};
    EXPECT_NEAR((*k)(x, x), 1.0, 1e-14) << k->name();
  }
}

TEST(Kernel, Symmetry) {
  util::Rng rng(1);
  for (const auto& k : all_kernels(3)) {
    for (int trial = 0; trial < 20; ++trial) {
      const std::vector<double> a{rng.normal(), rng.normal(), rng.normal()};
      const std::vector<double> b{rng.normal(), rng.normal(), rng.normal()};
      EXPECT_DOUBLE_EQ((*k)(a, b), (*k)(b, a)) << k->name();
    }
  }
}

TEST(Kernel, DecaysWithDistance) {
  for (const auto& k : all_kernels(1)) {
    double prev = 2.0;
    for (double d : {0.0, 0.5, 1.0, 2.0, 4.0}) {
      const std::vector<double> a{0.0}, b{d};
      const double v = (*k)(a, b);
      EXPECT_LT(v, prev) << k->name();
      EXPECT_GT(v, 0.0) << k->name();
      prev = v;
    }
  }
}

// Property: the Gram matrix of any kernel on random points is PSD
// (Cholesky with jitter succeeds).
class KernelPsd : public testing::TestWithParam<int> {};

TEST_P(KernelPsd, GramMatrixIsPsd) {
  util::Rng rng(50 + GetParam());
  const std::size_t n = 12;
  for (const auto& k : all_kernels(2)) {
    linalg::Matrix pts(n, 2);
    for (std::size_t i = 0; i < n; ++i) {
      pts(i, 0) = rng.uniform(-3, 3);
      pts(i, 1) = rng.uniform(-3, 3);
    }
    linalg::Matrix gram(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        gram(i, j) = (*k)(pts.row(i), pts.row(j));
      }
    }
    EXPECT_NO_THROW(linalg::CholeskyFactor{gram}) << k->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPsd, testing::Range(0, 8));

TEST(Kernel, LogParamRoundTrip) {
  Matern52Kernel k(3);
  k.set_signal_stddev(2.5);
  k.set_lengthscale(0, 0.3);
  k.set_lengthscale(1, 1.7);
  k.set_lengthscale(2, 4.0);
  const auto lp = k.log_params();
  Matern52Kernel k2(3);
  k2.set_log_params(lp);
  EXPECT_NEAR(k2.signal_variance(), 6.25, 1e-12);
  EXPECT_NEAR(k2.lengthscales()[1], 1.7, 1e-12);
}

TEST(Kernel, ArdLengthscalesScaleDimensionsIndependently) {
  Matern52Kernel k(2);
  k.set_lengthscale(0, 10.0);  // dimension 0 nearly ignored
  k.set_lengthscale(1, 0.1);   // dimension 1 very sensitive
  const std::vector<double> base{0.0, 0.0};
  const std::vector<double> move0{1.0, 0.0};
  const std::vector<double> move1{0.0, 1.0};
  EXPECT_GT(k(base, move0), 0.9);
  EXPECT_LT(k(base, move1), 0.01);
}

TEST(Kernel, InvalidParametersThrow) {
  Matern52Kernel k(2);
  EXPECT_THROW(k.set_signal_stddev(0.0), std::invalid_argument);
  EXPECT_THROW(k.set_lengthscale(0, -1.0), std::invalid_argument);
  EXPECT_THROW(k.set_lengthscale(5, 1.0), std::out_of_range);
  EXPECT_THROW(k.set_log_params(std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(Matern52Kernel(0), std::invalid_argument);
}

TEST(Kernel, DimensionMismatchThrows) {
  Matern52Kernel k(2);
  EXPECT_THROW(k(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Kernel, CloneIsDeepCopy) {
  Matern52Kernel k(1);
  k.set_lengthscale(0, 0.5);
  auto clone = k.clone();
  k.set_lengthscale(0, 5.0);
  const std::vector<double> a{0.0}, b{1.0};
  EXPECT_NE((*clone)(a, b), k(a, b));
}

// ------------------------------------------------------------ Nelder-Mead

TEST(NelderMead, MinimizesQuadratic) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  const auto r = nelder_mead(f, {0.0, 0.0});
  EXPECT_NEAR(r.x[0], 3.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
  EXPECT_TRUE(r.converged);
}

TEST(NelderMead, MinimizesRosenbrock) {
  auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.max_iterations = 5000;
  const auto r = nelder_mead(f, {-1.2, 1.0}, opts);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, HandlesInfiniteRegions) {
  // Objective rejects x < 0 with +inf; minimum at boundary-adjacent 0.5.
  auto f = [](const std::vector<double>& x) {
    if (x[0] < 0.0) return std::numeric_limits<double>::infinity();
    return (x[0] - 0.5) * (x[0] - 0.5);
  };
  const auto r = nelder_mead(f, {2.0});
  EXPECT_NEAR(r.x[0], 0.5, 1e-4);
}

TEST(NelderMead, NanTreatedAsRejection) {
  auto f = [](const std::vector<double>& x) {
    if (x[0] < 0.0) return std::nan("");
    return x[0] * x[0];
  };
  const auto r = nelder_mead(f, {1.0});
  EXPECT_GE(r.x[0], 0.0);
  EXPECT_NEAR(r.x[0], 0.0, 1e-3);
}

TEST(NelderMead, EmptyStartThrows) {
  EXPECT_THROW(nelder_mead([](const std::vector<double>&) { return 0.0; },
                           {}),
               std::invalid_argument);
}

TEST(NelderMead, RespectsIterationBudget) {
  auto f = [](const std::vector<double>& x) { return std::abs(x[0]); };
  NelderMeadOptions opts;
  opts.max_iterations = 3;
  const auto r = nelder_mead(f, {100.0}, opts);
  EXPECT_LE(r.iterations, 3);
}

// ------------------------------------------------------------ GpRegressor

GpRegressor make_gp(bool optimize = false) {
  GpOptions options;
  options.optimize_hyperparameters = optimize;
  options.noise_stddev = 1e-3;
  return GpRegressor(std::make_unique<Matern52Kernel>(1), options);
}

TEST(GpRegressor, InterpolatesTrainingPoints) {
  GpRegressor gp = make_gp();
  linalg::Matrix x{{0.0}, {0.5}, {1.0}};
  linalg::Vector y{1.0, 3.0, 2.0};
  gp.fit(x, y);
  for (std::size_t i = 0; i < 3; ++i) {
    const Prediction p = gp.predict(x.row(i));
    EXPECT_NEAR(p.mean, y[i], 5e-2);
    EXPECT_LT(p.stddev(), 0.2);
  }
}

TEST(GpRegressor, UncertaintyGrowsAwayFromData) {
  GpRegressor gp = make_gp();
  linalg::Matrix x{{0.0}, {0.1}};
  linalg::Vector y{0.0, 0.1};
  gp.fit(x, y);
  const double near = gp.predict(std::vector<double>{0.05}).variance;
  const double far = gp.predict(std::vector<double>{3.0}).variance;
  EXPECT_LT(near, far);
}

TEST(GpRegressor, VarianceIsNonNegativeEverywhere) {
  GpRegressor gp = make_gp();
  linalg::Matrix x{{0.0}, {0.2}, {0.21}, {0.9}};
  linalg::Vector y{1.0, 1.2, 1.21, 0.3};
  gp.fit(x, y);
  for (double q = -1.0; q <= 2.0; q += 0.05) {
    EXPECT_GE(gp.predict(std::vector<double>{q}).variance, 0.0);
  }
}

TEST(GpRegressor, DuplicateInputsDoNotCrash) {
  GpRegressor gp = make_gp();
  linalg::Matrix x{{0.5}, {0.5}, {0.5}};
  linalg::Vector y{1.0, 1.05, 0.95};
  EXPECT_NO_THROW(gp.fit(x, y));
  const Prediction p = gp.predict(std::vector<double>{0.5});
  EXPECT_NEAR(p.mean, 1.0, 0.1);
}

TEST(GpRegressor, HyperparameterMleImprovesLikelihood) {
  // Data from a short-lengthscale function; MLE should beat the unit
  // lengthscale default.
  util::Rng rng(3);
  const std::size_t n = 15;
  linalg::Matrix x(n, 1);
  linalg::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / n;
    y[i] = std::sin(20.0 * x(i, 0)) + 0.01 * rng.normal();
  }
  GpRegressor fixed = make_gp(false);
  fixed.fit(x, y);
  GpRegressor tuned = make_gp(true);
  tuned.fit(x, y);
  EXPECT_GT(tuned.log_marginal_likelihood(),
            fixed.log_marginal_likelihood());
}

TEST(GpRegressor, NormalizationHandlesLargeTargets) {
  GpRegressor gp = make_gp();
  linalg::Matrix x{{0.0}, {0.5}, {1.0}};
  linalg::Vector y{10000.0, 30000.0, 20000.0};
  gp.fit(x, y);
  EXPECT_NEAR(gp.predict(std::vector<double>{0.5}).mean, 30000.0, 2000.0);
}

TEST(GpRegressor, PredictBeforeFitThrows) {
  GpRegressor gp = make_gp();
  EXPECT_THROW(gp.predict(std::vector<double>{0.0}), std::logic_error);
  EXPECT_THROW(gp.log_marginal_likelihood(), std::logic_error);
}

TEST(GpRegressor, ShapeErrorsThrow) {
  GpRegressor gp = make_gp();
  EXPECT_THROW(gp.fit(linalg::Matrix(2, 1), linalg::Vector{1.0}),
               std::invalid_argument);
  EXPECT_THROW(gp.fit(linalg::Matrix(), linalg::Vector{}),
               std::invalid_argument);
  linalg::Matrix x{{0.0}, {1.0}};
  gp.fit(x, linalg::Vector{1.0, 2.0});
  EXPECT_THROW(gp.predict(std::vector<double>{0.0, 1.0}),
               std::invalid_argument);
}

TEST(GpRegressor, NullKernelThrows) {
  EXPECT_THROW(GpRegressor(nullptr), std::invalid_argument);
}

TEST(GpRegressor, CopyIsIndependent) {
  GpRegressor gp = make_gp();
  linalg::Matrix x{{0.0}, {1.0}};
  gp.fit(x, linalg::Vector{0.0, 1.0});
  GpRegressor copy = gp;
  // Refit the original with different data; the copy must not change.
  gp.fit(x, linalg::Vector{5.0, 5.0});
  EXPECT_NEAR(copy.predict(std::vector<double>{1.0}).mean, 1.0, 0.1);
}

TEST(GpRegressor, IncrementalUpdateMatchesBatchFit) {
  GpOptions options;
  options.optimize_hyperparameters = false;
  options.normalize_targets = false;
  options.noise_stddev = 1e-2;

  util::Rng rng(9);
  linalg::Matrix x(6, 1);
  linalg::Vector y(6);
  for (std::size_t i = 0; i < 6; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = std::sin(4.0 * x(i, 0));
  }

  // Incremental: fit on the first 3, add the rest one by one.
  GpRegressor incremental(std::make_unique<Matern52Kernel>(1), options);
  linalg::Matrix head(3, 1);
  linalg::Vector head_y(3);
  for (std::size_t i = 0; i < 3; ++i) {
    head(i, 0) = x(i, 0);
    head_y[i] = y[i];
  }
  incremental.fit(head, head_y);
  for (std::size_t i = 3; i < 6; ++i) {
    incremental.add_observation(x.row(i), y[i]);
  }

  GpRegressor batch(std::make_unique<Matern52Kernel>(1), options);
  batch.fit(x, y);

  EXPECT_EQ(incremental.observation_count(), 6u);
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    const Prediction a = incremental.predict(std::vector<double>{q});
    const Prediction b = batch.predict(std::vector<double>{q});
    EXPECT_NEAR(a.mean, b.mean, 1e-9);
    EXPECT_NEAR(a.variance, b.variance, 1e-9);
  }
}

TEST(GpRegressor, IncrementalUpdateWithNormalizationFallsBackToRefit) {
  GpOptions options;
  options.optimize_hyperparameters = false;
  options.normalize_targets = true;
  GpRegressor gp(std::make_unique<Matern52Kernel>(1), options);
  linalg::Matrix x{{0.0}, {0.5}};
  gp.fit(x, linalg::Vector{100.0, 300.0});
  gp.add_observation(std::vector<double>{1.0}, 200.0);
  EXPECT_EQ(gp.observation_count(), 3u);
  // The refit path must agree with a batch fit of all three points.
  GpRegressor batch(std::make_unique<Matern52Kernel>(1), options);
  linalg::Matrix all{{0.0}, {0.5}, {1.0}};
  batch.fit(all, linalg::Vector{100.0, 300.0, 200.0});
  EXPECT_NEAR(gp.predict(std::vector<double>{0.25}).mean,
              batch.predict(std::vector<double>{0.25}).mean, 1e-9);
}

TEST(GpRegressor, AddObservationErrors) {
  GpRegressor gp = make_gp();
  EXPECT_THROW(gp.add_observation(std::vector<double>{0.0}, 1.0),
               std::logic_error);
  linalg::Matrix x{{0.0}};
  gp.fit(x, linalg::Vector{1.0});
  EXPECT_THROW(gp.add_observation(std::vector<double>{0.0, 1.0}, 1.0),
               std::invalid_argument);
}

// Property: posterior mean is sandwiched by data range for interpolation-
// like 1-D fits (Matern mean reverts toward prior between/beyond points).
class GpMeanBound : public testing::TestWithParam<int> {};

TEST_P(GpMeanBound, MeanStaysNearDataRange) {
  util::Rng rng(700 + GetParam());
  const std::size_t n = 8;
  linalg::Matrix x(n, 1);
  linalg::Vector y(n);
  double lo = 1e9, hi = -1e9;
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    y[i] = rng.uniform(-2.0, 2.0);
    lo = std::min(lo, y[i]);
    hi = std::max(hi, y[i]);
  }
  GpRegressor gp = make_gp(true);
  gp.fit(x, y);
  const double margin = 1.5 * (hi - lo) + 1.0;
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    const double mean = gp.predict(std::vector<double>{q}).mean;
    EXPECT_GT(mean, lo - margin);
    EXPECT_LT(mean, hi + margin);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpMeanBound, testing::Range(0, 6));

}  // namespace
}  // namespace mlcd::gp
