// Performance observatory tests: schema round-trip, history I/O,
// allocation-counter thread safety, perfcheck edge cases, the legacy
// snapshot converter, and the end-to-end CLI contract (including the
// acceptance criterion: a synthetic 2x latency regression must exit
// nonzero and name the offending metric).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "obs/gate_metrics.hpp"
#include "obs/history.hpp"
#include "obs/metric.hpp"
#include "obs/perfcheck.hpp"
#include "obs/registry.hpp"
#include "obs/resource.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace mlcd;
using obs::HistoryRecord;
using obs::MetricSample;
using obs::MetricVerdict;
using obs::PerfcheckOptions;
using obs::VerdictStatus;

namespace fs = std::filesystem;

// Unique scratch directory per test, removed on teardown.
class ObsTempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("mlcd_obs_") + info->test_suite_name() + "_" +
            info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

 private:
  fs::path dir_;
};

MetricSample make_sample(const std::string& name, double value,
                         bool lower_is_better = true,
                         double alert_threshold = 0.10) {
  MetricSample s;
  s.name = name;
  s.unit = "ms";
  s.lower_is_better = lower_is_better;
  s.values.push_back(value);
  s.alert_threshold = alert_threshold;
  return s;
}

HistoryRecord make_record(const std::string& run_id,
                          std::vector<MetricSample> metrics,
                          const std::string& suite = "test-suite") {
  HistoryRecord r;
  r.suite = suite;
  r.run_id = run_id;
  r.hardware_threads = 1;
  r.metrics = std::move(metrics);
  return r;
}

const MetricVerdict* find_verdict(const std::vector<MetricVerdict>& vs,
                                  const std::string& name) {
  for (const MetricVerdict& v : vs) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

// ---------------------------------------------------------- schema

TEST(ObsSchema, MetricSampleValueIsMedianOfReplicates) {
  MetricSample s = make_sample("lat", 100.0);
  s.values = {100.0, 5000.0, 90.0};  // one straggler replicate
  EXPECT_DOUBLE_EQ(s.value(), 100.0);
  s.values = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(s.value(), 15.0);
}

TEST(ObsSchema, MedianOfEmptyIsNaN) {
  EXPECT_TRUE(std::isnan(obs::median({})));
}

TEST(ObsSchema, HistoryRecordRoundTripsThroughJson) {
  MetricSample rich = make_sample("scan_per_sec", 123.5, false, 0.25);
  rich.unit = "candidates/s";
  rich.values = {123.5, 130.25, 119.0};
  rich.normalize_by = "calibration_fits_per_sec";
  rich.normalize_op = obs::NormalizeOp::kMultiply;
  rich.min_threads = 4;
  rich.alert_floor = 1.5;
  rich.note = "per-thread scan";
  MetricSample info = make_sample("wall_s", 1.25);
  info.should_alert = false;

  const HistoryRecord before = make_record("pr9", {rich, info});
  const HistoryRecord after =
      HistoryRecord::from_json(util::parse_json(before.to_json()));

  EXPECT_EQ(after.schema_version, obs::kObsSchemaVersion);
  EXPECT_EQ(after.suite, before.suite);
  EXPECT_EQ(after.run_id, "pr9");
  EXPECT_EQ(after.hardware_threads, 1);
  ASSERT_EQ(after.metrics.size(), 2u);

  const MetricSample* r = after.find("scan_per_sec");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->unit, "candidates/s");
  EXPECT_FALSE(r->lower_is_better);
  EXPECT_EQ(r->values, rich.values);
  EXPECT_TRUE(r->should_alert);
  EXPECT_DOUBLE_EQ(r->alert_threshold, 0.25);
  EXPECT_EQ(r->normalize_by, "calibration_fits_per_sec");
  EXPECT_EQ(r->normalize_op, obs::NormalizeOp::kMultiply);
  EXPECT_EQ(r->min_threads, 4);
  ASSERT_TRUE(r->has_floor());
  EXPECT_DOUBLE_EQ(r->alert_floor, 1.5);
  EXPECT_EQ(r->note, "per-thread scan");

  const MetricSample* i = after.find("wall_s");
  ASSERT_NE(i, nullptr);
  EXPECT_FALSE(i->should_alert);
  EXPECT_TRUE(i->normalize_by.empty());
  EXPECT_EQ(i->min_threads, 0);
  EXPECT_FALSE(i->has_floor());
}

TEST(ObsSchema, RejectsRecordsFromANewerSchema) {
  HistoryRecord r = make_record("pr9", {make_sample("m", 1.0)});
  std::string json = r.to_json();
  const std::string key = "\"obs_schema_version\":1";
  const auto pos = json.find(key);
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, key.size(), "\"obs_schema_version\":99");
  EXPECT_THROW(HistoryRecord::from_json(util::parse_json(json)),
               std::invalid_argument);
}

// ---------------------------------------------------------- history

TEST_F(ObsTempDir, HistoryAppendsAndLoadsInOrder) {
  const std::string path = obs::history_path(dir(), "pr2-fastpath-gate");
  obs::append_history(path, make_record("pr2", {make_sample("m", 1.0)}));
  obs::append_history(path, make_record("pr3", {make_sample("m", 2.0)}));

  const auto records = obs::load_history_file(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].run_id, "pr2");
  EXPECT_EQ(records[1].run_id, "pr3");
  EXPECT_DOUBLE_EQ(records[1].find("m")->value(), 2.0);
}

TEST_F(ObsTempDir, MissingHistoryFileLoadsEmpty) {
  EXPECT_TRUE(obs::load_history_file(dir() + "/nope.jsonl").empty());
}

TEST_F(ObsTempDir, MalformedHistoryLineNamesTheLine) {
  const std::string path = obs::history_path(dir(), "suite");
  obs::append_history(path, make_record("pr2", {make_sample("m", 1.0)}));
  {
    std::ofstream out(path, std::ios::app);
    out << "this is not json\n";
  }
  try {
    obs::load_history_file(path);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos)
        << e.what();
  }
}

TEST(ObsHistory, PathSanitizesSuiteName) {
  const std::string path = obs::history_path("h", "a/b c");
  EXPECT_EQ(path.find('/'), 1u);  // only the directory separator
  EXPECT_EQ(path.find(' '), std::string::npos);
  EXPECT_NE(path.find(".jsonl"), std::string::npos);
}

// ---------------------------------------------------------- registry

TEST(ObsRegistry, DuplicateAndEmptyNamesThrow) {
  obs::MetricRegistry reg("suite");
  reg.add(make_sample("m", 1.0));
  EXPECT_THROW(reg.add(make_sample("m", 2.0)), std::logic_error);
  EXPECT_THROW(reg.add(make_sample("", 2.0)), std::logic_error);
}

TEST(ObsRegistry, RecordAppendsReplicates) {
  obs::MetricRegistry reg("suite");
  reg.record("lat", "ms", true, 10.0);
  reg.record("lat", "ms", true, 12.0);
  const MetricSample* m = reg.find("lat");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->values.size(), 2u);
  EXPECT_DOUBLE_EQ(m->value(), 11.0);
}

TEST(ObsRegistry, ResourceSeriesIncludesMemoryAccounting) {
  // This binary links mlcd_obs_alloc, so the full series must appear.
  ASSERT_TRUE(obs::alloc_hook_active());
  obs::ResourceProbe probe;
  std::vector<std::string> churn;
  for (int i = 0; i < 64; ++i) churn.emplace_back(256, 'x');

  obs::MetricRegistry reg("suite");
  reg.record_resources(probe);
  ASSERT_NE(reg.find("process_wall_seconds"), nullptr);
  EXPECT_FALSE(reg.find("process_wall_seconds")->should_alert);
  ASSERT_NE(reg.find("peak_rss_mb"), nullptr);
  EXPECT_GT(reg.find("peak_rss_mb")->value(), 0.0);
  ASSERT_NE(reg.find("alloc_count"), nullptr);
  EXPECT_GE(reg.find("alloc_count")->value(), 64.0);
  ASSERT_NE(reg.find("alloc_mb"), nullptr);

  const HistoryRecord snap = reg.snapshot("pr9");
  EXPECT_EQ(snap.suite, "suite");
  EXPECT_GE(snap.hardware_threads, 1);
}

TEST(ObsResource, AllocCounterIsThreadSafeUnderThreadPool) {
  ASSERT_TRUE(obs::alloc_hook_active());
  constexpr std::size_t kTasks = 2000;
  constexpr std::size_t kBytes = 1024;

  obs::ResourceProbe probe;
  util::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      volatile char* p = new char[kBytes];
      p[0] = static_cast<char>(i);
      delete[] const_cast<char*>(p);
    }
  });

  // Concurrent counting must lose nothing: the pool itself allocates
  // too, so the delta is a floor, not an equality.
  const obs::AllocCounters delta = probe.alloc_delta();
  EXPECT_GE(delta.allocations, kTasks);
  EXPECT_GE(delta.bytes, kTasks * kBytes);
}

// ---------------------------------------------------------- perfcheck

PerfcheckOptions test_options() {
  PerfcheckOptions o;
  o.hardware_threads = 1;
  return o;
}

TEST(Perfcheck, FirstEverRunPassesAsFirstRun) {
  const auto verdicts = obs::check_suite(
      {make_record("pr2", {make_sample("lat", 100.0)})}, test_options());
  const MetricVerdict* v = find_verdict(verdicts, "lat");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->status, VerdictStatus::kFirstRun);
}

TEST(Perfcheck, ExactlyAtThresholdPasses) {
  // Identical baselines: MAD is zero, so allowed = alert_threshold.
  // +10% on a 10% contract is at the line, not over it.
  std::vector<HistoryRecord> records;
  for (int i = 0; i < 3; ++i) {
    records.push_back(
        make_record("pr" + std::to_string(i), {make_sample("lat", 100.0)}));
  }
  records.push_back(make_record("latest", {make_sample("lat", 110.0)}));
  const auto verdicts = obs::check_suite(records, test_options());
  const MetricVerdict* v = find_verdict(verdicts, "lat");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->status, VerdictStatus::kOk);
  EXPECT_NEAR(v->change, 0.10, 1e-12);
}

TEST(Perfcheck, TwoTimesLatencyRegressionAlerts) {
  std::vector<HistoryRecord> records;
  for (int i = 0; i < 3; ++i) {
    records.push_back(
        make_record("pr" + std::to_string(i), {make_sample("lat", 100.0)}));
  }
  records.push_back(make_record("latest", {make_sample("lat", 200.0)}));
  const auto verdicts = obs::check_suite(records, test_options());
  const MetricVerdict* v = find_verdict(verdicts, "lat");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->status, VerdictStatus::kAlert);
  EXPECT_NEAR(v->change, 1.0, 1e-12);
  EXPECT_NEAR(v->baseline, 100.0, 1e-12);
  EXPECT_NEAR(v->latest, 200.0, 1e-12);
}

TEST(Perfcheck, ImprovementsNeverAlert) {
  std::vector<HistoryRecord> records;
  for (int i = 0; i < 3; ++i) {
    records.push_back(
        make_record("pr" + std::to_string(i), {make_sample("lat", 100.0)}));
  }
  records.push_back(make_record("latest", {make_sample("lat", 50.0)}));
  const auto verdicts = obs::check_suite(records, test_options());
  EXPECT_EQ(find_verdict(verdicts, "lat")->status, VerdictStatus::kOk);
  EXPECT_LT(find_verdict(verdicts, "lat")->change, 0.0);
}

TEST(Perfcheck, MissingAlertingMetricAlerts) {
  std::vector<HistoryRecord> records;
  records.push_back(make_record(
      "pr2", {make_sample("lat", 100.0), make_sample("rss", 50.0)}));
  records.push_back(make_record("latest", {make_sample("lat", 100.0)}));
  const auto verdicts = obs::check_suite(records, test_options());
  const MetricVerdict* v = find_verdict(verdicts, "rss");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->status, VerdictStatus::kMissing);

  obs::PerfcheckReport report;
  report.verdicts = verdicts;
  EXPECT_EQ(report.alert_count(), 1);
}

TEST(Perfcheck, NoisyReplicatesUseTheMedian) {
  // The latest run has one wild replicate; the median keeps it honest.
  std::vector<HistoryRecord> records;
  for (int i = 0; i < 3; ++i) {
    records.push_back(
        make_record("pr" + std::to_string(i), {make_sample("lat", 100.0)}));
  }
  MetricSample noisy = make_sample("lat", 100.0);
  noisy.values = {98.0, 5000.0, 102.0};
  records.push_back(make_record("latest", {noisy}));
  const auto verdicts = obs::check_suite(records, test_options());
  EXPECT_EQ(find_verdict(verdicts, "lat")->status, VerdictStatus::kOk);
}

TEST(Perfcheck, BaselineNoiseWidensTheWindowNeverNarrows) {
  // Baselines jitter ~15% MAD around 100; a 5% contract would page on
  // every run, so the window widens to 3x the observed noise.
  const std::vector<double> base = {70.0, 100.0, 130.0, 100.0, 85.0};
  std::vector<HistoryRecord> records;
  for (std::size_t i = 0; i < base.size(); ++i) {
    records.push_back(make_record("pr" + std::to_string(i),
                                  {make_sample("lat", base[i], true, 0.05)}));
  }
  records.push_back(
      make_record("latest", {make_sample("lat", 130.0, true, 0.05)}));
  const auto verdicts = obs::check_suite(records, test_options());
  const MetricVerdict* v = find_verdict(verdicts, "lat");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->status, VerdictStatus::kOk);
  EXPECT_GT(v->allowed, 0.05);
}

TEST(Perfcheck, MinThreadsSkipsOnSmallMachines) {
  MetricSample mt = make_sample("speedup", 3.5, false);
  mt.min_threads = 4;
  std::vector<HistoryRecord> records;
  records.push_back(make_record("pr4", {mt}));
  records.push_back(make_record("latest", {mt}));
  PerfcheckOptions options = test_options();
  options.hardware_threads = 1;
  const auto verdicts = obs::check_suite(records, options);
  const MetricVerdict* v = find_verdict(verdicts, "speedup");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->status, VerdictStatus::kSkipped);
}

TEST(Perfcheck, AbsoluteFloorAlertsEvenOnFirstRun) {
  MetricSample speedup = make_sample("speedup_t4", 0.8, false);
  speedup.alert_floor = 1.0;
  std::vector<HistoryRecord> records;
  records.push_back(make_record("first", {speedup}));
  const auto verdicts = obs::check_suite(records, test_options());
  const MetricVerdict* v = find_verdict(verdicts, "speedup_t4");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->status, VerdictStatus::kAlert);
  EXPECT_NE(v->detail.find("floor"), std::string::npos);
}

TEST(Perfcheck, ValueAtTheFloorPassesToTheRelativeGate) {
  MetricSample speedup = make_sample("speedup_t4", 1.0, false);
  speedup.alert_floor = 1.0;
  std::vector<HistoryRecord> records;
  records.push_back(make_record("first", {speedup}));
  const auto verdicts = obs::check_suite(records, test_options());
  const MetricVerdict* v = find_verdict(verdicts, "speedup_t4");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->status, VerdictStatus::kFirstRun);
}

TEST(Perfcheck, FloorActsAsCeilingForLowerIsBetter) {
  // lane_idle_fraction style: lower_is_better with a 0.35 cap. A value
  // above the cap alerts even when the rolling baseline would pass it.
  MetricSample idle = make_sample("idle_fraction", 0.30, true);
  idle.alert_floor = 0.35;
  std::vector<HistoryRecord> records;
  for (int i = 0; i < 3; ++i) {
    records.push_back(make_record("pr" + std::to_string(i), {idle}));
  }
  MetricSample blown = idle;
  blown.values = {0.40};  // only +33% vs baseline, but over the cap
  blown.alert_threshold = 1.0;
  records.push_back(make_record("latest", {blown}));
  const auto verdicts = obs::check_suite(records, test_options());
  const MetricVerdict* v = find_verdict(verdicts, "idle_fraction");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->status, VerdictStatus::kAlert);
  EXPECT_NE(v->detail.find("ceiling"), std::string::npos);
}

TEST(Perfcheck, FloorStillHonorsMinThreadsSkip) {
  MetricSample speedup = make_sample("speedup_t4", 0.5, false);
  speedup.alert_floor = 1.0;
  speedup.min_threads = 4;
  std::vector<HistoryRecord> records;
  records.push_back(make_record("first", {speedup}));
  PerfcheckOptions options = test_options();
  options.hardware_threads = 1;
  const auto verdicts = obs::check_suite(records, options);
  const MetricVerdict* v = find_verdict(verdicts, "speedup_t4");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->status, VerdictStatus::kSkipped);
}

TEST(GateMetrics, ServiceSpeedupCarriesTheAbsoluteFloor) {
  const MetricSample pr4 =
      obs::gate_metric("pr4-service-gate", "jobs_per_sec_speedup_t4", 1.4);
  ASSERT_TRUE(pr4.has_floor());
  EXPECT_DOUBLE_EQ(pr4.alert_floor, 1.0);
  const MetricSample pr10 =
      obs::gate_metric("pr10-sharded-gate", "jobs_per_sec_speedup_t4", 1.4);
  ASSERT_TRUE(pr10.has_floor());
  EXPECT_DOUBLE_EQ(pr10.alert_floor, 1.0);
  EXPECT_EQ(pr10.min_threads, 4);
  const MetricSample idle =
      obs::gate_metric("pr10-sharded-gate", "lane_idle_fraction", 0.1);
  ASSERT_TRUE(idle.has_floor());
  EXPECT_DOUBLE_EQ(idle.alert_floor, 0.35);
  EXPECT_TRUE(idle.lower_is_better);
  const MetricSample steals =
      obs::gate_metric("pr10-sharded-gate", "steal_count", 12.0);
  EXPECT_FALSE(steals.should_alert);
  EXPECT_FALSE(steals.has_floor());
}

TEST(Perfcheck, InformationalMetricsNeverGate) {
  MetricSample info = make_sample("wall_s", 1.0);
  info.should_alert = false;
  std::vector<HistoryRecord> records;
  records.push_back(make_record("pr2", {info}));
  MetricSample blown = info;
  blown.values = {100.0};  // 100x "regression" on an info metric
  records.push_back(make_record("latest", {blown}));
  const auto verdicts = obs::check_suite(records, test_options());
  EXPECT_EQ(find_verdict(verdicts, "wall_s")->status, VerdictStatus::kInfo);
}

TEST(Perfcheck, CalibrationNormalizationCancelsMachineSpeed) {
  auto record_at = [](const std::string& run, double throughput,
                      double calibration) {
    MetricSample m = make_sample("scan_per_sec", throughput, false, 0.10);
    m.normalize_by = "calibration_fits_per_sec";
    m.normalize_op = obs::NormalizeOp::kDivide;
    MetricSample cal = make_sample("calibration_fits_per_sec", calibration,
                                   false);
    cal.should_alert = false;
    return make_record(run, {m, cal});
  };

  // Latest ran on a machine 2x faster: raw throughput doubled, but so
  // did the calibration metric — normalized, nothing moved.
  std::vector<HistoryRecord> fast_machine = {
      record_at("pr2", 1000.0, 50.0), record_at("pr3", 1000.0, 50.0),
      record_at("latest", 2000.0, 100.0)};
  auto verdicts = obs::check_suite(fast_machine, test_options());
  EXPECT_EQ(find_verdict(verdicts, "scan_per_sec")->status,
            VerdictStatus::kOk);

  // Same machine, throughput halved: a real regression survives the
  // normalization.
  std::vector<HistoryRecord> real_regression = {
      record_at("pr2", 1000.0, 50.0), record_at("pr3", 1000.0, 50.0),
      record_at("latest", 500.0, 50.0)};
  verdicts = obs::check_suite(real_regression, test_options());
  EXPECT_EQ(find_verdict(verdicts, "scan_per_sec")->status,
            VerdictStatus::kAlert);

  // Calibration absent from the latest record: skip (with a reason),
  // never a spurious alert.
  std::vector<HistoryRecord> no_calibration = {
      record_at("pr2", 1000.0, 50.0),
      make_record("latest",
                  {[] {
                    MetricSample m =
                        make_sample("scan_per_sec", 1000.0, false, 0.10);
                    m.normalize_by = "calibration_fits_per_sec";
                    return m;
                  }()})};
  verdicts = obs::check_suite(no_calibration, test_options());
  EXPECT_EQ(find_verdict(verdicts, "scan_per_sec")->status,
            VerdictStatus::kSkipped);
}

// ------------------------------------------------ gate-metric catalog

TEST(GateMetrics, DurabilityOverheadRatioHasTheWideThreshold) {
  // Satellite contract: fsync-per-record over microsecond-scale probes
  // is a stress ceiling, so only order-of-magnitude movement alerts.
  const MetricSample m =
      obs::gate_metric("pr8-durability-gate", "durability_overhead_ratio",
                       40.0);
  EXPECT_TRUE(m.should_alert);
  EXPECT_TRUE(m.lower_is_better);
  EXPECT_DOUBLE_EQ(m.alert_threshold, 1.50);
  EXPECT_NE(m.note.find("microsecond"), std::string::npos);
}

TEST(GateMetrics, UnknownNamesAreInformational) {
  const MetricSample m = obs::gate_metric("pr4-service-gate",
                                          "surprise_metric", 1.0);
  EXPECT_FALSE(m.should_alert);
  EXPECT_DOUBLE_EQ(m.value(), 1.0);
}

TEST(GateMetrics, DottedScenarioNamesMatchOnTheFinalSegment) {
  const MetricSample m = obs::gate_metric(
      "pr7-multi-fidelity-gate", "budget.probe_cost_ratio", 0.4);
  EXPECT_TRUE(m.should_alert);
  EXPECT_TRUE(m.lower_is_better);
}

// ------------------------------------------------------- converter

TEST(LegacyConverter, FlatMetricsSnapshot) {
  const std::string snapshot = R"({
    "bench": "pr2-fastpath-gate",
    "hardware_threads": 1,
    "metrics": {
      "gp_incremental_adds_per_sec": 3000.0,
      "calibration_fits_per_sec": 120.0,
      "made_up_extra": 7.0
    }
  })";
  const HistoryRecord r =
      obs::convert_legacy_snapshot(util::parse_json(snapshot), "pr2");
  EXPECT_EQ(r.suite, "pr2-fastpath-gate");
  EXPECT_EQ(r.run_id, "pr2");
  EXPECT_EQ(r.hardware_threads, 1);
  ASSERT_EQ(r.metrics.size(), 3u);

  const MetricSample* gp = r.find("gp_incremental_adds_per_sec");
  ASSERT_NE(gp, nullptr);
  EXPECT_TRUE(gp->should_alert);
  EXPECT_FALSE(gp->lower_is_better);
  EXPECT_EQ(gp->normalize_by, "calibration_fits_per_sec");
  const MetricSample* extra = r.find("made_up_extra");
  ASSERT_NE(extra, nullptr);
  EXPECT_FALSE(extra->should_alert);
}

TEST(LegacyConverter, ScenarioSnapshot) {
  const std::string snapshot = R"({
    "bench": "pr7-multi-fidelity-gate",
    "scenarios": [
      {"scenario": "deadline", "probe_cost_ratio": 0.42, "seeds": 10},
      {"scenario": "budget", "probe_cost_ratio": 0.38, "seeds": 10}
    ]
  })";
  const HistoryRecord r =
      obs::convert_legacy_snapshot(util::parse_json(snapshot), "pr7");
  EXPECT_EQ(r.suite, "pr7-multi-fidelity-gate");
  const MetricSample* m = r.find("deadline.probe_cost_ratio");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->should_alert);
  EXPECT_DOUBLE_EQ(m->value(), 0.42);
  ASSERT_NE(r.find("budget.probe_cost_ratio"), nullptr);
  EXPECT_FALSE(r.find("budget.seeds")->should_alert);
}

TEST(LegacyConverter, RejectsUnrecognizedSnapshots) {
  EXPECT_THROW(
      obs::convert_legacy_snapshot(util::parse_json(R"({"foo": 1})"), "x"),
      std::invalid_argument);
  EXPECT_THROW(
      obs::convert_legacy_snapshot(
          util::parse_json(R"({"bench": "b", "nothing": 1})"), "x"),
      std::invalid_argument);
}

// ------------------------------------------------------------- CLI

int drive(std::vector<const char*> argv, std::string* out_text = nullptr,
          std::string* err_text = nullptr) {
  argv.insert(argv.begin(), "mlcd");
  std::ostringstream out, err;
  const int rc =
      cli::run(static_cast<int>(argv.size()), argv.data(), out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return rc;
}

class PerfcheckCli : public ObsTempDir {
 protected:
  void write_suite(const std::string& suite, std::vector<double> runs,
                   double alert_threshold = 0.10) {
    const std::string path = obs::history_path(dir(), suite);
    int n = 0;
    for (const double value : runs) {
      obs::append_history(
          path,
          make_record("run" + std::to_string(n++),
                      {make_sample("latency_ms", value, true,
                                   alert_threshold)},
                      suite));
    }
  }
};

TEST_F(PerfcheckCli, CleanHistoryPasses) {
  write_suite("svc", {100.0, 101.0, 99.0, 100.0});
  std::string out;
  EXPECT_EQ(drive({"perfcheck", "--history-dir", dir().c_str()}, &out), 0);
  EXPECT_NE(out.find("RESULT: OK"), std::string::npos) << out;
}

TEST_F(PerfcheckCli, SyntheticTwoTimesRegressionFailsAndNamesTheMetric) {
  // The acceptance criterion: inject a 2x latency regression as the
  // latest record and the check must exit nonzero, naming the metric.
  write_suite("svc", {100.0, 101.0, 99.0, 200.0});
  std::string out;
  EXPECT_EQ(drive({"perfcheck", "--history-dir", dir().c_str()}, &out), 1);
  EXPECT_NE(out.find("latency_ms"), std::string::npos) << out;
  EXPECT_NE(out.find("RESULT: ALERT"), std::string::npos) << out;
}

TEST_F(PerfcheckCli, SuiteFilterChecksOneSuite) {
  write_suite("good", {100.0, 100.0, 100.0});
  write_suite("bad", {100.0, 100.0, 200.0});
  EXPECT_EQ(drive({"perfcheck", "--history-dir", dir().c_str(), "--suite",
                   "good"}),
            0);
  EXPECT_EQ(drive({"perfcheck", "--history-dir", dir().c_str(), "--suite",
                   "bad"}),
            1);
  EXPECT_EQ(drive({"perfcheck", "--history-dir", dir().c_str()}), 1);
}

TEST_F(PerfcheckCli, MissingHistoryDirIsAnArtifactError) {
  const std::string missing = dir() + "/does-not-exist";
  std::string err;
  EXPECT_EQ(drive({"perfcheck", "--history-dir", missing.c_str()}, nullptr,
                  &err),
            3);
  EXPECT_FALSE(err.empty());
}

TEST_F(PerfcheckCli, MigrateThenCheckRoundTrips) {
  const std::string snapshot_path = dir() + "/BENCH_PR2.json";
  {
    std::ofstream out(snapshot_path);
    out << R"({"bench": "pr2-fastpath-gate", "hardware_threads": 1,
               "metrics": {"gp_incremental_adds_per_sec": 3000.0,
                           "calibration_fits_per_sec": 120.0}})";
  }
  const std::string history = dir() + "/history";
  std::string out;
  EXPECT_EQ(drive({"perfcheck", "migrate", snapshot_path.c_str(),
                   "--history-dir", history.c_str()},
                  &out),
            0);
  EXPECT_NE(out.find("pr2-fastpath-gate"), std::string::npos) << out;

  const auto records = obs::load_history_file(
      obs::history_path(history, "pr2-fastpath-gate"));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].run_id, "pr2");  // derived from the filename

  // A first-ever history passes the check.
  EXPECT_EQ(drive({"perfcheck", "--history-dir", history.c_str()}), 0);
}

TEST_F(PerfcheckCli, MigrateRejectsUnreadableSnapshot) {
  const std::string missing = dir() + "/BENCH_PR99.json";
  std::string err;
  EXPECT_EQ(drive({"perfcheck", "migrate", missing.c_str(),
                   "--history-dir", dir().c_str()},
                  nullptr, &err),
            3);
  EXPECT_FALSE(err.empty());
}

}  // namespace
