// Tests for search::CompletionModel — the single shared copy of the
// projected-completion arithmetic. The expression's floating-point
// evaluation order is load-bearing (the golden suite pins the traces it
// feeds), so these tests compare bit-for-bit against the exact product
// every pre-refactor call site computed, not against a tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cloud/deployment.hpp"
#include "cloud/instance.hpp"
#include "search/completion_model.hpp"

namespace mlcd::search {
namespace {

constexpr double kSamples = 1.2e9;

TEST(CompletionModel, MatchesTheLegacyExpressionBitForBit) {
  const cloud::DeploymentSpace space(cloud::aws_catalog(), 10);
  const CompletionModel model(kSamples, space);
  const cloud::Deployment d{3, 7};
  for (const double speed : {12.5, 3800.0, 0.037}) {
    // Exactly samples / speed / 3600 * multiplier, in that order.
    const double expected = kSamples / speed / 3600.0 *
                            space.restart_overhead_multiplier(d);
    EXPECT_EQ(model.training_hours(d, speed), expected);
    EXPECT_EQ(model.training_cost(d, speed),
              expected * space.hourly_price(d));
  }
}

TEST(CompletionModel, SpotMarketInflatesHoursButNotRawHours) {
  const cloud::DeploymentSpace on_demand(cloud::aws_catalog(), 10,
                                         cloud::Market::kOnDemand);
  const cloud::DeploymentSpace spot(cloud::aws_catalog(), 10,
                                    cloud::Market::kSpot);
  const CompletionModel od_model(kSamples, on_demand);
  const CompletionModel spot_model(kSamples, spot);
  const cloud::Deployment d{0, 8};
  const double speed = 950.0;

  // On-demand: multiplier is exactly 1, so projected == raw.
  EXPECT_EQ(on_demand.restart_overhead_multiplier(d), 1.0);
  EXPECT_EQ(od_model.training_hours(d, speed),
            od_model.raw_training_hours(speed));

  // Spot: revocation overhead inflates the projection ...
  EXPECT_GT(spot.restart_overhead_multiplier(d), 1.0);
  EXPECT_GT(spot_model.training_hours(d, speed),
            spot_model.raw_training_hours(speed));
  // ... but never the raw hours TEI budgets with (paper Eqs. 5/6 price
  // the nominal run), which are market-independent.
  EXPECT_EQ(spot_model.raw_training_hours(speed),
            od_model.raw_training_hours(speed));
  EXPECT_EQ(spot_model.raw_training_hours(speed),
            kSamples / speed / 3600.0);
}

TEST(CompletionModel, NonPositiveSpeedProjectsInfinite) {
  const cloud::DeploymentSpace space(cloud::aws_catalog(), 10);
  const CompletionModel model(kSamples, space);
  const cloud::Deployment d{1, 2};
  for (const double speed : {0.0, -5.0}) {
    EXPECT_TRUE(std::isinf(model.training_hours(d, speed)));
    EXPECT_TRUE(std::isinf(model.raw_training_hours(speed)));
    // A non-finite projection propagates unchanged into the cost, never
    // multiplied into a NaN.
    EXPECT_TRUE(std::isinf(model.training_cost(d, speed)));
    EXPECT_GT(model.training_cost(d, speed), 0.0);
  }
}

TEST(CompletionModel, ExposesItsSampleCount) {
  const cloud::DeploymentSpace space(cloud::aws_catalog(), 4);
  const CompletionModel model(kSamples, space);
  EXPECT_EQ(model.samples_to_train(), kSamples);
}

}  // namespace
}  // namespace mlcd::search
