// Unit tests for src/cloud: catalog, deployment space, billing, simulator.
#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <set>

#include <filesystem>

#include "cloud/billing.hpp"
#include "cloud/catalog_io.hpp"
#include "cloud/deployment.hpp"
#include "cloud/instance.hpp"
#include "cloud/simulator.hpp"

namespace mlcd::cloud {
namespace {

// ----------------------------------------------------------------- catalog

TEST(Catalog, HasExactly62Types) {
  // The paper's search-space arithmetic: 62 scale-up options (§III-B).
  EXPECT_EQ(aws_catalog().size(), 62u);
}

TEST(Catalog, NamesAreUnique) {
  std::set<std::string> names;
  for (const InstanceSpec& s : aws_catalog().all()) names.insert(s.name);
  EXPECT_EQ(names.size(), aws_catalog().size());
}

TEST(Catalog, Fig1aCostAnchor) {
  // Paper Fig. 1a: p2.8xlarge is 42.5x the hourly cost of c5.xlarge.
  const auto& cat = aws_catalog();
  const double p28 = cat.at(*cat.find("p2.8xlarge")).price_per_hour;
  const double c5x = cat.at(*cat.find("c5.xlarge")).price_per_hour;
  EXPECT_NEAR(p28 / c5x, 42.5, 0.1);
}

TEST(Catalog, PaperEvaluationFamiliesPresent) {
  // §V-A: c5, c5n, c4, p3 (V100), p2 (K80).
  const auto& cat = aws_catalog();
  for (const char* family : {"c5", "c5n", "c4", "p2", "p3"}) {
    EXPECT_FALSE(cat.family_indices(family).empty()) << family;
  }
}

TEST(Catalog, GpuFlagsConsistent) {
  for (const InstanceSpec& s : aws_catalog().all()) {
    EXPECT_EQ(s.is_gpu_instance(), is_gpu(s.device)) << s.name;
    if (s.is_gpu_instance()) EXPECT_GT(s.gpus, 0) << s.name;
  }
}

TEST(Catalog, FindMissingReturnsNullopt) {
  EXPECT_FALSE(aws_catalog().find("x1e.32xlarge").has_value());
}

TEST(Catalog, SubsetPreservesOrderAndRejectsUnknown) {
  const std::vector<std::string> names{"p2.xlarge", "c5.xlarge"};
  const InstanceCatalog sub = aws_catalog().subset(names);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.at(0).name, "p2.xlarge");
  EXPECT_EQ(sub.at(1).name, "c5.xlarge");
  const std::vector<std::string> bad{"c5.xlarge", "bogus"};
  EXPECT_THROW(aws_catalog().subset(bad), std::invalid_argument);
}

TEST(Catalog, AtBoundsChecked) {
  EXPECT_THROW(aws_catalog().at(aws_catalog().size()), std::out_of_range);
}

TEST(Catalog, InvalidSpecRejected) {
  InstanceSpec bad;
  bad.name = "broken";
  bad.price_per_hour = -1.0;
  EXPECT_THROW(InstanceCatalog({bad}), std::invalid_argument);
  EXPECT_THROW(InstanceCatalog(std::vector<InstanceSpec>{}),
               std::invalid_argument);
}

TEST(Catalog, StrictValidationNamesTheField) {
  const InstanceSpec good = aws_catalog().at(0);

  auto expect_rejected = [&](auto&& mutate, const std::string& field) {
    InstanceSpec s = good;
    mutate(s);
    try {
      InstanceCatalog({s});
      FAIL() << "spec with bad " << field << " was accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };

  expect_rejected([](InstanceSpec& s) { s.name.clear(); }, "name");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  expect_rejected([&](InstanceSpec& s) { s.price_per_hour = nan; },
                  "price_per_hour");
  expect_rejected([&](InstanceSpec& s) { s.price_per_hour = inf; },
                  "price_per_hour");
  expect_rejected([&](InstanceSpec& s) { s.price_per_hour = 0.0; },
                  "price_per_hour");
  expect_rejected([&](InstanceSpec& s) { s.effective_tflops = nan; },
                  "effective_tflops");
  expect_rejected([&](InstanceSpec& s) { s.network_gbps = -1.0; },
                  "network_gbps");
  expect_rejected([&](InstanceSpec& s) { s.mem_gib = nan; }, "mem_gib");
  expect_rejected([&](InstanceSpec& s) { s.spot_price_per_hour = -0.5; },
                  "spot_price_per_hour");
  expect_rejected([&](InstanceSpec& s) { s.vcpus = 0; }, "vcpus");
  expect_rejected([&](InstanceSpec& s) { s.gpus = -1; }, "gpus");
}

TEST(Catalog, DuplicateNamesRejected) {
  const InstanceSpec spec = aws_catalog().at(0);
  try {
    InstanceCatalog({spec, spec});
    FAIL() << "duplicate type names were accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(spec.name), std::string::npos)
        << e.what();
  }
}

TEST(Catalog, PricesScaleWithinFamily) {
  // Within a family, bigger instances cost more.
  const auto& cat = aws_catalog();
  for (const char* family : {"c5", "m5", "p2", "p3"}) {
    const auto idx = cat.family_indices(family);
    for (std::size_t i = 1; i < idx.size(); ++i) {
      EXPECT_GT(cat.at(idx[i]).price_per_hour,
                cat.at(idx[i - 1]).price_per_hour)
          << family;
    }
  }
}

TEST(Catalog, DeviceKindNames) {
  EXPECT_EQ(device_kind_name(DeviceKind::kGpuV100), "gpu-v100");
  EXPECT_EQ(device_kind_name(DeviceKind::kCpuAvx512), "cpu-avx512");
}

// --------------------------------------------------------------- space

TEST(Space, PaperSizeIs3100) {
  const DeploymentSpace space(aws_catalog(), 50);
  EXPECT_EQ(space.size(), 3100u);  // 62 x 50, §III-B
  EXPECT_EQ(space.enumerate().size(), 3100u);
}

TEST(Space, ContainsRespectsBounds) {
  const DeploymentSpace space(aws_catalog(), 50);
  EXPECT_TRUE(space.contains({0, 1}));
  EXPECT_TRUE(space.contains({61, 50}));
  EXPECT_FALSE(space.contains({0, 0}));
  EXPECT_FALSE(space.contains({0, 51}));
  EXPECT_FALSE(space.contains({62, 1}));
}

TEST(Space, PerTypeLimits) {
  const InstanceCatalog sub =
      aws_catalog().subset(std::vector<std::string>{"c5.xlarge", "p2.xlarge"});
  const DeploymentSpace space(sub, std::vector<int>{100, 50});
  EXPECT_EQ(space.size(), 150u);
  EXPECT_TRUE(space.contains({0, 100}));
  EXPECT_FALSE(space.contains({1, 51}));
  EXPECT_THROW(DeploymentSpace(sub, std::vector<int>{100}),
               std::invalid_argument);
  EXPECT_THROW(DeploymentSpace(sub, std::vector<int>{100, 0}),
               std::invalid_argument);
}

TEST(Space, GridEnumerationSkipsOutOfRange) {
  const InstanceCatalog sub =
      aws_catalog().subset(std::vector<std::string>{"c5.xlarge"});
  const DeploymentSpace space(sub, 10);
  const auto grid = space.enumerate_grid({1, 4, 8, 16});
  EXPECT_EQ(grid.size(), 3u);  // 16 out of range
  EXPECT_EQ(grid[2].nodes, 8);
}

TEST(Space, HourlyPriceIsLinearInNodes) {
  const DeploymentSpace space(aws_catalog(), 50);
  const std::size_t c5x = *aws_catalog().find("c5.xlarge");
  EXPECT_NEAR(space.hourly_price({c5x, 40}), 40 * 0.17, 1e-9);
  EXPECT_THROW(space.hourly_price({c5x, 51}), std::invalid_argument);
}

TEST(Space, DescribeFormat) {
  const DeploymentSpace space(aws_catalog(), 50);
  const std::size_t c54 = *aws_catalog().find("c5.4xlarge");
  EXPECT_EQ(space.describe({c54, 10}), "10 x c5.4xlarge");
}

// ----------------------------------------------------------------- spot

TEST(Spot, CatalogCarriesSpotFields) {
  for (const InstanceSpec& s : aws_catalog().all()) {
    EXPECT_GT(s.spot_price_per_hour, 0.0) << s.name;
    EXPECT_LT(s.spot_price_per_hour, s.price_per_hour) << s.name;
    EXPECT_GT(s.spot_revocations_per_hour, 0.0) << s.name;
    if (s.is_gpu_instance()) {
      // GPUs are reclaimed more aggressively.
      EXPECT_GE(s.spot_revocations_per_hour, 0.05) << s.name;
    }
  }
}

TEST(Spot, SpotSpacePricesSpotMarket) {
  const DeploymentSpace on_demand(aws_catalog(), 50);
  const DeploymentSpace spot(aws_catalog(), 50, Market::kSpot);
  const std::size_t c54 = *aws_catalog().find("c5.4xlarge");
  const Deployment d{c54, 10};
  EXPECT_LT(spot.hourly_price(d), 0.5 * on_demand.hourly_price(d));
  EXPECT_EQ(spot.market(), Market::kSpot);
  EXPECT_EQ(on_demand.market(), Market::kOnDemand);
}

TEST(Spot, RestartOverheadScalesWithNodes) {
  const DeploymentSpace spot(aws_catalog(), 50, Market::kSpot);
  const std::size_t c54 = *aws_catalog().find("c5.4xlarge");
  const double one = spot.restart_overhead_multiplier({c54, 1});
  const double many = spot.restart_overhead_multiplier({c54, 40});
  EXPECT_GT(one, 1.0);
  EXPECT_GT(many, one);
  // On-demand has no overhead.
  const DeploymentSpace od(aws_catalog(), 50);
  EXPECT_DOUBLE_EQ(od.restart_overhead_multiplier({c54, 40}), 1.0);
}

TEST(Spot, GpuOverheadExceedsCpuAtSameScale) {
  const DeploymentSpace spot(aws_catalog(), 50, Market::kSpot);
  const std::size_t cpu = *aws_catalog().find("c5.4xlarge");
  const std::size_t gpu = *aws_catalog().find("p3.2xlarge");
  EXPECT_GT(spot.restart_overhead_multiplier({gpu, 10}),
            spot.restart_overhead_multiplier({cpu, 10}));
}

// ------------------------------------------------------------- catalog io

TEST(CatalogIo, RoundTripPreservesEveryField) {
  const std::string path = testing::TempDir() + "/mlcd_catalog.csv";
  save_catalog_csv(aws_catalog(), path);
  const InstanceCatalog loaded = load_catalog_csv(path);
  ASSERT_EQ(loaded.size(), aws_catalog().size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const InstanceSpec& a = aws_catalog().at(i);
    const InstanceSpec& b = loaded.at(i);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.family, b.family);
    EXPECT_EQ(a.device, b.device);
    EXPECT_EQ(a.vcpus, b.vcpus);
    EXPECT_EQ(a.gpus, b.gpus);
    EXPECT_DOUBLE_EQ(a.mem_gib, b.mem_gib);
    EXPECT_DOUBLE_EQ(a.network_gbps, b.network_gbps);
    EXPECT_DOUBLE_EQ(a.price_per_hour, b.price_per_hour);
    EXPECT_DOUBLE_EQ(a.spot_price_per_hour, b.spot_price_per_hour);
    EXPECT_DOUBLE_EQ(a.spot_revocations_per_hour,
                     b.spot_revocations_per_hour);
    EXPECT_DOUBLE_EQ(a.effective_tflops, b.effective_tflops);
  }
  std::filesystem::remove(path);
}

TEST(CatalogIo, RejectsMalformedFiles) {
  const std::string path = testing::TempDir() + "/mlcd_catalog_bad.csv";
  EXPECT_THROW(load_catalog_csv("/nonexistent-zzz/cat.csv"),
               std::runtime_error);
  {
    std::ofstream out(path);
    out << "wrong,header\n";
  }
  EXPECT_THROW(load_catalog_csv(path), std::invalid_argument);
  {
    std::ofstream out(path);
    out << "name,family,device,vcpus,gpus,mem_gib,network_gbps,"
           "price_per_hour,spot_price_per_hour,spot_revocations_per_hour,"
           "effective_tflops\n";
    out << "x,f,warp-core,1,0,1,1,1,0.3,0.01,1\n";
  }
  EXPECT_THROW(load_catalog_csv(path), std::invalid_argument);
  {
    std::ofstream out(path);
    out << "name,family,device,vcpus,gpus,mem_gib,network_gbps,"
           "price_per_hour,spot_price_per_hour,spot_revocations_per_hour,"
           "effective_tflops\n";
    out << "x,f,cpu-avx512,1,0,1,1,abc,0.3,0.01,1\n";
  }
  EXPECT_THROW(load_catalog_csv(path), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(CatalogIo, DeviceKindNamesRoundTrip) {
  for (DeviceKind kind :
       {DeviceKind::kCpuAvx2, DeviceKind::kCpuAvx512, DeviceKind::kCpuBurst,
        DeviceKind::kGpuK80, DeviceKind::kGpuV100, DeviceKind::kGpuM60}) {
    EXPECT_EQ(device_kind_from_name(std::string(device_kind_name(kind))),
              kind);
  }
  EXPECT_THROW(device_kind_from_name("tpu-v4"), std::invalid_argument);
}

// -------------------------------------------------------------- billing

TEST(Billing, ChargesPricePerHourTimesNodes) {
  const DeploymentSpace space(aws_catalog(), 50);
  BillingMeter meter(space);
  const std::size_t c5x = *aws_catalog().find("c5.xlarge");
  const double cost = meter.charge({c5x, 10}, 2.0, UsageKind::kTraining);
  EXPECT_NEAR(cost, 10 * 0.17 * 2.0, 1e-6);
  EXPECT_NEAR(meter.total_cost(), cost, 1e-12);
}

TEST(Billing, MinimumBillingApplies) {
  const DeploymentSpace space(aws_catalog(), 50);
  BillingMeter meter(space, /*minimum_seconds=*/60.0);
  const std::size_t c5x = *aws_catalog().find("c5.xlarge");
  // 10 seconds of usage billed as 60 seconds.
  const double cost =
      meter.charge({c5x, 1}, 10.0 / 3600.0, UsageKind::kProfiling);
  EXPECT_NEAR(cost, 0.17 * 60.0 / 3600.0, 1e-9);
}

TEST(Billing, SecondsRoundedUp) {
  const DeploymentSpace space(aws_catalog(), 50);
  BillingMeter meter(space, 0.0);
  const std::size_t c5x = *aws_catalog().find("c5.xlarge");
  meter.charge({c5x, 1}, 100.4 / 3600.0, UsageKind::kProfiling);
  EXPECT_NEAR(meter.records()[0].billed_hours, 101.0 / 3600.0, 1e-12);
}

TEST(Billing, SplitsByUsageKind) {
  const DeploymentSpace space(aws_catalog(), 50);
  BillingMeter meter(space);
  const std::size_t c5x = *aws_catalog().find("c5.xlarge");
  meter.charge({c5x, 1}, 1.0, UsageKind::kProfiling);
  meter.charge({c5x, 1}, 2.0, UsageKind::kTraining);
  EXPECT_NEAR(meter.total_cost(UsageKind::kProfiling), 0.17, 1e-9);
  EXPECT_NEAR(meter.total_cost(UsageKind::kTraining), 0.34, 1e-9);
  EXPECT_NEAR(meter.total_hours(UsageKind::kProfiling), 1.0, 1e-12);
  EXPECT_NEAR(meter.total_hours(UsageKind::kTraining), 2.0, 1e-12);
}

TEST(Billing, NegativeHoursThrow) {
  const DeploymentSpace space(aws_catalog(), 50);
  BillingMeter meter(space);
  EXPECT_THROW(meter.charge({0, 1}, -1.0, UsageKind::kTraining),
               std::invalid_argument);
}

TEST(Billing, ResetClearsRecords) {
  const DeploymentSpace space(aws_catalog(), 50);
  BillingMeter meter(space);
  meter.charge({0, 1}, 1.0, UsageKind::kTraining);
  meter.reset();
  EXPECT_EQ(meter.records().size(), 0u);
  EXPECT_DOUBLE_EQ(meter.total_cost(), 0.0);
}

// -------------------------------------------------------------- simulator

TEST(Simulator, SetupTimeFollowsPaperRule) {
  // §V-A: 10 minutes for one node, +1 minute per 3 extra nodes.
  const DeploymentSpace space(aws_catalog(), 50);
  CloudSimulator sim(space, 1);
  EXPECT_NEAR(sim.expected_setup_hours({0, 1}), 10.0 / 60.0, 1e-12);
  EXPECT_NEAR(sim.expected_setup_hours({0, 4}), 11.0 / 60.0, 1e-12);
  EXPECT_NEAR(sim.expected_setup_hours({0, 10}), 13.0 / 60.0, 1e-12);
  EXPECT_NEAR(sim.expected_setup_hours({0, 50}), 10.0 / 60.0 + 16.0 / 60.0,
              1e-12);
}

TEST(Simulator, ProvisionIsDeterministicPerSeed) {
  const DeploymentSpace space(aws_catalog(), 50);
  CloudSimulator a(space, 42), b(space, 42);
  const Cluster ca = a.provision({3, 7});
  const Cluster cb = b.provision({3, 7});
  EXPECT_DOUBLE_EQ(ca.setup_hours, cb.setup_hours);
}

TEST(Simulator, JitterStaysNearExpectation) {
  const DeploymentSpace space(aws_catalog(), 50);
  CloudSimulator sim(space, 7);
  const double expected = sim.expected_setup_hours({0, 10});
  for (int i = 0; i < 20; ++i) {
    const Cluster c = sim.provision({0, 10});
    EXPECT_NEAR(c.setup_hours, expected, expected * 0.2);
  }
}

TEST(Simulator, OutOfSpaceThrows) {
  const DeploymentSpace space(aws_catalog(), 50);
  CloudSimulator sim(space, 1);
  EXPECT_THROW(sim.provision({0, 51}), std::invalid_argument);
}

TEST(Simulator, ClusterIdsIncrease) {
  const DeploymentSpace space(aws_catalog(), 50);
  CloudSimulator sim(space, 1);
  const Cluster a = sim.provision({0, 1});
  const Cluster b = sim.provision({0, 1});
  EXPECT_LT(a.id, b.id);
  EXPECT_EQ(sim.provisioned_count(), 2u);
}

}  // namespace
}  // namespace mlcd::cloud
