// Unit and property tests for src/linalg: Matrix and Cholesky.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace mlcd::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  }
  return m;
}

/// A * A^T + eps*I is SPD for any A with full row rank (eps guards rank).
Matrix random_spd(std::size_t n, util::Rng& rng) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix spd = a * a.transposed();
  spd.add_to_diagonal(0.5);
  return spd;
}

// ------------------------------------------------------------------ matrix

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(Matrix, IdentityMultiplicationIsNeutral) {
  util::Rng rng(1);
  const Matrix a = random_matrix(4, 4, rng);
  const Matrix i = Matrix::identity(4);
  EXPECT_LT(Matrix::max_abs_diff(a * i, a), 1e-14);
  EXPECT_LT(Matrix::max_abs_diff(i * a, a), 1e-14);
}

TEST(Matrix, TransposeInvolution) {
  util::Rng rng(2);
  const Matrix a = random_matrix(3, 5, rng);
  EXPECT_LT(Matrix::max_abs_diff(a.transposed().transposed(), a), 1e-15);
}

TEST(Matrix, MultiplicationAgainstHandComputed) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, MatVecMatchesMatMat) {
  util::Rng rng(3);
  const Matrix a = random_matrix(4, 3, rng);
  const Vector v{1.0, -2.0, 0.5};
  const Vector got = a * v;
  Matrix col(3, 1);
  for (std::size_t i = 0; i < 3; ++i) col(i, 0) = v[i];
  const Matrix want = a * col;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(got[i], want(i, 0), 1e-14);
  }
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  EXPECT_THROW((a * Vector{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(a + Matrix(3, 2), std::invalid_argument);
  EXPECT_THROW(a - Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, AddSubRoundTrip) {
  util::Rng rng(4);
  const Matrix a = random_matrix(3, 3, rng);
  const Matrix b = random_matrix(3, 3, rng);
  EXPECT_LT(Matrix::max_abs_diff((a + b) - b, a), 1e-14);
}

TEST(Matrix, AddToDiagonalRequiresSquare) {
  Matrix m(2, 3);
  EXPECT_THROW(m.add_to_diagonal(1.0), std::invalid_argument);
}

TEST(VectorOps, DotNormSubtractScale) {
  const Vector a{3.0, 4.0};
  const Vector b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  const Vector d = subtract(a, b);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  const Vector s = scale(a, 2.0);
  EXPECT_DOUBLE_EQ(s[0], 6.0);
  const Vector sum = add(a, b);
  EXPECT_DOUBLE_EQ(sum[1], 6.0);
  EXPECT_THROW(dot(a, Vector{1.0}), std::invalid_argument);
}

// ---------------------------------------------------------------- cholesky

TEST(Cholesky, FactorOfIdentityIsIdentity) {
  const CholeskyFactor f(Matrix::identity(3));
  EXPECT_LT(Matrix::max_abs_diff(f.lower(), Matrix::identity(3)), 1e-15);
  EXPECT_DOUBLE_EQ(f.jitter(), 0.0);
}

TEST(Cholesky, HandComputed2x2) {
  const Matrix a{{4, 2}, {2, 3}};
  const CholeskyFactor f(a);
  EXPECT_NEAR(f.lower()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(f.lower()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(f.lower()(1, 1), std::sqrt(2.0), 1e-12);
}

// Property: L L^T reconstructs A for random SPD matrices of many sizes.
class CholeskyProperty : public testing::TestWithParam<int> {};

TEST_P(CholeskyProperty, ReconstructsInput) {
  util::Rng rng(100 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  const CholeskyFactor f(a);
  const Matrix rebuilt = f.lower() * f.lower().transposed();
  EXPECT_LT(Matrix::max_abs_diff(rebuilt, a), 1e-9 * n);
}

TEST_P(CholeskyProperty, SolveSatisfiesSystem) {
  util::Rng rng(200 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.normal();
  const CholeskyFactor f(a);
  const Vector x = f.solve(b);
  const Vector ax = a * x;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST_P(CholeskyProperty, QuadraticFormMatchesSolve) {
  util::Rng rng(300 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.normal();
  const CholeskyFactor f(a);
  const Vector x = f.solve(b);
  EXPECT_NEAR(f.quadratic_form(b), dot(b, x), 1e-8 * n);
}

TEST_P(CholeskyProperty, LogDeterminantMatchesDiagonalProduct) {
  util::Rng rng(400 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  const CholeskyFactor f(a);
  double ld = 0.0;
  for (std::size_t i = 0; i < n; ++i) ld += 2.0 * std::log(f.lower()(i, i));
  EXPECT_NEAR(f.log_determinant(), ld, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyProperty,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Cholesky, NearSingularSucceedsWithJitter) {
  // Two identical rows: rank deficient, PSD but not PD.
  Matrix a{{1, 1}, {1, 1}};
  const CholeskyFactor f(a);
  EXPECT_GT(f.jitter(), 0.0);
}

TEST(Cholesky, IndefiniteMatrixThrows) {
  const Matrix a{{1, 0}, {0, -5}};
  EXPECT_THROW(CholeskyFactor(a, /*max_jitter_scalings=*/3),
               std::runtime_error);
}

TEST(Cholesky, NonSquareThrows) {
  EXPECT_THROW(CholeskyFactor(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, EmptyThrows) {
  EXPECT_THROW(CholeskyFactor{Matrix()}, std::invalid_argument);
}

TEST(Cholesky, SolveSizeMismatchThrows) {
  const CholeskyFactor f(Matrix::identity(3));
  EXPECT_THROW(f.solve(Vector{1.0}), std::invalid_argument);
  EXPECT_THROW(f.solve_lower(Vector{1.0}), std::invalid_argument);
  EXPECT_THROW(f.solve_lower_transpose(Vector{1.0}), std::invalid_argument);
}

// Property: extending the factor of A to the bordered matrix matches a
// fresh factorization of the bordered matrix.
class CholeskyExtend : public testing::TestWithParam<int> {};

TEST_P(CholeskyExtend, MatchesBatchFactorization) {
  util::Rng rng(500 + GetParam());
  const std::size_t n = 4 + GetParam();
  const Matrix big = random_spd(n + 1, rng);

  // Leading principal block, border column, corner.
  Matrix a(n, n);
  Vector col(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = big(r, c);
    col[r] = big(r, n);
  }

  CholeskyFactor grown(a);
  grown.extend(col, big(n, n));
  const CholeskyFactor batch(big);
  EXPECT_LT(Matrix::max_abs_diff(grown.lower(), batch.lower()), 1e-9);
  EXPECT_NEAR(grown.log_determinant(), batch.log_determinant(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyExtend, testing::Range(0, 6));

TEST(Cholesky, ExtendErrors) {
  CholeskyFactor f(Matrix::identity(3));
  EXPECT_THROW(f.extend(Vector{1.0}, 1.0), std::invalid_argument);
  // Corner too small: bordered matrix indefinite.
  EXPECT_THROW(f.extend(Vector{1.0, 0.0, 0.0}, 0.5), std::runtime_error);
  // Valid extension still works afterwards.
  f.extend(Vector{0.0, 0.0, 0.0}, 4.0);
  EXPECT_EQ(f.dim(), 4u);
  EXPECT_NEAR(f.lower()(3, 3), 2.0, 1e-12);
}

TEST(Cholesky, TriangularSolvesCompose) {
  util::Rng rng(77);
  const Matrix a = random_spd(6, rng);
  Vector b(6);
  for (auto& v : b) v = rng.normal();
  const CholeskyFactor f(a);
  const Vector via_parts = f.solve_lower_transpose(f.solve_lower(b));
  const Vector direct = f.solve(b);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(via_parts[i], direct[i]);
  }
}

}  // namespace
}  // namespace mlcd::linalg
