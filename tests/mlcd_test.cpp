// Unit tests for src/mlcd: the MLCD system shell (paper §IV).
#include <gtest/gtest.h>

#include <algorithm>

#include "mlcd/mlcd.hpp"

namespace mlcd::system {
namespace {

// -------------------------------------------------------- ScenarioAnalyzer

TEST(ScenarioAnalyzer, NoBoundsIsScenario1) {
  const ScenarioAnalyzer analyzer;
  const search::Scenario s = analyzer.analyze({});
  EXPECT_EQ(s.kind, search::ScenarioKind::kFastest);
}

TEST(ScenarioAnalyzer, DeadlineOnlyIsScenario2) {
  const ScenarioAnalyzer analyzer;
  UserRequirements req;
  req.deadline_hours = 6.0;
  const search::Scenario s = analyzer.analyze(req);
  EXPECT_EQ(s.kind, search::ScenarioKind::kCheapestUnderDeadline);
  EXPECT_DOUBLE_EQ(s.deadline_hours, 6.0);
}

TEST(ScenarioAnalyzer, BudgetOnlyIsScenario3) {
  const ScenarioAnalyzer analyzer;
  UserRequirements req;
  req.budget_dollars = 100.0;
  const search::Scenario s = analyzer.analyze(req);
  EXPECT_EQ(s.kind, search::ScenarioKind::kFastestUnderBudget);
  EXPECT_DOUBLE_EQ(s.budget_dollars, 100.0);
}

TEST(ScenarioAnalyzer, BothBoundsKeepsBoth) {
  const ScenarioAnalyzer analyzer;
  UserRequirements req;
  req.deadline_hours = 20.0;
  req.budget_dollars = 100.0;
  const search::Scenario s = analyzer.analyze(req);
  EXPECT_EQ(s.kind, search::ScenarioKind::kFastestUnderBudget);
  EXPECT_TRUE(s.has_deadline());
  EXPECT_TRUE(s.has_budget());
}

TEST(ScenarioAnalyzer, NonPositiveBoundsThrow) {
  const ScenarioAnalyzer analyzer;
  UserRequirements req;
  req.deadline_hours = 0.0;
  EXPECT_THROW(analyzer.analyze(req), std::invalid_argument);
  UserRequirements req2;
  req2.budget_dollars = -1.0;
  EXPECT_THROW(analyzer.analyze(req2), std::invalid_argument);
}

// ---------------------------------------------------- MlPlatformInterface

TEST(PlatformInterface, LargeModelsDefaultToRingAllReduce) {
  const MlPlatformInterface platforms;
  EXPECT_EQ(platforms.default_topology(models::paper_zoo().model("bert")),
            perf::CommTopology::kRingAllReduce);
  EXPECT_EQ(platforms.default_topology(models::paper_zoo().model("resnet")),
            perf::CommTopology::kParameterServer);
}

TEST(PlatformInterface, ExplicitTopologyWins) {
  const MlPlatformInterface platforms;
  const perf::TrainingConfig config = platforms.make_config(
      models::paper_zoo().model("bert"), "mxnet",
      perf::CommTopology::kParameterServer);
  EXPECT_EQ(config.topology, perf::CommTopology::kParameterServer);
  EXPECT_EQ(config.platform.name, "mxnet");
}

TEST(PlatformInterface, UnknownPlatformThrows) {
  const MlPlatformInterface platforms;
  EXPECT_THROW(platforms.platform("theano"), std::invalid_argument);
}

// ----------------------------------------------------------- SimulatedCloud

TEST(SimulatedCloud, DefaultProviderUsesFullCatalog) {
  const SimulatedCloud cloud;
  EXPECT_EQ(cloud.catalog().size(), 62u);
  EXPECT_EQ(cloud.provider_name(), "aws-sim");
}

// -------------------------------------------------------- DeploymentEngine

TEST(DeploymentEngine, KnownMethodsConstruct) {
  const SimulatedCloud cloud;
  const DeploymentEngine engine(cloud);
  for (const char* method :
       {"heterbo", "conv-bo", "bo-improved", "cherrypick",
        "cherrypick-improved", "random", "exhaustive", "paleo"}) {
    EXPECT_NO_THROW(engine.make_searcher(method)) << method;
  }
  EXPECT_THROW(engine.make_searcher("gradient-descent"),
               std::invalid_argument);
}

// --------------------------------------------------------------------- Mlcd

TEST(Mlcd, DeployEndToEndOnRestrictedSpace) {
  const Mlcd mlcd;
  JobRequest request;
  request.model = "resnet";
  request.instance_types = {"c5.4xlarge"};
  request.max_nodes = 50;
  request.requirements.budget_dollars = 100.0;
  request.seed = 7;

  const RunReport report = mlcd.deploy(request).report();
  EXPECT_TRUE(report.result.found);
  EXPECT_LE(report.result.total_cost(), 100.0);
  EXPECT_EQ(report.scenario.kind,
            search::ScenarioKind::kFastestUnderBudget);
  const std::string text = report.render();
  EXPECT_NE(text.find("MLCD run report"), std::string::npos);
  EXPECT_NE(text.find("resnet"), std::string::npos);
}

TEST(Mlcd, DeployWithBaselineMethod) {
  const Mlcd mlcd;
  JobRequest request;
  request.model = "resnet";
  request.instance_types = {"c5.4xlarge"};
  request.search_method = "conv-bo";
  request.seed = 3;
  const RunReport report = mlcd.deploy(request).report();
  EXPECT_TRUE(report.result.found);
  EXPECT_EQ(report.result.method, "conv-bo");
}

TEST(Mlcd, UnknownModelIsTypedError) {
  const Mlcd mlcd;
  JobRequest request;
  request.model = "not-a-model";
  const DeployResult outcome = mlcd.deploy(request);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, JobErrorCode::kUnknownModel);
  EXPECT_NE(outcome.error().message.find("not-a-model"),
            std::string::npos);
  // The value-style accessor surfaces the message for callers that
  // cannot handle a rejection.
  EXPECT_THROW(outcome.report(), std::runtime_error);
}

TEST(Mlcd, UnknownInstanceTypeIsTypedError) {
  const Mlcd mlcd;
  JobRequest request;
  request.model = "resnet";
  request.instance_types = {"quantum.64xlarge"};
  const DeployResult outcome = mlcd.deploy(request);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, JobErrorCode::kUnknownInstanceType);
}

TEST(Mlcd, UnknownMethodErrorListsChoices) {
  const Mlcd mlcd;
  JobRequest request;
  request.model = "resnet";
  request.instance_types = {"c5.4xlarge"};
  request.search_method = "gradient-descent";
  const DeployResult outcome = mlcd.deploy(request);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, JobErrorCode::kUnknownMethod);
  EXPECT_NE(outcome.error().message.find("heterbo"), std::string::npos);
  EXPECT_NE(outcome.error().message.find("cherrypick"), std::string::npos);
}

TEST(Mlcd, InvalidMaxNodesIsTypedError) {
  const Mlcd mlcd;
  JobRequest request;
  request.model = "resnet";
  request.max_nodes = 0;
  const DeployResult outcome = mlcd.deploy(request);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, JobErrorCode::kInvalidRequest);
}

TEST(Mlcd, ErrorAccessorOnSuccessThrows) {
  const Mlcd mlcd;
  JobRequest request;
  request.model = "resnet";
  request.instance_types = {"c5.4xlarge"};
  request.seed = 7;
  const DeployResult outcome = mlcd.deploy(request);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(static_cast<bool>(outcome));
  EXPECT_THROW(outcome.error(), std::logic_error);
}

TEST(Mlcd, JsonReportIsWellFormedAndComplete) {
  const Mlcd mlcd;
  JobRequest request;
  request.model = "resnet";
  request.instance_types = {"c5.4xlarge"};
  request.requirements.budget_dollars = 100.0;
  request.seed = 7;
  const RunReport report = mlcd.deploy(request).report();
  const std::string json = report.to_json();

  // Structural sanity: balanced braces/brackets, expected fields present.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  for (const char* field :
       {"\"schema_version\":3", "\"request\"", "\"scenario\"",
        "\"result\"", "\"trace\"", "\"deployment\"", "\"total_cost\"",
        "\"constraints_met\"", "\"budget_dollars\":100", "\"threads\"",
        "\"gp_refit_every\"", "\"journal\"", "\"resumed_from\"",
        "\"replayed_probes\"", "\"probe_timeouts\"",
        "\"degraded_iterations\"", "\"replayed\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(Mlcd, DeterministicPerSeed) {
  const Mlcd mlcd;
  JobRequest request;
  request.model = "resnet";
  request.instance_types = {"c5.4xlarge"};
  request.seed = 99;
  const RunReport a = mlcd.deploy(request).report();
  const RunReport b = mlcd.deploy(request).report();
  EXPECT_EQ(a.result.best, b.result.best);
  EXPECT_DOUBLE_EQ(a.result.profile_cost, b.result.profile_cost);
}

TEST(Mlcd, CustomZooModelDeployable) {
  models::ModelSpec custom;
  custom.name = "tiny_cnn";
  custom.kind = models::ModelKind::kCnn;
  custom.params = 1e6;
  custom.flops_per_sample = 0.2e9;
  custom.dataset = "cifar10";
  custom.samples_to_train = 5e6;
  custom.batch_per_node = 64;
  const models::ModelZoo zoo = models::paper_zoo().with_model(custom);
  const SimulatedCloud cloud;
  const Mlcd mlcd(cloud, zoo);

  JobRequest request;
  request.model = "tiny_cnn";
  request.instance_types = {"c5.xlarge", "c5.4xlarge"};
  request.seed = 5;
  const RunReport report = mlcd.deploy(request).report();
  EXPECT_TRUE(report.result.found);
}

}  // namespace
}  // namespace mlcd::system
