// Durable batch service tests: the write-ahead batch manifest
// (round-trip, torn tail, typed corruption refusals), the workload /
// report fingerprints replay verification rests on, storage-fault
// injection under both --journal-on-error policies (run journals and
// the batch manifest alike), in-process batch resume across every
// manifest state a kill can leave behind, capacity-pool revocation
// edges, and the process-kill harness: SIGKILL the real `mlcd batch`
// binary at a seeded sweep of points, resume, and assert the batch
// comes back bit-identical. See docs/crash-safety.md.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "journal/journal.hpp"
#include "mlcd/mlcd.hpp"
#include "service/batch_journal.hpp"
#include "service/batch_report.hpp"
#include "service/capacity.hpp"
#include "service/scheduler.hpp"
#include "service/workload.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define MLCD_HAVE_POSIX_SPAWN 1
#endif

namespace mlcd::service {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

/// A fresh, empty directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = temp_path(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Byte offsets of every record boundary (just after each '\n'),
/// including 0 and the file size.
std::vector<std::size_t> record_boundaries(const std::string& bytes) {
  std::vector<std::size_t> offsets = {0};
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == '\n') offsets.push_back(i + 1);
  }
  return offsets;
}

/// Installs a storage-fault injector for the lifetime of the scope.
class FaultScope {
 public:
  explicit FaultScope(const journal::IoFaultInjector::Options& options)
      : injector_(options) {
    journal::set_io_fault_injector(&injector_);
  }
  ~FaultScope() { journal::set_io_fault_injector(nullptr); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  journal::IoFaultInjector injector_;
};

journal::IoFaultInjector::Options fail_at(long long index,
                                          journal::IoFaultKind kind =
                                              journal::IoFaultKind::kFsyncFail) {
  journal::IoFaultInjector::Options options;
  options.fail_at = index;
  options.kind = kind;
  return options;
}

/// The two-job fleet every durable test runs: small, fast, and with two
/// different methods so the per-job journals differ.
Workload durable_fleet() {
  return parse_workload(R"({
    "jobs": [
      {"name": "a", "tenant": "t1", "model": "resnet", "seed": 7,
       "max_nodes": 8},
      {"name": "b", "tenant": "t2", "model": "alexnet", "seed": 9,
       "max_nodes": 8, "method": "random"}
    ]
  })");
}

SchedulerOptions durable_options(const std::string& dir) {
  SchedulerOptions options;
  options.threads = 1;  // deterministic global append order
  options.journal_dir = dir;
  return options;
}

BatchManifestHeader sample_batch_header() {
  BatchManifestHeader header;
  header.workload_hash = 0xDEADBEEFCAFEF00DULL;
  header.chaos_seed = 11;
  header.job_count = 2;
  header.capacity_nodes = 30;
  header.tenant_max_jobs = 2;
  return header;
}

// --------------------------------------------------------------- manifest

TEST(BatchManifest, RoundTripsJobLifecycle) {
  const std::string path = temp_path("roundtrip.mlcdb");
  const BatchManifestHeader header = sample_batch_header();
  {
    std::unique_ptr<BatchJournal> manifest =
        BatchJournal::create(path, header);
    BatchJobRecord admitted;
    admitted.phase = BatchJobPhase::kAdmitted;
    admitted.name = "a";
    manifest->append(admitted);
    admitted.job = 1;
    admitted.name = "b";
    manifest->append(admitted);

    BatchJobRecord assigned;
    assigned.phase = BatchJobPhase::kAssigned;
    assigned.job = 0;
    assigned.name = "a";
    assigned.journal_file = "job-0-a.mlcdj";
    manifest->append(assigned);

    BatchJobRecord finished;
    finished.phase = BatchJobPhase::kFinished;
    finished.job = 0;
    finished.name = "a";
    finished.journal_file = "job-0-a.mlcdj";
    finished.ok = true;
    finished.outcome = "ok";
    finished.report_digest = 0xFFFFFFFFFFFFFFFFULL;
    manifest->append(finished);
  }

  const BatchManifestContents back = read_manifest(path);
  EXPECT_FALSE(back.truncated_tail);
  EXPECT_EQ(back.valid_bytes, read_file(path).size());
  EXPECT_EQ(back.header.version, kBatchManifestVersion);
  EXPECT_EQ(back.header.workload_hash, header.workload_hash);
  EXPECT_EQ(back.header.chaos_seed, header.chaos_seed);
  EXPECT_EQ(back.header.job_count, 2);
  EXPECT_EQ(back.header.capacity_nodes, 30);
  EXPECT_EQ(back.header.tenant_max_jobs, 2);

  ASSERT_EQ(back.jobs.size(), 2u);
  EXPECT_TRUE(back.jobs[0].admitted);
  EXPECT_TRUE(back.jobs[0].assigned);
  EXPECT_TRUE(back.jobs[0].finished);
  EXPECT_TRUE(back.jobs[0].ok);
  EXPECT_EQ(back.jobs[0].outcome, "ok");
  EXPECT_EQ(back.jobs[0].journal_file, "job-0-a.mlcdj");
  EXPECT_EQ(back.jobs[0].report_digest, 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_TRUE(back.jobs[1].admitted);
  EXPECT_FALSE(back.jobs[1].assigned);
  EXPECT_FALSE(back.jobs[1].finished);
}

TEST(BatchManifest, TornTailIsDroppedNotFatal) {
  const std::string path = temp_path("torn.mlcdb");
  {
    std::unique_ptr<BatchJournal> manifest =
        BatchJournal::create(path, sample_batch_header());
    BatchJobRecord record;
    record.phase = BatchJobPhase::kAssigned;
    record.journal_file = "job-0-a.mlcdj";
    manifest->append(record);
    record.phase = BatchJobPhase::kFinished;
    record.ok = true;
    record.outcome = "ok";
    manifest->append(record);
  }
  const std::string bytes = read_file(path);
  const std::vector<std::size_t> offsets = record_boundaries(bytes);
  ASSERT_EQ(offsets.size(), 4u);  // header + 2 records + EOF

  // Cut mid-way through the finished record: the kill landed mid-append.
  const std::size_t cut = offsets[2] + (offsets[3] - offsets[2]) / 2;
  write_file(path, bytes.substr(0, cut));
  const BatchManifestContents back = read_manifest(path);
  EXPECT_TRUE(back.truncated_tail);
  EXPECT_EQ(back.valid_bytes, offsets[2]);
  EXPECT_TRUE(back.jobs[0].assigned);
  EXPECT_FALSE(back.jobs[0].finished);  // the torn record never happened
}

TEST(BatchManifest, MidFileCorruptionRefusedTyped) {
  const std::string path = temp_path("corrupt.mlcdb");
  {
    std::unique_ptr<BatchJournal> manifest =
        BatchJournal::create(path, sample_batch_header());
    BatchJobRecord record;
    record.phase = BatchJobPhase::kAssigned;
    record.journal_file = "job-0-a.mlcdj";
    manifest->append(record);
    record.job = 1;
    manifest->append(record);
  }
  std::string bytes = read_file(path);
  const std::vector<std::size_t> offsets = record_boundaries(bytes);
  bytes[offsets[1] + 20] ^= 0x20;  // flip a byte before the tail
  write_file(path, bytes);
  try {
    read_manifest(path);
    FAIL() << "corrupt manifest was accepted";
  } catch (const journal::JournalError& e) {
    EXPECT_EQ(e.code(), journal::JournalErrorCode::kCorrupt);
  }
}

TEST(BatchManifest, ValidFrameWithGarbagePayloadRefusedTyped) {
  const std::string path = temp_path("garbage.mlcdb");
  { BatchJournal::create(path, sample_batch_header()); }
  // A correctly-framed record whose payload is not a manifest record is
  // not a torn write — the writer stored garbage. Refuse, typed.
  for (const std::string payload : {"not json at all", "[1,2,3]",
                                    R"({"t":"alien"})",
                                    R"({"t":"job","phase":"warped"})"}) {
    const std::string base = read_file(path);
    write_file(path, base + journal::frame_record(payload));
    try {
      read_manifest(path);
      FAIL() << "accepted garbage payload: " << payload;
    } catch (const journal::JournalError& e) {
      EXPECT_EQ(e.code(), journal::JournalErrorCode::kCorrupt) << payload;
    }
    write_file(path, base);
  }
}

TEST(BatchManifest, UnsupportedVersionRefusedTyped) {
  const std::string path = temp_path("version.mlcdb");
  BatchManifestHeader header = sample_batch_header();
  header.version = kBatchManifestVersion + 1;
  { BatchJournal::create(path, header); }
  try {
    read_manifest(path);
    FAIL() << "future manifest version was accepted";
  } catch (const journal::JournalError& e) {
    EXPECT_EQ(e.code(), journal::JournalErrorCode::kVersionMismatch);
  }
}

TEST(BatchManifest, OutOfRangeJobIndexRefusedTyped) {
  const std::string path = temp_path("range.mlcdb");
  {
    std::unique_ptr<BatchJournal> manifest =
        BatchJournal::create(path, sample_batch_header());
    BatchJobRecord record;
    record.job = 2;  // header declares job_count = 2 -> valid are 0, 1
    manifest->append(record);
  }
  try {
    read_manifest(path);
    FAIL() << "out-of-range job index was accepted";
  } catch (const journal::JournalError& e) {
    EXPECT_EQ(e.code(), journal::JournalErrorCode::kCorrupt);
  }
}

TEST(BatchManifest, SecondHeaderRefusedTyped) {
  const std::string path = temp_path("twohead.mlcdb");
  { BatchJournal::create(path, sample_batch_header()); }
  const std::string bytes = read_file(path);
  write_file(path, bytes + bytes);  // duplicate the header record
  try {
    read_manifest(path);
    FAIL() << "second header was accepted";
  } catch (const journal::JournalError& e) {
    EXPECT_EQ(e.code(), journal::JournalErrorCode::kCorrupt);
  }
}

TEST(BatchManifest, HeaderlessOrEmptyFileRefusedTyped) {
  const std::string path = temp_path("headless.mlcdb");
  write_file(path, "");
  EXPECT_THROW(read_manifest(path), journal::JournalError);
  // A job record where the header should be.
  BatchJobRecord record;
  {
    std::unique_ptr<BatchJournal> manifest =
        BatchJournal::create(path, sample_batch_header());
    manifest->append(record);
  }
  const std::string bytes = read_file(path);
  const std::vector<std::size_t> offsets = record_boundaries(bytes);
  write_file(path, bytes.substr(offsets[1]));  // strip the header line
  try {
    read_manifest(path);
    FAIL() << "headerless manifest was accepted";
  } catch (const journal::JournalError& e) {
    EXPECT_EQ(e.code(), journal::JournalErrorCode::kCorrupt);
  }
}

// ----------------------------------------------------------- fingerprints

TEST(BatchFingerprint, HashJobIgnoresTraceNeutralKnobs) {
  Workload workload = durable_fleet();
  const std::uint64_t base = hash_job(workload.jobs[0]);

  // Trace-neutral knobs: a resume may change them freely.
  workload.jobs[0].request.threads = 7;
  workload.jobs[0].request.journal_path = "elsewhere.mlcdj";
  EXPECT_EQ(hash_job(workload.jobs[0]), base);

  // Everything that shapes the probe trace or admission must bind.
  Workload seed = durable_fleet();
  seed.jobs[0].request.seed = 8;
  EXPECT_NE(hash_job(seed.jobs[0]), base);
  Workload model = durable_fleet();
  model.jobs[0].request.model = "bert";
  EXPECT_NE(hash_job(model.jobs[0]), base);
  Workload slo = durable_fleet();
  slo.jobs[0].slo.max_probes = 5;
  EXPECT_NE(hash_job(slo.jobs[0]), base);
  Workload tenant = durable_fleet();
  tenant.jobs[0].tenant = "t9";
  EXPECT_NE(hash_job(tenant.jobs[0]), base);
}

TEST(BatchFingerprint, HeaderBindsWorkloadAndServiceConfig) {
  const Workload workload = durable_fleet();
  const BatchManifestHeader base = make_manifest_header(workload, 30, 2);
  EXPECT_EQ(base.job_count, 2);

  // Different capacity/quota or job order describe a different batch.
  EXPECT_NE(make_manifest_header(workload, 10, 2).capacity_nodes,
            base.capacity_nodes);
  Workload swapped = workload;
  std::swap(swapped.jobs[0], swapped.jobs[1]);
  EXPECT_NE(make_manifest_header(swapped, 30, 2).workload_hash,
            base.workload_hash);
  Workload chaotic = workload;
  chaotic.chaos.seed = 99;
  chaotic.chaos.probe_loss_rate = 0.01;
  EXPECT_NE(make_manifest_header(chaotic, 30, 2).chaos_seed,
            base.chaos_seed);
}

TEST(BatchFingerprint, ReportDigestIsResumeInvariant) {
  const system::Mlcd mlcd;
  const std::string path = temp_path("digest.mlcdj");
  system::JobRequest request = durable_fleet().jobs[0].request;
  request.journal_path = path;
  const system::RunReport original = mlcd.deploy(request).report();

  // Replaying the finished journal reconstructs the report probe-free;
  // only the resume bookkeeping differs, which the digest excludes.
  system::JobRequest resume = durable_fleet().jobs[0].request;
  resume.resume_path = path;
  const system::RunReport replayed = mlcd.deploy(resume).report();
  EXPECT_EQ(replayed.result.replayed_probes,
            static_cast<int>(replayed.result.trace.size()));
  EXPECT_EQ(digest_run_report(replayed), digest_run_report(original));

  // A genuinely different run hashes differently.
  system::JobRequest other = durable_fleet().jobs[0].request;
  other.seed = 8;
  const system::RunReport different = mlcd.deploy(other).report();
  EXPECT_NE(digest_run_report(different), digest_run_report(original));
}

// --------------------------------------------------- storage-fault injection

TEST(StorageFaults, InjectorFiresAtTheSeededIndex) {
  journal::IoFaultInjector::Options options;
  options.fail_at = 2;
  options.kind = journal::IoFaultKind::kEnospc;
  journal::IoFaultInjector injector(options);
  EXPECT_FALSE(injector.next_append().has_value());  // append 0
  EXPECT_FALSE(injector.next_append().has_value());  // append 1
  const std::optional<journal::IoFaultKind> fault = injector.next_append();
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(*fault, journal::IoFaultKind::kEnospc);
  EXPECT_FALSE(injector.next_append().has_value());  // one-shot
  EXPECT_EQ(injector.appends(), 4u);

  journal::IoFaultInjector::Options always;
  always.fault_rate = 1.0;
  journal::IoFaultInjector storm(always);
  EXPECT_TRUE(storm.next_append().has_value());
  EXPECT_TRUE(storm.next_append().has_value());
}

TEST(StorageFaults, AppendFaultUnderAbortFailsTheJobTyped) {
  const system::Mlcd mlcd;
  for (const journal::IoFaultKind kind :
       {journal::IoFaultKind::kFsyncFail, journal::IoFaultKind::kEnospc,
        journal::IoFaultKind::kShortWrite}) {
    const std::string path = temp_path("abort.mlcdj");
    system::JobRequest request = durable_fleet().jobs[0].request;
    request.journal_path = path;
    FaultScope scope(fail_at(3, kind));  // header + 2 probes land first
    const system::DeployResult result = mlcd.deploy(request);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, system::JobErrorCode::kJournalError);
    // The failed append never corrupts what already reached the disk:
    // the journal reads back as a valid (possibly torn-tail) prefix.
    journal::set_io_fault_injector(nullptr);
    const journal::JournalContents back = journal::read_journal(path);
    EXPECT_LE(back.probes.size(), 3u);
  }
}

TEST(StorageFaults, AppendFaultUnderDegradeKeepsTheRunCorrect) {
  const system::Mlcd mlcd;
  system::JobRequest plain = durable_fleet().jobs[0].request;
  const system::RunReport bare = mlcd.deploy(plain).report();

  system::JobRequest request = durable_fleet().jobs[0].request;
  request.journal_path = temp_path("degrade.mlcdj");
  request.journal_on_error = journal::OnError::kDegrade;
  FaultScope scope(fail_at(3));
  const system::DeployResult result = mlcd.deploy(request);
  ASSERT_TRUE(result.ok());
  const system::RunReport& report = result.report();
  EXPECT_TRUE(report.journal_degraded);
  EXPECT_FALSE(report.journal_degrade_reason.empty());
  // The search itself is untouched: bit-identical to the bare run.
  EXPECT_EQ(digest_run_report(report), digest_run_report(bare));
  // The degradation is reported, not silent.
  EXPECT_NE(report.render().find("WARNING"), std::string::npos);
  EXPECT_NE(report.to_json().find("\"journal_degraded\":true"),
            std::string::npos);
  EXPECT_EQ(bare.to_json().find("journal_degraded"), std::string::npos);
}

TEST(StorageFaults, CreateFaultObeysThePolicy) {
  const system::Mlcd mlcd;
  system::JobRequest request = durable_fleet().jobs[0].request;
  request.journal_path = temp_path("create.mlcdj");
  {
    FaultScope scope(fail_at(0));  // the header write at create
    const system::DeployResult aborted = mlcd.deploy(request);
    ASSERT_FALSE(aborted.ok());
    EXPECT_EQ(aborted.error().code, system::JobErrorCode::kJournalError);
  }
  {
    request.journal_on_error = journal::OnError::kDegrade;
    FaultScope scope(fail_at(0));
    const system::DeployResult degraded = mlcd.deploy(request);
    ASSERT_TRUE(degraded.ok());
    EXPECT_TRUE(degraded.report().journal_degraded);
  }
}

TEST(StorageFaults, ManifestAppendFaultUnderAbortThrowsAfterDrain) {
  const std::string dir = fresh_dir("manifest_abort");
  const Workload workload = durable_fleet();
  const system::Mlcd mlcd;
  // Global append order with one lane: manifest header (0), two
  // admitted records (1, 2), then job 0's assigned record (3).
  FaultScope scope(fail_at(3));
  try {
    Scheduler(mlcd, durable_options(dir)).run(workload);
    FAIL() << "manifest append fault was swallowed under abort";
  } catch (const journal::JournalError& e) {
    EXPECT_EQ(e.code(), journal::JournalErrorCode::kIo);
    EXPECT_NE(std::string(e.what()).find("manifest"), std::string::npos);
  }
}

TEST(StorageFaults, ManifestAppendFaultUnderDegradeFlagsTheReport) {
  const std::string dir = fresh_dir("manifest_degrade");
  const Workload workload = durable_fleet();
  const system::Mlcd mlcd;
  SchedulerOptions options = durable_options(dir);
  options.journal_on_error = journal::OnError::kDegrade;
  FaultScope scope(fail_at(3));
  const BatchReport report = Scheduler(mlcd, options).run(workload);
  // Every job still completed correctly — only durability was lost.
  EXPECT_EQ(report.succeeded(), 2);
  EXPECT_TRUE(report.batch_journal_degraded);
  EXPECT_FALSE(report.batch_journal_degrade_reason.empty());
  EXPECT_NE(report.to_json().find("\"batch_journal_degraded\":true"),
            std::string::npos);
  EXPECT_NE(report.render().find("WARNING"), std::string::npos);
}

TEST(StorageFaults, ManifestCreateFaultObeysThePolicy) {
  const Workload workload = durable_fleet();
  const system::Mlcd mlcd;
  {
    const std::string dir = fresh_dir("manifest_create_abort");
    FaultScope scope(fail_at(0));  // the manifest header write
    EXPECT_THROW(Scheduler(mlcd, durable_options(dir)).run(workload),
                 journal::JournalError);
  }
  {
    const std::string dir = fresh_dir("manifest_create_degrade");
    SchedulerOptions options = durable_options(dir);
    options.journal_on_error = journal::OnError::kDegrade;
    FaultScope scope(fail_at(0));
    const BatchReport report = Scheduler(mlcd, options).run(workload);
    EXPECT_EQ(report.succeeded(), 2);
    EXPECT_TRUE(report.batch_journal_degraded);
  }
}

// The dir itself failing to come up (a path under a regular file) is
// the earliest possible storage failure and obeys the same policy:
// degrade runs the whole batch journal-less — manifest and per-job
// journals both flagged — while abort refuses before any probe spends.
TEST(StorageFaults, JournalDirCreateFailureObeysThePolicy) {
  const std::string file = temp_path("not-a-dir");
  write_file(file, "x");
  const Workload workload = durable_fleet();
  const system::Mlcd mlcd;
  SchedulerOptions options;
  options.threads = 1;
  options.journal_dir = file + "/sub";
  try {
    Scheduler(mlcd, options).run(workload);
    FAIL() << "journal-dir create failure was swallowed under abort";
  } catch (const journal::JournalError& e) {
    EXPECT_EQ(e.code(), journal::JournalErrorCode::kIo);
    EXPECT_NE(std::string(e.what()).find("journal dir"), std::string::npos);
  }
  options.journal_on_error = journal::OnError::kDegrade;
  const BatchReport report = Scheduler(mlcd, options).run(workload);
  EXPECT_EQ(report.succeeded(), 2);
  EXPECT_TRUE(report.batch_journal_degraded);
  for (const JobOutcome& job : report.jobs) {
    EXPECT_TRUE(job.report.journal_degraded) << job.name;
  }
}

// ------------------------------------------------------ durable batch runs

TEST(DurableBatch, FreshRunWritesManifestAndPerJobJournals) {
  const std::string dir = fresh_dir("fresh");
  const Workload workload = durable_fleet();
  const system::Mlcd mlcd;
  const BatchReport report =
      Scheduler(mlcd, durable_options(dir)).run(workload);
  ASSERT_EQ(report.succeeded(), 2);
  EXPECT_EQ(report.resumed_jobs(), 0);
  EXPECT_EQ(report.replayed_reports(), 0);
  EXPECT_FALSE(report.batch_journal_degraded);

  ASSERT_TRUE(std::filesystem::exists(dir + "/batch.mlcdb"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/job-0-a.mlcdj"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/job-1-b.mlcdj"));

  const BatchManifestContents manifest = read_manifest(dir + "/batch.mlcdb");
  ASSERT_EQ(manifest.jobs.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(manifest.jobs[i].finished) << "job " << i;
    EXPECT_TRUE(manifest.jobs[i].ok) << "job " << i;
    EXPECT_EQ(manifest.jobs[i].outcome, "ok") << "job " << i;
    EXPECT_EQ(manifest.jobs[i].report_digest,
              digest_run_report(report.jobs[i].report))
        << "job " << i;
  }
}

// Four lanes race lifecycle appends into the shared manifest while
// per-job journals record probes; the lane count is trace-neutral (same
// digests as the serial durable run) and the finished batch still
// replays probe-free.
TEST(DurableBatch, FourLaneDurableBatchMatchesSerial) {
  Workload workload = durable_fleet();
  for (std::size_t j = 0; j < 2; ++j) {
    service::JobSpec spec = workload.jobs[j];
    spec.name += "-2";
    spec.request.seed += 100;
    workload.jobs.push_back(std::move(spec));
  }
  const system::Mlcd mlcd;
  const BatchReport serial =
      Scheduler(mlcd, durable_options(fresh_dir("lanes-serial")))
          .run(workload);
  SchedulerOptions options = durable_options(fresh_dir("lanes-par"));
  options.threads = 4;
  const BatchReport laned = Scheduler(mlcd, options).run(workload);
  ASSERT_EQ(serial.succeeded(), 4);
  ASSERT_EQ(laned.succeeded(), 4);
  for (std::size_t i = 0; i < workload.jobs.size(); ++i) {
    EXPECT_EQ(digest_run_report(laned.jobs[i].report),
              digest_run_report(serial.jobs[i].report))
        << "job " << i;
  }
  options.resume = true;
  const BatchReport replay = Scheduler(mlcd, options).run(workload);
  EXPECT_EQ(replay.replayed_reports(), 4);
  EXPECT_EQ(replay.cache.inserts, 0);
}

TEST(DurableBatch, ResumeOfFinishedBatchReplaysProbeFree) {
  const std::string dir = fresh_dir("replay");
  const Workload workload = durable_fleet();
  const system::Mlcd mlcd;
  const BatchReport first =
      Scheduler(mlcd, durable_options(dir)).run(workload);
  ASSERT_EQ(first.succeeded(), 2);

  SchedulerOptions options = durable_options(dir);
  options.resume = true;
  const BatchReport second = Scheduler(mlcd, options).run(workload);
  ASSERT_EQ(second.succeeded(), 2);
  EXPECT_EQ(second.replayed_reports(), 2);
  EXPECT_EQ(second.resumed_jobs(), 0);

  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(second.jobs[i].stats.replayed_from_journal) << "job " << i;
    // Bit-identical modulo resume bookkeeping...
    EXPECT_EQ(digest_run_report(second.jobs[i].report),
              digest_run_report(first.jobs[i].report))
        << "job " << i;
    // ... with zero probes re-executed: every step is a replay.
    const search::SearchResult& result = second.jobs[i].report.result;
    EXPECT_EQ(result.replayed_probes,
              static_cast<int>(result.trace.size()))
        << "job " << i;
    for (const search::ProbeStep& step : result.trace) {
      EXPECT_TRUE(step.replayed);
    }
  }
  // Nothing was measured, so nothing reached the shared cache.
  EXPECT_EQ(second.cache.inserts, 0);
  EXPECT_EQ(second.cache.lookups, 0);
  EXPECT_EQ(second.peak_capacity_nodes, 0);
}

TEST(DurableBatch, ResumeRunsNeverStartedJobsFresh) {
  // A kill right after admission: the manifest has only the header and
  // the admitted roster — no per-job journal exists yet.
  const std::string dir = fresh_dir("admitted_only");
  const Workload workload = durable_fleet();
  const system::Mlcd mlcd;
  {
    std::unique_ptr<BatchJournal> manifest = BatchJournal::create(
        dir + "/batch.mlcdb", make_manifest_header(workload, 0, 0));
    for (int i = 0; i < 2; ++i) {
      BatchJobRecord record;
      record.job = i;
      record.name = workload.jobs[static_cast<std::size_t>(i)].name;
      manifest->append(record);
    }
  }

  SchedulerOptions options = durable_options(dir);
  options.resume = true;
  const BatchReport resumed = Scheduler(mlcd, options).run(workload);
  ASSERT_EQ(resumed.succeeded(), 2);
  EXPECT_EQ(resumed.resumed_jobs(), 0);
  EXPECT_EQ(resumed.replayed_reports(), 0);

  // Fresh execution lands the same reports as an uninterrupted batch...
  const std::string fresh = fresh_dir("admitted_only_baseline");
  const BatchReport baseline =
      Scheduler(mlcd, durable_options(fresh)).run(workload);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(digest_run_report(resumed.jobs[i].report),
              digest_run_report(baseline.jobs[i].report))
        << "job " << i;
  }
  // ... and the continued manifest now records both jobs finished.
  const BatchManifestContents manifest = read_manifest(dir + "/batch.mlcdb");
  EXPECT_TRUE(manifest.jobs[0].finished);
  EXPECT_TRUE(manifest.jobs[1].finished);
}

TEST(DurableBatch, ResumeContinuesInFlightJobs) {
  // A kill mid-job: the manifest says job 0 was assigned, its journal
  // holds a prefix of the probe trace, and job 1 never started.
  const std::string baseline_dir = fresh_dir("inflight_baseline");
  const Workload workload = durable_fleet();
  const system::Mlcd mlcd;
  const BatchReport baseline =
      Scheduler(mlcd, durable_options(baseline_dir)).run(workload);
  ASSERT_EQ(baseline.succeeded(), 2);

  const std::string dir = fresh_dir("inflight");
  {
    std::unique_ptr<BatchJournal> manifest = BatchJournal::create(
        dir + "/batch.mlcdb", make_manifest_header(workload, 0, 0));
    BatchJobRecord record;
    record.name = "a";
    manifest->append(record);
    record.job = 1;
    record.name = "b";
    manifest->append(record);
    BatchJobRecord assigned;
    assigned.phase = BatchJobPhase::kAssigned;
    assigned.name = "a";
    assigned.journal_file = "job-0-a.mlcdj";
    manifest->append(assigned);
  }
  // Truncate job 0's journal to header + 5 probes — the journaled
  // prefix a kill would have left.
  const std::string bytes =
      read_file(baseline_dir + "/job-0-a.mlcdj");
  const std::vector<std::size_t> offsets = record_boundaries(bytes);
  ASSERT_GT(offsets.size(), 7u);
  write_file(dir + "/job-0-a.mlcdj", bytes.substr(0, offsets[6]));

  SchedulerOptions options = durable_options(dir);
  options.resume = true;
  const BatchReport resumed = Scheduler(mlcd, options).run(workload);
  ASSERT_EQ(resumed.succeeded(), 2);
  EXPECT_EQ(resumed.resumed_jobs(), 1);
  EXPECT_EQ(resumed.replayed_reports(), 0);
  EXPECT_TRUE(resumed.jobs[0].stats.resumed_from_journal);
  EXPECT_FALSE(resumed.jobs[1].stats.resumed_from_journal);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(digest_run_report(resumed.jobs[i].report),
              digest_run_report(baseline.jobs[i].report))
        << "job " << i;
  }
  // Only the journaled prefix was replayed; the rest ran live.
  EXPECT_EQ(resumed.jobs[0].report.result.replayed_probes, 5);
  EXPECT_GT(resumed.jobs[0].report.result.trace.size(), 5u);
}

TEST(DurableBatch, AssignedJobWithLostJournalRunsFresh) {
  const std::string dir = fresh_dir("lost_journal");
  const Workload workload = durable_fleet();
  const system::Mlcd mlcd;
  {
    std::unique_ptr<BatchJournal> manifest = BatchJournal::create(
        dir + "/batch.mlcdb", make_manifest_header(workload, 0, 0));
    BatchJobRecord record;
    record.name = "a";
    manifest->append(record);
    record.job = 1;
    record.name = "b";
    manifest->append(record);
    BatchJobRecord assigned;
    assigned.phase = BatchJobPhase::kAssigned;
    assigned.name = "a";
    assigned.journal_file = "job-0-a.mlcdj";
    manifest->append(assigned);
    // ... but job-0-a.mlcdj never reached the disk (or was deleted).
  }
  SchedulerOptions options = durable_options(dir);
  options.resume = true;
  const BatchReport resumed = Scheduler(mlcd, options).run(workload);
  ASSERT_EQ(resumed.succeeded(), 2);
  EXPECT_EQ(resumed.resumed_jobs(), 0);
  EXPECT_FALSE(resumed.jobs[0].stats.resumed_from_journal);
  EXPECT_TRUE(std::filesystem::exists(dir + "/job-0-a.mlcdj"));
}

TEST(DurableBatch, ResumeRefusesMismatchedWorkload) {
  const std::string dir = fresh_dir("mismatch");
  const system::Mlcd mlcd;
  ASSERT_EQ(Scheduler(mlcd, durable_options(dir)).run(durable_fleet())
                .succeeded(),
            2);

  Workload altered = durable_fleet();
  altered.jobs[0].request.seed = 8;  // a different search
  SchedulerOptions options = durable_options(dir);
  options.resume = true;
  try {
    Scheduler(mlcd, options).run(altered);
    FAIL() << "mismatched workload was resumed";
  } catch (const journal::JournalError& e) {
    EXPECT_EQ(e.code(), journal::JournalErrorCode::kHeaderMismatch);
    EXPECT_NE(std::string(e.what()).find("workload"), std::string::npos);
  }

  // A different capacity config is a different batch too.
  SchedulerOptions capacity = durable_options(dir);
  capacity.resume = true;
  capacity.capacity_nodes = 16;
  try {
    Scheduler(mlcd, capacity).run(durable_fleet());
    FAIL() << "mismatched capacity config was resumed";
  } catch (const journal::JournalError& e) {
    EXPECT_EQ(e.code(), journal::JournalErrorCode::kHeaderMismatch);
  }
}

TEST(DurableBatch, ResumeRefusesMissingManifest) {
  const std::string dir = fresh_dir("missing_manifest");
  SchedulerOptions options = durable_options(dir);
  options.resume = true;
  const system::Mlcd mlcd;
  EXPECT_THROW(Scheduler(mlcd, options).run(durable_fleet()),
               journal::JournalError);
}

TEST(DurableBatch, TamperedDigestIsTypedReplayDivergence) {
  const std::string dir = fresh_dir("diverged");
  const Workload workload = durable_fleet();
  const system::Mlcd mlcd;
  ASSERT_EQ(Scheduler(mlcd, durable_options(dir)).run(workload).succeeded(),
            2);

  // Rewrite job 0's finished record with a wrong digest (re-framed, so
  // the file itself stays valid — only the recorded history lies).
  const std::string path = dir + "/batch.mlcdb";
  const std::string bytes = read_file(path);
  std::string rebuilt;
  std::size_t at = 0;
  while (at < bytes.size()) {
    const std::size_t eol = bytes.find('\n', at);
    std::string line = bytes.substr(at, eol - at + 1);
    if (line.find("\"phase\":\"finished\",\"job\":0") != std::string::npos) {
      std::size_t payload_at = 0;
      for (int spaces = 0; spaces < 3; ++spaces) {
        payload_at = line.find(' ', payload_at) + 1;
      }
      std::string payload =
          line.substr(payload_at, line.size() - payload_at - 1);
      const std::size_t digest_at = payload.find("\"report_digest\":\"") +
                                    std::string("\"report_digest\":\"").size();
      payload.replace(digest_at, payload.find('"', digest_at) - digest_at,
                      "1234567");
      line = journal::frame_record(payload);
    }
    rebuilt += line;
    at = eol + 1;
  }
  write_file(path, rebuilt);

  SchedulerOptions options = durable_options(dir);
  options.resume = true;
  const BatchReport resumed = Scheduler(mlcd, options).run(workload);
  EXPECT_FALSE(resumed.jobs[0].ok);
  EXPECT_EQ(resumed.jobs[0].error_code, "journal_error");
  EXPECT_NE(resumed.jobs[0].error_message.find("diverged"),
            std::string::npos);
  // The untampered job replays fine; the batch is not poisoned.
  EXPECT_TRUE(resumed.jobs[1].ok);
  EXPECT_TRUE(resumed.jobs[1].stats.replayed_from_journal);
}

TEST(DurableBatch, RefusesJobsDeclaringTheirOwnJournals) {
  const std::string dir = fresh_dir("own_journal");
  Workload workload = durable_fleet();
  workload.jobs[0].request.journal_path = temp_path("mine.mlcdj");
  const system::Mlcd mlcd;
  EXPECT_THROW(Scheduler(mlcd, durable_options(dir)).run(workload),
               std::invalid_argument);
}

TEST(DurableBatch, OptionValidationIsStrict) {
  const system::Mlcd mlcd;
  SchedulerOptions legacy;
  legacy.journal_dir = fresh_dir("legacy");
  legacy.probe_granularity = false;
  EXPECT_THROW(Scheduler(mlcd, legacy).run(durable_fleet()),
               std::invalid_argument);

  SchedulerOptions dirless;
  dirless.resume = true;
  EXPECT_THROW(Scheduler(mlcd, dirless).run(durable_fleet()),
               std::invalid_argument);
}

// ------------------------------------------------- capacity revocation edges

TEST(CapacityRevocation, RevokeAfterReleaseLeavesLedgerUntouched) {
  CapacityPool pool(10);
  pool.acquire(4);
  pool.release(4);
  // The grant is already gone: a late revoke reclaims nothing.
  pool.revoke(4);
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.revocations(), 0);
  EXPECT_EQ(pool.revoked_nodes(), 0);
}

TEST(CapacityRevocation, DoubleRevokeCountsTheGrantOnce) {
  CapacityPool pool(10);
  pool.acquire(4);
  pool.revoke(4);
  pool.revoke(4);  // stray second revoke of the same grant
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.revocations(), 1);
  EXPECT_EQ(pool.revoked_nodes(), 4);
}

TEST(CapacityRevocation, OverRevokeClampsToOccupancy) {
  CapacityPool pool(10);
  pool.acquire(3);
  pool.revoke(10);
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.revoked_nodes(), 3);
  // The pool is healthy afterwards: the full capacity is available.
  EXPECT_TRUE(pool.try_acquire(10));
  pool.release(10);
  // Negative revokes are ignored outright.
  pool.acquire(2);
  pool.revoke(-5);
  EXPECT_EQ(pool.in_use(), 2);
  EXPECT_EQ(pool.revoked_nodes(), 3);
}

// --------------------------------------------------- process-kill harness

#if defined(MLCD_HAVE_POSIX_SPAWN) && defined(MLCD_CLI_BIN)

/// Spawns `mlcd batch` against `workload`, optionally SIGKILLs it after
/// `kill_after_us`, and returns the exit code (-1 when killed).
int run_batch(const std::string& workload, const std::string& dir,
              const std::string& out, bool resume,
              long kill_after_us = -1) {
  const pid_t pid = fork();
  if (pid == 0) {
    std::freopen("/dev/null", "w", stdout);
    std::freopen("/dev/null", "w", stderr);
    std::vector<const char*> argv = {MLCD_CLI_BIN,     "batch",
                                     workload.c_str(), "--journal-dir",
                                     dir.c_str(),      "--out",
                                     out.c_str()};
    if (resume) argv.push_back("--resume");
    argv.push_back(nullptr);
    execv(MLCD_CLI_BIN, const_cast<char* const*>(argv.data()));
    _exit(127);
  }
  if (kill_after_us >= 0) {
    usleep(static_cast<useconds_t>(kill_after_us));
    kill(pid, SIGKILL);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// The trace array of one job in a BatchReport JSON document, with the
/// per-step `replayed` flag (the only legitimate difference between a
/// fresh and a replayed step) normalized away.
std::string scrubbed_trace(const std::string& doc, const std::string& job) {
  const std::size_t at = doc.find("\"name\":\"" + job);
  EXPECT_NE(at, std::string::npos);
  const std::size_t begin = doc.find("\"trace\":[", at);
  EXPECT_NE(begin, std::string::npos);
  // Fault-free steps carry no nested arrays: the first ']' closes it.
  const std::size_t end = doc.find(']', begin);
  std::string trace = doc.substr(begin, end - begin + 1);
  for (std::size_t flag = trace.find("\"replayed\":");
       flag != std::string::npos; flag = trace.find("\"replayed\":", flag)) {
    const std::size_t value = flag + std::string("\"replayed\":").size();
    const std::size_t comma = trace.find_first_of(",}", value);
    trace.replace(value, comma - value, "X");
    flag = value;
  }
  return trace;
}

TEST(KillHarness, KillPointSweepResumesBitIdentically) {
  const std::string workload = temp_path("kill_workload.json");
  write_file(workload, R"({"jobs": [
    {"name": "a", "tenant": "t1", "model": "resnet", "seed": 7,
     "max_nodes": 8},
    {"name": "b", "tenant": "t2", "model": "alexnet", "seed": 9,
     "max_nodes": 8, "method": "random"}
  ]})");

  // The uninterrupted run is the golden batch every kill point must
  // reproduce.
  const std::string golden_dir = fresh_dir("kill_golden");
  const std::string golden_out = temp_path("kill_golden.json");
  ASSERT_EQ(run_batch(workload, golden_dir, golden_out, false), 0);
  const std::string golden = read_file(golden_out);
  ASSERT_NE(golden.find("\"schema_version\":6"), std::string::npos);

  // Seeded sweep of kill points across the batch's lifetime: before the
  // manifest exists, mid-first-job, mid-batch, and after completion.
  std::uint64_t state = 42;
  std::vector<long> kill_points_us = {0, 500};
  for (int i = 0; i < 6; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    kill_points_us.push_back(static_cast<long>(state % 40000));  // < 40 ms
  }

  for (const long kill_after_us : kill_points_us) {
    const std::string dir =
        fresh_dir("kill_" + std::to_string(kill_after_us));
    const std::string out =
        temp_path("kill_" + std::to_string(kill_after_us) + ".json");
    run_batch(workload, dir, out, false, kill_after_us);

    // A kill can land before the journal dir was even created; resume
    // then refuses (no manifest) and a fresh durable run finishes the
    // job. Either way the sweep point must converge to the golden batch.
    std::remove(out.c_str());
    int rc = run_batch(workload, dir, out, true);
    if (rc == 4 && !std::filesystem::exists(dir + "/batch.mlcdb")) {
      rc = run_batch(workload, dir, out, false);
    }
    ASSERT_EQ(rc, 0) << "kill point " << kill_after_us << " us";

    const std::string resumed = read_file(out);
    for (const std::string job : {"a", "b"}) {
      EXPECT_EQ(scrubbed_trace(resumed, job), scrubbed_trace(golden, job))
          << "kill point " << kill_after_us << " us, job " << job;
    }
  }
  std::remove(workload.c_str());
}

#endif  // MLCD_HAVE_POSIX_SPAWN && MLCD_CLI_BIN

}  // namespace
}  // namespace mlcd::service
