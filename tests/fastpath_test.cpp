// Fast-path BO engine tests: incremental GP golden equivalence, thread-
// pool determinism, parallel acquisition scoring, the searcher registry
// and the JSON report round-trip.
//
// The two contracts this file enforces end-to-end (docs/performance.md):
//   * an incrementally-updated GP posterior matches the full-refit
//     reference to 1e-8, and
//   * searcher probe traces are bit-identical for any --threads value.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bo/acquisition.hpp"
#include "gp/gp_regressor.hpp"
#include "gp/kernel.hpp"
#include "linalg/cholesky.hpp"
#include "mlcd/mlcd.hpp"
#include "models/model_zoo.hpp"
#include "search/conv_bo.hpp"
#include "search/heter_bo.hpp"
#include "search/registry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mlcd {
namespace {

// ------------------------------------------------- incremental Cholesky

// Builds the Gram-like SPD matrix used by the incremental tests.
linalg::Matrix spd_matrix(std::size_t n, util::Rng& rng) {
  std::vector<std::vector<double>> pts(n);
  for (auto& p : pts) p = {rng.uniform(-2, 2), rng.uniform(-2, 2)};
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = pts[i][0] - pts[j][0];
      const double dy = pts[i][1] - pts[j][1];
      a(i, j) = std::exp(-0.5 * (dx * dx + dy * dy));
    }
    a(i, i) += 0.01;
  }
  return a;
}

TEST(IncrementalCholesky, GrownFactorIsBitIdenticalToFresh) {
  util::Rng rng(11);
  const std::size_t n = 14;
  const linalg::Matrix a = spd_matrix(n, rng);

  // Grow from the 1x1 leading block one border at a time.
  linalg::Matrix seed(1, 1);
  seed(0, 0) = a(0, 0);
  linalg::CholeskyFactor grown(seed);
  for (std::size_t m = 1; m < n; ++m) {
    linalg::Vector col(m);
    for (std::size_t i = 0; i < m; ++i) col[i] = a(i, m);
    ASSERT_TRUE(grown.try_extend(col, a(m, m), 1e-12)) << "border " << m;
  }

  const linalg::CholeskyFactor fresh(a);
  ASSERT_EQ(grown.dim(), fresh.dim());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_EQ(grown.lower()(i, j), fresh.lower()(i, j))
          << "L(" << i << "," << j << ")";
    }
  }

  // The incrementally grown forward solve matches a fresh one bitwise:
  // re-grow a factor border by border, appending one solution entry per
  // step the way the GP's add_observation path does.
  util::Rng rng2(12);
  linalg::Vector b(n);
  for (double& v : b) v = rng2.normal();
  linalg::CholeskyFactor regrown(seed);
  linalg::Vector partial;
  regrown.extend_solve_lower(partial, std::span<const double>(b.data(), 1));
  for (std::size_t m = 1; m < n; ++m) {
    linalg::Vector col(m);
    for (std::size_t i = 0; i < m; ++i) col[i] = a(i, m);
    ASSERT_TRUE(regrown.try_extend(col, a(m, m), 1e-12));
    regrown.extend_solve_lower(
        partial, std::span<const double>(b.data(), m + 1));
  }
  const linalg::Vector direct = fresh.solve_lower(b);
  ASSERT_EQ(partial.size(), direct.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(partial[i], direct[i]);
}

TEST(IncrementalCholesky, RejectsUnsafeBorderLeavingFactorIntact) {
  linalg::Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = a(1, 0) = 0.0;
  a(1, 1) = 1.0;
  linalg::CholeskyFactor factor(a);

  // A border that duplicates row 0 has Schur complement ~0.
  const linalg::Vector col{1.0, 0.0};
  EXPECT_FALSE(factor.try_extend(col, 1.0, 1e-6));
  EXPECT_EQ(factor.dim(), 2u);  // untouched

  // The same border passes with no tolerance only if truly PD.
  EXPECT_FALSE(factor.try_extend(col, 1.0 - 1e-18, 0.0));
  EXPECT_TRUE(factor.try_extend(col, 1.5, 1e-6));
  EXPECT_EQ(factor.dim(), 3u);
}

// ------------------------------------------------------ GP golden tests

std::vector<std::vector<double>> query_grid() {
  std::vector<std::vector<double>> grid;
  for (double a : {-1.5, -0.4, 0.0, 0.7, 1.8}) {
    for (double b : {-1.0, 0.3, 1.2}) grid.push_back({a, b});
  }
  return grid;
}

// The tentpole's golden equivalence: a GP updated incrementally over many
// add_observation calls agrees with the O(n^3) full-refit reference
// (same frozen hyperparameters) to 1e-8 in both posterior moments.
TEST(GpFastPath, IncrementalPosteriorMatchesFullRefit) {
  util::Rng rng(21);
  gp::GpOptions options;
  options.refit_every = 0;  // never retune after the first build
  options.noise_stddev = 0.05;
  gp::GpRegressor model(std::make_unique<gp::Matern52Kernel>(2), options);

  const auto target = [](double a, double b) {
    return std::sin(1.7 * a) + 0.5 * std::cos(2.3 * b);
  };

  linalg::Matrix x0(4, 2);
  linalg::Vector y0;
  for (std::size_t i = 0; i < 4; ++i) {
    x0(i, 0) = rng.uniform(-2, 2);
    x0(i, 1) = rng.uniform(-2, 2);
    y0.push_back(target(x0(i, 0), x0(i, 1)) + 0.01 * rng.normal());
  }
  model.fit(x0, y0);
  const std::uint64_t version = model.fit_version();

  for (int add = 0; add < 16; ++add) {
    const double a = rng.uniform(-2, 2), b = rng.uniform(-2, 2);
    const double x[2] = {a, b};
    model.add_observation(x, target(a, b) + 0.01 * rng.normal());
  }
  EXPECT_EQ(model.fit_version(), version);  // stayed on the fast path
  EXPECT_EQ(model.adds_since_refit(), 16);

  gp::GpRegressor reference = model;
  reference.refit_full(/*retune_hyperparameters=*/false);
  EXPECT_EQ(reference.adds_since_refit(), 0);

  for (const auto& q : query_grid()) {
    const gp::Prediction fast = model.predict(q);
    const gp::Prediction gold = reference.predict(q);
    EXPECT_NEAR(fast.mean, gold.mean, 1e-8);
    EXPECT_NEAR(fast.variance, gold.variance, 1e-8);
  }
  EXPECT_NEAR(model.log_marginal_likelihood(),
              reference.log_marginal_likelihood(), 1e-6);
}

// refit_every = k alternates incremental adds with scheduled full
// retunes; the posterior after any number of adds must stay close to a
// freshly fitted model over the same data.
TEST(GpFastPath, ScheduledRefitTracksFreshFit) {
  util::Rng rng(22);
  gp::GpOptions scheduled;
  scheduled.refit_every = 4;
  scheduled.noise_stddev = 0.05;
  gp::GpRegressor model(std::make_unique<gp::Matern52Kernel>(1), scheduled);

  linalg::Matrix x0(3, 1);
  linalg::Vector y0;
  linalg::Matrix all_x(3, 1);
  for (std::size_t i = 0; i < 3; ++i) {
    x0(i, 0) = all_x(i, 0) = rng.uniform(0, 1);
    y0.push_back(std::sin(6.0 * x0(i, 0)));
  }
  model.fit(x0, y0);
  linalg::Vector all_y = y0;

  std::uint64_t version = model.fit_version();
  int retunes = 0;
  for (int add = 0; add < 12; ++add) {
    const double q = rng.uniform(0, 1);
    const double x[1] = {q};
    model.add_observation(x, std::sin(6.0 * q));
    linalg::Matrix grown(all_x.rows() + 1, 1);
    for (std::size_t i = 0; i < all_x.rows(); ++i) grown(i, 0) = all_x(i, 0);
    grown(all_x.rows(), 0) = q;
    all_x = std::move(grown);
    all_y.push_back(std::sin(6.0 * q));
    if (model.fit_version() != version) {
      ++retunes;
      version = model.fit_version();
      EXPECT_EQ(model.adds_since_refit(), 0);
    }
  }
  EXPECT_EQ(retunes, 3);  // every 4th of 12 adds

  // A scheduled refit is a real fit(): identical to fitting from scratch.
  gp::GpRegressor fresh(std::make_unique<gp::Matern52Kernel>(1), scheduled);
  // Land the fresh fit on the same data right after a retune boundary.
  fresh.fit(all_x, all_y);
  for (double q : {0.1, 0.35, 0.62, 0.9}) {
    const std::vector<double> point{q};
    const gp::Prediction a = model.predict(point);
    const gp::Prediction b = fresh.predict(point);
    // Hyperparameters were frozen since the last retune (8 obs in), so
    // only closeness — not equality — is expected here.
    EXPECT_NEAR(a.mean, b.mean, 0.2) << q;
  }
}

TEST(GpFastPath, PredictCachedMatchesPredictAndSurvivesAdds) {
  util::Rng rng(23);
  gp::GpOptions options;
  options.refit_every = 0;
  options.noise_stddev = 0.05;
  gp::GpRegressor model(std::make_unique<gp::SquaredExponentialKernel>(2),
                        options);

  linalg::Matrix x0(5, 2);
  linalg::Vector y0;
  for (std::size_t i = 0; i < 5; ++i) {
    x0(i, 0) = rng.uniform(-1, 1);
    x0(i, 1) = rng.uniform(-1, 1);
    y0.push_back(rng.normal());
  }
  model.fit(x0, y0);

  const auto queries = query_grid();
  std::vector<gp::GpRegressor::PredictCache> caches(queries.size());
  for (int add = 0; add < 10; ++add) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const gp::Prediction cached = model.predict_cached(queries[i], caches[i]);
      const gp::Prediction direct = model.predict(queries[i]);
      EXPECT_NEAR(cached.mean, direct.mean, 1e-9);
      EXPECT_NEAR(cached.variance, direct.variance, 1e-9);
      // The cache is warm: it holds exactly one entry per observation.
      EXPECT_EQ(caches[i].k_star.size(), model.observation_count());
    }
    const double x[2] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    model.add_observation(x, rng.normal());
  }
}

TEST(GpFastPath, StaleCacheFromOtherModelIsDiscarded) {
  gp::GpOptions options;
  options.optimize_hyperparameters = false;
  options.normalize_targets = false;
  linalg::Matrix x(2, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  const linalg::Vector y{0.5, -0.25};

  gp::GpRegressor a(std::make_unique<gp::Matern32Kernel>(1), options);
  gp::GpRegressor b(std::make_unique<gp::Matern52Kernel>(1), options);
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_NE(a.fit_version(), b.fit_version());  // globally unique

  const std::vector<double> q{0.4};
  gp::GpRegressor::PredictCache cache;
  const gp::Prediction via_a = a.predict_cached(q, cache);
  EXPECT_NEAR(via_a.mean, a.predict(q).mean, 1e-12);
  // Reusing the same cache against model b must not leak a's kernel rows.
  const gp::Prediction via_b = b.predict_cached(q, cache);
  EXPECT_NEAR(via_b.mean, b.predict(q).mean, 1e-12);
}

// ---------------------------------------------------------- thread pool

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    util::ThreadPool pool(threads);
    for (std::size_t n : {0u, 1u, 5u, 97u}) {
      std::vector<int> hits(n, 0);
      pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i], 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, SlotOutputsAreThreadCountInvariant) {
  const std::size_t n = 1003;
  std::vector<double> reference(n);
  util::ThreadPool serial(1);
  serial.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      reference[i] = std::sin(0.01 * static_cast<double>(i));
    }
  });
  for (int threads : {2, 5, 8}) {
    util::ThreadPool pool(threads);
    std::vector<double> out(n);
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = std::sin(0.01 * static_cast<double>(i));
      }
    });
    EXPECT_EQ(std::memcmp(out.data(), reference.data(),
                          n * sizeof(double)),
              0)
        << threads;
  }
}

TEST(ThreadPoolTest, PropagatesFirstExceptionAndStaysUsable) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t begin, std::size_t) {
                          if (begin == 0) {
                            throw std::runtime_error("chunk failed");
                          }
                        }),
      std::runtime_error);

  // The pool survives a failed batch.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  EXPECT_EQ(util::ThreadPool(0).thread_count(), 1);
  EXPECT_EQ(util::ThreadPool(-3).thread_count(), 1);
  EXPECT_GE(util::ThreadPool::hardware_threads(), 1);
}

// ------------------------------------------------- parallel acquisition

TEST(ScoreBatch, MatchesSerialScoringBitwise) {
  util::Rng rng(31);
  std::vector<gp::Prediction> predictions(257);
  for (auto& p : predictions) {
    p.mean = rng.normal();
    p.variance = std::abs(rng.normal()) + 1e-6;
  }
  const bo::ExpectedImprovement ei(0.01);
  const double best = 0.3;

  std::vector<double> serial(predictions.size());
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    serial[i] = ei.score(predictions[i], best);
  }
  for (int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    std::vector<double> batch(predictions.size());
    bo::score_batch(ei, pool, predictions, best, batch);
    for (std::size_t i = 0; i < predictions.size(); ++i) {
      EXPECT_EQ(batch[i], serial[i]) << "threads=" << threads;
    }
  }
}

TEST(ScoreBatch, RejectsMismatchedSpans) {
  const bo::UpperConfidenceBound ucb(2.0);
  util::ThreadPool pool(2);
  std::vector<gp::Prediction> predictions(4);
  std::vector<double> out(3);
  EXPECT_THROW(bo::score_batch(ucb, pool, predictions, 0.0, out),
               std::invalid_argument);
}

// ----------------------------------------- trace determinism across threads

search::SearchProblem heterogeneous_problem(const cloud::DeploymentSpace& space,
                                            std::uint64_t seed) {
  search::SearchProblem p;
  p.config.model = models::paper_zoo().model("char_rnn");
  p.config.platform = perf::tensorflow_profile();
  p.config.topology = perf::CommTopology::kParameterServer;
  p.space = &space;
  p.scenario = search::Scenario::fastest_under_budget(120.0);
  p.seed = seed;
  return p;
}

// Bitwise comparison of two probe traces: deployments, measured bits,
// acquisition bits, reasons — everything a downstream consumer can see.
void expect_traces_identical(const std::vector<search::ProbeStep>& a,
                             const std::vector<search::ProbeStep>& b,
                             const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].deployment.type_index, b[i].deployment.type_index)
        << label << " step " << i;
    EXPECT_EQ(a[i].deployment.nodes, b[i].deployment.nodes)
        << label << " step " << i;
    EXPECT_EQ(a[i].measured_speed, b[i].measured_speed)
        << label << " step " << i;
    EXPECT_EQ(a[i].acquisition, b[i].acquisition) << label << " step " << i;
    EXPECT_EQ(a[i].reason, b[i].reason) << label << " step " << i;
    EXPECT_EQ(a[i].feasible, b[i].feasible) << label << " step " << i;
  }
}

class TraceDeterminism : public testing::Test {
 protected:
  TraceDeterminism()
      : catalog_(cloud::aws_catalog().subset(std::vector<std::string>{
            "c5.xlarge", "c5.4xlarge", "p2.xlarge"})),
        space_(catalog_, 40),
        perf_(catalog_) {}

  cloud::InstanceCatalog catalog_;
  cloud::DeploymentSpace space_;
  perf::TrainingPerfModel perf_;
};

TEST_F(TraceDeterminism, HeterBoTraceBitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {7u, 19u}) {
    search::SearchProblem base = heterogeneous_problem(space_, seed);
    search::HeterBoSearcher reference(perf_);
    base.threads = 1;
    const search::SearchResult serial = reference.run(base);
    ASSERT_FALSE(serial.trace.empty());

    for (int threads : {2, 8}) {
      search::SearchProblem parallel_problem = base;
      parallel_problem.threads = threads;
      search::HeterBoSearcher searcher(perf_);
      const search::SearchResult parallel_result =
          searcher.run(parallel_problem);
      expect_traces_identical(
          serial.trace, parallel_result.trace,
          "heterbo seed=" + std::to_string(seed) +
              " threads=" + std::to_string(threads));
      EXPECT_EQ(serial.best_description, parallel_result.best_description);
      EXPECT_EQ(serial.profile_cost, parallel_result.profile_cost);
    }
  }
}

TEST_F(TraceDeterminism, ConvBoTraceBitIdenticalAcrossThreadCounts) {
  search::SearchProblem base = heterogeneous_problem(space_, 13);
  search::ConvBoSearcher reference(perf_);
  base.threads = 1;
  const search::SearchResult serial = reference.run(base);
  ASSERT_FALSE(serial.trace.empty());

  for (int threads : {2, 8}) {
    search::SearchProblem parallel_problem = base;
    parallel_problem.threads = threads;
    search::ConvBoSearcher searcher(perf_);
    const search::SearchResult parallel_result =
        searcher.run(parallel_problem);
    expect_traces_identical(serial.trace, parallel_result.trace,
                            "conv-bo threads=" + std::to_string(threads));
  }
}

TEST_F(TraceDeterminism, RelaxedRefitScheduleStillFindsDeployments) {
  search::SearchProblem problem = heterogeneous_problem(space_, 7);
  problem.threads = 4;
  problem.gp_refit_every = 5;
  search::HeterBoSearcher searcher(perf_);
  const search::SearchResult result = searcher.run(problem);
  EXPECT_TRUE(result.found);
  EXPECT_TRUE(result.meets_constraints(problem.scenario));

  // And the relaxed schedule is itself deterministic across threads.
  search::SearchProblem again = problem;
  again.threads = 1;
  search::HeterBoSearcher searcher2(perf_);
  const search::SearchResult serial = searcher2.run(again);
  expect_traces_identical(serial.trace, result.trace, "refit_every=5");
}

// ------------------------------------------------------ searcher registry

TEST(SearcherRegistryTest, BuiltinsCreateAndNamesAreSorted) {
  const cloud::InstanceCatalog catalog = cloud::aws_catalog().subset(
      std::vector<std::string>{"c5.4xlarge"});
  const perf::TrainingPerfModel perf(catalog);
  search::SearcherRegistry& registry = search::SearcherRegistry::instance();

  const std::vector<std::string> names = registry.names();
  ASSERT_FALSE(names.empty());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& name : names) {
    const std::unique_ptr<search::Searcher> searcher =
        registry.create(name, perf);
    ASSERT_NE(searcher, nullptr) << name;
    EXPECT_FALSE(searcher->name().empty()) << name;
  }
  EXPECT_TRUE(registry.contains("heterbo"));
  EXPECT_FALSE(registry.contains("gradient-descent"));
}

TEST(SearcherRegistryTest, UnknownNameErrorListsEveryChoice) {
  const cloud::InstanceCatalog catalog = cloud::aws_catalog().subset(
      std::vector<std::string>{"c5.4xlarge"});
  const perf::TrainingPerfModel perf(catalog);
  search::SearcherRegistry& registry = search::SearcherRegistry::instance();
  try {
    registry.create("gradient-descent", perf);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("gradient-descent"), std::string::npos);
    for (const std::string& name : registry.names()) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
  }
}

TEST(SearcherRegistryTest, CustomMethodRegistersIntoIsolatedRegistry) {
  search::SearcherRegistry registry;
  EXPECT_THROW(registry.register_method("", nullptr),
               std::invalid_argument);
  registry.register_method(
      "conv-bo-again",
      [](const perf::TrainingPerfModel& perf,
         const search::SearcherOptions&) {
        return std::make_unique<search::ConvBoSearcher>(perf);
      });
  EXPECT_TRUE(registry.contains("conv-bo-again"));
  EXPECT_EQ(registry.names().size(), 1u);
}

// ------------------------------------------------------- JSON round-trip

TEST(JsonParser, ParsesScalarsContainersAndEscapes) {
  const util::JsonValue doc = util::parse_json(
      R"({"a":[1,2.5,-3e2,true,false,null],"s":"q\"\\\n\u0041\u00e9","z":{}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.size(), 3u);
  const util::JsonValue& a = doc.at("a");
  ASSERT_TRUE(a.is_array());
  EXPECT_DOUBLE_EQ(a.at(0u).as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1u).as_number(), 2.5);
  EXPECT_DOUBLE_EQ(a.at(2u).as_number(), -300.0);
  EXPECT_TRUE(a.at(3u).as_bool());
  EXPECT_FALSE(a.at(4u).as_bool());
  EXPECT_TRUE(a.at(5u).is_null());
  EXPECT_EQ(doc.at("s").as_string(), "q\"\\\nA\xc3\xa9");
  EXPECT_TRUE(doc.at("z").is_object());
  EXPECT_FALSE(doc.contains("missing"));
  EXPECT_THROW(doc.at("missing"), std::out_of_range);
  EXPECT_THROW(doc.at("a").as_string(), std::logic_error);
}

TEST(JsonParser, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1,}", "01", "1 2",
        "\"unterminated", "{\"a\" 1}", "[1] trailing", "nul",
        "\"bad\\q\"", "\"\\ud800\"",
        // Overflowing number literals parse to +/-inf, which JSON cannot
        // represent; trailing garbage after a complete document is
        // rejected rather than silently ignored.
        "1e999", "-1e999", "{\"a\":1e999}", "{\"a\":1} x", "[1][2]"}) {
    EXPECT_THROW(util::parse_json(bad), std::invalid_argument) << bad;
  }
}

TEST(JsonParser, RoundTripsWriterOutput) {
  util::JsonWriter writer;
  writer.begin_object()
      .key("name")
      .value("run \"42\"\n")
      .key("count")
      .value(7)
      .key("ratio")
      .value(0.125)
      .key("flags")
      .begin_array()
      .value(true)
      .value(false)
      .null()
      .end_array()
      .end_object();
  const util::JsonValue doc = util::parse_json(writer.str());
  EXPECT_EQ(doc.at("name").as_string(), "run \"42\"\n");
  EXPECT_DOUBLE_EQ(doc.at("count").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_number(), 0.125);
  EXPECT_EQ(doc.at("flags").size(), 3u);
}

// Satellite (c): the versioned RunReport schema survives a full
// serialize -> parse round trip with every section intact.
TEST(RunReportJson, RoundTripsThroughParser) {
  const system::Mlcd mlcd;
  system::JobRequest request;
  request.model = "resnet";
  request.instance_types = {"c5.4xlarge"};
  request.requirements.budget_dollars = 100.0;
  request.threads = 3;
  request.gp_refit_every = 4;
  request.seed = 7;
  const system::RunReport report = mlcd.deploy(request).report();

  const util::JsonValue doc = util::parse_json(report.to_json());
  // Ladder-free runs keep emitting the byte-identical v3 document; the
  // v4 keys appear only when the fidelity ladder is enabled.
  EXPECT_DOUBLE_EQ(doc.at("schema_version").as_number(), 3.0);

  const util::JsonValue& req = doc.at("request");
  EXPECT_EQ(req.at("model").as_string(), "resnet");
  EXPECT_DOUBLE_EQ(req.at("threads").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(req.at("gp_refit_every").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(doc.at("scenario").at("budget_dollars").as_number(),
                   100.0);

  const util::JsonValue& result = doc.at("result");
  EXPECT_TRUE(result.at("found").as_bool());
  // The writer emits 10 significant digits, so round-tripped doubles
  // agree to relative 1e-9, not bitwise.
  EXPECT_NEAR(result.at("total_cost").as_number(),
              report.result.total_cost(),
              1e-8 * std::abs(report.result.total_cost()));
  // PR-1 fault counters are part of schema v2.
  EXPECT_TRUE(result.contains("failed_probes"));
  EXPECT_TRUE(result.contains("probe_attempts"));

  const util::JsonValue& trace = result.at("trace");
  ASSERT_TRUE(trace.is_array());
  ASSERT_EQ(trace.size(), report.result.trace.size());
  EXPECT_EQ(trace.at(0u).at("reason").as_string(),
            report.result.trace[0].reason);
}

}  // namespace
}  // namespace mlcd
