// Unit tests for src/profiler: probe accounting, noise, stability
// extension, billing integration.
#include <gtest/gtest.h>

#include "cloud/billing.hpp"
#include "models/model_zoo.hpp"
#include "perf/perf_model.hpp"
#include "profiler/profiler.hpp"

namespace mlcd::profiler {
namespace {

class ProfilerTest : public testing::Test {
 protected:
  ProfilerTest()
      : space_(cloud::aws_catalog(), 50),
        perf_(cloud::aws_catalog()),
        meter_(space_) {}

  perf::TrainingConfig config(const char* model = "resnet") const {
    perf::TrainingConfig c;
    c.model = models::paper_zoo().model(model);
    c.platform = perf::tensorflow_profile();
    c.topology = perf::CommTopology::kParameterServer;
    return c;
  }

  std::size_t type_of(const char* name) const {
    return *cloud::aws_catalog().find(name);
  }

  cloud::DeploymentSpace space_;
  perf::TrainingPerfModel perf_;
  cloud::BillingMeter meter_;
};

TEST_F(ProfilerTest, TimeRuleMatchesPaper) {
  // §V-A: 10 minutes for a single node, +1 minute per 3 extra nodes.
  // resnet iterations are fast enough that no window stretch applies.
  Profiler profiler(perf_, space_, meter_, 1);
  const auto cfg = config();
  EXPECT_NEAR(profiler.expected_profile_hours(cfg, {0, 1}), 10.0 / 60.0,
              1e-12);
  EXPECT_NEAR(profiler.expected_profile_hours(cfg, {0, 4}), 11.0 / 60.0,
              1e-12);
  EXPECT_NEAR(profiler.expected_profile_hours(cfg, {0, 7}), 12.0 / 60.0,
              1e-12);
  EXPECT_NEAR(profiler.expected_profile_hours(cfg, {0, 49}), 26.0 / 60.0,
              1e-12);
}

TEST_F(ProfilerTest, CostIsPriceTimesNodesTimesTime) {
  // Paper Eq. 8: PL_C = P(m) * n * t(m, n).
  Profiler profiler(perf_, space_, meter_, 1);
  const cloud::Deployment d{type_of("c5.xlarge"), 10};
  EXPECT_NEAR(profiler.expected_profile_cost(config(), d),
              0.17 * 10 * (13.0 / 60.0), 1e-9);
}

TEST_F(ProfilerTest, HugeModelStretchesTheWindow) {
  // A 20B-parameter model's iterations cannot fit the 10-minute window
  // on a small deployment: the probe (and its bill) stretches. This is
  // the second face of heterogeneous profiling cost.
  Profiler profiler(perf_, space_, meter_, 1);
  const auto big = config("zero_20b");
  const cloud::Deployment d{type_of("p3.16xlarge"), 4};
  EXPECT_GT(profiler.expected_profile_hours(big, d), 10.0 / 60.0);
}

TEST_F(ProfilerTest, MeasurementNearTruth) {
  Profiler profiler(perf_, space_, meter_, 7);
  const cloud::Deployment d{type_of("c5.4xlarge"), 10};
  const ProfileResult r = profiler.profile(config(), {d});
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.true_speed, 0.0);
  EXPECT_NEAR(r.measured_speed / r.true_speed, 1.0, 0.05);
}

TEST_F(ProfilerTest, MeasurementsAreNoisyAcrossProbes) {
  Profiler profiler(perf_, space_, meter_, 7);
  const cloud::Deployment d{type_of("c5.4xlarge"), 10};
  const ProfileResult a = profiler.profile(config(), {d});
  const ProfileResult b = profiler.profile(config(), {d});
  EXPECT_NE(a.measured_speed, b.measured_speed);
  EXPECT_DOUBLE_EQ(a.true_speed, b.true_speed);
}

TEST_F(ProfilerTest, DeterministicPerSeed) {
  cloud::BillingMeter m1(space_), m2(space_);
  Profiler p1(perf_, space_, m1, 42), p2(perf_, space_, m2, 42);
  const cloud::Deployment d{type_of("c5.4xlarge"), 10};
  EXPECT_DOUBLE_EQ(p1.profile(config(), {d}).measured_speed,
                   p2.profile(config(), {d}).measured_speed);
}

TEST_F(ProfilerTest, ChargesBillingMeter) {
  Profiler profiler(perf_, space_, meter_, 1);
  const cloud::Deployment d{type_of("c5.xlarge"), 1};
  const ProfileResult r = profiler.profile(config(), {d});
  EXPECT_NEAR(meter_.total_cost(cloud::UsageKind::kProfiling),
              r.profile_cost, 1e-12);
  EXPECT_DOUBLE_EQ(meter_.total_cost(cloud::UsageKind::kTraining), 0.0);
}

TEST_F(ProfilerTest, HighNoiseTriggersExtension) {
  ProfilerOptions options;
  options.noise_sigma = 0.5;     // very unstable measurements
  options.cov_threshold = 0.05;  // strict stability requirement
  options.max_extensions = 3;
  Profiler profiler(perf_, space_, meter_, 3, options);
  const ProfileResult r =
      profiler.profile(config(), {type_of("c5.4xlarge"), 4});
  EXPECT_GT(r.extensions, 0);
  EXPECT_GT(r.profile_hours, profiler.expected_profile_hours(
                                 config(), {type_of("c5.4xlarge"), 4}));
  EXPECT_GT(r.iterations, options.iterations);
}

TEST_F(ProfilerTest, LowNoiseNeedsNoExtension) {
  ProfilerOptions options;
  options.noise_sigma = 0.005;
  Profiler profiler(perf_, space_, meter_, 3, options);
  const ProfileResult r =
      profiler.profile(config(), {type_of("c5.4xlarge"), 4});
  EXPECT_EQ(r.extensions, 0);
}

TEST_F(ProfilerTest, InfeasibleDeploymentStillBilled) {
  // zero_20b cannot fit on 2 K80 nodes; the probe discovers this but the
  // cluster time is still paid for.
  Profiler profiler(perf_, space_, meter_, 1);
  const ProfileResult r =
      profiler.profile(config("zero_20b"), {type_of("p2.xlarge"), 2});
  EXPECT_FALSE(r.feasible);
  EXPECT_DOUBLE_EQ(r.measured_speed, 0.0);
  EXPECT_GT(r.profile_cost, 0.0);
  EXPECT_GT(meter_.total_cost(), 0.0);
}

TEST_F(ProfilerTest, OutOfSpaceThrows) {
  Profiler profiler(perf_, space_, meter_, 1);
  EXPECT_THROW(profiler.profile(config(), {0, 51}), std::invalid_argument);
}

TEST_F(ProfilerTest, InvalidOptionsThrow) {
  ProfilerOptions bad;
  bad.iterations = 1;
  EXPECT_THROW(Profiler(perf_, space_, meter_, 1, bad),
               std::invalid_argument);
  ProfilerOptions bad2;
  bad2.base_profile_hours = 0.0;
  EXPECT_THROW(Profiler(perf_, space_, meter_, 1, bad2),
               std::invalid_argument);
}

TEST_F(ProfilerTest, ProbeCountIncrements) {
  Profiler profiler(perf_, space_, meter_, 1);
  EXPECT_EQ(profiler.probes_performed(), 0);
  profiler.profile(config(), {type_of("c5.xlarge"), 1});
  profiler.profile(config(), {type_of("c5.xlarge"), 2});
  EXPECT_EQ(profiler.probes_performed(), 2);
}

}  // namespace
}  // namespace mlcd::profiler
