// Failure-injection tests: transient probe failures (cluster launch
// failures, spot revocations, capacity outages, stragglers) must be
// billed, must be retried with backoff, must not poison the surrogate,
// and must not break HeterBO's constraint guarantee. The chaos sweep at
// the bottom is the subsystem's acceptance criterion: across failure
// rates x scenarios x seeds, no run ever exceeds its deadline or budget,
// and every billed dollar is traceable to a recorded attempt.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/fault_model.hpp"
#include "models/model_zoo.hpp"
#include "perf/perf_model.hpp"
#include "profiler/profiler.hpp"
#include "search/conv_bo.hpp"
#include "search/heter_bo.hpp"

namespace mlcd {
namespace {

perf::TrainingConfig resnet_config() {
  perf::TrainingConfig c;
  c.model = models::paper_zoo().model("resnet");
  c.platform = perf::tensorflow_profile();
  c.topology = perf::CommTopology::kParameterServer;
  return c;
}

cloud::InstanceCatalog one_type() {
  return cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
}

// ----------------------------------------------------------------- profiler

TEST(FailureInjection, FailedProbesBillHalfTheWindow) {
  const auto cat = one_type();
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  cloud::BillingMeter meter(space);

  profiler::ProfilerOptions options;
  options.faults.launch_failure_per_node = 0.5;
  options.retry.max_attempts = 1;      // no recovery: every roll is final
  profiler::Profiler profiler(perf, space, meter, 3, options);

  const auto config = resnet_config();
  // One node, so the per-node hazard is exactly the per-probe one.
  int failures = 0;
  for (int i = 0; i < 40; ++i) {
    const auto r = profiler.profile(config, {0, 1});
    if (r.failed) {
      ++failures;
      EXPECT_FALSE(r.feasible);
      EXPECT_DOUBLE_EQ(r.measured_speed, 0.0);
      EXPECT_EQ(r.fault, cloud::FaultKind::kLaunchFailure);
      EXPECT_EQ(r.attempts, 1);
      EXPECT_GT(r.profile_cost, 0.0);  // failures are not free
      EXPECT_NEAR(r.profile_hours,
                  0.5 * profiler.expected_profile_hours(config, {0, 1}),
                  1e-12);
    }
  }
  // ~50% failure rate: expect a healthy count of both outcomes.
  EXPECT_GT(failures, 8);
  EXPECT_LT(failures, 32);
}

TEST(FailureInjection, ZeroRateNeverFails) {
  const auto cat = one_type();
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  cloud::BillingMeter meter(space);
  profiler::Profiler profiler(perf, space, meter, 3);
  for (int i = 0; i < 20; ++i) {
    const auto r = profiler.profile(resnet_config(), {0, 4});
    EXPECT_FALSE(r.failed);
    EXPECT_EQ(r.fault, cloud::FaultKind::kNone);
    EXPECT_EQ(r.attempts, 1);
    EXPECT_DOUBLE_EQ(r.backoff_hours, 0.0);
  }
}

TEST(FailureInjection, InvalidRateThrows) {
  const auto cat = one_type();
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  cloud::BillingMeter meter(space);
  profiler::ProfilerOptions bad;
  bad.faults.launch_failure_per_node = 1.0;
  EXPECT_THROW(profiler::Profiler(perf, space, meter, 1, bad),
               std::invalid_argument);
  profiler::ProfilerOptions bad2;
  bad2.faults.launch_failure_per_node = -0.1;
  EXPECT_THROW(profiler::Profiler(perf, space, meter, 1, bad2),
               std::invalid_argument);
  profiler::ProfilerOptions bad3;
  bad3.retry.max_attempts = 0;
  EXPECT_THROW(profiler::Profiler(perf, space, meter, 1, bad3),
               std::invalid_argument);
}

TEST(FailureInjection, PerNodeHazardScalesWithClusterSize) {
  const auto cat = one_type();
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  const auto config = resnet_config();

  profiler::ProfilerOptions options;
  options.faults.launch_failure_per_node = 0.05;
  options.retry.max_attempts = 1;

  auto count_failures = [&](int nodes) {
    cloud::BillingMeter meter(space);
    profiler::Profiler profiler(perf, space, meter, 9, options);
    int failures = 0;
    for (int i = 0; i < 100; ++i) {
      if (profiler.profile(config, {0, nodes}).failed) ++failures;
    }
    return failures;
  };

  const int small = count_failures(1);   // P ~ 0.05
  const int large = count_failures(40);  // P ~ 0.87
  EXPECT_LT(small, 20);
  EXPECT_GT(large, 60);
  EXPECT_GT(large, 2 * small);
}

TEST(FailureInjection, ExhaustionBillsEveryAttempt) {
  const auto cat = one_type();
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  cloud::BillingMeter meter(space);

  profiler::ProfilerOptions options;
  options.faults.launch_failure_per_node = 0.999;
  profiler::Profiler profiler(perf, space, meter, 1, options);

  const auto r = profiler.profile(resnet_config(), {0, 4});
  ASSERT_TRUE(r.failed);  // P(any attempt succeeds) ~ 3e-9
  EXPECT_EQ(r.attempts, options.retry.max_attempts);
  ASSERT_EQ(r.attempt_log.size(),
            static_cast<std::size_t>(options.retry.max_attempts));
  double attempt_cost_sum = 0.0;
  for (const cloud::AttemptRecord& rec : r.attempt_log) {
    EXPECT_EQ(rec.fault, cloud::FaultKind::kLaunchFailure);
    EXPECT_GT(rec.cost, 0.0);  // every failed launch is billed
    attempt_cost_sum += rec.cost;
  }
  EXPECT_NEAR(attempt_cost_sum, r.profile_cost, 1e-12);
  EXPECT_NEAR(meter.total_cost(cloud::UsageKind::kProfiling),
              r.profile_cost, 1e-12);
}

TEST(FailureInjection, BackoffChargedToClockNotMeter) {
  const auto cat = one_type();
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  cloud::BillingMeter meter(space);

  profiler::ProfilerOptions options;
  options.faults.launch_failure_per_node = 0.999;
  profiler::Profiler profiler(perf, space, meter, 1, options);

  const auto r = profiler.profile(resnet_config(), {0, 4});
  ASSERT_TRUE(r.failed);
  EXPECT_GT(r.backoff_hours, 0.0);  // two retries -> two backoff waits
  double hours_from_log = 0.0;
  for (const cloud::AttemptRecord& rec : r.attempt_log) {
    hours_from_log += rec.hours + rec.backoff_hours;
  }
  EXPECT_NEAR(r.profile_hours, hours_from_log, 1e-12);
  // The meter only saw the cluster-up time; backoff is deadline-clock
  // time during which nothing is rented.
  EXPECT_LT(meter.total_hours(cloud::UsageKind::kProfiling),
            r.profile_hours);
  EXPECT_NEAR(meter.total_hours(cloud::UsageKind::kProfiling),
              r.profile_hours - r.backoff_hours, 1e-12);
  // The last attempt never backs off: the probe is abandoned, not queued.
  EXPECT_DOUBLE_EQ(r.attempt_log.back().backoff_hours, 0.0);
}

TEST(FailureInjection, StragglerStretchesProbeWithoutChangingMeasurement) {
  const auto cat = one_type();
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  const auto config = resnet_config();

  cloud::BillingMeter clean_meter(space);
  profiler::Profiler clean(perf, space, clean_meter, 17);
  const auto clean_r = clean.profile(config, {0, 4});

  profiler::ProfilerOptions options;
  options.faults.straggler_rate = 1.0;
  options.faults.straggler_slowdown = 2.0;
  cloud::BillingMeter slow_meter(space);
  profiler::Profiler slow(perf, space, slow_meter, 17, options);
  const auto slow_r = slow.profile(config, {0, 4});

  // The fault stream is separate from the measurement stream: the same
  // seed yields the bit-identical speed estimate, just twice as slowly.
  EXPECT_FALSE(slow_r.failed);
  EXPECT_EQ(slow_r.fault, cloud::FaultKind::kStraggler);
  EXPECT_DOUBLE_EQ(slow_r.measured_speed, clean_r.measured_speed);
  EXPECT_NEAR(slow_r.profile_hours, 2.0 * clean_r.profile_hours, 1e-12);
  EXPECT_GT(slow_r.profile_cost, clean_r.profile_cost);
}

TEST(FailureInjection, SpotRevocationFaultKind) {
  const auto cat = one_type();
  const cloud::DeploymentSpace space(cat, 50, cloud::Market::kSpot);
  const perf::TrainingPerfModel perf(cat);
  cloud::BillingMeter meter(space);

  profiler::ProfilerOptions options;
  // Crank the catalog's revocation rate until a revocation within the
  // probe window is a near-certainty.
  options.faults.spot_revocation_scale = 1000.0;
  options.retry.max_attempts = 1;
  profiler::Profiler profiler(perf, space, meter, 4, options);

  const auto config = resnet_config();
  const double planned = profiler.expected_profile_hours(config, {0, 4});
  const auto r = profiler.profile(config, {0, 4});
  ASSERT_TRUE(r.failed);
  EXPECT_EQ(r.fault, cloud::FaultKind::kSpotRevocation);
  // A revoked attempt bills at least the floor fraction of the window.
  const double floor_cost =
      profiler.fault_model().options().revocation_fraction_floor * planned *
      space.hourly_price({0, 4});
  EXPECT_GE(r.profile_cost, floor_cost);
}

TEST(FailureInjection, ScheduledOutageBillsNothing) {
  const auto cat = one_type();
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  cloud::BillingMeter meter(space);

  profiler::ProfilerOptions options;
  options.faults.scheduled_outages = {{0, {0.0, 1000.0}}};
  profiler::Profiler profiler(perf, space, meter, 1, options);

  EXPECT_TRUE(profiler.type_in_outage(0));
  const auto r = profiler.profile(resnet_config(), {0, 4});
  ASSERT_TRUE(r.failed);
  EXPECT_EQ(r.fault, cloud::FaultKind::kCapacityOutage);
  EXPECT_EQ(r.attempts, options.retry.max_attempts);
  // No instance ever started: wall clock burned, nothing billed.
  EXPECT_DOUBLE_EQ(r.profile_cost, 0.0);
  EXPECT_GT(r.profile_hours, 0.0);
  EXPECT_DOUBLE_EQ(meter.total_cost(), 0.0);
}

// ---------------------------------------------------------------- searchers

class SearchUnderFailures : public testing::TestWithParam<int> {};

TEST_P(SearchUnderFailures, HeterBoStillFindsAndComplies) {
  const auto cat = cloud::aws_catalog().subset(std::vector<std::string>{
      "c5.xlarge", "c5.4xlarge", "p2.xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);

  search::SearchProblem p;
  p.config = resnet_config();
  p.space = &space;
  p.scenario = search::Scenario::fastest_under_budget(120.0);
  p.seed = static_cast<std::uint64_t>(GetParam());
  p.profiler_options.faults.launch_failure_per_node = 0.2;

  const search::SearchResult r = search::HeterBoSearcher(perf).run(p);
  ASSERT_TRUE(r.found) << "seed " << GetParam();
  EXPECT_LE(r.total_cost(), 120.0) << r.summary(p.scenario);
  // The final pick must be a real (non-failed) measurement.
  bool pick_measured = false;
  for (const search::ProbeStep& s : r.trace) {
    if (s.deployment == r.best && !s.failed && s.feasible) {
      pick_measured = true;
    }
  }
  EXPECT_TRUE(pick_measured);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchUnderFailures, testing::Range(1, 7));

TEST(FailureInjection, FailedProbesMayBeRetried) {
  // With a high failure rate the same deployment can legitimately appear
  // more than once in a trace: once failed, once measured.
  const auto cat = one_type();
  const cloud::DeploymentSpace space(cat, 20);
  const perf::TrainingPerfModel perf(cat);

  search::SearchProblem p;
  p.config = resnet_config();
  p.space = &space;
  p.scenario = search::Scenario::fastest();
  p.profiler_options.faults.launch_failure_per_node = 0.4;
  // Disable in-probe recovery so failures surface in the trace.
  p.profiler_options.retry.max_attempts = 1;

  bool saw_retry = false;
  for (int seed = 1; seed <= 10 && !saw_retry; ++seed) {
    p.seed = static_cast<std::uint64_t>(seed);
    const search::SearchResult r = search::ConvBoSearcher(perf).run(p);
    for (std::size_t i = 0; i < r.trace.size() && !saw_retry; ++i) {
      if (!r.trace[i].failed) continue;
      for (std::size_t j = i + 1; j < r.trace.size(); ++j) {
        if (r.trace[j].deployment == r.trace[i].deployment &&
            !r.trace[j].failed) {
          saw_retry = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(saw_retry);
}

TEST(FailureInjection, FailuresCountedInProfilingSpend) {
  const auto cat = one_type();
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);

  search::SearchProblem p;
  p.config = resnet_config();
  p.space = &space;
  p.scenario = search::Scenario::fastest();
  p.seed = 5;
  p.profiler_options.faults.launch_failure_per_node = 0.3;

  const search::SearchResult r = search::HeterBoSearcher(perf).run(p);
  double sum = 0.0;
  for (const search::ProbeStep& s : r.trace) sum += s.profile_cost;
  EXPECT_NEAR(sum, r.profile_cost, 1e-9);
  EXPECT_GE(r.total_probe_attempts(),
            static_cast<int>(r.trace.size()));
}

TEST(FailureInjection, WarmStartCoveringOutagedTypeStillInitializes) {
  const auto cat = cloud::aws_catalog().subset(std::vector<std::string>{
      "c5.xlarge", "c5.4xlarge", "p2.xlarge"});
  const cloud::DeploymentSpace space(cat, 20);
  const perf::TrainingPerfModel perf(cat);

  search::SearchProblem p;
  p.config = resnet_config();
  p.space = &space;
  p.scenario = search::Scenario::fastest_under_budget(120.0);
  p.seed = 2;
  // Type 0 is dark for the whole run.
  p.profiler_options.faults.scheduled_outages = {{0, {0.0, 1e6}}};

  // Warm points cover the outaged type: the searcher must neither probe
  // it nor trip over the stale surrogate rows.
  search::HeterBoOptions options;
  options.warm_start = {{{0, 1}, 40.0}, {{0, 4}, 120.0}};

  const search::SearchResult r =
      search::HeterBoSearcher(perf, options).run(p);
  ASSERT_TRUE(r.found);
  EXPECT_NE(r.best.type_index, 0u);
  for (const search::ProbeStep& s : r.trace) {
    EXPECT_NE(s.deployment.type_index, 0u)
        << "probed an outaged type at step reason " << s.reason;
  }
  EXPECT_TRUE(r.meets_constraints(p.scenario)) << r.summary(p.scenario);
}

TEST(FailureInjection, DeterministicReplay) {
  const auto cat = cloud::aws_catalog().subset(std::vector<std::string>{
      "c5.xlarge", "c5.4xlarge", "p2.xlarge"});
  const cloud::DeploymentSpace space(cat, 20);
  const perf::TrainingPerfModel perf(cat);

  search::SearchProblem p;
  p.config = resnet_config();
  p.space = &space;
  p.scenario = search::Scenario::fastest_under_budget(100.0);
  p.seed = 11;
  p.profiler_options.faults.launch_failure_per_node = 0.1;
  p.profiler_options.faults.straggler_rate = 0.2;
  p.profiler_options.faults.outage_episodes_per_100h = 20.0;

  const search::SearchResult a = search::HeterBoSearcher(perf).run(p);
  const search::SearchResult b = search::HeterBoSearcher(perf).run(p);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const search::ProbeStep& sa = a.trace[i];
    const search::ProbeStep& sb = b.trace[i];
    EXPECT_EQ(sa.deployment, sb.deployment) << "step " << i;
    EXPECT_EQ(sa.failed, sb.failed) << "step " << i;
    EXPECT_EQ(sa.attempts, sb.attempts) << "step " << i;
    EXPECT_EQ(sa.fault, sb.fault) << "step " << i;
    EXPECT_DOUBLE_EQ(sa.measured_speed, sb.measured_speed) << "step " << i;
    EXPECT_DOUBLE_EQ(sa.profile_cost, sb.profile_cost) << "step " << i;
    EXPECT_DOUBLE_EQ(sa.backoff_hours, sb.backoff_hours) << "step " << i;
  }
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.best, b.best);
}

// ------------------------------------------------------------- chaos sweep

// Acceptance criterion for the fault subsystem, in the form the
// protective reserve actually guarantees: the moment any probed point is
// constraint-compliant with margin, that compliance can never be
// forfeited — the run must finish within T_max/C_max. (When chaos denies
// every compliant point — e.g. the only fast type is outaged all run —
// the searcher reports its least-violating option flagged VIOLATED,
// mirroring the seed's impossible-constraint behavior; that is honest
// reporting, not a silent overshoot.) The billing identity must hold at
// every level regardless: run == sum of steps, step == sum of attempts.
TEST(ChaosSweep, ConstraintsHoldUnderEveryFailureRate) {
  const auto cat = cloud::aws_catalog().subset(std::vector<std::string>{
      "c5.xlarge", "c5.4xlarge", "p2.xlarge"});
  const cloud::DeploymentSpace on_demand(cat, 20);
  const cloud::DeploymentSpace spot(cat, 20, cloud::Market::kSpot);
  const perf::TrainingPerfModel perf(cat);

  struct Case {
    const char* name;
    const cloud::DeploymentSpace* space;
    search::Scenario scenario;
  };
  const Case cases[] = {
      {"cheapest<=24h", &on_demand,
       search::Scenario::cheapest_under_deadline(24.0)},
      {"fastest<=$120", &on_demand,
       search::Scenario::fastest_under_budget(120.0)},
      {"spot fastest<=$60", &spot,
       search::Scenario::fastest_under_budget(60.0)},
  };

  // Did any feasible probe, at the moment it completed, still leave 10%
  // of the constraint for its own training run? Such a point is well
  // inside the reserve's 3% protection band, so from then on the
  // constraint guarantee is unconditional.
  const auto protectable = [&](const search::SearchResult& r,
                               const search::SearchProblem& p) {
    for (const search::ProbeStep& s : r.trace) {
      if (!s.feasible || s.measured_speed <= 0.0) continue;
      const double train_h =
          p.config.model.samples_to_train / s.measured_speed / 3600.0 *
          p.space->restart_overhead_multiplier(s.deployment);
      const double train_c = train_h * p.space->hourly_price(s.deployment);
      const bool within_t =
          !p.scenario.has_deadline() ||
          s.cum_profile_hours + train_h <= 0.90 * p.scenario.deadline_hours;
      const bool within_c =
          !p.scenario.has_budget() ||
          s.cum_profile_cost + train_c <= 0.90 * p.scenario.budget_dollars;
      if (within_t && within_c) return true;
    }
    return false;
  };

  int runs = 0;
  int guaranteed = 0;
  for (const double rate : {0.0, 0.1, 0.3}) {
    for (const Case& c : cases) {
      for (int seed = 1; seed <= 10; ++seed) {
        search::SearchProblem p;
        p.config = resnet_config();
        p.space = c.space;
        p.scenario = c.scenario;
        p.seed = static_cast<std::uint64_t>(seed);
        p.profiler_options.faults.launch_failure_per_node = rate;
        p.profiler_options.faults.straggler_rate = rate;
        p.profiler_options.faults.outage_episodes_per_100h = 100.0 * rate;

        const search::SearchResult r = search::HeterBoSearcher(perf).run(p);
        ++runs;
        const std::string label = std::string(c.name) + " rate=" +
                                  std::to_string(rate) + " seed=" +
                                  std::to_string(seed);
        if (protectable(r, p)) {
          ++guaranteed;
          EXPECT_TRUE(r.found) << label;
          EXPECT_TRUE(r.meets_constraints(p.scenario))
              << label << "\n" << r.summary(p.scenario);
        }
        // Billing identity, both levels.
        double step_sum = 0.0;
        for (const search::ProbeStep& s : r.trace) {
          step_sum += s.profile_cost;
          double attempt_sum = 0.0;
          for (const cloud::AttemptRecord& rec : s.attempt_log) {
            attempt_sum += rec.cost;
          }
          EXPECT_NEAR(s.profile_cost, attempt_sum, 1e-9) << label;
        }
        EXPECT_NEAR(r.profile_cost, step_sum, 1e-9) << label;
      }
    }
  }
  EXPECT_EQ(runs, 90);
  // Chaos may deny some runs their compliant point, but the guarantee
  // must bind for the clear majority — otherwise it guarantees nothing.
  EXPECT_GT(guaranteed, runs / 2)
      << "guaranteed " << guaranteed << " of " << runs;
}

}  // namespace
}  // namespace mlcd
