// Failure-injection tests: transient probe failures (cluster launch
// failures, revocations) must be billed, must not poison the surrogate,
// and must not break HeterBO's constraint guarantee.
#include <gtest/gtest.h>

#include "cloud/billing.hpp"
#include "models/model_zoo.hpp"
#include "perf/perf_model.hpp"
#include "profiler/profiler.hpp"
#include "search/conv_bo.hpp"
#include "search/heter_bo.hpp"

namespace mlcd {
namespace {

perf::TrainingConfig resnet_config() {
  perf::TrainingConfig c;
  c.model = models::paper_zoo().model("resnet");
  c.platform = perf::tensorflow_profile();
  c.topology = perf::CommTopology::kParameterServer;
  return c;
}

// ----------------------------------------------------------------- profiler

TEST(FailureInjection, FailedProbesBillHalfTheWindow) {
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  cloud::BillingMeter meter(space);

  profiler::ProfilerOptions options;
  options.failure_rate = 0.5;
  profiler::Profiler profiler(perf, space, meter, 3, options);

  const auto config = resnet_config();
  int failures = 0;
  for (int i = 0; i < 40; ++i) {
    const auto r = profiler.profile(config, {0, 4});
    if (r.failed) {
      ++failures;
      EXPECT_FALSE(r.feasible);
      EXPECT_DOUBLE_EQ(r.measured_speed, 0.0);
      EXPECT_GT(r.profile_cost, 0.0);  // failures are not free
      EXPECT_NEAR(r.profile_hours,
                  0.5 * profiler.expected_profile_hours(config, {0, 4}),
                  1e-12);
    }
  }
  // ~50% failure rate: expect a healthy count of both outcomes.
  EXPECT_GT(failures, 8);
  EXPECT_LT(failures, 32);
}

TEST(FailureInjection, ZeroRateNeverFails) {
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  cloud::BillingMeter meter(space);
  profiler::Profiler profiler(perf, space, meter, 3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(profiler.profile(resnet_config(), {0, 4}).failed);
  }
}

TEST(FailureInjection, InvalidRateThrows) {
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  cloud::BillingMeter meter(space);
  profiler::ProfilerOptions bad;
  bad.failure_rate = 1.0;
  EXPECT_THROW(profiler::Profiler(perf, space, meter, 1, bad),
               std::invalid_argument);
  profiler::ProfilerOptions bad2;
  bad2.failure_rate = -0.1;
  EXPECT_THROW(profiler::Profiler(perf, space, meter, 1, bad2),
               std::invalid_argument);
}

// ---------------------------------------------------------------- searchers

class SearchUnderFailures : public testing::TestWithParam<int> {};

TEST_P(SearchUnderFailures, HeterBoStillFindsAndComplies) {
  const auto cat = cloud::aws_catalog().subset(std::vector<std::string>{
      "c5.xlarge", "c5.4xlarge", "p2.xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);

  search::SearchProblem p;
  p.config = resnet_config();
  p.space = &space;
  p.scenario = search::Scenario::fastest_under_budget(120.0);
  p.seed = static_cast<std::uint64_t>(GetParam());
  p.profiler_options.failure_rate = 0.2;

  const search::SearchResult r = search::HeterBoSearcher(perf).run(p);
  ASSERT_TRUE(r.found) << "seed " << GetParam();
  EXPECT_LE(r.total_cost(), 120.0) << r.summary(p.scenario);
  // The final pick must be a real (non-failed) measurement.
  bool pick_measured = false;
  for (const search::ProbeStep& s : r.trace) {
    if (s.deployment == r.best && !s.failed && s.feasible) {
      pick_measured = true;
    }
  }
  EXPECT_TRUE(pick_measured);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchUnderFailures, testing::Range(1, 7));

TEST(FailureInjection, FailedProbesMayBeRetried) {
  // With a high failure rate the same deployment can legitimately appear
  // more than once in a trace: once failed, once measured.
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 20);
  const perf::TrainingPerfModel perf(cat);

  search::SearchProblem p;
  p.config = resnet_config();
  p.space = &space;
  p.scenario = search::Scenario::fastest();
  p.profiler_options.failure_rate = 0.4;

  bool saw_retry = false;
  for (int seed = 1; seed <= 10 && !saw_retry; ++seed) {
    p.seed = static_cast<std::uint64_t>(seed);
    const search::SearchResult r = search::ConvBoSearcher(perf).run(p);
    for (std::size_t i = 0; i < r.trace.size() && !saw_retry; ++i) {
      if (!r.trace[i].failed) continue;
      for (std::size_t j = i + 1; j < r.trace.size(); ++j) {
        if (r.trace[j].deployment == r.trace[i].deployment &&
            !r.trace[j].failed) {
          saw_retry = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(saw_retry);
}

TEST(FailureInjection, FailuresCountedInProfilingSpend) {
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);

  search::SearchProblem p;
  p.config = resnet_config();
  p.space = &space;
  p.scenario = search::Scenario::fastest();
  p.seed = 5;
  p.profiler_options.failure_rate = 0.3;

  const search::SearchResult r = search::HeterBoSearcher(perf).run(p);
  double sum = 0.0;
  for (const search::ProbeStep& s : r.trace) sum += s.profile_cost;
  EXPECT_NEAR(sum, r.profile_cost, 1e-9);
}

}  // namespace
}  // namespace mlcd
