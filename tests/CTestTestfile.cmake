# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/util_test[1]_include.cmake")
include("/root/repo/tests/linalg_test[1]_include.cmake")
include("/root/repo/tests/stats_test[1]_include.cmake")
include("/root/repo/tests/gp_test[1]_include.cmake")
include("/root/repo/tests/bo_test[1]_include.cmake")
include("/root/repo/tests/cloud_test[1]_include.cmake")
include("/root/repo/tests/models_test[1]_include.cmake")
include("/root/repo/tests/perf_test[1]_include.cmake")
include("/root/repo/tests/profiler_test[1]_include.cmake")
include("/root/repo/tests/search_test[1]_include.cmake")
include("/root/repo/tests/completion_model_test[1]_include.cmake")
include("/root/repo/tests/mlcd_test[1]_include.cmake")
include("/root/repo/tests/cli_test[1]_include.cmake")
include("/root/repo/tests/fastpath_test[1]_include.cmake")
include("/root/repo/tests/fault_model_test[1]_include.cmake")
include("/root/repo/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/tests/invariants_test[1]_include.cmake")
include("/root/repo/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/tests/integration_test[1]_include.cmake")
include("/root/repo/tests/journal_test[1]_include.cmake")
include("/root/repo/tests/fidelity_test[1]_include.cmake")
include("/root/repo/tests/service_test[1]_include.cmake")
include("/root/repo/tests/golden_test[1]_include.cmake")
include("/root/repo/tests/durable_batch_test[1]_include.cmake")
