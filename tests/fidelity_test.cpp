// Multi-fidelity probe surface tests: ladder-spec parsing, the reduced-
// probe cost/bias/noise model, fidelity-keyed probe-gate isolation, the
// versioned journal compatibility story (ladder-free runs write version-1
// bytes; resumes under a different ladder are refused), the kill-point
// resume sweep through a mixed-fidelity run, and the GP's heteroscedastic
// noise treatment of cheap observations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/deployment.hpp"
#include "gp/gp_regressor.hpp"
#include "gp/kernel.hpp"
#include "journal/journal.hpp"
#include "mlcd/mlcd.hpp"
#include "models/model_zoo.hpp"
#include "profiler/fidelity.hpp"
#include "profiler/probe_gate.hpp"
#include "profiler/profiler.hpp"

namespace mlcd {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Byte offsets of every record boundary (position just after each '\n'),
/// including 0 and the file size.
std::vector<std::size_t> record_boundaries(const std::string& bytes) {
  std::vector<std::size_t> offsets = {0};
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == '\n') offsets.push_back(i + 1);
  }
  return offsets;
}

// ------------------------------------------------------ ladder spec

TEST(FidelitySpec, ParsesAndFormatsLadder) {
  const std::vector<profiler::Fidelity> rungs =
      profiler::parse_fidelity_rungs("0.5:1,0.25:2");
  ASSERT_EQ(rungs.size(), 2u);
  EXPECT_DOUBLE_EQ(rungs[0].sample_fraction, 0.5);
  EXPECT_EQ(rungs[0].iteration_tier, 1);
  EXPECT_DOUBLE_EQ(rungs[1].sample_fraction, 0.25);
  EXPECT_EQ(rungs[1].iteration_tier, 2);
  EXPECT_FALSE(rungs[0].is_full());
  EXPECT_EQ(profiler::format_fidelity_rungs(rungs), "0.5:1,0.25:2");
  EXPECT_EQ(profiler::format_fidelity_rungs({}), "");

  // A rung reduced on only one axis is legal: sub-sampling without
  // window truncation and vice versa.
  const std::vector<profiler::Fidelity> one_axis =
      profiler::parse_fidelity_rungs("0.5:0,1:2");
  EXPECT_EQ(one_axis[0].iteration_tier, 0);
  EXPECT_DOUBLE_EQ(one_axis[1].sample_fraction, 1.0);
}

TEST(FidelitySpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "0.5", "0.5:", ":1", "abc:1", "0.5:x",
                          "0:1", "-0.5:1", "1.5:1", "0.5:-1", "0.5:9",
                          "1:0", "0.5:1,,0.25:2", "0.5:1x"}) {
    EXPECT_THROW(profiler::parse_fidelity_rungs(bad),
                 std::invalid_argument)
        << "spec '" << bad << "' was accepted";
  }
  try {
    profiler::parse_fidelity_rungs("1:0");
    FAIL() << "the implicit full rung was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fidelity ladder"),
              std::string::npos)
        << e.what();
  }
}

TEST(FidelitySpec, LadderHashSeparatesConfigurations) {
  profiler::FidelityOptions off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(profiler::hash_fidelity_ladder(off), 0u);

  profiler::FidelityOptions a;
  a.rungs = profiler::parse_fidelity_rungs("0.5:1,0.25:2");
  profiler::FidelityOptions b;
  b.rungs = profiler::parse_fidelity_rungs("0.5:1");
  const std::uint64_t ha = profiler::hash_fidelity_ladder(a);
  const std::uint64_t hb = profiler::hash_fidelity_ladder(b);
  EXPECT_NE(ha, 0u);
  EXPECT_NE(hb, 0u);
  EXPECT_NE(ha, hb);

  // The bias/noise envelope shapes measurements, so it is part of the
  // ladder identity too.
  profiler::FidelityOptions c = a;
  c.max_speed_bias = 0.10;
  EXPECT_NE(profiler::hash_fidelity_ladder(c), ha);

  EXPECT_DOUBLE_EQ(profiler::fidelity_window_fraction(0), 1.0);
  EXPECT_DOUBLE_EQ(profiler::fidelity_window_fraction(2), 0.25);
}

// ----------------------------------------------- cost / bias / noise

class FidelityProfilerTest : public testing::Test {
 protected:
  FidelityProfilerTest()
      : space_(cloud::aws_catalog(), 50),
        perf_(cloud::aws_catalog()),
        meter_(space_) {}

  perf::TrainingConfig config(const char* model = "resnet") const {
    perf::TrainingConfig c;
    c.model = models::paper_zoo().model(model);
    c.platform = perf::tensorflow_profile();
    c.topology = perf::CommTopology::kParameterServer;
    return c;
  }

  std::size_t type_of(const char* name) const {
    return *cloud::aws_catalog().find(name);
  }

  cloud::DeploymentSpace space_;
  perf::TrainingPerfModel perf_;
  cloud::BillingMeter meter_;
};

TEST_F(FidelityProfilerTest, FullFidelityDefaultsMatchLegacyArithmetic) {
  profiler::Profiler profiler(perf_, space_, meter_, 1);
  const auto cfg = config();
  const cloud::Deployment d{type_of("c5.xlarge"), 10};
  // The defaulted-fidelity overloads and an explicit Fidelity{} are the
  // same computation — the single ProbeRequest entry point did not
  // change the legacy cost arithmetic.
  EXPECT_DOUBLE_EQ(profiler.expected_profile_hours(cfg, d),
                   profiler.expected_profile_hours(cfg, d, {}));
  EXPECT_DOUBLE_EQ(profiler.expected_profile_cost(cfg, d),
                   profiler.expected_profile_cost(cfg, d, {}));
  EXPECT_DOUBLE_EQ(profiler.worst_case_profile_hours(cfg, d),
                   profiler.worst_case_profile_hours(cfg, d, {}));
  EXPECT_DOUBLE_EQ(profiler.worst_case_profile_cost(cfg, d),
                   profiler.worst_case_profile_cost(cfg, d, {}));

  const profiler::ProfilerOptions options;
  EXPECT_DOUBLE_EQ(profiler::fidelity_speed_bias(options, {}), 0.0);
  EXPECT_DOUBLE_EQ(profiler::fidelity_noise_multiplier(options, {}), 1.0);
  EXPECT_EQ(profiler::fidelity_iterations(options, {}), options.iterations);
}

TEST_F(FidelityProfilerTest, ReducedRungIsCheaperThanFull) {
  profiler::Profiler profiler(perf_, space_, meter_, 1);
  const auto cfg = config();
  const cloud::Deployment d{type_of("c5.4xlarge"), 10};
  const profiler::Fidelity low{0.25, 2};
  EXPECT_LT(profiler.expected_profile_hours(cfg, d, low),
            profiler.expected_profile_hours(cfg, d));
  EXPECT_LT(profiler.expected_profile_cost(cfg, d, low),
            profiler.expected_profile_cost(cfg, d));
  EXPECT_LT(profiler.worst_case_profile_hours(cfg, d, low),
            profiler.worst_case_profile_hours(cfg, d));
  // The intermediate rung lands between the cheapest rung and the full
  // probe: the ladder is monotone in cost.
  const profiler::Fidelity mid{0.5, 1};
  EXPECT_GT(profiler.expected_profile_cost(cfg, d, mid),
            profiler.expected_profile_cost(cfg, d, low));
  EXPECT_LT(profiler.expected_profile_cost(cfg, d, mid),
            profiler.expected_profile_cost(cfg, d));
}

TEST_F(FidelityProfilerTest, BiasAndNoiseEnvelopesInterpolate) {
  profiler::ProfilerOptions options;
  options.fidelity.rungs = profiler::parse_fidelity_rungs("0.5:1,0.25:2");
  const double max_bias = options.fidelity.max_speed_bias;
  EXPECT_DOUBLE_EQ(profiler::fidelity_speed_bias(options, {0.5, 1}),
                   max_bias * 0.5);
  EXPECT_DOUBLE_EQ(profiler::fidelity_speed_bias(options, {0.25, 2}),
                   max_bias * 0.75);
  // Fewer iterations and extra sub-sampling sigma both widen the noise.
  EXPECT_GT(profiler::fidelity_noise_multiplier(options, {0.25, 2}),
            profiler::fidelity_noise_multiplier(options, {0.5, 1}));
  EXPECT_GT(profiler::fidelity_noise_multiplier(options, {0.5, 1}), 1.0);
  // Window halvings floor at 2 iterations.
  EXPECT_EQ(profiler::fidelity_iterations(options, {1.0, 1}),
            options.iterations / 2);
  EXPECT_EQ(profiler::fidelity_iterations(options, {1.0, 8}), 2);
}

TEST_F(FidelityProfilerTest, ReducedProbeIsOptimisticAndBilledLess) {
  profiler::ProfilerOptions options;
  options.fidelity.rungs = profiler::parse_fidelity_rungs("0.25:2");
  // Quiet both noise sources so the bias dominates the measurement.
  options.noise_sigma = 1e-4;
  options.fidelity.max_extra_noise = 0.0;
  const cloud::Deployment d{type_of("c5.4xlarge"), 10};

  cloud::BillingMeter full_meter(space_);
  profiler::Profiler full(perf_, space_, full_meter, 7, options);
  const profiler::ProfileResult fr = full.profile(config(), {d});

  cloud::BillingMeter low_meter(space_);
  profiler::Profiler low(perf_, space_, low_meter, 7, options);
  const profiler::ProfileResult lr =
      low.profile(config(), {d, profiler::Fidelity{0.25, 2}});

  ASSERT_TRUE(fr.feasible);
  ASSERT_TRUE(lr.feasible);
  EXPECT_TRUE(fr.fidelity.is_full());
  EXPECT_DOUBLE_EQ(lr.fidelity.sample_fraction, 0.25);
  EXPECT_EQ(lr.fidelity.iteration_tier, 2);
  EXPECT_LT(lr.profile_hours, fr.profile_hours);
  EXPECT_LT(lr.profile_cost, fr.profile_cost);
  EXPECT_LT(lr.iterations, fr.iterations);
  // Same substrate, same ground truth — but the cheap probe's measured
  // speed is optimistically inflated by the configured bias envelope.
  EXPECT_DOUBLE_EQ(lr.true_speed, fr.true_speed);
  const double bias =
      profiler::fidelity_speed_bias(options, lr.fidelity);
  EXPECT_NEAR(lr.measured_speed / lr.true_speed, 1.0 + bias, 0.02);
  EXPECT_NEAR(lr.profile_cost,
              low_meter.total_cost(cloud::UsageKind::kProfiling), 1e-12);
}

// --------------------------------------------- fidelity-keyed gating

/// Minimal shared probe cache: admit() serves an exact key match,
/// publish() stores first-writer-wins — the ProbeKey soundness contract
/// with none of the service scheduler around it.
class RecordingGate final : public profiler::ProbeGate {
 public:
  std::optional<journal::ProbeRecord> admit(
      const profiler::ProbeKey& key, const cloud::Deployment&) override {
    keys_seen.push_back(key);
    const auto it = cache_.find(key);
    if (it == cache_.end()) return std::nullopt;
    ++hits;
    return it->second;
  }
  void publish(const profiler::ProbeKey& key, const cloud::Deployment&,
               const journal::ProbeRecord& outcome) override {
    cache_.emplace(key, outcome);
  }
  void abandon(const cloud::Deployment&) noexcept override {}

  std::vector<profiler::ProbeKey> keys_seen;
  int hits = 0;

 private:
  std::unordered_map<profiler::ProbeKey, journal::ProbeRecord,
                     profiler::ProbeKeyHash>
      cache_;
};

TEST_F(FidelityProfilerTest, ProbeKeyCarriesTheRequestedFidelity) {
  profiler::Profiler profiler(perf_, space_, meter_, 1);
  const cloud::Deployment d{type_of("c5.xlarge"), 4};
  const profiler::ProbeKey full_key = profiler.next_probe_key({d});
  const profiler::ProbeKey low_key =
      profiler.next_probe_key({d, profiler::Fidelity{0.5, 1}});
  EXPECT_DOUBLE_EQ(full_key.sample_fraction, 1.0);
  EXPECT_EQ(full_key.iteration_tier, 0);
  EXPECT_DOUBLE_EQ(low_key.sample_fraction, 0.5);
  EXPECT_EQ(low_key.iteration_tier, 1);
  EXPECT_FALSE(full_key == low_key);
  // Distinct rungs of the same deployment are distinct keys too.
  const profiler::ProbeKey lower_key =
      profiler.next_probe_key({d, profiler::Fidelity{0.25, 2}});
  EXPECT_FALSE(low_key == lower_key);
}

TEST_F(FidelityProfilerTest, GateNeverServesAcrossFidelities) {
  profiler::ProfilerOptions options;
  options.fidelity.rungs = profiler::parse_fidelity_rungs("0.5:1");
  const cloud::Deployment d{type_of("c5.4xlarge"), 6};
  const profiler::Fidelity low{0.5, 1};
  RecordingGate gate;
  constexpr std::uint64_t kSubstrate = 0x5eed;

  // Job A measures d at the reduced rung and publishes it.
  cloud::BillingMeter ma(space_);
  profiler::Profiler a(perf_, space_, ma, 11, options);
  a.set_gate(&gate, kSubstrate);
  const profiler::ProfileResult ra = a.profile(config(), {d, low});
  ASSERT_TRUE(ra.feasible);
  EXPECT_EQ(gate.hits, 0);

  // Job B (same substrate, same empty history) asks for the *full*
  // probe of the same deployment: the cached low-fidelity measurement
  // must not be served — it is a different computation.
  cloud::BillingMeter mb(space_);
  profiler::Profiler b(perf_, space_, mb, 11, options);
  b.set_gate(&gate, kSubstrate);
  const profiler::ProfileResult rb = b.profile(config(), {d});
  EXPECT_EQ(gate.hits, 0);
  EXPECT_EQ(b.cache_served_probes(), 0);
  EXPECT_GT(rb.profile_cost, ra.profile_cost);

  // Job C repeats A's exact request: served from the cache, trace-
  // neutrally (not marked replayed), with the identical measurement.
  cloud::BillingMeter mc(space_);
  profiler::Profiler c(perf_, space_, mc, 11, options);
  c.set_gate(&gate, kSubstrate);
  const profiler::ProfileResult rc = c.profile(config(), {d, low});
  EXPECT_EQ(gate.hits, 1);
  EXPECT_EQ(c.cache_served_probes(), 1);
  EXPECT_FALSE(rc.replayed);
  EXPECT_EQ(rc.measured_speed, ra.measured_speed);
  EXPECT_EQ(rc.profile_cost, ra.profile_cost);
  EXPECT_DOUBLE_EQ(rc.fidelity.sample_fraction, 0.5);
}

// ------------------------------------------------ journal versioning

system::JobRequest ladder_request() {
  system::JobRequest request;
  request.model = "resnet";
  request.instance_types = {"c5.xlarge", "c5.4xlarge"};
  request.max_nodes = 8;
  request.requirements.budget_dollars = 150.0;
  request.seed = 7;
  // Faults on, so the resume sweep also replays multi-attempt reduced-
  // fidelity records (the fault stream is the hardest state to restore).
  request.profiler_options.faults.launch_failure_per_node = 0.02;
  request.profiler_options.faults.straggler_rate = 0.15;
  request.profiler_options.fidelity.rungs =
      profiler::parse_fidelity_rungs("0.5:1,0.25:2");
  return request;
}

TEST(FidelityJournal, LadderFreeRunWritesVersionOneBytes) {
  const system::Mlcd mlcd;
  system::JobRequest request = ladder_request();
  request.profiler_options.fidelity = {};  // ladder off
  request.journal_path = temp_path("ladderfree.mlcdj");
  ASSERT_TRUE(mlcd.deploy(request).ok());

  // The file is a pre-ladder version-1 journal, byte for byte: version
  // stamp 1, no fidelity key anywhere in header or records.
  const std::string bytes = read_file(request.journal_path);
  EXPECT_NE(bytes.find("\"version\":1"), std::string::npos);
  EXPECT_EQ(bytes.find("fidelity"), std::string::npos);
  EXPECT_EQ(bytes.find("sample_fraction"), std::string::npos);

  const journal::JournalContents back =
      journal::read_journal(request.journal_path);
  EXPECT_EQ(back.header.fidelity_ladder_hash, 0u);
  for (const journal::ProbeRecord& p : back.probes) {
    EXPECT_DOUBLE_EQ(p.sample_fraction, 1.0);
    EXPECT_EQ(p.iteration_tier, 0);
  }
}

TEST(FidelityJournal, MixedFidelityRecordsRoundTripSparsely) {
  const std::string path = temp_path("mixedfid.mlcdj");
  journal::JournalHeader header;
  header.method = "heterbo";
  header.model = "resnet";
  header.platform = "tensorflow";
  profiler::FidelityOptions ladder;
  ladder.rungs = profiler::parse_fidelity_rungs("0.5:1");
  header.fidelity_ladder_hash = profiler::hash_fidelity_ladder(ladder);

  journal::ProbeRecord low;
  low.nodes = 3;
  low.sample_fraction = 0.5;
  low.iteration_tier = 1;
  journal::ProbeRecord full;
  full.nodes = 4;  // defaults: full fidelity
  {
    journal::RunJournal j = journal::RunJournal::create(path, header);
    j.append_probe(low);
    j.append_probe(full);
  }

  const journal::JournalContents back = journal::read_journal(path);
  EXPECT_EQ(back.header.version, 2);
  EXPECT_EQ(back.header.fidelity_ladder_hash, header.fidelity_ladder_hash);
  ASSERT_EQ(back.probes.size(), 2u);
  EXPECT_DOUBLE_EQ(back.probes[0].sample_fraction, 0.5);
  EXPECT_EQ(back.probes[0].iteration_tier, 1);
  EXPECT_DOUBLE_EQ(back.probes[1].sample_fraction, 1.0);
  EXPECT_EQ(back.probes[1].iteration_tier, 0);

  // Sparse serialization: only the reduced record carries the keys.
  const std::string bytes = read_file(path);
  const std::vector<std::size_t> offsets = record_boundaries(bytes);
  ASSERT_EQ(offsets.size(), 4u);  // header + 2 probes + EOF
  const std::string low_line =
      bytes.substr(offsets[1], offsets[2] - offsets[1]);
  const std::string full_line =
      bytes.substr(offsets[2], offsets[3] - offsets[2]);
  EXPECT_NE(low_line.find("sample_fraction"), std::string::npos);
  EXPECT_EQ(full_line.find("sample_fraction"), std::string::npos);
}

TEST(FidelityJournal, ResumeUnderADifferentLadderIsRefused) {
  const system::Mlcd mlcd;
  system::JobRequest request = ladder_request();
  request.journal_path = temp_path("ladder.mlcdj");
  ASSERT_TRUE(mlcd.deploy(request).ok());

  const auto expect_refused = [&](system::JobRequest resume,
                                  const std::string& label) {
    resume.resume_path = request.journal_path;
    const system::DeployResult outcome = mlcd.deploy(resume);
    ASSERT_FALSE(outcome.ok()) << label;
    EXPECT_EQ(outcome.error().code, system::JobErrorCode::kJournalError)
        << label;
    EXPECT_NE(outcome.error().message.find("fidelity ladder"),
              std::string::npos)
        << label << ": " << outcome.error().message;
  };

  // A different ladder proposes different probes.
  system::JobRequest other = ladder_request();
  other.profiler_options.fidelity.rungs =
      profiler::parse_fidelity_rungs("0.5:1");
  expect_refused(other, "different rungs");

  // So does the same ladder with a different bias envelope…
  system::JobRequest biased = ladder_request();
  biased.profiler_options.fidelity.max_speed_bias = 0.10;
  expect_refused(biased, "different bias envelope");

  // …and disabling the ladder entirely.
  system::JobRequest off = ladder_request();
  off.profiler_options.fidelity = {};
  expect_refused(off, "ladder disabled");

  // The mirror image: a pre-ladder (version-1) journal cannot seed a
  // ladder-enabled resume, but still resumes cleanly as the full-
  // fidelity run it recorded.
  system::JobRequest old = ladder_request();
  old.profiler_options.fidelity = {};
  old.journal_path = temp_path("preladder.mlcdj");
  ASSERT_TRUE(mlcd.deploy(old).ok());
  system::JobRequest new_ladder = ladder_request();
  new_ladder.resume_path = old.journal_path;
  const system::DeployResult refused = mlcd.deploy(new_ladder);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, system::JobErrorCode::kJournalError);
  EXPECT_NE(refused.error().message.find("fidelity ladder"),
            std::string::npos);
  system::JobRequest plain = ladder_request();
  plain.profiler_options.fidelity = {};
  plain.resume_path = old.journal_path;
  EXPECT_TRUE(mlcd.deploy(plain).ok());
}

// --------------------------------------------- mixed-fidelity resume

void expect_traces_identical(const search::SearchResult& a,
                             const search::SearchResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const search::ProbeStep& x = a.trace[i];
    const search::ProbeStep& y = b.trace[i];
    EXPECT_EQ(x.deployment, y.deployment) << "step " << i;
    EXPECT_EQ(x.failed, y.failed) << "step " << i;
    EXPECT_EQ(x.feasible, y.feasible) << "step " << i;
    EXPECT_EQ(x.measured_speed, y.measured_speed) << "step " << i;
    EXPECT_EQ(x.profile_hours, y.profile_hours) << "step " << i;
    EXPECT_EQ(x.profile_cost, y.profile_cost) << "step " << i;
    EXPECT_EQ(x.cum_profile_hours, y.cum_profile_hours) << "step " << i;
    EXPECT_EQ(x.cum_profile_cost, y.cum_profile_cost) << "step " << i;
    EXPECT_EQ(x.reason, y.reason) << "step " << i;
    EXPECT_EQ(x.attempts, y.attempts) << "step " << i;
    EXPECT_EQ(x.fault, y.fault) << "step " << i;
    EXPECT_TRUE(x.fidelity == y.fidelity) << "step " << i;
  }
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.profile_hours, b.profile_hours);
  EXPECT_EQ(a.profile_cost, b.profile_cost);
  EXPECT_EQ(a.training_hours, b.training_hours);
  EXPECT_EQ(a.training_cost, b.training_cost);
}

TEST(FidelityJournal, MixedFidelityKillPointSweepResumesBitIdentically) {
  const system::Mlcd mlcd;
  system::JobRequest golden_request = ladder_request();
  golden_request.journal_path = temp_path("fidgolden.mlcdj");
  const system::RunReport golden = mlcd.deploy(golden_request).report();
  ASSERT_GE(golden.result.trace.size(), 3u);

  // The sweep only means something if the journaled run actually mixes
  // rungs: cheap exploratory probes plus full-fidelity confirmation.
  int low = 0, full = 0;
  for (const search::ProbeStep& s : golden.result.trace) {
    s.fidelity.is_full() ? ++full : ++low;
  }
  ASSERT_GT(low, 0) << "ladder run performed no reduced-fidelity probes";
  ASSERT_GT(full, 0) << "ladder run performed no full-fidelity probes";

  // A ladder-enabled run reports under schema v4 with the fidelity
  // counters and per-step rung annotations.
  const std::string json = golden.to_json();
  EXPECT_NE(json.find("\"schema_version\":4"), std::string::npos);
  EXPECT_NE(json.find("\"low_fidelity_probes\":" + std::to_string(low)),
            std::string::npos);
  EXPECT_NE(json.find("\"full_fidelity_probes\":" + std::to_string(full)),
            std::string::npos);
  EXPECT_NE(json.find("\"sample_fraction\""), std::string::npos);

  const std::string bytes = read_file(golden_request.journal_path);
  const std::vector<std::size_t> offsets = record_boundaries(bytes);
  // For every record boundary after the header AND a cut mid-way through
  // the following record (a torn write), the resume must reproduce the
  // golden run bit-identically with zero probes re-executed — including
  // every record's fidelity.
  for (std::size_t b = 1; b + 1 < offsets.size(); ++b) {
    for (const bool torn : {false, true}) {
      const std::size_t cut =
          torn ? offsets[b] + (offsets[b + 1] - offsets[b]) / 2
               : offsets[b];
      const std::string label =
          "cut at byte " + std::to_string(cut) +
          (torn ? " (mid-record)" : " (record boundary)");
      const std::string path = temp_path("fidkillpoint.mlcdj");
      write_file(path, bytes.substr(0, cut));
      const int journaled_probes = static_cast<int>(
          journal::read_journal(path).probes.size());

      system::JobRequest resume_request = ladder_request();
      resume_request.resume_path = path;
      const system::DeployResult outcome = mlcd.deploy(resume_request);
      ASSERT_TRUE(outcome.ok()) << label << ": "
                                << outcome.error().message;
      SCOPED_TRACE(label);
      const system::RunReport& resumed = outcome.report();
      expect_traces_identical(golden.result, resumed.result);
      EXPECT_EQ(resumed.result.replayed_probes, journaled_probes);
      for (int i = 0; i < journaled_probes; ++i) {
        EXPECT_TRUE(resumed.result.trace[i].replayed) << label;
      }
    }
  }
}

// --------------------------------------------- GP heteroscedasticity

gp::GpRegressor make_gp() {
  gp::GpOptions options;
  options.optimize_hyperparameters = false;
  options.noise_stddev = 0.05;
  return gp::GpRegressor(std::make_unique<gp::Matern52Kernel>(1), options);
}

TEST(GpHeteroscedastic, UnitMultipliersMatchHomoscedasticFitExactly) {
  const linalg::Matrix x{{0.0}, {0.4}, {0.8}};
  const linalg::Vector y{1.0, 2.0, 1.5};

  gp::GpRegressor plain = make_gp();
  plain.fit(x, y);
  gp::GpRegressor hetero = make_gp();
  hetero.fit(x, y, linalg::Vector{1.0, 1.0, 1.0});

  for (const double q : {0.0, 0.2, 0.6, 1.2}) {
    const gp::Prediction a = plain.predict(std::vector<double>{q});
    const gp::Prediction b = hetero.predict(std::vector<double>{q});
    EXPECT_EQ(a.mean, b.mean) << "q=" << q;       // bit-identical
    EXPECT_EQ(a.variance, b.variance) << "q=" << q;
  }
}

TEST(GpHeteroscedastic, InflatedNoiseDeweightsAnObservation) {
  const linalg::Matrix x{{0.0}, {0.5}, {1.0}};
  const linalg::Vector y{1.0, 5.0, 1.0};  // the middle point is an outlier

  gp::GpRegressor trusted = make_gp();
  trusted.fit(x, y);
  gp::GpRegressor skeptical = make_gp();
  // The middle observation is low-fidelity: 20x the noise stddev.
  skeptical.fit(x, y, linalg::Vector{1.0, 20.0, 1.0});

  const gp::Prediction t = trusted.predict(std::vector<double>{0.5});
  const gp::Prediction s = skeptical.predict(std::vector<double>{0.5});
  // De-weighted, the outlier pulls the posterior mean far less and
  // leaves far more uncertainty behind.
  EXPECT_LT(s.mean, t.mean);
  EXPECT_GT(s.variance, t.variance);
}

TEST(GpHeteroscedastic, AddObservationCarriesItsMultiplier) {
  const linalg::Matrix x{{0.0}, {1.0}};
  const linalg::Vector y{1.0, 2.0};

  gp::GpRegressor incremental = make_gp();
  incremental.fit(x, y);
  incremental.add_observation(std::vector<double>{0.5}, 4.0, 10.0);

  gp::GpRegressor reference = make_gp();
  reference.fit(linalg::Matrix{{0.0}, {1.0}, {0.5}},
                linalg::Vector{1.0, 2.0, 4.0},
                linalg::Vector{1.0, 1.0, 10.0});

  for (const double q : {0.25, 0.5, 0.75}) {
    const gp::Prediction a = incremental.predict(std::vector<double>{q});
    const gp::Prediction b = reference.predict(std::vector<double>{q});
    EXPECT_NEAR(a.mean, b.mean, 1e-9) << "q=" << q;
    EXPECT_NEAR(a.variance, b.variance, 1e-9) << "q=" << q;
  }

  // The plain add_observation overload is exactly multiplier 1.0.
  gp::GpRegressor one = make_gp();
  one.fit(x, y);
  one.add_observation(std::vector<double>{0.5}, 4.0);
  gp::GpRegressor explicit_one = make_gp();
  explicit_one.fit(x, y);
  explicit_one.add_observation(std::vector<double>{0.5}, 4.0, 1.0);
  const gp::Prediction a = one.predict(std::vector<double>{0.5});
  const gp::Prediction b = explicit_one.predict(std::vector<double>{0.5});
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.variance, b.variance);
}

}  // namespace
}  // namespace mlcd
