// Sharded service core (PR 10): JobClaims / ParkQueue / dispatcher
// units plus the seeded 16-lane stress suite.
//
// The units pin the three-way lock split's contracts in isolation: the
// lowest-index-under-quota claim discipline, the park queue's strict
// no-overtake FIFO with its lock-free fast path, and the sharded
// dispatcher's owner-front/thief-back stealing and no-idle-with-work
// wakeup protocol. The stress tests then drive the real Scheduler over
// a 200-session fleet at 16 lanes and assert the service's one
// non-negotiable: per-job RunReports bit-identical across lane counts
// and dispatcher implementations, under capacity parks and steals.
// CI runs this binary under TSan (the service-stress job).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "mlcd/mlcd.hpp"
#include "service/batch_report.hpp"
#include "service/capacity.hpp"
#include "service/dispatch.hpp"
#include "service/scheduler.hpp"
#include "service/workload.hpp"

namespace {

using namespace mlcd;
using service::CapacityPool;
using service::JobClaims;
using service::kNoJob;
using service::ParkQueue;
using service::ShardedDispatcher;

// ------------------------------------------------------------ JobClaims

TEST(JobClaims, ClaimsLowestIndexFirst) {
  JobClaims claims({"a", "b", "c"}, 0);
  EXPECT_EQ(claims.try_claim(), 0u);
  EXPECT_EQ(claims.try_claim(), 1u);
  EXPECT_EQ(claims.try_claim(), 2u);
  EXPECT_EQ(claims.try_claim(), kNoJob);
}

TEST(JobClaims, QuotaBlocksATenantButNotOthers) {
  // Jobs 0,1,3 belong to tenant a (quota 2); job 2 to tenant b.
  JobClaims claims({"a", "a", "b", "a"}, 2);
  EXPECT_EQ(claims.try_claim(), 0u);
  EXPECT_EQ(claims.try_claim(), 1u);
  // a is at quota: the claim skips job 3 but still serves b's job 2.
  EXPECT_EQ(claims.try_claim(), 2u);
  EXPECT_EQ(claims.try_claim(), kNoJob);
  claims.finished(0);
  EXPECT_EQ(claims.try_claim(), 3u);
  EXPECT_EQ(claims.peak_tenant(), 2);
}

TEST(JobClaims, DoneOnlyWhenEveryJobFinished) {
  JobClaims claims({"a", "b"}, 0);
  claims.try_claim();
  claims.try_claim();
  EXPECT_FALSE(claims.done());
  claims.finished(0);
  EXPECT_FALSE(claims.done());
  claims.finished(1);
  EXPECT_TRUE(claims.done());
}

// ------------------------------------------------------------ ParkQueue

TEST(ParkQueue, FastPathAdmitsWithoutParking) {
  CapacityPool pool(10);
  ParkQueue queue;
  int parks = 0;
  EXPECT_TRUE(queue.admit_or_park(pool, 0, 4, 0, [&] { ++parks; }));
  EXPECT_EQ(queue.parked(), 0u);
  EXPECT_EQ(parks, 0);
}

TEST(ParkQueue, NothingOvertakesAParkedSession) {
  CapacityPool pool(8);
  ParkQueue queue;
  ASSERT_TRUE(queue.admit_or_park(pool, 0, 6, 0, nullptr));  // A holds 6
  int parks = 0;
  const auto on_park = [&] { ++parks; };
  // B needs 4, only 2 free: parks.
  EXPECT_FALSE(queue.admit_or_park(pool, 1, 4, 1, on_park));
  // C needs 1 and 2 nodes ARE free — but B is parked ahead, so C must
  // park behind it (strict FIFO, no overtaking).
  EXPECT_FALSE(queue.admit_or_park(pool, 2, 1, 2, on_park));
  EXPECT_EQ(queue.parked(), 2u);
  EXPECT_EQ(parks, 2);

  // A's release restages B then C, in park order, grants pre-acquired.
  const auto resumed = queue.release_and_sweep(pool, 6);
  ASSERT_EQ(resumed.size(), 2u);
  EXPECT_EQ(resumed[0].job, 1u);
  EXPECT_EQ(resumed[0].owner_lane, 1u);
  EXPECT_EQ(resumed[1].job, 2u);
  EXPECT_EQ(resumed[1].owner_lane, 2u);
  EXPECT_EQ(queue.parked(), 0u);
  // The sweep acquired 4 + 1 of the 8: a 4-node probe still fits, a
  // 5-node one does not.
  EXPECT_FALSE(pool.try_acquire(5));
  EXPECT_TRUE(pool.try_acquire(3));
}

TEST(ParkQueue, SweepStopsAtTheFirstProbeTooLarge) {
  CapacityPool pool(6);
  ParkQueue queue;
  ASSERT_TRUE(queue.admit_or_park(pool, 0, 6, 0, nullptr));
  ASSERT_FALSE(queue.admit_or_park(pool, 1, 5, 0, nullptr));
  ASSERT_FALSE(queue.admit_or_park(pool, 2, 1, 0, nullptr));
  // Releasing 3 is not enough for the 5-node head: head-of-line
  // blocking is the contract — the 1-node probe behind it must wait.
  EXPECT_TRUE(queue.release_and_sweep(pool, 3).empty());
  const auto resumed = queue.release_and_sweep(pool, 3);
  ASSERT_EQ(resumed.size(), 2u);
  EXPECT_EQ(resumed[0].job, 1u);
  EXPECT_EQ(resumed[1].job, 2u);
}

TEST(ParkQueue, ParkRevokedRestagesItselfWhenThePoolIsFree) {
  CapacityPool pool(6);
  ParkQueue queue;
  int parks = 0;
  // Nothing else holds the pool: the revoked session parks and is swept
  // straight back out with its grant re-acquired.
  const auto resumed =
      queue.park_revoked(pool, 0, 4, 3, [&] { ++parks; });
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_EQ(resumed[0].job, 0u);
  EXPECT_EQ(resumed[0].owner_lane, 3u);
  EXPECT_EQ(parks, 1);
  EXPECT_EQ(queue.parked(), 0u);
  EXPECT_FALSE(pool.try_acquire(3));  // the re-acquired 4 of 6 held
}

TEST(ParkQueue, ParkRevokedIsAPureParkUnderContention) {
  CapacityPool pool(6);
  ParkQueue queue;
  ASSERT_TRUE(queue.admit_or_park(pool, 0, 4, 0, nullptr));  // A holds 4
  // B's revocation cannot re-acquire (only 2 free): pure park.
  EXPECT_TRUE(queue.park_revoked(pool, 1, 4, 1, nullptr).empty());
  EXPECT_EQ(queue.parked(), 1u);
  const auto resumed = queue.release_and_sweep(pool, 4);
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_EQ(resumed[0].job, 1u);
}

// ---------------------------------------------------- ShardedDispatcher

TEST(ShardedDispatcher, OwnerPopsFrontThiefStealsBack) {
  JobClaims claims({"a", "b", "c", "d"}, 0);
  for (int i = 0; i < 4; ++i) claims.try_claim();
  ShardedDispatcher dispatcher(2, &claims);
  dispatcher.enqueue(0, 0);
  dispatcher.enqueue(1, 0);
  dispatcher.enqueue(2, 0);
  EXPECT_EQ(dispatcher.queued(), 3u);

  // Lane 0 drains its own queue from the front...
  EXPECT_EQ(dispatcher.next_job(0), 0u);
  // ...while an empty lane steals from the victim's back.
  EXPECT_EQ(dispatcher.next_job(1), 2u);
  EXPECT_EQ(dispatcher.steals(), 1);
  EXPECT_EQ(dispatcher.next_job(0), 1u);
  EXPECT_EQ(dispatcher.queued(), 0u);

  for (std::size_t i = 0; i < 4; ++i) claims.finished(i);
  dispatcher.on_job_finished();
  EXPECT_EQ(dispatcher.next_job(0), kNoJob);
  EXPECT_EQ(dispatcher.next_job(1), kNoJob);
}

TEST(ShardedDispatcher, QueuedSessionsBeatFreshClaims) {
  JobClaims claims({"a", "b"}, 0);
  ASSERT_EQ(claims.try_claim(), 0u);
  ShardedDispatcher dispatcher(1, &claims);
  dispatcher.enqueue(0, 0);
  // Job 1 is claimable, but the queued session 0 may hold an acquired
  // capacity grant — it must be drained first.
  EXPECT_EQ(dispatcher.next_job(0), 0u);
  EXPECT_EQ(dispatcher.next_job(0), 1u);  // now the fresh claim
  claims.finished(0);
  claims.finished(1);
  dispatcher.on_job_finished();
  EXPECT_EQ(dispatcher.next_job(0), kNoJob);
}

// The no-idle-with-work invariant under real threads: 16 lanes chew
// through 200 sessions, each session re-queued to a rotating owner lane
// twice before finishing (so cross-lane enqueues, steals, and idle
// wakeups all fire). A watcher thread continuously asserts that the
// dispatcher never has every lane asleep while sessions sit queued.
TEST(ShardedDispatcher, NoLaneIdlesWhileWorkIsQueued) {
  constexpr std::size_t kLanes = 16;
  constexpr std::size_t kJobs = 200;
  std::vector<std::string> tenants;
  for (std::size_t i = 0; i < kJobs; ++i) {
    tenants.push_back("t" + std::to_string(i % 8));
  }
  JobClaims claims(std::move(tenants), 0);
  ShardedDispatcher dispatcher(kLanes, &claims);

  std::vector<std::atomic<int>> drives(kJobs);
  for (auto& d : drives) d.store(0);
  std::atomic<bool> violation{false};
  std::atomic<bool> stop_watch{false};

  std::thread watcher([&] {
    while (!stop_watch.load(std::memory_order_acquire)) {
      // sleeping_lanes() is read before queued(): a racing enqueue can
      // only make this check conservative (it bumps queued_ first and
      // then wakes sleepers), never a false positive.
      if (dispatcher.sleeping_lanes() == static_cast<int>(kLanes) &&
          dispatcher.queued() > 0) {
        violation.store(true, std::memory_order_release);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> lanes;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    lanes.emplace_back([&, lane] {
      for (;;) {
        const std::size_t job = dispatcher.next_job(lane);
        if (job == kNoJob) return;
        const int done = drives[job].fetch_add(1) + 1;
        if (done < 3) {
          // Rotate the owner so resumes land on foreign lanes.
          dispatcher.enqueue(job, (job + static_cast<std::size_t>(done)) %
                                      kLanes);
        } else {
          claims.finished(job);
          dispatcher.on_job_finished();
        }
      }
    });
  }
  for (auto& t : lanes) t.join();
  stop_watch.store(true, std::memory_order_release);
  watcher.join();

  EXPECT_FALSE(violation.load());
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(drives[i].load(), 3) << "job " << i;
  }
  EXPECT_EQ(dispatcher.queued(), 0u);
  EXPECT_EQ(dispatcher.sleeping_lanes(), 0);
}

// ------------------------------------------------------- scheduler stress

/// The stress fleet: 200 cheap exhaustive searches over 8 tenants with
/// distinct seeds (every probe launches live, which is what contends
/// the pool). Deployment spaces are small so the suite stays fast under
/// TSan.
service::Workload stress_fleet(std::size_t jobs) {
  const char* models[] = {"alexnet", "resnet", "char_rnn"};
  service::Workload workload;
  for (std::size_t j = 0; j < jobs; ++j) {
    service::JobSpec spec;
    spec.tenant = "t" + std::to_string(j % 8);
    spec.name = spec.tenant + "-" + std::to_string(j);
    spec.request.model = models[j % 3];
    spec.request.search_method = "exhaustive";
    spec.request.seed = 3000 + static_cast<std::uint64_t>(j);
    spec.request.max_nodes = 4;
    spec.request.instance_types = {"c5.xlarge", "c5.4xlarge", "p2.xlarge"};
    spec.request.requirements.deadline_hours = 24.0;
    workload.jobs.push_back(std::move(spec));
  }
  return workload;
}

service::BatchReport run_fleet(const system::Mlcd& mlcd,
                               const service::Workload& workload, int threads,
                               bool sharded) {
  service::SchedulerOptions options;
  options.threads = threads;
  options.capacity_nodes = 4;  // == max_nodes: any overlap parks
  options.tenant_max_jobs = 3;
  options.sharded_dispatch = sharded;
  return service::Scheduler(mlcd, options).run(workload);
}

TEST(ShardedSchedulerStress, SixteenLanesBitIdenticalToSerialAndCentral) {
  const service::Workload workload = stress_fleet(200);
  const system::Mlcd mlcd;

  const service::BatchReport serial = run_fleet(mlcd, workload, 1, true);
  const service::BatchReport wide = run_fleet(mlcd, workload, 16, true);
  const service::BatchReport central = run_fleet(mlcd, workload, 4, false);

  EXPECT_EQ(serial.scheduler_mode, "sharded");
  EXPECT_EQ(wide.scheduler_mode, "sharded");
  EXPECT_EQ(central.scheduler_mode, "central");
  EXPECT_EQ(central.lane_steals, 0);

  ASSERT_EQ(wide.jobs.size(), workload.jobs.size());
  ASSERT_EQ(central.jobs.size(), workload.jobs.size());
  for (std::size_t i = 0; i < workload.jobs.size(); ++i) {
    ASSERT_TRUE(serial.jobs[i].ok) << workload.jobs[i].name;
    ASSERT_TRUE(wide.jobs[i].ok) << workload.jobs[i].name;
    ASSERT_TRUE(central.jobs[i].ok) << workload.jobs[i].name;
    const std::string expected = serial.jobs[i].report.to_json();
    EXPECT_EQ(wide.jobs[i].report.to_json(), expected)
        << "16-lane sharded diverged on " << workload.jobs[i].name;
    EXPECT_EQ(central.jobs[i].report.to_json(), expected)
        << "central diverged on " << workload.jobs[i].name;
  }

  // The fleet must actually have contended: a pool sized to one probe
  // forces parks, and parked sessions resume through owner-lane queues
  // that other lanes steal from.
  EXPECT_GT(wide.total_session_parks(), 0);
  EXPECT_GE(wide.lane_steals, 0);
  EXPECT_GT(wide.cache.stripes, 1);
}

// Park/resume FIFO accounting must survive lane migration: every
// capacity stall a job suffers is booked exactly once (in the on_park
// callback, before the entry becomes sweepable), so stall counts agree
// with parks at any lane count even when a different lane resumes the
// session.
TEST(ShardedSchedulerStress, StallAccountingMatchesParksAcrossLaneCounts) {
  const service::Workload workload = stress_fleet(60);
  const system::Mlcd mlcd;
  for (const int threads : {2, 16}) {
    const service::BatchReport report =
        run_fleet(mlcd, workload, threads, true);
    std::int64_t stalls = 0;
    int parks = 0;
    for (const auto& job : report.jobs) {
      ASSERT_TRUE(job.ok);
      stalls += job.stats.capacity_stalls;
      parks += job.stats.session_parks;
    }
    EXPECT_EQ(stalls, parks) << "threads=" << threads;
  }
}

}  // namespace
