// Golden bit-identity suite for the ask/tell search core.
//
// The search layer's hard invariant across refactors: every searcher's
// RunReport JSON, journal bytes, and trace CSV are byte-identical to the
// engine that generated the checked-in goldens (tests/golden/
// asktell_golden.txt — produced by the pre-ask/tell push-style engine).
// The matrix covers every registered probing method x all three paper
// scenarios x three seeds, plus fault-injection, GP-refit-cadence, spot
// market, multi-thread, and chaos-degradation cases.
//
// Regenerating (only legitimate when the intended behavior changes):
//   MLCD_REGEN_GOLDEN=1 ./golden_test
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mlcd/mlcd.hpp"
#include "models/model_zoo.hpp"
#include "search/registry.hpp"
#include "search/trace_io.hpp"

#ifndef MLCD_GOLDEN_DIR
#define MLCD_GOLDEN_DIR "."
#endif

namespace mlcd {
namespace {

// ------------------------------------------------------------- plumbing

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// One golden record: the three byte-level fingerprints plus a probe
/// count that makes mismatches debuggable without rerunning.
struct GoldenRecord {
  std::string report_hash;
  std::string journal_hash;
  std::string trace_hash;
  int probes = 0;

  std::string line(const std::string& id) const {
    return id + " " + report_hash + " " + journal_hash + " " + trace_hash +
           " " + std::to_string(probes);
  }
};

const std::string& golden_path() {
  static const std::string path =
      std::string(MLCD_GOLDEN_DIR) + "/asktell_golden.txt";
  return path;
}

bool regen_mode() {
  const char* env = std::getenv("MLCD_REGEN_GOLDEN");
  return env != nullptr && std::string(env) == "1";
}

std::map<std::string, std::string>& recorded() {
  static std::map<std::string, std::string> lines;
  return lines;
}

std::map<std::string, GoldenRecord> load_goldens() {
  std::map<std::string, GoldenRecord> goldens;
  std::ifstream in(golden_path());
  std::string id;
  GoldenRecord rec;
  while (in >> id >> rec.report_hash >> rec.journal_hash >> rec.trace_hash >>
         rec.probes) {
    goldens[id] = rec;
  }
  return goldens;
}

/// Compares (or, in regen mode, records) one case's fingerprints.
void check_case(const std::string& id, const GoldenRecord& actual) {
  recorded()[id] = actual.line(id);
  if (regen_mode()) return;
  static const std::map<std::string, GoldenRecord> goldens = load_goldens();
  const auto it = goldens.find(id);
  ASSERT_NE(it, goldens.end())
      << "no golden for case '" << id << "' — regenerate with "
      << "MLCD_REGEN_GOLDEN=1 (only when the behavior change is intended)";
  EXPECT_EQ(actual.report_hash, it->second.report_hash)
      << id << ": RunReport JSON diverged from the golden engine";
  EXPECT_EQ(actual.journal_hash, it->second.journal_hash)
      << id << ": journal bytes diverged from the golden engine";
  EXPECT_EQ(actual.trace_hash, it->second.trace_hash)
      << id << ": trace CSV diverged from the golden engine";
  EXPECT_EQ(actual.probes, it->second.probes)
      << id << ": probe count diverged from the golden engine";
}

/// Writes every recorded line in case order (regen mode only).
class RegenWriter : public testing::EmptyTestEventListener {
  void OnTestProgramEnd(const testing::UnitTest&) override {
    if (!regen_mode()) return;
    std::ofstream out(golden_path(), std::ios::trunc);
    for (const auto& [id, line] : recorded()) out << line << "\n";
  }
};

const int kRegisterWriter = [] {
  testing::UnitTest::GetInstance()->listeners().Append(new RegenWriter);
  return 0;
}();

// ------------------------------------------------------------ the cases

struct GoldenCase {
  std::string id;
  system::JobRequest request;
};

system::JobRequest base_request(const std::string& method,
                                const std::string& model, int scenario,
                                std::uint64_t seed) {
  system::JobRequest request;
  request.model = model;
  request.search_method = method;
  request.seed = seed;
  request.max_nodes = 8;
  if (scenario == 2) request.requirements.deadline_hours = 24.0;
  if (scenario == 3) request.requirements.budget_dollars = 200.0;
  return request;
}

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  const std::vector<std::string> methods = {
      "heterbo",    "conv-bo", "bo-improved", "cherrypick",
      "cherrypick-improved", "random",  "exhaustive",  "paleo",
      "pareto"};
  // Scenario -> model pairing keeps the matrix diverse without tripling
  // its size; seeds exercise three distinct noise/fault streams each.
  const std::map<int, std::string> scenario_model = {
      {1, "alexnet"}, {2, "resnet"}, {3, "char_rnn"}};
  for (const std::string& method : methods) {
    for (const auto& [scenario, model] : scenario_model) {
      for (const std::uint64_t seed : {3ULL, 11ULL, 42ULL}) {
        GoldenCase c;
        c.id = method + "-s" + std::to_string(scenario) + "-seed" +
               std::to_string(seed);
        c.request = base_request(method, model, scenario, seed);
        cases.push_back(std::move(c));
      }
    }
  }
  // Fault injection: retries, backoff, and failed probes in the trace.
  for (const std::string& method :
       {std::string("heterbo"), std::string("conv-bo"),
        std::string("cherrypick-improved")}) {
    GoldenCase c;
    c.id = method + "-faults";
    c.request = base_request(method, "resnet", 2, 7);
    c.request.profiler_options.faults.launch_failure_per_node = 0.2;
    c.request.profiler_options.retry.max_attempts = 3;
    cases.push_back(std::move(c));
  }
  // GP retune cadence: incremental surrogate extensions between refits.
  for (const std::string& method :
       {std::string("heterbo"), std::string("conv-bo")}) {
    GoldenCase c;
    c.id = method + "-refit3";
    c.request = base_request(method, "resnet", 2, 5);
    c.request.gp_refit_every = 3;
    cases.push_back(std::move(c));
  }
  // Spot market: revocation hazards + restart-inflated completions.
  {
    GoldenCase c;
    c.id = "heterbo-spot";
    c.request = base_request("heterbo", "char_rnn", 3, 9);
    c.request.use_spot = true;
    cases.push_back(std::move(c));
  }
  // Parallel candidate scans must not change a single byte.
  {
    GoldenCase c;
    c.id = "heterbo-threads4";
    c.request = base_request("heterbo", "resnet", 2, 3);
    c.request.threads = 4;
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(GoldenAskTell, DeployMatrixMatchesGoldenEngine) {
  const system::Mlcd mlcd;
  const auto tmp = std::filesystem::temp_directory_path();
  for (GoldenCase& c : golden_cases()) {
    const std::string journal_file =
        (tmp / ("mlcd_golden_" + c.id + ".mlcdj")).string();
    std::remove(journal_file.c_str());
    c.request.journal_path = journal_file;

    const system::DeployResult result = mlcd.deploy(c.request);
    ASSERT_TRUE(result.ok()) << c.id << ": " << result.error().message;
    const system::RunReport& report = result.report();

    const std::string trace_file =
        (tmp / ("mlcd_golden_" + c.id + ".csv")).string();
    const cloud::DeploymentSpace space(
        mlcd.cloud().catalog(), c.request.max_nodes,
        c.request.use_spot ? cloud::Market::kSpot : cloud::Market::kOnDemand);
    search::save_trace_csv(trace_file, report.result, space);

    GoldenRecord actual;
    actual.report_hash = hex(fnv1a(report.to_json()));
    actual.journal_hash = hex(fnv1a(slurp(journal_file)));
    actual.trace_hash = hex(fnv1a(slurp(trace_file)));
    actual.probes = static_cast<int>(report.result.trace.size());
    check_case(c.id, actual);

    std::remove(journal_file.c_str());
    std::remove(trace_file.c_str());
  }
}

// Graceful degradation is only reachable through SearchProblem's chaos
// hook, so these cases run the searchers directly.
TEST(GoldenAskTell, ChaosDegradeTracesMatchGoldenEngine) {
  const system::Mlcd mlcd;
  const cloud::DeploymentSpace space(mlcd.cloud().catalog(), 8,
                                     cloud::Market::kOnDemand);
  const perf::TrainingPerfModel perf(mlcd.cloud().catalog(),
                                     mlcd.cloud().perf_model().options());
  const auto tmp = std::filesystem::temp_directory_path();

  for (const std::string& method :
       {std::string("heterbo"), std::string("conv-bo")}) {
    search::SearchProblem problem;
    problem.config.model = models::paper_zoo().model("resnet");
    problem.config.platform = perf::tensorflow_profile();
    problem.config.topology = perf::CommTopology::kParameterServer;
    problem.space = &space;
    problem.scenario = search::Scenario::cheapest_under_deadline(24.0);
    problem.seed = 13;
    problem.chaos_degrade_hook = [](int iteration) {
      return iteration == 2 || iteration == 5;
    };
    const std::unique_ptr<search::Searcher> searcher =
        search::SearcherRegistry::instance().create(method, perf);
    const search::SearchResult result = searcher->run(problem);

    const std::string trace_file =
        (tmp / ("mlcd_golden_chaos_" + method + ".csv")).string();
    search::save_trace_csv(trace_file, result, space);

    char summary[256];
    std::snprintf(summary, sizeof(summary), "%d %d %.17g %.17g %.17g %.17g",
                  result.found ? 1 : 0, result.degraded_iterations,
                  result.profile_hours, result.profile_cost,
                  result.training_hours, result.training_cost);

    GoldenRecord actual;
    actual.report_hash = hex(fnv1a(summary));
    actual.journal_hash = hex(fnv1a(std::string()));
    actual.trace_hash = hex(fnv1a(slurp(trace_file)));
    actual.probes = static_cast<int>(result.trace.size());
    check_case("chaos-" + method, actual);
    std::remove(trace_file.c_str());
  }
}

}  // namespace
}  // namespace mlcd
