// Unit and property tests for src/bo: acquisitions, observation store,
// input normalization.
#include <gtest/gtest.h>

#include <cmath>

#include "bo/acquisition.hpp"
#include "bo/normalizer.hpp"
#include "bo/observation_store.hpp"

namespace mlcd::bo {
namespace {

// ------------------------------------------------------------ acquisition

TEST(ExpectedImprovement, NonNegativeEverywhere) {
  const ExpectedImprovement ei;
  for (double mu : {-2.0, 0.0, 1.0, 5.0}) {
    for (double sd : {0.0, 0.1, 1.0, 10.0}) {
      EXPECT_GE(ei.score(mu, sd, 1.0), 0.0);
    }
  }
}

TEST(ExpectedImprovement, ZeroWhenCertainAndWorse) {
  const ExpectedImprovement ei;
  EXPECT_DOUBLE_EQ(ei.score(0.5, 0.0, 1.0), 0.0);
}

TEST(ExpectedImprovement, EqualsImprovementWhenCertainAndBetter) {
  const ExpectedImprovement ei;
  EXPECT_DOUBLE_EQ(ei.score(3.0, 0.0, 1.0), 2.0);
}

TEST(ExpectedImprovement, MonotoneInMean) {
  const ExpectedImprovement ei;
  double prev = -1.0;
  for (double mu = -3.0; mu <= 3.0; mu += 0.25) {
    const double v = ei.score(mu, 1.0, 0.0);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(ExpectedImprovement, MonotoneInStddevAtEqualMean) {
  // With mu == best, all upside comes from uncertainty.
  const ExpectedImprovement ei;
  double prev = -1.0;
  for (double sd : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const double v = ei.score(1.0, sd, 1.0);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(ExpectedImprovement, ClosedFormSpotCheck) {
  // mu=1, sd=1, best=0: EI = 1*Phi(1) + phi(1).
  const ExpectedImprovement ei;
  const double expected = 0.8413447460685429 + 0.24197072451914337;
  EXPECT_NEAR(ei.score(1.0, 1.0, 0.0), expected, 1e-9);
}

TEST(ExpectedImprovement, XiShiftsThreshold) {
  const ExpectedImprovement eager(0.0), cautious(0.5);
  EXPECT_GT(eager.score(1.2, 0.01, 1.0), cautious.score(1.2, 0.01, 1.0));
}

TEST(Ucb, LinearInKappaAndStddev) {
  const UpperConfidenceBound ucb(2.0);
  EXPECT_DOUBLE_EQ(ucb.score(1.0, 0.5, /*best=*/99.0), 2.0);
  EXPECT_THROW(UpperConfidenceBound(0.0), std::invalid_argument);
}

TEST(Poi, ProbabilityBounds) {
  const ProbabilityOfImprovement poi;
  for (double mu : {-5.0, 0.0, 5.0}) {
    const double v = poi.score(mu, 1.0, 0.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_DOUBLE_EQ(poi.score(5.0, 0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poi.score(-5.0, 0.0, 0.0), 0.0);
}

TEST(AcquisitionFactory, KnownNamesAndErrors) {
  EXPECT_EQ(make_acquisition("ei")->name(), "ei");
  EXPECT_EQ(make_acquisition("ucb")->name(), "ucb");
  EXPECT_EQ(make_acquisition("poi")->name(), "poi");
  EXPECT_THROW(make_acquisition("nope"), std::invalid_argument);
}

TEST(Acquisition, PredictionOverloadMatchesScalar) {
  const ExpectedImprovement ei;
  gp::Prediction p;
  p.mean = 2.0;
  p.variance = 4.0;
  EXPECT_DOUBLE_EQ(ei.score(p, 1.0), ei.score(2.0, 2.0, 1.0));
}

// --------------------------------------------------------------- store

TEST(ObservationStore, TracksIncumbent) {
  ObservationStore store(2);
  store.add({0.0, 0.0}, 1.0);
  store.add({1.0, 0.0}, 3.0);
  store.add({0.0, 1.0}, 2.0);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_DOUBLE_EQ(store.best_value(), 3.0);
  EXPECT_EQ(store.best_index(), 1u);
  EXPECT_DOUBLE_EQ(store.best_input()[0], 1.0);
}

TEST(ObservationStore, TiesKeepFirstIncumbent) {
  ObservationStore store(1);
  store.add({0.0}, 5.0);
  store.add({1.0}, 5.0);
  EXPECT_EQ(store.best_index(), 0u);
}

TEST(ObservationStore, ContainsExactMatchOnly) {
  ObservationStore store(2);
  store.add({0.5, 1.5}, 1.0);
  EXPECT_TRUE(store.contains(std::vector<double>{0.5, 1.5}));
  EXPECT_FALSE(store.contains(std::vector<double>{0.5, 1.5000001}));
}

TEST(ObservationStore, DesignMatrixAndTargets) {
  ObservationStore store(2);
  store.add({1.0, 2.0}, 10.0);
  store.add({3.0, 4.0}, 20.0);
  const linalg::Matrix x = store.design_matrix();
  const linalg::Vector y = store.targets();
  EXPECT_DOUBLE_EQ(x(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(x(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(y[1], 20.0);
}

TEST(ObservationStore, Errors) {
  EXPECT_THROW(ObservationStore(0), std::invalid_argument);
  ObservationStore store(2);
  EXPECT_THROW(store.add({1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(store.add({1.0, 2.0}, std::nan("")), std::invalid_argument);
  EXPECT_THROW(store.best_value(), std::logic_error);
  EXPECT_THROW(store.best_input(), std::logic_error);
  EXPECT_THROW(store.best_index(), std::logic_error);
}

// ------------------------------------------------------------- normalizer

TEST(Normalizer, MapsBoundsToUnitBox) {
  const InputNormalizer norm({0.0, 1.0}, {61.0, 50.0});
  const auto lo = norm.normalize(std::vector<double>{0.0, 1.0});
  const auto hi = norm.normalize(std::vector<double>{61.0, 50.0});
  EXPECT_DOUBLE_EQ(lo[0], 0.0);
  EXPECT_DOUBLE_EQ(lo[1], 0.0);
  EXPECT_DOUBLE_EQ(hi[0], 1.0);
  EXPECT_DOUBLE_EQ(hi[1], 1.0);
}

TEST(Normalizer, RoundTrips) {
  const InputNormalizer norm({-5.0, 2.0}, {5.0, 12.0});
  const std::vector<double> raw{1.25, 7.5};
  const auto back = norm.denormalize(norm.normalize(raw));
  EXPECT_NEAR(back[0], raw[0], 1e-12);
  EXPECT_NEAR(back[1], raw[1], 1e-12);
}

TEST(Normalizer, DegenerateDimensionMapsToHalf) {
  const InputNormalizer norm({3.0}, {3.0});
  EXPECT_DOUBLE_EQ(norm.normalize(std::vector<double>{3.0})[0], 0.5);
}

TEST(Normalizer, Errors) {
  EXPECT_THROW(InputNormalizer({}, {}), std::invalid_argument);
  EXPECT_THROW(InputNormalizer({1.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(InputNormalizer({1.0}, {2.0, 3.0}), std::invalid_argument);
  const InputNormalizer norm({0.0}, {1.0});
  EXPECT_THROW(norm.normalize(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(norm.denormalize(std::vector<double>{0.5, 0.5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mlcd::bo
