// Unit and property tests for src/search: scenarios, result accounting,
// HeterBO and the baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "models/model_zoo.hpp"
#include "search/cherrypick.hpp"
#include "search/conv_bo.hpp"
#include "search/exhaustive.hpp"
#include "search/heter_bo.hpp"
#include "search/paleo.hpp"
#include "search/pareto.hpp"
#include "search/trace_io.hpp"
#include "search/random_search.hpp"

namespace mlcd::search {
namespace {

// Shared fixtures: a single-type scale-out space (the paper's §V-B
// setting) and a three-type space (the Fig. 15 setting).
class SearchTest : public testing::Test {
 protected:
  SearchTest()
      : cat1_(cloud::aws_catalog().subset(
            std::vector<std::string>{"c5.4xlarge"})),
        cat3_(cloud::aws_catalog().subset(std::vector<std::string>{
            "c5.xlarge", "c5.4xlarge", "p2.xlarge"})),
        space1_(cat1_, 50),
        space3_(cat3_, 50),
        perf1_(cat1_),
        perf3_(cat3_) {}

  SearchProblem problem1(Scenario scenario, std::uint64_t seed = 7) const {
    SearchProblem p;
    p.config.model = models::paper_zoo().model("resnet");
    p.config.platform = perf::tensorflow_profile();
    p.config.topology = perf::CommTopology::kParameterServer;
    p.space = &space1_;
    p.scenario = scenario;
    p.seed = seed;
    return p;
  }

  SearchProblem problem3(Scenario scenario, std::uint64_t seed = 7) const {
    SearchProblem p = problem1(scenario, seed);
    p.config.model = models::paper_zoo().model("char_rnn");
    p.space = &space3_;
    return p;
  }

  cloud::InstanceCatalog cat1_, cat3_;
  cloud::DeploymentSpace space1_, space3_;
  perf::TrainingPerfModel perf1_, perf3_;
};

// ---------------------------------------------------------------- scenario

TEST(Scenario, FactoriesSetKinds) {
  EXPECT_EQ(Scenario::fastest().kind, ScenarioKind::kFastest);
  EXPECT_EQ(Scenario::cheapest_under_deadline(6.0).kind,
            ScenarioKind::kCheapestUnderDeadline);
  EXPECT_EQ(Scenario::fastest_under_budget(100.0).kind,
            ScenarioKind::kFastestUnderBudget);
  EXPECT_FALSE(Scenario::fastest().has_deadline());
  EXPECT_FALSE(Scenario::fastest().has_budget());
  EXPECT_TRUE(Scenario::cheapest_under_deadline(6.0).has_deadline());
  EXPECT_TRUE(Scenario::fastest_under_budget(100.0).has_budget());
}

TEST(Scenario, InvalidBoundsThrow) {
  EXPECT_THROW(Scenario::cheapest_under_deadline(0.0),
               std::invalid_argument);
  EXPECT_THROW(Scenario::fastest_under_budget(-5.0), std::invalid_argument);
}

TEST(Scenario, ObjectiveBySpeedOrEfficiency) {
  EXPECT_DOUBLE_EQ(scenario_objective(Scenario::fastest(), 100.0, 2.0),
                   100.0);
  EXPECT_DOUBLE_EQ(
      scenario_objective(Scenario::fastest_under_budget(50.0), 100.0, 2.0),
      100.0);
  EXPECT_DOUBLE_EQ(
      scenario_objective(Scenario::cheapest_under_deadline(5.0), 100.0, 2.0),
      50.0);
  EXPECT_DOUBLE_EQ(scenario_objective(Scenario::fastest(), 0.0, 2.0), 0.0);
}

TEST(Scenario, DescribeMentionsBounds) {
  EXPECT_NE(Scenario::cheapest_under_deadline(6.0).describe().find("6.00"),
            std::string::npos);
  EXPECT_NE(Scenario::fastest_under_budget(100.0).describe().find("100.00"),
            std::string::npos);
}

// ------------------------------------------------------------ SearchResult

TEST(SearchResultTest, ConstraintChecks) {
  SearchResult r;
  r.found = true;
  r.profile_hours = 2.0;
  r.training_hours = 5.0;
  r.profile_cost = 20.0;
  r.training_cost = 70.0;
  EXPECT_TRUE(r.meets_constraints(Scenario::fastest()));
  EXPECT_TRUE(r.meets_constraints(Scenario::cheapest_under_deadline(7.5)));
  EXPECT_FALSE(r.meets_constraints(Scenario::cheapest_under_deadline(6.9)));
  EXPECT_TRUE(r.meets_constraints(Scenario::fastest_under_budget(90.0)));
  EXPECT_FALSE(r.meets_constraints(Scenario::fastest_under_budget(89.0)));
  r.found = false;
  EXPECT_FALSE(r.meets_constraints(Scenario::fastest()));
}

TEST(SearchResultTest, SummaryMentionsOutcome) {
  SearchResult r;
  r.method = "test-method";
  const std::string empty = r.summary(Scenario::fastest());
  EXPECT_NE(empty.find("no feasible"), std::string::npos);
  r.found = true;
  r.best_description = "10 x c5.4xlarge";
  const std::string ok = r.summary(Scenario::fastest());
  EXPECT_NE(ok.find("10 x c5.4xlarge"), std::string::npos);
}

// ----------------------------------------------------------------- HeterBO

TEST_F(SearchTest, HeterBoInitProbesEveryTypeSingleNode) {
  HeterBoSearcher hb(perf3_);
  const SearchResult r = hb.run(problem3(Scenario::fastest()));
  ASSERT_GE(r.trace.size(), 3u);
  std::set<std::size_t> init_types;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.trace[i].reason, "init");
    EXPECT_EQ(r.trace[i].deployment.nodes, 1);
    init_types.insert(r.trace[i].deployment.type_index);
  }
  EXPECT_EQ(init_types.size(), 3u);
}

TEST_F(SearchTest, HeterBoSingleTypeInitUsesMidpoint) {
  HeterBoSearcher hb(perf1_);
  const SearchResult r = hb.run(problem1(Scenario::fastest()));
  ASSERT_GE(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0].deployment.nodes, 1);
  EXPECT_EQ(r.trace[1].deployment.nodes, 25);
  EXPECT_EQ(r.trace[1].reason, "curve");
}

TEST_F(SearchTest, HeterBoFindsNearOptimalScaleOut) {
  HeterBoSearcher hb(perf1_);
  const SearchResult r = hb.run(problem1(Scenario::fastest()));
  const auto opt = optimal_deployment(perf1_, problem1(Scenario::fastest()).config,
                                      space1_, Scenario::fastest());
  ASSERT_TRUE(r.found);
  ASSERT_TRUE(opt.has_value());
  // Within 10% of the optimal training speed.
  EXPECT_GT(r.best_true_speed, 0.9 * opt->best_true_speed);
}

// The paper's headline guarantee: HeterBO never violates user constraints.
// Property-tested across seeds and budget levels.
class HeterBoBudgetCompliance
    : public testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(HeterBoBudgetCompliance, NeverExceedsBudget) {
  const auto [seed, budget] = GetParam();
  const auto cat = cloud::aws_catalog().subset(
      std::vector<std::string>{"c5.xlarge", "c5.4xlarge", "p2.xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);

  SearchProblem p;
  p.config.model = models::paper_zoo().model("resnet");
  p.config.platform = perf::tensorflow_profile();
  p.config.topology = perf::CommTopology::kParameterServer;
  p.space = &space;
  p.scenario = Scenario::fastest_under_budget(budget);
  p.seed = static_cast<std::uint64_t>(seed);

  HeterBoSearcher hb(perf);
  const SearchResult r = hb.run(p);
  ASSERT_TRUE(r.found) << "seed=" << seed << " budget=" << budget;
  EXPECT_LE(r.total_cost(), budget)
      << "seed=" << seed << " budget=" << budget << " " << r.summary(p.scenario);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBudgets, HeterBoBudgetCompliance,
    testing::Combine(testing::Values(1, 2, 3, 5, 8, 13),
                     testing::Values(60.0, 100.0, 140.0, 220.0)));

class HeterBoDeadlineCompliance : public testing::TestWithParam<int> {};

TEST_P(HeterBoDeadlineCompliance, MeetsDeadlineWhenFeasible) {
  const int seed = GetParam();
  const auto cat = cloud::aws_catalog().subset(
      std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);

  SearchProblem p;
  p.config.model = models::paper_zoo().model("resnet");
  p.config.platform = perf::tensorflow_profile();
  p.config.topology = perf::CommTopology::kParameterServer;
  p.space = &space;
  p.scenario = Scenario::cheapest_under_deadline(8.0);
  p.seed = static_cast<std::uint64_t>(seed);

  HeterBoSearcher hb(perf);
  const SearchResult r = hb.run(p);
  ASSERT_TRUE(r.found);
  EXPECT_LE(r.total_hours(), 8.0) << r.summary(p.scenario);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeterBoDeadlineCompliance,
                         testing::Range(1, 9));

TEST_F(SearchTest, HeterBoConcavityPrunesDownSlope) {
  // After the search, verify no probe of a type landed beyond a node
  // count at which two earlier probes of that type already showed
  // declining speed.
  HeterBoSearcher hb(perf1_);
  const SearchResult r = hb.run(problem1(Scenario::fastest()));
  // Replay the trace: once a decline between consecutive (by n) probed
  // points is known, later probes must not exceed that n.
  std::vector<std::pair<int, double>> seen;  // (n, speed), kept sorted
  for (const ProbeStep& step : r.trace) {
    int prune_limit = std::numeric_limits<int>::max();
    std::vector<std::pair<int, double>> sorted = seen;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i].second < sorted[i - 1].second) {
        prune_limit = sorted[i].first;
        break;
      }
    }
    EXPECT_LE(step.deployment.nodes, prune_limit)
        << "probed past the known down-slope";
    seen.emplace_back(step.deployment.nodes, step.measured_speed);
  }
}

TEST_F(SearchTest, HeterBoCheaperProfilingThanConvBo) {
  // The headline mechanism: cost-aware acquisition + cheap init =>
  // substantially lower profiling spend (paper reports 16-21% on the
  // scale-out search; we assert the direction with margin there, and a
  // weaker margin on the harder multi-type space whose optimum sits at
  // the expensive far end).
  const SearchProblem p1 = problem1(Scenario::fastest());
  const SearchResult hb1 = HeterBoSearcher(perf1_).run(p1);
  const SearchResult cb1 = ConvBoSearcher(perf1_).run(p1);
  ASSERT_TRUE(hb1.found);
  ASSERT_TRUE(cb1.found);
  EXPECT_LT(hb1.profile_cost, 0.5 * cb1.profile_cost);

  const SearchProblem p3 = problem3(Scenario::fastest());
  const SearchResult hb3 = HeterBoSearcher(perf3_).run(p3);
  const SearchResult cb3 = ConvBoSearcher(perf3_).run(p3);
  EXPECT_LT(hb3.profile_cost, 0.95 * cb3.profile_cost);
}

TEST_F(SearchTest, HeterBoAblationKnobsChangeBehavior) {
  // The knobs must actually alter the probe strategy (the bench
  // bench_ablation_heterbo quantifies their cost effect per workload),
  // and every variant that keeps the protective reserve must still meet
  // the budget.
  const SearchProblem p = problem3(Scenario::fastest_under_budget(120.0));

  HeterBoOptions no_cost;
  no_cost.cost_aware_acquisition = false;
  const SearchResult plain = HeterBoSearcher(perf3_).run(p);
  const SearchResult blind = HeterBoSearcher(perf3_, no_cost).run(p);

  auto traces_equal = [](const SearchResult& a, const SearchResult& b) {
    if (a.trace.size() != b.trace.size()) return false;
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      if (!(a.trace[i].deployment == b.trace[i].deployment)) return false;
    }
    return true;
  };
  EXPECT_FALSE(traces_equal(plain, blind));
  EXPECT_TRUE(plain.meets_constraints(p.scenario));
  EXPECT_TRUE(blind.meets_constraints(p.scenario));
}

TEST_F(SearchTest, HeterBoInvalidOptionsThrow) {
  HeterBoOptions bad;
  bad.max_probes = 1;
  EXPECT_THROW(HeterBoSearcher(perf1_, bad), std::invalid_argument);
  HeterBoOptions bad2;
  bad2.ci_confidence = 1.5;
  EXPECT_THROW(HeterBoSearcher(perf1_, bad2), std::invalid_argument);
}

TEST_F(SearchTest, HeterBoRespectsMaxProbes) {
  HeterBoOptions options;
  options.max_probes = 5;
  HeterBoSearcher hb(perf3_, options);
  const SearchResult r = hb.run(problem3(Scenario::fastest()));
  EXPECT_LE(r.trace.size(), 5u);
}

TEST_F(SearchTest, WarmStartPointsExtractFeasibleProbes) {
  const SearchResult first =
      HeterBoSearcher(perf3_).run(problem3(Scenario::fastest()));
  const auto points = warm_start_points(first);
  EXPECT_FALSE(points.empty());
  std::size_t feasible = 0;
  for (const ProbeStep& s : first.trace) {
    if (s.feasible) ++feasible;
  }
  EXPECT_EQ(points.size(), feasible);
  for (const WarmStartPoint& p : points) {
    EXPECT_GT(p.measured_speed, 0.0);
  }
}

TEST_F(SearchTest, WarmStartSkipsInitWaves) {
  const SearchProblem p = problem3(Scenario::fastest_under_budget(120.0));
  const SearchResult first = HeterBoSearcher(perf3_).run(p);

  HeterBoOptions warm;
  warm.warm_start = warm_start_points(first);
  SearchProblem again = p;
  again.seed = 99;
  const SearchResult second = HeterBoSearcher(perf3_, warm).run(again);
  ASSERT_TRUE(second.found);
  // No mandatory init/curve probes for warm-covered types.
  for (const ProbeStep& s : second.trace) {
    EXPECT_NE(s.reason, "init");
    EXPECT_NE(s.reason, "curve");
  }
  // And the constraint guarantee still holds.
  EXPECT_LE(second.total_cost(), 120.0);
}

TEST_F(SearchTest, WarmStartReducesProbeCount) {
  const SearchProblem p = problem3(Scenario::fastest_under_budget(120.0));
  const SearchResult first = HeterBoSearcher(perf3_).run(p);

  // The "changed job": same model, doubled per-node batch.
  SearchProblem changed = p;
  changed.config.model.batch_per_node *= 2;
  changed.seed = 11;

  const SearchResult cold = HeterBoSearcher(perf3_).run(changed);
  HeterBoOptions options;
  options.warm_start = warm_start_points(first);
  const SearchResult warm = HeterBoSearcher(perf3_, options).run(changed);

  ASSERT_TRUE(cold.found);
  ASSERT_TRUE(warm.found);
  EXPECT_LT(warm.trace.size(), cold.trace.size());
  EXPECT_LE(warm.total_cost(), 120.0);
}

TEST_F(SearchTest, TraceRoundTripsThroughCsv) {
  const SearchResult r =
      HeterBoSearcher(perf3_).run(problem3(Scenario::fastest()));
  const std::string path = testing::TempDir() + "/mlcd_trace.csv";
  save_trace_csv(path, r, space3_);

  const auto points = load_warm_start_csv(path, cat3_);
  const auto direct = warm_start_points(r);
  ASSERT_EQ(points.size(), direct.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].deployment, direct[i].deployment);
    EXPECT_NEAR(points[i].measured_speed, direct[i].measured_speed,
                1e-6 * direct[i].measured_speed);
  }
  std::filesystem::remove(path);
}

TEST_F(SearchTest, LoadWarmStartSkipsUnknownTypes) {
  const SearchResult r =
      HeterBoSearcher(perf3_).run(problem3(Scenario::fastest()));
  const std::string path = testing::TempDir() + "/mlcd_trace_subset.csv";
  save_trace_csv(path, r, space3_);

  // Resolve against a catalog missing two of the three types.
  const auto only_c54 =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const auto points = load_warm_start_csv(path, only_c54);
  EXPECT_FALSE(points.empty());
  for (const WarmStartPoint& p : points) {
    EXPECT_EQ(p.deployment.type_index, 0u);
  }
  std::filesystem::remove(path);
}

TEST_F(SearchTest, LoadWarmStartRejectsMalformedFiles) {
  EXPECT_THROW(load_warm_start_csv("/nonexistent-zzz/trace.csv", cat3_),
               std::runtime_error);
  const std::string path = testing::TempDir() + "/mlcd_trace_bad.csv";
  {
    std::ofstream out(path);
    out << "wrong,header\n";
  }
  EXPECT_THROW(load_warm_start_csv(path, cat3_), std::invalid_argument);
  {
    std::ofstream out(path);
    out << "instance,nodes,measured_speed,feasible,failed,reason\n";
    out << "c5.4xlarge,-3,100,1,0,init\n";
  }
  EXPECT_THROW(load_warm_start_csv(path, cat3_), std::invalid_argument);
  std::filesystem::remove(path);
}

// ----------------------------------------------------------------- ConvBO

TEST_F(SearchTest, ConvBoViolatesBudgetSometimes) {
  // Constraint-oblivious search picks the fastest deployment regardless
  // of what it costs (the failure mode of Figs. 10/11/14).
  bool violated = false;
  for (std::uint64_t seed = 1; seed <= 5 && !violated; ++seed) {
    const SearchProblem p =
        problem3(Scenario::fastest_under_budget(120.0), seed);
    const SearchResult r = ConvBoSearcher(perf3_).run(p);
    if (r.found && r.total_cost() > 120.0) violated = true;
  }
  EXPECT_TRUE(violated);
}

TEST_F(SearchTest, BudgetAwareConvBoComplies) {
  ConvBoOptions options;
  options.budget_aware = true;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SearchProblem p =
        problem3(Scenario::fastest_under_budget(120.0), seed);
    const SearchResult r = ConvBoSearcher(perf3_, options).run(p);
    ASSERT_TRUE(r.found);
    EXPECT_LE(r.total_cost(), 120.0) << "seed " << seed;
  }
}

class ConvBoAcquisition : public testing::TestWithParam<const char*> {};

TEST_P(ConvBoAcquisition, EveryAcquisitionFindsGoodDeployments) {
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  SearchProblem p;
  p.config.model = models::paper_zoo().model("resnet");
  p.config.platform = perf::tensorflow_profile();
  p.config.topology = perf::CommTopology::kParameterServer;
  p.space = &space;
  p.scenario = Scenario::fastest();
  p.seed = 7;

  ConvBoOptions options;
  options.loop.acquisition = GetParam();
  const SearchResult r = ConvBoSearcher(perf, options).run(p);
  const auto opt =
      optimal_deployment(perf, p.config, space, Scenario::fastest());
  ASSERT_TRUE(r.found) << GetParam();
  EXPECT_GT(r.best_true_speed, 0.85 * opt->best_true_speed) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Acquisitions, ConvBoAcquisition,
                         testing::Values("ei", "ucb", "poi"));

TEST_F(SearchTest, UnknownAcquisitionThrows) {
  ConvBoOptions options;
  options.loop.acquisition = "thompson";
  EXPECT_THROW(ConvBoSearcher(perf1_, options)
                   .run(problem1(Scenario::fastest())),
               std::invalid_argument);
}

TEST_F(SearchTest, ConvBoNamesVariants) {
  EXPECT_EQ(ConvBoSearcher(perf1_).name(), "conv-bo");
  ConvBoOptions options;
  options.budget_aware = true;
  EXPECT_EQ(ConvBoSearcher(perf1_, options).name(), "bo-improved");
}

TEST_F(SearchTest, ConvBoDeterministicPerSeed) {
  const SearchProblem p = problem3(Scenario::fastest(), 11);
  const SearchResult a = ConvBoSearcher(perf3_).run(p);
  const SearchResult b = ConvBoSearcher(perf3_).run(p);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].deployment, b.trace[i].deployment);
    EXPECT_DOUBLE_EQ(a.trace[i].measured_speed, b.trace[i].measured_speed);
  }
}

// -------------------------------------------------------------- CherryPick

TEST_F(SearchTest, CherryPickUsesCoarseGrid) {
  CherryPickOptions options;
  CherryPickSearcher cp(perf3_, options);
  const SearchResult r = cp.run(problem3(Scenario::fastest()));
  const std::set<int> grid(options.node_grid.begin(),
                           options.node_grid.end());
  for (const ProbeStep& step : r.trace) {
    EXPECT_TRUE(grid.count(step.deployment.nodes))
        << "probed off-grid n=" << step.deployment.nodes;
  }
}

TEST_F(SearchTest, CherryPickFamilyTrimRestrictsProbes) {
  CherryPickOptions options;
  options.allowed_families = {"c5"};
  CherryPickSearcher cp(perf3_, options);
  const SearchResult r = cp.run(problem3(Scenario::fastest()));
  for (const ProbeStep& step : r.trace) {
    EXPECT_EQ(cat3_.at(step.deployment.type_index).family, "c5");
  }
}

TEST_F(SearchTest, CherryPickEmptyTrimFallsBackToFullSpace) {
  CherryPickOptions options;
  options.allowed_families = {"nonexistent-family"};
  CherryPickSearcher cp(perf3_, options);
  const SearchResult r = cp.run(problem3(Scenario::fastest()));
  EXPECT_TRUE(r.found);
}

TEST_F(SearchTest, CherryPickNamesVariants) {
  EXPECT_EQ(CherryPickSearcher(perf1_).name(), "cherrypick");
  CherryPickOptions options;
  options.budget_aware = true;
  EXPECT_EQ(CherryPickSearcher(perf1_, options).name(),
            "cherrypick-improved");
}

// ------------------------------------------------------------------ Random

TEST_F(SearchTest, RandomSearchProbesExactlyK) {
  RandomSearchOptions options;
  options.probes = 12;
  RandomSearcher rs(perf3_, options);
  const SearchResult r = rs.run(problem3(Scenario::fastest()));
  EXPECT_EQ(r.trace.size(), 12u);
  EXPECT_EQ(rs.name(), "random-12");
}

TEST_F(SearchTest, RandomSearchProbesAreDistinct) {
  RandomSearchOptions options;
  options.probes = 20;
  const SearchResult r =
      RandomSearcher(perf3_, options).run(problem3(Scenario::fastest()));
  std::set<std::pair<std::size_t, int>> seen;
  for (const ProbeStep& s : r.trace) {
    EXPECT_TRUE(
        seen.insert({s.deployment.type_index, s.deployment.nodes}).second);
  }
}

TEST_F(SearchTest, RandomSearchInvalidOptionsThrow) {
  RandomSearchOptions bad;
  bad.probes = 0;
  EXPECT_THROW(RandomSearcher(perf1_, bad), std::invalid_argument);
}

// -------------------------------------------------------------- Exhaustive

TEST_F(SearchTest, ExhaustiveFindsTheOptimum) {
  ExhaustiveSearcher ex(perf1_);
  const SearchResult r = ex.run(problem1(Scenario::fastest()));
  const auto opt = optimal_deployment(
      perf1_, problem1(Scenario::fastest()).config, space1_,
      Scenario::fastest());
  ASSERT_TRUE(r.found);
  // Exhaustive measures everything; its pick is within noise of optimal.
  EXPECT_GT(r.best_true_speed, 0.97 * opt->best_true_speed);
  EXPECT_EQ(r.trace.size(), space1_.size());
}

TEST_F(SearchTest, ExhaustiveSubsampleRespectsCap) {
  ExhaustiveOptions options;
  options.max_probes = 10;
  ExhaustiveSearcher ex(perf1_, options);
  const SearchResult r = ex.run(problem1(Scenario::fastest()));
  EXPECT_LE(r.trace.size(), 10u);
  EXPECT_EQ(ex.name(), "exhaustive-10");
}

TEST_F(SearchTest, ExhaustiveParallelCampaignShortensWallTime) {
  ExhaustiveOptions serial_options;
  serial_options.max_probes = 20;
  ExhaustiveOptions parallel_options = serial_options;
  parallel_options.parallel_clusters = 5;

  const SearchProblem p = problem1(Scenario::fastest());
  const SearchResult serial =
      ExhaustiveSearcher(perf1_, serial_options).run(p);
  const SearchResult parallel =
      ExhaustiveSearcher(perf1_, parallel_options).run(p);

  // Same probes, same dollars, ~5x less wall time (within round-robin
  // imbalance).
  ASSERT_EQ(serial.trace.size(), parallel.trace.size());
  EXPECT_NEAR(serial.profile_cost, parallel.profile_cost, 1e-9);
  EXPECT_LT(parallel.profile_hours, serial.profile_hours / 4.0);
  EXPECT_GE(parallel.profile_hours, serial.profile_hours / 5.0 - 1e-9);
  EXPECT_EQ(serial.best, parallel.best);
}

TEST_F(SearchTest, ExhaustiveParallelInvalidOptionsThrow) {
  ExhaustiveOptions bad;
  bad.parallel_clusters = 0;
  EXPECT_THROW(ExhaustiveSearcher(perf1_, bad), std::invalid_argument);
}

TEST_F(SearchTest, ExhaustiveProfilingDwarfsBoMethods) {
  // Fig. 2's point: exhaustive profiling costs more than BO search.
  const SearchProblem p = problem1(Scenario::fastest());
  const SearchResult ex = ExhaustiveSearcher(perf1_).run(p);
  const SearchResult cb = ConvBoSearcher(perf1_).run(p);
  EXPECT_GT(ex.profile_cost, 2.0 * cb.profile_cost);
}

// ------------------------------------------------------------------- Paleo

TEST_F(SearchTest, PaleoPaysNoProfiling) {
  PaleoSearcher paleo(perf3_);
  const SearchResult r = paleo.run(problem3(Scenario::fastest()));
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.profile_cost, 0.0);
  EXPECT_DOUBLE_EQ(r.profile_hours, 0.0);
  EXPECT_TRUE(r.trace.empty());
}

TEST_F(SearchTest, PaleoOverestimatesAtScale) {
  PaleoSearcher paleo(perf3_);
  const SearchProblem p = problem3(Scenario::fastest());
  const cloud::Deployment big{1, 40};
  EXPECT_GT(paleo.predicted_speed(p.config, big),
            perf3_.true_speed(p.config, big));
}

TEST_F(SearchTest, PaleoPickWorseThanOracle) {
  // Because its model ignores congestion nuances, Paleo's chosen
  // deployment underdelivers relative to the oracle (Fig. 13).
  PaleoSearcher paleo(perf3_);
  const SearchProblem p = problem3(Scenario::fastest());
  const SearchResult r = paleo.run(p);
  const auto opt =
      optimal_deployment(perf3_, p.config, space3_, Scenario::fastest());
  ASSERT_TRUE(r.found);
  EXPECT_LE(r.best_true_speed, opt->best_true_speed);
}

// -------------------------------------------------------------------- Spot

TEST_F(SearchTest, SpotSearchCheaperButSlowerTraining) {
  const cloud::DeploymentSpace spot_space(cat1_, 50, cloud::Market::kSpot);
  SearchProblem od = problem1(Scenario::fastest());
  SearchProblem sp = od;
  sp.space = &spot_space;

  const SearchResult r_od = HeterBoSearcher(perf1_).run(od);
  const SearchResult r_sp = HeterBoSearcher(perf1_).run(sp);
  ASSERT_TRUE(r_od.found);
  ASSERT_TRUE(r_sp.found);
  // Spot money goes much further...
  EXPECT_LT(r_sp.total_cost(), 0.6 * r_od.total_cost());
  // ...but the same cluster trains longer under revocations.
  const auto opt_od = optimal_deployment(perf1_, od.config, space1_,
                                         Scenario::fastest());
  const auto opt_sp = optimal_deployment(perf1_, sp.config, spot_space,
                                         Scenario::fastest());
  EXPECT_GT(opt_sp->training_hours, opt_od->training_hours);
}

TEST_F(SearchTest, SpotBudgetComplianceStillHolds) {
  const cloud::DeploymentSpace spot_space(cat3_, 50, cloud::Market::kSpot);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SearchProblem p = problem3(Scenario::fastest_under_budget(60.0), seed);
    p.space = &spot_space;
    const SearchResult r = HeterBoSearcher(perf3_).run(p);
    ASSERT_TRUE(r.found) << seed;
    EXPECT_LE(r.total_cost(), 60.0) << seed;
  }
}

// ------------------------------------------------------------------ Pareto

TEST(ParetoFront, KeepsOnlyNonDominatedPoints) {
  std::vector<ParetoPoint> points;
  auto add = [&](double h, double c) {
    ParetoPoint p;
    p.training_hours = h;
    p.training_cost = c;
    points.push_back(p);
  };
  add(1.0, 10.0);  // fast, expensive  -> front
  add(10.0, 1.0);  // slow, cheap      -> front
  add(5.0, 5.0);   // middle           -> front
  add(6.0, 6.0);   // dominated by (5,5)
  add(1.0, 11.0);  // dominated by (1,10)
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 3u);
  // Sorted by training time.
  EXPECT_DOUBLE_EQ(front[0].training_hours, 1.0);
  EXPECT_DOUBLE_EQ(front[2].training_hours, 10.0);
  // Non-domination property.
  for (const auto& a : front) {
    for (const auto& b : front) {
      if (&a == &b) continue;
      EXPECT_FALSE(a.training_hours <= b.training_hours &&
                   a.training_cost <= b.training_cost &&
                   (a.training_hours < b.training_hours ||
                    a.training_cost < b.training_cost));
    }
  }
}

TEST(ParetoFront, DropsDuplicates) {
  std::vector<ParetoPoint> points(3);
  for (auto& p : points) {
    p.training_hours = 2.0;
    p.training_cost = 3.0;
  }
  EXPECT_EQ(pareto_front(points).size(), 1u);
}

TEST_F(SearchTest, ParetoSearcherProbesNonAdaptively) {
  ParetoSearchOptions options;
  options.probes = 9;
  ParetoSearcher pareto(perf3_, options);
  const SearchResult a = pareto.run(problem3(Scenario::fastest(), 1));
  const SearchResult b = pareto.run(problem3(Scenario::fastest(), 2));
  // Non-adaptive: the probe plan ignores observations (and the seed).
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].deployment, b.trace[i].deployment);
  }
  EXPECT_LE(a.trace.size(), 9u);
}

TEST_F(SearchTest, ParetoFrontOfRunIsNonEmpty) {
  ParetoSearcher pareto(perf3_);
  const SearchProblem p = problem3(Scenario::fastest());
  const SearchResult r = pareto.run(p);
  const auto front =
      pareto.front_of(r, space3_, p.config.model.samples_to_train);
  EXPECT_FALSE(front.empty());
  EXPECT_LE(front.size(), r.trace.size());
}

TEST_F(SearchTest, ParetoUnderperformsHeterBo) {
  // The paper's §I claim: PO "falls short in performance" against BO.
  double pareto_speed = 0.0, heterbo_speed = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SearchProblem p = problem3(Scenario::fastest(), seed);
    pareto_speed += ParetoSearcher(perf3_).run(p).best_true_speed;
    heterbo_speed += HeterBoSearcher(perf3_).run(p).best_true_speed;
  }
  EXPECT_GT(heterbo_speed, pareto_speed);
}

TEST_F(SearchTest, ParetoInvalidOptionsThrow) {
  ParetoSearchOptions bad;
  bad.probes = 1;
  EXPECT_THROW(ParetoSearcher(perf3_, bad), std::invalid_argument);
}

// ------------------------------------------------------------------ Oracle

TEST_F(SearchTest, OracleRespectsConstraints) {
  const SearchProblem p = problem1(Scenario::fastest());
  const auto within = optimal_deployment(perf1_, p.config, space1_,
                                         Scenario::fastest_under_budget(80.0));
  ASSERT_TRUE(within.has_value());
  EXPECT_LE(within->training_cost, 80.0);

  const auto impossible = optimal_deployment(
      perf1_, p.config, space1_, Scenario::fastest_under_budget(0.01));
  EXPECT_FALSE(impossible.has_value());
}

TEST_F(SearchTest, OracleDeadlineFiltersSlowDeployments) {
  const SearchProblem p = problem1(Scenario::fastest());
  const auto opt = optimal_deployment(
      perf1_, p.config, space1_, Scenario::cheapest_under_deadline(8.0));
  ASSERT_TRUE(opt.has_value());
  EXPECT_LE(opt->training_hours, 8.0);
  // Cheapest-within-deadline is slower but cheaper than the pure-speed
  // optimum.
  const auto fastest =
      optimal_deployment(perf1_, p.config, space1_, Scenario::fastest());
  EXPECT_LE(opt->training_cost, fastest->training_cost);
}

}  // namespace
}  // namespace mlcd::search
