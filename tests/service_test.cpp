// Tests for src/service: workload parsing, the shared probe cache, the
// capacity pool, the multi-tenant scheduler, and the subsystem's hard
// invariant — every job's batch-mode RunReport is bit-identical to the
// solo run of the same JobSpec, at any scheduler thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mlcd/mlcd.hpp"
#include "search/pareto.hpp"
#include "search/trace_io.hpp"
#include "service/batch_report.hpp"
#include "service/capacity.hpp"
#include "service/probe_cache.hpp"
#include "service/scheduler.hpp"
#include "service/workload.hpp"
#include "util/json.hpp"

namespace mlcd::service {
namespace {

// ---------------------------------------------------------------- workload

TEST(Workload, ParsesFullDocument) {
  const Workload w = parse_workload(R"({
    "schema_version": 1,
    "jobs": [
      {"name": "a", "tenant": "acme", "model": "resnet",
       "deadline_hours": 24, "seed": 7, "max_nodes": 10,
       "method": "conv-bo", "use_spot": true, "threads": 2,
       "journal": "a.mlcdj"},
      {"name": "b", "model": "alexnet", "budget_dollars": 120.5}
    ]
  })");
  ASSERT_EQ(w.jobs.size(), 2u);
  const JobSpec& a = w.jobs[0];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.tenant, "acme");
  EXPECT_EQ(a.request.model, "resnet");
  EXPECT_EQ(a.request.search_method, "conv-bo");
  EXPECT_EQ(a.request.seed, 7u);
  EXPECT_EQ(a.request.max_nodes, 10);
  EXPECT_EQ(a.request.threads, 2);
  EXPECT_TRUE(a.request.use_spot);
  EXPECT_EQ(a.request.journal_path, "a.mlcdj");
  ASSERT_TRUE(a.request.requirements.deadline_hours.has_value());
  EXPECT_DOUBLE_EQ(*a.request.requirements.deadline_hours, 24.0);
  EXPECT_FALSE(a.request.requirements.budget_dollars.has_value());
  // Defaults: tenant = name, method = heterbo, seed = 1.
  const JobSpec& b = w.jobs[1];
  EXPECT_EQ(b.tenant, "b");
  EXPECT_EQ(b.request.search_method, "heterbo");
  EXPECT_EQ(b.request.seed, 1u);
  ASSERT_TRUE(b.request.requirements.budget_dollars.has_value());
  EXPECT_DOUBLE_EQ(*b.request.requirements.budget_dollars, 120.5);
}

TEST(Workload, RejectsBadDocuments) {
  EXPECT_THROW(parse_workload("not json"), std::invalid_argument);
  EXPECT_THROW(parse_workload("[]"), std::invalid_argument);
  EXPECT_THROW(parse_workload(R"({"jobs": []})"), std::invalid_argument);
  EXPECT_THROW(parse_workload(R"({"schema_version": 99, "jobs": [
      {"name": "a", "model": "resnet"}]})"),
               std::invalid_argument);
  // Missing / empty name, missing model.
  EXPECT_THROW(parse_workload(R"({"jobs": [{"model": "resnet"}]})"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_workload(R"({"jobs": [{"name": "", "model": "resnet"}]})"),
      std::invalid_argument);
  EXPECT_THROW(parse_workload(R"({"jobs": [{"name": "a"}]})"),
               std::invalid_argument);
  // Duplicate names.
  EXPECT_THROW(parse_workload(R"({"jobs": [
      {"name": "a", "model": "resnet"},
      {"name": "a", "model": "alexnet"}]})"),
               std::invalid_argument);
  // Out-of-range numbers.
  EXPECT_THROW(parse_workload(R"({"jobs": [
      {"name": "a", "model": "resnet", "deadline_hours": -1}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_workload(R"({"jobs": [
      {"name": "a", "model": "resnet", "seed": 1.5}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_workload(R"({"jobs": [
      {"name": "a", "model": "resnet", "max_nodes": 0}]})"),
               std::invalid_argument);
}

TEST(Workload, LoadReadsFileAndReportsMissing) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mlcd_wl_test.json")
          .string();
  {
    std::ofstream f(path);
    f << R"({"jobs": [{"name": "a", "model": "resnet"}]})";
  }
  const Workload w = load_workload(path);
  EXPECT_EQ(w.jobs.size(), 1u);
  std::remove(path.c_str());
  EXPECT_THROW(load_workload(path), std::runtime_error);
}

// -------------------------------------------------------------- ProbeCache

profiler::ProbeKey key_of(std::uint64_t substrate, std::uint64_t history,
                          int index, std::size_t type, int nodes) {
  profiler::ProbeKey key;
  key.substrate = substrate;
  key.history = history;
  key.probe_index = index;
  key.type_index = type;
  key.nodes = nodes;
  return key;
}

TEST(ProbeCache, MissInsertHit) {
  ProbeCache cache;
  const profiler::ProbeKey key = key_of(1, 2, 3, 4, 5);
  EXPECT_FALSE(cache.lookup(key).has_value());

  journal::ProbeRecord record;
  record.type_index = 4;
  record.nodes = 5;
  record.measured_speed = 123.5;
  EXPECT_TRUE(cache.insert(key, record));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->nodes, 5);
  EXPECT_DOUBLE_EQ(hit->measured_speed, 123.5);

  // Any key component distinguishes entries.
  EXPECT_FALSE(cache.lookup(key_of(9, 2, 3, 4, 5)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(1, 9, 3, 4, 5)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(1, 2, 9, 4, 5)).has_value());

  const ProbeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 5);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ProbeCache, FirstWriterWins) {
  ProbeCache cache;
  const profiler::ProbeKey key = key_of(1, 2, 3, 4, 5);
  journal::ProbeRecord first;
  first.measured_speed = 1.0;
  journal::ProbeRecord second;
  second.measured_speed = 2.0;
  EXPECT_TRUE(cache.insert(key, first));
  EXPECT_FALSE(cache.insert(key, second));
  EXPECT_DOUBLE_EQ(cache.lookup(key)->measured_speed, 1.0);
  EXPECT_EQ(cache.stats().rejected, 1);
}

// ------------------------------------------------------------ CapacityPool

TEST(CapacityPool, UnlimitedTracksOccupancyOnly) {
  CapacityPool pool(0);
  const auto a = pool.acquire(100);
  EXPECT_FALSE(a.stalled);
  EXPECT_EQ(pool.in_use(), 100);
  pool.acquire(50);
  EXPECT_EQ(pool.peak_in_use(), 150);
  pool.release(100);
  pool.release(50);
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.stalls(), 0);
}

TEST(CapacityPool, RejectsImpossibleRequests) {
  CapacityPool pool(10);
  EXPECT_THROW(pool.acquire(0), std::invalid_argument);
  EXPECT_THROW(pool.acquire(11), std::invalid_argument);
}

TEST(CapacityPool, TryAcquireNeverBlocksAndNeverOvertakes) {
  CapacityPool pool(10);
  EXPECT_THROW(pool.try_acquire(0), std::invalid_argument);
  EXPECT_THROW(pool.try_acquire(11), std::invalid_argument);
  EXPECT_TRUE(pool.try_acquire(6));
  EXPECT_FALSE(pool.try_acquire(5));  // would exceed: refused, not queued
  EXPECT_EQ(pool.in_use(), 6);
  EXPECT_TRUE(pool.try_acquire(4));
  pool.release(6);
  pool.release(4);
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.peak_in_use(), 10);
  EXPECT_EQ(pool.stalls(), 0);  // try_acquire never stalls

  // A blocked acquire() holds the FIFO head: try_acquire must refuse
  // even a fitting request rather than overtake it.
  EXPECT_FALSE(pool.acquire(8).stalled);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    pool.acquire(5);
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pool.try_acquire(1));  // fits, but the waiter is ahead
  pool.release(8);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  pool.release(5);

  CapacityPool unlimited(0);
  EXPECT_TRUE(unlimited.try_acquire(1000));
  EXPECT_EQ(unlimited.in_use(), 1000);
  unlimited.release(1000);
}

TEST(CapacityPool, QueuesUntilCapacityFrees) {
  CapacityPool pool(10);
  EXPECT_FALSE(pool.acquire(8).stalled);
  EXPECT_EQ(pool.in_use(), 8);

  std::atomic<bool> admitted{false};
  CapacityPool::Admission waiter_admission;
  std::thread waiter([&] {
    waiter_admission = pool.acquire(5);  // cannot fit beside the 8
    admitted.store(true);
  });
  // The waiter must be stalled, not admitted.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(pool.in_use(), 8);

  pool.release(8);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_TRUE(waiter_admission.stalled);
  EXPECT_GT(waiter_admission.wait_seconds, 0.0);
  EXPECT_EQ(pool.in_use(), 5);
  EXPECT_EQ(pool.peak_in_use(), 8);
  EXPECT_EQ(pool.stalls(), 1);
  EXPECT_GT(pool.stall_seconds(), 0.0);
  pool.release(5);
}

// --------------------------------------------------------------- Scheduler

Workload small_fleet() {
  // Two tenants sharing (model, seed) pairs so the probe cache has
  // cross-job identical prefixes to reuse; scenarios differ per job.
  return parse_workload(R"({
    "jobs": [
      {"name": "acme-resnet", "tenant": "acme", "model": "resnet",
       "deadline_hours": 24, "seed": 7, "max_nodes": 10},
      {"name": "beta-resnet", "tenant": "beta", "model": "resnet",
       "deadline_hours": 30, "seed": 7, "max_nodes": 10},
      {"name": "acme-alexnet", "tenant": "acme", "model": "alexnet",
       "budget_dollars": 150, "seed": 9, "max_nodes": 10},
      {"name": "beta-alexnet", "tenant": "beta", "model": "alexnet",
       "budget_dollars": 200, "seed": 9, "max_nodes": 10}
    ]
  })");
}

TEST(Scheduler, RejectsBadOptionsAndWorkloads) {
  const system::Mlcd mlcd;
  SchedulerOptions negative;
  negative.capacity_nodes = -1;
  EXPECT_THROW(Scheduler(mlcd, negative), std::invalid_argument);
  negative.capacity_nodes = 0;
  negative.tenant_max_jobs = -1;
  EXPECT_THROW(Scheduler(mlcd, negative), std::invalid_argument);

  const Scheduler scheduler(mlcd, {});
  EXPECT_THROW(scheduler.run(Workload{}), std::invalid_argument);

  // Admission control: a job that could probe beyond the whole pool is
  // refused up front (it would wedge the FIFO capacity queue).
  SchedulerOptions tight;
  tight.capacity_nodes = 5;
  const Scheduler guarded(mlcd, tight);
  EXPECT_THROW(guarded.run(small_fleet()), std::invalid_argument);
}

TEST(Scheduler, PerJobFailuresDoNotAbortTheBatch) {
  const system::Mlcd mlcd;
  const Workload workload = parse_workload(R"({
    "jobs": [
      {"name": "good", "model": "resnet", "deadline_hours": 24, "seed": 3,
       "max_nodes": 8},
      {"name": "bad-model", "model": "no-such-model"},
      {"name": "bad-method", "model": "resnet", "method": "no-such"}
    ]
  })");
  const Scheduler scheduler(mlcd, {});
  const BatchReport report = scheduler.run(workload);
  ASSERT_EQ(report.jobs.size(), 3u);
  EXPECT_TRUE(report.jobs[0].ok);
  EXPECT_FALSE(report.jobs[1].ok);
  EXPECT_EQ(report.jobs[1].error_code, "unknown_model");
  EXPECT_FALSE(report.jobs[2].ok);
  EXPECT_EQ(report.jobs[2].error_code, "unknown_method");
  EXPECT_EQ(report.succeeded(), 1);
}

TEST(Scheduler, SharesProbesAndBillsFirstTenantOnly) {
  const system::Mlcd mlcd;
  SchedulerOptions options;  // serial: deterministic claim order
  const Scheduler scheduler(mlcd, options);
  const BatchReport report = scheduler.run(small_fleet());
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const JobOutcome& job : report.jobs) ASSERT_TRUE(job.ok) << job.name;

  // Serial order runs acme-resnet first: it publishes, beta-resnet (same
  // model+seed, different deadline) reuses the shared prefix.
  EXPECT_EQ(report.jobs[0].stats.cache_hits, 0);
  EXPECT_GT(report.jobs[0].stats.cache_publishes, 0);
  EXPECT_GT(report.jobs[1].stats.cache_hits, 0);
  EXPECT_GT(report.jobs[1].stats.reused_probe_cost, 0.0);
  EXPECT_GT(report.total_cache_hits(), 0);
  EXPECT_GT(report.cache.hits, 0);
  EXPECT_EQ(report.cache.hits, report.total_cache_hits());
  // Fleet-level: reused probes were measured once; the cache never holds
  // more records than were published.
  EXPECT_GT(report.cache.inserts, 0);
  EXPECT_EQ(report.cache.size, static_cast<std::size_t>(report.cache.inserts));
}

TEST(Scheduler, NoShareModeStillProducesIdenticalReports) {
  const system::Mlcd mlcd;
  SchedulerOptions shared;
  SchedulerOptions isolated;
  isolated.share_probes = false;
  const BatchReport a = Scheduler(mlcd, shared).run(small_fleet());
  const BatchReport b = Scheduler(mlcd, isolated).run(small_fleet());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(b.total_cache_hits(), 0);
  EXPECT_EQ(b.cache.lookups, 0);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].report.to_json(), b.jobs[i].report.to_json())
        << a.jobs[i].name;
  }
}

// The tentpole invariant, small scale: batch == solo, bytes, at several
// scheduler thread counts. (The 32-job version below stresses it.)
TEST(Scheduler, BatchReportsAreBitIdenticalToSoloRuns) {
  const system::Mlcd mlcd;
  const Workload workload = small_fleet();

  std::vector<std::string> solo;
  for (const JobSpec& spec : workload.jobs) {
    const system::DeployResult result = mlcd.deploy(spec.request);
    ASSERT_TRUE(result.ok()) << spec.name;
    solo.push_back(result.report().to_json());
  }

  for (const int threads : {1, 4}) {
    SchedulerOptions options;
    options.threads = threads;
    options.capacity_nodes = 24;
    options.tenant_max_jobs = 1;
    const BatchReport report = Scheduler(mlcd, options).run(workload);
    ASSERT_EQ(report.jobs.size(), solo.size());
    for (std::size_t i = 0; i < solo.size(); ++i) {
      ASSERT_TRUE(report.jobs[i].ok);
      EXPECT_EQ(report.jobs[i].report.to_json(), solo[i])
          << "threads=" << threads << " job=" << report.jobs[i].name;
    }
    EXPECT_LE(report.peak_tenant_jobs, 1);
    EXPECT_LE(report.peak_capacity_nodes, 24);
  }
}

// The probe-granularity tentpole's observable: under real capacity
// pressure, sessions *park* — they leave their lane mid-search and
// resume later — instead of blocking the lane the way job-per-lane mode
// does, and every RunReport still comes out bit-identical between the
// two modes. Exhaustive searchers keep all lanes issuing live probes of
// 1..8 nodes back-to-back, so an 8-node pool is persistently contended.
TEST(Scheduler, ParksSessionsInsteadOfBlockingLanes) {
  const system::Mlcd mlcd;
  const Workload workload = parse_workload(R"({
    "jobs": [
      {"name": "a", "tenant": "t1", "model": "resnet",
       "deadline_hours": 24, "seed": 11, "max_nodes": 8,
       "method": "exhaustive"},
      {"name": "b", "tenant": "t2", "model": "resnet",
       "deadline_hours": 24, "seed": 12, "max_nodes": 8,
       "method": "exhaustive"},
      {"name": "c", "tenant": "t3", "model": "alexnet",
       "deadline_hours": 24, "seed": 13, "max_nodes": 8,
       "method": "exhaustive"},
      {"name": "d", "tenant": "t4", "model": "alexnet",
       "deadline_hours": 24, "seed": 14, "max_nodes": 8,
       "method": "exhaustive"}
    ]
  })");
  SchedulerOptions parked_mode;
  parked_mode.threads = 4;
  parked_mode.capacity_nodes = 8;
  parked_mode.share_probes = false;  // every probe live: maximal pressure
  SchedulerOptions blocking_mode = parked_mode;
  blocking_mode.probe_granularity = false;

  const BatchReport parked = Scheduler(mlcd, parked_mode).run(workload);
  const BatchReport blocked = Scheduler(mlcd, blocking_mode).run(workload);

  ASSERT_EQ(parked.jobs.size(), 4u);
  ASSERT_EQ(blocked.jobs.size(), 4u);
  EXPECT_TRUE(parked.probe_granularity);
  EXPECT_FALSE(blocked.probe_granularity);

  // Sessions parked (lanes were freed); job-per-lane never parks.
  EXPECT_GT(parked.total_session_parks(), 0);
  EXPECT_EQ(blocked.total_session_parks(), 0);
  EXPECT_LE(parked.peak_capacity_nodes, 8);
  EXPECT_LE(blocked.peak_capacity_nodes, 8);

  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(parked.jobs[i].ok) << parked.jobs[i].name;
    ASSERT_TRUE(blocked.jobs[i].ok) << blocked.jobs[i].name;
    // The mode is invisible to the job: reports are bit-identical.
    EXPECT_EQ(parked.jobs[i].report.to_json(),
              blocked.jobs[i].report.to_json())
        << parked.jobs[i].name;
    const JobStats& stats = parked.jobs[i].stats;
    EXPECT_EQ(stats.capacity_stalls, stats.session_parks);
    // Parked time accrues off-lane: lane occupancy never exceeds the
    // job's wall time, and parked jobs spent real time off their lane.
    EXPECT_LE(stats.lane_busy_seconds, stats.run_seconds + 1e-6);
    if (stats.session_parks > 0) {
      EXPECT_GT(stats.capacity_stall_seconds, 0.0);
    }
  }
}

// ------------------------------------------------------------ BatchReport

TEST(BatchReport, JsonRoundTripsUnderTheSchema) {
  const system::Mlcd mlcd;
  SchedulerOptions options;
  options.threads = 2;
  options.capacity_nodes = 30;
  options.tenant_max_jobs = 2;
  const BatchReport report = Scheduler(mlcd, options).run(small_fleet());

  const util::JsonValue doc = util::parse_json(report.to_json());
  EXPECT_EQ(doc.at("schema_version").as_number(),
            BatchReport::kJsonSchemaVersion);
  EXPECT_EQ(doc.at("scheduler").at("threads").as_number(), 2);
  EXPECT_EQ(doc.at("scheduler").at("capacity_nodes").as_number(), 30);
  EXPECT_GE(doc.at("scheduler").at("makespan_seconds").as_number(), 0.0);
  EXPECT_GE(doc.at("probe_cache").at("hits").as_number(), 0.0);
  const auto& jobs = doc.at("jobs").as_array();
  ASSERT_EQ(jobs.size(), report.jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].at("name").as_string(), report.jobs[i].name);
    EXPECT_EQ(jobs[i].at("tenant").as_string(), report.jobs[i].tenant);
    ASSERT_TRUE(jobs[i].at("ok").as_bool());
    EXPECT_GE(jobs[i].at("stats").at("cache_hits").as_number(), 0.0);
    // The embedded document is a full RunReport under its own schema.
    const util::JsonValue& embedded = jobs[i].at("report");
    EXPECT_EQ(embedded.at("schema_version").as_number(),
              system::RunReport::kJsonSchemaVersion);
    EXPECT_TRUE(embedded.at("result").at("found").as_bool());
    // ... and its bytes are exactly the solo document's bytes.
    EXPECT_EQ(report.jobs[i].report.to_json(),
              mlcd.deploy(small_fleet().jobs[i].request).report().to_json());
  }
}

TEST(BatchReport, FailedJobsCarryTypedErrors) {
  const system::Mlcd mlcd;
  const Workload workload = parse_workload(
      R"({"jobs": [{"name": "nope", "model": "no-such-model"}]})");
  const BatchReport report = Scheduler(mlcd, {}).run(workload);
  const util::JsonValue doc = util::parse_json(report.to_json());
  const util::JsonValue& job = doc.at("jobs").at(std::size_t{0});
  EXPECT_FALSE(job.at("ok").as_bool());
  EXPECT_EQ(job.at("error").at("code").as_string(), "unknown_model");
  EXPECT_FALSE(job.contains("report"));
  EXPECT_NE(report.render().find("FAILED"), std::string::npos);
}

// ------------------------------------------------- trace_io / pareto rides

TEST(BatchReport, TraceRoundTripMatchesSolo) {
  const system::Mlcd mlcd;
  const Workload workload = small_fleet();
  const BatchReport batch = Scheduler(mlcd, {}).run(workload);
  ASSERT_TRUE(batch.jobs[1].ok);

  const JobSpec& spec = workload.jobs[1];
  const system::DeployResult solo = mlcd.deploy(spec.request);
  ASSERT_TRUE(solo.ok());

  const cloud::DeploymentSpace space(
      mlcd.cloud().catalog(), spec.request.max_nodes,
      cloud::Market::kOnDemand);
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string from_batch = (tmp / "mlcd_batch_trace.csv").string();
  const std::string from_solo = (tmp / "mlcd_solo_trace.csv").string();
  search::save_trace_csv(from_batch, batch.jobs[1].report.result, space);
  search::save_trace_csv(from_solo, solo.report().result, space);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  EXPECT_EQ(slurp(from_batch), slurp(from_solo));

  // And the warm-start loader reads the batch-produced trace back.
  const std::vector<search::WarmStartPoint> points =
      search::load_warm_start_csv(from_batch, mlcd.cloud().catalog());
  EXPECT_EQ(points.size(), batch.jobs[1].report.result.trace.size());
  std::remove(from_batch.c_str());
  std::remove(from_solo.c_str());
}

TEST(BatchReport, ParetoFrontMatchesSolo) {
  const system::Mlcd mlcd;
  const Workload workload = parse_workload(R"({
    "jobs": [{"name": "front", "model": "resnet", "method": "pareto",
              "deadline_hours": 24, "seed": 5, "max_nodes": 10}]
  })");
  const BatchReport batch = Scheduler(mlcd, {}).run(workload);
  ASSERT_TRUE(batch.jobs[0].ok);
  const system::DeployResult solo = mlcd.deploy(workload.jobs[0].request);
  ASSERT_TRUE(solo.ok());

  const perf::TrainingPerfModel& perf = mlcd.cloud().perf_model();
  const search::ParetoSearcher searcher(perf);
  const cloud::DeploymentSpace space(mlcd.cloud().catalog(), 10,
                                     cloud::Market::kOnDemand);
  const double samples =
      mlcd.zoo().models()[*mlcd.zoo().find_model("resnet")].samples_to_train;
  const auto batch_front =
      searcher.front_of(batch.jobs[0].report.result, space, samples);
  const auto solo_front =
      searcher.front_of(solo.report().result, space, samples);
  ASSERT_EQ(batch_front.size(), solo_front.size());
  ASSERT_FALSE(batch_front.empty());
  for (std::size_t i = 0; i < batch_front.size(); ++i) {
    EXPECT_EQ(batch_front[i].deployment.type_index,
              solo_front[i].deployment.type_index);
    EXPECT_EQ(batch_front[i].deployment.nodes, solo_front[i].deployment.nodes);
    EXPECT_DOUBLE_EQ(batch_front[i].training_hours,
                     solo_front[i].training_hours);
    EXPECT_DOUBLE_EQ(batch_front[i].training_cost,
                     solo_front[i].training_cost);
  }
}

// ------------------------------------------------------- 32-job stress run

Workload stress_fleet() {
  // 4 tenants x 8 jobs. Tenants deliberately mirror each other's
  // (model, seed) pairs so identical probe prefixes recur fleet-wide,
  // while scenarios and methods vary per job.
  static constexpr const char* kModels[] = {"alexnet", "resnet", "char_rnn"};
  static constexpr const char* kMethods[] = {"heterbo", "heterbo", "conv-bo",
                                             "cherrypick"};
  Workload workload;
  for (int t = 0; t < 4; ++t) {
    for (int j = 0; j < 8; ++j) {
      JobSpec spec;
      spec.tenant = "tenant-" + std::to_string(t);
      spec.name = spec.tenant + "-job-" + std::to_string(j);
      spec.request.model = kModels[j % 3];
      spec.request.search_method = kMethods[j % 4];
      spec.request.seed = static_cast<std::uint64_t>(100 + j);
      spec.request.max_nodes = 10;
      if (j % 2 == 0) {
        spec.request.requirements.deadline_hours = 18.0 + j;
      } else {
        spec.request.requirements.budget_dollars = 150.0 + 25.0 * j;
      }
      workload.jobs.push_back(std::move(spec));
    }
  }
  return workload;
}

TEST(ServiceStress, ThirtyTwoJobsBitIdenticalWithQuotaAndCapacity) {
  const system::Mlcd mlcd;
  const Workload workload = stress_fleet();

  std::vector<std::string> solo;
  solo.reserve(workload.jobs.size());
  for (const JobSpec& spec : workload.jobs) {
    const system::DeployResult result = mlcd.deploy(spec.request);
    ASSERT_TRUE(result.ok()) << spec.name;
    solo.push_back(result.report().to_json());
  }

  for (const int threads : {1, 4}) {
    SchedulerOptions options;
    options.threads = threads;
    options.capacity_nodes = 16;  // forces queueing under contention
    options.tenant_max_jobs = 2;
    const BatchReport report = Scheduler(mlcd, options).run(workload);

    ASSERT_EQ(report.jobs.size(), workload.jobs.size());
    for (std::size_t i = 0; i < solo.size(); ++i) {
      ASSERT_TRUE(report.jobs[i].ok) << report.jobs[i].name;
      // The hard invariant: bit-identical to the solo run — trace,
      // accounting, chosen deployment, every byte.
      ASSERT_EQ(report.jobs[i].report.to_json(), solo[i])
          << "threads=" << threads << " job=" << report.jobs[i].name;
    }

    // Quota and capacity invariants, from observed high-water marks.
    EXPECT_LE(report.peak_tenant_jobs, 2);
    EXPECT_GE(report.peak_tenant_jobs, 1);
    EXPECT_LE(report.peak_capacity_nodes, 16);

    // Cross-job reuse must actually happen: 4 tenants mirror each
    // other's substrates, so at minimum the mirrored jobs' full probe
    // sequences are served from the cache.
    EXPECT_GT(report.total_cache_hits(), 0);
    EXPECT_EQ(report.cache.hits, report.total_cache_hits());

    // Per-tenant constraint safety under contention: the solo-identity
    // proven above already implies it, but assert the user-facing form
    // too — no job exceeded its own scenario bounds.
    for (const JobOutcome& job : report.jobs) {
      EXPECT_TRUE(job.report.result.meets_constraints(job.report.scenario))
          << job.name;
    }

    // Makespan sanity: wall-clock stats exist and capacity stalls (if
    // any) were charged to scheduler time, not to any job's simulated
    // clock (the solo-identity assertions above would have caught that).
    EXPECT_GE(report.makespan_seconds, 0.0);
  }
}

}  // namespace
}  // namespace mlcd::service
