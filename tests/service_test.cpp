// Tests for src/service: workload parsing, the shared probe cache, the
// capacity pool, the multi-tenant scheduler, and the subsystem's hard
// invariant — every job's batch-mode RunReport is bit-identical to the
// solo run of the same JobSpec, at any scheduler thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "journal/journal.hpp"
#include "mlcd/mlcd.hpp"
#include "profiler/fidelity.hpp"
#include "search/pareto.hpp"
#include "search/search_result.hpp"
#include "search/trace_io.hpp"
#include "service/batch_report.hpp"
#include "service/capacity.hpp"
#include "service/chaos.hpp"
#include "service/probe_cache.hpp"
#include "service/scheduler.hpp"
#include "service/workload.hpp"
#include "util/json.hpp"

namespace mlcd::service {
namespace {

// ---------------------------------------------------------------- workload

TEST(Workload, ParsesFullDocument) {
  const Workload w = parse_workload(R"({
    "schema_version": 1,
    "jobs": [
      {"name": "a", "tenant": "acme", "model": "resnet",
       "deadline_hours": 24, "seed": 7, "max_nodes": 10,
       "method": "conv-bo", "use_spot": true, "threads": 2,
       "journal": "a.mlcdj"},
      {"name": "b", "model": "alexnet", "budget_dollars": 120.5}
    ]
  })");
  ASSERT_EQ(w.jobs.size(), 2u);
  const JobSpec& a = w.jobs[0];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.tenant, "acme");
  EXPECT_EQ(a.request.model, "resnet");
  EXPECT_EQ(a.request.search_method, "conv-bo");
  EXPECT_EQ(a.request.seed, 7u);
  EXPECT_EQ(a.request.max_nodes, 10);
  EXPECT_EQ(a.request.threads, 2);
  EXPECT_TRUE(a.request.use_spot);
  EXPECT_EQ(a.request.journal_path, "a.mlcdj");
  ASSERT_TRUE(a.request.requirements.deadline_hours.has_value());
  EXPECT_DOUBLE_EQ(*a.request.requirements.deadline_hours, 24.0);
  EXPECT_FALSE(a.request.requirements.budget_dollars.has_value());
  // Defaults: tenant = name, method = heterbo, seed = 1.
  const JobSpec& b = w.jobs[1];
  EXPECT_EQ(b.tenant, "b");
  EXPECT_EQ(b.request.search_method, "heterbo");
  EXPECT_EQ(b.request.seed, 1u);
  ASSERT_TRUE(b.request.requirements.budget_dollars.has_value());
  EXPECT_DOUBLE_EQ(*b.request.requirements.budget_dollars, 120.5);
}

TEST(Workload, RejectsBadDocuments) {
  EXPECT_THROW(parse_workload("not json"), std::invalid_argument);
  EXPECT_THROW(parse_workload("[]"), std::invalid_argument);
  EXPECT_THROW(parse_workload(R"({"jobs": []})"), std::invalid_argument);
  EXPECT_THROW(parse_workload(R"({"schema_version": 99, "jobs": [
      {"name": "a", "model": "resnet"}]})"),
               std::invalid_argument);
  // Missing / empty name, missing model.
  EXPECT_THROW(parse_workload(R"({"jobs": [{"model": "resnet"}]})"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_workload(R"({"jobs": [{"name": "", "model": "resnet"}]})"),
      std::invalid_argument);
  EXPECT_THROW(parse_workload(R"({"jobs": [{"name": "a"}]})"),
               std::invalid_argument);
  // Duplicate names.
  EXPECT_THROW(parse_workload(R"({"jobs": [
      {"name": "a", "model": "resnet"},
      {"name": "a", "model": "alexnet"}]})"),
               std::invalid_argument);
  // Out-of-range numbers.
  EXPECT_THROW(parse_workload(R"({"jobs": [
      {"name": "a", "model": "resnet", "deadline_hours": -1}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_workload(R"({"jobs": [
      {"name": "a", "model": "resnet", "seed": 1.5}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_workload(R"({"jobs": [
      {"name": "a", "model": "resnet", "max_nodes": 0}]})"),
               std::invalid_argument);
}

TEST(Workload, ParsesSloAndChaos) {
  const Workload w = parse_workload(R"({
    "chaos": {"seed": 42, "lane_crash_rate": 0.1, "revocation_rate": 0.05,
              "probe_loss_rate": 1.0, "stall_rate": 0},
    "jobs": [
      {"name": "a", "model": "resnet", "deadline_hours": 24,
       "slo_deadline_hours": 12, "slo_budget_dollars": 80,
       "slo_max_probes": 9}
    ]
  })");
  EXPECT_EQ(w.chaos.seed, 42u);
  EXPECT_DOUBLE_EQ(w.chaos.lane_crash_rate, 0.1);
  EXPECT_DOUBLE_EQ(w.chaos.revocation_rate, 0.05);
  EXPECT_DOUBLE_EQ(w.chaos.probe_loss_rate, 1.0);
  EXPECT_DOUBLE_EQ(w.chaos.stall_rate, 0.0);
  EXPECT_TRUE(w.chaos.enabled());
  const SloPolicy& slo = w.jobs[0].slo;
  EXPECT_TRUE(slo.enabled());
  EXPECT_DOUBLE_EQ(slo.deadline_hours, 12.0);
  EXPECT_DOUBLE_EQ(slo.budget_dollars, 80.0);
  EXPECT_EQ(slo.max_probes, 9);
  // Absent => SLO disabled, fault-free chaos environment.
  const Workload plain =
      parse_workload(R"({"jobs": [{"name": "a", "model": "resnet"}]})");
  EXPECT_FALSE(plain.chaos.enabled());
  EXPECT_FALSE(plain.jobs[0].slo.enabled());
}

TEST(Workload, RejectsBadSloAndChaos) {
  const auto reject = [](const std::string& doc) {
    EXPECT_THROW(parse_workload(doc), std::invalid_argument) << doc;
  };
  // SLO numbers share the dollars/hours contract: finite, > 0.
  reject(R"({"jobs": [{"name": "a", "model": "resnet",
             "slo_deadline_hours": -1}]})");
  reject(R"({"jobs": [{"name": "a", "model": "resnet",
             "slo_budget_dollars": 0}]})");
  reject(R"({"jobs": [{"name": "a", "model": "resnet",
             "slo_deadline_hours": 1e999}]})");  // non-finite after strtod
  reject(R"({"jobs": [{"name": "a", "model": "resnet",
             "slo_max_probes": 0}]})");
  reject(R"({"jobs": [{"name": "a", "model": "resnet",
             "slo_max_probes": 2.5}]})");
  // Chaos: object with finite rates in [0, 1], non-negative integer seed.
  reject(R"({"chaos": 3, "jobs": [{"name": "a", "model": "resnet"}]})");
  reject(R"({"chaos": {"lane_crash_rate": 1.5},
             "jobs": [{"name": "a", "model": "resnet"}]})");
  reject(R"({"chaos": {"revocation_rate": -0.1},
             "jobs": [{"name": "a", "model": "resnet"}]})");
  reject(R"({"chaos": {"stall_rate": 1e999},
             "jobs": [{"name": "a", "model": "resnet"}]})");
  reject(R"({"chaos": {"seed": -1},
             "jobs": [{"name": "a", "model": "resnet"}]})");
  reject(R"({"chaos": {"seed": 1.5},
             "jobs": [{"name": "a", "model": "resnet"}]})");
}

TEST(Workload, RejectsTheRetiredFailureRateAlias) {
  // The scalar failure_rate alias was removed with the ProbeRequest
  // redesign; an old workload document must fail loudly with migration
  // guidance, not silently drop a chaos knob.
  try {
    parse_workload(R"({"jobs": [
        {"name": "a", "model": "resnet", "failure_rate": 0.2}]})");
    FAIL() << "retired 'failure_rate' key was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'failure_rate' was removed"), std::string::npos)
        << what;
    EXPECT_NE(what.find("launch_failure_per_node"), std::string::npos)
        << what;
  }
}

TEST(Workload, ParsesTheFidelityLadder) {
  const Workload w = parse_workload(R"({
    "jobs": [
      {"name": "a", "model": "resnet", "deadline_hours": 24,
       "fidelity_rungs": "0.5:1,0.25:2", "fidelity_max_bias": 0.2,
       "fidelity_max_noise": 0.04},
      {"name": "b", "model": "resnet", "deadline_hours": 24}
    ]
  })");
  const profiler::FidelityOptions& fid =
      w.jobs[0].request.profiler_options.fidelity;
  ASSERT_TRUE(fid.enabled());
  ASSERT_EQ(fid.rungs.size(), 2u);
  EXPECT_DOUBLE_EQ(fid.rungs[0].sample_fraction, 0.5);
  EXPECT_EQ(fid.rungs[0].iteration_tier, 1);
  EXPECT_DOUBLE_EQ(fid.rungs[1].sample_fraction, 0.25);
  EXPECT_EQ(fid.rungs[1].iteration_tier, 2);
  EXPECT_DOUBLE_EQ(fid.max_speed_bias, 0.2);
  EXPECT_DOUBLE_EQ(fid.max_extra_noise, 0.04);
  // Absent => ladder disabled (the single-fidelity engine).
  EXPECT_FALSE(w.jobs[1].request.profiler_options.fidelity.enabled());

  // Malformed ladders are rejected with the job named.
  try {
    parse_workload(R"({"jobs": [
        {"name": "a", "model": "resnet", "fidelity_rungs": "1:0"}]})");
    FAIL() << "full-fidelity rung was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fidelity ladder"), std::string::npos) << what;
    EXPECT_NE(what.find("a"), std::string::npos) << what;
  }
  EXPECT_THROW(parse_workload(R"({"jobs": [
      {"name": "a", "model": "resnet", "fidelity_max_bias": 1.5}]})"),
               std::invalid_argument);
}

TEST(Workload, LoadReadsFileAndReportsMissing) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mlcd_wl_test.json")
          .string();
  {
    std::ofstream f(path);
    f << R"({"jobs": [{"name": "a", "model": "resnet"}]})";
  }
  const Workload w = load_workload(path);
  EXPECT_EQ(w.jobs.size(), 1u);
  std::remove(path.c_str());
  EXPECT_THROW(load_workload(path), std::runtime_error);
}

// -------------------------------------------------------------- ProbeCache

profiler::ProbeKey key_of(std::uint64_t substrate, std::uint64_t history,
                          int index, std::size_t type, int nodes) {
  profiler::ProbeKey key;
  key.substrate = substrate;
  key.history = history;
  key.probe_index = index;
  key.type_index = type;
  key.nodes = nodes;
  return key;
}

TEST(ProbeCache, MissInsertHit) {
  ProbeCache cache;
  const profiler::ProbeKey key = key_of(1, 2, 3, 4, 5);
  EXPECT_FALSE(cache.lookup(key).has_value());

  journal::ProbeRecord record;
  record.type_index = 4;
  record.nodes = 5;
  record.measured_speed = 123.5;
  EXPECT_TRUE(cache.insert(key, record));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->nodes, 5);
  EXPECT_DOUBLE_EQ(hit->measured_speed, 123.5);

  // Any key component distinguishes entries.
  EXPECT_FALSE(cache.lookup(key_of(9, 2, 3, 4, 5)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(1, 9, 3, 4, 5)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(1, 2, 9, 4, 5)).has_value());

  const ProbeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 5);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ProbeCache, FirstWriterWins) {
  ProbeCache cache;
  const profiler::ProbeKey key = key_of(1, 2, 3, 4, 5);
  journal::ProbeRecord first;
  first.measured_speed = 1.0;
  journal::ProbeRecord second;
  second.measured_speed = 2.0;
  EXPECT_TRUE(cache.insert(key, first));
  EXPECT_FALSE(cache.insert(key, second));
  EXPECT_DOUBLE_EQ(cache.lookup(key)->measured_speed, 1.0);
  EXPECT_EQ(cache.stats().rejected, 1);
}

// ------------------------------------------------------------ CapacityPool

TEST(CapacityPool, UnlimitedTracksOccupancyOnly) {
  CapacityPool pool(0);
  const auto a = pool.acquire(100);
  EXPECT_FALSE(a.stalled);
  EXPECT_EQ(pool.in_use(), 100);
  pool.acquire(50);
  EXPECT_EQ(pool.peak_in_use(), 150);
  pool.release(100);
  pool.release(50);
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.stalls(), 0);
}

TEST(CapacityPool, RejectsImpossibleRequests) {
  CapacityPool pool(10);
  EXPECT_THROW(pool.acquire(0), std::invalid_argument);
  EXPECT_THROW(pool.acquire(11), std::invalid_argument);
}

TEST(CapacityPool, TryAcquireNeverBlocksAndNeverOvertakes) {
  CapacityPool pool(10);
  EXPECT_THROW(pool.try_acquire(0), std::invalid_argument);
  EXPECT_THROW(pool.try_acquire(11), std::invalid_argument);
  EXPECT_TRUE(pool.try_acquire(6));
  EXPECT_FALSE(pool.try_acquire(5));  // would exceed: refused, not queued
  EXPECT_EQ(pool.in_use(), 6);
  EXPECT_TRUE(pool.try_acquire(4));
  pool.release(6);
  pool.release(4);
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.peak_in_use(), 10);
  EXPECT_EQ(pool.stalls(), 0);  // try_acquire never stalls

  // A blocked acquire() holds the FIFO head: try_acquire must refuse
  // even a fitting request rather than overtake it.
  EXPECT_FALSE(pool.acquire(8).stalled);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    pool.acquire(5);
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pool.try_acquire(1));  // fits, but the waiter is ahead
  pool.release(8);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  pool.release(5);

  CapacityPool unlimited(0);
  EXPECT_TRUE(unlimited.try_acquire(1000));
  EXPECT_EQ(unlimited.in_use(), 1000);
  unlimited.release(1000);
}

TEST(CapacityPool, QueuesUntilCapacityFrees) {
  CapacityPool pool(10);
  EXPECT_FALSE(pool.acquire(8).stalled);
  EXPECT_EQ(pool.in_use(), 8);

  std::atomic<bool> admitted{false};
  CapacityPool::Admission waiter_admission;
  std::thread waiter([&] {
    waiter_admission = pool.acquire(5);  // cannot fit beside the 8
    admitted.store(true);
  });
  // The waiter must be stalled, not admitted.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(pool.in_use(), 8);

  pool.release(8);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_TRUE(waiter_admission.stalled);
  EXPECT_GT(waiter_admission.wait_seconds, 0.0);
  EXPECT_EQ(pool.in_use(), 5);
  EXPECT_EQ(pool.peak_in_use(), 8);
  EXPECT_EQ(pool.stalls(), 1);
  EXPECT_GT(pool.stall_seconds(), 0.0);
  pool.release(5);
}

TEST(CapacityPool, RevokeReclaimsLikeReleaseAndCounts) {
  CapacityPool pool(10);
  EXPECT_TRUE(pool.try_acquire(8));
  pool.revoke(8);
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.revocations(), 1);
  EXPECT_EQ(pool.revoked_nodes(), 8);
  // Reserve-safe: occupancy never underflows even if a revocation races
  // a release of the same grant — and the ledger only counts nodes the
  // revoke actually reclaimed, so the raced revoke is a no-op in the
  // stats too (the deeper edges live in tests/durable_batch_test.cpp).
  EXPECT_TRUE(pool.try_acquire(3));
  pool.release(3);
  pool.revoke(3);
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.revocations(), 1);
  EXPECT_EQ(pool.revoked_nodes(), 8);

  // A blocked acquire() is woken by revoke() exactly as by release().
  EXPECT_FALSE(pool.acquire(8).stalled);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    pool.acquire(5);
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  pool.revoke(8);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(pool.in_use(), 5);
  pool.release(5);
}

// Wake-after-release audit (see the release() doc comment): release
// notifies *all* queued tickets, but the `serving_ == ticket` predicate
// admits them strictly in ticket order — and try_acquire keeps refusing
// while any ticket is queued, so it can never overtake either. The same
// holds when the capacity returns via revoke().
TEST(CapacityPool, FifoWakeOrderSurvivesReleaseAndRevoke) {
  for (const bool via_revoke : {false, true}) {
    CapacityPool pool(10);
    EXPECT_FALSE(pool.acquire(10).stalled);

    std::mutex order_mutex;
    std::vector<int> order;
    std::atomic<int> queued{0};
    const auto enqueue = [&](int id, int nodes) {
      return std::thread([&, id, nodes] {
        ++queued;
        pool.acquire(nodes);
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(id);
      });
    };
    // Tickets are issued in acquire() call order; stagger the starts so
    // that order is deterministic for the test.
    std::thread first = enqueue(1, 6);
    while (queued.load() < 1) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::thread second = enqueue(2, 5);
    while (queued.load() < 2) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // Freeing 5 nodes would fit ticket 2 (5 + 5 <= 10) but not the
    // head's 6: nobody may be admitted, and try_acquire must refuse a
    // fitting request too rather than overtake the queue.
    if (via_revoke) {
      pool.revoke(5);
    } else {
      pool.release(5);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      EXPECT_TRUE(order.empty()) << "via_revoke=" << via_revoke;
    }
    EXPECT_FALSE(pool.try_acquire(1));

    // Freeing the rest admits ticket 1 alone (6 + 5 still exceeds the
    // pool, so ticket 2 keeps waiting behind it)...
    if (via_revoke) {
      pool.revoke(5);
    } else {
      pool.release(5);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      ASSERT_EQ(order.size(), 1u) << "via_revoke=" << via_revoke;
      EXPECT_EQ(order[0], 1);
    }
    // ... and ticket 1's own release finally admits ticket 2.
    pool.release(6);
    first.join();
    second.join();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[1], 2) << "via_revoke=" << via_revoke;
    pool.release(5);
    EXPECT_EQ(pool.in_use(), 0);
  }
}

// --------------------------------------------------------------- Scheduler

Workload small_fleet() {
  // Two tenants sharing (model, seed) pairs so the probe cache has
  // cross-job identical prefixes to reuse; scenarios differ per job.
  return parse_workload(R"({
    "jobs": [
      {"name": "acme-resnet", "tenant": "acme", "model": "resnet",
       "deadline_hours": 24, "seed": 7, "max_nodes": 10},
      {"name": "beta-resnet", "tenant": "beta", "model": "resnet",
       "deadline_hours": 30, "seed": 7, "max_nodes": 10},
      {"name": "acme-alexnet", "tenant": "acme", "model": "alexnet",
       "budget_dollars": 150, "seed": 9, "max_nodes": 10},
      {"name": "beta-alexnet", "tenant": "beta", "model": "alexnet",
       "budget_dollars": 200, "seed": 9, "max_nodes": 10}
    ]
  })");
}

TEST(Scheduler, RejectsBadOptionsAndWorkloads) {
  const system::Mlcd mlcd;
  SchedulerOptions negative;
  negative.capacity_nodes = -1;
  EXPECT_THROW(Scheduler(mlcd, negative), std::invalid_argument);
  negative.capacity_nodes = 0;
  negative.tenant_max_jobs = -1;
  EXPECT_THROW(Scheduler(mlcd, negative), std::invalid_argument);

  const Scheduler scheduler(mlcd, {});
  EXPECT_THROW(scheduler.run(Workload{}), std::invalid_argument);

  // Admission control: a job that could probe beyond the whole pool is
  // refused up front (it would wedge the FIFO capacity queue).
  SchedulerOptions tight;
  tight.capacity_nodes = 5;
  const Scheduler guarded(mlcd, tight);
  EXPECT_THROW(guarded.run(small_fleet()), std::invalid_argument);
}

TEST(Scheduler, PerJobFailuresDoNotAbortTheBatch) {
  const system::Mlcd mlcd;
  const Workload workload = parse_workload(R"({
    "jobs": [
      {"name": "good", "model": "resnet", "deadline_hours": 24, "seed": 3,
       "max_nodes": 8},
      {"name": "bad-model", "model": "no-such-model"},
      {"name": "bad-method", "model": "resnet", "method": "no-such"}
    ]
  })");
  const Scheduler scheduler(mlcd, {});
  const BatchReport report = scheduler.run(workload);
  ASSERT_EQ(report.jobs.size(), 3u);
  EXPECT_TRUE(report.jobs[0].ok);
  EXPECT_FALSE(report.jobs[1].ok);
  EXPECT_EQ(report.jobs[1].error_code, "unknown_model");
  EXPECT_FALSE(report.jobs[2].ok);
  EXPECT_EQ(report.jobs[2].error_code, "unknown_method");
  EXPECT_EQ(report.succeeded(), 1);
}

TEST(Scheduler, SharesProbesAndBillsFirstTenantOnly) {
  const system::Mlcd mlcd;
  SchedulerOptions options;  // serial: deterministic claim order
  const Scheduler scheduler(mlcd, options);
  const BatchReport report = scheduler.run(small_fleet());
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const JobOutcome& job : report.jobs) ASSERT_TRUE(job.ok) << job.name;

  // Serial order runs acme-resnet first: it publishes, beta-resnet (same
  // model+seed, different deadline) reuses the shared prefix.
  EXPECT_EQ(report.jobs[0].stats.cache_hits, 0);
  EXPECT_GT(report.jobs[0].stats.cache_publishes, 0);
  EXPECT_GT(report.jobs[1].stats.cache_hits, 0);
  EXPECT_GT(report.jobs[1].stats.reused_probe_cost, 0.0);
  EXPECT_GT(report.total_cache_hits(), 0);
  EXPECT_GT(report.cache.hits, 0);
  EXPECT_EQ(report.cache.hits, report.total_cache_hits());
  // Fleet-level: reused probes were measured once; the cache never holds
  // more records than were published.
  EXPECT_GT(report.cache.inserts, 0);
  EXPECT_EQ(report.cache.size, static_cast<std::size_t>(report.cache.inserts));
}

TEST(Scheduler, NoShareModeStillProducesIdenticalReports) {
  const system::Mlcd mlcd;
  SchedulerOptions shared;
  SchedulerOptions isolated;
  isolated.share_probes = false;
  const BatchReport a = Scheduler(mlcd, shared).run(small_fleet());
  const BatchReport b = Scheduler(mlcd, isolated).run(small_fleet());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(b.total_cache_hits(), 0);
  EXPECT_EQ(b.cache.lookups, 0);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].report.to_json(), b.jobs[i].report.to_json())
        << a.jobs[i].name;
  }
}

// The tentpole invariant, small scale: batch == solo, bytes, at several
// scheduler thread counts. (The 32-job version below stresses it.)
TEST(Scheduler, BatchReportsAreBitIdenticalToSoloRuns) {
  const system::Mlcd mlcd;
  const Workload workload = small_fleet();

  std::vector<std::string> solo;
  for (const JobSpec& spec : workload.jobs) {
    const system::DeployResult result = mlcd.deploy(spec.request);
    ASSERT_TRUE(result.ok()) << spec.name;
    solo.push_back(result.report().to_json());
  }

  for (const int threads : {1, 4}) {
    SchedulerOptions options;
    options.threads = threads;
    options.capacity_nodes = 24;
    options.tenant_max_jobs = 1;
    const BatchReport report = Scheduler(mlcd, options).run(workload);
    ASSERT_EQ(report.jobs.size(), solo.size());
    for (std::size_t i = 0; i < solo.size(); ++i) {
      ASSERT_TRUE(report.jobs[i].ok);
      EXPECT_EQ(report.jobs[i].report.to_json(), solo[i])
          << "threads=" << threads << " job=" << report.jobs[i].name;
    }
    EXPECT_LE(report.peak_tenant_jobs, 1);
    EXPECT_LE(report.peak_capacity_nodes, 24);
  }
}

// A ladder-enabled job rides the batch scheduler unchanged: its report
// stays bit-identical to the solo run, its fidelity counters land in the
// per-job stats, and a ladder-free neighbor in the same batch reports
// zero reduced-rung probes.
TEST(Scheduler, MixedFidelityJobsMatchSoloAndCountRungs) {
  const system::Mlcd mlcd;
  const Workload workload = parse_workload(R"({
    "jobs": [
      {"name": "ladder", "model": "resnet", "budget_dollars": 150,
       "seed": 7, "max_nodes": 8, "instance_types": ["c5.xlarge",
       "c5.4xlarge"], "fidelity_rungs": "0.5:1,0.25:2"},
      {"name": "plain", "model": "resnet", "budget_dollars": 150,
       "seed": 7, "max_nodes": 8, "instance_types": ["c5.xlarge",
       "c5.4xlarge"]}
    ]
  })");

  std::vector<std::string> solo;
  for (const JobSpec& spec : workload.jobs) {
    const system::DeployResult result = mlcd.deploy(spec.request);
    ASSERT_TRUE(result.ok()) << spec.name;
    solo.push_back(result.report().to_json());
  }

  const BatchReport report = Scheduler(mlcd, {}).run(workload);
  ASSERT_EQ(report.jobs.size(), 2u);
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    ASSERT_TRUE(report.jobs[i].ok) << report.jobs[i].name;
    EXPECT_EQ(report.jobs[i].report.to_json(), solo[i])
        << report.jobs[i].name;
  }
  // Same model+seed, but the ladder job's probe sequence diverges at the
  // first reduced-rung probe — the shared cache must not leak anything
  // across the fidelity boundary.
  EXPECT_GT(report.jobs[0].stats.low_fidelity_probes, 0);
  EXPECT_GT(report.jobs[0].stats.full_fidelity_probes, 0);
  EXPECT_EQ(report.jobs[1].stats.low_fidelity_probes, 0);
  EXPECT_GT(report.jobs[1].stats.full_fidelity_probes, 0);
  EXPECT_EQ(report.total_low_fidelity_probes(),
            report.jobs[0].stats.low_fidelity_probes);

  // The fleet JSON carries the v4 fidelity totals.
  const util::JsonValue doc = util::parse_json(report.to_json());
  EXPECT_EQ(doc.at("fidelity").at("low_fidelity_probes").as_number(),
            report.total_low_fidelity_probes());
}

// The probe-granularity tentpole's observable: under real capacity
// pressure, sessions *park* — they leave their lane mid-search and
// resume later — instead of blocking the lane the way job-per-lane mode
// does, and every RunReport still comes out bit-identical between the
// two modes. Exhaustive searchers keep all lanes issuing live probes of
// 1..8 nodes back-to-back, so an 8-node pool is persistently contended.
TEST(Scheduler, ParksSessionsInsteadOfBlockingLanes) {
  const system::Mlcd mlcd;
  const Workload workload = parse_workload(R"({
    "jobs": [
      {"name": "a", "tenant": "t1", "model": "resnet",
       "deadline_hours": 24, "seed": 11, "max_nodes": 8,
       "method": "exhaustive"},
      {"name": "b", "tenant": "t2", "model": "resnet",
       "deadline_hours": 24, "seed": 12, "max_nodes": 8,
       "method": "exhaustive"},
      {"name": "c", "tenant": "t3", "model": "alexnet",
       "deadline_hours": 24, "seed": 13, "max_nodes": 8,
       "method": "exhaustive"},
      {"name": "d", "tenant": "t4", "model": "alexnet",
       "deadline_hours": 24, "seed": 14, "max_nodes": 8,
       "method": "exhaustive"}
    ]
  })");
  SchedulerOptions parked_mode;
  parked_mode.threads = 4;
  parked_mode.capacity_nodes = 8;
  parked_mode.share_probes = false;  // every probe live: maximal pressure
  SchedulerOptions blocking_mode = parked_mode;
  blocking_mode.probe_granularity = false;

  const BatchReport parked = Scheduler(mlcd, parked_mode).run(workload);
  const BatchReport blocked = Scheduler(mlcd, blocking_mode).run(workload);

  ASSERT_EQ(parked.jobs.size(), 4u);
  ASSERT_EQ(blocked.jobs.size(), 4u);
  EXPECT_TRUE(parked.probe_granularity);
  EXPECT_FALSE(blocked.probe_granularity);

  // Sessions parked (lanes were freed); job-per-lane never parks.
  EXPECT_GT(parked.total_session_parks(), 0);
  EXPECT_EQ(blocked.total_session_parks(), 0);
  EXPECT_LE(parked.peak_capacity_nodes, 8);
  EXPECT_LE(blocked.peak_capacity_nodes, 8);

  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(parked.jobs[i].ok) << parked.jobs[i].name;
    ASSERT_TRUE(blocked.jobs[i].ok) << blocked.jobs[i].name;
    // The mode is invisible to the job: reports are bit-identical.
    EXPECT_EQ(parked.jobs[i].report.to_json(),
              blocked.jobs[i].report.to_json())
        << parked.jobs[i].name;
    const JobStats& stats = parked.jobs[i].stats;
    EXPECT_EQ(stats.capacity_stalls, stats.session_parks);
    // Parked time accrues off-lane: lane occupancy never exceeds the
    // job's wall time, and parked jobs spent real time off their lane.
    EXPECT_LE(stats.lane_busy_seconds, stats.run_seconds + 1e-6);
    if (stats.session_parks > 0) {
      EXPECT_GT(stats.capacity_stall_seconds, 0.0);
    }
  }
}

// -------------------------------------------- service-level chaos & SLO

TEST(ChaosInjector, RollsAreDeterministicAndSeeded) {
  ChaosOptions options;
  options.seed = 7;
  options.lane_crash_rate = 0.5;
  ChaosOptions reseeded = options;
  reseeded.seed = 8;
  const ChaosInjector a(options);
  const ChaosInjector b(options);
  const ChaosInjector c(reseeded);
  const std::uint64_t key = ChaosInjector::job_key("job-a");
  const std::uint64_t other = ChaosInjector::job_key("job-b");
  int faults = 0;
  int divergences = 0;
  for (int step = 0; step < 128; ++step) {
    const ChaosFault fault = a.roll(key, step);
    // Pure function of (seed, job, step): independent instances agree.
    EXPECT_EQ(fault, b.roll(key, step)) << step;
    EXPECT_TRUE(fault == ChaosFault::kNone ||
                fault == ChaosFault::kLaneCrash);
    if (fault != ChaosFault::kNone) ++faults;
    if (fault != c.roll(key, step) || fault != a.roll(other, step)) {
      ++divergences;
    }
  }
  // Rate 0.5 fires often but not always; other seeds / jobs decorrelate.
  EXPECT_GT(faults, 16);
  EXPECT_LT(faults, 112);
  EXPECT_GT(divergences, 0);

  // Re-admission backoff is positive, capped, and deterministic.
  const double backoff = a.revocation_backoff_hours(key, 0);
  EXPECT_GT(backoff, 0.0);
  EXPECT_DOUBLE_EQ(backoff, b.revocation_backoff_hours(key, 0));

  // A fault-free configuration never rolls anything.
  const ChaosInjector quiet(ChaosOptions{});
  for (int step = 0; step < 32; ++step) {
    EXPECT_EQ(quiet.roll(key, step), ChaosFault::kNone);
  }

  // Rates outside [0, 1] are rejected up front.
  ChaosOptions bad;
  bad.probe_loss_rate = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.probe_loss_rate = -0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

/// Seed for the chaos sweep: CI varies it (MLCD_CHAOS_SEED) to prove the
/// recovery machinery is not tuned to one lucky fault schedule.
std::uint64_t chaos_seed_from_env() {
  const char* env = std::getenv("MLCD_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 20260808ull;
  return std::strtoull(env, nullptr, 10);
}

/// Everything except the replay bookkeeping must survive a lane crash:
/// the re-staged session's trace carries the same probes, measurements,
/// and cumulative accounting as the solo run — only the `replayed`
/// flags (and the replayed_probes counter) record that a crash happened.
void expect_equal_modulo_replay(const search::SearchResult& got,
                                const search::SearchResult& solo) {
  ASSERT_EQ(got.trace.size(), solo.trace.size());
  for (std::size_t i = 0; i < got.trace.size(); ++i) {
    const search::ProbeStep& g = got.trace[i];
    const search::ProbeStep& s = solo.trace[i];
    EXPECT_EQ(g.deployment.type_index, s.deployment.type_index) << i;
    EXPECT_EQ(g.deployment.nodes, s.deployment.nodes) << i;
    EXPECT_EQ(g.failed, s.failed) << i;
    EXPECT_EQ(g.feasible, s.feasible) << i;
    EXPECT_DOUBLE_EQ(g.measured_speed, s.measured_speed) << i;
    EXPECT_DOUBLE_EQ(g.profile_hours, s.profile_hours) << i;
    EXPECT_DOUBLE_EQ(g.profile_cost, s.profile_cost) << i;
    EXPECT_DOUBLE_EQ(g.cum_profile_hours, s.cum_profile_hours) << i;
    EXPECT_DOUBLE_EQ(g.cum_profile_cost, s.cum_profile_cost) << i;
    EXPECT_EQ(g.reason, s.reason) << i;
    EXPECT_EQ(g.attempts, s.attempts) << i;
  }
  EXPECT_EQ(got.found, solo.found);
  EXPECT_EQ(got.best.type_index, solo.best.type_index);
  EXPECT_EQ(got.best.nodes, solo.best.nodes);
  EXPECT_DOUBLE_EQ(got.profile_hours, solo.profile_hours);
  EXPECT_DOUBLE_EQ(got.profile_cost, solo.profile_cost);
  EXPECT_DOUBLE_EQ(got.training_hours, solo.training_hours);
  EXPECT_DOUBLE_EQ(got.training_cost, solo.training_cost);
}

Workload one_job(const std::string& chaos) {
  return parse_workload(R"({
    "chaos": )" + chaos + R"(,
    "jobs": [{"name": "solo", "model": "resnet", "deadline_hours": 24,
              "seed": 7, "max_nodes": 10}]
  })");
}

// probe_loss_rate = 1: every live result envelope is dropped after
// execution and recovered from the write-ahead record image. The
// recovery is invisible — the report is byte-identical to the solo run,
// nothing was re-executed, nothing marked replayed.
TEST(ChaosService, LostResultsRecoverBitIdenticallyFromRecordImages) {
  const system::Mlcd mlcd;
  const Workload workload =
      one_job(R"({"seed": 5, "probe_loss_rate": 1.0})");
  const std::string solo =
      mlcd.deploy(workload.jobs[0].request).report().to_json();
  const BatchReport report = Scheduler(mlcd, {}).run(workload);
  ASSERT_TRUE(report.jobs[0].ok);
  EXPECT_EQ(report.jobs[0].report.to_json(), solo);
  const JobStats& stats = report.jobs[0].stats;
  EXPECT_EQ(stats.probe_losses,
            static_cast<int>(report.jobs[0].report.result.trace.size()));
  EXPECT_EQ(report.jobs[0].report.result.replayed_probes, 0);
  EXPECT_EQ(report.total_probe_losses(), stats.probe_losses);
}

// stall_rate = 1: the session loses a lane turn at every step boundary
// (at most once per step — stalls never re-roll), and none of it shows
// in the job's own accounting.
TEST(ChaosService, SchedulerStallsOnlyCostLaneTurns) {
  const system::Mlcd mlcd;
  const Workload workload = one_job(R"({"seed": 5, "stall_rate": 1.0})");
  const std::string solo =
      mlcd.deploy(workload.jobs[0].request).report().to_json();
  const BatchReport report = Scheduler(mlcd, {}).run(workload);
  ASSERT_TRUE(report.jobs[0].ok);
  EXPECT_EQ(report.jobs[0].report.to_json(), solo);
  EXPECT_EQ(report.jobs[0].stats.scheduler_stalls,
            static_cast<int>(report.jobs[0].report.result.trace.size()));
}

// revocation_rate = 1: every capacity grant is spot-revoked as its probe
// launches. The session parks, re-enters through the FIFO, and the probe
// runs on re-admission; the backoff is billed at the service level while
// the job's own clock and meter stay solo-identical.
TEST(ChaosService, RevocationsParkAndElasticallyReadmit) {
  const system::Mlcd mlcd;
  const Workload workload =
      one_job(R"({"seed": 5, "revocation_rate": 1.0})");
  const std::string solo =
      mlcd.deploy(workload.jobs[0].request).report().to_json();
  for (const int capacity : {0, 10}) {  // unlimited and tight pools
    SchedulerOptions options;
    options.capacity_nodes = capacity;
    const BatchReport report = Scheduler(mlcd, options).run(workload);
    ASSERT_TRUE(report.jobs[0].ok) << "capacity=" << capacity;
    EXPECT_EQ(report.jobs[0].report.to_json(), solo);
    const JobStats& stats = report.jobs[0].stats;
    const int live_probes =
        static_cast<int>(report.jobs[0].report.result.trace.size());
    EXPECT_EQ(stats.grant_revocations, live_probes);
    EXPECT_GE(stats.session_parks, stats.grant_revocations);
    EXPECT_GT(stats.chaos_backoff_hours, 0.0);
    EXPECT_EQ(report.total_revocations(), stats.grant_revocations);
  }
}

// Lane crashes on a journaled job: the session is re-staged through its
// own write-ahead journal — the same path a process crash resumes from.
// Zero probes are re-executed: the journal holds exactly one record per
// trace step (a re-execution would have appended duplicates), and every
// measurement and cumulative dollar matches the solo run.
TEST(ChaosService, LaneCrashRestagesFromJournalWithZeroReExecution) {
  const system::Mlcd mlcd;
  const std::string journal_path =
      (std::filesystem::temp_directory_path() / "mlcd_chaos_crash.mlcdj")
          .string();
  std::remove(journal_path.c_str());
  Workload workload = one_job(R"({"seed": 3, "lane_crash_rate": 0.3})");
  workload.jobs[0].request.journal_path = journal_path;

  system::JobRequest solo_request = workload.jobs[0].request;
  solo_request.journal_path.clear();  // journals are trace-neutral
  const system::DeployResult solo = mlcd.deploy(solo_request);
  ASSERT_TRUE(solo.ok());

  const BatchReport report = Scheduler(mlcd, {}).run(workload);
  ASSERT_TRUE(report.jobs[0].ok);
  EXPECT_GT(report.jobs[0].stats.lane_crashes, 0);
  EXPECT_GT(report.jobs[0].report.result.replayed_probes, 0);
  expect_equal_modulo_replay(report.jobs[0].report.result,
                             solo.report().result);

  const journal::JournalContents contents =
      journal::read_journal(journal_path);
  EXPECT_EQ(contents.probes.size(),
            report.jobs[0].report.result.trace.size());
  std::remove(journal_path.c_str());
}

// Lane crashes on a journal-less job: the replacement session is rebuilt
// from the crashed session's in-memory ask/tell state (replay-record
// images), with the same zero-re-execution guarantee.
TEST(ChaosService, LaneCrashRestagesFromAskTellStateWithoutJournal) {
  const system::Mlcd mlcd;
  const Workload workload =
      one_job(R"({"seed": 3, "lane_crash_rate": 0.3})");
  const system::DeployResult solo = mlcd.deploy(workload.jobs[0].request);
  ASSERT_TRUE(solo.ok());
  const BatchReport report = Scheduler(mlcd, {}).run(workload);
  ASSERT_TRUE(report.jobs[0].ok);
  EXPECT_GT(report.jobs[0].stats.lane_crashes, 0);
  EXPECT_GT(report.jobs[0].report.result.replayed_probes, 0);
  expect_equal_modulo_replay(report.jobs[0].report.result,
                             solo.report().result);
}

TEST(ChaosService, SloBreachFinalizesWithBestKnownDeployment) {
  const system::Mlcd mlcd;
  const Workload workload = parse_workload(R"({
    "jobs": [
      {"name": "capped", "model": "resnet", "deadline_hours": 24,
       "seed": 7, "max_nodes": 10, "slo_max_probes": 4},
      {"name": "free", "model": "resnet", "deadline_hours": 24,
       "seed": 7, "max_nodes": 10}
    ]
  })");
  const std::string solo =
      mlcd.deploy(workload.jobs[1].request).report().to_json();
  SchedulerOptions options;
  options.share_probes = false;  // the capped job must stop on its own
  const BatchReport report = Scheduler(mlcd, options).run(workload);

  // The breach is not an error: the session was finalized through the
  // safe-mode path with the best deployment known at the cutoff.
  const JobOutcome& capped = report.jobs[0];
  ASSERT_TRUE(capped.ok);
  EXPECT_EQ(capped.slo, SloBreach::kProbes);
  EXPECT_EQ(capped.report.result.trace.size(), 4u);
  EXPECT_TRUE(capped.report.result.found);
  EXPECT_EQ(report.slo_exceeded_count(), 1);

  // ... and it never leaks onto its neighbours: the uncapped job is
  // still bit-identical to its solo run.
  ASSERT_TRUE(report.jobs[1].ok);
  EXPECT_EQ(report.jobs[1].slo, SloBreach::kNone);
  EXPECT_EQ(report.jobs[1].report.to_json(), solo);
}

TEST(ChaosService, SloDeadlineAndBudgetBreachesAreTyped) {
  const system::Mlcd mlcd;
  const Workload workload = parse_workload(R"({
    "jobs": [
      {"name": "late", "model": "resnet", "deadline_hours": 24,
       "seed": 7, "max_nodes": 10, "slo_deadline_hours": 0.001},
      {"name": "broke", "model": "resnet", "deadline_hours": 24,
       "seed": 7, "max_nodes": 10, "slo_budget_dollars": 0.001}
    ]
  })");
  SchedulerOptions options;
  options.share_probes = false;
  const BatchReport report = Scheduler(mlcd, options).run(workload);
  ASSERT_TRUE(report.jobs[0].ok);
  EXPECT_EQ(report.jobs[0].slo, SloBreach::kDeadline);
  EXPECT_EQ(report.jobs[0].report.result.trace.size(), 1u);
  ASSERT_TRUE(report.jobs[1].ok);
  EXPECT_EQ(report.jobs[1].slo, SloBreach::kBudget);
  EXPECT_EQ(report.jobs[1].report.result.trace.size(), 1u);
  EXPECT_EQ(report.slo_exceeded_count(), 2);
}

TEST(ChaosService, ChaosAndSloRequireProbeGranularity) {
  const system::Mlcd mlcd;
  SchedulerOptions legacy;
  legacy.probe_granularity = false;
  const Scheduler scheduler(mlcd, legacy);
  EXPECT_THROW(
      scheduler.run(one_job(R"({"seed": 1, "stall_rate": 0.5})")),
      std::invalid_argument);
  const Workload slo = parse_workload(R"({
    "jobs": [{"name": "a", "model": "resnet", "deadline_hours": 24,
              "slo_max_probes": 4}]
  })");
  EXPECT_THROW(scheduler.run(slo), std::invalid_argument);
  // A fault-free, SLO-free workload still runs in legacy mode.
  const BatchReport report = scheduler.run(small_fleet());
  EXPECT_EQ(report.succeeded(), 4);
}

// ------------------------------------------------- seeded chaos sweep
//
// The tentpole's soak: a multi-tenant fleet under all four fault kinds
// at once, driven by a seed CI rotates via MLCD_CHAOS_SEED. Asserts the
// full recovery contract: nobody fails, reserve/quota/budget invariants
// hold, jobs untouched by crashes stay bit-identical to their solo
// runs, crash-restaged jobs re-execute zero probes, and the whole
// chaotic batch is deterministic across thread counts and repeats.

Workload chaos_fleet(std::uint64_t seed) {
  static constexpr const char* kModels[] = {"alexnet", "resnet",
                                            "char_rnn"};
  static constexpr const char* kMethods[] = {"heterbo", "heterbo",
                                             "conv-bo", "cherrypick"};
  Workload workload;
  workload.chaos.seed = seed;
  workload.chaos.lane_crash_rate = 0.08;
  workload.chaos.revocation_rate = 0.06;
  workload.chaos.probe_loss_rate = 0.06;
  workload.chaos.stall_rate = 0.05;
  for (int t = 0; t < 3; ++t) {
    for (int j = 0; j < 4; ++j) {
      JobSpec spec;
      spec.tenant = "tenant-" + std::to_string(t);
      spec.name = spec.tenant + "-job-" + std::to_string(j);
      spec.request.model = kModels[j % 3];
      spec.request.search_method = kMethods[j % 4];
      spec.request.seed = static_cast<std::uint64_t>(100 + j);
      spec.request.max_nodes = 10;
      if (j % 2 == 0) {
        spec.request.requirements.deadline_hours = 18.0 + j;
      } else {
        spec.request.requirements.budget_dollars = 150.0 + 25.0 * j;
      }
      workload.jobs.push_back(std::move(spec));
    }
  }
  return workload;
}

/// The deterministic face of one job's outcome: everything that must be
/// bit-identical across runs and thread counts of the same chaotic
/// workload (wall-clock stats and cache-timing counters excluded).
std::string deterministic_signature(const JobOutcome& job) {
  std::ostringstream out;
  out.precision(17);
  out << job.name << '|' << job.ok << '|' << job.error_code << '|'
      << job.stats.lane_crashes << '|' << job.stats.grant_revocations
      << '|' << job.stats.probe_losses << '|'
      << job.stats.scheduler_stalls << '|'
      << job.stats.chaos_backoff_hours << '|'
      << slo_breach_name(job.slo) << '|' << job.report.to_json();
  return out.str();
}

TEST(ChaosService, SeededSweepRecoversEveryTenantDeterministically) {
  const std::uint64_t seed = chaos_seed_from_env();
  const system::Mlcd mlcd;
  const Workload workload = chaos_fleet(seed);

  std::vector<std::string> solo_json;
  std::vector<system::RunReport> solo_reports;
  for (const JobSpec& spec : workload.jobs) {
    const system::DeployResult result = mlcd.deploy(spec.request);
    ASSERT_TRUE(result.ok()) << spec.name;
    solo_json.push_back(result.report().to_json());
    solo_reports.push_back(result.report());
  }

  std::vector<std::string> reference;
  for (const int threads : {1, 4, 4}) {  // repeat 4 to catch race luck
    SchedulerOptions options;
    options.threads = threads;
    options.capacity_nodes = 16;
    options.tenant_max_jobs = 2;
    const BatchReport report = Scheduler(mlcd, options).run(workload);
    ASSERT_EQ(report.jobs.size(), workload.jobs.size());
    EXPECT_EQ(report.chaos.seed, seed);

    int crashed_jobs = 0;
    for (std::size_t i = 0; i < report.jobs.size(); ++i) {
      const JobOutcome& job = report.jobs[i];
      // Chaos at these rates must never fail a job: every fault kind is
      // absorbed and recovered from.
      ASSERT_TRUE(job.ok) << job.name << " [" << job.error_code
                          << "]: " << job.error_message;
      EXPECT_EQ(job.slo, SloBreach::kNone);
      // Budget invariant: recovery never pushes a job over its own
      // scenario constraints (its simulated accounting is untouched).
      EXPECT_TRUE(
          job.report.result.meets_constraints(job.report.scenario))
          << job.name;
      if (job.stats.lane_crashes == 0) {
        // Jobs no crash touched — including ones that absorbed
        // revocations, losses, and stalls — are bit-identical to solo.
        EXPECT_EQ(job.report.to_json(), solo_json[i])
            << "threads=" << threads << " job=" << job.name;
        EXPECT_EQ(job.report.result.replayed_probes, 0) << job.name;
      } else {
        // Crash-restaged jobs differ only in replay bookkeeping:
        // same probes, same measurements, same money — zero
        // re-executions.
        ++crashed_jobs;
        EXPECT_GT(job.report.result.replayed_probes, 0) << job.name;
        expect_equal_modulo_replay(job.report.result,
                                   solo_reports[i].result);
      }
    }

    // The sweep must actually exercise every fault kind (rates and
    // trace lengths are sized so this holds for any seed).
    EXPECT_GT(report.total_lane_crashes(), 0);
    EXPECT_GT(report.total_revocations(), 0);
    EXPECT_GT(report.total_probe_losses(), 0);
    EXPECT_GT(report.total_scheduler_stalls(), 0);
    EXPECT_GT(crashed_jobs, 0);

    // Reserve and quota invariants under churn.
    EXPECT_LE(report.peak_capacity_nodes, 16);
    EXPECT_LE(report.peak_tenant_jobs, 2);
    EXPECT_GE(report.makespan_seconds, 0.0);

    // Same workload + same chaos_seed => bit-identical deterministic
    // outcomes, at any thread count, every run.
    std::vector<std::string> signature;
    signature.reserve(report.jobs.size());
    for (const JobOutcome& job : report.jobs) {
      signature.push_back(deterministic_signature(job));
    }
    if (reference.empty()) {
      reference = std::move(signature);
    } else {
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(signature[i], reference[i])
            << "threads=" << threads << " job=" << report.jobs[i].name;
      }
    }
  }
}

// ------------------------------------------------------------ BatchReport

TEST(BatchReport, JsonRoundTripsUnderTheSchema) {
  const system::Mlcd mlcd;
  SchedulerOptions options;
  options.threads = 2;
  options.capacity_nodes = 30;
  options.tenant_max_jobs = 2;
  const BatchReport report = Scheduler(mlcd, options).run(small_fleet());

  const util::JsonValue doc = util::parse_json(report.to_json());
  EXPECT_EQ(doc.at("schema_version").as_number(),
            BatchReport::kJsonSchemaVersion);
  EXPECT_EQ(doc.at("scheduler").at("threads").as_number(), 2);
  EXPECT_EQ(doc.at("scheduler").at("capacity_nodes").as_number(), 30);
  EXPECT_GE(doc.at("scheduler").at("makespan_seconds").as_number(), 0.0);
  EXPECT_GE(doc.at("probe_cache").at("hits").as_number(), 0.0);
  const auto& jobs = doc.at("jobs").as_array();
  ASSERT_EQ(jobs.size(), report.jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].at("name").as_string(), report.jobs[i].name);
    EXPECT_EQ(jobs[i].at("tenant").as_string(), report.jobs[i].tenant);
    ASSERT_TRUE(jobs[i].at("ok").as_bool());
    EXPECT_GE(jobs[i].at("stats").at("cache_hits").as_number(), 0.0);
    // The embedded document is a full RunReport under its own schema.
    // Ladder-free jobs keep emitting the byte-identical v3 document.
    const util::JsonValue& embedded = jobs[i].at("report");
    EXPECT_EQ(embedded.at("schema_version").as_number(), 3);
    EXPECT_TRUE(embedded.at("result").at("found").as_bool());
    // ... and its bytes are exactly the solo document's bytes.
    EXPECT_EQ(report.jobs[i].report.to_json(),
              mlcd.deploy(small_fleet().jobs[i].request).report().to_json());
  }
}

// Schema round-trip: the chaos/SLO (v3), fidelity (v4), and durable-
// batch (v5) additions land in their own keys and every v2 key is
// byte-for-byte where a v2 reader expects it.
TEST(BatchReport, V3JsonCarriesChaosSloAndKeepsV2Keys) {
  const system::Mlcd mlcd;
  Workload workload = parse_workload(R"({
    "chaos": {"seed": 11, "probe_loss_rate": 1.0},
    "jobs": [
      {"name": "lossy", "model": "resnet", "deadline_hours": 24,
       "seed": 7, "max_nodes": 10},
      {"name": "capped", "model": "alexnet", "budget_dollars": 150,
       "seed": 9, "max_nodes": 10, "slo_max_probes": 3}
    ]
  })");
  SchedulerOptions options;
  options.threads = 2;
  options.capacity_nodes = 20;
  const BatchReport report = Scheduler(mlcd, options).run(workload);
  ASSERT_EQ(report.succeeded(), 2);

  const util::JsonValue doc = util::parse_json(report.to_json());
  EXPECT_EQ(doc.at("schema_version").as_number(), 6);

  // v5: resume counters are always emitted (zero for a fresh batch) and
  // the degraded-manifest keys are sparse (absent while healthy).
  EXPECT_EQ(doc.at("scheduler").at("resumed_jobs").as_number(), 0);
  EXPECT_EQ(doc.at("scheduler").at("replayed_reports").as_number(), 0);
  EXPECT_FALSE(doc.at("scheduler").contains("batch_journal_degraded"));

  // v4: fleet fidelity totals (zero low-fidelity probes here — no job
  // in this workload enables a ladder).
  const util::JsonValue& fidelity = doc.at("fidelity");
  EXPECT_EQ(fidelity.at("low_fidelity_probes").as_number(), 0);
  EXPECT_EQ(fidelity.at("full_fidelity_probes").as_number(),
            report.total_full_fidelity_probes());
  EXPECT_GT(report.total_full_fidelity_probes(), 0);

  // v3: batch-level chaos environment (the reproducibility handle).
  const util::JsonValue& scheduler = doc.at("scheduler");
  EXPECT_EQ(scheduler.at("chaos_seed").as_number(), 11);
  const util::JsonValue& chaos = scheduler.at("chaos");
  EXPECT_TRUE(chaos.at("enabled").as_bool());
  EXPECT_DOUBLE_EQ(chaos.at("probe_loss_rate").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(chaos.at("lane_crash_rate").as_number(), 0.0);

  // v3: fleet fault totals.
  const util::JsonValue& faults = doc.at("faults");
  EXPECT_EQ(faults.at("probe_losses").as_number(),
            report.total_probe_losses());
  EXPECT_EQ(faults.at("lane_crashes").as_number(), 0);
  EXPECT_EQ(faults.at("grant_revocations").as_number(), 0);
  EXPECT_EQ(faults.at("scheduler_stalls").as_number(), 0);
  EXPECT_EQ(faults.at("slo_exceeded").as_number(), 1);
  EXPECT_GT(report.total_probe_losses(), 0);

  // v3: per-job fault counters and the typed SLO object.
  const auto& jobs = doc.at("jobs").as_array();
  ASSERT_EQ(jobs.size(), 2u);
  const util::JsonValue& lossy = jobs[0].at("stats");
  EXPECT_EQ(lossy.at("probe_losses").as_number(),
            report.jobs[0].stats.probe_losses);
  EXPECT_EQ(lossy.at("lane_crashes").as_number(), 0);
  EXPECT_EQ(lossy.at("grant_revocations").as_number(), 0);
  EXPECT_EQ(lossy.at("scheduler_stalls").as_number(), 0);
  EXPECT_DOUBLE_EQ(lossy.at("chaos_backoff_hours").as_number(), 0.0);
  EXPECT_FALSE(jobs[0].at("slo").at("exceeded").as_bool());
  EXPECT_EQ(jobs[0].at("slo").at("code").as_string(), "");
  EXPECT_EQ(jobs[0].at("slo").at("breach").as_string(), "none");
  EXPECT_TRUE(jobs[1].at("slo").at("exceeded").as_bool());
  EXPECT_EQ(jobs[1].at("slo").at("code").as_string(), "slo_exceeded");
  EXPECT_EQ(jobs[1].at("slo").at("breach").as_string(), "probes");

  // Every key a v2 reader consumes is still present and typed the same.
  EXPECT_EQ(scheduler.at("threads").as_number(), 2);
  EXPECT_EQ(scheduler.at("capacity_nodes").as_number(), 20);
  EXPECT_TRUE(scheduler.at("probe_granularity").as_bool());
  EXPECT_GE(scheduler.at("makespan_seconds").as_number(), 0.0);
  EXPECT_GE(scheduler.at("lane_idle_fraction").as_number(), 0.0);
  EXPECT_GE(doc.at("probe_cache").at("hits").as_number(), 0.0);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(jobs[i].at("ok").as_bool());
    EXPECT_GE(jobs[i].at("stats").at("session_parks").as_number(), 0.0);
    EXPECT_GE(jobs[i].at("stats").at("lane_busy_seconds").as_number(),
              0.0);
    EXPECT_EQ(jobs[i].at("stats").at("low_fidelity_probes").as_number(),
              0);
    EXPECT_GT(jobs[i].at("stats").at("full_fidelity_probes").as_number(),
              0);
    // Ladder-free jobs keep emitting the byte-identical v3 RunReport.
    EXPECT_EQ(jobs[i].at("report").at("schema_version").as_number(), 3);
  }
}

TEST(BatchReport, FailedJobsCarryTypedErrors) {
  const system::Mlcd mlcd;
  const Workload workload = parse_workload(
      R"({"jobs": [{"name": "nope", "model": "no-such-model"}]})");
  const BatchReport report = Scheduler(mlcd, {}).run(workload);
  const util::JsonValue doc = util::parse_json(report.to_json());
  const util::JsonValue& job = doc.at("jobs").at(std::size_t{0});
  EXPECT_FALSE(job.at("ok").as_bool());
  EXPECT_EQ(job.at("error").at("code").as_string(), "unknown_model");
  EXPECT_FALSE(job.contains("report"));
  EXPECT_NE(report.render().find("FAILED"), std::string::npos);
}

// ------------------------------------------------- trace_io / pareto rides

TEST(BatchReport, TraceRoundTripMatchesSolo) {
  const system::Mlcd mlcd;
  const Workload workload = small_fleet();
  const BatchReport batch = Scheduler(mlcd, {}).run(workload);
  ASSERT_TRUE(batch.jobs[1].ok);

  const JobSpec& spec = workload.jobs[1];
  const system::DeployResult solo = mlcd.deploy(spec.request);
  ASSERT_TRUE(solo.ok());

  const cloud::DeploymentSpace space(
      mlcd.cloud().catalog(), spec.request.max_nodes,
      cloud::Market::kOnDemand);
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string from_batch = (tmp / "mlcd_batch_trace.csv").string();
  const std::string from_solo = (tmp / "mlcd_solo_trace.csv").string();
  search::save_trace_csv(from_batch, batch.jobs[1].report.result, space);
  search::save_trace_csv(from_solo, solo.report().result, space);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  EXPECT_EQ(slurp(from_batch), slurp(from_solo));

  // And the warm-start loader reads the batch-produced trace back.
  const std::vector<search::WarmStartPoint> points =
      search::load_warm_start_csv(from_batch, mlcd.cloud().catalog());
  EXPECT_EQ(points.size(), batch.jobs[1].report.result.trace.size());
  std::remove(from_batch.c_str());
  std::remove(from_solo.c_str());
}

TEST(BatchReport, ParetoFrontMatchesSolo) {
  const system::Mlcd mlcd;
  const Workload workload = parse_workload(R"({
    "jobs": [{"name": "front", "model": "resnet", "method": "pareto",
              "deadline_hours": 24, "seed": 5, "max_nodes": 10}]
  })");
  const BatchReport batch = Scheduler(mlcd, {}).run(workload);
  ASSERT_TRUE(batch.jobs[0].ok);
  const system::DeployResult solo = mlcd.deploy(workload.jobs[0].request);
  ASSERT_TRUE(solo.ok());

  const perf::TrainingPerfModel& perf = mlcd.cloud().perf_model();
  const search::ParetoSearcher searcher(perf);
  const cloud::DeploymentSpace space(mlcd.cloud().catalog(), 10,
                                     cloud::Market::kOnDemand);
  const double samples =
      mlcd.zoo().models()[*mlcd.zoo().find_model("resnet")].samples_to_train;
  const auto batch_front =
      searcher.front_of(batch.jobs[0].report.result, space, samples);
  const auto solo_front =
      searcher.front_of(solo.report().result, space, samples);
  ASSERT_EQ(batch_front.size(), solo_front.size());
  ASSERT_FALSE(batch_front.empty());
  for (std::size_t i = 0; i < batch_front.size(); ++i) {
    EXPECT_EQ(batch_front[i].deployment.type_index,
              solo_front[i].deployment.type_index);
    EXPECT_EQ(batch_front[i].deployment.nodes, solo_front[i].deployment.nodes);
    EXPECT_DOUBLE_EQ(batch_front[i].training_hours,
                     solo_front[i].training_hours);
    EXPECT_DOUBLE_EQ(batch_front[i].training_cost,
                     solo_front[i].training_cost);
  }
}

// ------------------------------------------------------- 32-job stress run

Workload stress_fleet() {
  // 4 tenants x 8 jobs. Tenants deliberately mirror each other's
  // (model, seed) pairs so identical probe prefixes recur fleet-wide,
  // while scenarios and methods vary per job.
  static constexpr const char* kModels[] = {"alexnet", "resnet", "char_rnn"};
  static constexpr const char* kMethods[] = {"heterbo", "heterbo", "conv-bo",
                                             "cherrypick"};
  Workload workload;
  for (int t = 0; t < 4; ++t) {
    for (int j = 0; j < 8; ++j) {
      JobSpec spec;
      spec.tenant = "tenant-" + std::to_string(t);
      spec.name = spec.tenant + "-job-" + std::to_string(j);
      spec.request.model = kModels[j % 3];
      spec.request.search_method = kMethods[j % 4];
      spec.request.seed = static_cast<std::uint64_t>(100 + j);
      spec.request.max_nodes = 10;
      if (j % 2 == 0) {
        spec.request.requirements.deadline_hours = 18.0 + j;
      } else {
        spec.request.requirements.budget_dollars = 150.0 + 25.0 * j;
      }
      workload.jobs.push_back(std::move(spec));
    }
  }
  return workload;
}

TEST(ServiceStress, ThirtyTwoJobsBitIdenticalWithQuotaAndCapacity) {
  const system::Mlcd mlcd;
  const Workload workload = stress_fleet();

  std::vector<std::string> solo;
  solo.reserve(workload.jobs.size());
  for (const JobSpec& spec : workload.jobs) {
    const system::DeployResult result = mlcd.deploy(spec.request);
    ASSERT_TRUE(result.ok()) << spec.name;
    solo.push_back(result.report().to_json());
  }

  for (const int threads : {1, 4}) {
    SchedulerOptions options;
    options.threads = threads;
    options.capacity_nodes = 16;  // forces queueing under contention
    options.tenant_max_jobs = 2;
    const BatchReport report = Scheduler(mlcd, options).run(workload);

    ASSERT_EQ(report.jobs.size(), workload.jobs.size());
    for (std::size_t i = 0; i < solo.size(); ++i) {
      ASSERT_TRUE(report.jobs[i].ok) << report.jobs[i].name;
      // The hard invariant: bit-identical to the solo run — trace,
      // accounting, chosen deployment, every byte.
      ASSERT_EQ(report.jobs[i].report.to_json(), solo[i])
          << "threads=" << threads << " job=" << report.jobs[i].name;
    }

    // Quota and capacity invariants, from observed high-water marks.
    EXPECT_LE(report.peak_tenant_jobs, 2);
    EXPECT_GE(report.peak_tenant_jobs, 1);
    EXPECT_LE(report.peak_capacity_nodes, 16);

    // Cross-job reuse must actually happen: 4 tenants mirror each
    // other's substrates, so at minimum the mirrored jobs' full probe
    // sequences are served from the cache.
    EXPECT_GT(report.total_cache_hits(), 0);
    EXPECT_EQ(report.cache.hits, report.total_cache_hits());

    // Per-tenant constraint safety under contention: the solo-identity
    // proven above already implies it, but assert the user-facing form
    // too — no job exceeded its own scenario bounds.
    for (const JobOutcome& job : report.jobs) {
      EXPECT_TRUE(job.report.result.meets_constraints(job.report.scenario))
          << job.name;
    }

    // Makespan sanity: wall-clock stats exist and capacity stalls (if
    // any) were charged to scheduler time, not to any job's simulated
    // clock (the solo-identity assertions above would have caught that).
    EXPECT_GE(report.makespan_seconds, 0.0);
  }
}

}  // namespace
}  // namespace mlcd::service
