// Corner-condition tests: degenerate spaces, impossible constraints,
// combined constraints — the situations a deployed system hits that the
// paper's evaluation never shows.
#include <gtest/gtest.h>

#include "models/model_zoo.hpp"
#include "search/conv_bo.hpp"
#include "search/exhaustive.hpp"
#include "search/heter_bo.hpp"

namespace mlcd::search {
namespace {

SearchProblem make_problem(const cloud::DeploymentSpace& space,
                           Scenario scenario, const char* model = "resnet") {
  SearchProblem p;
  p.config.model = models::paper_zoo().model(model);
  p.config.platform = perf::tensorflow_profile();
  p.config.topology = perf::CommTopology::kParameterServer;
  p.space = &space;
  p.scenario = scenario;
  p.seed = 3;
  return p;
}

TEST(EdgeCases, SingleDeploymentSpace) {
  // A space with exactly one point: every method must pick it.
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 1);
  const perf::TrainingPerfModel perf(cat);
  const SearchProblem p = make_problem(space, Scenario::fastest());

  const SearchResult hb = HeterBoSearcher(perf).run(p);
  ASSERT_TRUE(hb.found);
  EXPECT_EQ(hb.best.nodes, 1);
  const SearchResult ex = ExhaustiveSearcher(perf).run(p);
  EXPECT_EQ(ex.best.nodes, 1);
}

TEST(EdgeCases, ImpossibleBudgetStillTerminates) {
  // A budget too small even for one probe: the search must terminate
  // without crashing; whatever it reports is flagged as violating.
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  const SearchProblem p =
      make_problem(space, Scenario::fastest_under_budget(0.05));

  const SearchResult r = HeterBoSearcher(perf).run(p);
  // The probe itself costs ~$0.11 > $0.05; whatever happened, the result
  // must be marked non-compliant rather than silently "ok".
  EXPECT_FALSE(r.meets_constraints(p.scenario) &&
               r.total_cost() > 0.05);
}

TEST(EdgeCases, ImpossibleDeadlineReportsLeastViolation) {
  // No deployment can train a resnet job in 6 minutes; HeterBO must
  // still return its least-violating option and the report must say
  // VIOLATED.
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  const SearchProblem p =
      make_problem(space, Scenario::cheapest_under_deadline(0.1));

  const SearchResult r = HeterBoSearcher(perf).run(p);
  ASSERT_TRUE(r.found);
  EXPECT_FALSE(r.meets_constraints(p.scenario));
  // Least-violating = fastest completion among probed points.
  for (const ProbeStep& s : r.trace) {
    if (!s.feasible) continue;
    const double hours =
        p.config.model.samples_to_train / s.measured_speed / 3600.0;
    EXPECT_GE(hours * 1.05,
              p.config.model.samples_to_train / r.best_measured_speed /
                  3600.0);
  }
}

TEST(EdgeCases, BothConstraintsEnforcedTogether) {
  const auto cat = cloud::aws_catalog().subset(
      std::vector<std::string>{"c5.xlarge", "c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);

  Scenario both = Scenario::fastest_under_budget(120.0);
  both.deadline_hours = 9.0;
  const SearchProblem p = make_problem(space, both);

  const SearchResult r = HeterBoSearcher(perf).run(p);
  ASSERT_TRUE(r.found);
  EXPECT_LE(r.total_cost(), 120.0);
  EXPECT_LE(r.total_hours(), 9.0);
}

TEST(EdgeCases, ModelTooLargeForEntireSpace) {
  // zero_20b cannot fit any deployment of small CPU nodes: HeterBO must
  // return not-found instead of fabricating a result.
  const auto cat = cloud::aws_catalog().subset(
      std::vector<std::string>{"c5.large", "t3.medium"});
  const cloud::DeploymentSpace space(cat, 10);
  const perf::TrainingPerfModel perf(cat);
  const SearchProblem p =
      make_problem(space, Scenario::fastest(), "zero_20b");

  const SearchResult r = HeterBoSearcher(perf).run(p);
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.meets_constraints(p.scenario));
}

TEST(EdgeCases, ConvBoSurvivesInfeasibleRegions) {
  // A space where most points are infeasible (bert on tiny-memory
  // nodes): ConvBO's random init may hit many zero-objective probes and
  // must still return the feasible best if it finds one.
  const auto cat = cloud::aws_catalog().subset(
      std::vector<std::string>{"t3.medium", "c5n.4xlarge"});
  const cloud::DeploymentSpace space(cat, 20);
  const perf::TrainingPerfModel perf(cat);
  SearchProblem p = make_problem(space, Scenario::fastest(), "bert");
  p.config.topology = perf::CommTopology::kRingAllReduce;

  bool found_any = false;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    p.seed = seed;
    const SearchResult r = ConvBoSearcher(perf).run(p);
    if (r.found) {
      found_any = true;
      EXPECT_GT(r.best_true_speed, 0.0);
    }
  }
  EXPECT_TRUE(found_any);
}

TEST(EdgeCases, MaxProbesOfTwoStillWorks) {
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  HeterBoOptions options;
  options.max_probes = 2;
  const SearchResult r = HeterBoSearcher(perf, options)
                             .run(make_problem(space, Scenario::fastest()));
  EXPECT_LE(r.trace.size(), 2u);
  EXPECT_TRUE(r.found);
}

TEST(EdgeCases, WarmStartWithStalePointsOutsideSpaceIsIgnored) {
  // Warm points referencing deployments outside the new (smaller) space
  // must be silently dropped, not crash or corrupt the surrogate.
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace big(cat, 50);
  const cloud::DeploymentSpace small(cat, 10);
  const perf::TrainingPerfModel perf(cat);

  const SearchResult first =
      HeterBoSearcher(perf).run(make_problem(big, Scenario::fastest()));
  HeterBoOptions options;
  options.warm_start = warm_start_points(first);  // includes n > 10

  SearchProblem p = make_problem(small, Scenario::fastest());
  const SearchResult second = HeterBoSearcher(perf, options).run(p);
  ASSERT_TRUE(second.found);
  EXPECT_LE(second.best.nodes, 10);
}

}  // namespace
}  // namespace mlcd::search
