file(REMOVE_RECURSE
  "CMakeFiles/gp_test.dir/gp_test.cpp.o"
  "CMakeFiles/gp_test.dir/gp_test.cpp.o.d"
  "gp_test"
  "gp_test.pdb"
  "gp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
