file(REMOVE_RECURSE
  "CMakeFiles/durable_batch_test.dir/durable_batch_test.cpp.o"
  "CMakeFiles/durable_batch_test.dir/durable_batch_test.cpp.o.d"
  "durable_batch_test"
  "durable_batch_test.pdb"
  "durable_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
