# Empty dependencies file for durable_batch_test.
# This may be replaced when dependencies are built.
