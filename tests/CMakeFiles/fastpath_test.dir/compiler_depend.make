# Empty compiler generated dependencies file for fastpath_test.
# This may be replaced when dependencies are built.
