file(REMOVE_RECURSE
  "CMakeFiles/fastpath_test.dir/fastpath_test.cpp.o"
  "CMakeFiles/fastpath_test.dir/fastpath_test.cpp.o.d"
  "fastpath_test"
  "fastpath_test.pdb"
  "fastpath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
