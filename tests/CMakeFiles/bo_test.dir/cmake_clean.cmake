file(REMOVE_RECURSE
  "CMakeFiles/bo_test.dir/bo_test.cpp.o"
  "CMakeFiles/bo_test.dir/bo_test.cpp.o.d"
  "bo_test"
  "bo_test.pdb"
  "bo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
