file(REMOVE_RECURSE
  "CMakeFiles/fault_model_test.dir/fault_model_test.cpp.o"
  "CMakeFiles/fault_model_test.dir/fault_model_test.cpp.o.d"
  "fault_model_test"
  "fault_model_test.pdb"
  "fault_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
