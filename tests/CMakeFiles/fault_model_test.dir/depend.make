# Empty dependencies file for fault_model_test.
# This may be replaced when dependencies are built.
