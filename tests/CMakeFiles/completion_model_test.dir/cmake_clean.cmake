file(REMOVE_RECURSE
  "CMakeFiles/completion_model_test.dir/completion_model_test.cpp.o"
  "CMakeFiles/completion_model_test.dir/completion_model_test.cpp.o.d"
  "completion_model_test"
  "completion_model_test.pdb"
  "completion_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/completion_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
