# Empty compiler generated dependencies file for completion_model_test.
# This may be replaced when dependencies are built.
