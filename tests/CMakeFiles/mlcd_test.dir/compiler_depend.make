# Empty compiler generated dependencies file for mlcd_test.
# This may be replaced when dependencies are built.
