file(REMOVE_RECURSE
  "CMakeFiles/mlcd_test.dir/mlcd_test.cpp.o"
  "CMakeFiles/mlcd_test.dir/mlcd_test.cpp.o.d"
  "mlcd_test"
  "mlcd_test.pdb"
  "mlcd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
