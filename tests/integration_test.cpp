// Cross-module integration tests: the full search pipeline on the paper's
// evaluation settings, asserting the comparative *shapes* the paper
// reports (who wins, who violates, roughly by how much).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "models/model_zoo.hpp"
#include "search/cherrypick.hpp"
#include "search/conv_bo.hpp"
#include "search/exhaustive.hpp"
#include "search/heter_bo.hpp"
#include "search/paleo.hpp"

namespace mlcd::search {
namespace {

/// Average a metric over several seeds to damp per-seed noise.
template <typename MakeSearcher>
double mean_over_seeds(MakeSearcher&& make, SearchProblem problem,
                       double (*metric)(const SearchResult&),
                       int seeds = 5) {
  double sum = 0.0;
  for (int s = 1; s <= seeds; ++s) {
    problem.seed = static_cast<std::uint64_t>(s);
    sum += metric(make()->run(problem));
  }
  return sum / seeds;
}

double profile_cost(const SearchResult& r) { return r.profile_cost; }
double total_cost(const SearchResult& r) { return r.total_cost(); }
double total_hours(const SearchResult& r) { return r.total_hours(); }

class IntegrationTest : public testing::Test {
 protected:
  IntegrationTest()
      : trio_(cloud::aws_catalog().subset(std::vector<std::string>{
            "c5.xlarge", "c5.4xlarge", "p2.xlarge"})),
        trio_space_(trio_, 50),
        trio_perf_(trio_) {}

  SearchProblem trio_problem(const char* model, Scenario scenario) const {
    SearchProblem p;
    p.config.model = models::paper_zoo().model(model);
    p.config.platform = perf::tensorflow_profile();
    p.config.topology = p.config.model.params > 100e6
                            ? perf::CommTopology::kRingAllReduce
                            : perf::CommTopology::kParameterServer;
    p.space = &trio_space_;
    p.scenario = scenario;
    return p;
  }

  cloud::InstanceCatalog trio_;
  cloud::DeploymentSpace trio_space_;
  perf::TrainingPerfModel trio_perf_;
};

TEST_F(IntegrationTest, HeterBoProfilingFractionOfConvBo) {
  // Paper: HeterBO needs 16-21% of ConvBO's profiling spend on the
  // scale-out search. That setting reproduces strongly; the multi-type
  // space (optimum at the expensive far end) reproduces the direction.
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 50);
  const perf::TrainingPerfModel perf(cat);
  SearchProblem p;
  p.config.model = models::paper_zoo().model("resnet");
  p.config.platform = perf::tensorflow_profile();
  p.config.topology = perf::CommTopology::kParameterServer;
  p.space = &space;
  p.scenario = Scenario::fastest();
  const double hb = mean_over_seeds(
      [&] { return std::make_unique<HeterBoSearcher>(perf); }, p,
      profile_cost);
  const double cb = mean_over_seeds(
      [&] { return std::make_unique<ConvBoSearcher>(perf); }, p,
      profile_cost);
  EXPECT_LT(hb, 0.5 * cb);

  const SearchProblem ptrio = trio_problem("char_rnn", Scenario::fastest());
  const double hb3 = mean_over_seeds(
      [&] { return std::make_unique<HeterBoSearcher>(trio_perf_); }, ptrio,
      profile_cost);
  const double cb3 = mean_over_seeds(
      [&] { return std::make_unique<ConvBoSearcher>(trio_perf_); }, ptrio,
      profile_cost);
  EXPECT_LT(hb3, 0.95 * cb3);
}

TEST_F(IntegrationTest, HeterBoTotalCostBeatsBaselinesUnderBudget) {
  // Fig. 18's shape: under a budget, HeterBO's total cost complies while
  // ConvBO and CherryPick overshoot on average.
  const SearchProblem p =
      trio_problem("char_rnn", Scenario::fastest_under_budget(120.0));
  const double hb = mean_over_seeds(
      [&] { return std::make_unique<HeterBoSearcher>(trio_perf_); }, p,
      total_cost);
  const double cb = mean_over_seeds(
      [&] { return std::make_unique<ConvBoSearcher>(trio_perf_); }, p,
      total_cost);
  const double cp = mean_over_seeds(
      [&] { return std::make_unique<CherryPickSearcher>(trio_perf_); }, p,
      total_cost);
  EXPECT_LE(hb, 120.0);
  EXPECT_GT(cb, 120.0);
  EXPECT_GT(cp, 120.0);
}

TEST_F(IntegrationTest, HeterBoNearOracleQualityUnderBudget) {
  const SearchProblem p =
      trio_problem("char_rnn", Scenario::fastest_under_budget(120.0));
  const auto opt = optimal_deployment(trio_perf_, p.config, trio_space_,
                                      p.scenario);
  ASSERT_TRUE(opt.has_value());
  SearchProblem seeded = p;
  seeded.seed = 7;
  const SearchResult hb = HeterBoSearcher(trio_perf_).run(seeded);
  ASSERT_TRUE(hb.found);
  // Within 3x of the oracle's training time (the oracle pays nothing for
  // search; HeterBO must fund its own profiling out of the same budget).
  EXPECT_LT(hb.training_hours, 3.0 * opt->training_hours);
}

TEST_F(IntegrationTest, DeadlineScenarioCharRnn) {
  // Fig. 14's setting: Char-RNN under a 20 h limit. HeterBO complies;
  // CherryPick (cost-oblivious) typically does not when the optimum sits
  // near the limit.
  const SearchProblem p =
      trio_problem("char_rnn", Scenario::cheapest_under_deadline(20.0));
  const double hb = mean_over_seeds(
      [&] { return std::make_unique<HeterBoSearcher>(trio_perf_); }, p,
      total_hours);
  EXPECT_LE(hb, 20.0);
}

TEST_F(IntegrationTest, BertRingAllReduceSearchWorks) {
  // Fig. 16's setting: BERT with ring all-reduce on a c5n/p2 mix.
  const auto cat = cloud::aws_catalog().subset(std::vector<std::string>{
      "c5n.xlarge", "c5n.4xlarge", "p2.xlarge"});
  const cloud::DeploymentSpace space(cat, 20);
  const perf::TrainingPerfModel perf(cat);
  SearchProblem p;
  p.config.model = models::paper_zoo().model("bert");
  p.config.platform = perf::tensorflow_profile();
  p.config.topology = perf::CommTopology::kRingAllReduce;
  p.space = &space;
  p.scenario = Scenario::fastest_under_budget(100.0);
  p.seed = 7;

  const SearchResult r = HeterBoSearcher(perf).run(p);
  ASSERT_TRUE(r.found);
  EXPECT_LE(r.total_cost(), 100.0);
  // Initialization probed all three types at one node.
  EXPECT_EQ(r.trace[0].deployment.nodes, 1);
  EXPECT_EQ(r.trace[1].deployment.nodes, 1);
  EXPECT_EQ(r.trace[2].deployment.nodes, 1);
}

TEST_F(IntegrationTest, MxnetAndTensorflowBothSearchable) {
  // Robustness across platforms (Figs. 16 vs 17).
  const auto cat = cloud::aws_catalog().subset(std::vector<std::string>{
      "c5n.xlarge", "c5n.4xlarge", "p2.xlarge"});
  const cloud::DeploymentSpace space(cat, 20);
  const perf::TrainingPerfModel perf(cat);
  for (const char* platform : {"tensorflow", "mxnet"}) {
    SearchProblem p;
    p.config.model = models::paper_zoo().model("bert");
    p.config.platform = perf::platform_by_name(platform);
    p.config.topology = perf::CommTopology::kRingAllReduce;
    p.space = &space;
    p.scenario = Scenario::fastest_under_budget(120.0);
    p.seed = 7;
    const SearchResult r = HeterBoSearcher(perf).run(p);
    ASSERT_TRUE(r.found) << platform;
    EXPECT_LE(r.total_cost(), 120.0) << platform;
  }
}

TEST_F(IntegrationTest, CostSavingGrowsWithModelSize) {
  // Fig. 19's shape: HeterBO's saving over ConvBO grows with model size
  // — bigger models force bigger (pricier) clusters, so dodging wasted
  // probes pays more. We assert it on search (profiling) cost, the
  // quantity HeterBO's mechanism controls directly.
  const auto cat = cloud::aws_catalog().subset(std::vector<std::string>{
      "c5n.xlarge", "c5n.4xlarge", "p2.xlarge"});
  const cloud::DeploymentSpace space(cat, 20);
  const perf::TrainingPerfModel perf(cat);

  auto saving_for = [&](const char* model) {
    SearchProblem p;
    p.config.model = models::paper_zoo().model(model);
    p.config.platform = perf::tensorflow_profile();
    p.config.topology = perf::CommTopology::kRingAllReduce;
    p.space = &space;
    p.scenario = Scenario::fastest();
    const double hb = mean_over_seeds(
        [&] { return std::make_unique<HeterBoSearcher>(perf); }, p,
        profile_cost, 3);
    const double cb = mean_over_seeds(
        [&] { return std::make_unique<ConvBoSearcher>(perf); }, p,
        profile_cost, 3);
    return cb - hb;  // absolute dollars saved on the search
  };

  // alexnet (6.4M) vs zero_8b (8B): three decades of model scale.
  const double small = saving_for("alexnet");
  const double large = saving_for("zero_8b");
  EXPECT_GT(large, small);
  EXPECT_GT(large, 0.0);
}

TEST_F(IntegrationTest, HeterBoQualityAcrossSeeds) {
  // Regression guard on search *quality* (compliance is guarded
  // elsewhere): across seeds, HeterBO's pick averages >= 80% of the
  // oracle's training speed on the Fig. 15 space.
  const SearchProblem base = trio_problem("char_rnn", Scenario::fastest());
  const auto opt = optimal_deployment(trio_perf_, base.config, trio_space_,
                                      Scenario::fastest());
  ASSERT_TRUE(opt.has_value());
  double ratio = 0.0;
  constexpr int kSeeds = 8;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    SearchProblem p = base;
    p.seed = static_cast<std::uint64_t>(seed);
    const SearchResult r = HeterBoSearcher(trio_perf_).run(p);
    ASSERT_TRUE(r.found) << seed;
    ratio += r.best_true_speed / opt->best_true_speed;
  }
  EXPECT_GT(ratio / kSeeds, 0.8);
}

TEST_F(IntegrationTest, AllMethodsAgreeOnObviousOptimum) {
  // In a tiny space with one clearly dominant deployment, every method
  // should find it (sanity that methods share accounting conventions).
  const auto cat =
      cloud::aws_catalog().subset(std::vector<std::string>{"c5.4xlarge"});
  const cloud::DeploymentSpace space(cat, 4);
  const perf::TrainingPerfModel perf(cat);
  SearchProblem p;
  p.config.model = models::paper_zoo().model("resnet");
  p.config.platform = perf::tensorflow_profile();
  p.config.topology = perf::CommTopology::kParameterServer;
  p.space = &space;
  p.scenario = Scenario::fastest();
  p.seed = 7;

  const auto opt =
      optimal_deployment(perf, p.config, space, Scenario::fastest());
  ASSERT_TRUE(opt.has_value());
  const SearchResult ex = ExhaustiveSearcher(perf).run(p);
  const SearchResult hb = HeterBoSearcher(perf).run(p);
  EXPECT_EQ(ex.best, opt->best);
  EXPECT_EQ(hb.best, opt->best);
}

}  // namespace
}  // namespace mlcd::search
