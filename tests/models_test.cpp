// Unit tests for src/models: the model zoo and dataset registry.
#include <gtest/gtest.h>

#include "models/model_zoo.hpp"

namespace mlcd::models {
namespace {

TEST(Zoo, ContainsAllPaperModels) {
  const ModelZoo& zoo = paper_zoo();
  for (const char* name : {"alexnet", "resnet", "inception_v3", "char_rnn",
                           "bert", "zero_8b", "zero_20b"}) {
    EXPECT_TRUE(zoo.find_model(name).has_value()) << name;
  }
}

TEST(Zoo, Fig19ParameterCounts) {
  // Fig. 19's x-axis: 6.4M (AlexNet), 60.3M (ResNet), 340M (BERT),
  // 8B and 20B (ZeRO).
  const ModelZoo& zoo = paper_zoo();
  EXPECT_NEAR(zoo.model("alexnet").params, 6.4e6, 1.0);
  EXPECT_NEAR(zoo.model("resnet").params, 60.3e6, 1.0);
  EXPECT_NEAR(zoo.model("bert").params, 340e6, 1.0);
  EXPECT_NEAR(zoo.model("zero_8b").params, 8e9, 1.0);
  EXPECT_NEAR(zoo.model("zero_20b").params, 20e9, 1.0);
}

TEST(Zoo, ModelKindsMatchArchitectures) {
  const ModelZoo& zoo = paper_zoo();
  EXPECT_EQ(zoo.model("alexnet").kind, ModelKind::kCnn);
  EXPECT_EQ(zoo.model("resnet").kind, ModelKind::kCnn);
  EXPECT_EQ(zoo.model("inception_v3").kind, ModelKind::kCnn);
  EXPECT_EQ(zoo.model("char_rnn").kind, ModelKind::kRnn);
  EXPECT_EQ(zoo.model("bert").kind, ModelKind::kTransformer);
}

TEST(Zoo, GradientBytesAreFp32Params) {
  const ModelSpec& bert = paper_zoo().model("bert");
  EXPECT_DOUBLE_EQ(bert.gradient_bytes(), 340e6 * 4.0);
}

TEST(Zoo, ModelsReferenceKnownDatasets) {
  const ModelZoo& zoo = paper_zoo();
  for (const ModelSpec& m : zoo.models()) {
    EXPECT_NO_THROW(zoo.dataset(m.dataset)) << m.name;
  }
}

TEST(Zoo, DatasetSizes) {
  const ModelZoo& zoo = paper_zoo();
  EXPECT_EQ(zoo.dataset("cifar10").train_samples, 50'000u);
  EXPECT_EQ(zoo.dataset("imagenet").train_samples, 1'281'167u);
}

TEST(Zoo, UnknownLookupsThrow) {
  EXPECT_THROW(paper_zoo().model("vgg"), std::invalid_argument);
  EXPECT_THROW(paper_zoo().dataset("mnist"), std::invalid_argument);
  EXPECT_FALSE(paper_zoo().find_model("vgg").has_value());
}

TEST(Zoo, WithModelExtends) {
  ModelSpec custom;
  custom.name = "my_model";
  custom.kind = ModelKind::kCnn;
  custom.params = 1e6;
  custom.flops_per_sample = 1e9;
  custom.dataset = "cifar10";
  custom.samples_to_train = 1e6;
  custom.batch_per_node = 32;
  const ModelZoo extended = paper_zoo().with_model(custom);
  EXPECT_TRUE(extended.find_model("my_model").has_value());
  // Original registry unchanged.
  EXPECT_FALSE(paper_zoo().find_model("my_model").has_value());
}

TEST(Zoo, InvalidSpecsRejected) {
  ModelSpec bad;
  bad.name = "bad";
  bad.params = -1.0;
  bad.flops_per_sample = 1.0;
  bad.dataset = "cifar10";
  bad.samples_to_train = 1.0;
  EXPECT_THROW(paper_zoo().with_model(bad), std::invalid_argument);

  ModelSpec unknown_dataset;
  unknown_dataset.name = "x";
  unknown_dataset.params = 1.0;
  unknown_dataset.flops_per_sample = 1.0;
  unknown_dataset.dataset = "not_a_dataset";
  unknown_dataset.samples_to_train = 1.0;
  EXPECT_THROW(paper_zoo().with_model(unknown_dataset),
               std::invalid_argument);
}

TEST(Zoo, KindNames) {
  EXPECT_EQ(model_kind_name(ModelKind::kCnn), "cnn");
  EXPECT_EQ(model_kind_name(ModelKind::kRnn), "rnn");
  EXPECT_EQ(model_kind_name(ModelKind::kTransformer), "transformer");
}

TEST(Zoo, FlopsOrderingMatchesModelScale) {
  // Bigger models need more compute per sample.
  const ModelZoo& zoo = paper_zoo();
  EXPECT_LT(zoo.model("alexnet").flops_per_sample,
            zoo.model("inception_v3").flops_per_sample);
  EXPECT_LT(zoo.model("inception_v3").flops_per_sample,
            zoo.model("bert").flops_per_sample);
  EXPECT_LT(zoo.model("bert").flops_per_sample,
            zoo.model("zero_8b").flops_per_sample);
  EXPECT_LT(zoo.model("zero_8b").flops_per_sample,
            zoo.model("zero_20b").flops_per_sample);
}

}  // namespace
}  // namespace mlcd::models
