// Unit and property tests for src/stats: normal functions and summaries.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "stats/normal.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace mlcd::stats {
namespace {

// ----------------------------------------------------------------- normal

TEST(Normal, PdfKnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 1.0 / std::sqrt(2.0 * std::numbers::pi),
              1e-15);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(normal_cdf(6.0), 1.0, 1e-9);
  EXPECT_NEAR(normal_cdf(-6.0), 0.0, 1e-9);
}

TEST(Normal, CdfIsMonotone) {
  double prev = -1.0;
  for (double x = -5.0; x <= 5.0; x += 0.1) {
    const double c = normal_cdf(x);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(Normal, QuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963984540054, 1e-8);
}

TEST(Normal, QuantileDomainErrors) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
  EXPECT_THROW(normal_quantile(-0.5), std::domain_error);
}

// Property: quantile inverts cdf across the whole domain, tails included.
class NormalRoundTrip : public testing::TestWithParam<double> {};

TEST_P(NormalRoundTrip, QuantileInvertsCdf) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, NormalRoundTrip,
                         testing::Values(1e-6, 1e-3, 0.01, 0.1, 0.25, 0.5,
                                         0.75, 0.9, 0.95, 0.975, 0.99,
                                         0.999, 1.0 - 1e-6));

TEST(Normal, PdfIsDerivativeOfCdf) {
  for (double x : {-2.0, -0.5, 0.0, 0.7, 2.3}) {
    const double h = 1e-6;
    const double numeric = (normal_cdf(x + h) - normal_cdf(x - h)) / (2 * h);
    EXPECT_NEAR(numeric, normal_pdf(x), 1e-7);
  }
}

// ---------------------------------------------------------------- summary

TEST(Summary, BasicStatistics) {
  const std::vector<double> sample{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(sample);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summary, SingleElement) {
  const Summary s = summarize(std::vector<double>{3.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(Summary, EmptyThrows) {
  EXPECT_THROW(summarize(std::vector<double>{}), std::invalid_argument);
}

TEST(Quantile, MatchesNumpyType7) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

TEST(Quantile, Errors) {
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(std::vector<double>{1.0}, 1.5),
               std::invalid_argument);
}

TEST(Whisker, FiveNumberSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);
  const WhiskerStats w = whisker_stats(v);
  EXPECT_DOUBLE_EQ(w.min, 1.0);
  EXPECT_DOUBLE_EQ(w.q1, 26.0);
  EXPECT_DOUBLE_EQ(w.median, 51.0);
  EXPECT_DOUBLE_EQ(w.q3, 76.0);
  EXPECT_DOUBLE_EQ(w.max, 101.0);
}

// ----------------------------------------------------------- RunningStats

TEST(RunningStats, MatchesBatchSummary) {
  util::Rng rng(8);
  std::vector<double> sample;
  RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sample.push_back(x);
    rs.add(x);
  }
  const Summary s = summarize(sample);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-10);
  EXPECT_NEAR(rs.variance(), s.variance, 1e-8);
  EXPECT_EQ(rs.count(), s.count);
}

TEST(RunningStats, CoVZeroBeforeTwoSamples) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.coefficient_of_variation(), 0.0);
  rs.add(5.0);
  EXPECT_DOUBLE_EQ(rs.coefficient_of_variation(), 0.0);
}

TEST(RunningStats, CoVInfiniteAtZeroMean) {
  RunningStats rs;
  rs.add(-1.0);
  rs.add(1.0);
  EXPECT_TRUE(std::isinf(rs.coefficient_of_variation()));
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats rs;
  // Classic catastrophic-cancellation scenario for naive sum-of-squares.
  for (double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0}) rs.add(x);
  EXPECT_NEAR(rs.variance(), 30.0, 1e-6);
}

TEST(ConfidenceHalfwidth, MatchesFormula) {
  RunningStats rs;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) rs.add(x);
  const double hw = confidence_halfwidth(rs, 0.95);
  const double expected =
      normal_quantile(0.975) * rs.stddev() / std::sqrt(5.0);
  EXPECT_NEAR(hw, expected, 1e-12);
}

TEST(ConfidenceHalfwidth, Errors) {
  RunningStats rs;
  rs.add(1.0);
  EXPECT_THROW(confidence_halfwidth(rs, 0.95), std::invalid_argument);
  rs.add(2.0);
  EXPECT_THROW(confidence_halfwidth(rs, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace mlcd::stats
