// Unit tests for src/util: logging, RNG, tables, CSV.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace mlcd::util {
namespace {

// ---------------------------------------------------------------- logging

TEST(Logging, LevelNamesAreStable) {
  EXPECT_EQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_EQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(Logging, ThresholdFiltersLowerLevels) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  set_log_level(saved);
}

TEST(Logging, StatementDoesNotThrowWhenDisabled) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kOff);
  EXPECT_NO_THROW(MLCD_LOG(kError, "test") << "invisible " << 42);
  set_log_level(saved);
}

// -------------------------------------------------------------------- rng

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(4));
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(42);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, LognormalMedianIsMedian) {
  Rng rng(5);
  constexpr double median = 100.0;
  int below = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.lognormal_median(median, 0.5) < median) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST(Rng, ForkStreamsAreIndependentAndDeterministic) {
  Rng parent1(9), parent2(9);
  Rng child1 = parent1.fork(1);
  Rng child2 = parent2.fork(1);
  // Identical parent state + label => identical child stream.
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(child1.uniform(), child2.uniform());
  }
  // Different labels from the same state => different streams.
  Rng parent3(9);
  Rng childA = parent3.fork(1);
  Rng parent4(9);
  Rng childB = parent4.fork(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (childA.uniform() == childB.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, StringForkMatchesHashFork) {
  Rng a(3), b(3);
  Rng c1 = a.fork("c5.xlarge");
  Rng c2 = b.fork(fnv1a64("c5.xlarge"));
  EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
}

TEST(Rng, Splitmix64KnownValues) {
  // splitmix64 is a fixed algorithm; lock in determinism across builds.
  EXPECT_EQ(splitmix64(0), 16294208416658607535ULL);
  EXPECT_EQ(splitmix64(1), 10451216379200822465ULL);
}

TEST(Rng, Fnv1aKnownValue) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
}

// ------------------------------------------------------------------ table

TEST(Table, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(TablePrinter(std::vector<std::string>{}),
               std::invalid_argument);
}

TEST(Table, SetAlignOutOfRangeThrows) {
  TablePrinter t({"a"});
  EXPECT_THROW(t.set_align(5, Align::kLeft), std::out_of_range);
}

TEST(Table, SeparatorAddsRule) {
  TablePrinter t({"alpha"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Two rules: one under the header, one mid-table.
  std::size_t count = 0, pos = 0;
  while ((pos = out.find("---", pos)) != std::string::npos) {
    ++count;
    pos = out.find('\n', pos);
  }
  EXPECT_GE(count, 2u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_speedup(2.5, 1), "2.5x");
  EXPECT_EQ(fmt_percent(0.815, 1), "81.5%");
  EXPECT_EQ(fmt_dollars(12.3, 2), "$12.30");
  EXPECT_EQ(fmt_hours(4.5, 1), "4.5 h");
}

// -------------------------------------------------------------------- csv

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/mlcd_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.add_row({"1", "2"});
    csv.add_row({"3", "4"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove(path);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, ArityMismatchThrows) {
  const std::string path = testing::TempDir() + "/mlcd_csv_arity.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(Csv, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-zzz/file.csv", {"a"}),
               std::runtime_error);
}

// ------------------------------------------------------------------- plot

TEST(AsciiPlot, RendersAllSeriesSymbolsAndLegend) {
  Series a{"alpha", 'o', {0, 1, 2}, {0, 1, 4}};
  Series b{"beta", '*', {0, 1, 2}, {4, 1, 0}};
  const std::string chart = render_chart({a, b});
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("o=alpha"), std::string::npos);
  EXPECT_NE(chart.find("*=beta"), std::string::npos);
}

TEST(AsciiPlot, AnchorsNonNegativeDataAtZero) {
  Series s{"s", '*', {0, 1}, {5, 10}};
  const std::string chart = render_chart({s});
  EXPECT_NE(chart.find("0.0"), std::string::npos);
  EXPECT_NE(chart.find("10.0"), std::string::npos);
}

TEST(AsciiPlot, PeakLandsOnTopRow) {
  // The maximum must be drawn on the first grid row.
  Series s{"s", '*', {0, 1, 2}, {0, 10, 0}};
  AsciiChartOptions options;
  options.width = 16;
  options.height = 8;
  const std::string chart = render_chart({s}, options);
  // First plotted line (no y_label set) contains the top row.
  const std::string first_line = chart.substr(0, chart.find('\n'));
  EXPECT_NE(first_line.find('*'), std::string::npos);
}

TEST(AsciiPlot, Errors) {
  EXPECT_THROW(render_chart({}), std::invalid_argument);
  Series empty{"e", '*', {}, {}};
  EXPECT_THROW(render_chart({empty}), std::invalid_argument);
  Series ragged{"r", '*', {1, 2}, {1}};
  EXPECT_THROW(render_chart({ragged}), std::invalid_argument);
  Series ok{"ok", '*', {0}, {1}};
  AsciiChartOptions tiny;
  tiny.width = 2;
  EXPECT_THROW(render_chart({ok}, tiny), std::invalid_argument);
}

TEST(AsciiPlot, BarFillsProportionally) {
  const std::string empty = render_bar("x", 0.0, "0%", 10);
  const std::string half = render_bar("x", 0.5, "50%", 10);
  const std::string full = render_bar("x", 1.0, "100%", 10);
  EXPECT_EQ(std::count(empty.begin(), empty.end(), '#'), 0);
  EXPECT_EQ(std::count(half.begin(), half.end(), '#'), 5);
  EXPECT_EQ(std::count(full.begin(), full.end(), '#'), 10);
  // Clamped outside [0, 1].
  const std::string over = render_bar("x", 1.7, "?", 10);
  EXPECT_EQ(std::count(over.begin(), over.end(), '#'), 10);
}

// ------------------------------------------------------------------- json

TEST(Json, NestedDocument) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("mlcd");
  json.key("count").value(3);
  json.key("ratio").value(0.25);
  json.key("ok").value(true);
  json.key("missing").null();
  json.key("items").begin_array();
  json.value("a").value("b");
  json.begin_object().key("n").value(1).end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"name\":\"mlcd\",\"count\":3,\"ratio\":0.25,"
            "\"ok\":true,\"missing\":null,"
            "\"items\":[\"a\",\"b\",{\"n\":1}]}");
}

TEST(Json, Escaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::escape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(Json, MisuseThrows) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.str(), std::logic_error);  // unclosed
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.end_array(), std::logic_error);  // mismatch
  }
  {
    JsonWriter json;
    json.value(1);
    EXPECT_THROW(json.value(2), std::logic_error);  // two documents
  }
}

// ------------------------------------------------------------- csv reading

TEST(CsvRead, ParsesPlainAndQuotedFields) {
  const auto plain = parse_csv_line("a,b,c");
  ASSERT_EQ(plain.size(), 3u);
  EXPECT_EQ(plain[1], "b");
  const auto quoted = parse_csv_line("\"a,b\",c,\"say \"\"hi\"\"\"");
  ASSERT_EQ(quoted.size(), 3u);
  EXPECT_EQ(quoted[0], "a,b");
  EXPECT_EQ(quoted[2], "say \"hi\"");
}

TEST(CsvRead, EmptyFieldsPreserved) {
  const auto fields = parse_csv_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvRead, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"oops"), std::invalid_argument);
}

TEST(CsvRead, ReadsFileSkippingCommentsAndBlanks) {
  const std::string path = testing::TempDir() + "/mlcd_read.csv";
  {
    std::ofstream out(path);
    out << "# comment\n\na,b\n1,2\n";
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[1][1], "2");
  std::filesystem::remove(path);
  EXPECT_THROW(read_csv(path), std::runtime_error);
}

TEST(CsvRead, WriterOutputIsReadable) {
  const std::string path = testing::TempDir() + "/mlcd_roundtrip.csv";
  {
    CsvWriter csv(path, {"x", "tricky"});
    csv.add_row({"1", "a,b \"c\""});
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "a,b \"c\"");
  std::filesystem::remove(path);
}

// --------------------------------------------------------------- stopwatch

TEST(Stopwatch, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch sw;
  const double t1 = sw.elapsed_seconds();
  const double t2 = sw.elapsed_seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(Stopwatch, ResetRestartsClock) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 1.0);
}

}  // namespace
}  // namespace mlcd::util
