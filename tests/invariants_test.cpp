// Cross-cutting invariants: properties that must hold for EVERY searcher
// on EVERY scenario, checked as a parameterized sweep. These are the
// accounting and bookkeeping contracts downstream code (benches, MLCD
// reports, the CLI) relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <tuple>

#include "journal/journal.hpp"
#include "mlcd/deployment_engine.hpp"
#include "search/search_result.hpp"
#include "mlcd/mlcd.hpp"
#include "models/model_zoo.hpp"
#include "search/exhaustive.hpp"
#include "search/searcher.hpp"

namespace mlcd {
namespace {

struct Sweep {
  std::string method;
  int scenario;  // 1, 2, 3
};

std::string sweep_name(const testing::TestParamInfo<Sweep>& info) {
  std::string name = info.param.method + "_s" +
                     std::to_string(info.param.scenario);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class SearcherInvariants : public testing::TestWithParam<Sweep> {
 protected:
  SearcherInvariants()
      : cat_(cloud::aws_catalog().subset(std::vector<std::string>{
            "c5.xlarge", "c5.4xlarge", "p2.xlarge"})),
        space_(cat_, 30),
        perf_(cat_) {}

  search::SearchProblem problem() const {
    search::SearchProblem p;
    p.config.model = models::paper_zoo().model("resnet");
    p.config.platform = perf::tensorflow_profile();
    p.config.topology = perf::CommTopology::kParameterServer;
    p.space = &space_;
    switch (GetParam().scenario) {
      case 2:
        p.scenario = search::Scenario::cheapest_under_deadline(10.0);
        break;
      case 3:
        p.scenario = search::Scenario::fastest_under_budget(150.0);
        break;
      default:
        p.scenario = search::Scenario::fastest();
    }
    p.seed = 13;
    return p;
  }

  search::SearchResult run() const {
    return system::DeploymentEngine::make_searcher_for(perf_,
                                                       GetParam().method)
        ->run(problem());
  }

  cloud::InstanceCatalog cat_;
  cloud::DeploymentSpace space_;
  perf::TrainingPerfModel perf_;
};

TEST_P(SearcherInvariants, ProfilingSpendEqualsTraceSum) {
  const search::SearchResult r = run();
  double cost = 0.0, hours = 0.0;
  for (const search::ProbeStep& s : r.trace) {
    cost += s.profile_cost;
    hours += s.profile_hours;
  }
  EXPECT_NEAR(cost, r.profile_cost, 1e-9);
  EXPECT_NEAR(hours, r.profile_hours, 1e-9);
}

TEST_P(SearcherInvariants, CumulativeColumnsAreMonotonePrefixSums) {
  const search::SearchResult r = run();
  double cost = 0.0, hours = 0.0;
  for (const search::ProbeStep& s : r.trace) {
    cost += s.profile_cost;
    hours += s.profile_hours;
    EXPECT_NEAR(s.cum_profile_cost, cost, 1e-9);
    EXPECT_NEAR(s.cum_profile_hours, hours, 1e-9);
  }
}

TEST_P(SearcherInvariants, ChosenDeploymentWasActuallyMeasured) {
  const search::SearchResult r = run();
  if (!r.found) GTEST_SKIP() << "no feasible pick for this combination";
  if (r.method == "paleo") GTEST_SKIP() << "paleo plans without probing";
  bool measured = false;
  for (const search::ProbeStep& s : r.trace) {
    if (s.deployment == r.best && s.feasible && !s.failed) measured = true;
  }
  EXPECT_TRUE(measured);
}

TEST_P(SearcherInvariants, TrainingAccountingIsConsistent) {
  const search::SearchResult r = run();
  if (!r.found) GTEST_SKIP();
  const auto p = problem();
  EXPECT_NEAR(r.training_hours,
              p.config.model.samples_to_train / r.best_true_speed / 3600.0,
              1e-9);
  EXPECT_NEAR(r.training_cost,
              r.training_hours * space_.hourly_price(r.best), 1e-9);
  EXPECT_NEAR(r.total_hours(), r.profile_hours + r.training_hours, 1e-12);
  EXPECT_NEAR(r.total_cost(), r.profile_cost + r.training_cost, 1e-12);
}

TEST_P(SearcherInvariants, DeterministicAcrossRuns) {
  const search::SearchResult a = run();
  const search::SearchResult b = run();
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.profile_cost, b.profile_cost);
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].deployment, b.trace[i].deployment);
    EXPECT_DOUBLE_EQ(a.trace[i].measured_speed,
                     b.trace[i].measured_speed);
  }
}

TEST_P(SearcherInvariants, AllProbesInsideTheSpace) {
  const search::SearchResult r = run();
  for (const search::ProbeStep& s : r.trace) {
    EXPECT_TRUE(space_.contains(s.deployment));
  }
}

TEST_P(SearcherInvariants, MeasuredSpeedsNearTruth) {
  const search::SearchResult r = run();
  for (const search::ProbeStep& s : r.trace) {
    if (!s.feasible || s.failed) continue;
    EXPECT_NEAR(s.measured_speed / s.true_speed, 1.0, 0.08)
        << space_.describe(s.deployment);
  }
}

// The protective-reserve guarantee must survive every crash-safety mode:
// watchdog-killed probes (billed but uninformative), degraded iterations
// (surrogate refit failed, prior-mean safe mode), and a journal-replayed
// resume (which must also be bit-identical to its golden run). See
// docs/crash-safety.md.
TEST_P(SearcherInvariants, ConstraintsHoldUnderCrashSafetyModes) {
  const auto check = [&](const search::SearchResult& r) {
    const search::Scenario scenario = problem().scenario;
    if (r.found) EXPECT_TRUE(r.meets_constraints(scenario));
    double cost = 0.0;
    for (const search::ProbeStep& s : r.trace) cost += s.profile_cost;
    EXPECT_NEAR(cost, r.profile_cost, 1e-9);
  };

  // Watchdog: a deadline short enough to kill the larger probe windows.
  {
    search::SearchProblem p = problem();
    p.profiler_options.probe_attempt_timeout_hours = 0.2;
    check(system::DeploymentEngine::make_searcher_for(perf_,
                                                      GetParam().method)
              ->run(p));
  }

  // Degradation: every other surrogate refit fails (BO methods; the
  // hook is a no-op for methods without a surrogate).
  {
    search::SearchProblem p = problem();
    p.chaos_degrade_hook = [](int iteration) {
      return iteration % 2 == 0;
    };
    check(system::DeploymentEngine::make_searcher_for(perf_,
                                                      GetParam().method)
              ->run(p));
  }

  // Resume: journal a golden run, replay every record, and continue —
  // the result must both hold the constraints and match the golden run.
  {
    const search::SearchResult golden = run();
    const std::string path =
        (std::filesystem::path(testing::TempDir()) /
         ("invariants_" + sweep_name({GetParam(), 0}) + ".mlcdj"))
            .string();
    journal::JournalHeader header;
    header.method = GetParam().method;
    {
      journal::RunJournal writer = journal::RunJournal::create(path, header);
      for (const search::ProbeStep& s : golden.trace) {
        writer.append_probe(search::to_journal_record(s));
      }
    }
    search::SearchProblem p = problem();
    p.replay = journal::read_journal(path).probes;
    const search::SearchResult resumed =
        system::DeploymentEngine::make_searcher_for(perf_,
                                                    GetParam().method)
            ->run(p);
    check(resumed);
    EXPECT_EQ(resumed.best, golden.best);
    EXPECT_EQ(resumed.profile_cost, golden.profile_cost);
    EXPECT_EQ(resumed.trace.size(), golden.trace.size());
    EXPECT_EQ(resumed.replayed_probes,
              static_cast<int>(golden.trace.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByScenario, SearcherInvariants,
    testing::Values(Sweep{"heterbo", 1}, Sweep{"heterbo", 2},
                    Sweep{"heterbo", 3}, Sweep{"conv-bo", 1},
                    Sweep{"conv-bo", 3}, Sweep{"bo-improved", 3},
                    Sweep{"cherrypick", 1}, Sweep{"cherrypick-improved", 3},
                    Sweep{"random", 1}, Sweep{"random", 3},
                    Sweep{"exhaustive", 1}, Sweep{"paleo", 1},
                    Sweep{"paleo", 3}, Sweep{"pareto", 1},
                    Sweep{"pareto", 3}),
    sweep_name);

}  // namespace
}  // namespace mlcd
