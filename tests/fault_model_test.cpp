// Unit tests for the cloud fault-injection layer: hazard math, outage
// scheduling, retry backoff, and the typed provision outcome.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "cloud/fault_model.hpp"
#include "cloud/instance.hpp"
#include "cloud/simulator.hpp"
#include "util/rng.hpp"

namespace mlcd {
namespace {

cloud::InstanceCatalog small_catalog() {
  return cloud::aws_catalog().subset(
      std::vector<std::string>{"c5.xlarge", "c5.4xlarge", "p3.2xlarge"});
}

// ------------------------------------------------------------ hazard math

TEST(FaultModel, LaunchFailureProbabilityScalesWithNodes) {
  const auto cat = small_catalog();
  cloud::FaultModelOptions options;
  options.launch_failure_per_node = 0.02;
  cloud::FaultModel fm(cat, 1, options);

  EXPECT_DOUBLE_EQ(fm.launch_failure_probability(0), 0.0);
  EXPECT_NEAR(fm.launch_failure_probability(1), 0.02, 1e-12);
  EXPECT_NEAR(fm.launch_failure_probability(50),
              1.0 - std::pow(0.98, 50), 1e-12);
  EXPECT_GT(fm.launch_failure_probability(50),
            10.0 * fm.launch_failure_probability(1));
}

TEST(FaultModel, RevocationProbabilityUsesCatalogRates) {
  const auto cat = small_catalog();
  cloud::FaultModel fm(cat, 1, {});
  const auto p3 = cat.find("p3.2xlarge");
  ASSERT_TRUE(p3.has_value());
  const double rate = cat.at(*p3).spot_revocations_per_hour;
  ASSERT_GT(rate, 0.0);
  EXPECT_NEAR(fm.revocation_probability(*p3, 4, 0.5),
              1.0 - std::exp(-4.0 * rate * 0.5), 1e-12);
  // More nodes, longer window: strictly riskier.
  EXPECT_GT(fm.revocation_probability(*p3, 8, 0.5),
            fm.revocation_probability(*p3, 4, 0.5));
  EXPECT_GT(fm.revocation_probability(*p3, 4, 1.0),
            fm.revocation_probability(*p3, 4, 0.5));
}

TEST(FaultModel, EnabledIsMarketAware) {
  const auto cat = small_catalog();
  // Default options: the only live hazard is the catalog's spot
  // revocation rates, which cannot fire on the on-demand market.
  cloud::FaultModel fm(cat, 1, {});
  EXPECT_FALSE(fm.enabled(cloud::Market::kOnDemand));
  EXPECT_TRUE(fm.enabled(cloud::Market::kSpot));

  cloud::FaultModelOptions launch;
  launch.launch_failure_per_node = 0.1;
  cloud::FaultModel fm2(cat, 1, launch);
  EXPECT_TRUE(fm2.enabled(cloud::Market::kOnDemand));
}

TEST(FaultModel, InvalidHazardsThrow) {
  const auto cat = small_catalog();
  cloud::FaultModelOptions bad;
  bad.launch_failure_per_node = 1.0;
  EXPECT_THROW(cloud::FaultModel(cat, 1, bad), std::invalid_argument);
  cloud::FaultModelOptions bad2;
  bad2.straggler_rate = -0.5;
  EXPECT_THROW(cloud::FaultModel(cat, 1, bad2), std::invalid_argument);
  cloud::FaultModelOptions bad3;
  bad3.scheduled_outages = {{99, {0.0, 1.0}}};
  EXPECT_THROW(cloud::FaultModel(cat, 1, bad3), std::invalid_argument);
}

// ---------------------------------------------------------------- outages

TEST(FaultModel, ScheduledOutagesGateTheType) {
  const auto cat = small_catalog();
  cloud::FaultModelOptions options;
  options.scheduled_outages = {{1, {2.0, 5.0}}};
  cloud::FaultModel fm(cat, 1, options);

  EXPECT_FALSE(fm.in_outage(1, 1.9));
  EXPECT_TRUE(fm.in_outage(1, 2.0));
  EXPECT_TRUE(fm.in_outage(1, 4.99));
  EXPECT_FALSE(fm.in_outage(1, 5.0));
  EXPECT_FALSE(fm.in_outage(0, 3.0));
  EXPECT_NEAR(fm.outage_remaining_hours(1, 3.0), 2.0, 1e-12);

  const auto outcome =
      fm.attempt(cloud::Deployment{1, 4}, cloud::Market::kOnDemand,
                 0.25, 3.0);
  EXPECT_EQ(outcome.fault, cloud::FaultKind::kCapacityOutage);
  EXPECT_DOUBLE_EQ(outcome.bill_fraction, 0.0);  // nothing ever started
  EXPECT_GT(outcome.wall_fraction, 0.0);         // diagnosing is not free
}

TEST(FaultModel, EpisodeCalendarIsSeedDeterministic) {
  const auto cat = small_catalog();
  cloud::FaultModelOptions options;
  options.outage_episodes_per_100h = 50.0;
  cloud::FaultModel a(cat, 42, options);
  cloud::FaultModel b(cat, 42, options);
  bool any = false;
  for (double t = 0.0; t < 200.0; t += 0.5) {
    for (std::size_t type = 0; type < cat.size(); ++type) {
      EXPECT_EQ(a.in_outage(type, t), b.in_outage(type, t));
      any = any || a.in_outage(type, t);
    }
  }
  EXPECT_TRUE(any);  // 50 episodes / 100 h must actually materialize
}

// ---------------------------------------------------------------- backoff

TEST(RetryPolicy, BackoffGrowsAndIsHardCapped) {
  cloud::RetryPolicy retry;
  retry.base_backoff_hours = 1.0 / 60.0;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff_hours = 3.0 / 60.0;
  retry.backoff_jitter_sigma = 0.0;  // deterministic for exact checks

  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(retry.backoff_hours_after(0, rng), 0.0);
  EXPECT_NEAR(retry.backoff_hours_after(1, rng), 1.0 / 60.0, 1e-12);
  EXPECT_NEAR(retry.backoff_hours_after(2, rng), 2.0 / 60.0, 1e-12);
  // 4/60 would exceed the cap.
  EXPECT_NEAR(retry.backoff_hours_after(3, rng), 3.0 / 60.0, 1e-12);

  // The cap holds after jitter too — it is what the worst-case reserve
  // accounting relies on.
  retry.backoff_jitter_sigma = 1.5;
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(retry.backoff_hours_after(3, rng), retry.max_backoff_hours);
  }
}

// ----------------------------------------------------------- try_provision

TEST(ProvisionOutcome, DistinguishesInvalidFromTransient) {
  const auto cat = small_catalog();
  const cloud::DeploymentSpace space(cat, 10);
  cloud::CloudSimulator sim(space, 7);

  // Invalid deployment: typed outcome, never retryable; the legacy
  // entry point still throws.
  const auto invalid = sim.try_provision({0, 99});
  EXPECT_EQ(invalid.status, cloud::ProvisionStatus::kInvalidDeployment);
  EXPECT_FALSE(invalid.ok());
  EXPECT_FALSE(invalid.retryable());
  EXPECT_FALSE(invalid.cluster.has_value());
  EXPECT_THROW(sim.provision({0, 99}), std::invalid_argument);

  // No fault model attached: valid deployments always provision.
  const auto ok = sim.try_provision({0, 4});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.cluster.has_value());
  EXPECT_GT(ok.cluster->setup_hours, 0.0);
}

TEST(ProvisionOutcome, FaultModelInjectsRetryableFailures) {
  const auto cat = small_catalog();
  const cloud::DeploymentSpace space(cat, 10);
  cloud::CloudSimulator sim(space, 7);

  cloud::FaultModelOptions options;
  options.launch_failure_per_node = 0.5;
  options.scheduled_outages = {{2, {0.0, 100.0}}};
  cloud::FaultModel fm(cat, 11, options);
  sim.set_fault_model(&fm);

  const auto outage = sim.try_provision({2, 1}, /*now_hours=*/1.0);
  EXPECT_EQ(outage.status, cloud::ProvisionStatus::kCapacityOutage);
  EXPECT_TRUE(outage.retryable());

  int failures = 0;
  int successes = 0;
  for (int i = 0; i < 40; ++i) {
    const auto outcome = sim.try_provision({0, 4});
    if (outcome.ok()) {
      ++successes;
    } else {
      EXPECT_EQ(outcome.status, cloud::ProvisionStatus::kLaunchFailure);
      EXPECT_TRUE(outcome.retryable());
      ++failures;
    }
  }
  EXPECT_GT(failures, 5);   // P(fail, n=4) ≈ 0.94
  EXPECT_GT(successes, 0);  // but not a brick wall over 40 tries

  sim.set_fault_model(nullptr);
  EXPECT_TRUE(sim.try_provision({0, 4}).ok());
}

TEST(FaultKindNames, AreStable) {
  EXPECT_EQ(cloud::fault_kind_name(cloud::FaultKind::kNone), "none");
  EXPECT_EQ(cloud::fault_kind_name(cloud::FaultKind::kLaunchFailure),
            "launch-failure");
  EXPECT_EQ(cloud::fault_kind_name(cloud::FaultKind::kSpotRevocation),
            "spot-revocation");
  EXPECT_EQ(cloud::fault_kind_name(cloud::FaultKind::kCapacityOutage),
            "capacity-outage");
  EXPECT_EQ(cloud::fault_kind_name(cloud::FaultKind::kStraggler),
            "straggler");
  EXPECT_EQ(cloud::provision_status_name(
                cloud::ProvisionStatus::kInvalidDeployment),
            "invalid-deployment");
}

}  // namespace
}  // namespace mlcd
