#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mlcd::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: need at least one column");
  }
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TablePrinter::set_align(std::size_t index, Align align) {
  if (index >= aligns_.size()) {
    throw std::out_of_range("TablePrinter::set_align: bad column index");
  }
  aligns_[index] = align;
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument(
        "TablePrinter::add_row: cell count does not match header count");
  }
  rows_.push_back(Row{std::move(cells)});
}

void TablePrinter::add_separator() { rows_.push_back(Row{}); }

std::string TablePrinter::render() const {
  const std::size_t ncols = headers_.size();
  std::vector<std::size_t> width(ncols);
  for (std::size_t c = 0; c < ncols; ++c) width[c] = headers_[c].size();
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto emit_cells = [&](std::ostringstream& out,
                        const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < ncols; ++c) {
      if (c != 0) out << "  ";
      const std::string& cell = cells[c];
      const std::size_t pad = width[c] - cell.size();
      if (aligns_[c] == Align::kRight) out << std::string(pad, ' ');
      out << cell;
      if (aligns_[c] == Align::kLeft && c + 1 != ncols) {
        out << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  std::ostringstream out;
  emit_cells(out, headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < ncols; ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const Row& row : rows_) {
    if (row.cells.empty()) {
      out << std::string(total, '-') << '\n';
    } else {
      emit_cells(out, row.cells);
    }
  }
  return out.str();
}

void TablePrinter::print() const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), stdout);
}

std::string fmt_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_speedup(double value, int digits) {
  return fmt_fixed(value, digits) + "x";
}

std::string fmt_percent(double fraction, int digits) {
  return fmt_fixed(fraction * 100.0, digits) + "%";
}

std::string fmt_dollars(double value, int digits) {
  return "$" + fmt_fixed(value, digits);
}

std::string fmt_hours(double value, int digits) {
  return fmt_fixed(value, digits) + " h";
}

}  // namespace mlcd::util
