file(REMOVE_RECURSE
  "CMakeFiles/mlcd_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/mlcd_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/mlcd_util.dir/csv.cpp.o"
  "CMakeFiles/mlcd_util.dir/csv.cpp.o.d"
  "CMakeFiles/mlcd_util.dir/json.cpp.o"
  "CMakeFiles/mlcd_util.dir/json.cpp.o.d"
  "CMakeFiles/mlcd_util.dir/logging.cpp.o"
  "CMakeFiles/mlcd_util.dir/logging.cpp.o.d"
  "CMakeFiles/mlcd_util.dir/rng.cpp.o"
  "CMakeFiles/mlcd_util.dir/rng.cpp.o.d"
  "CMakeFiles/mlcd_util.dir/stopwatch.cpp.o"
  "CMakeFiles/mlcd_util.dir/stopwatch.cpp.o.d"
  "CMakeFiles/mlcd_util.dir/table.cpp.o"
  "CMakeFiles/mlcd_util.dir/table.cpp.o.d"
  "CMakeFiles/mlcd_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mlcd_util.dir/thread_pool.cpp.o.d"
  "libmlcd_util.a"
  "libmlcd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
