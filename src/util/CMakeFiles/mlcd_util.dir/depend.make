# Empty dependencies file for mlcd_util.
# This may be replaced when dependencies are built.
