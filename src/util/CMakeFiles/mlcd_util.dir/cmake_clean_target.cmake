file(REMOVE_RECURSE
  "libmlcd_util.a"
)
