#include "util/logging.hpp"

#include <cstdio>
#include <mutex>

namespace mlcd::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

// Serializes writes so concurrent log lines do not interleave mid-line.
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, std::string_view component,
                 std::string_view message) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(log_level_name(level).size()),
               log_level_name(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace mlcd::util
