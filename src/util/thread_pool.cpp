#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

namespace mlcd::util {

ThreadPool::ThreadPool(int threads)
    : thread_count_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(thread_count_ - 1));
  for (int i = 1; i < thread_count_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

bool ThreadPool::run_with_deadline(std::function<void()> task,
                                   double timeout_seconds) {
  if (timeout_seconds <= 0.0) {
    task();
    return true;
  }
  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool abandoned = false;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  // Detached on purpose: a hung task would otherwise hang the join. The
  // helper signals through the shared block, which outlives both sides.
  std::thread([shared, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(shared->mutex);
    shared->done = true;
    if (!shared->abandoned) shared->error = error;
    shared->cv.notify_all();
  }).detach();

  std::unique_lock<std::mutex> lock(shared->mutex);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  if (!shared->cv.wait_until(lock, deadline, [&] { return shared->done; })) {
    shared->abandoned = true;
    return false;
  }
  if (shared->error) std::rethrow_exception(shared->error);
  return true;
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (thread_count_ == 1) {
    fn(0, n);
    return;
  }
  // One batch at a time: a second submitter waits here, not on corrupted
  // batch state.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_n_ = n;
    // Never more chunks than elements, so tiny batches skip empty ranges.
    chunk_count_ = std::min<std::size_t>(
        static_cast<std::size_t>(thread_count_), n);
    next_chunk_ = 0;
    completed_chunks_ = 0;
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  run_chunks();  // the calling thread is one of the lanes

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return completed_chunks_ == chunk_count_; });
  job_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    run_chunks();
  }
}

void ThreadPool::run_chunks() {
  for (;;) {
    std::size_t chunk;
    std::size_t n;
    std::size_t chunks;
    const std::function<void(std::size_t, std::size_t)>* job;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job_ == nullptr || next_chunk_ >= chunk_count_) return;
      chunk = next_chunk_++;
      n = job_n_;
      chunks = chunk_count_;
      job = job_;
    }
    const std::size_t begin = chunk * n / chunks;
    const std::size_t end = (chunk + 1) * n / chunks;
    try {
      if (begin < end) (*job)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (++completed_chunks_ == chunk_count_) done_cv_.notify_all();
    }
  }
}

}  // namespace mlcd::util
