// CSV reading/writing. The writer dumps the raw series behind each bench
// figure; the reader loads user-supplied instance catalogs. Both handle
// RFC-4180 quoting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace mlcd::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row; must match the header arity.
  void add_row(const std::vector<std::string>& cells);

  /// Number of data rows written so far.
  std::size_t rows_written() const noexcept { return rows_; }

  /// Quotes a single field per RFC 4180 when it contains
  /// commas, quotes, or newlines.
  static std::string escape(const std::string& field);

 private:
  void write_line(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// Parses one CSV line into fields (RFC-4180: quoted fields may contain
/// commas and doubled quotes). Throws std::invalid_argument on an
/// unterminated quote.
std::vector<std::string> parse_csv_line(const std::string& line);

/// Reads a whole CSV file into rows of fields. Blank lines and lines
/// starting with '#' are skipped. Throws std::runtime_error when the file
/// cannot be opened.
std::vector<std::vector<std::string>> read_csv(const std::string& path);

}  // namespace mlcd::util
