// Minimal streaming JSON writer and recursive-descent parser.
//
// MLCD run reports are consumed by scripts as often as by eyes; the CLI's
// --json mode serializes them with this writer. It produces compact,
// valid JSON with correct escaping and enforces well-formedness (keys
// only inside objects, one value per key) by throwing std::logic_error
// on misuse. The matching parse_json() reads any document the writer can
// produce (and standard JSON in general) back into a JsonValue tree —
// used by the report round-trip tests and the benchmark regression gate.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mlcd::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be directly inside an object and must be
  /// followed by exactly one value (or container).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Splices a pre-serialized JSON document in value position (e.g. a
  /// nested report produced by another writer). The caller vouches that
  /// `json` is itself well-formed; structural bookkeeping treats it as
  /// one value.
  JsonWriter& raw(std::string_view json);

  /// The serialized document; all containers must be closed.
  std::string str() const;

  /// JSON string escaping (quotes, backslashes, control characters).
  static std::string escape(std::string_view text);

 private:
  enum class Scope { kObject, kArray };

  void before_value();

  std::ostringstream out_;
  std::vector<Scope> scopes_;
  std::vector<bool> first_;
  bool pending_key_ = false;
  bool done_ = false;
};

/// A parsed JSON document node. Objects keep insertion-independent
/// (sorted) key order via std::map; duplicate keys keep the last value,
/// matching common JSON library behavior.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  static JsonValue make_null();
  static JsonValue make_bool(bool flag);
  static JsonValue make_number(double number);
  static JsonValue make_string(std::string text);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::map<std::string, JsonValue> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Checked accessors; throw std::logic_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; throws std::out_of_range when absent
  /// (`contains` probes first). Only valid on objects.
  bool contains(std::string_view name) const;
  const JsonValue& at(std::string_view name) const;

  /// Array element; throws std::out_of_range when out of bounds.
  const JsonValue& at(std::size_t index) const;
  std::size_t size() const;  // array/object member count

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a complete JSON document. Throws std::invalid_argument with a
/// byte offset on malformed input or trailing garbage. Nesting is capped
/// (kMaxJsonDepth) so adversarial input cannot overflow the stack.
JsonValue parse_json(std::string_view text);

inline constexpr int kMaxJsonDepth = 96;

}  // namespace mlcd::util
