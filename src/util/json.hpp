// Minimal streaming JSON writer.
//
// MLCD run reports are consumed by scripts as often as by eyes; the CLI's
// --json mode serializes them with this writer. It produces compact,
// valid JSON with correct escaping and enforces well-formedness (keys
// only inside objects, one value per key) by throwing std::logic_error
// on misuse.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mlcd::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be directly inside an object and must be
  /// followed by exactly one value (or container).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// The serialized document; all containers must be closed.
  std::string str() const;

  /// JSON string escaping (quotes, backslashes, control characters).
  static std::string escape(std::string_view text);

 private:
  enum class Scope { kObject, kArray };

  void before_value();

  std::ostringstream out_;
  std::vector<Scope> scopes_;
  std::vector<bool> first_;
  bool pending_key_ = false;
  bool done_ = false;
};

}  // namespace mlcd::util
