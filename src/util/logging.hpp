// Minimal leveled logging for the MLCD library.
//
// The library is used both interactively (examples, benches) and inside
// tight search loops (tests sweeping hundreds of scenarios), so logging is
// cheap when disabled: level checks are a single atomic load and message
// formatting only happens for enabled levels.
#pragma once

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

namespace mlcd::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the short uppercase tag for a level ("INFO", "WARN", ...).
std::string_view log_level_name(LogLevel level) noexcept;

/// Global minimum level; messages below it are dropped. Thread-safe.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// True when `level` would currently be emitted.
bool log_enabled(LogLevel level) noexcept;

/// Emits one formatted line to stderr: "[LEVEL] component: message".
void log_message(LogLevel level, std::string_view component,
                 std::string_view message);

/// Stream-style log statement builder, used via the MLCD_LOG macro.
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view component)
      : level_(level), component_(component), enabled_(log_enabled(level)) {}

  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  ~LogStatement() {
    if (enabled_) log_message(level_, component_, stream_.str());
  }

  template <typename T>
  LogStatement& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace mlcd::util

#define MLCD_LOG(level, component) \
  ::mlcd::util::LogStatement(::mlcd::util::LogLevel::level, component)
