// Deterministic random-number utilities.
//
// All stochastic components in the library (measurement noise, random
// search, BO initialization) draw from an explicitly seeded Rng so that
// every experiment is reproducible bit-for-bit. `fork()` derives an
// independent child stream, which lets a parent seed fan out into many
// uncorrelated streams (one per probed deployment, per repetition, ...)
// without the classic "seed + i" correlation pitfalls.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace mlcd::util {

/// Seeded pseudo-random generator wrapping std::mt19937_64 with the
/// distribution helpers the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// The seed this stream was constructed with.
  std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw.
  double normal();

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal draw such that the *median* of the distribution is
  /// `median` and the underlying normal has standard deviation `sigma`.
  /// Used for multiplicative measurement noise around a true value.
  double lognormal_median(double median, double sigma);

  /// Derives an independent child stream. Mixing uses splitmix64 so
  /// nearby labels produce statistically unrelated child seeds.
  Rng fork(std::uint64_t label);

  /// Derives an independent child stream from a string label
  /// (e.g. an instance-type name), via FNV-1a hashing.
  Rng fork(std::string_view label);

  /// Access to the raw engine for std::shuffle and friends.
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// splitmix64 mixing function (public-domain constant schedule).
std::uint64_t splitmix64(std::uint64_t x) noexcept;

/// FNV-1a 64-bit hash of a string.
std::uint64_t fnv1a64(std::string_view s) noexcept;

}  // namespace mlcd::util
