#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace mlcd::util {

void JsonWriter::before_value() {
  if (done_) {
    throw std::logic_error("JsonWriter: document already complete");
  }
  if (!scopes_.empty() && scopes_.back() == Scope::kObject &&
      !pending_key_) {
    throw std::logic_error("JsonWriter: object member needs a key");
  }
  if ((scopes_.empty() || scopes_.back() == Scope::kArray) &&
      pending_key_) {
    throw std::logic_error("JsonWriter: dangling key outside object");
  }
  if (!scopes_.empty() && scopes_.back() == Scope::kArray) {
    if (!first_.back()) out_ << ',';
    first_.back() = false;
  }
  pending_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  scopes_.push_back(Scope::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (scopes_.empty() || scopes_.back() != Scope::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  out_ << '}';
  scopes_.pop_back();
  first_.pop_back();
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  scopes_.push_back(Scope::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (scopes_.empty() || scopes_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  out_ << ']';
  scopes_.pop_back();
  first_.pop_back();
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_ || scopes_.empty() || scopes_.back() != Scope::kObject ||
      pending_key_) {
    throw std::logic_error("JsonWriter: key() outside object position");
  }
  if (!first_.back()) out_ << ',';
  first_.back() = false;
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ << '"' << escape(text) << '"';
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ << "null";  // JSON has no Inf/NaN
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", number);
    out_ << buf;
  }
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ << number;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  if (json.empty()) {
    throw std::logic_error("JsonWriter::raw: empty document");
  }
  before_value();
  out_ << json;
  if (scopes_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!scopes_.empty()) {
    throw std::logic_error("JsonWriter::str: unclosed containers");
  }
  return out_.str();
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------- JsonValue

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool flag) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = flag;
  return v;
}

JsonValue JsonValue::make_number(double number) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = number;
  return v;
}

JsonValue JsonValue::make_string(std::string text) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(text);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw std::logic_error(std::string("JsonValue: not a ") + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_error("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) kind_error("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_error("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (!is_array()) kind_error("array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (!is_object()) kind_error("object");
  return object_;
}

bool JsonValue::contains(std::string_view name) const {
  if (!is_object()) kind_error("object");
  return object_.find(std::string(name)) != object_.end();
}

const JsonValue& JsonValue::at(std::string_view name) const {
  if (!is_object()) kind_error("object");
  const auto it = object_.find(std::string(name));
  if (it == object_.end()) {
    throw std::out_of_range("JsonValue: no member \"" + std::string(name) +
                            "\"");
  }
  return it->second;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  if (!is_array()) kind_error("array");
  if (index >= array_.size()) {
    throw std::out_of_range("JsonValue: array index out of range");
  }
  return array_[index];
}

std::size_t JsonValue::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  kind_error("array or object");
}

// --------------------------------------------------------------- parse_json

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("parse_json: " + what + " at byte " +
                                std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxJsonDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      // Last duplicate wins, as in most JSON libraries.
      members[std::move(key)] = parse_value(depth + 1);
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array(int depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') break;
      if (c < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("unknown escape sequence");
      }
    }
    return out;
  }

  std::string parse_unicode_escape() {
    const unsigned code = parse_hex4();
    // The writer only ever emits \u00XX for control characters, but
    // accept the full BMP (and surrogate pairs) so standard JSON from
    // other producers parses too. Encode as UTF-8.
    unsigned cp = code;
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      fail("malformed number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // leading zero may not be followed by more digits
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(
              static_cast<unsigned char>(text_[pos_]))) {
        fail("malformed fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(
              static_cast<unsigned char>(text_[pos_]))) {
        fail("malformed exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    // A grammatically valid literal can still overflow the double range
    // ("1e999" parses to +inf); JSON has no representation for
    // non-finite numbers, so accepting one would round-trip as garbage.
    if (!std::isfinite(value)) fail("number literal overflows double");
    return JsonValue::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace mlcd::util
