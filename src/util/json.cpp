#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mlcd::util {

void JsonWriter::before_value() {
  if (done_) {
    throw std::logic_error("JsonWriter: document already complete");
  }
  if (!scopes_.empty() && scopes_.back() == Scope::kObject &&
      !pending_key_) {
    throw std::logic_error("JsonWriter: object member needs a key");
  }
  if ((scopes_.empty() || scopes_.back() == Scope::kArray) &&
      pending_key_) {
    throw std::logic_error("JsonWriter: dangling key outside object");
  }
  if (!scopes_.empty() && scopes_.back() == Scope::kArray) {
    if (!first_.back()) out_ << ',';
    first_.back() = false;
  }
  pending_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  scopes_.push_back(Scope::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (scopes_.empty() || scopes_.back() != Scope::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  out_ << '}';
  scopes_.pop_back();
  first_.pop_back();
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  scopes_.push_back(Scope::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (scopes_.empty() || scopes_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  out_ << ']';
  scopes_.pop_back();
  first_.pop_back();
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_ || scopes_.empty() || scopes_.back() != Scope::kObject ||
      pending_key_) {
    throw std::logic_error("JsonWriter: key() outside object position");
  }
  if (!first_.back()) out_ << ',';
  first_.back() = false;
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ << '"' << escape(text) << '"';
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ << "null";  // JSON has no Inf/NaN
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", number);
    out_ << buf;
  }
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ << number;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  if (scopes_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!scopes_.empty()) {
    throw std::logic_error("JsonWriter::str: unclosed containers");
  }
  return out_.str();
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace mlcd::util
