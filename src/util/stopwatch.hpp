// Wall-clock stopwatch for instrumentation in benches and the profiler
// shell. Simulated time inside experiments never uses this — simulation
// time is explicit (see cloud::BillingMeter) so results are deterministic.
#pragma once

#include <chrono>

namespace mlcd::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const;

  /// Milliseconds elapsed since construction or the last reset().
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mlcd::util
