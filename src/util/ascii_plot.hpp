// Terminal charts for the figure-reproduction benches.
//
// The paper's evaluation is figures, not tables; where a series' *shape*
// is the claim (concave scale-out, whisker distributions, growth trends),
// the benches render it directly in the terminal next to the numbers.
#pragma once

#include <string>
#include <vector>

namespace mlcd::util {

/// One plottable series: (x, y) points drawn with a single symbol.
struct Series {
  std::string name;
  char symbol = '*';
  std::vector<double> x;
  std::vector<double> y;
};

struct AsciiChartOptions {
  int width = 64;    ///< plot area columns (excluding axis labels)
  int height = 16;   ///< plot area rows
  std::string x_label;
  std::string y_label;
};

/// Renders one or more series into a character grid with y-axis tick
/// labels, an x-axis ruler and a legend. Ranges are the union of all
/// series; y starts at 0 when all values are non-negative.
/// Throws std::invalid_argument when no series has points or when a
/// series' x/y sizes disagree.
std::string render_chart(const std::vector<Series>& series,
                         const AsciiChartOptions& options = {});

/// Renders a horizontal bar: "label |#######        | value".
/// `fraction` is clamped to [0, 1].
std::string render_bar(const std::string& label, double fraction,
                       const std::string& value, int width = 40,
                       int label_width = 14);

}  // namespace mlcd::util
