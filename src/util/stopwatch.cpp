#include "util/stopwatch.hpp"

namespace mlcd::util {

double Stopwatch::elapsed_seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace mlcd::util
