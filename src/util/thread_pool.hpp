// Fixed-size worker pool for deterministic data-parallel loops.
//
// The BO searchers score acquisition functions over thousands of
// candidate deployments per iteration; this pool parallelizes such scans
// while keeping probe traces bit-identical across thread counts. The
// contract that makes this possible:
//
//   * parallel_for splits [0, n) into contiguous chunks with a fixed
//     partitioning rule — no work stealing, no dynamic scheduling — so
//     every index is processed exactly once, by exactly one chunk.
//   * Workers write per-element results into disjoint slots of a
//     pre-sized buffer. Element i's value never depends on which thread
//     computed it or on how many threads exist.
//   * Any cross-element reduction (argmax, sum, sort) happens after
//     parallel_for returns, serially, in index order.
//
// Under these rules the output is bitwise independent of thread count,
// which tests/fastpath_test.cpp enforces for every searcher.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlcd::util {

class ThreadPool {
 public:
  /// Pool with `threads` execution lanes (the calling thread counts as
  /// one, so `threads - 1` workers are spawned). `threads <= 1` runs
  /// everything inline. `threads == 0` is clamped to 1.
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const noexcept { return thread_count_; }

  /// Invokes fn(begin, end) over contiguous chunks covering [0, n) and
  /// blocks until all chunks finish. Chunk c is [c*n/k, (c+1)*n/k) with
  /// k = thread_count(). The first exception thrown by fn is rethrown on
  /// the caller after the batch drains. Not reentrant: fn must not call
  /// parallel_for on the same pool.
  ///
  /// Safe to call from multiple threads on a shared pool: concurrent
  /// submissions serialize (one batch at a time, FIFO by mutex order).
  /// This is what lets the service scheduler hand M concurrent search
  /// sessions one shared scan pool instead of spawning a worker set per
  /// job lane. Chunking depends only on (n, thread_count), so sharing is
  /// trace-neutral under the determinism contract above.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// std::thread::hardware_concurrency() with a floor of 1.
  static int hardware_threads();

  /// Runs `task` with a real wall-clock deadline: returns true when the
  /// task finished within `timeout_seconds`, false when the deadline
  /// expired first. `timeout_seconds <= 0` runs the task inline (no
  /// deadline, always true). A task that misses its deadline is
  /// *abandoned*, not cancelled — its helper thread keeps running to
  /// completion in the background, so the task must exclusively own all
  /// state it touches (share nothing with the caller); the profiler's
  /// probe watchdog hands each attempt a self-contained state block for
  /// exactly this reason. Exceptions from a task that finished in time
  /// are rethrown on the caller; exceptions after abandonment are
  /// swallowed with the thread.
  static bool run_with_deadline(std::function<void()> task,
                                double timeout_seconds);

 private:
  void worker_loop();
  /// Claims and runs chunks of the current batch until none remain.
  void run_chunks();

  int thread_count_ = 1;
  std::vector<std::thread> workers_;

  /// Held for the full span of one parallel_for batch (submission through
  /// completion) so concurrent submitters on a shared pool serialize.
  /// Always acquired before mutex_; workers never take it.
  std::mutex submit_mutex_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;

  // Current batch, valid while job_ != nullptr.
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t chunk_count_ = 0;
  std::size_t next_chunk_ = 0;
  std::size_t completed_chunks_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
};

}  // namespace mlcd::util
