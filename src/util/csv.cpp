#include "util/csv.hpp"

#include <stdexcept>

namespace mlcd::util {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), arity_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  if (arity_ == 0) {
    throw std::invalid_argument("CsvWriter: empty header");
  }
  write_line(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != arity_) {
    throw std::invalid_argument("CsvWriter: row arity mismatch");
  }
  write_line(cells);
  ++rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"' && current.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (quoted) {
    throw std::invalid_argument("parse_csv_line: unterminated quote");
  }
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_csv: cannot open " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

}  // namespace mlcd::util
