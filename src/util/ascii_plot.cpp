#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"

namespace mlcd::util {

std::string render_chart(const std::vector<Series>& series,
                         const AsciiChartOptions& options) {
  if (options.width < 8 || options.height < 4) {
    throw std::invalid_argument("render_chart: area too small");
  }
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min, y_min = x_min, y_max = -x_min;
  std::size_t points = 0;
  for (const Series& s : series) {
    if (s.x.size() != s.y.size()) {
      throw std::invalid_argument("render_chart: x/y size mismatch in " +
                                  s.name);
    }
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      x_min = std::min(x_min, s.x[i]);
      x_max = std::max(x_max, s.x[i]);
      y_min = std::min(y_min, s.y[i]);
      y_max = std::max(y_max, s.y[i]);
      ++points;
    }
  }
  if (points == 0) {
    throw std::invalid_argument("render_chart: no points");
  }
  if (y_min >= 0.0) y_min = 0.0;  // anchor non-negative data at zero
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(h, std::string(w, ' '));

  auto col_of = [&](double x) {
    const double t = (x - x_min) / (x_max - x_min);
    return std::clamp(static_cast<int>(std::lround(t * (w - 1))), 0, w - 1);
  };
  auto row_of = [&](double y) {
    const double t = (y - y_min) / (y_max - y_min);
    // Row 0 is the top of the chart.
    return std::clamp(h - 1 - static_cast<int>(std::lround(t * (h - 1))),
                      0, h - 1);
  };

  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      grid[row_of(s.y[i])][col_of(s.x[i])] = s.symbol;
    }
  }

  // Compose with y tick labels on the left (top, middle, bottom).
  std::ostringstream out;
  if (!options.y_label.empty()) {
    out << options.y_label << '\n';
  }
  const int label_width = 10;
  auto y_tick = [&](int row) {
    const double t = static_cast<double>(h - 1 - row) / (h - 1);
    return y_min + t * (y_max - y_min);
  };
  for (int row = 0; row < h; ++row) {
    std::string label(label_width, ' ');
    if (row == 0 || row == h / 2 || row == h - 1) {
      std::string text = fmt_fixed(y_tick(row), 1);
      if (text.size() > static_cast<std::size_t>(label_width - 1)) {
        text = text.substr(0, label_width - 1);
      }
      label = std::string(label_width - 1 - text.size(), ' ') + text + " ";
    }
    out << label << '|' << grid[row] << '\n';
  }
  out << std::string(label_width, ' ') << '+' << std::string(w, '-')
      << '\n';
  out << std::string(label_width + 1, ' ') << fmt_fixed(x_min, 0)
      << std::string(
             std::max(1, w - 2 - static_cast<int>(
                                     fmt_fixed(x_min, 0).size() +
                                     fmt_fixed(x_max, 0).size())),
             ' ')
      << fmt_fixed(x_max, 0);
  if (!options.x_label.empty()) out << "  " << options.x_label;
  out << '\n';

  // Legend.
  if (series.size() > 1 || !series.front().name.empty()) {
    out << std::string(label_width + 1, ' ');
    for (const Series& s : series) {
      out << s.symbol << "=" << s.name << "  ";
    }
    out << '\n';
  }
  return out.str();
}

std::string render_bar(const std::string& label, double fraction,
                       const std::string& value, int width,
                       int label_width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int fill = static_cast<int>(std::lround(fraction * width));
  std::string padded = label;
  if (static_cast<int>(padded.size()) < label_width) {
    padded += std::string(label_width - padded.size(), ' ');
  }
  return padded + " |" + std::string(fill, '#') +
         std::string(width - fill, ' ') + "| " + value;
}

}  // namespace mlcd::util
