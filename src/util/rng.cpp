#include "util/rng.hpp"

#include <cmath>

namespace mlcd::util {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::lognormal_median(double median, double sigma) {
  // exp(N(log median, sigma)) has median `median`.
  return std::exp(normal(std::log(median), sigma));
}

Rng Rng::fork(std::uint64_t label) {
  // Mix the parent seed with the label, then advance the parent engine so
  // consecutive unlabeled forks also differ.
  const std::uint64_t salt = engine_();
  return Rng(splitmix64(seed_ ^ splitmix64(label) ^ salt));
}

Rng Rng::fork(std::string_view label) { return fork(fnv1a64(label)); }

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace mlcd::util
