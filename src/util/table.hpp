// Aligned-column text tables.
//
// Every figure-reproduction bench prints its rows through TablePrinter so
// the terminal output reads like the paper's tables: a header row, aligned
// numeric columns, and an optional title/footnote. Numbers are formatted
// with a fixed precision chosen per column.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mlcd::util {

/// Column alignment within a table.
enum class Align { kLeft, kRight };

/// Collects rows of strings and renders them with per-column alignment.
class TablePrinter {
 public:
  /// Creates a table with the given column headers. All columns default to
  /// right alignment except the first, which is left-aligned (labels).
  explicit TablePrinter(std::vector<std::string> headers);

  /// Overrides the alignment of column `index`.
  void set_align(std::size_t index, Align align);

  /// Appends a data row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal separator after the most recently added row.
  void add_separator();

  /// Renders the table to a string (trailing newline included).
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;  // empty => separator
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

/// Formats a double with `digits` decimal places ("12.35").
std::string fmt_fixed(double value, int digits);

/// Formats a double as "12.3x" speedup notation.
std::string fmt_speedup(double value, int digits = 2);

/// Formats a fraction as a percentage string ("81.5%").
std::string fmt_percent(double fraction, int digits = 1);

/// Formats dollars ("$123.45").
std::string fmt_dollars(double value, int digits = 2);

/// Formats hours ("12.3 h").
std::string fmt_hours(double value, int digits = 2);

}  // namespace mlcd::util
