#include "journal/journal.hpp"

#include <array>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "cloud/instance.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace mlcd::journal {
namespace {

// The journal demands bit-exact double round-trips (resume must
// reproduce the uninterrupted trace to the last bit), so records are
// composed locally at %.17g — the shortest precision guaranteed to
// round-trip IEEE doubles through strtod — rather than with
// util::JsonWriter's display-oriented %.10g.
std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string format_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

class Composer {
 public:
  Composer& field(std::string_view key, std::string_view text) {
    sep();
    out_ << '"' << key << "\":\"" << util::JsonWriter::escape(text) << '"';
    return *this;
  }
  /// String literals must not fall into the bool overload (const char* ->
  /// bool is a standard conversion and would beat string_view).
  Composer& field(std::string_view key, const char* text) {
    return field(key, std::string_view(text));
  }
  Composer& field(std::string_view key, double v) {
    return raw(key, format_double(v));
  }
  Composer& field(std::string_view key, int v) {
    return raw(key, std::to_string(v));
  }
  Composer& field(std::string_view key, std::size_t v) {
    return raw(key, std::to_string(v));
  }
  Composer& field(std::string_view key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  /// uint64 values (seeds, hashes) exceed the double-exact JSON number
  /// range, so they travel as decimal strings.
  Composer& field_u64(std::string_view key, std::uint64_t v) {
    return field(key, format_u64(v));
  }
  Composer& raw(std::string_view key, std::string_view json) {
    sep();
    out_ << '"' << key << "\":" << json;
    return *this;
  }
  std::string str() const { return "{" + out_.str() + "}"; }

 private:
  void sep() {
    if (!first_) out_ << ',';
    first_ = false;
  }
  std::ostringstream out_;
  bool first_ = true;
};

std::string compose_header(const JournalHeader& h) {
  // Version is derived from content, not from h.version: a run without a
  // fidelity ladder writes a version-1 header byte-identically to the
  // pre-ladder format (the golden suite pins those bytes), and only a
  // run that actually uses the ladder stamps version 2.
  const int version = h.fidelity_ladder_hash != 0 ? 2 : 1;
  Composer c;
  c.field("t", "header")
      .field("version", version)
      .field("method", h.method)
      .field("model", h.model)
      .field("platform", h.platform)
      .field("scenario_kind", h.scenario_kind)
      .field("deadline_hours", h.deadline_hours)
      .field("budget_dollars", h.budget_dollars)
      .field_u64("seed", h.seed)
      .field("max_nodes", h.max_nodes)
      .field("use_spot", h.use_spot)
      .field("gp_refit_every", h.gp_refit_every)
      .field_u64("catalog_hash", h.catalog_hash)
      .field_u64("profiler_options_hash", h.profiler_options_hash)
      .field_u64("warm_start_hash", h.warm_start_hash);
  if (h.fidelity_ladder_hash != 0) {
    c.field_u64("fidelity_ladder", h.fidelity_ladder_hash);
  }
  return c.str();
}

std::string compose_probe(const ProbeRecord& p) {
  std::ostringstream attempts;
  attempts << '[';
  for (std::size_t i = 0; i < p.attempt_log.size(); ++i) {
    if (i > 0) attempts << ',';
    Composer a;
    a.field("fault", p.attempt_log[i].fault)
        .field("hours", p.attempt_log[i].hours)
        .field("cost", p.attempt_log[i].cost)
        .field("backoff_hours", p.attempt_log[i].backoff_hours);
    attempts << a.str();
  }
  attempts << ']';
  Composer c;
  c.field("t", "probe")
      .field("type_index", p.type_index)
      .field("nodes", p.nodes)
      .field("failed", p.failed)
      .field("feasible", p.feasible)
      .field("measured_speed", p.measured_speed)
      .field("true_speed", p.true_speed)
      .field("profile_hours", p.profile_hours)
      .field("profile_cost", p.profile_cost)
      .field("cum_profile_hours", p.cum_profile_hours)
      .field("cum_profile_cost", p.cum_profile_cost)
      .field("acquisition", p.acquisition)
      .field("reason", p.reason)
      .field("attempts", p.attempts)
      .field("fault", p.fault)
      .field("backoff_hours", p.backoff_hours)
      .raw("attempt_log", attempts.str());
  // Fidelity fields travel sparsely: full-fidelity records (and thus
  // every record of a ladder-free run) keep the version-1 byte layout.
  if (p.sample_fraction != 1.0 || p.iteration_tier != 0) {
    c.field("sample_fraction", p.sample_fraction)
        .field("iteration_tier", p.iteration_tier);
  }
  return c.str();
}

std::string compose_degrade(const DegradeRecord& d) {
  Composer c;
  c.field("t", "degrade").field("iteration", d.iteration).field("why", d.why);
  return c.str();
}

[[noreturn]] void fail(JournalErrorCode code, const std::string& message) {
  throw JournalError(code, message);
}

double require_number(const util::JsonValue& obj, std::string_view key) {
  if (!obj.contains(key) || !obj.at(key).is_number()) {
    fail(JournalErrorCode::kCorrupt,
         "journal record missing numeric field '" + std::string(key) + "'");
  }
  return obj.at(key).as_number();
}

int require_int(const util::JsonValue& obj, std::string_view key) {
  return static_cast<int>(require_number(obj, key));
}

bool require_bool(const util::JsonValue& obj, std::string_view key) {
  if (!obj.contains(key) || !obj.at(key).is_bool()) {
    fail(JournalErrorCode::kCorrupt,
         "journal record missing boolean field '" + std::string(key) + "'");
  }
  return obj.at(key).as_bool();
}

std::string require_string(const util::JsonValue& obj, std::string_view key) {
  if (!obj.contains(key) || !obj.at(key).is_string()) {
    fail(JournalErrorCode::kCorrupt,
         "journal record missing string field '" + std::string(key) + "'");
  }
  return obj.at(key).as_string();
}

std::uint64_t require_u64(const util::JsonValue& obj, std::string_view key) {
  const std::string text = require_string(obj, key);
  errno = 0;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    fail(JournalErrorCode::kCorrupt,
         "journal field '" + std::string(key) + "' is not a uint64");
  }
  return value;
}

JournalHeader parse_header(const util::JsonValue& obj) {
  JournalHeader h;
  h.version = require_int(obj, "version");
  if (h.version < 1 || h.version > kJournalFormatVersion) {
    fail(JournalErrorCode::kVersionMismatch,
         "journal format version " + std::to_string(h.version) +
             " is not supported (expected 1.." +
             std::to_string(kJournalFormatVersion) + ")");
  }
  h.method = require_string(obj, "method");
  h.model = require_string(obj, "model");
  h.platform = require_string(obj, "platform");
  h.scenario_kind = require_int(obj, "scenario_kind");
  h.deadline_hours = require_number(obj, "deadline_hours");
  h.budget_dollars = require_number(obj, "budget_dollars");
  h.seed = require_u64(obj, "seed");
  h.max_nodes = require_int(obj, "max_nodes");
  h.use_spot = require_bool(obj, "use_spot");
  h.gp_refit_every = require_int(obj, "gp_refit_every");
  h.catalog_hash = require_u64(obj, "catalog_hash");
  h.profiler_options_hash = require_u64(obj, "profiler_options_hash");
  h.warm_start_hash = require_u64(obj, "warm_start_hash");
  // Absent in version-1 headers (and in version-2 headers of ladder-free
  // runs, which are never written — but tolerate them): ladder disabled.
  h.fidelity_ladder_hash =
      obj.contains("fidelity_ladder") ? require_u64(obj, "fidelity_ladder") : 0;
  return h;
}

ProbeRecord parse_probe(const util::JsonValue& obj) {
  ProbeRecord p;
  p.type_index = static_cast<std::size_t>(require_number(obj, "type_index"));
  p.nodes = require_int(obj, "nodes");
  p.failed = require_bool(obj, "failed");
  p.feasible = require_bool(obj, "feasible");
  p.measured_speed = require_number(obj, "measured_speed");
  p.true_speed = require_number(obj, "true_speed");
  p.profile_hours = require_number(obj, "profile_hours");
  p.profile_cost = require_number(obj, "profile_cost");
  p.cum_profile_hours = require_number(obj, "cum_profile_hours");
  p.cum_profile_cost = require_number(obj, "cum_profile_cost");
  p.acquisition = require_number(obj, "acquisition");
  p.reason = require_string(obj, "reason");
  p.attempts = require_int(obj, "attempts");
  p.fault = require_int(obj, "fault");
  p.backoff_hours = require_number(obj, "backoff_hours");
  if (!obj.contains("attempt_log") || !obj.at("attempt_log").is_array()) {
    fail(JournalErrorCode::kCorrupt,
         "journal probe record missing attempt_log array");
  }
  for (const util::JsonValue& item : obj.at("attempt_log").as_array()) {
    if (!item.is_object()) {
      fail(JournalErrorCode::kCorrupt,
           "journal attempt_log entry is not an object");
    }
    AttemptEntry e;
    e.fault = require_int(item, "fault");
    e.hours = require_number(item, "hours");
    e.cost = require_number(item, "cost");
    e.backoff_hours = require_number(item, "backoff_hours");
    p.attempt_log.push_back(e);
  }
  // Absent on full-fidelity records and every version-1 record.
  p.sample_fraction = obj.contains("sample_fraction")
                          ? require_number(obj, "sample_fraction")
                          : 1.0;
  p.iteration_tier =
      obj.contains("iteration_tier") ? require_int(obj, "iteration_tier") : 0;
  return p;
}

DegradeRecord parse_degrade(const util::JsonValue& obj) {
  DegradeRecord d;
  d.iteration = require_int(obj, "iteration");
  d.why = require_string(obj, "why");
  return d;
}

constexpr std::string_view kMagic = "MLCDJ1";

/// Frames a payload into one journal line.
std::string frame(const std::string& payload) {
  char head[48];
  std::snprintf(head, sizeof head, "%s %zu %08x ", kMagic.data(),
                payload.size(), crc32(payload));
  return std::string(head) + payload + "\n";
}

struct FrameResult {
  bool ok = false;
  std::string payload;
};

/// Attempts to unframe one line (without its trailing '\n').
FrameResult unframe(std::string_view line) {
  FrameResult r;
  if (line.size() < kMagic.size() + 1 ||
      line.substr(0, kMagic.size()) != kMagic ||
      line[kMagic.size()] != ' ') {
    return r;
  }
  std::size_t pos = kMagic.size() + 1;
  std::size_t length = 0;
  bool any_digit = false;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    length = length * 10 + static_cast<std::size_t>(line[pos] - '0');
    if (length > line.size()) return r;  // cannot possibly fit
    ++pos;
    any_digit = true;
  }
  if (!any_digit || pos >= line.size() || line[pos] != ' ') return r;
  ++pos;
  if (line.size() < pos + 8 + 1) return r;
  std::uint32_t expected = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = line[pos + static_cast<std::size_t>(i)];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return r;
    }
    expected = (expected << 4) | digit;
  }
  pos += 8;
  if (line[pos] != ' ') return r;
  ++pos;
  if (line.size() - pos != length) return r;  // short, long, or trailing junk
  const std::string_view payload = line.substr(pos);
  if (crc32(payload) != expected) return r;
  r.ok = true;
  r.payload.assign(payload);
  return r;
}

}  // namespace

std::string_view journal_error_code_name(JournalErrorCode code) noexcept {
  switch (code) {
    case JournalErrorCode::kIo:
      return "io";
    case JournalErrorCode::kCorrupt:
      return "corrupt";
    case JournalErrorCode::kVersionMismatch:
      return "version-mismatch";
    case JournalErrorCode::kHeaderMismatch:
      return "header-mismatch";
    case JournalErrorCode::kReplayDiverged:
      return "replay-diverged";
  }
  return "unknown";
}

JournalError::JournalError(JournalErrorCode code, const std::string& message)
    : std::runtime_error("journal: [" +
                         std::string(journal_error_code_name(code)) + "] " +
                         message),
      code_(code) {}

namespace {
std::atomic<IoFaultInjector*> g_io_fault_injector{nullptr};
}  // namespace

std::optional<IoFaultKind> IoFaultInjector::next_append() noexcept {
  const std::uint64_t index =
      counter_.fetch_add(1, std::memory_order_relaxed);
  if (options_.fail_at >= 0 &&
      index == static_cast<std::uint64_t>(options_.fail_at)) {
    return options_.kind;
  }
  if (options_.fault_rate > 0.0) {
    // Pure hash draw over (seed, append index): deterministic for a
    // given sweep regardless of the thread interleaving that produced
    // each index.
    const std::uint64_t draw =
        util::splitmix64(options_.seed ^ (index + 0x9e3779b97f4a7c15ULL));
    const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
    if (u < options_.fault_rate) return options_.kind;
  }
  return std::nullopt;
}

void set_io_fault_injector(IoFaultInjector* injector) noexcept {
  g_io_fault_injector.store(injector, std::memory_order_release);
}

IoFaultInjector* io_fault_injector() noexcept {
  return g_io_fault_injector.load(std::memory_order_acquire);
}

std::uint32_t crc32(std::string_view bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      t[n] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

HashStream& HashStream::mix(std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xffu;
    hash_ *= 0x100000001b3ULL;
  }
  return *this;
}

HashStream& HashStream::mix(double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return mix(bits);
}

HashStream& HashStream::mix(int v) noexcept {
  return mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}

HashStream& HashStream::mix(bool v) noexcept {
  return mix(static_cast<std::uint64_t>(v ? 1 : 0));
}

HashStream& HashStream::mix(std::string_view s) noexcept {
  mix(static_cast<std::uint64_t>(s.size()));
  for (const char ch : s) {
    hash_ ^= static_cast<unsigned char>(ch);
    hash_ *= 0x100000001b3ULL;
  }
  return *this;
}

std::uint64_t hash_catalog(const cloud::InstanceCatalog& catalog) noexcept {
  HashStream h;
  h.mix(static_cast<std::uint64_t>(catalog.size()));
  for (const cloud::InstanceSpec& spec : catalog.all()) {
    h.mix(spec.name)
        .mix(spec.family)
        .mix(static_cast<int>(spec.device))
        .mix(spec.vcpus)
        .mix(spec.gpus)
        .mix(spec.mem_gib)
        .mix(spec.network_gbps)
        .mix(spec.price_per_hour)
        .mix(spec.spot_price_per_hour)
        .mix(spec.spot_revocations_per_hour)
        .mix(spec.effective_tflops);
  }
  return h.digest();
}

FramedWriter::FramedWriter(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

FramedWriter::FramedWriter(FramedWriter&& other) noexcept
    : path_(std::move(other.path_)), file_(other.file_) {
  other.file_ = nullptr;
}

FramedWriter& FramedWriter::operator=(FramedWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

FramedWriter::~FramedWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

FramedWriter FramedWriter::create(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    fail(JournalErrorCode::kIo, "cannot open journal '" + path +
                                    "' for writing: " + std::strerror(errno));
  }
  return FramedWriter(path, file);
}

FramedWriter FramedWriter::append_to(const std::string& path,
                                     std::uint64_t valid_bytes) {
#if defined(_WIN32)
  // Truncation via reopen; torn tails are rare enough that portability
  // beats elegance here.
  {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      fail(JournalErrorCode::kIo, "cannot reopen journal '" + path +
                                      "': " + std::strerror(errno));
    }
    std::string keep(valid_bytes, '\0');
    const std::size_t got = std::fread(keep.data(), 1, keep.size(), file);
    std::fclose(file);
    keep.resize(got);
    std::FILE* out = std::fopen(path.c_str(), "wb");
    if (out == nullptr) {
      fail(JournalErrorCode::kIo, "cannot rewrite journal '" + path +
                                      "': " + std::strerror(errno));
    }
    std::fwrite(keep.data(), 1, keep.size(), out);
    std::fclose(out);
  }
#else
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    fail(JournalErrorCode::kIo, "cannot truncate journal '" + path +
                                    "': " + std::strerror(errno));
  }
#endif
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    fail(JournalErrorCode::kIo, "cannot open journal '" + path +
                                    "' for appending: " + std::strerror(errno));
  }
  return FramedWriter(path, file);
}

void FramedWriter::append(const std::string& payload) {
  const std::string line = frame(payload);
  if (IoFaultInjector* injector = io_fault_injector()) {
    if (const std::optional<IoFaultKind> fault = injector->next_append()) {
      switch (*fault) {
        case IoFaultKind::kEnospc:
          // Nothing of the record reaches the disk.
          fail(JournalErrorCode::kIo,
               "cannot append to journal '" + path_ +
                   "': injected ENOSPC (" + std::strerror(ENOSPC) + ")");
        case IoFaultKind::kShortWrite: {
          // A real torn prefix lands on disk so the stored state matches
          // a crash mid-append; readers drop it as a torn tail.
          const std::size_t cut = line.size() / 2;
          if (cut > 0 &&
              std::fwrite(line.data(), 1, cut, file_) == cut) {
            std::fflush(file_);
          }
          fail(JournalErrorCode::kIo,
               "injected short write to journal '" + path_ + "'");
        }
        case IoFaultKind::kFsyncFail:
          // The record is buffered in full but its durability barrier
          // fails: it may or may not survive, exactly like a real fsync
          // error. Either on-disk state replays soundly (write-ahead:
          // the record precedes trace admission).
          if (std::fwrite(line.data(), 1, line.size(), file_) ==
              line.size()) {
            std::fflush(file_);
          }
          fail(JournalErrorCode::kIo,
               "injected fsync failure on journal '" + path_ + "'");
      }
    }
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    fail(JournalErrorCode::kIo,
         "short write to journal '" + path_ + "': " + std::strerror(errno));
  }
  if (std::fflush(file_) != 0) {
    fail(JournalErrorCode::kIo,
         "cannot flush journal '" + path_ + "': " + std::strerror(errno));
  }
  // Write-ahead discipline: the record must be on stable storage before
  // the caller acts on the probe it describes.
#if defined(_WIN32)
  if (_commit(_fileno(file_)) != 0) {
#else
  if (::fsync(fileno(file_)) != 0) {
#endif
    fail(JournalErrorCode::kIo,
         "cannot fsync journal '" + path_ + "': " + std::strerror(errno));
  }
}

std::string frame_record(const std::string& payload) {
  return frame(payload);
}

RunJournal::RunJournal(FramedWriter writer) : writer_(std::move(writer)) {}

RunJournal::RunJournal(RunJournal&& other) noexcept = default;
RunJournal& RunJournal::operator=(RunJournal&& other) noexcept = default;
RunJournal::~RunJournal() = default;

RunJournal RunJournal::create(const std::string& path,
                              const JournalHeader& header) {
  RunJournal journal(FramedWriter::create(path));
  journal.append_record(compose_header(header));
  return journal;
}

RunJournal RunJournal::append_to(const std::string& path,
                                 std::uint64_t valid_bytes) {
  return RunJournal(FramedWriter::append_to(path, valid_bytes));
}

void RunJournal::append_probe(const ProbeRecord& record) {
  append_record(compose_probe(record));
}

void RunJournal::append_degrade(const DegradeRecord& record) {
  append_record(compose_degrade(record));
}

void RunJournal::append_record(const std::string& payload) {
  writer_.append(payload);
}

JournalContents read_journal(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    fail(JournalErrorCode::kIo, "cannot open journal '" + path +
                                    "' for reading: " + std::strerror(errno));
  }
  std::string text;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    fail(JournalErrorCode::kIo, "error reading journal '" + path + "'");
  }

  JournalContents contents;
  bool have_header = false;
  std::size_t offset = 0;
  while (offset < text.size()) {
    const std::size_t newline = text.find('\n', offset);
    const bool is_tail = newline == std::string::npos ||
                         newline + 1 >= text.size();
    const std::string_view line =
        newline == std::string::npos
            ? std::string_view(text).substr(offset)
            : std::string_view(text).substr(offset, newline - offset);

    FrameResult framed = unframe(line);
    util::JsonValue record;
    bool parsed = false;
    std::string record_type;
    if (framed.ok) {
      try {
        record = util::parse_json(framed.payload);
        if (record.is_object() && record.contains("t") &&
            record.at("t").is_string()) {
          record_type = record.at("t").as_string();
          parsed = true;
        }
      } catch (const std::invalid_argument&) {
        parsed = false;
      }
    }
    // A bad or unterminated record at the very end of the file is a torn
    // append from the crash — drop it (the probe it described was never
    // admitted to the trace, and deterministic re-execution reproduces
    // it). Anywhere else it is corruption at rest: refuse.
    if (!parsed || newline == std::string::npos) {
      if (is_tail) {
        contents.truncated_tail = true;
        break;
      }
      fail(JournalErrorCode::kCorrupt,
           "journal '" + path + "' is corrupt at byte offset " +
               std::to_string(offset));
    }

    if (!have_header) {
      if (record_type != "header") {
        fail(JournalErrorCode::kCorrupt,
             "journal '" + path + "' does not begin with a header record");
      }
      contents.header = parse_header(record);
      have_header = true;
    } else if (record_type == "probe") {
      contents.probes.push_back(parse_probe(record));
    } else if (record_type == "degrade") {
      contents.degraded.push_back(parse_degrade(record));
    } else if (record_type == "header") {
      fail(JournalErrorCode::kCorrupt,
           "journal '" + path + "' contains a second header record");
    } else {
      fail(JournalErrorCode::kCorrupt, "journal '" + path +
                                           "' contains unknown record type '" +
                                           record_type + "'");
    }
    offset = newline + 1;
    contents.valid_bytes = offset;
  }
  if (!have_header) {
    fail(JournalErrorCode::kCorrupt,
         "journal '" + path + "' has no readable header record");
  }
  return contents;
}

FramedFile read_framed_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    fail(JournalErrorCode::kIo, "cannot open journal '" + path +
                                    "' for reading: " + std::strerror(errno));
  }
  std::string text;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    fail(JournalErrorCode::kIo, "error reading journal '" + path + "'");
  }

  FramedFile out;
  std::size_t offset = 0;
  while (offset < text.size()) {
    const std::size_t newline = text.find('\n', offset);
    const bool is_tail =
        newline == std::string::npos || newline + 1 >= text.size();
    const std::string_view line =
        newline == std::string::npos
            ? std::string_view(text).substr(offset)
            : std::string_view(text).substr(offset, newline - offset);

    FrameResult framed = unframe(line);
    // Same torn-tail rule as read_journal: a bad or unterminated record
    // at the very end is a torn append (dropped); earlier it is
    // corruption at rest (refused).
    if (!framed.ok || newline == std::string::npos) {
      if (is_tail) {
        out.truncated_tail = true;
        break;
      }
      fail(JournalErrorCode::kCorrupt,
           "journal '" + path + "' is corrupt at byte offset " +
               std::to_string(offset));
    }
    out.payloads.push_back(std::move(framed.payload));
    offset = newline + 1;
    out.valid_bytes = offset;
  }
  return out;
}

}  // namespace mlcd::journal
