// Durable run journal: the crash-safety layer of the search controller.
//
// The paper's protective stop condition guarantees the *search* never
// overspends the user's budget, but the controller process itself is a
// single point of failure: if it dies mid-search, every dollar already
// spent on probes is lost and a rerun spends it again — exactly the
// over-spend the stop condition forbids. The RunJournal makes probe
// spend durable: a write-ahead, append-only JSONL file that the search
// session appends every probe outcome to (fsync'd) *before* the probe
// is admitted into the in-memory trace. `mlcd --resume <journal>`
// replays the valid records (truncating a torn tail), restores the
// profiler's stream positions and spend accounting, and continues the
// search bit-identically to an uninterrupted run — with zero probes
// re-executed against the cloud.
//
// File format (one record per line):
//
//   MLCDJ1 <payload-bytes> <crc32-hex> <payload-json>\n
//
// The fixed magic pins the framing version; the length and CRC-32 (of
// the payload bytes) make torn writes detectable. A record that fails
// to frame at the *end* of the file is a torn tail — the crash landed
// mid-append — and is dropped on replay. A frame or checksum failure
// anywhere *before* the tail means the file was corrupted at rest and
// the journal is refused with a typed error: resuming from silently
// patched history could re-spend probes or violate the reserve.
//
// The first record is a versioned header capturing everything that
// shapes the probe sequence (scenario, seed, method, catalog hash,
// profiler/fault knobs, surrogate cadence, warm-start hash). A resume
// request whose own configuration hashes differently is refused: the
// journal describes a different search.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mlcd::cloud {
class InstanceCatalog;
}  // namespace mlcd::cloud

namespace mlcd::journal {

/// Why a journal could not be written, read, or resumed from.
enum class JournalErrorCode {
  kIo,              ///< open/write/fsync failure
  kCorrupt,         ///< framing/CRC failure before the tail record
  kVersionMismatch, ///< journal written by an incompatible format version
  kHeaderMismatch,  ///< journal describes a different search than requested
  kReplayDiverged,  ///< replayed outcome contradicts the seeded substrate
};

std::string_view journal_error_code_name(JournalErrorCode code) noexcept;

/// Typed journal failure: machine-checkable code + human message.
class JournalError : public std::runtime_error {
 public:
  JournalError(JournalErrorCode code, const std::string& message);
  JournalErrorCode code() const noexcept { return code_; }

 private:
  JournalErrorCode code_;
};

/// Policy for journal append failures mid-run (`--journal-on-error`).
/// Either way a failed append must never corrupt in-memory search
/// state: the write-ahead record is composed from the outcome before
/// the trace admits it, so the failure leaves at worst a torn record
/// prefix on disk.
enum class OnError {
  kAbort,    ///< surface the typed JournalError; the run fails
  kDegrade,  ///< drop to journal-less operation with a reported warning
};

/// Which storage fault the injector fires.
enum class IoFaultKind {
  kShortWrite,  ///< torn line: only a prefix of the framed record lands
  kFsyncFail,   ///< data buffered but the durability barrier fails
  kEnospc,      ///< no space: nothing of the record reaches the disk
};

/// Seeded storage-fault injector for the framed journal writers. Tests
/// install one process-globally (set_io_fault_injector); every framed
/// append — run journals and the batch manifest alike — consults it
/// once, so `fail_at` indexes the global append sequence. Thread-safe:
/// concurrent appends each draw a distinct index.
class IoFaultInjector {
 public:
  struct Options {
    std::uint64_t seed = 1;
    double fault_rate = 0.0;  ///< per-append fault probability
    long long fail_at = -1;   ///< 0-based append index to fail; -1 = off
    IoFaultKind kind = IoFaultKind::kFsyncFail;
  };
  explicit IoFaultInjector(const Options& options) : options_(options) {}

  /// Fate of the next framed append: the fault to inject, or nullopt.
  std::optional<IoFaultKind> next_append() noexcept;

  /// Appends observed so far (for sweeping fail_at over a run's length).
  std::uint64_t appends() const noexcept {
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  Options options_;
  std::atomic<std::uint64_t> counter_{0};
};

/// Installs (or clears, with nullptr) the process-global fault injector
/// consulted by every framed append. The injector must outlive its
/// installation window; tests clear the hook before destroying it.
void set_io_fault_injector(IoFaultInjector* injector) noexcept;
IoFaultInjector* io_fault_injector() noexcept;

/// Journal format version (the number in the MLCDJ1 frame magic and the
/// header record). Bumped on any change to framing or record layout.
/// Version 2 adds the fidelity ladder: a `fidelity_ladder` header field
/// and per-record `sample_fraction`/`iteration_tier` keys. Both are
/// emitted sparsely — a run with the ladder disabled writes a version-1
/// journal byte-identically, and version-1 journals read back as
/// full-fidelity runs.
inline constexpr int kJournalFormatVersion = 2;

/// Everything that shapes the probe sequence of a run. Two runs whose
/// headers are equal and whose binaries match produce bit-identical
/// probe traces — which is what makes replay + continue sound.
struct JournalHeader {
  int version = kJournalFormatVersion;
  std::string method;    ///< searcher name ("heterbo", ...)
  std::string model;     ///< zoo model name
  std::string platform;  ///< "tensorflow" | "mxnet"
  int scenario_kind = 0; ///< search::ScenarioKind as int
  double deadline_hours = 0.0;  ///< 0 = unconstrained
  double budget_dollars = 0.0;  ///< 0 = unconstrained
  std::uint64_t seed = 1;
  int max_nodes = 0;
  bool use_spot = false;
  int gp_refit_every = 1;
  /// FNV-1a over the catalog view the search runs on (restricted subset
  /// included): a journal recorded against different instances/prices
  /// must not seed a resume.
  std::uint64_t catalog_hash = 0;
  /// FNV-1a over every profiler knob (fault hazards, retry policy,
  /// watchdog deadlines, noise): these shape outcomes and stream draws.
  std::uint64_t profiler_options_hash = 0;
  /// FNV-1a over the warm-start points (they steer the surrogate).
  std::uint64_t warm_start_hash = 0;
  /// profiler::hash_fidelity_ladder of the run's fidelity ladder; 0 when
  /// the ladder is disabled (and for every version-1 journal). A resume
  /// under a different ladder proposes different probes and is refused.
  std::uint64_t fidelity_ladder_hash = 0;
};

/// One journaled launch attempt (mirrors cloud::AttemptRecord).
struct AttemptEntry {
  int fault = 0;               ///< cloud::FaultKind as int
  double hours = 0.0;          ///< wall time the attempt consumed
  double cost = 0.0;           ///< dollars billed for the attempt
  double backoff_hours = 0.0;  ///< delay before the next attempt
};

/// One journaled probe outcome (mirrors search::ProbeStep; kept in
/// primitive terms so the journal layer stays below the search layer).
struct ProbeRecord {
  std::size_t type_index = 0;
  int nodes = 0;
  bool failed = false;
  bool feasible = false;
  double measured_speed = 0.0;
  double true_speed = 0.0;
  double profile_hours = 0.0;
  double profile_cost = 0.0;
  double cum_profile_hours = 0.0;
  double cum_profile_cost = 0.0;
  double acquisition = 0.0;
  std::string reason;
  int attempts = 1;
  int fault = 0;  ///< cloud::FaultKind as int
  double backoff_hours = 0.0;
  std::vector<AttemptEntry> attempt_log;
  /// Probe fidelity (profiler::Fidelity in primitive terms; the journal
  /// layer stays below the profiler layer). Defaults are the full probe;
  /// the fields are serialized only when reduced.
  double sample_fraction = 1.0;
  int iteration_tier = 0;
};

/// One journaled searcher-degradation episode (surrogate refit failed;
/// the iteration fell back to the prior-mean safe mode).
struct DegradeRecord {
  int iteration = 0;
  std::string why;
};

/// A journal read back from disk.
struct JournalContents {
  JournalHeader header;
  std::vector<ProbeRecord> probes;
  std::vector<DegradeRecord> degraded;
  /// Bytes of the file that framed cleanly; a resume reopens the file
  /// truncated to this length before appending.
  std::uint64_t valid_bytes = 0;
  /// True when a torn tail record was dropped.
  bool truncated_tail = false;
};

/// Append-only writer of MLCDJ1-framed records. Every append is framed,
/// written, flushed, and fsync'd before returning, and consults the
/// installed IoFaultInjector (if any) first. RunJournal and the service
/// batch manifest both sit on this writer, so storage-fault injection
/// and the write-ahead discipline are exercised identically for either.
class FramedWriter {
 public:
  /// Starts a fresh framed file at `path` (truncating any existing
  /// file). Throws JournalError(kIo).
  static FramedWriter create(const std::string& path);

  /// Reopens an existing framed file for appending, truncating it to
  /// `valid_bytes` first (drops a torn tail record).
  static FramedWriter append_to(const std::string& path,
                                std::uint64_t valid_bytes);

  FramedWriter(FramedWriter&& other) noexcept;
  FramedWriter& operator=(FramedWriter&& other) noexcept;
  FramedWriter(const FramedWriter&) = delete;
  FramedWriter& operator=(const FramedWriter&) = delete;
  ~FramedWriter();

  /// Frames `payload` and durably appends it. Throws JournalError(kIo)
  /// on any write/flush/fsync failure, real or injected. A failed
  /// append leaves no in-memory residue — at worst a torn record
  /// prefix on disk, which readers drop as a torn tail.
  void append(const std::string& payload);

  const std::string& path() const noexcept { return path_; }

 private:
  FramedWriter(std::string path, std::FILE* file);

  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Append-only journal writer. Every append is framed, written, and
/// fsync'd before returning — when append_probe() returns, the probe's
/// spend survives a crash of this process (write-ahead discipline: the
/// caller admits the probe into its in-memory trace only afterwards).
class RunJournal {
 public:
  /// Starts a fresh journal at `path` (truncating any existing file)
  /// and durably writes the header record. Throws JournalError(kIo).
  static RunJournal create(const std::string& path,
                           const JournalHeader& header);

  /// Reopens an existing journal for continuation after replay,
  /// truncating it to `valid_bytes` first (drops a torn tail record).
  static RunJournal append_to(const std::string& path,
                              std::uint64_t valid_bytes);

  RunJournal(RunJournal&& other) noexcept;
  RunJournal& operator=(RunJournal&& other) noexcept;
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;
  ~RunJournal();

  void append_probe(const ProbeRecord& record);
  void append_degrade(const DegradeRecord& record);

  const std::string& path() const noexcept { return writer_.path(); }

 private:
  explicit RunJournal(FramedWriter writer);
  void append_record(const std::string& payload);

  FramedWriter writer_;
};

/// Reads a journal back: frames and parses every record, validating
/// length + CRC. A torn final record is dropped (truncated_tail set);
/// any earlier framing/CRC/parse failure throws JournalError(kCorrupt),
/// a missing/alien header throws kCorrupt, and an unsupported format
/// version throws kVersionMismatch.
JournalContents read_journal(const std::string& path);

/// Frames a payload into one MLCDJ1 journal line (magic, byte length,
/// CRC-32 of the payload, payload, newline).
std::string frame_record(const std::string& payload);

/// A framed file read back generically: every cleanly-framed payload in
/// order, for readers whose record schema lives above the journal layer
/// (the service batch manifest). A framing/CRC failure on the final,
/// unterminated record is a torn append and is dropped (truncated_tail
/// set); anywhere earlier the file is corrupt at rest and reading
/// throws JournalError(kCorrupt).
struct FramedFile {
  std::vector<std::string> payloads;
  std::uint64_t valid_bytes = 0;
  bool truncated_tail = false;
};
FramedFile read_framed_file(const std::string& path);

/// CRC-32 (IEEE 802.3, reflected) of a byte string.
std::uint32_t crc32(std::string_view bytes) noexcept;

/// FNV-1a content hash of a catalog view: names, device kinds, prices,
/// spot prices, revocation rates, specs — everything that shapes probe
/// outcomes or billing.
std::uint64_t hash_catalog(const cloud::InstanceCatalog& catalog) noexcept;

/// Incremental FNV-1a hasher for mixed field streams (used to fingerprint
/// option structs into the journal header).
class HashStream {
 public:
  HashStream& mix(std::uint64_t v) noexcept;
  HashStream& mix(double v) noexcept;  ///< by bit pattern (NaN-stable)
  HashStream& mix(int v) noexcept;
  HashStream& mix(bool v) noexcept;
  HashStream& mix(std::string_view s) noexcept;
  std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace mlcd::journal
