file(REMOVE_RECURSE
  "CMakeFiles/mlcd_journal.dir/journal.cpp.o"
  "CMakeFiles/mlcd_journal.dir/journal.cpp.o.d"
  "libmlcd_journal.a"
  "libmlcd_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcd_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
