file(REMOVE_RECURSE
  "libmlcd_journal.a"
)
