# Empty dependencies file for mlcd_journal.
# This may be replaced when dependencies are built.
