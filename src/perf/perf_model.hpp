// Distributed-training performance model — the simulated ground truth.
//
// Substitutes for the paper's AWS testbed (see DESIGN.md §2). For a
// deployment D(m, n) it produces the steady-state training speed in
// samples/second of synchronous data-parallel training:
//
//   t_iter(n)  = t_comp + max(0, t_comm(n) - overlap * t_comp)
//   speed(n)   = n * batch_per_node / t_iter(n)
//
// Compute: per-node batch FLOPs over the instance's effective throughput,
// scaled by a (model kind x device class) efficiency — the mechanism
// behind the paper's observation that GPUs are not always the best
// performance/cost (RNNs underutilize them, Fig. 1b) — and by a mild
// within-instance scale-up efficiency loss (Fig. 3a's non-linearity).
//
// Communication: gradient exchange per iteration.
//   PS:   2G/B per worker with an incast-congestion factor that grows
//         superlinearly in n — this is what bends the scale-out curve
//         over into the paper's concave shape (Fig. 3b).
//   Ring: bandwidth-optimal 2G(n-1)/(nB) plus per-hop latency and a
//         straggler synchronization term that also grows with n.
//
// Feasibility: data-parallel replicas must fit in device memory; models
// that do not fit (BERT on small GPUs, ZeRO-scale models anywhere) fall
// back to ZeRO-style partitioning when allowed, which divides state
// across nodes at 1.5x communication cost. Infeasible deployments report
// speed 0 — searchers must cope with them, as on the real cloud.
#pragma once

#include <optional>

#include "cloud/deployment.hpp"
#include "cloud/instance.hpp"
#include "models/model_zoo.hpp"
#include "perf/platform.hpp"

namespace mlcd::perf {

/// A training job as the performance model sees it.
struct TrainingConfig {
  models::ModelSpec model;
  PlatformProfile platform;
  CommTopology topology = CommTopology::kParameterServer;
};

/// Tunable constants of the simulated substrate. The defaults are
/// calibrated so the paper's qualitative shapes hold (see EXPERIMENTS.md);
/// the Paleo baseline deliberately zeroes the "nuance" terms.
struct PerfModelOptions {
  /// PS incast congestion: t_comm *= 1 + alpha (n-1) + beta (n-1)^2.
  double ps_incast_alpha = 0.035;
  double ps_incast_beta = 0.0022;
  /// Ring straggler/jitter growth: t_comm *= 1 + beta (n-1)^2.
  double ring_straggler_beta = 0.0011;
  /// Within-instance scale-up efficiency exponents (throughput is scaled
  /// by (base_units/units)^exponent for units above the base size).
  double cpu_scaleup_exponent = 0.10;
  double gpu_scaleup_exponent = 0.08;
  /// Allow ZeRO-style state partitioning when a replica does not fit.
  bool allow_zero_partitioning = true;
  /// Communication inflation under ZeRO partitioning.
  double zero_comm_factor = 1.5;
};

/// Per-iteration timing breakdown, for diagnostics and tests.
struct IterationBreakdown {
  double compute_s = 0.0;      ///< per-node compute time
  double comm_s = 0.0;         ///< gradient-exchange time (pre-overlap)
  double iteration_s = 0.0;    ///< resulting iteration wall time
  double speed = 0.0;          ///< samples/s of the whole cluster
  bool feasible = false;
  bool used_zero_partitioning = false;
};

/// Efficiency of a model kind on a device class, relative to the
/// catalog's effective_tflops (which is calibrated for CNNs).
double model_device_efficiency(models::ModelKind kind,
                               cloud::DeviceKind device) noexcept;

/// Deterministic performance model over a given catalog.
class TrainingPerfModel {
 public:
  explicit TrainingPerfModel(const cloud::InstanceCatalog& catalog,
                             PerfModelOptions options = {});

  const cloud::InstanceCatalog& catalog() const noexcept { return *catalog_; }
  const PerfModelOptions& options() const noexcept { return options_; }

  /// Steady-state speed in samples/s; 0 when the deployment cannot hold
  /// the model. Deterministic (measurement noise is the Profiler's job).
  double true_speed(const TrainingConfig& config,
                    const cloud::Deployment& d) const;

  /// Static memory-feasibility check: can the model's training state fit
  /// this deployment (with ZeRO partitioning when allowed)? This needs no
  /// profiling — it is arithmetic on the model's parameter count and the
  /// instance's memory — so searchers may use it to avoid launching
  /// doomed probes, the way any practitioner sizing a 20B-parameter job
  /// would.
  bool memory_feasible(const TrainingConfig& config,
                       const cloud::Deployment& d) const;

  /// Full timing breakdown (same math as true_speed).
  IterationBreakdown breakdown(const TrainingConfig& config,
                               const cloud::Deployment& d) const;

  /// Hours to finish the full training job (samples_to_train / speed);
  /// std::nullopt when infeasible.
  std::optional<double> training_hours(const TrainingConfig& config,
                                       const cloud::Deployment& d) const;

 private:
  /// Usable training-state memory of one node, bytes.
  double node_memory_bytes(const cloud::InstanceSpec& spec) const noexcept;

  const cloud::InstanceCatalog* catalog_;
  PerfModelOptions options_;
};

}  // namespace mlcd::perf
