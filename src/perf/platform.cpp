#include "perf/platform.hpp"

#include <stdexcept>

namespace mlcd::perf {

std::string_view comm_topology_name(CommTopology t) noexcept {
  switch (t) {
    case CommTopology::kParameterServer:
      return "parameter-server";
    case CommTopology::kRingAllReduce:
      return "ring-all-reduce";
  }
  return "?";
}

PlatformProfile tensorflow_profile() {
  PlatformProfile p;
  p.name = "tensorflow";
  p.framework_efficiency = 0.88;
  p.overlap_ps = 0.30;
  p.overlap_ring = 0.50;
  p.step_latency_s = 200e-6;
  return p;
}

PlatformProfile mxnet_profile() {
  PlatformProfile p;
  p.name = "mxnet";
  p.framework_efficiency = 0.92;
  p.overlap_ps = 0.40;
  p.overlap_ring = 0.45;
  p.step_latency_s = 150e-6;
  return p;
}

PlatformProfile platform_by_name(std::string_view name) {
  if (name == "tensorflow") return tensorflow_profile();
  if (name == "mxnet") return mxnet_profile();
  throw std::invalid_argument("platform_by_name: unknown platform " +
                              std::string(name));
}

}  // namespace mlcd::perf
