#include "perf/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mlcd::perf {

double model_device_efficiency(models::ModelKind kind,
                               cloud::DeviceKind device) noexcept {
  using MK = models::ModelKind;
  using DK = cloud::DeviceKind;
  const bool gpu = cloud::is_gpu(device);
  switch (kind) {
    case MK::kCnn:
      // The catalog's effective_tflops is calibrated on CNNs.
      return 1.0;
    case MK::kRnn:
      // Sequential cell dependencies leave GPUs underutilized; small
      // matmuls run close to peak on wide-vector CPUs.
      if (!gpu) return 1.0;
      return device == DK::kGpuV100 ? 0.25 : 0.15;
    case MK::kTransformer:
      // Large dense matmuls: excellent on GPUs, memory-bandwidth-bound
      // on CPUs.
      return gpu ? 1.0 : 0.55;
  }
  return 1.0;
}

TrainingPerfModel::TrainingPerfModel(const cloud::InstanceCatalog& catalog,
                                     PerfModelOptions options)
    : catalog_(&catalog), options_(options) {
  if (options_.ps_incast_alpha < 0.0 || options_.ps_incast_beta < 0.0 ||
      options_.ring_straggler_beta < 0.0 ||
      options_.zero_comm_factor < 1.0) {
    throw std::invalid_argument("TrainingPerfModel: invalid options");
  }
}

double TrainingPerfModel::node_memory_bytes(
    const cloud::InstanceSpec& spec) const noexcept {
  // Training state must fit in accelerator memory on GPU instances and in
  // host RAM (with ~25% reserved for the runtime) on CPU instances.
  if (spec.is_gpu_instance()) {
    double per_gpu_gib = 12.0;  // K80
    if (spec.device == cloud::DeviceKind::kGpuV100) per_gpu_gib = 16.0;
    if (spec.device == cloud::DeviceKind::kGpuM60) per_gpu_gib = 8.0;
    return spec.gpus * per_gpu_gib * 1024.0 * 1024.0 * 1024.0;
  }
  return spec.mem_gib * 0.75 * 1024.0 * 1024.0 * 1024.0;
}

IterationBreakdown TrainingPerfModel::breakdown(
    const TrainingConfig& config, const cloud::Deployment& d) const {
  IterationBreakdown out;
  const cloud::InstanceSpec& spec = catalog_->at(d.type_index);
  const models::ModelSpec& m = config.model;
  const int n = d.nodes;
  if (n < 1) throw std::invalid_argument("breakdown: nodes must be >= 1");

  // --- Feasibility: weights + gradients + optimizer state (fp32 Adam-ish
  // bookkeeping: 16 bytes/parameter), plus activations ~ proportional to
  // per-node batch FLOPs footprint (rough constant factor).
  const double state_bytes = m.params * 16.0;
  const double mem = node_memory_bytes(spec);
  bool zero_mode = false;
  if (state_bytes > mem) {
    if (!options_.allow_zero_partitioning) return out;  // infeasible
    // ZeRO partitions state across the n replicas.
    if (state_bytes / n > mem) return out;  // still infeasible
    zero_mode = true;
  }

  // --- Compute time for one per-node minibatch.
  const double kind_eff = model_device_efficiency(m.kind, spec.device);
  // Within-instance scale-up efficiency loss relative to the family's
  // base size (4 vCPUs / 1 GPU).
  double scaleup_eff = 1.0;
  if (spec.is_gpu_instance()) {
    scaleup_eff = std::pow(1.0 / std::max(1, spec.gpus),
                           options_.gpu_scaleup_exponent);
  } else if (spec.vcpus > 4) {
    scaleup_eff =
        std::pow(4.0 / spec.vcpus, options_.cpu_scaleup_exponent);
  }
  const double device_flops = spec.effective_tflops * 1e12 * kind_eff *
                              scaleup_eff *
                              config.platform.framework_efficiency;
  const double compute_s =
      static_cast<double>(m.batch_per_node) * m.flops_per_sample /
      device_flops;

  // --- Communication time for one gradient exchange.
  double comm_s = 0.0;
  if (n > 1) {
    const double bw_bytes = spec.network_gbps * 1e9 / 8.0;
    double grad_bytes = m.gradient_bytes();
    if (zero_mode) grad_bytes *= options_.zero_comm_factor;
    const double nd = static_cast<double>(n);
    if (config.topology == CommTopology::kParameterServer) {
      // Sharded PS: each worker pushes and pulls the full gradient per
      // iteration; incast congestion inflates the effective transfer.
      const double base = 2.0 * grad_bytes / bw_bytes * (nd - 1.0) / nd;
      const double congestion = 1.0 + options_.ps_incast_alpha * (nd - 1.0) +
                                options_.ps_incast_beta * (nd - 1.0) *
                                    (nd - 1.0);
      comm_s = base * congestion;
    } else {
      // Ring all-reduce: 2(n-1)/n of the gradient crosses each NIC, plus
      // 2(n-1) latency hops, inflated by synchronization stragglers.
      const double base = 2.0 * grad_bytes * (nd - 1.0) / (nd * bw_bytes) +
                          2.0 * (nd - 1.0) * config.platform.step_latency_s;
      const double straggle =
          1.0 + options_.ring_straggler_beta * (nd - 1.0) * (nd - 1.0);
      comm_s = base * straggle;
    }
  }

  // --- Compose the iteration with comm/compute overlap.
  const double overlap = config.platform.overlap(config.topology);
  const double iteration_s =
      compute_s + std::max(0.0, comm_s - overlap * compute_s);

  out.compute_s = compute_s;
  out.comm_s = comm_s;
  out.iteration_s = iteration_s;
  out.speed = static_cast<double>(n) * m.batch_per_node / iteration_s;
  out.feasible = true;
  out.used_zero_partitioning = zero_mode;
  return out;
}

double TrainingPerfModel::true_speed(const TrainingConfig& config,
                                     const cloud::Deployment& d) const {
  return breakdown(config, d).speed;
}

bool TrainingPerfModel::memory_feasible(const TrainingConfig& config,
                                        const cloud::Deployment& d) const {
  const cloud::InstanceSpec& spec = catalog_->at(d.type_index);
  const double state_bytes = config.model.params * 16.0;
  const double mem = node_memory_bytes(spec);
  if (state_bytes <= mem) return true;
  return options_.allow_zero_partitioning &&
         state_bytes / std::max(1, d.nodes) <= mem;
}

std::optional<double> TrainingPerfModel::training_hours(
    const TrainingConfig& config, const cloud::Deployment& d) const {
  const double speed = true_speed(config, d);
  if (speed <= 0.0) return std::nullopt;
  return config.model.samples_to_train / speed / 3600.0;
}

}  // namespace mlcd::perf
