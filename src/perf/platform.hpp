// ML training platform profiles (TensorFlow, MXNet) and communication
// topologies (parameter server, ring all-reduce).
//
// The paper evaluates MLCD across both platforms and both topologies to
// show HeterBO is platform-independent (§V-A). What differs between
// platforms at the level the deployment search observes is a handful of
// efficiency constants: framework overhead, and how much of the gradient
// exchange each runtime overlaps with backprop. These live here so the
// performance model stays platform-agnostic.
#pragma once

#include <string>
#include <string_view>

namespace mlcd::perf {

/// Gradient-synchronization topology for data-parallel training.
enum class CommTopology {
  kParameterServer,  ///< sharded PS co-located with workers
  kRingAllReduce,    ///< bandwidth-optimal ring (Horovod-style)
};

std::string_view comm_topology_name(CommTopology t) noexcept;

/// Runtime characteristics of a training platform.
struct PlatformProfile {
  std::string name;
  /// Multiplier on raw device throughput (kernel dispatch, graph
  /// execution, input pipeline overheads).
  double framework_efficiency = 0.9;
  /// Fraction of communication hidden behind backprop, per topology.
  double overlap_ps = 0.30;
  double overlap_ring = 0.50;
  /// Per-hop latency of one collective step, seconds.
  double step_latency_s = 200e-6;

  /// Overlap fraction for the given topology.
  double overlap(CommTopology t) const noexcept {
    return t == CommTopology::kParameterServer ? overlap_ps : overlap_ring;
  }
};

/// TensorFlow 1.x-era profile (graph mode, grpc PS / NCCL+Horovod ring).
PlatformProfile tensorflow_profile();

/// MXNet profile (kvstore PS / NCCL ring); slightly cheaper runtime,
/// less aggressive overlap on ring.
PlatformProfile mxnet_profile();

/// Lookup by name ("tensorflow", "mxnet");
/// throws std::invalid_argument otherwise.
PlatformProfile platform_by_name(std::string_view name);

}  // namespace mlcd::perf
