file(REMOVE_RECURSE
  "libmlcd_perf.a"
)
