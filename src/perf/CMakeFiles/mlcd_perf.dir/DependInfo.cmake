
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/perf_model.cpp" "src/perf/CMakeFiles/mlcd_perf.dir/perf_model.cpp.o" "gcc" "src/perf/CMakeFiles/mlcd_perf.dir/perf_model.cpp.o.d"
  "/root/repo/src/perf/platform.cpp" "src/perf/CMakeFiles/mlcd_perf.dir/platform.cpp.o" "gcc" "src/perf/CMakeFiles/mlcd_perf.dir/platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/cloud/CMakeFiles/mlcd_cloud.dir/DependInfo.cmake"
  "/root/repo/src/models/CMakeFiles/mlcd_models.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/mlcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
