# Empty dependencies file for mlcd_perf.
# This may be replaced when dependencies are built.
