file(REMOVE_RECURSE
  "CMakeFiles/mlcd_perf.dir/perf_model.cpp.o"
  "CMakeFiles/mlcd_perf.dir/perf_model.cpp.o.d"
  "CMakeFiles/mlcd_perf.dir/platform.cpp.o"
  "CMakeFiles/mlcd_perf.dir/platform.cpp.o.d"
  "libmlcd_perf.a"
  "libmlcd_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcd_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
