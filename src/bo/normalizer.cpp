#include "bo/normalizer.hpp"

#include <stdexcept>

namespace mlcd::bo {

InputNormalizer::InputNormalizer(std::vector<double> lo,
                                 std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  if (lo_.empty() || lo_.size() != hi_.size()) {
    throw std::invalid_argument("InputNormalizer: bad bounds");
  }
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (lo_[i] > hi_[i]) {
      throw std::invalid_argument("InputNormalizer: lo > hi");
    }
  }
}

std::vector<double> InputNormalizer::normalize(
    std::span<const double> raw) const {
  if (raw.size() != lo_.size()) {
    throw std::invalid_argument("InputNormalizer::normalize: dim mismatch");
  }
  std::vector<double> unit(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const double range = hi_[i] - lo_[i];
    unit[i] = range > 0.0 ? (raw[i] - lo_[i]) / range : 0.5;
  }
  return unit;
}

std::vector<double> InputNormalizer::denormalize(
    std::span<const double> unit) const {
  if (unit.size() != lo_.size()) {
    throw std::invalid_argument(
        "InputNormalizer::denormalize: dim mismatch");
  }
  std::vector<double> raw(unit.size());
  for (std::size_t i = 0; i < unit.size(); ++i) {
    raw[i] = lo_[i] + unit[i] * (hi_[i] - lo_[i]);
  }
  return raw;
}

}  // namespace mlcd::bo
