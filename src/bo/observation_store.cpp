#include "bo/observation_store.hpp"

#include <cmath>

namespace mlcd::bo {

ObservationStore::ObservationStore(std::size_t dim) : dim_(dim) {
  if (dim == 0) {
    throw std::invalid_argument("ObservationStore: dim must be > 0");
  }
}

void ObservationStore::add(std::vector<double> x, double y) {
  if (x.size() != dim_) {
    throw std::invalid_argument("ObservationStore::add: dimension mismatch");
  }
  if (!std::isfinite(y)) {
    throw std::invalid_argument("ObservationStore::add: non-finite target");
  }
  observations_.push_back(Observation{std::move(x), y});
  if (observations_.size() == 1 ||
      y > observations_[best_index_].y) {
    best_index_ = observations_.size() - 1;
  }
}

double ObservationStore::best_value() const {
  if (empty()) throw std::logic_error("ObservationStore: empty");
  return observations_[best_index_].y;
}

std::span<const double> ObservationStore::best_input() const {
  if (empty()) throw std::logic_error("ObservationStore: empty");
  return observations_[best_index_].x;
}

std::size_t ObservationStore::best_index() const {
  if (empty()) throw std::logic_error("ObservationStore: empty");
  return best_index_;
}

bool ObservationStore::contains(std::span<const double> x) const {
  for (const Observation& o : observations_) {
    if (o.x.size() != x.size()) continue;
    bool equal = true;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (o.x[i] != x[i]) {
        equal = false;
        break;
      }
    }
    if (equal) return true;
  }
  return false;
}

linalg::Matrix ObservationStore::design_matrix() const {
  linalg::Matrix x(observations_.size(), dim_);
  for (std::size_t i = 0; i < observations_.size(); ++i) {
    for (std::size_t d = 0; d < dim_; ++d) {
      x(i, d) = observations_[i].x[d];
    }
  }
  return x;
}

linalg::Vector ObservationStore::targets() const {
  linalg::Vector y(observations_.size());
  for (std::size_t i = 0; i < observations_.size(); ++i) {
    y[i] = observations_[i].y;
  }
  return y;
}

}  // namespace mlcd::bo
