// Observation bookkeeping shared by all BO searchers: the (x, y) history,
// the incumbent, and conversion to the design matrix / target vector the
// GP consumes.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "linalg/matrix.hpp"

namespace mlcd::bo {

/// One profiled point: input coordinates and the observed objective.
struct Observation {
  std::vector<double> x;
  double y = 0.0;
};

/// Append-only store of observations with incumbent tracking
/// (maximization convention).
class ObservationStore {
 public:
  /// `dim` is the input dimensionality all observations must share.
  explicit ObservationStore(std::size_t dim);

  std::size_t dim() const noexcept { return dim_; }
  std::size_t size() const noexcept { return observations_.size(); }
  bool empty() const noexcept { return observations_.empty(); }

  /// Adds an observation; throws std::invalid_argument on dimension
  /// mismatch or non-finite y.
  void add(std::vector<double> x, double y);

  const Observation& operator[](std::size_t i) const {
    return observations_[i];
  }
  const std::vector<Observation>& all() const noexcept {
    return observations_;
  }

  /// Largest observed y; throws std::logic_error when empty.
  double best_value() const;

  /// Input of the incumbent; throws std::logic_error when empty.
  std::span<const double> best_input() const;

  /// Index of the incumbent; throws std::logic_error when empty.
  std::size_t best_index() const;

  /// True when some observation's input equals `x` exactly.
  bool contains(std::span<const double> x) const;

  /// Design matrix (n x dim) of all inputs.
  linalg::Matrix design_matrix() const;

  /// Targets vector (n).
  linalg::Vector targets() const;

 private:
  std::size_t dim_;
  std::vector<Observation> observations_;
  std::size_t best_index_ = 0;
};

}  // namespace mlcd::bo
