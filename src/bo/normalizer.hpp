// Min-max input normalization to [0, 1]^d.
//
// GP lengthscales are shared across candidates, so searchers map raw
// deployment coordinates (instance-type index in [0, 61], node count in
// [1, 50]) into the unit box before fitting. Degenerate dimensions
// (lo == hi) map to 0.5 so a single-type search space stays well-posed.
#pragma once

#include <span>
#include <vector>

namespace mlcd::bo {

class InputNormalizer {
 public:
  /// Bounds per dimension; lo[i] <= hi[i] required.
  InputNormalizer(std::vector<double> lo, std::vector<double> hi);

  std::size_t dim() const noexcept { return lo_.size(); }

  /// Maps raw coordinates into [0, 1]^d.
  std::vector<double> normalize(std::span<const double> raw) const;

  /// Inverse map from [0, 1]^d back to raw coordinates.
  std::vector<double> denormalize(std::span<const double> unit) const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace mlcd::bo
