// Acquisition functions for Bayesian optimization.
//
// The paper surveys the three standard choices (§II-D): Expected
// Improvement, Upper Confidence Bound and Probability of Improvement, and
// builds HeterBO on EI (§III-C) because it is hyperparameter-free and
// composes cleanly with the stop condition. All three are provided; the
// searchers consume them through the AcquisitionFunction interface.
//
// Convention: we MAXIMIZE the objective (training speed in samples/s).
// `best` is the incumbent (largest observed value) and improvement means
// exceeding it.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "gp/gp_regressor.hpp"
#include "util/thread_pool.hpp"

namespace mlcd::bo {

/// Scores a candidate from its GP posterior; larger is more attractive.
class AcquisitionFunction {
 public:
  virtual ~AcquisitionFunction() = default;

  /// Value given the posterior (mean, stddev) at a candidate and the
  /// incumbent best observation.
  virtual double score(double mean, double stddev, double best) const = 0;

  virtual std::string name() const = 0;

  double score(const gp::Prediction& p, double best) const {
    return score(p.mean, p.stddev(), best);
  }
};

/// Expected Improvement (paper Eq. 4, maximization form):
///   EI = (mu - best) * Phi(z) + sigma * phi(z),  z = (mu - best) / sigma.
/// With sigma = 0 this degenerates to max(mu - best, 0).
class ExpectedImprovement final : public AcquisitionFunction {
 public:
  /// `xi` is the optional exploration margin (0 = paper's form).
  explicit ExpectedImprovement(double xi = 0.0) : xi_(xi) {}

  using AcquisitionFunction::score;

  double score(double mean, double stddev, double best) const override;
  std::string name() const override { return "ei"; }

 private:
  double xi_;
};

/// Upper Confidence Bound: mu + kappa * sigma.
class UpperConfidenceBound final : public AcquisitionFunction {
 public:
  explicit UpperConfidenceBound(double kappa = 2.0);

  using AcquisitionFunction::score;

  double score(double mean, double stddev, double best) const override;
  std::string name() const override { return "ucb"; }

 private:
  double kappa_;
};

/// Probability of Improvement: Phi((mu - best - xi) / sigma).
class ProbabilityOfImprovement final : public AcquisitionFunction {
 public:
  explicit ProbabilityOfImprovement(double xi = 1e-3) : xi_(xi) {}

  using AcquisitionFunction::score;

  double score(double mean, double stddev, double best) const override;
  std::string name() const override { return "poi"; }

 private:
  double xi_;
};

/// Factory by name ("ei", "ucb", "poi"); throws std::invalid_argument on
/// an unknown name.
std::unique_ptr<AcquisitionFunction> make_acquisition(
    const std::string& name);

/// Scores a batch of posteriors against one incumbent, in parallel over
/// `pool`: out[i] = acquisition.score(predictions[i], best). Each element
/// is computed independently from its own inputs, so the result is
/// bitwise identical for any thread count — the property the searchers'
/// determinism contract (util/thread_pool.hpp) builds on. `out` must be
/// the same length as `predictions`. Throws std::invalid_argument on a
/// size mismatch.
void score_batch(const AcquisitionFunction& acquisition,
                 util::ThreadPool& pool,
                 std::span<const gp::Prediction> predictions, double best,
                 std::span<double> out);

}  // namespace mlcd::bo
