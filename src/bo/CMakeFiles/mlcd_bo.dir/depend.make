# Empty dependencies file for mlcd_bo.
# This may be replaced when dependencies are built.
