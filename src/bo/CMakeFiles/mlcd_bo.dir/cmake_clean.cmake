file(REMOVE_RECURSE
  "CMakeFiles/mlcd_bo.dir/acquisition.cpp.o"
  "CMakeFiles/mlcd_bo.dir/acquisition.cpp.o.d"
  "CMakeFiles/mlcd_bo.dir/normalizer.cpp.o"
  "CMakeFiles/mlcd_bo.dir/normalizer.cpp.o.d"
  "CMakeFiles/mlcd_bo.dir/observation_store.cpp.o"
  "CMakeFiles/mlcd_bo.dir/observation_store.cpp.o.d"
  "libmlcd_bo.a"
  "libmlcd_bo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcd_bo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
