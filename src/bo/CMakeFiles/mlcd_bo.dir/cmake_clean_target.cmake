file(REMOVE_RECURSE
  "libmlcd_bo.a"
)
