
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bo/acquisition.cpp" "src/bo/CMakeFiles/mlcd_bo.dir/acquisition.cpp.o" "gcc" "src/bo/CMakeFiles/mlcd_bo.dir/acquisition.cpp.o.d"
  "/root/repo/src/bo/normalizer.cpp" "src/bo/CMakeFiles/mlcd_bo.dir/normalizer.cpp.o" "gcc" "src/bo/CMakeFiles/mlcd_bo.dir/normalizer.cpp.o.d"
  "/root/repo/src/bo/observation_store.cpp" "src/bo/CMakeFiles/mlcd_bo.dir/observation_store.cpp.o" "gcc" "src/bo/CMakeFiles/mlcd_bo.dir/observation_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/gp/CMakeFiles/mlcd_gp.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/mlcd_stats.dir/DependInfo.cmake"
  "/root/repo/src/linalg/CMakeFiles/mlcd_linalg.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/mlcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
