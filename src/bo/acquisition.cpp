#include "bo/acquisition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/normal.hpp"

namespace mlcd::bo {

double ExpectedImprovement::score(double mean, double stddev,
                                  double best) const {
  const double improvement = mean - best - xi_;
  if (stddev <= 0.0) return std::max(improvement, 0.0);
  const double z = improvement / stddev;
  return improvement * stats::normal_cdf(z) +
         stddev * stats::normal_pdf(z);
}

UpperConfidenceBound::UpperConfidenceBound(double kappa) : kappa_(kappa) {
  if (!(kappa > 0.0)) {
    throw std::invalid_argument("UpperConfidenceBound: kappa must be > 0");
  }
}

double UpperConfidenceBound::score(double mean, double stddev,
                                   double /*best*/) const {
  return mean + kappa_ * stddev;
}

double ProbabilityOfImprovement::score(double mean, double stddev,
                                       double best) const {
  const double improvement = mean - best - xi_;
  if (stddev <= 0.0) return improvement > 0.0 ? 1.0 : 0.0;
  return stats::normal_cdf(improvement / stddev);
}

std::unique_ptr<AcquisitionFunction> make_acquisition(
    const std::string& name) {
  if (name == "ei") return std::make_unique<ExpectedImprovement>();
  if (name == "ucb") return std::make_unique<UpperConfidenceBound>();
  if (name == "poi") return std::make_unique<ProbabilityOfImprovement>();
  throw std::invalid_argument("make_acquisition: unknown name " + name);
}

void score_batch(const AcquisitionFunction& acquisition,
                 util::ThreadPool& pool,
                 std::span<const gp::Prediction> predictions, double best,
                 std::span<double> out) {
  if (predictions.size() != out.size()) {
    throw std::invalid_argument("score_batch: size mismatch");
  }
  pool.parallel_for(predictions.size(),
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        out[i] = acquisition.score(predictions[i], best);
                      }
                    });
}

}  // namespace mlcd::bo
