// Deployment schemes D(m, n) and the discrete search space over them.
//
// A deployment is an instance type (scale-up coordinate m) and a node
// count (scale-out coordinate n). The paper's default AWS space is
// 62 types x 50 nodes = 3,100 schemes (§III-B).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cloud/instance.hpp"

namespace mlcd::cloud {

/// Purchasing model a deployment space prices against. Spot capacity is
/// ~3x cheaper but is revoked, which inflates effective training time
/// (see DeploymentSpace::restart_overhead_multiplier).
enum class Market { kOnDemand, kSpot };

/// One deployment scheme: `type_index` indexes into an InstanceCatalog.
struct Deployment {
  std::size_t type_index = 0;
  int nodes = 1;

  friend bool operator==(const Deployment&, const Deployment&) = default;
};

/// Discrete search space: every (type, n) with 1 <= n <= max_nodes.
class DeploymentSpace {
 public:
  /// Uniform node limit for all types (the paper's rule-of-thumb 50).
  DeploymentSpace(const InstanceCatalog& catalog, int max_nodes = 50,
                  Market market = Market::kOnDemand);

  /// Per-type node limits; must have one entry per catalog type.
  DeploymentSpace(const InstanceCatalog& catalog,
                  std::vector<int> max_nodes_per_type,
                  Market market = Market::kOnDemand);

  const InstanceCatalog& catalog() const noexcept { return *catalog_; }
  Market market() const noexcept { return market_; }

  std::size_t type_count() const noexcept;
  int max_nodes(std::size_t type_index) const;

  /// Total number of deployment schemes in the space.
  std::size_t size() const noexcept;

  /// True when `d` lies inside the space bounds.
  bool contains(const Deployment& d) const noexcept;

  /// All deployments, type-major then node order.
  std::vector<Deployment> enumerate() const;

  /// Every k-th node count for each type — the coarse grid CherryPick
  /// style searchers use. `node_grid` values outside a type's limit are
  /// skipped.
  std::vector<Deployment> enumerate_grid(
      const std::vector<int>& node_grid) const;

  /// Hourly price of a deployment: n * type price under this space's
  /// market (spot types without a spot offer fall back to on-demand).
  double hourly_price(const Deployment& d) const;

  /// Multiplier on effective training wall time accounting for spot
  /// revocations under a checkpoint/restart discipline: a steady
  /// checkpoint-write tax, plus per revocation of any node a restart
  /// penalty and the expected recompute since the last checkpoint:
  ///   multiplier = (1 + ckpt_write_fraction)
  ///              + n * revocations_per_hour
  ///                  * (restart_penalty_hours + ckpt_interval_hours / 2).
  /// 1.0 under on-demand (see docs/fault-model.md).
  double restart_overhead_multiplier(const Deployment& d) const;

  /// Human-readable "10 x c5.4xlarge".
  std::string describe(const Deployment& d) const;

 private:
  const InstanceCatalog* catalog_;
  std::vector<int> max_nodes_;
  Market market_ = Market::kOnDemand;
};

}  // namespace mlcd::cloud
