// Instance-catalog serialization.
//
// Downstream users rarely deploy on exactly our 62-type 2019 snapshot;
// catalog_io lets them describe their provider's menu in a CSV file and
// load it at runtime (the CLI's --catalog option), and round-trip the
// built-in catalog for editing.
//
// Format (header required, '#' comments allowed):
//   name,family,device,vcpus,gpus,mem_gib,network_gbps,price_per_hour,
//   spot_price_per_hour,spot_revocations_per_hour,effective_tflops
// where device is one of: cpu-avx2, cpu-avx512, cpu-burst, gpu-k80,
// gpu-v100, gpu-m60.
#pragma once

#include <string>

#include "cloud/instance.hpp"

namespace mlcd::cloud {

/// Loads a catalog from CSV. Throws std::runtime_error when the file
/// cannot be read and std::invalid_argument on malformed content
/// (unknown device kind, wrong column count, non-numeric fields, no data
/// rows).
InstanceCatalog load_catalog_csv(const std::string& path);

/// Writes a catalog as CSV (the inverse of load_catalog_csv).
void save_catalog_csv(const InstanceCatalog& catalog,
                      const std::string& path);

/// Parses a device-kind name ("gpu-v100", ...); throws
/// std::invalid_argument on an unknown name.
DeviceKind device_kind_from_name(const std::string& name);

}  // namespace mlcd::cloud
