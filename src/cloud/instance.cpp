#include "cloud/instance.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

namespace mlcd::cloud {

std::string_view device_kind_name(DeviceKind kind) noexcept {
  switch (kind) {
    case DeviceKind::kCpuAvx2:
      return "cpu-avx2";
    case DeviceKind::kCpuAvx512:
      return "cpu-avx512";
    case DeviceKind::kCpuBurst:
      return "cpu-burst";
    case DeviceKind::kGpuK80:
      return "gpu-k80";
    case DeviceKind::kGpuV100:
      return "gpu-v100";
    case DeviceKind::kGpuM60:
      return "gpu-m60";
  }
  return "?";
}

bool is_gpu(DeviceKind kind) noexcept {
  return kind == DeviceKind::kGpuK80 || kind == DeviceKind::kGpuV100 ||
         kind == DeviceKind::kGpuM60;
}

InstanceCatalog::InstanceCatalog(std::vector<InstanceSpec> specs)
    : specs_(std::move(specs)) {
  if (specs_.empty()) {
    throw std::invalid_argument("InstanceCatalog: empty catalog");
  }
  std::set<std::string_view> names;
  for (const InstanceSpec& s : specs_) {
    const auto reject = [&s](const char* field) {
      throw std::invalid_argument("InstanceCatalog: spec '" + s.name +
                                  "': invalid " + field);
    };
    if (s.name.empty()) reject("name (empty)");
    // The negated comparisons also catch NaN (which compares false to
    // everything and would sail through `x <= 0.0` gates); std::isfinite
    // additionally rejects infinities.
    if (!(s.price_per_hour > 0.0) || !std::isfinite(s.price_per_hour)) {
      reject("price_per_hour (want a positive finite number)");
    }
    if (!(s.effective_tflops > 0.0) ||
        !std::isfinite(s.effective_tflops)) {
      reject("effective_tflops (want a positive finite number)");
    }
    if (!(s.network_gbps > 0.0) || !std::isfinite(s.network_gbps)) {
      reject("network_gbps (want a positive finite number)");
    }
    if (!(s.mem_gib >= 0.0) || !std::isfinite(s.mem_gib)) {
      reject("mem_gib (want a non-negative finite number)");
    }
    if (!(s.spot_price_per_hour >= 0.0) ||
        !std::isfinite(s.spot_price_per_hour)) {
      reject("spot_price_per_hour (want a non-negative finite number)");
    }
    if (!(s.spot_revocations_per_hour >= 0.0) ||
        !std::isfinite(s.spot_revocations_per_hour)) {
      reject("spot_revocations_per_hour (want a non-negative finite number)");
    }
    if (s.vcpus < 1) reject("vcpus (want >= 1)");
    if (s.gpus < 0) reject("gpus (want >= 0)");
    if (!names.insert(s.name).second) {
      throw std::invalid_argument("InstanceCatalog: duplicate type name '" +
                                  s.name + "'");
    }
  }
}

const InstanceSpec& InstanceCatalog::at(std::size_t i) const {
  if (i >= specs_.size()) {
    throw std::out_of_range("InstanceCatalog::at: bad index");
  }
  return specs_[i];
}

std::optional<std::size_t> InstanceCatalog::find(
    std::string_view name) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::size_t> InstanceCatalog::family_indices(
    std::string_view family) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].family == family) out.push_back(i);
  }
  return out;
}

InstanceCatalog InstanceCatalog::subset(
    std::span<const std::string> names) const {
  std::vector<InstanceSpec> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    const auto idx = find(name);
    if (!idx) {
      throw std::invalid_argument("InstanceCatalog::subset: unknown type " +
                                  name);
    }
    out.push_back(specs_[*idx]);
  }
  return InstanceCatalog(std::move(out));
}

namespace {

// Helper shortening the catalog table below.
InstanceSpec spec(std::string name, std::string family, DeviceKind device,
                  int vcpus, int gpus, double mem_gib, double network_gbps,
                  double price, double tflops) {
  InstanceSpec s;
  s.name = std::move(name);
  s.family = std::move(family);
  s.device = device;
  s.vcpus = vcpus;
  s.gpus = gpus;
  s.mem_gib = mem_gib;
  s.network_gbps = network_gbps;
  s.price_per_hour = price;
  s.effective_tflops = tflops;
  // Spot market: ~30% of on-demand for CPU capacity, ~35% for the
  // scarcer accelerators; revocation pressure likewise higher on GPUs.
  const bool gpu = gpus > 0;
  s.spot_price_per_hour = price * (gpu ? 0.35 : 0.30);
  s.spot_revocations_per_hour = gpu ? 0.06 : 0.03;
  return s;
}

std::vector<InstanceSpec> build_aws_catalog() {
  using DK = DeviceKind;
  std::vector<InstanceSpec> v;
  v.reserve(62);

  // Effective CPU training throughput: ~0.045 TFLOP/s per AVX-512 vCPU,
  // ~0.030 per AVX2 vCPU, ~0.020 per burstable vCPU. GPU throughput:
  // K80 ~1.3, M60 ~2.2, V100 ~6.0 TFLOP/s effective per device
  // (2019-era fp32 training without tensor-core mixed precision).

  // c5 — compute optimized (AVX-512).
  v.push_back(spec("c5.large", "c5", DK::kCpuAvx512, 2, 0, 4, 0.75, 0.085, 0.090));
  v.push_back(spec("c5.xlarge", "c5", DK::kCpuAvx512, 4, 0, 8, 1.25, 0.170, 0.180));
  v.push_back(spec("c5.2xlarge", "c5", DK::kCpuAvx512, 8, 0, 16, 2.5, 0.340, 0.360));
  v.push_back(spec("c5.4xlarge", "c5", DK::kCpuAvx512, 16, 0, 32, 5.0, 0.680, 0.720));
  v.push_back(spec("c5.9xlarge", "c5", DK::kCpuAvx512, 36, 0, 72, 10.0, 1.530, 1.620));
  v.push_back(spec("c5.12xlarge", "c5", DK::kCpuAvx512, 48, 0, 96, 12.0, 2.040, 2.160));
  v.push_back(spec("c5.18xlarge", "c5", DK::kCpuAvx512, 72, 0, 144, 25.0, 3.060, 3.240));
  v.push_back(spec("c5.24xlarge", "c5", DK::kCpuAvx512, 96, 0, 192, 25.0, 4.080, 4.320));

  // c5n — network-enhanced compute optimized.
  v.push_back(spec("c5n.large", "c5n", DK::kCpuAvx512, 2, 0, 5.25, 3.0, 0.108, 0.090));
  v.push_back(spec("c5n.xlarge", "c5n", DK::kCpuAvx512, 4, 0, 10.5, 5.0, 0.216, 0.180));
  v.push_back(spec("c5n.2xlarge", "c5n", DK::kCpuAvx512, 8, 0, 21, 10.0, 0.432, 0.360));
  v.push_back(spec("c5n.4xlarge", "c5n", DK::kCpuAvx512, 16, 0, 42, 15.0, 0.864, 0.720));
  v.push_back(spec("c5n.9xlarge", "c5n", DK::kCpuAvx512, 36, 0, 96, 50.0, 1.944, 1.620));
  v.push_back(spec("c5n.18xlarge", "c5n", DK::kCpuAvx512, 72, 0, 192, 100.0, 3.888, 3.240));

  // c4 — previous-generation compute optimized (AVX2).
  v.push_back(spec("c4.large", "c4", DK::kCpuAvx2, 2, 0, 3.75, 0.5, 0.100, 0.060));
  v.push_back(spec("c4.xlarge", "c4", DK::kCpuAvx2, 4, 0, 7.5, 0.75, 0.199, 0.120));
  v.push_back(spec("c4.2xlarge", "c4", DK::kCpuAvx2, 8, 0, 15, 1.0, 0.398, 0.240));
  v.push_back(spec("c4.4xlarge", "c4", DK::kCpuAvx2, 16, 0, 30, 2.0, 0.796, 0.480));
  v.push_back(spec("c4.8xlarge", "c4", DK::kCpuAvx2, 36, 0, 60, 10.0, 1.591, 1.080));

  // m5 — general purpose.
  v.push_back(spec("m5.large", "m5", DK::kCpuAvx512, 2, 0, 8, 0.75, 0.096, 0.090));
  v.push_back(spec("m5.xlarge", "m5", DK::kCpuAvx512, 4, 0, 16, 1.25, 0.192, 0.180));
  v.push_back(spec("m5.2xlarge", "m5", DK::kCpuAvx512, 8, 0, 32, 2.5, 0.384, 0.360));
  v.push_back(spec("m5.4xlarge", "m5", DK::kCpuAvx512, 16, 0, 64, 5.0, 0.768, 0.720));
  v.push_back(spec("m5.8xlarge", "m5", DK::kCpuAvx512, 32, 0, 128, 10.0, 1.536, 1.440));
  v.push_back(spec("m5.12xlarge", "m5", DK::kCpuAvx512, 48, 0, 192, 12.0, 2.304, 2.160));
  v.push_back(spec("m5.16xlarge", "m5", DK::kCpuAvx512, 64, 0, 256, 20.0, 3.072, 2.880));
  v.push_back(spec("m5.24xlarge", "m5", DK::kCpuAvx512, 96, 0, 384, 25.0, 4.608, 4.320));

  // m5n — network-enhanced general purpose.
  v.push_back(spec("m5n.large", "m5n", DK::kCpuAvx512, 2, 0, 8, 3.0, 0.119, 0.090));
  v.push_back(spec("m5n.xlarge", "m5n", DK::kCpuAvx512, 4, 0, 16, 5.0, 0.238, 0.180));
  v.push_back(spec("m5n.2xlarge", "m5n", DK::kCpuAvx512, 8, 0, 32, 10.0, 0.476, 0.360));
  v.push_back(spec("m5n.4xlarge", "m5n", DK::kCpuAvx512, 16, 0, 64, 15.0, 0.952, 0.720));
  v.push_back(spec("m5n.8xlarge", "m5n", DK::kCpuAvx512, 32, 0, 128, 25.0, 1.904, 1.440));
  v.push_back(spec("m5n.12xlarge", "m5n", DK::kCpuAvx512, 48, 0, 192, 50.0, 2.856, 2.160));
  v.push_back(spec("m5n.16xlarge", "m5n", DK::kCpuAvx512, 64, 0, 256, 75.0, 3.808, 2.880));
  v.push_back(spec("m5n.24xlarge", "m5n", DK::kCpuAvx512, 96, 0, 384, 100.0, 5.712, 4.320));

  // r5 — memory optimized.
  v.push_back(spec("r5.large", "r5", DK::kCpuAvx512, 2, 0, 16, 0.75, 0.126, 0.080));
  v.push_back(spec("r5.xlarge", "r5", DK::kCpuAvx512, 4, 0, 32, 1.25, 0.252, 0.160));
  v.push_back(spec("r5.2xlarge", "r5", DK::kCpuAvx512, 8, 0, 64, 2.5, 0.504, 0.320));
  v.push_back(spec("r5.4xlarge", "r5", DK::kCpuAvx512, 16, 0, 128, 5.0, 1.008, 0.640));
  v.push_back(spec("r5.8xlarge", "r5", DK::kCpuAvx512, 32, 0, 256, 10.0, 2.016, 1.280));
  v.push_back(spec("r5.12xlarge", "r5", DK::kCpuAvx512, 48, 0, 384, 12.0, 3.024, 1.920));
  v.push_back(spec("r5.16xlarge", "r5", DK::kCpuAvx512, 64, 0, 512, 20.0, 4.032, 2.560));
  v.push_back(spec("r5.24xlarge", "r5", DK::kCpuAvx512, 96, 0, 768, 25.0, 6.048, 3.840));

  // r4 — previous-generation memory optimized.
  v.push_back(spec("r4.large", "r4", DK::kCpuAvx2, 2, 0, 15.25, 0.75, 0.133, 0.055));
  v.push_back(spec("r4.xlarge", "r4", DK::kCpuAvx2, 4, 0, 30.5, 1.25, 0.266, 0.110));
  v.push_back(spec("r4.2xlarge", "r4", DK::kCpuAvx2, 8, 0, 61, 2.5, 0.532, 0.220));
  v.push_back(spec("r4.4xlarge", "r4", DK::kCpuAvx2, 16, 0, 122, 5.0, 1.064, 0.440));
  v.push_back(spec("r4.8xlarge", "r4", DK::kCpuAvx2, 32, 0, 244, 10.0, 2.128, 0.880));
  v.push_back(spec("r4.16xlarge", "r4", DK::kCpuAvx2, 64, 0, 488, 25.0, 4.256, 1.760));

  // t3 — burstable.
  v.push_back(spec("t3.medium", "t3", DK::kCpuBurst, 2, 0, 4, 0.5, 0.0416, 0.040));
  v.push_back(spec("t3.large", "t3", DK::kCpuBurst, 2, 0, 8, 0.5, 0.0832, 0.040));
  v.push_back(spec("t3.xlarge", "t3", DK::kCpuBurst, 4, 0, 16, 1.0, 0.1664, 0.080));
  v.push_back(spec("t3.2xlarge", "t3", DK::kCpuBurst, 8, 0, 32, 1.0, 0.3328, 0.160));

  // p2 — NVIDIA K80 accelerated.
  v.push_back(spec("p2.xlarge", "p2", DK::kGpuK80, 4, 1, 61, 1.25, 0.900, 1.300));
  v.push_back(spec("p2.8xlarge", "p2", DK::kGpuK80, 32, 8, 488, 10.0, 7.225, 10.400));
  v.push_back(spec("p2.16xlarge", "p2", DK::kGpuK80, 64, 16, 732, 25.0, 14.400, 20.800));

  // p3 — NVIDIA V100 accelerated.
  v.push_back(spec("p3.2xlarge", "p3", DK::kGpuV100, 8, 1, 61, 2.5, 3.060, 6.000));
  v.push_back(spec("p3.8xlarge", "p3", DK::kGpuV100, 32, 4, 244, 10.0, 12.240, 24.000));
  v.push_back(spec("p3.16xlarge", "p3", DK::kGpuV100, 64, 8, 488, 25.0, 24.480, 48.000));

  // g3 — NVIDIA M60 graphics-accelerated.
  v.push_back(spec("g3.4xlarge", "g3", DK::kGpuM60, 16, 1, 122, 5.0, 1.140, 2.200));
  v.push_back(spec("g3.8xlarge", "g3", DK::kGpuM60, 32, 2, 244, 10.0, 2.280, 4.400));
  v.push_back(spec("g3.16xlarge", "g3", DK::kGpuM60, 64, 4, 488, 25.0, 4.560, 8.800));

  return v;
}

}  // namespace

const InstanceCatalog& aws_catalog() {
  static const InstanceCatalog catalog(build_aws_catalog());
  return catalog;
}

}  // namespace mlcd::cloud
