#include "cloud/billing.hpp"

#include <cmath>
#include <stdexcept>

namespace mlcd::cloud {

BillingMeter::BillingMeter(const DeploymentSpace& space,
                           double minimum_seconds)
    : space_(&space), minimum_seconds_(minimum_seconds) {
  if (minimum_seconds < 0.0) {
    throw std::invalid_argument("BillingMeter: negative minimum_seconds");
  }
}

double BillingMeter::charge(const Deployment& d, double hours,
                            UsageKind kind, std::string note) {
  if (hours < 0.0) {
    throw std::invalid_argument("BillingMeter::charge: negative hours");
  }
  const double seconds = hours * 3600.0;
  const double billed_seconds =
      std::max(std::ceil(seconds), minimum_seconds_);
  const double billed_hours = billed_seconds / 3600.0;
  const double cost = billed_hours * space_->hourly_price(d);

  records_.push_back(UsageRecord{d, kind, hours, billed_hours, cost,
                                 std::move(note)});
  return cost;
}

double BillingMeter::total_cost() const noexcept {
  double sum = 0.0;
  for (const UsageRecord& r : records_) sum += r.cost;
  return sum;
}

double BillingMeter::total_cost(UsageKind kind) const noexcept {
  double sum = 0.0;
  for (const UsageRecord& r : records_) {
    if (r.kind == kind) sum += r.cost;
  }
  return sum;
}

double BillingMeter::total_hours(UsageKind kind) const noexcept {
  double sum = 0.0;
  for (const UsageRecord& r : records_) {
    if (r.kind == kind) sum += r.hours;
  }
  return sum;
}

}  // namespace mlcd::cloud
