#include "cloud/simulator.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace mlcd::cloud {

CloudSimulator::CloudSimulator(const DeploymentSpace& space,
                               std::uint64_t seed, SimulatorOptions options)
    : space_(&space), options_(options), rng_(seed) {
  if (options_.base_setup_hours < 0.0 ||
      options_.setup_hours_per_3_nodes < 0.0 ||
      options_.setup_jitter_sigma < 0.0) {
    throw std::invalid_argument("CloudSimulator: negative option");
  }
}

double CloudSimulator::expected_setup_hours(
    const Deployment& d) const noexcept {
  const int extra_nodes = d.nodes - 1;
  return options_.base_setup_hours +
         options_.setup_hours_per_3_nodes * (extra_nodes / 3);
}

Cluster CloudSimulator::provision(const Deployment& d) {
  if (!space_->contains(d)) {
    throw std::invalid_argument("CloudSimulator::provision: out of space");
  }
  double setup = expected_setup_hours(d);
  if (options_.setup_jitter_sigma > 0.0) {
    setup = rng_.lognormal_median(setup, options_.setup_jitter_sigma);
  }
  Cluster c;
  c.deployment = d;
  c.setup_hours = setup;
  c.id = next_id_++;
  MLCD_LOG(kDebug, "cloud") << "provisioned " << space_->describe(d)
                            << " setup_h=" << setup;
  return c;
}

}  // namespace mlcd::cloud
