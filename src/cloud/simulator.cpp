#include "cloud/simulator.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace mlcd::cloud {

CloudSimulator::CloudSimulator(const DeploymentSpace& space,
                               std::uint64_t seed, SimulatorOptions options)
    : space_(&space), options_(options), rng_(seed) {
  if (options_.base_setup_hours < 0.0 ||
      options_.setup_hours_per_3_nodes < 0.0 ||
      options_.setup_jitter_sigma < 0.0) {
    throw std::invalid_argument("CloudSimulator: negative option");
  }
}

double CloudSimulator::expected_setup_hours(
    const Deployment& d) const noexcept {
  const int extra_nodes = d.nodes - 1;
  return options_.base_setup_hours +
         options_.setup_hours_per_3_nodes * (extra_nodes / 3);
}

std::string_view provision_status_name(ProvisionStatus status) noexcept {
  switch (status) {
    case ProvisionStatus::kOk:
      return "ok";
    case ProvisionStatus::kInvalidDeployment:
      return "invalid-deployment";
    case ProvisionStatus::kLaunchFailure:
      return "launch-failure";
    case ProvisionStatus::kCapacityOutage:
      return "capacity-outage";
  }
  return "unknown";
}

Cluster CloudSimulator::provision(const Deployment& d) {
  if (!space_->contains(d)) {
    throw std::invalid_argument("CloudSimulator::provision: out of space");
  }
  double setup = expected_setup_hours(d);
  if (options_.setup_jitter_sigma > 0.0) {
    setup = rng_.lognormal_median(setup, options_.setup_jitter_sigma);
  }
  Cluster c;
  c.deployment = d;
  c.setup_hours = setup;
  c.id = next_id_++;
  MLCD_LOG(kDebug, "cloud") << "provisioned " << space_->describe(d)
                            << " setup_h=" << setup;
  return c;
}

ProvisionOutcome CloudSimulator::try_provision(const Deployment& d,
                                               double now_hours) {
  ProvisionOutcome out;
  if (!space_->contains(d)) {
    out.status = ProvisionStatus::kInvalidDeployment;
    out.message = "deployment outside the space";
    return out;
  }
  if (faults_ != nullptr) {
    if (faults_->in_outage(d.type_index, now_hours)) {
      out.status = ProvisionStatus::kCapacityOutage;
      out.message = "capacity outage on " +
                    space_->catalog().at(d.type_index).name;
      return out;
    }
    // Roll just the launch phase; window hazards (revocation, straggler)
    // belong to whoever runs the cluster afterwards.
    const auto roll = faults_->attempt(d, space_->market(), 0.0, now_hours);
    if (roll.fault == FaultKind::kLaunchFailure) {
      out.status = ProvisionStatus::kLaunchFailure;
      out.message = "node failed during launch of " + space_->describe(d);
      return out;
    }
  }
  out.cluster = provision(d);
  return out;
}

}  // namespace mlcd::cloud
