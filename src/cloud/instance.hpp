// Cloud instance catalog.
//
// The paper's search space is "62 scale-up options" on AWS (§III-B). We
// reproduce a 62-entry catalog of 2019-era EC2 instance types across the
// families the evaluation uses (c4, c5, c5n, p2, p3) plus the general-
// purpose/memory/burstable/GPU-graphics families that pad the space to 62
// (m5, m5n, r5, r4, t3, g3). Prices are the published us-east-1 on-demand
// rates of that period; the Fig. 1a anchor (p2.8xlarge = 42.5x c5.xlarge)
// holds with these numbers.
//
// `effective_tflops` is the instance's sustained dense-training throughput
// in TFLOP/s terms for a well-suited CNN workload; the performance model
// (src/perf) scales it by a model-kind x device-class efficiency factor.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mlcd::cloud {

/// Accelerator class of an instance.
enum class DeviceKind {
  kCpuAvx2,    ///< previous-gen CPU (c4, r4)
  kCpuAvx512,  ///< current-gen CPU (c5, c5n, m5, m5n, r5)
  kCpuBurst,   ///< burstable CPU (t3)
  kGpuK80,     ///< NVIDIA K80 (p2)
  kGpuV100,    ///< NVIDIA V100 (p3)
  kGpuM60,     ///< NVIDIA M60 (g3)
};

std::string_view device_kind_name(DeviceKind kind) noexcept;

/// True for the GPU device kinds.
bool is_gpu(DeviceKind kind) noexcept;

/// Static description of one instance type.
struct InstanceSpec {
  std::string name;          ///< e.g. "c5.4xlarge"
  std::string family;        ///< e.g. "c5"
  DeviceKind device = DeviceKind::kCpuAvx512;
  int vcpus = 0;
  int gpus = 0;              ///< 0 for CPU instances
  double mem_gib = 0.0;
  double network_gbps = 0.0;   ///< sustained NIC bandwidth
  double price_per_hour = 0.0; ///< on-demand $/h
  /// Spot-market price, $/h (typically ~30% of on-demand); 0 when the
  /// type is not offered on the spot market.
  double spot_price_per_hour = 0.0;
  /// Expected spot revocations per instance-hour (GPU capacity is
  /// reclaimed more often than CPU capacity).
  double spot_revocations_per_hour = 0.0;
  double effective_tflops = 0.0;

  bool is_gpu_instance() const noexcept { return gpus > 0; }
};

/// Immutable, indexable collection of instance types. Index order is the
/// catalog's scale-up coordinate (dimension m in the paper).
class InstanceCatalog {
 public:
  explicit InstanceCatalog(std::vector<InstanceSpec> specs);

  std::size_t size() const noexcept { return specs_.size(); }
  const InstanceSpec& operator[](std::size_t i) const { return specs_[i]; }
  const InstanceSpec& at(std::size_t i) const;
  std::span<const InstanceSpec> all() const noexcept { return specs_; }

  /// Index of the type with the given name, if present.
  std::optional<std::size_t> find(std::string_view name) const;

  /// Indices of all types in a family (e.g. "c5"), in catalog order.
  std::vector<std::size_t> family_indices(std::string_view family) const;

  /// Catalog restricted to the named types (preserving given order).
  /// Throws std::invalid_argument for unknown names.
  InstanceCatalog subset(std::span<const std::string> names) const;

 private:
  std::vector<InstanceSpec> specs_;
};

/// The full 62-type AWS-like catalog described above.
const InstanceCatalog& aws_catalog();

}  // namespace mlcd::cloud
