file(REMOVE_RECURSE
  "CMakeFiles/mlcd_cloud.dir/billing.cpp.o"
  "CMakeFiles/mlcd_cloud.dir/billing.cpp.o.d"
  "CMakeFiles/mlcd_cloud.dir/catalog_io.cpp.o"
  "CMakeFiles/mlcd_cloud.dir/catalog_io.cpp.o.d"
  "CMakeFiles/mlcd_cloud.dir/deployment.cpp.o"
  "CMakeFiles/mlcd_cloud.dir/deployment.cpp.o.d"
  "CMakeFiles/mlcd_cloud.dir/fault_model.cpp.o"
  "CMakeFiles/mlcd_cloud.dir/fault_model.cpp.o.d"
  "CMakeFiles/mlcd_cloud.dir/instance.cpp.o"
  "CMakeFiles/mlcd_cloud.dir/instance.cpp.o.d"
  "CMakeFiles/mlcd_cloud.dir/simulator.cpp.o"
  "CMakeFiles/mlcd_cloud.dir/simulator.cpp.o.d"
  "libmlcd_cloud.a"
  "libmlcd_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcd_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
