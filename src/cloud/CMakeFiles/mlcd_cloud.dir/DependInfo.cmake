
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/billing.cpp" "src/cloud/CMakeFiles/mlcd_cloud.dir/billing.cpp.o" "gcc" "src/cloud/CMakeFiles/mlcd_cloud.dir/billing.cpp.o.d"
  "/root/repo/src/cloud/catalog_io.cpp" "src/cloud/CMakeFiles/mlcd_cloud.dir/catalog_io.cpp.o" "gcc" "src/cloud/CMakeFiles/mlcd_cloud.dir/catalog_io.cpp.o.d"
  "/root/repo/src/cloud/deployment.cpp" "src/cloud/CMakeFiles/mlcd_cloud.dir/deployment.cpp.o" "gcc" "src/cloud/CMakeFiles/mlcd_cloud.dir/deployment.cpp.o.d"
  "/root/repo/src/cloud/fault_model.cpp" "src/cloud/CMakeFiles/mlcd_cloud.dir/fault_model.cpp.o" "gcc" "src/cloud/CMakeFiles/mlcd_cloud.dir/fault_model.cpp.o.d"
  "/root/repo/src/cloud/instance.cpp" "src/cloud/CMakeFiles/mlcd_cloud.dir/instance.cpp.o" "gcc" "src/cloud/CMakeFiles/mlcd_cloud.dir/instance.cpp.o.d"
  "/root/repo/src/cloud/simulator.cpp" "src/cloud/CMakeFiles/mlcd_cloud.dir/simulator.cpp.o" "gcc" "src/cloud/CMakeFiles/mlcd_cloud.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/mlcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
