file(REMOVE_RECURSE
  "libmlcd_cloud.a"
)
