# Empty dependencies file for mlcd_cloud.
# This may be replaced when dependencies are built.
