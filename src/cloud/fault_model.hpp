// Operational fault injection for the simulated cloud.
//
// Real clouds bill for launches that fail, reclaim spot capacity
// mid-window, run out of capacity for whole instance types at a time,
// and occasionally hand out a straggler node that stretches a run. The
// FaultModel is the single source of that misbehavior: a seeded,
// deterministic generator of per-attempt outcomes that the profiler (and
// the provisioning simulator) roll before every cluster launch.
//
// Hazards scale with what actually drives them on a real provider:
//  - launch failures are per *node* — a 50-node cluster fails far more
//    often than a 1-node probe (P_fail(n) = 1 - (1 - h)^n);
//  - spot revocations are per *type* and per *hour*, driven by the
//    catalog's spot_revocations_per_hour field;
//  - capacity outages are correlated episodes: an instance type becomes
//    unlaunchable for a window, pre-scheduled from the seed so outage
//    state is a pure function of (seed, type, clock);
//  - stragglers do not fail the attempt, they stretch its wall time.
//
// RetryPolicy is the matching recovery discipline: capped exponential
// backoff with jittered delay. Failed attempts charge the meter and the
// clock — exactly like a real cloud — while backoff waits charge only
// the clock (nothing is running, but the deadline keeps ticking).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "cloud/deployment.hpp"
#include "cloud/instance.hpp"
#include "util/rng.hpp"

namespace mlcd::cloud {

/// What went wrong with (or during) one launch + measurement attempt.
enum class FaultKind {
  kNone = 0,        ///< clean attempt
  kLaunchFailure,   ///< a node died during cluster launch
  kSpotRevocation,  ///< spot capacity reclaimed mid-window
  kCapacityOutage,  ///< type temporarily unlaunchable (correlated episode)
  kStraggler,       ///< a slow node stretched the window (success, late)
  kProbeTimeout,    ///< watchdog killed a hung/overlong attempt
};

std::string_view fault_kind_name(FaultKind kind) noexcept;

/// One capacity-outage episode of an instance type, [start, end) hours.
struct OutageEpisode {
  double start_hours = 0.0;
  double end_hours = 0.0;
};

struct FaultModelOptions {
  /// Probability that any single node fails during cluster launch. An
  /// n-node launch succeeds only when all n nodes come up, so
  /// P_fail(n) = 1 - (1 - h)^n — the per-node hazard is what makes big
  /// probes operationally riskier than small ones. 0 disables.
  double launch_failure_per_node = 0.0;
  /// Scale on the catalog's spot_revocations_per_hour when rolling
  /// probe-window revocations (spot market only). 0 disables.
  double spot_revocation_scale = 1.0;
  /// Capacity-outage episodes per type per 100 hours; 0 disables.
  double outage_episodes_per_100h = 0.0;
  /// Mean episode duration (exponential), hours.
  double outage_mean_hours = 2.0;
  /// Episodes are pre-scheduled on [0, horizon) at construction, so
  /// outage state never depends on the order of attempt() calls.
  double outage_horizon_hours = 500.0;
  /// Deterministic extra episodes (chaos scripting, tests): pairs of
  /// (type index, episode).
  std::vector<std::pair<std::size_t, OutageEpisode>> scheduled_outages;
  /// Probability a successful attempt is stretched by a straggler, and
  /// the wall-time multiplier when it is.
  double straggler_rate = 0.0;
  double straggler_slowdown = 1.5;
  /// Fraction of the planned window a failed launch consumes and bills
  /// (the partial cluster ran until the failure was diagnosed).
  double launch_failure_fraction = 0.5;
  /// Floor on the elapsed/billed fraction of a revoked window; the
  /// revocation point is drawn uniformly in the window above it.
  double revocation_fraction_floor = 0.05;
  /// Wall-clock fraction burned discovering a capacity outage (API
  /// retries). Outage attempts never bill: no instance ever started.
  double outage_wall_fraction = 0.05;
};

/// Outcome of rolling one attempt against the fault model.
struct AttemptOutcome {
  FaultKind fault = FaultKind::kNone;
  double wall_fraction = 1.0;  ///< of the planned window, elapsed
  double bill_fraction = 1.0;  ///< of the planned window, billed
  double slowdown = 1.0;       ///< straggler stretch (success only)

  /// True when the attempt produced no measurement (straggling still
  /// succeeds — just slowly).
  bool failed() const noexcept {
    return fault != FaultKind::kNone && fault != FaultKind::kStraggler;
  }
};

/// Per-attempt accounting record, surfaced through probe traces and run
/// reports so every failed attempt's charge is visible in the billing
/// trail.
struct AttemptRecord {
  FaultKind fault = FaultKind::kNone;  ///< kNone/kStraggler = success
  double hours = 0.0;          ///< wall time the attempt consumed
  double cost = 0.0;           ///< dollars billed for the attempt
  double backoff_hours = 0.0;  ///< delay before the next attempt
};

/// Capped exponential backoff with jittered delay.
struct RetryPolicy {
  /// Launch attempts per probe before giving up (>= 1; 1 = no retry).
  int max_attempts = 3;
  double base_backoff_hours = 2.0 / 60.0;
  double backoff_multiplier = 2.0;
  /// Hard cap, applied after jitter — worst-case delay is bounded, which
  /// is what lets the protective reserve account for retries exactly.
  double max_backoff_hours = 10.0 / 60.0;
  /// Lognormal sigma on the delay (de-synchronizes thundering herds).
  double backoff_jitter_sigma = 0.2;

  /// Delay before attempt number `failed_attempts + 1`.
  double backoff_hours_after(int failed_attempts, util::Rng& rng) const;
};

/// Seeded, deterministic fault generator over an instance catalog. The
/// same seed and the same options produce bit-identical outcome
/// sequences for the same sequence of attempt() calls.
class FaultModel {
 public:
  FaultModel(const InstanceCatalog& catalog, std::uint64_t seed,
             FaultModelOptions options = {});

  const FaultModelOptions& options() const noexcept { return options_; }

  /// True when any hazard can actually fire under `market` (the
  /// profiler's fault-free fast path keys off this). The catalog's spot
  /// revocation rates only count on the spot market.
  bool enabled(Market market) const noexcept;
  /// True when any hazard is configured for any market.
  bool enabled() const noexcept { return enabled(Market::kSpot); }

  /// True when `type_index` sits inside an outage episode at `now`.
  bool in_outage(std::size_t type_index, double now_hours) const;
  /// Hours until the surrounding episode ends; 0 when not in outage.
  double outage_remaining_hours(std::size_t type_index,
                                double now_hours) const;

  /// Per-attempt launch-failure probability of an n-node cluster.
  double launch_failure_probability(int nodes) const noexcept;
  /// Probability a spot window of `window_hours` on `nodes` nodes of
  /// `type_index` is revoked before it completes.
  double revocation_probability(std::size_t type_index, int nodes,
                                double window_hours) const;

  /// Rolls one launch + window attempt at clock `now_hours`.
  AttemptOutcome attempt(const Deployment& d, Market market,
                         double window_hours, double now_hours);

  /// Upper bounds on the window fraction one *failed* attempt can
  /// consume / bill, given the configured hazards. The protective
  /// reserve uses these to budget for retry-inflated spend.
  double worst_failed_wall_fraction(Market market) const noexcept;
  double worst_failed_bill_fraction(Market market) const noexcept;

 private:
  const InstanceCatalog* catalog_;
  FaultModelOptions options_;
  util::Rng rng_;
  /// Per-type episodes, sorted by start time.
  std::vector<std::vector<OutageEpisode>> outages_;
};

}  // namespace mlcd::cloud
