// Cluster provisioning simulator.
//
// Models the operational side of launching a training cluster on a cloud:
// instance boot, image pull and framework warm-up. The setup-time model
// matches the paper's profiler accounting (§V-A): 10 minutes for a single
// node, plus 1 minute per 3 additional nodes (larger clusters take longer
// to converge to steady state), with small deterministic-seeded jitter.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cloud/deployment.hpp"
#include "cloud/fault_model.hpp"
#include "util/rng.hpp"

namespace mlcd::cloud {

struct SimulatorOptions {
  /// Base setup + warm-up time for a one-node cluster, hours (paper: 10 min).
  double base_setup_hours = 10.0 / 60.0;
  /// Extra setup time per 3 additional nodes, hours (paper: 1 min).
  double setup_hours_per_3_nodes = 1.0 / 60.0;
  /// Relative jitter (lognormal sigma) on setup time; 0 disables.
  double setup_jitter_sigma = 0.03;
};

/// A provisioned (simulated) cluster handle.
struct Cluster {
  Deployment deployment;
  double setup_hours = 0.0;  ///< time spent before training is measurable
  std::uint64_t id = 0;
};

/// Why a provision attempt did not return a cluster. The split matters
/// for retry logic: a launch failure or capacity outage is transient and
/// worth retrying, an invalid deployment never is.
enum class ProvisionStatus {
  kOk = 0,
  kInvalidDeployment,  ///< outside the deployment space — never retry
  kLaunchFailure,      ///< transient node failure during launch — retry
  kCapacityOutage,     ///< type temporarily unlaunchable — retry later
};

std::string_view provision_status_name(ProvisionStatus status) noexcept;

/// Outcome of CloudSimulator::try_provision.
struct ProvisionOutcome {
  ProvisionStatus status = ProvisionStatus::kOk;
  std::optional<Cluster> cluster;  ///< present iff status == kOk
  std::string message;

  bool ok() const noexcept { return status == ProvisionStatus::kOk; }
  /// True when a retry might succeed (transient failure).
  bool retryable() const noexcept {
    return status == ProvisionStatus::kLaunchFailure ||
           status == ProvisionStatus::kCapacityOutage;
  }
};

/// Simulates provisioning; deterministic given the seed.
class CloudSimulator {
 public:
  CloudSimulator(const DeploymentSpace& space, std::uint64_t seed,
                 SimulatorOptions options = {});

  const DeploymentSpace& space() const noexcept { return *space_; }

  /// Provisions a cluster for `d`; throws std::invalid_argument when `d`
  /// is outside the space. Ignores any attached fault model (legacy
  /// entry point — prefer try_provision for fault-aware callers).
  Cluster provision(const Deployment& d);

  /// Fault-aware provisioning: distinguishes invalid deployments from
  /// transient launch failures / capacity outages so callers can decide
  /// what is worth retrying. Rolls the attached fault model (if any) at
  /// clock `now_hours`.
  ProvisionOutcome try_provision(const Deployment& d, double now_hours = 0.0);

  /// Attaches a fault model consulted by try_provision. Pass nullptr to
  /// detach; the model must outlive the simulator.
  void set_fault_model(FaultModel* model) noexcept { faults_ = model; }

  /// Deterministic mean setup time for `d` (no jitter).
  double expected_setup_hours(const Deployment& d) const noexcept;

  /// Number of clusters provisioned so far.
  std::uint64_t provisioned_count() const noexcept { return next_id_; }

 private:
  const DeploymentSpace* space_;
  SimulatorOptions options_;
  util::Rng rng_;
  FaultModel* faults_ = nullptr;
  std::uint64_t next_id_ = 0;
};

}  // namespace mlcd::cloud
