#include "cloud/catalog_io.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/csv.hpp"

namespace mlcd::cloud {
namespace {

const std::vector<std::string> kHeader = {
    "name",           "family",
    "device",         "vcpus",
    "gpus",           "mem_gib",
    "network_gbps",   "price_per_hour",
    "spot_price_per_hour", "spot_revocations_per_hour",
    "effective_tflops"};

double to_number(const std::string& text, const std::string& field) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  // Non-finite values ("nan", "inf", overflowing exponents) are rejected
  // here, not just downstream: some columns are cast to int, and casting
  // NaN to int is undefined behavior.
  if (text.empty() || end != text.c_str() + text.size() ||
      !std::isfinite(value)) {
    throw std::invalid_argument("catalog csv: bad numeric field " + field +
                                ": '" + text + "'");
  }
  return value;
}

}  // namespace

DeviceKind device_kind_from_name(const std::string& name) {
  for (DeviceKind kind :
       {DeviceKind::kCpuAvx2, DeviceKind::kCpuAvx512, DeviceKind::kCpuBurst,
        DeviceKind::kGpuK80, DeviceKind::kGpuV100, DeviceKind::kGpuM60}) {
    if (name == device_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("catalog csv: unknown device kind '" + name +
                              "'");
}

InstanceCatalog load_catalog_csv(const std::string& path) {
  const auto rows = util::read_csv(path);
  if (rows.empty()) {
    throw std::invalid_argument("catalog csv: empty file " + path);
  }
  if (rows.front() != kHeader) {
    throw std::invalid_argument(
        "catalog csv: unexpected header (see catalog_io.hpp for the "
        "expected columns)");
  }

  std::vector<InstanceSpec> specs;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != kHeader.size()) {
      throw std::invalid_argument("catalog csv: row " + std::to_string(i) +
                                  " has " + std::to_string(row.size()) +
                                  " columns, expected " +
                                  std::to_string(kHeader.size()));
    }
    InstanceSpec s;
    s.name = row[0];
    s.family = row[1];
    s.device = device_kind_from_name(row[2]);
    s.vcpus = static_cast<int>(to_number(row[3], "vcpus"));
    s.gpus = static_cast<int>(to_number(row[4], "gpus"));
    s.mem_gib = to_number(row[5], "mem_gib");
    s.network_gbps = to_number(row[6], "network_gbps");
    s.price_per_hour = to_number(row[7], "price_per_hour");
    s.spot_price_per_hour = to_number(row[8], "spot_price_per_hour");
    s.spot_revocations_per_hour =
        to_number(row[9], "spot_revocations_per_hour");
    s.effective_tflops = to_number(row[10], "effective_tflops");
    specs.push_back(std::move(s));
  }
  if (specs.empty()) {
    throw std::invalid_argument("catalog csv: no data rows in " + path);
  }
  return InstanceCatalog(std::move(specs));
}

void save_catalog_csv(const InstanceCatalog& catalog,
                      const std::string& path) {
  util::CsvWriter csv(path, kHeader);
  char buf[32];
  auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return std::string(buf);
  };
  for (const InstanceSpec& s : catalog.all()) {
    csv.add_row({s.name, s.family,
                 std::string(device_kind_name(s.device)),
                 std::to_string(s.vcpus), std::to_string(s.gpus),
                 num(s.mem_gib), num(s.network_gbps),
                 num(s.price_per_hour), num(s.spot_price_per_hour),
                 num(s.spot_revocations_per_hour),
                 num(s.effective_tflops)});
  }
}

}  // namespace mlcd::cloud
