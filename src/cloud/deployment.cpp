#include "cloud/deployment.hpp"

#include <stdexcept>

namespace mlcd::cloud {

DeploymentSpace::DeploymentSpace(const InstanceCatalog& catalog,
                                 int max_nodes, Market market)
    : catalog_(&catalog), market_(market) {
  if (max_nodes < 1) {
    throw std::invalid_argument("DeploymentSpace: max_nodes must be >= 1");
  }
  max_nodes_.assign(catalog.size(), max_nodes);
}

DeploymentSpace::DeploymentSpace(const InstanceCatalog& catalog,
                                 std::vector<int> max_nodes_per_type,
                                 Market market)
    : catalog_(&catalog),
      max_nodes_(std::move(max_nodes_per_type)),
      market_(market) {
  if (max_nodes_.size() != catalog.size()) {
    throw std::invalid_argument(
        "DeploymentSpace: per-type limits must match catalog size");
  }
  for (int m : max_nodes_) {
    if (m < 1) {
      throw std::invalid_argument(
          "DeploymentSpace: per-type limit must be >= 1");
    }
  }
}

std::size_t DeploymentSpace::type_count() const noexcept {
  return catalog_->size();
}

int DeploymentSpace::max_nodes(std::size_t type_index) const {
  if (type_index >= max_nodes_.size()) {
    throw std::out_of_range("DeploymentSpace::max_nodes: bad type index");
  }
  return max_nodes_[type_index];
}

std::size_t DeploymentSpace::size() const noexcept {
  std::size_t total = 0;
  for (int m : max_nodes_) total += static_cast<std::size_t>(m);
  return total;
}

bool DeploymentSpace::contains(const Deployment& d) const noexcept {
  return d.type_index < max_nodes_.size() && d.nodes >= 1 &&
         d.nodes <= max_nodes_[d.type_index];
}

std::vector<Deployment> DeploymentSpace::enumerate() const {
  std::vector<Deployment> out;
  out.reserve(size());
  for (std::size_t t = 0; t < max_nodes_.size(); ++t) {
    for (int n = 1; n <= max_nodes_[t]; ++n) {
      out.push_back(Deployment{t, n});
    }
  }
  return out;
}

std::vector<Deployment> DeploymentSpace::enumerate_grid(
    const std::vector<int>& node_grid) const {
  std::vector<Deployment> out;
  for (std::size_t t = 0; t < max_nodes_.size(); ++t) {
    for (int n : node_grid) {
      if (n >= 1 && n <= max_nodes_[t]) out.push_back(Deployment{t, n});
    }
  }
  return out;
}

double DeploymentSpace::hourly_price(const Deployment& d) const {
  if (!contains(d)) {
    throw std::invalid_argument("DeploymentSpace::hourly_price: out of space");
  }
  const InstanceSpec& spec = catalog_->at(d.type_index);
  double unit = spec.price_per_hour;
  if (market_ == Market::kSpot && spec.spot_price_per_hour > 0.0) {
    unit = spec.spot_price_per_hour;
  }
  return static_cast<double>(d.nodes) * unit;
}

double DeploymentSpace::restart_overhead_multiplier(
    const Deployment& d) const {
  if (!contains(d)) {
    throw std::invalid_argument(
        "DeploymentSpace::restart_overhead_multiplier: out of space");
  }
  if (market_ == Market::kOnDemand) return 1.0;
  // Spot training survives revocations by checkpointing. Three costs:
  // the steady-state overhead of writing checkpoints at all, and per
  // revocation a restart penalty (re-provision + re-warm) plus the
  // recompute of work lost since the last checkpoint (half an interval
  // in expectation).
  constexpr double kCheckpointWriteFraction = 0.005;
  constexpr double kRestartPenaltyHours = 0.2;
  constexpr double kCheckpointIntervalHours = 0.25;
  const InstanceSpec& spec = catalog_->at(d.type_index);
  const double revocations_per_hour =
      static_cast<double>(d.nodes) * spec.spot_revocations_per_hour;
  return (1.0 + kCheckpointWriteFraction) +
         revocations_per_hour *
             (kRestartPenaltyHours + 0.5 * kCheckpointIntervalHours);
}

std::string DeploymentSpace::describe(const Deployment& d) const {
  return std::to_string(d.nodes) + " x " + catalog_->at(d.type_index).name;
}

}  // namespace mlcd::cloud
