#include "cloud/fault_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mlcd::cloud {

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kLaunchFailure:
      return "launch-failure";
    case FaultKind::kSpotRevocation:
      return "spot-revocation";
    case FaultKind::kCapacityOutage:
      return "capacity-outage";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kProbeTimeout:
      return "probe-timeout";
  }
  return "unknown";
}

double RetryPolicy::backoff_hours_after(int failed_attempts,
                                        util::Rng& rng) const {
  if (failed_attempts <= 0) return 0.0;
  double delay =
      base_backoff_hours *
      std::pow(backoff_multiplier, static_cast<double>(failed_attempts - 1));
  if (backoff_jitter_sigma > 0.0) {
    delay = rng.lognormal_median(delay, backoff_jitter_sigma);
  }
  // Cap after jitter: max_backoff_hours is a hard bound, which is what
  // lets the protective reserve budget for the worst retry chain exactly.
  return std::min(delay, max_backoff_hours);
}

FaultModel::FaultModel(const InstanceCatalog& catalog, std::uint64_t seed,
                       FaultModelOptions options)
    : catalog_(&catalog),
      options_(std::move(options)),
      rng_(util::splitmix64(seed ^ 0x6fa7'10de'1c0f'a17bULL)),
      outages_(catalog.size()) {
  if (options_.launch_failure_per_node < 0.0 ||
      options_.launch_failure_per_node >= 1.0) {
    throw std::invalid_argument(
        "FaultModel: launch_failure_per_node must be in [0, 1)");
  }
  if (options_.spot_revocation_scale < 0.0 ||
      options_.outage_episodes_per_100h < 0.0 ||
      options_.straggler_rate < 0.0 || options_.straggler_rate > 1.0) {
    throw std::invalid_argument("FaultModel: negative hazard rate");
  }
  // Pre-schedule outage episodes per type from a forked stream, so outage
  // state is a pure function of (seed, type, clock) and never depends on
  // how many attempt() rolls happened first.
  if (options_.outage_episodes_per_100h > 0.0) {
    const double rate = options_.outage_episodes_per_100h / 100.0;
    for (std::size_t t = 0; t < catalog_->size(); ++t) {
      auto stream = rng_.fork(0x07'0000ULL + t);
      double clock = 0.0;
      while (true) {
        // Exponential inter-arrival, then exponential duration.
        clock += -std::log(1.0 - stream.uniform()) / rate;
        if (clock >= options_.outage_horizon_hours) break;
        const double duration = -std::log(1.0 - stream.uniform()) *
                                options_.outage_mean_hours;
        outages_[t].push_back({clock, clock + duration});
        clock += duration;
      }
    }
  }
  for (const auto& [type, episode] : options_.scheduled_outages) {
    if (type >= catalog_->size()) {
      throw std::invalid_argument(
          "FaultModel: scheduled outage for unknown type index");
    }
    outages_[type].push_back(episode);
  }
  for (auto& episodes : outages_) {
    std::sort(episodes.begin(), episodes.end(),
              [](const OutageEpisode& a, const OutageEpisode& b) {
                return a.start_hours < b.start_hours;
              });
  }
}

bool FaultModel::enabled(Market market) const noexcept {
  if (options_.launch_failure_per_node > 0.0) return true;
  if (market == Market::kSpot && options_.spot_revocation_scale > 0.0) {
    for (const auto& spec : catalog_->all()) {
      if (spec.spot_revocations_per_hour > 0.0) return true;
    }
  }
  if (options_.outage_episodes_per_100h > 0.0) return true;
  if (!options_.scheduled_outages.empty()) return true;
  if (options_.straggler_rate > 0.0) return true;
  return false;
}

bool FaultModel::in_outage(std::size_t type_index, double now_hours) const {
  return outage_remaining_hours(type_index, now_hours) > 0.0;
}

double FaultModel::outage_remaining_hours(std::size_t type_index,
                                          double now_hours) const {
  if (type_index >= outages_.size()) return 0.0;
  double remaining = 0.0;
  for (const auto& episode : outages_[type_index]) {
    if (episode.start_hours > now_hours) break;
    if (now_hours < episode.end_hours) {
      remaining = std::max(remaining, episode.end_hours - now_hours);
    }
  }
  return remaining;
}

double FaultModel::launch_failure_probability(int nodes) const noexcept {
  const double h = options_.launch_failure_per_node;
  if (h <= 0.0 || nodes <= 0) return 0.0;
  return 1.0 - std::pow(1.0 - h, static_cast<double>(nodes));
}

double FaultModel::revocation_probability(std::size_t type_index, int nodes,
                                          double window_hours) const {
  const double rate = catalog_->at(type_index).spot_revocations_per_hour *
                      options_.spot_revocation_scale;
  if (rate <= 0.0 || nodes <= 0 || window_hours <= 0.0) return 0.0;
  // Any of n independent Poisson revocation processes firing in the
  // window kills the synchronous probe.
  return 1.0 - std::exp(-static_cast<double>(nodes) * rate * window_hours);
}

AttemptOutcome FaultModel::attempt(const Deployment& d, Market market,
                                   double window_hours, double now_hours) {
  AttemptOutcome out;
  if (in_outage(d.type_index, now_hours)) {
    // No instance ever started: burns a little wall clock on API
    // retries, bills nothing.
    out.fault = FaultKind::kCapacityOutage;
    out.wall_fraction = options_.outage_wall_fraction;
    out.bill_fraction = 0.0;
    return out;
  }
  if (rng_.uniform() < launch_failure_probability(d.nodes)) {
    out.fault = FaultKind::kLaunchFailure;
    out.wall_fraction = options_.launch_failure_fraction;
    out.bill_fraction = options_.launch_failure_fraction;
    return out;
  }
  if (market == Market::kSpot &&
      rng_.uniform() <
          revocation_probability(d.type_index, d.nodes, window_hours)) {
    // Revocation point uniform in the window, floored so a revoked
    // attempt always shows up in the billing trail.
    const double point = std::max(options_.revocation_fraction_floor,
                                  rng_.uniform());
    out.fault = FaultKind::kSpotRevocation;
    out.wall_fraction = point;
    out.bill_fraction = point;
    return out;
  }
  if (options_.straggler_rate > 0.0 &&
      rng_.uniform() < options_.straggler_rate) {
    out.fault = FaultKind::kStraggler;
    out.slowdown = options_.straggler_slowdown;
  }
  return out;
}

double FaultModel::worst_failed_wall_fraction(Market market) const noexcept {
  double worst = 0.0;
  if (options_.launch_failure_per_node > 0.0) {
    worst = std::max(worst, options_.launch_failure_fraction);
  }
  if (market == Market::kSpot && options_.spot_revocation_scale > 0.0) {
    // A revocation can land arbitrarily late in the window.
    worst = std::max(worst, 1.0);
  }
  if (options_.outage_episodes_per_100h > 0.0 ||
      !options_.scheduled_outages.empty()) {
    worst = std::max(worst, options_.outage_wall_fraction);
  }
  return worst;
}

double FaultModel::worst_failed_bill_fraction(Market market) const noexcept {
  double worst = 0.0;
  if (options_.launch_failure_per_node > 0.0) {
    worst = std::max(worst, options_.launch_failure_fraction);
  }
  if (market == Market::kSpot && options_.spot_revocation_scale > 0.0) {
    worst = std::max(worst, 1.0);
  }
  // Capacity outages bill nothing.
  return worst;
}

}  // namespace mlcd::cloud
