// Billing accounting for simulated cloud usage.
//
// EC2 bills per-second with a 60-second minimum per instance launch
// (Linux on-demand since 2017); the meter reproduces that granularity so
// short profiling runs are charged realistically. Every charge is tagged
// so experiments can split profiling spend from training spend — the
// breakdown every figure in the paper's evaluation reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cloud/deployment.hpp"

namespace mlcd::cloud {

/// What a charge was for.
enum class UsageKind { kProfiling, kTraining };

/// One billed usage interval of a cluster.
struct UsageRecord {
  Deployment deployment;
  UsageKind kind = UsageKind::kProfiling;
  double hours = 0.0;        ///< wall-clock duration of the usage
  double billed_hours = 0.0; ///< after granularity rounding
  double cost = 0.0;         ///< dollars
  std::string note;
};

/// Accumulates usage records and exposes cost/time totals by kind.
class BillingMeter {
 public:
  /// `space` supplies prices. Billing granularity: seconds are rounded up
  /// to whole seconds with `minimum_seconds` minimum per usage.
  explicit BillingMeter(const DeploymentSpace& space,
                        double minimum_seconds = 60.0);

  /// Charges for running `d` for `hours`; returns the dollars charged.
  double charge(const Deployment& d, double hours, UsageKind kind,
                std::string note = {});

  double total_cost() const noexcept;
  double total_cost(UsageKind kind) const noexcept;

  /// Sum of wall-clock hours of all usages of a kind. (Usages of one kind
  /// are sequential in every searcher, so this is elapsed time.)
  double total_hours(UsageKind kind) const noexcept;

  const std::vector<UsageRecord>& records() const noexcept {
    return records_;
  }

  void reset() noexcept { records_.clear(); }

 private:
  const DeploymentSpace* space_;
  double minimum_seconds_;
  std::vector<UsageRecord> records_;
};

}  // namespace mlcd::cloud
