file(REMOVE_RECURSE
  "libmlcd_linalg.a"
)
