file(REMOVE_RECURSE
  "CMakeFiles/mlcd_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/mlcd_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/mlcd_linalg.dir/matrix.cpp.o"
  "CMakeFiles/mlcd_linalg.dir/matrix.cpp.o.d"
  "libmlcd_linalg.a"
  "libmlcd_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcd_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
