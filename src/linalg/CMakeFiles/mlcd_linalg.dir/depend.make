# Empty dependencies file for mlcd_linalg.
# This may be replaced when dependencies are built.
