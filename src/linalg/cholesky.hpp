// Cholesky factorization of symmetric positive-definite matrices with
// escalating diagonal jitter — the standard numerically robust route for
// Gaussian-process covariance matrices, which are PSD in exact arithmetic
// but often indefinite at machine precision when observations nearly
// coincide (e.g. two probes of the same deployment).
#pragma once

#include <cstddef>
#include <optional>

#include "linalg/matrix.hpp"

namespace mlcd::linalg {

/// Lower-triangular Cholesky factor L with A + jitter*I = L*L^T.
class CholeskyFactor {
 public:
  /// Factorizes `a` (must be square, symmetric). If the plain
  /// factorization fails, retries with jitter 1e-12 * mean(diag) escalated
  /// by 10x up to `max_jitter_scalings` times.
  ///
  /// Throws std::invalid_argument for non-square input and
  /// std::runtime_error when the matrix is not PD even at maximum jitter.
  explicit CholeskyFactor(const Matrix& a, int max_jitter_scalings = 10);

  /// The lower-triangular factor.
  const Matrix& lower() const noexcept { return l_; }

  /// The jitter actually added to the diagonal (0 when none was needed).
  double jitter() const noexcept { return jitter_; }

  std::size_t dim() const noexcept { return l_.rows(); }

  /// Solves (L L^T) x = b.
  Vector solve(const Vector& b) const;

  /// Solves L y = b (forward substitution).
  Vector solve_lower(const Vector& b) const;

  /// Solves L^T x = y (backward substitution).
  Vector solve_lower_transpose(const Vector& y) const;

  /// log det(A + jitter I) = 2 * sum_i log L_ii.
  double log_determinant() const;

  /// b^T A^{-1} b via the factor — the quadratic form in the GP marginal
  /// likelihood.
  double quadratic_form(const Vector& b) const;

  /// Extends the factorization of A to that of the bordered matrix
  ///   [ A    col ]
  ///   [ colᵀ diag]
  /// in O(n²) instead of a fresh O(n³) factorization — the incremental
  /// update a growing GP uses when one observation arrives.
  /// `col` has dim() entries. Throws std::invalid_argument on a size
  /// mismatch and std::runtime_error when the bordered matrix is not
  /// positive definite.
  void extend(const Vector& col, double diag);

 private:
  /// Attempts a plain factorization; returns std::nullopt when a
  /// non-positive pivot is hit.
  static std::optional<Matrix> try_factor(const Matrix& a);

  Matrix l_;
  double jitter_ = 0.0;
};

}  // namespace mlcd::linalg
