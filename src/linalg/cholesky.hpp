// Cholesky factorization of symmetric positive-definite matrices with
// escalating diagonal jitter — the standard numerically robust route for
// Gaussian-process covariance matrices, which are PSD in exact arithmetic
// but often indefinite at machine precision when observations nearly
// coincide (e.g. two probes of the same deployment).
#pragma once

#include <cstddef>
#include <optional>

#include "linalg/matrix.hpp"

namespace mlcd::linalg {

/// Lower-triangular Cholesky factor L with A + jitter*I = L*L^T.
class CholeskyFactor {
 public:
  /// Factorizes `a` (must be square, symmetric). If the plain
  /// factorization fails, retries with jitter 1e-12 * mean(diag) escalated
  /// by 10x up to `max_jitter_scalings` times.
  ///
  /// Throws std::invalid_argument for non-square input and
  /// std::runtime_error when the matrix is not PD even at maximum jitter.
  explicit CholeskyFactor(const Matrix& a, int max_jitter_scalings = 10);

  /// The lower-triangular factor.
  const Matrix& lower() const noexcept { return l_; }

  /// The jitter actually added to the diagonal (0 when none was needed).
  double jitter() const noexcept { return jitter_; }

  std::size_t dim() const noexcept { return l_.rows(); }

  /// Solves (L L^T) x = b.
  Vector solve(const Vector& b) const;

  /// Solves L y = b (forward substitution).
  Vector solve_lower(const Vector& b) const;

  /// Solves L^T x = y (backward substitution).
  Vector solve_lower_transpose(const Vector& y) const;

  /// log det(A + jitter I) = 2 * sum_i log L_ii.
  double log_determinant() const;

  /// b^T A^{-1} b via the factor — the quadratic form in the GP marginal
  /// likelihood.
  double quadratic_form(const Vector& b) const;

  /// Extends the factorization of A to that of the bordered matrix
  ///   [ A    col ]
  ///   [ colᵀ diag]
  /// in O(n²) instead of a fresh O(n³) factorization — the incremental
  /// update a growing GP uses when one observation arrives.
  /// `col` has dim() entries. Throws std::invalid_argument on a size
  /// mismatch and std::runtime_error when the bordered matrix is not
  /// positive definite.
  void extend(const Vector& col, double diag);

  /// Tolerance-checked extend: returns false (leaving the factor
  /// untouched) instead of throwing when the new pivot — the Schur
  /// complement diag - ||L⁻¹col||² — is non-positive, non-finite, or
  /// smaller than `min_pivot_ratio * diag`. Callers use the failure as
  /// the signal to fall back to a full refactorization with jitter.
  /// Still throws std::invalid_argument on a size mismatch.
  bool try_extend(const Vector& col, double diag,
                  double min_pivot_ratio = 0.0);

  /// Incremental forward substitution: given `partial` holding the first
  /// m entries of y = L⁻¹ b (0 <= m <= dim()), appends the remaining
  /// entries using rows m..dim()-1 of L and b[m..dim()-1]. Identical
  /// arithmetic to solve_lower, so a solution grown entry-by-entry across
  /// extend() calls is bit-identical to a fresh solve — the property the
  /// GP's cached candidate scans rely on. Throws std::invalid_argument
  /// when partial is longer than dim() or b is shorter than dim().
  void extend_solve_lower(Vector& partial, std::span<const double> b) const;

 private:
  /// Attempts a plain factorization; returns std::nullopt when a
  /// non-positive pivot is hit.
  static std::optional<Matrix> try_factor(const Matrix& a);

  Matrix l_;
  double jitter_ = 0.0;
};

}  // namespace mlcd::linalg
