#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mlcd::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return (*this)(r, c);
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("Matrix::row: index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row: index out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::operator*: shape mismatch");
  }
  Matrix out(rows_, other.cols_);
  // ikj loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  if (cols_ != v.size()) {
    throw std::invalid_argument("Matrix::operator*(Vector): shape mismatch");
  }
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    out[i] = dot(row(i), v);
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator+: shape mismatch");
  }
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator-: shape mismatch");
  }
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

void Matrix::add_to_diagonal(double value) {
  if (rows_ != cols_) {
    throw std::invalid_argument("add_to_diagonal: matrix is not square");
  }
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += value;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: size mismatch");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> v) { return std::sqrt(dot(v, v)); }

Vector subtract(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("subtract: size mismatch");
  }
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("add: size mismatch");
  }
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector scale(std::span<const double> v, double s) {
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
  return out;
}

}  // namespace mlcd::linalg
