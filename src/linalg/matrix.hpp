// Dense row-major matrix/vector types sized for Gaussian-process work.
//
// GP regression over a deployment search needs kernels on at most a few
// hundred observations, so an unblocked O(n^3) dense implementation is the
// right tool: simple, cache-friendly at this scale, and dependency-free.
// All dimension mismatches throw std::invalid_argument — a GP fed
// inconsistent shapes is a programming error we want loudly.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace mlcd::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// Construction from nested initializer lists; all rows must have equal
  /// length. Example: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws std::out_of_range).
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  /// Raw storage (row-major).
  std::span<const double> data() const noexcept { return data_; }

  /// n x n identity.
  static Matrix identity(std::size_t n);

  Matrix transposed() const;

  /// this * other; dimensions must agree.
  Matrix operator*(const Matrix& other) const;

  /// this * v.
  Vector operator*(const Vector& v) const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;

  /// Adds `value` to every diagonal entry (square matrices only).
  void add_to_diagonal(double value);

  /// Max |a_ij - b_ij|; shapes must match.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; sizes must match.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> v);

/// a - b elementwise; sizes must match.
Vector subtract(std::span<const double> a, std::span<const double> b);

/// a + b elementwise; sizes must match.
Vector add(std::span<const double> a, std::span<const double> b);

/// v scaled by s.
Vector scale(std::span<const double> v, double s);

}  // namespace mlcd::linalg
