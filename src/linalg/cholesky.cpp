#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

#include "util/logging.hpp"

namespace mlcd::linalg {

CholeskyFactor::CholeskyFactor(const Matrix& a, int max_jitter_scalings) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("CholeskyFactor: matrix is not square");
  }
  if (a.rows() == 0) {
    throw std::invalid_argument("CholeskyFactor: empty matrix");
  }

  if (auto l = try_factor(a)) {
    l_ = std::move(*l);
    return;
  }

  double mean_diag = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) mean_diag += a(i, i);
  mean_diag /= static_cast<double>(a.rows());
  double jitter = 1e-12 * std::max(mean_diag, 1.0);

  for (int attempt = 0; attempt < max_jitter_scalings; ++attempt) {
    Matrix jittered = a;
    jittered.add_to_diagonal(jitter);
    if (auto l = try_factor(jittered)) {
      MLCD_LOG(kDebug, "linalg")
          << "Cholesky succeeded with jitter " << jitter;
      l_ = std::move(*l);
      jitter_ = jitter;
      return;
    }
    jitter *= 10.0;
  }
  throw std::runtime_error(
      "CholeskyFactor: matrix not positive definite even with jitter");
}

std::optional<Matrix> CholeskyFactor::try_factor(const Matrix& a) {
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

Vector CholeskyFactor::solve(const Vector& b) const {
  return solve_lower_transpose(solve_lower(b));
}

Vector CholeskyFactor::solve_lower(const Vector& b) const {
  const std::size_t n = dim();
  if (b.size() != n) {
    throw std::invalid_argument("CholeskyFactor::solve_lower: size mismatch");
  }
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  return y;
}

Vector CholeskyFactor::solve_lower_transpose(const Vector& y) const {
  const std::size_t n = dim();
  if (y.size() != n) {
    throw std::invalid_argument(
        "CholeskyFactor::solve_lower_transpose: size mismatch");
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

double CholeskyFactor::log_determinant() const {
  double ld = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) ld += std::log(l_(i, i));
  return 2.0 * ld;
}

double CholeskyFactor::quadratic_form(const Vector& b) const {
  const Vector y = solve_lower(b);
  return dot(y, y);
}

void CholeskyFactor::extend(const Vector& col, double diag) {
  if (!try_extend(col, diag)) {
    throw std::runtime_error(
        "CholeskyFactor::extend: bordered matrix not positive definite");
  }
}

bool CholeskyFactor::try_extend(const Vector& col, double diag,
                                double min_pivot_ratio) {
  const std::size_t n = dim();
  if (col.size() != n) {
    throw std::invalid_argument("CholeskyFactor::extend: size mismatch");
  }
  // New bottom row of L: L row = solve(L l = col); corner = sqrt of the
  // Schur complement. The pivot subtracts the squares sequentially —
  // the same order try_factor uses — so the grown factor is bit-identical
  // to a fresh factorization of the bordered matrix.
  const Vector l_row = solve_lower(col);
  double schur = diag;
  for (const double v : l_row) schur -= v * v;
  if (!(schur > 0.0) || !std::isfinite(schur) ||
      schur < min_pivot_ratio * diag) {
    return false;
  }
  Matrix grown(n + 1, n + 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c <= r; ++c) grown(r, c) = l_(r, c);
  }
  for (std::size_t c = 0; c < n; ++c) grown(n, c) = l_row[c];
  grown(n, n) = std::sqrt(schur);
  l_ = std::move(grown);
  return true;
}

void CholeskyFactor::extend_solve_lower(Vector& partial,
                                        std::span<const double> b) const {
  const std::size_t n = dim();
  if (partial.size() > n || b.size() < n) {
    throw std::invalid_argument(
        "CholeskyFactor::extend_solve_lower: size mismatch");
  }
  for (std::size_t i = partial.size(); i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * partial[k];
    partial.push_back(s / l_(i, i));
  }
}

}  // namespace mlcd::linalg
