// Replacement global operator new/delete: every allocation bumps the
// process-wide counters in obs/resource.hpp.
//
// This translation unit is NOT part of mlcd_obs — it ships as the
// `mlcd_obs_alloc` interface library, which compiles it directly into
// each binary that opts into allocation accounting (every bench target,
// the obs tests). Replacing the global operators is the one mechanism
// that sees every allocation in the process — STL containers, strings,
// closures — without touching a single call site, and a pair of relaxed
// fetch_adds is cheap enough to leave on for whole bench runs.
//
// Rules honored here:
//   * the throwing forms loop over std::get_new_handler() before
//     throwing bad_alloc, as the standard requires;
//   * size 0 allocates 1 byte so distinct objects get distinct pointers;
//   * aligned forms round the size up to the alignment for
//     std::aligned_alloc, and every form frees with std::free (valid
//     for glibc, which backs both malloc and aligned_alloc with the
//     same arena);
//   * counting uses memory_order_relaxed — totals are exact (atomic
//     RMW), only cross-thread ordering is unspecified, which a monotone
//     counter does not need. ASan/TSan still interpose malloc/free
//     underneath, so sanitized builds keep their checking.
#include <cstdlib>
#include <new>

#include "obs/resource.hpp"

namespace {

// Flags the hook as linked before main() so registries know the
// allocation series is real (and not a pair of frozen zeros).
const bool kHookRegistered = [] {
  mlcd::obs::detail::alloc_storage().linked.store(
      true, std::memory_order_relaxed);
  return true;
}();

void* alloc_or_handle(std::size_t size) {
  mlcd::obs::detail::note_alloc(size);
  if (size == 0) size = 1;
  for (;;) {
    if (void* p = std::malloc(size)) return p;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* aligned_alloc_or_handle(std::size_t size, std::size_t alignment) {
  mlcd::obs::detail::note_alloc(size);
  if (size == 0) size = 1;
  // std::aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  for (;;) {
    if (void* p = std::aligned_alloc(alignment, rounded)) return p;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

void* operator new(std::size_t size) { return alloc_or_handle(size); }
void* operator new[](std::size_t size) { return alloc_or_handle(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  mlcd::obs::detail::note_alloc(size);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  mlcd::obs::detail::note_alloc(size);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  return aligned_alloc_or_handle(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return aligned_alloc_or_handle(size, static_cast<std::size_t>(alignment));
}
void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  mlcd::obs::detail::note_alloc(size);
  const std::size_t align = static_cast<std::size_t>(alignment);
  const std::size_t wanted = size == 0 ? 1 : size;
  return std::aligned_alloc(align, (wanted + align - 1) / align * align);
}
void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t& tag) noexcept {
  return operator new(size, alignment, tag);
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(ptr);
}
