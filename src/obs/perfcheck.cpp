#include "obs/perfcheck.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/gate_metrics.hpp"
#include "util/json.hpp"

namespace mlcd::obs {

namespace {

constexpr double kZeroEps = 1e-12;

/// Normalized value of `meta`'s series inside `record`, using the
/// calibration series from the *same* record so machine speed cancels.
/// Returns false (with `why` set) when the record lacks the metric or a
/// usable calibration value.
bool normalized_value(const HistoryRecord& record, const MetricSample& meta,
                      double* out, std::string* why) {
  const MetricSample* sample = record.find(meta.name);
  if (sample == nullptr) {
    if (why) *why = "metric absent from record " + record.run_id;
    return false;
  }
  double value = sample->value();
  if (!meta.normalize_by.empty()) {
    const MetricSample* cal = record.find(meta.normalize_by);
    if (cal == nullptr) {
      if (why) {
        *why = "calibration metric '" + meta.normalize_by +
               "' absent from record " + record.run_id;
      }
      return false;
    }
    const double cal_value = cal->value();
    if (!(cal_value > 0.0)) {
      if (why) {
        *why = "calibration metric '" + meta.normalize_by +
               "' is non-positive in record " + record.run_id;
      }
      return false;
    }
    value = meta.normalize_op == NormalizeOp::kDivide ? value / cal_value
                                                      : value * cal_value;
  }
  *out = value;
  return true;
}

/// Signed relative movement in the metric's bad direction; positive =
/// regression. A zero baseline yields 0 on no movement/improvement and
/// +inf on any regression (relative change is undefined there).
double signed_change(const MetricSample& meta, double baseline,
                     double latest) {
  const double raw = latest - baseline;
  const bool regressed = meta.lower_is_better ? raw > kZeroEps
                                              : raw < -kZeroEps;
  if (std::abs(baseline) < kZeroEps) {
    return regressed ? std::numeric_limits<double>::infinity() : 0.0;
  }
  const double rel = raw / std::abs(baseline);
  return meta.lower_is_better ? rel : -rel;
}

std::string percent(double fraction) {
  if (std::isinf(fraction)) return fraction > 0 ? "+inf%" : "-inf%";
  std::ostringstream out;
  out << std::showpos << std::fixed << std::setprecision(1)
      << fraction * 100.0 << "%";
  return out.str();
}

std::string compact(double value) {
  std::ostringstream out;
  out << std::setprecision(6) << value;
  return out.str();
}

}  // namespace

const char* verdict_status_name(VerdictStatus status) {
  switch (status) {
    case VerdictStatus::kOk: return "ok";
    case VerdictStatus::kAlert: return "ALERT";
    case VerdictStatus::kMissing: return "MISSING";
    case VerdictStatus::kFirstRun: return "first-run";
    case VerdictStatus::kSkipped: return "skipped";
    case VerdictStatus::kInfo: return "info";
  }
  return "?";
}

std::vector<MetricVerdict> check_suite(
    const std::vector<HistoryRecord>& records,
    const PerfcheckOptions& options) {
  std::vector<MetricVerdict> verdicts;
  if (records.empty()) return verdicts;
  if (options.window < 1) {
    throw std::invalid_argument("perfcheck: window must be >= 1");
  }

  const HistoryRecord& latest = records.back();
  const std::size_t first_prior =
      records.size() - 1 >= static_cast<std::size_t>(options.window)
          ? records.size() - 1 - static_cast<std::size_t>(options.window)
          : 0;
  std::vector<const HistoryRecord*> priors;
  for (std::size_t i = first_prior; i + 1 < records.size(); ++i) {
    priors.push_back(&records[i]);
  }
  const int hardware_threads = options.hardware_threads > 0
                                   ? options.hardware_threads
                                   : latest.hardware_threads;

  for (const MetricSample& meta : latest.metrics) {
    MetricVerdict v;
    v.suite = latest.suite;
    v.name = meta.name;
    v.unit = meta.unit;
    if (!meta.should_alert) {
      v.status = VerdictStatus::kInfo;
      v.detail = meta.note;
      double value = 0.0;
      std::string why;
      if (normalized_value(latest, meta, &value, &why)) v.latest = value;
      verdicts.push_back(std::move(v));
      continue;
    }
    if (meta.min_threads > 0 && hardware_threads < meta.min_threads) {
      v.status = VerdictStatus::kSkipped;
      v.detail = "needs >= " + std::to_string(meta.min_threads) +
                 " hardware threads, machine has " +
                 std::to_string(hardware_threads);
      verdicts.push_back(std::move(v));
      continue;
    }

    double latest_value = 0.0;
    std::string why;
    if (!normalized_value(latest, meta, &latest_value, &why)) {
      v.status = VerdictStatus::kSkipped;
      v.detail = why;
      verdicts.push_back(std::move(v));
      continue;
    }

    // Absolute floor (ceiling for lower_is_better): a violated contract
    // alerts regardless of the rolling baseline — including on the very
    // first committed record, which the relative gate cannot judge.
    // A value exactly at the floor passes (strict-violation semantics,
    // matching the relative gate's strictly-greater rule).
    if (meta.has_floor()) {
      const bool violated = meta.lower_is_better
                                ? latest_value > meta.alert_floor
                                : latest_value < meta.alert_floor;
      if (violated) {
        v.status = VerdictStatus::kAlert;
        v.latest = latest_value;
        v.baseline = meta.alert_floor;
        v.change = signed_change(meta, meta.alert_floor, latest_value);
        v.detail = "latest " + compact(latest_value) + " violates absolute " +
                   (meta.lower_is_better ? "ceiling " : "floor ") +
                   compact(meta.alert_floor);
        if (!meta.note.empty()) v.detail += " — " + meta.note;
        verdicts.push_back(std::move(v));
        continue;
      }
    }

    std::vector<double> baseline_values;
    for (const HistoryRecord* prior : priors) {
      // Baselines from machines too small for this metric would mix
      // serial and parallel numbers into one series.
      if (meta.min_threads > 0 &&
          prior->hardware_threads < meta.min_threads) {
        continue;
      }
      double value = 0.0;
      if (normalized_value(*prior, meta, &value, nullptr)) {
        baseline_values.push_back(value);
      }
    }
    if (baseline_values.empty()) {
      v.status = VerdictStatus::kFirstRun;
      v.latest = latest_value;
      v.detail = "no comparable baseline record yet";
      verdicts.push_back(std::move(v));
      continue;
    }

    const double baseline = median(baseline_values);
    std::vector<double> deviations;
    deviations.reserve(baseline_values.size());
    for (const double b : baseline_values) {
      deviations.push_back(std::abs(b - baseline));
    }
    const double mad = median(deviations);
    const double rel_noise =
        std::abs(baseline) > kZeroEps ? mad / std::abs(baseline) : 0.0;

    // The declared contract can only be widened by observed noise,
    // never narrowed: a jittery metric stops paging, a steady one keeps
    // its declared sensitivity.
    double allowed = std::max(meta.alert_threshold,
                              options.noise_multiplier * rel_noise);
    allowed = std::max(allowed, options.min_noise);

    v.baseline = baseline;
    v.latest = latest_value;
    v.change = signed_change(meta, baseline, latest_value);
    v.allowed = allowed;
    // Strictly greater: a movement exactly at the window passes.
    v.status = v.change > allowed ? VerdictStatus::kAlert
                                  : VerdictStatus::kOk;
    if (v.status == VerdictStatus::kAlert) {
      v.detail = "regressed " + percent(v.change) + " vs rolling median " +
                 compact(baseline) + " (allowed " + percent(allowed) + ")";
      if (!meta.note.empty()) v.detail += " — " + meta.note;
    }
    verdicts.push_back(std::move(v));
  }

  // Alerting metrics the baseline knows but the latest run dropped: a
  // silently vanished series must fail as loudly as a regressed one.
  std::set<std::string> reported;
  for (const MetricSample& meta : latest.metrics) reported.insert(meta.name);
  std::set<std::string> missing_seen;
  for (auto it = priors.rbegin(); it != priors.rend(); ++it) {
    for (const MetricSample& meta : (*it)->metrics) {
      if (reported.count(meta.name) || missing_seen.count(meta.name)) {
        continue;
      }
      missing_seen.insert(meta.name);
      if (!meta.should_alert) continue;
      if (meta.min_threads > 0 && hardware_threads < meta.min_threads) {
        continue;  // this machine could not have produced it
      }
      MetricVerdict v;
      v.suite = latest.suite;
      v.name = meta.name;
      v.unit = meta.unit;
      v.status = VerdictStatus::kMissing;
      v.detail = "present in baseline (run " + (*it)->run_id +
                 "), absent from latest run " + latest.run_id;
      verdicts.push_back(std::move(v));
    }
  }
  return verdicts;
}

int PerfcheckReport::alert_count() const {
  int count = 0;
  for (const MetricVerdict& v : verdicts) {
    if (v.status == VerdictStatus::kAlert ||
        v.status == VerdictStatus::kMissing) {
      ++count;
    }
  }
  return count;
}

std::string PerfcheckReport::render(bool verbose) const {
  std::ostringstream out;
  const int alerts = alert_count();
  out << "perfcheck: " << suites.size() << " suite(s), " << verdicts.size()
      << " metric(s), " << alerts << " alert(s)\n";

  const auto row = [&out](const MetricVerdict& v) {
    out << "  " << std::left << std::setw(11)
        << verdict_status_name(v.status)
        << std::setw(26) << v.suite << std::setw(38) << v.name;
    if (v.status == VerdictStatus::kOk || v.status == VerdictStatus::kAlert) {
      out << std::setw(14) << compact(v.baseline) << std::setw(14)
          << compact(v.latest) << std::setw(9) << percent(v.change)
          << " (allowed " << percent(v.allowed) << ")";
    } else if (!v.detail.empty()) {
      out << v.detail;
    }
    out << "\n";
  };

  if (alerts > 0) {
    out << "\nregressions:\n";
    out << "  " << std::left << std::setw(11) << "status" << std::setw(26)
        << "suite" << std::setw(38) << "metric" << std::setw(14)
        << "baseline" << std::setw(14) << "latest" << "change\n";
    for (const MetricVerdict& v : verdicts) {
      if (v.status == VerdictStatus::kAlert) {
        row(v);
        if (!v.detail.empty()) out << "           " << v.detail << "\n";
      }
    }
    for (const MetricVerdict& v : verdicts) {
      if (v.status == VerdictStatus::kMissing) row(v);
    }
  }
  if (verbose) {
    out << "\nall metrics:\n";
    for (const MetricVerdict& v : verdicts) row(v);
  }

  // Per-suite tallies keep the quiet path readable: one line per suite.
  for (const std::string& suite : suites) {
    int ok = 0, alert = 0, info = 0, skipped = 0, first = 0, missing = 0;
    for (const MetricVerdict& v : verdicts) {
      if (v.suite != suite) continue;
      switch (v.status) {
        case VerdictStatus::kOk: ++ok; break;
        case VerdictStatus::kAlert: ++alert; break;
        case VerdictStatus::kMissing: ++missing; break;
        case VerdictStatus::kFirstRun: ++first; break;
        case VerdictStatus::kSkipped: ++skipped; break;
        case VerdictStatus::kInfo: ++info; break;
      }
    }
    out << "  " << std::left << std::setw(26) << suite << " ok=" << ok
        << " alert=" << alert << " missing=" << missing
        << " first-run=" << first << " skipped=" << skipped
        << " info=" << info << "\n";
  }
  out << (alerts > 0 ? "RESULT: ALERT" : "RESULT: OK") << "\n";
  return out.str();
}

PerfcheckReport run_perfcheck(const PerfcheckOptions& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  if (!options.suite_filter.empty()) {
    paths.push_back(history_path(options.history_dir, options.suite_filter));
  } else {
    if (!fs::is_directory(options.history_dir)) {
      throw std::runtime_error("perfcheck: history directory '" +
                               options.history_dir + "' does not exist");
    }
    for (const fs::directory_entry& entry :
         fs::directory_iterator(options.history_dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".jsonl") {
        paths.push_back(entry.path().string());
      }
    }
    std::sort(paths.begin(), paths.end());
  }

  PerfcheckReport report;
  for (const std::string& path : paths) {
    const std::vector<HistoryRecord> records = load_history_file(path);
    if (records.empty()) {
      if (!options.suite_filter.empty()) {
        throw std::runtime_error("perfcheck: no history at '" + path + "'");
      }
      continue;
    }
    report.suites.push_back(records.back().suite);
    std::vector<MetricVerdict> verdicts = check_suite(records, options);
    for (MetricVerdict& v : verdicts) {
      report.verdicts.push_back(std::move(v));
    }
  }
  if (report.suites.empty()) {
    throw std::runtime_error("perfcheck: no suite history found under '" +
                             options.history_dir + "'");
  }
  return report;
}

HistoryRecord convert_legacy_snapshot(const util::JsonValue& snapshot,
                                      const std::string& run_id) {
  if (!snapshot.is_object() || !snapshot.contains("bench")) {
    throw std::invalid_argument(
        "legacy snapshot: expected an object with a 'bench' key");
  }
  HistoryRecord record;
  record.suite = snapshot.at("bench").as_string();
  record.run_id = run_id;
  if (snapshot.contains("hardware_threads")) {
    record.hardware_threads =
        static_cast<int>(snapshot.at("hardware_threads").as_number());
  }

  bool found = false;
  if (snapshot.contains("metrics")) {
    found = true;
    for (const auto& [name, value] : snapshot.at("metrics").as_object()) {
      if (!value.is_number()) continue;
      record.metrics.push_back(
          gate_metric(record.suite, name, value.as_number()));
    }
  }
  if (snapshot.contains("scenarios")) {
    found = true;
    for (const util::JsonValue& scenario :
         snapshot.at("scenarios").as_array()) {
      const std::string prefix = scenario.at("scenario").as_string();
      for (const auto& [key, value] : scenario.as_object()) {
        if (key == "scenario" || !value.is_number()) continue;
        record.metrics.push_back(
            gate_metric(record.suite, prefix + "." + key,
                        value.as_number()));
      }
    }
  }
  if (!found) {
    throw std::invalid_argument("legacy snapshot '" + record.suite +
                                "': no 'metrics' or 'scenarios' section");
  }
  return record;
}

}  // namespace mlcd::obs
