// MetricRegistry: the single funnel every bench emits through.
//
// A registry collects one suite's MetricSamples over a run, attaches the
// process-wide resource series (wall time, peak RSS, allocation counts —
// the paired memory series every latency series gains for free), and
// snapshots into a versioned HistoryRecord for the committed
// time-series. Bench binaries get theirs via bench::metrics(suite) in
// bench/common.hpp, which also handles the end-of-run write-out.
#pragma once

#include <string>
#include <vector>

#include "obs/history.hpp"
#include "obs/metric.hpp"
#include "obs/resource.hpp"

namespace mlcd::obs {

class MetricRegistry {
 public:
  explicit MetricRegistry(std::string suite);

  const std::string& suite() const noexcept { return suite_; }

  /// Registers a fully-specified sample. Throws std::logic_error on an
  /// empty or duplicate name — two call sites silently feeding one
  /// series is a bug, not a merge.
  MetricSample& add(MetricSample sample);

  /// Get-or-create convenience: first call declares the metric, later
  /// calls with the same name append `value` as another replicate
  /// (unit/direction must match the declaration).
  MetricSample& record(const std::string& name, const std::string& unit,
                       bool lower_is_better, double value);

  MetricSample* find(const std::string& name);
  const std::vector<MetricSample>& samples() const noexcept {
    return samples_;
  }

  /// Appends the process resource series measured by `probe`:
  ///   process_wall_seconds  (informational — machine-dependent)
  ///   peak_rss_mb           (alerting, wide threshold)
  ///   alloc_count, alloc_mb (alerting; only when the allocation hook
  ///                          is linked — absent series are honest,
  ///                          frozen zeros are not)
  void record_resources(const ResourceProbe& probe);

  /// The run's history record (hardware_threads filled in).
  HistoryRecord snapshot(const std::string& run_id) const;

 private:
  std::string suite_;
  std::vector<MetricSample> samples_;
};

}  // namespace mlcd::obs
