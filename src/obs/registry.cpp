#include "obs/registry.hpp"

#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"

namespace mlcd::obs {

MetricRegistry::MetricRegistry(std::string suite)
    : suite_(std::move(suite)) {
  if (suite_.empty()) {
    throw std::logic_error("MetricRegistry: suite name must not be empty");
  }
}

MetricSample& MetricRegistry::add(MetricSample sample) {
  if (sample.name.empty()) {
    throw std::logic_error("MetricRegistry: metric name must not be empty");
  }
  if (find(sample.name) != nullptr) {
    throw std::logic_error("MetricRegistry: duplicate metric '" +
                           sample.name + "' in suite '" + suite_ + "'");
  }
  samples_.push_back(std::move(sample));
  return samples_.back();
}

MetricSample& MetricRegistry::record(const std::string& name,
                                     const std::string& unit,
                                     bool lower_is_better, double value) {
  if (MetricSample* existing = find(name)) {
    if (existing->unit != unit ||
        existing->lower_is_better != lower_is_better) {
      throw std::logic_error("MetricRegistry: metric '" + name +
                             "' re-recorded with a different unit or "
                             "direction");
    }
    existing->values.push_back(value);
    return *existing;
  }
  MetricSample sample;
  sample.name = name;
  sample.unit = unit;
  sample.lower_is_better = lower_is_better;
  sample.values.push_back(value);
  return add(std::move(sample));
}

MetricSample* MetricRegistry::find(const std::string& name) {
  for (MetricSample& sample : samples_) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

void MetricRegistry::record_resources(const ResourceProbe& probe) {
  {
    MetricSample wall;
    wall.name = "process_wall_seconds";
    wall.unit = "seconds";
    wall.lower_is_better = true;
    wall.values.push_back(probe.wall_seconds());
    // Absolute wall time of the whole binary is machine-dependent and
    // uncalibrated; tracked for trend reading, never gated.
    wall.should_alert = false;
    add(std::move(wall));
  }
  {
    MetricSample rss;
    rss.name = "peak_rss_mb";
    rss.unit = "mb";
    rss.lower_is_better = true;
    rss.values.push_back(static_cast<double>(peak_rss_bytes()) / (1 << 20));
    // RSS is comparable across runs of the same workload but jitters
    // with allocator arenas and libc versions: a wide window.
    rss.alert_threshold = 0.50;
    add(std::move(rss));
  }
  if (alloc_hook_active()) {
    const AllocCounters delta = probe.alloc_delta();
    MetricSample count;
    count.name = "alloc_count";
    count.unit = "count";
    count.lower_is_better = true;
    count.values.push_back(static_cast<double>(delta.allocations));
    count.alert_threshold = 0.35;
    add(std::move(count));

    MetricSample bytes;
    bytes.name = "alloc_mb";
    bytes.unit = "mb";
    bytes.lower_is_better = true;
    bytes.values.push_back(static_cast<double>(delta.bytes) / (1 << 20));
    bytes.alert_threshold = 0.35;
    add(std::move(bytes));
  }
}

HistoryRecord MetricRegistry::snapshot(const std::string& run_id) const {
  HistoryRecord record;
  record.suite = suite_;
  record.run_id = run_id;
  record.hardware_threads = util::ThreadPool::hardware_threads();
  record.metrics = samples_;
  return record;
}

}  // namespace mlcd::obs
