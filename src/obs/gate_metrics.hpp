// Metadata catalog for the gate benches' metric series.
//
// One table declares unit, direction, alerting contract, and
// normalization rule for every metric the PR-2..PR-8 gate benches
// publish, so the live emitters (bench_perf_gate,
// bench_service_throughput) and the one-shot legacy snapshot converter
// (perfcheck.hpp) stamp identical schemas — the migrated BENCH_PR*.json
// history and the records fresh runs append must form one comparable
// time-series.
#pragma once

#include <string>

#include "obs/metric.hpp"

namespace mlcd::obs {

/// A fully-annotated sample for `name` in `suite` carrying one
/// replicate `value`. Known names get the catalog's metadata; unknown
/// names default to an informational (never-alerting) series, so a
/// bench can always publish a new number before the catalog learns its
/// contract. Dotted names ("budget.probe_cost_ratio") match on the
/// final segment.
MetricSample gate_metric(const std::string& suite, const std::string& name,
                         double value);

}  // namespace mlcd::obs
