#include "obs/metric.hpp"

#include <algorithm>
#include <limits>

namespace mlcd::obs {

const char* normalize_op_name(NormalizeOp op) {
  return op == NormalizeOp::kDivide ? "divide" : "multiply";
}

double median(std::vector<double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

double MetricSample::value() const { return median(values); }

}  // namespace mlcd::obs
