// Process-wide resource probes: wall time, peak RSS, and a thread-safe
// allocation counter.
//
// Memory was entirely unmeasured before the observatory; these probes
// are how every latency series gains a paired memory series for free
// (MetricRegistry::record_resources). Peak RSS comes from
// getrusage(RUSAGE_SELF); allocation counts come from replacement
// global operator new/delete (alloc_hook.cpp) bumping relaxed atomics —
// cheap enough to stay on for whole bench binaries, exact enough to be
// deterministic for deterministic workloads.
//
// The hook is opt-in per binary: link `mlcd_obs_alloc` (an interface
// library that compiles alloc_hook.cpp into the consumer) and
// alloc_hook_active() turns true. Binaries that skip it still build and
// run; alloc_counters() just reports zeros and the registry omits the
// allocation series rather than publishing fake ones.
#pragma once

#include <atomic>
#include <cstdint>

namespace mlcd::obs {

/// Cumulative allocation totals since process start.
struct AllocCounters {
  std::uint64_t allocations = 0;  ///< operator new calls
  std::uint64_t bytes = 0;        ///< sum of requested sizes
};

/// Current process-wide totals. Zeros when the hook is not linked.
AllocCounters alloc_counters();

/// True when alloc_hook.cpp is compiled into this binary (so
/// alloc_counters() actually counts).
bool alloc_hook_active();

/// Peak resident set size of this process, bytes (getrusage ru_maxrss).
/// 0 when the platform cannot report it.
std::uint64_t peak_rss_bytes();

/// Snapshot probe: construct at the start of the region of interest,
/// read deltas at the end. Wall time uses the steady clock; simulated
/// time inside experiments never flows through here (see
/// util/stopwatch.hpp for the same rule).
class ResourceProbe {
 public:
  ResourceProbe();

  double wall_seconds() const;
  AllocCounters alloc_delta() const;

 private:
  std::uint64_t start_nanos_ = 0;
  AllocCounters start_;
};

namespace detail {

/// Storage the replacement operator new/delete increments. Defined in
/// resource.cpp so it exists in every binary; alloc_hook.cpp flips
/// `linked` from a namespace-scope initializer when compiled in.
struct AllocStorage {
  std::atomic<std::uint64_t> allocations{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<bool> linked{false};
};

AllocStorage& alloc_storage() noexcept;

inline void note_alloc(std::size_t size) noexcept {
  AllocStorage& s = alloc_storage();
  s.allocations.fetch_add(1, std::memory_order_relaxed);
  s.bytes.fetch_add(static_cast<std::uint64_t>(size),
                    std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace mlcd::obs
