// The committed time-series: one JSONL file per suite under
// bench_out/history/, one record per run keyed by PR/commit.
//
// A record is the versioned JSON serialization of one run's
// MetricSamples plus the context the checker needs (suite, run id,
// hardware threads). Records append — history is write-once per run —
// and perfcheck reads the last record as "latest" and the window of
// records before it as the rolling baseline. The files are committed to
// the repository, so every PR's numbers land in review next to the code
// that produced them.
#pragma once

#include <string>
#include <vector>

#include "obs/metric.hpp"

namespace mlcd::util {
class JsonValue;
}

namespace mlcd::obs {

/// One run's worth of metrics for one suite.
struct HistoryRecord {
  int schema_version = kObsSchemaVersion;
  std::string suite;    ///< time-series key, e.g. "pr2-fastpath-gate"
  std::string run_id;   ///< PR/commit tag, e.g. "pr9" or a git SHA
  int hardware_threads = 0;
  std::vector<MetricSample> metrics;

  /// Compact single-line JSON (one history line).
  std::string to_json() const;

  /// Inverse of to_json(). Throws std::invalid_argument on a missing or
  /// ill-typed field, or a record from a newer schema.
  static HistoryRecord from_json(const util::JsonValue& value);

  const MetricSample* find(const std::string& name) const;
};

/// `dir`/`suite`.jsonl with the suite sanitized to a safe filename.
std::string history_path(const std::string& dir, const std::string& suite);

/// Parses every line of a history file, in file order. Throws
/// std::invalid_argument naming the line on malformed content; a
/// missing file yields an empty vector (first-ever run).
std::vector<HistoryRecord> load_history_file(const std::string& path);

/// Appends one record (creating the file and parent directories on
/// first use). Throws std::runtime_error when the filesystem refuses.
void append_history(const std::string& path, const HistoryRecord& record);

}  // namespace mlcd::obs
