#include "obs/gate_metrics.hpp"

namespace mlcd::obs {

namespace {

// Durability-gate caveat (PR 8): the workload's probes complete in
// microseconds, so fsync cost dominates and the per-probe overhead
// ratio is honest but enormous relative to real MLaaS probes that run
// for minutes. Gated with a deliberately wide window so only an
// order-of-magnitude movement (a second fsync per record, a lost batch
// of buffering) alerts.
constexpr const char* kDurabilityNote =
    "fsync-per-record over microsecond-scale probes; real probes run "
    "minutes, so this ratio is a stress ceiling, not a deployment cost. "
    "Wide threshold: alert only on order-of-magnitude movement.";

struct Spec {
  const char* suite;  ///< suite name, or "" = any suite
  const char* name;   ///< metric name (dotted names match final segment)
  const char* unit;
  bool lower_is_better;
  bool should_alert;
  double alert_threshold;
  const char* normalize_by;  ///< "" = none
  NormalizeOp normalize_op;
  int min_threads;
  const char* note;
  /// Absolute floor (ceiling when lower_is_better) on the normalized
  /// value; perfcheck ALERTs on violation even with no baseline. 0 =
  /// no floor — omitted by the entries that predate the field.
  double floor = 0.0;
};

constexpr NormalizeOp kDiv = NormalizeOp::kDivide;
constexpr NormalizeOp kMul = NormalizeOp::kMultiply;

// Direction legend: lower_is_better=true for times/costs/overheads,
// false for throughputs/speedups/qualities. Informational series
// (should_alert=false) are machine- or timing-dependent numbers whose
// correctness the bench binaries already hard-gate.
constexpr Spec kSpecs[] = {
    // ---- pr2-fastpath-gate --------------------------------------
    // calibration_fits_per_sec is the machine-speed yardstick the
    // other throughputs divide by; raw, it only measures the runner.
    {"pr2-fastpath-gate", "calibration_fits_per_sec", "per_sec", false,
     false, 0.10, "", kDiv, 0, "machine-speed yardstick, never gated"},
    {"pr2-fastpath-gate", "gp_incremental_adds_per_sec", "per_sec", false,
     true, 0.25, "calibration_fits_per_sec", kDiv, 0, ""},
    {"pr2-fastpath-gate", "gp_full_refits_per_sec", "per_sec", false,
     true, 0.25, "calibration_fits_per_sec", kDiv, 0, ""},
    {"pr2-fastpath-gate", "acq_scan_candidates_per_sec_t1", "per_sec", false,
     true, 0.25, "calibration_fits_per_sec", kDiv, 0, ""},
    {"pr2-fastpath-gate", "acq_scan_candidates_per_sec_t4", "per_sec", false,
     true, 0.25, "calibration_fits_per_sec", kDiv, 4, ""},
    {"pr2-fastpath-gate", "acq_scan_speedup_t4", "ratio", false,
     true, 0.25, "", kDiv, 4, ""},
    {"pr2-fastpath-gate", "heterbo_run_secs_t1", "seconds", true,
     true, 0.30, "calibration_fits_per_sec", kMul, 0, ""},
    {"pr2-fastpath-gate", "heterbo_run_secs_t4", "seconds", true,
     true, 0.30, "calibration_fits_per_sec", kMul, 4, ""},
    {"pr2-fastpath-gate", "heterbo_run_speedup_t4", "ratio", false,
     false, 0.25, "", kDiv, 4, "covered by acq_scan_speedup_t4 gate"},
    {"pr2-fastpath-gate", "journal_run_secs_plain", "seconds", true,
     false, 0.30, "", kDiv, 0, ""},
    {"pr2-fastpath-gate", "journal_run_secs_journaled", "seconds", true,
     false, 0.30, "", kDiv, 0, ""},
    {"pr2-fastpath-gate", "journal_us_per_record", "us", true,
     true, 0.50, "calibration_fits_per_sec", kMul, 0, ""},
    {"pr2-fastpath-gate", "journal_search_wall_hours", "hours", true,
     true, 0.10, "", kDiv, 0, "simulated clock, deterministic"},
    {"pr2-fastpath-gate", "journal_overhead_vs_search_wall", "ratio", true,
     false, 0.50, "", kDiv, 0, ""},

    // ---- pr7-multi-fidelity-gate (scenario-dotted names) ---------
    // All deterministic simulator outputs: tight windows.
    {"pr7-multi-fidelity-gate", "probe_cost_ratio", "ratio", true,
     true, 0.20, "", kDiv, 0, "ladder cost / full-fidelity cost"},
    {"pr7-multi-fidelity-gate", "quality_ratio", "ratio", true,
     true, 0.10, "", kDiv, 0, "ladder regret / full-fidelity regret"},
    {"pr7-multi-fidelity-gate", "ladder_probe_cost", "dollars", true,
     true, 0.10, "", kDiv, 0, ""},
    {"pr7-multi-fidelity-gate", "full_probe_cost", "dollars", true,
     true, 0.10, "", kDiv, 0, ""},
    {"pr7-multi-fidelity-gate", "ladder_quality", "cost", true,
     true, 0.10, "", kDiv, 0, ""},
    {"pr7-multi-fidelity-gate", "full_quality", "cost", true,
     true, 0.10, "", kDiv, 0, ""},
    {"pr7-multi-fidelity-gate", "seeds", "count", false,
     false, 0.10, "", kDiv, 0, ""},

    // ---- pr4-service-gate ----------------------------------------
    {"pr4-service-gate", "jobs_per_sec_t1", "per_sec", false,
     false, 0.25, "", kDiv, 0, "uncalibrated wall throughput"},
    {"pr4-service-gate", "jobs_per_sec_t2", "per_sec", false,
     false, 0.25, "", kDiv, 0, "uncalibrated wall throughput"},
    {"pr4-service-gate", "jobs_per_sec_t4", "per_sec", false,
     false, 0.25, "", kDiv, 0, "uncalibrated wall throughput"},
    // Floor 1.0: probe-granularity at 4 threads must never be slower
    // than one thread — an absolute contract, not a baseline-relative
    // one, so it holds from the first committed record.
    {"pr4-service-gate", "jobs_per_sec_speedup_t4", "ratio", false,
     true, 0.25, "", kDiv, 4, "", 1.0},
    {"pr4-service-gate", "cache_hit_rate_t4", "ratio", false,
     true, 0.10, "", kDiv, 0, ""},
    {"pr4-service-gate", "cache_hits_t4", "count", false,
     true, 0.05, "", kDiv, 0, "deterministic workload"},
    {"pr4-service-gate", "cache_inserts_t4", "count", true,
     true, 0.05, "", kDiv, 0, "deterministic workload"},
    {"pr4-service-gate", "capacity_stall_fraction", "ratio", true,
     false, 0.50, "", kDiv, 0, "timing-dependent"},
    {"pr4-service-gate", "capacity_stall_seconds", "seconds", true,
     false, 0.50, "", kDiv, 0, "timing-dependent"},
    {"pr4-service-gate", "pressured_peak_capacity_nodes", "count", true,
     false, 0.25, "", kDiv, 0, "hard-gated in the bench binary"},
    {"pr4-service-gate", "pressured_peak_tenant_jobs", "count", true,
     false, 0.25, "", kDiv, 0, "hard-gated in the bench binary"},

    // ---- pr5-scheduler-gate --------------------------------------
    {"pr5-scheduler-gate", "lane_idle_fraction_probe", "ratio", true,
     true, 0.30, "", kDiv, 4, ""},
    {"pr5-scheduler-gate", "lane_idle_fraction_job", "ratio", true,
     false, 0.30, "", kDiv, 0, ""},
    {"pr5-scheduler-gate", "lane_idle_drop", "ratio", false,
     false, 0.30, "", kDiv, 0, "near-zero baseline; hard-gated in bench"},
    {"pr5-scheduler-gate", "lane_busy_ratio_probe_vs_job", "ratio", false,
     true, 0.25, "", kDiv, 4, ""},
    {"pr5-scheduler-gate", "makespan_ratio_job_over_probe", "ratio", false,
     true, 0.25, "", kDiv, 4, ""},
    {"pr5-scheduler-gate", "session_parks", "count", true,
     false, 0.50, "", kDiv, 0, "timing-dependent"},
    {"pr5-scheduler-gate", "job_mode_capacity_stall_seconds", "seconds", true,
     false, 0.50, "", kDiv, 0, "timing-dependent"},

    // ---- pr6-chaos-gate ------------------------------------------
    {"pr6-chaos-gate", "chaos_throughput_ratio", "ratio", false,
     true, 0.25, "", kDiv, 0, "chaos / fault-free throughput"},
    {"pr6-chaos-gate", "chaos_makespan_overhead", "ratio", true,
     false, 0.50, "", kDiv, 0, ""},
    {"pr6-chaos-gate", "chaos_lane_crashes", "count", true,
     false, 0.50, "", kDiv, 0, "seeded fault schedule"},
    {"pr6-chaos-gate", "chaos_replayed_probes", "count", true,
     false, 0.50, "", kDiv, 0, ""},
    {"pr6-chaos-gate", "chaos_session_parks", "count", true,
     false, 0.50, "", kDiv, 0, "timing-dependent"},
    {"pr6-chaos-gate", "chaos_secs", "seconds", true,
     false, 0.30, "", kDiv, 0, ""},
    {"pr6-chaos-gate", "fault_free_secs", "seconds", true,
     false, 0.30, "", kDiv, 0, ""},

    // ---- pr8-durability-gate -------------------------------------
    {"pr8-durability-gate", "batch_journal_overhead_ratio", "ratio", true,
     true, 0.10, "", kDiv, 0,
     "journaled / plain batch wall time; bench hard-gates at 1.05"},
    {"pr8-durability-gate", "journal_throughput_ratio", "ratio", false,
     true, 0.25, "", kDiv, 0, ""},
    {"pr8-durability-gate", "durability_overhead_ratio", "ratio", true,
     true, 1.50, "", kDiv, 0, kDurabilityNote},
    {"pr8-durability-gate", "journaled_secs", "seconds", true,
     false, 0.50, "", kDiv, 0, ""},
    {"pr8-durability-gate", "self_journaled_secs", "seconds", true,
     false, 0.50, "", kDiv, 0, ""},
    {"pr8-durability-gate", "plain_secs", "seconds", true,
     false, 0.50, "", kDiv, 0, ""},
    {"pr8-durability-gate", "replay_secs", "seconds", true,
     false, 0.50, "", kDiv, 0, ""},
    {"pr8-durability-gate", "replay_speedup", "ratio", false,
     false, 0.50, "", kDiv, 0, ""},
    {"pr8-durability-gate", "replayed_reports", "count", false,
     true, 0.05, "", kDiv, 0, "deterministic workload"},
    {"pr8-durability-gate", "replayed_probes", "count", false,
     true, 0.05, "", kDiv, 0, "deterministic workload"},

    // ---- pr10-sharded-gate ---------------------------------------
    // Contention series for the sharded service core (striped probe
    // cache + per-lane run queues with work stealing). The speedup and
    // idle-fraction gates carry absolute floors — the whole point of
    // the sharded core is that more lanes help and lanes stay fed.
    {"pr10-sharded-gate", "jobs_per_sec_l1", "per_sec", false,
     false, 0.25, "", kDiv, 0, "uncalibrated wall throughput"},
    {"pr10-sharded-gate", "jobs_per_sec_l2", "per_sec", false,
     false, 0.25, "", kDiv, 0, "uncalibrated wall throughput"},
    {"pr10-sharded-gate", "jobs_per_sec_l4", "per_sec", false,
     false, 0.25, "", kDiv, 0, "uncalibrated wall throughput"},
    {"pr10-sharded-gate", "jobs_per_sec_l16", "per_sec", false,
     false, 0.25, "", kDiv, 0, "uncalibrated wall throughput"},
    {"pr10-sharded-gate", "central_jobs_per_sec_l4", "per_sec", false,
     false, 0.25, "", kDiv, 0, "legacy central dispatcher comparison"},
    {"pr10-sharded-gate", "jobs_per_sec_speedup_t4", "ratio", false,
     true, 0.25, "", kDiv, 4, "sharded 4-lane / 1-lane throughput", 1.0},
    {"pr10-sharded-gate", "lane_idle_fraction", "ratio", true,
     true, 0.30, "", kDiv, 4,
     "probe-mode idle fraction under contention", 0.35},
    {"pr10-sharded-gate", "steal_count", "count", false,
     false, 0.50, "", kDiv, 0,
     "timing-dependent; bench hard-gates steals > 0"},
    {"pr10-sharded-gate", "cache_stripe_max_imbalance", "ratio", true,
     false, 0.50, "", kDiv, 0, "key-distribution-dependent"},
};

// Dotted names carry a scenario prefix ("budget.probe_cost_ratio");
// the catalog keys on the final segment.
std::string final_segment(const std::string& name) {
  const auto dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

}  // namespace

MetricSample gate_metric(const std::string& suite, const std::string& name,
                         double value) {
  const std::string key = final_segment(name);
  MetricSample sample;
  sample.name = name;
  sample.values.push_back(value);
  for (const Spec& spec : kSpecs) {
    if (suite != spec.suite) continue;
    if (key != spec.name) continue;
    sample.unit = spec.unit;
    sample.lower_is_better = spec.lower_is_better;
    sample.should_alert = spec.should_alert;
    sample.alert_threshold = spec.alert_threshold;
    sample.normalize_by = spec.normalize_by;
    sample.normalize_op = spec.normalize_op;
    if (spec.floor != 0.0) sample.alert_floor = spec.floor;
    sample.min_threads = spec.min_threads;
    sample.note = spec.note;
    return sample;
  }
  // Unknown metric: publish as informational until the catalog learns
  // its alerting contract — an uncatalogued series must never page.
  sample.unit = "value";
  sample.lower_is_better = true;
  sample.should_alert = false;
  sample.note = "uncatalogued metric; informational only";
  return sample;
}

}  // namespace mlcd::obs
