// perfcheck: regression alerting over the committed time-series.
//
// For every suite history file, the latest record is compared against
// the rolling median of the `window` records before it. Each metric's
// allowed movement is its declared alert_threshold widened — never
// narrowed — by the observed baseline noise, so a metric that naturally
// jitters 15% cannot page at a 10% contract while a rock-steady one
// still alerts at its declared window. Alerts fire only on movement
// strictly greater than the allowed window (a change exactly at the
// threshold passes), in the metric's bad direction only — improvements
// never alert.
//
// Also home of the one-shot converter that migrates the legacy
// BENCH_PR*.json gate snapshots into history records, so the observatory
// opens with a multi-PR baseline instead of an empty file.
#pragma once

#include <string>
#include <vector>

#include "obs/history.hpp"

namespace mlcd::util {
class JsonValue;
}

namespace mlcd::obs {

struct PerfcheckOptions {
  std::string history_dir = "bench_out/history";
  std::string suite_filter;      ///< empty = every *.jsonl in history_dir
  int window = 5;                ///< baseline records per metric (max)
  double min_noise = 0.02;       ///< floor on the widened window
  double noise_multiplier = 3.0; ///< allowed = max(threshold, k * MAD/med)
  /// Thread count of the machine evaluating the latest record; metrics
  /// declaring min_threads above this are skipped, not alerted. 0 means
  /// "use the latest record's own hardware_threads".
  int hardware_threads = 0;
};

enum class VerdictStatus {
  kOk,        ///< within the allowed window (or improved)
  kAlert,     ///< regression beyond the allowed window
  kMissing,   ///< alerting metric present in baseline, absent in latest
  kFirstRun,  ///< no baseline record carries this metric yet
  kSkipped,   ///< min_threads unmet, or calibration metric unavailable
  kInfo,      ///< should_alert=false — tracked, never gated
};

const char* verdict_status_name(VerdictStatus status);

struct MetricVerdict {
  std::string suite;
  std::string name;
  std::string unit;
  VerdictStatus status = VerdictStatus::kOk;
  double baseline = 0.0;  ///< normalized rolling median (when computed)
  double latest = 0.0;    ///< normalized latest value (when computed)
  double change = 0.0;    ///< signed relative movement; positive = worse
  double allowed = 0.0;   ///< the widened window that applied
  std::string detail;     ///< human-readable explanation (skips, notes)
};

struct PerfcheckReport {
  std::vector<MetricVerdict> verdicts;
  std::vector<std::string> suites;

  /// Number of verdicts that should fail the build (alert + missing).
  int alert_count() const;

  /// Human-readable regression table: alerting verdicts first, then a
  /// per-suite summary. Pass verbose=true to list every metric.
  std::string render(bool verbose = false) const;
};

/// Pure checker over one suite's in-memory history (last record =
/// latest, up to options.window records before it = baseline). Unit
/// tests drive this directly; run_perfcheck() feeds it from disk.
std::vector<MetricVerdict> check_suite(const std::vector<HistoryRecord>& records,
                                       const PerfcheckOptions& options);

/// Loads every suite history under options.history_dir and checks each.
/// Throws std::invalid_argument on malformed history and
/// std::runtime_error when the directory is missing or holds no suites.
PerfcheckReport run_perfcheck(const PerfcheckOptions& options);

/// Converts one legacy BENCH_PR*.json gate snapshot into a history
/// record, stamping each value with the gate_metric() catalog metadata.
/// Handles both the flat {"metrics": {...}} shape (PR 2/4/5/6/8) and the
/// {"scenarios": [...]} shape (PR 7, emitted as "<scenario>.<key>").
/// Throws std::invalid_argument on an unrecognized snapshot.
HistoryRecord convert_legacy_snapshot(const util::JsonValue& snapshot,
                                      const std::string& run_id);

}  // namespace mlcd::obs
