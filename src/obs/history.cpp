#include "obs/history.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace mlcd::obs {

namespace {

NormalizeOp parse_normalize_op(const std::string& text) {
  if (text == "divide") return NormalizeOp::kDivide;
  if (text == "multiply") return NormalizeOp::kMultiply;
  throw std::invalid_argument("obs history: unknown normalize_op '" + text +
                              "'");
}

MetricSample sample_from_json(const util::JsonValue& value) {
  MetricSample sample;
  sample.name = value.at("name").as_string();
  sample.unit = value.at("unit").as_string();
  sample.lower_is_better = value.at("lower_is_better").as_bool();
  for (const util::JsonValue& v : value.at("values").as_array()) {
    sample.values.push_back(v.as_number());
  }
  sample.should_alert = value.at("should_alert").as_bool();
  sample.alert_threshold = value.at("alert_threshold").as_number();
  if (value.contains("normalize_by")) {
    sample.normalize_by = value.at("normalize_by").as_string();
    sample.normalize_op =
        parse_normalize_op(value.at("normalize_op").as_string());
  }
  if (value.contains("alert_floor")) {
    sample.alert_floor = value.at("alert_floor").as_number();
  }
  if (value.contains("min_threads")) {
    sample.min_threads =
        static_cast<int>(value.at("min_threads").as_number());
  }
  if (value.contains("note")) sample.note = value.at("note").as_string();
  return sample;
}

void sample_to_json(util::JsonWriter& json, const MetricSample& sample) {
  json.begin_object();
  json.key("name").value(sample.name);
  json.key("unit").value(sample.unit);
  json.key("lower_is_better").value(sample.lower_is_better);
  json.key("values").begin_array();
  for (const double v : sample.values) json.value(v);
  json.end_array();
  json.key("should_alert").value(sample.should_alert);
  json.key("alert_threshold").value(sample.alert_threshold);
  if (!sample.normalize_by.empty()) {
    json.key("normalize_by").value(sample.normalize_by);
    json.key("normalize_op").value(normalize_op_name(sample.normalize_op));
  }
  if (sample.has_floor()) json.key("alert_floor").value(sample.alert_floor);
  if (sample.min_threads > 0) json.key("min_threads").value(sample.min_threads);
  if (!sample.note.empty()) json.key("note").value(sample.note);
  json.end_object();
}

}  // namespace

std::string HistoryRecord::to_json() const {
  util::JsonWriter json;
  json.begin_object();
  json.key("obs_schema_version").value(schema_version);
  json.key("suite").value(suite);
  json.key("run_id").value(run_id);
  json.key("hardware_threads").value(hardware_threads);
  json.key("metrics").begin_array();
  for (const MetricSample& sample : metrics) sample_to_json(json, sample);
  json.end_array();
  json.end_object();
  return json.str();
}

HistoryRecord HistoryRecord::from_json(const util::JsonValue& value) {
  HistoryRecord record;
  record.schema_version =
      static_cast<int>(value.at("obs_schema_version").as_number());
  if (record.schema_version > kObsSchemaVersion) {
    throw std::invalid_argument(
        "obs history: record schema_version " +
        std::to_string(record.schema_version) +
        " is newer than this binary understands (" +
        std::to_string(kObsSchemaVersion) + ")");
  }
  record.suite = value.at("suite").as_string();
  record.run_id = value.at("run_id").as_string();
  record.hardware_threads =
      static_cast<int>(value.at("hardware_threads").as_number());
  for (const util::JsonValue& m : value.at("metrics").as_array()) {
    record.metrics.push_back(sample_from_json(m));
  }
  return record;
}

const MetricSample* HistoryRecord::find(const std::string& name) const {
  for (const MetricSample& sample : metrics) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

std::string history_path(const std::string& dir, const std::string& suite) {
  std::string file;
  for (const char c : suite) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    file.push_back(safe ? c : '-');
  }
  return dir + "/" + file + ".jsonl";
}

std::vector<HistoryRecord> load_history_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::vector<HistoryRecord> records;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      records.push_back(HistoryRecord::from_json(util::parse_json(line)));
    } catch (const std::exception& e) {
      throw std::invalid_argument(path + ":" + std::to_string(line_no) +
                                  ": " + e.what());
    }
  }
  return records;
}

void append_history(const std::string& path, const HistoryRecord& record) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path, std::ios::app);
  if (!out) {
    throw std::runtime_error("obs history: cannot open '" + path +
                             "' for append");
  }
  out << record.to_json() << "\n";
  out.flush();
  if (!out) {
    throw std::runtime_error("obs history: write to '" + path + "' failed");
  }
}

}  // namespace mlcd::obs
