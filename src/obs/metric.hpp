// Uniform metric schema for the performance observatory.
//
// Every bench binary used to invent its own JSON shape (BENCH_PR*.json
// each had a private metrics object and a private gate); the observatory
// replaces those with one record type every emitter shares. A
// MetricSample names one measured quantity — its unit, its direction
// (lower_is_better), its replicate values, and the alerting contract the
// regression checker (perfcheck.hpp) applies against the committed
// time-series. The schema is deliberately Perfherder-shaped: the fields
// mirror the `perfherder_metrics` entries (name / unit / shouldAlert)
// that project-foxhound's model perf tests publish, extended with the
// calibration-normalization rule our cross-machine gates already rely
// on (docs/performance.md).
#pragma once

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace mlcd::obs {

/// Schema version of one serialized observatory record (the `"obs"` key
/// in a suite snapshot or one line of a history .jsonl). Bump on any
/// incompatible field change; perfcheck refuses records from the future.
inline constexpr int kObsSchemaVersion = 1;

/// How a metric is normalized against its suite's calibration metric
/// before cross-run comparison. Machine speed cancels out of a
/// throughput by *dividing* by the machine's calibration throughput, and
/// out of a wall time by *multiplying* (seconds ~ 1/speed).
enum class NormalizeOp {
  kDivide,
  kMultiply,
};

const char* normalize_op_name(NormalizeOp op);

/// One measured quantity of one run.
struct MetricSample {
  /// Stable identifier, unique within a suite ("gp_incremental_adds_per_sec").
  std::string name;

  /// Human unit tag: "per_sec", "seconds", "us", "ratio", "count",
  /// "mb", "dollars", ... Informational (rendered in tables), not
  /// interpreted by the checker.
  std::string unit;

  /// Direction: true when a drop is an improvement (latency, RSS,
  /// allocation counts); false for throughputs.
  bool lower_is_better = false;

  /// Replicate values of this run. The comparable value of the run is
  /// the median (value()), so one noisy replicate cannot fake or mask a
  /// regression.
  std::vector<double> values;

  /// Whether perfcheck may fail CI over this metric. Purely
  /// informational series (machine-dependent absolute wall times,
  /// core-count-dependent speedups on unknown runners) set this false
  /// and stay tracked without gating.
  bool should_alert = true;

  /// Relative regression (vs the rolling-median baseline, after
  /// normalization) that raises an alert. perfcheck widens this with
  /// the metric's observed noise window but never narrows it, and a
  /// change exactly at the threshold does NOT alert (strictly-greater
  /// semantics). 0.10 = alert beyond a 10% regression.
  double alert_threshold = 0.10;

  /// Optional name of the suite's calibration metric (e.g.
  /// "calibration_fits_per_sec"). When set, this metric is normalized
  /// against the *same record's* calibration median before any cross-run
  /// comparison, so runs from machines of different speeds share one
  /// time-series. Empty = compare raw values.
  std::string normalize_by;
  NormalizeOp normalize_op = NormalizeOp::kDivide;

  /// Optional absolute floor on the *normalized* value — a contract
  /// independent of the rolling baseline. For lower_is_better=false
  /// metrics the latest value must be >= the floor; for
  /// lower_is_better=true it must be <= it (a ceiling). Violations
  /// ALERT even on the very first run, when no baseline exists to
  /// compare against — this is how "the sharded scheduler must actually
  /// be faster than one lane" stays enforced from day one. Honors
  /// min_threads like the relative gate. NaN = no floor.
  double alert_floor = std::numeric_limits<double>::quiet_NaN();

  bool has_floor() const noexcept { return !std::isnan(alert_floor); }

  /// Minimum hardware_threads a record needs for this metric to be
  /// meaningful (parallel speedups measure ~1.0x on a 1-core box).
  /// perfcheck skips alerting when either side is below it. 0 = always.
  int min_threads = 0;

  /// Free-text caveat recorded next to the data (e.g. the
  /// durability_overhead_ratio's "simulated probes are microseconds, so
  /// this ratio measures fsync latency" note). Rendered in alert tables.
  std::string note;

  /// The run's comparable value: the median of `values` (even count:
  /// mean of the middle two). NaN when no replicates were recorded.
  double value() const;
};

/// Median helper shared by MetricSample::value() and perfcheck's
/// rolling baselines. NaN on an empty vector.
double median(std::vector<double> values);

}  // namespace mlcd::obs
