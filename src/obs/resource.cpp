#include "obs/resource.hpp"

#include <chrono>

#include <sys/resource.h>

namespace mlcd::obs {

namespace detail {

AllocStorage& alloc_storage() noexcept {
  // Function-local so operator new calls during early static
  // initialization find constructed atomics. Atomics allocate nothing,
  // so this never recurses into the hook.
  static AllocStorage storage;
  return storage;
}

}  // namespace detail

AllocCounters alloc_counters() {
  const detail::AllocStorage& s = detail::alloc_storage();
  AllocCounters c;
  c.allocations = s.allocations.load(std::memory_order_relaxed);
  c.bytes = s.bytes.load(std::memory_order_relaxed);
  return c;
}

bool alloc_hook_active() {
  return detail::alloc_storage().linked.load(std::memory_order_relaxed);
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

ResourceProbe::ResourceProbe()
    : start_nanos_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())),
      start_(alloc_counters()) {}

double ResourceProbe::wall_seconds() const {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return static_cast<double>(now - start_nanos_) * 1e-9;
}

AllocCounters ResourceProbe::alloc_delta() const {
  const AllocCounters now = alloc_counters();
  AllocCounters delta;
  delta.allocations = now.allocations - start_.allocations;
  delta.bytes = now.bytes - start_.bytes;
  return delta;
}

}  // namespace mlcd::obs
