#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/normal.hpp"

namespace mlcd::stats {

Summary summarize(std::span<const double> sample) {
  if (sample.empty()) {
    throw std::invalid_argument("summarize: empty sample");
  }
  Summary s;
  s.count = sample.size();
  s.min = sample[0];
  s.max = sample[0];
  double sum = 0.0;
  for (double x : sample) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (double x : sample) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.variance = ss / static_cast<double>(s.count - 1);
  }
  s.stddev = std::sqrt(s.variance);
  return s;
}

double quantile(std::span<const double> sample, double q) {
  if (sample.empty()) throw std::invalid_argument("quantile: empty sample");
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("quantile: q outside [0, 1]");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

WhiskerStats whisker_stats(std::span<const double> sample) {
  WhiskerStats w;
  w.min = quantile(sample, 0.0);
  w.q1 = quantile(sample, 0.25);
  w.median = quantile(sample, 0.5);
  w.q3 = quantile(sample, 0.75);
  w.max = quantile(sample, 1.0);
  return w;
}

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::coefficient_of_variation() const noexcept {
  if (n_ < 2) return 0.0;
  if (mean_ == 0.0) return std::numeric_limits<double>::infinity();
  return stddev() / std::abs(mean_);
}

double confidence_halfwidth(const RunningStats& stats, double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument(
        "confidence_halfwidth: confidence outside (0, 1)");
  }
  if (stats.count() < 2) {
    throw std::invalid_argument(
        "confidence_halfwidth: need at least two samples");
  }
  const double z = normal_quantile(0.5 + confidence / 2.0);
  return z * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
}

}  // namespace mlcd::stats
