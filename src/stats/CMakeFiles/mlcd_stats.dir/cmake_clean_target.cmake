file(REMOVE_RECURSE
  "libmlcd_stats.a"
)
