# Empty dependencies file for mlcd_stats.
# This may be replaced when dependencies are built.
