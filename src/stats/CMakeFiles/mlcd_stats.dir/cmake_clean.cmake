file(REMOVE_RECURSE
  "CMakeFiles/mlcd_stats.dir/normal.cpp.o"
  "CMakeFiles/mlcd_stats.dir/normal.cpp.o.d"
  "CMakeFiles/mlcd_stats.dir/summary.cpp.o"
  "CMakeFiles/mlcd_stats.dir/summary.cpp.o.d"
  "libmlcd_stats.a"
  "libmlcd_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcd_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
