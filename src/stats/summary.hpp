// Summary statistics, quantiles, whisker ("box plot") summaries and an
// online variance accumulator.
//
// These back two pieces of the system: the Profiler's stability check
// (extend profiling while the coefficient of variation is high, paper
// §IV) and the Fig. 12 random-search distribution plot.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mlcd::stats {

/// Basic sample statistics.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased sample variance (n-1 denominator)
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes Summary for a non-empty sample; throws std::invalid_argument
/// on an empty input.
Summary summarize(std::span<const double> sample);

/// Linear-interpolation quantile (type-7, the numpy default) for
/// q in [0, 1]. Throws on empty input or q outside [0, 1].
double quantile(std::span<const double> sample, double q);

/// Five-number summary used by whisker plots.
struct WhiskerStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

WhiskerStats whisker_stats(std::span<const double> sample);

/// Welford online mean/variance accumulator — numerically stable and
/// single-pass, suitable for streaming profiling measurements.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 until two samples are seen.
  double variance() const noexcept;
  double stddev() const noexcept;

  /// stddev / |mean|; +inf when the mean is zero. Undefined (0) before
  /// two samples.
  double coefficient_of_variation() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Half-width of the two-sided normal confidence interval at `confidence`
/// (e.g. 0.95) for a mean estimated from `stats`.
/// Throws std::invalid_argument when confidence is outside (0, 1) or
/// fewer than two samples were seen.
double confidence_halfwidth(const RunningStats& stats, double confidence);

}  // namespace mlcd::stats
