// Standard-normal density, distribution and quantile functions.
//
// These are the phi/Phi terms in the Expected Improvement acquisition
// (paper Eq. 4) and the 95% confidence interval used by HeterBO's stop
// condition, implemented without external dependencies.
#pragma once

namespace mlcd::stats {

/// Standard normal probability density phi(x).
double normal_pdf(double x) noexcept;

/// Standard normal cumulative distribution Phi(x), via erfc for accuracy
/// in both tails.
double normal_cdf(double x) noexcept;

/// Inverse of normal_cdf on (0, 1) — Acklam's rational approximation
/// refined with one Halley step (|relative error| < 1e-9).
/// Throws std::domain_error outside (0, 1).
double normal_quantile(double p);

}  // namespace mlcd::stats
