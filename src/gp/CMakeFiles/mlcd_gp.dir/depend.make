# Empty dependencies file for mlcd_gp.
# This may be replaced when dependencies are built.
