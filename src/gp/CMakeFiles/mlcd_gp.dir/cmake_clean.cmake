file(REMOVE_RECURSE
  "CMakeFiles/mlcd_gp.dir/gp_regressor.cpp.o"
  "CMakeFiles/mlcd_gp.dir/gp_regressor.cpp.o.d"
  "CMakeFiles/mlcd_gp.dir/kernel.cpp.o"
  "CMakeFiles/mlcd_gp.dir/kernel.cpp.o.d"
  "CMakeFiles/mlcd_gp.dir/nelder_mead.cpp.o"
  "CMakeFiles/mlcd_gp.dir/nelder_mead.cpp.o.d"
  "libmlcd_gp.a"
  "libmlcd_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcd_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
