file(REMOVE_RECURSE
  "libmlcd_gp.a"
)
