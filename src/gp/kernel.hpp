// Covariance kernels for Gaussian-process regression.
//
// The paper follows the BO convention of a Gaussian-process prior over the
// unknown speed(deployment) function (§III-C "Prior function"). We provide
// the standard stationary kernels used in that literature — squared
// exponential and the Matérn family — each with ARD (per-dimension)
// lengthscales. Hyperparameters are exposed as a flat log-space vector so
// generic optimizers can tune them.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace mlcd::gp {

/// Interface for positive-definite stationary kernels k(x, x').
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Covariance between two points of the same dimensionality.
  virtual double operator()(std::span<const double> a,
                            std::span<const double> b) const = 0;

  /// Human-readable name ("matern52", ...).
  virtual std::string name() const = 0;

  /// Number of tunable hyperparameters.
  virtual std::size_t param_count() const = 0;

  /// Current hyperparameters in log space (all are positive scales).
  virtual std::vector<double> log_params() const = 0;

  /// Sets hyperparameters from log space; size must equal param_count().
  virtual void set_log_params(std::span<const double> lp) = 0;

  /// Deep copy.
  virtual std::unique_ptr<Kernel> clone() const = 0;
};

/// Base for kernels of the form sigma_f^2 * g(r) with ARD scaling
/// r^2 = sum_d ((a_d - b_d) / l_d)^2.
//
// Hyperparameter layout: [log sigma_f, log l_1, ..., log l_D].
class ArdStationaryKernel : public Kernel {
 public:
  /// `dim` input dimensions; initial signal stddev and lengthscales of 1.
  explicit ArdStationaryKernel(std::size_t dim);

  std::size_t param_count() const override { return 1 + lengthscales_.size(); }
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> lp) override;

  double signal_variance() const noexcept {
    return signal_stddev_ * signal_stddev_;
  }
  std::span<const double> lengthscales() const noexcept {
    return lengthscales_;
  }

  void set_signal_stddev(double s);
  void set_lengthscale(std::size_t dim, double l);

  double operator()(std::span<const double> a,
                    std::span<const double> b) const override;

 protected:
  /// Radial profile g(r) with g(0) = 1, evaluated at scaled distance r.
  virtual double radial(double r) const = 0;

  /// Scaled Euclidean distance between two points.
  double scaled_distance(std::span<const double> a,
                         std::span<const double> b) const;

  double signal_stddev_ = 1.0;
  std::vector<double> lengthscales_;
};

/// Squared-exponential (RBF): g(r) = exp(-r^2 / 2). Infinitely smooth;
/// often too smooth for systems-performance data.
class SquaredExponentialKernel final : public ArdStationaryKernel {
 public:
  using ArdStationaryKernel::ArdStationaryKernel;
  std::string name() const override { return "squared_exponential"; }
  std::unique_ptr<Kernel> clone() const override;

 protected:
  double radial(double r) const override;
};

/// Matérn 3/2: g(r) = (1 + sqrt(3) r) exp(-sqrt(3) r). Once
/// differentiable.
class Matern32Kernel final : public ArdStationaryKernel {
 public:
  using ArdStationaryKernel::ArdStationaryKernel;
  std::string name() const override { return "matern32"; }
  std::unique_ptr<Kernel> clone() const override;

 protected:
  double radial(double r) const override;
};

/// Matérn 5/2: g(r) = (1 + sqrt(5) r + 5 r^2 / 3) exp(-sqrt(5) r).
/// Twice differentiable — the default choice for performance modeling
/// (also CherryPick's choice).
class Matern52Kernel final : public ArdStationaryKernel {
 public:
  using ArdStationaryKernel::ArdStationaryKernel;
  std::string name() const override { return "matern52"; }
  std::unique_ptr<Kernel> clone() const override;

 protected:
  double radial(double r) const override;
};

}  // namespace mlcd::gp
