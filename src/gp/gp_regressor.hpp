// Gaussian-process regression with exact inference.
//
// This is the surrogate model behind every BO searcher in the repo.
// Design points X are deployment coordinates (normalized instance-type
// index, node count), targets y are measured training speeds. Inference
// follows Rasmussen & Williams Algorithm 2.1: Cholesky of K + sigma_n^2 I,
// alpha = K^{-1} y, predictive mean k_*^T alpha and variance
// k(x*,x*) - ||L^{-1} k_*||^2.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "gp/kernel.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace mlcd::gp {

/// Predictive distribution at one query point.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;

  double stddev() const;
};

struct GpOptions {
  /// Observation noise standard deviation (before MLE tuning).
  double noise_stddev = 1e-3;
  /// When true, fit() maximizes the log marginal likelihood over kernel
  /// hyperparameters and the noise level with multi-start Nelder–Mead.
  bool optimize_hyperparameters = true;
  /// Number of optimizer restarts from perturbed starting points.
  int optimizer_restarts = 3;
  /// Normalize targets to zero mean / unit variance internally. Keeps
  /// hyperparameter scales sane when speeds span orders of magnitude.
  bool normalize_targets = true;
  /// Optional box bounds (log space) on [kernel params..., noise stddev]
  /// for the MLE. Empty = the default wide bounds. BO surrogates use
  /// these to stop the MLE from collapsing to a near-flat, overconfident
  /// fit when only a handful of observations exist.
  std::vector<double> log_param_lower;
  std::vector<double> log_param_upper;
};

/// Exact GP regressor. Usage: construct with a kernel, call fit(), then
/// predict() any number of times.
class GpRegressor {
 public:
  GpRegressor(std::unique_ptr<Kernel> kernel, GpOptions options = {});

  GpRegressor(const GpRegressor& other);
  GpRegressor& operator=(const GpRegressor& other);
  GpRegressor(GpRegressor&&) noexcept = default;
  GpRegressor& operator=(GpRegressor&&) noexcept = default;

  /// Fits to n observations: X is n x d, y has n entries.
  /// Throws std::invalid_argument on shape mismatch or empty data.
  void fit(const linalg::Matrix& x, const linalg::Vector& y);

  /// Adds one observation to a fitted model. When hyperparameter
  /// optimization and target normalization are both disabled, the
  /// covariance factor is extended incrementally in O(n²); otherwise the
  /// model refits from scratch (hyperparameters/normalization depend on
  /// the full data). Throws std::logic_error before fit() and
  /// std::invalid_argument on dimension mismatch.
  void add_observation(std::span<const double> x, double y);

  bool is_fitted() const noexcept { return factor_.has_value(); }
  std::size_t observation_count() const noexcept { return y_raw_.size(); }
  std::size_t input_dim() const noexcept;

  /// Predictive mean/variance at a query point (dimension d).
  /// Throws std::logic_error when called before fit().
  Prediction predict(std::span<const double> x) const;

  /// Log marginal likelihood of the fitted data under current
  /// hyperparameters (normalized-target space).
  double log_marginal_likelihood() const;

  const Kernel& kernel() const noexcept { return *kernel_; }
  double noise_stddev() const noexcept { return noise_stddev_; }

 private:
  /// Builds K(X, X) + sigma_n^2 I and factorizes; returns log marginal
  /// likelihood, or -inf when the factorization fails.
  double refit_with_current_params();

  void optimize_hyperparameters();

  std::unique_ptr<Kernel> kernel_;
  GpOptions options_;
  double noise_stddev_ = 1e-3;

  linalg::Matrix x_;          // stored design points
  linalg::Vector y_raw_;      // original targets
  linalg::Vector y_;          // normalized targets
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;

  std::optional<linalg::CholeskyFactor> factor_;
  linalg::Vector alpha_;  // (K + sigma^2 I)^{-1} y
};

}  // namespace mlcd::gp
