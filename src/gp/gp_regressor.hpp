// Gaussian-process regression with exact inference.
//
// This is the surrogate model behind every BO searcher in the repo.
// Design points X are deployment coordinates (normalized instance-type
// index, node count), targets y are measured training speeds. Inference
// follows Rasmussen & Williams Algorithm 2.1: Cholesky of K + sigma_n^2 I,
// alpha = K^{-1} y, predictive mean k_*^T alpha and variance
// k(x*,x*) - ||L^{-1} k_*||^2.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "gp/kernel.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace mlcd::gp {

/// Predictive distribution at one query point.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;

  double stddev() const;
};

struct GpOptions {
  /// Observation noise standard deviation (before MLE tuning).
  double noise_stddev = 1e-3;
  /// When true, fit() maximizes the log marginal likelihood over kernel
  /// hyperparameters and the noise level with multi-start Nelder–Mead.
  bool optimize_hyperparameters = true;
  /// Number of optimizer restarts from perturbed starting points.
  int optimizer_restarts = 3;
  /// Normalize targets to zero mean / unit variance internally. Keeps
  /// hyperparameter scales sane when speeds span orders of magnitude.
  bool normalize_targets = true;
  /// add_observation() full-refit schedule when hyperparameter tuning or
  /// target normalization is active: 1 (default) refits — retune + re-
  /// normalization — on every add, the legacy exact behavior; k > 1
  /// refits on every k-th add and runs the O(n²) incremental bordered-
  /// Cholesky update with frozen hyperparameters/normalizer in between;
  /// <= 0 disables the schedule entirely (incremental always, full refit
  /// only on numerical fallback or evidence drop).
  int refit_every = 1;
  /// Early-retune trigger for the incremental path: when the mean log
  /// marginal likelihood per observation falls more than this many nats
  /// below its value at the last full fit, the model retunes immediately
  /// (the frozen hyperparameters stopped explaining the data). 0
  /// disables the check.
  double refit_evidence_drop = 0.0;
  /// fit() runs the hyperparameter MLE only at or above this many
  /// observations; below it a young GP would overfit its handful of
  /// points.
  int hyperopt_min_obs = 3;
  /// Optional box bounds (log space) on [kernel params..., noise stddev]
  /// for the MLE. Empty = the default wide bounds. BO surrogates use
  /// these to stop the MLE from collapsing to a near-flat, overconfident
  /// fit when only a handful of observations exist.
  std::vector<double> log_param_lower;
  std::vector<double> log_param_upper;
};

/// Exact GP regressor. Usage: construct with a kernel, call fit(), then
/// predict() any number of times.
class GpRegressor {
 public:
  GpRegressor(std::unique_ptr<Kernel> kernel, GpOptions options = {});

  GpRegressor(const GpRegressor& other);
  GpRegressor& operator=(const GpRegressor& other);
  GpRegressor(GpRegressor&&) noexcept = default;
  GpRegressor& operator=(GpRegressor&&) noexcept = default;

  /// Fits to n observations: X is n x d, y has n entries.
  /// Throws std::invalid_argument on shape mismatch or empty data.
  void fit(const linalg::Matrix& x, const linalg::Vector& y);

  /// Heteroscedastic fit: `noise_multipliers` (n entries, all > 0) scale
  /// the per-observation noise stddev — observation i contributes
  /// (noise_stddev * m_i)^2 to the covariance diagonal. Low-fidelity
  /// probes carry multipliers > 1 so the GP trusts them less without
  /// discarding them (the TrimTuner treatment). When every multiplier is
  /// exactly 1.0 the arithmetic is bit-identical to the homoscedastic
  /// fit() above.
  void fit(const linalg::Matrix& x, const linalg::Vector& y,
           const linalg::Vector& noise_multipliers);

  /// Adds one observation to a fitted model. When hyperparameter
  /// optimization and target normalization are both disabled — or the
  /// GpOptions::refit_every schedule says this add is not a retune
  /// point — the covariance factor is extended incrementally in O(n²)
  /// (bordered Cholesky, frozen hyperparameters/normalizer), with a
  /// tolerance-checked fallback to a full refit when the border is
  /// numerically unsafe. On scheduled retunes the model refits from
  /// scratch. Throws std::logic_error before fit() and
  /// std::invalid_argument on dimension mismatch.
  void add_observation(std::span<const double> x, double y);

  /// add_observation() with a per-observation noise multiplier (> 0);
  /// the plain overload is exactly this with multiplier 1.0.
  void add_observation(std::span<const double> x, double y,
                       double noise_multiplier);

  /// Rebuilds the covariance factor from the stored observations in
  /// O(n³). With `retune_hyperparameters` the MLE and target
  /// renormalization re-run (same as fit() on the stored data); without
  /// it the current hyperparameters and normalization constants are kept
  /// — the exact reference the incremental path is validated against.
  /// Throws std::logic_error before fit().
  void refit_full(bool retune_hyperparameters = true);

  bool is_fitted() const noexcept { return factor_.has_value(); }
  std::size_t observation_count() const noexcept { return y_raw_.size(); }
  std::size_t input_dim() const noexcept;

  /// Monotone token identifying the last full (re)fit. Incremental adds
  /// keep the version; anything that can move hyperparameters or
  /// normalization constants bumps it, invalidating PredictCaches.
  /// Unique across GpRegressor instances, so a cache can never be
  /// mistakenly reused against a different surrogate.
  std::uint64_t fit_version() const noexcept { return fit_version_; }

  /// Incremental adds since the last full fit (0 right after a refit).
  int adds_since_refit() const noexcept { return adds_since_refit_; }

  /// Predictive mean/variance at a query point (dimension d).
  /// Throws std::logic_error when called before fit().
  Prediction predict(std::span<const double> x) const;

  /// Per-candidate scratch for predict_cached(): the kernel row
  /// k_star = k(x, X) and its forward solve v = L⁻¹ k_star, tagged with
  /// the fit version they were computed against. A cache belongs to one
  /// fixed query point; entries are appended as observations arrive
  /// (O(n) per new observation) and discarded wholesale when a full
  /// refit moves the hyperparameters.
  struct PredictCache {
    linalg::Vector k_star;
    linalg::Vector v;
    std::uint64_t fit_version = 0;
  };

  /// predict() with kernel-row reuse across BO iterations: repeated
  /// scans of a fixed candidate set pay O(n) per candidate after an
  /// incremental add instead of O(n²). Safe to call concurrently from
  /// multiple threads as long as each thread passes a distinct cache.
  /// The mean is computed as (L⁻¹k_star)·(L⁻¹y), which is analytically
  /// equal to predict()'s k_star·alpha but may differ in the last bits;
  /// searchers therefore use one path consistently for all candidates.
  Prediction predict_cached(std::span<const double> x,
                            PredictCache& cache) const;

  /// Log marginal likelihood of the fitted data under current
  /// hyperparameters (normalized-target space).
  double log_marginal_likelihood() const;

  const Kernel& kernel() const noexcept { return *kernel_; }
  double noise_stddev() const noexcept { return noise_stddev_; }

 private:
  /// Builds K(X, X) + sigma_n^2 diag(m^2) and factorizes; returns log
  /// marginal likelihood, or -inf when the factorization fails.
  double refit_with_current_params();

  void optimize_hyperparameters();

  /// True when every stored noise multiplier is exactly 1.0 — the
  /// homoscedastic case, which must keep the legacy bit-exact
  /// add_to_diagonal path.
  bool homoscedastic_noise() const noexcept;

  std::unique_ptr<Kernel> kernel_;
  GpOptions options_;
  double noise_stddev_ = 1e-3;

  linalg::Matrix x_;          // stored design points
  linalg::Vector y_raw_;      // original targets
  linalg::Vector y_;          // normalized targets
  /// Per-observation noise multipliers, parallel to y_raw_ (1.0 for
  /// homoscedastic observations).
  linalg::Vector noise_multipliers_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;

  std::optional<linalg::CholeskyFactor> factor_;
  linalg::Vector alpha_;  // (K + sigma^2 I)^{-1} y
  linalg::Vector w_;      // L^{-1} y, shared by all cached predictions

  std::uint64_t fit_version_ = 0;
  int adds_since_refit_ = 0;
  double lml_per_obs_at_refit_ = 0.0;
};

}  // namespace mlcd::gp
