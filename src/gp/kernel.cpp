#include "gp/kernel.hpp"

#include <cmath>
#include <stdexcept>

namespace mlcd::gp {

ArdStationaryKernel::ArdStationaryKernel(std::size_t dim)
    : lengthscales_(dim, 1.0) {
  if (dim == 0) {
    throw std::invalid_argument("ArdStationaryKernel: dim must be > 0");
  }
}

std::vector<double> ArdStationaryKernel::log_params() const {
  std::vector<double> lp;
  lp.reserve(param_count());
  lp.push_back(std::log(signal_stddev_));
  for (double l : lengthscales_) lp.push_back(std::log(l));
  return lp;
}

void ArdStationaryKernel::set_log_params(std::span<const double> lp) {
  if (lp.size() != param_count()) {
    throw std::invalid_argument("set_log_params: size mismatch");
  }
  signal_stddev_ = std::exp(lp[0]);
  for (std::size_t d = 0; d < lengthscales_.size(); ++d) {
    lengthscales_[d] = std::exp(lp[d + 1]);
  }
}

void ArdStationaryKernel::set_signal_stddev(double s) {
  if (!(s > 0.0)) {
    throw std::invalid_argument("set_signal_stddev: must be positive");
  }
  signal_stddev_ = s;
}

void ArdStationaryKernel::set_lengthscale(std::size_t dim, double l) {
  if (dim >= lengthscales_.size()) {
    throw std::out_of_range("set_lengthscale: bad dimension");
  }
  if (!(l > 0.0)) {
    throw std::invalid_argument("set_lengthscale: must be positive");
  }
  lengthscales_[dim] = l;
}

double ArdStationaryKernel::scaled_distance(std::span<const double> a,
                                            std::span<const double> b) const {
  if (a.size() != lengthscales_.size() || b.size() != lengthscales_.size()) {
    throw std::invalid_argument("kernel: input dimension mismatch");
  }
  double r2 = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double s = (a[d] - b[d]) / lengthscales_[d];
    r2 += s * s;
  }
  return std::sqrt(r2);
}

double ArdStationaryKernel::operator()(std::span<const double> a,
                                       std::span<const double> b) const {
  return signal_variance() * radial(scaled_distance(a, b));
}

double SquaredExponentialKernel::radial(double r) const {
  return std::exp(-0.5 * r * r);
}

std::unique_ptr<Kernel> SquaredExponentialKernel::clone() const {
  return std::make_unique<SquaredExponentialKernel>(*this);
}

double Matern32Kernel::radial(double r) const {
  const double s = std::sqrt(3.0) * r;
  return (1.0 + s) * std::exp(-s);
}

std::unique_ptr<Kernel> Matern32Kernel::clone() const {
  return std::make_unique<Matern32Kernel>(*this);
}

double Matern52Kernel::radial(double r) const {
  const double s = std::sqrt(5.0) * r;
  return (1.0 + s + s * s / 3.0) * std::exp(-s);
}

std::unique_ptr<Kernel> Matern52Kernel::clone() const {
  return std::make_unique<Matern52Kernel>(*this);
}

}  // namespace mlcd::gp
