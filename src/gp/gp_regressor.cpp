#include "gp/gp_regressor.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "gp/nelder_mead.hpp"
#include "util/logging.hpp"

namespace mlcd::gp {
namespace {

/// Pivot-conditioning floor for the incremental border: below this ratio
/// the new point is (numerically) a duplicate and the full refit's
/// escalating jitter is the safe route.
constexpr double kMinBorderPivotRatio = 1e-12;

/// Fit versions are unique across all GpRegressor instances so a
/// PredictCache can never be validated against the wrong surrogate.
std::uint64_t next_fit_version() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

}  // namespace

double Prediction::stddev() const { return std::sqrt(std::max(variance, 0.0)); }

GpRegressor::GpRegressor(std::unique_ptr<Kernel> kernel, GpOptions options)
    : kernel_(std::move(kernel)),
      options_(options),
      noise_stddev_(options.noise_stddev) {
  if (!kernel_) {
    throw std::invalid_argument("GpRegressor: null kernel");
  }
  if (!(noise_stddev_ > 0.0)) {
    throw std::invalid_argument("GpRegressor: noise_stddev must be > 0");
  }
}

GpRegressor::GpRegressor(const GpRegressor& other)
    : kernel_(other.kernel_->clone()),
      options_(other.options_),
      noise_stddev_(other.noise_stddev_),
      x_(other.x_),
      y_raw_(other.y_raw_),
      y_(other.y_),
      noise_multipliers_(other.noise_multipliers_),
      y_mean_(other.y_mean_),
      y_scale_(other.y_scale_),
      factor_(other.factor_),
      alpha_(other.alpha_),
      w_(other.w_),
      fit_version_(other.fit_version_),
      adds_since_refit_(other.adds_since_refit_),
      lml_per_obs_at_refit_(other.lml_per_obs_at_refit_) {}

GpRegressor& GpRegressor::operator=(const GpRegressor& other) {
  if (this == &other) return *this;
  kernel_ = other.kernel_->clone();
  options_ = other.options_;
  noise_stddev_ = other.noise_stddev_;
  x_ = other.x_;
  y_raw_ = other.y_raw_;
  y_ = other.y_;
  noise_multipliers_ = other.noise_multipliers_;
  y_mean_ = other.y_mean_;
  y_scale_ = other.y_scale_;
  factor_ = other.factor_;
  alpha_ = other.alpha_;
  w_ = other.w_;
  fit_version_ = other.fit_version_;
  adds_since_refit_ = other.adds_since_refit_;
  lml_per_obs_at_refit_ = other.lml_per_obs_at_refit_;
  return *this;
}

std::size_t GpRegressor::input_dim() const noexcept { return x_.cols(); }

bool GpRegressor::homoscedastic_noise() const noexcept {
  for (const double m : noise_multipliers_) {
    if (m != 1.0) return false;
  }
  return true;
}

void GpRegressor::fit(const linalg::Matrix& x, const linalg::Vector& y) {
  fit(x, y, linalg::Vector(y.size(), 1.0));
}

void GpRegressor::fit(const linalg::Matrix& x, const linalg::Vector& y,
                      const linalg::Vector& noise_multipliers) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    throw std::invalid_argument("GpRegressor::fit: shape mismatch");
  }
  if (noise_multipliers.size() != y.size()) {
    throw std::invalid_argument(
        "GpRegressor::fit: noise_multipliers size mismatch");
  }
  for (const double m : noise_multipliers) {
    if (!(m > 0.0) || !std::isfinite(m)) {
      throw std::invalid_argument(
          "GpRegressor::fit: noise multipliers must be finite and > 0");
    }
  }
  x_ = x;
  y_raw_ = y;
  noise_multipliers_ = noise_multipliers;

  // Target normalization.
  y_mean_ = 0.0;
  y_scale_ = 1.0;
  if (options_.normalize_targets) {
    for (double v : y_raw_) y_mean_ += v;
    y_mean_ /= static_cast<double>(y_raw_.size());
    double ss = 0.0;
    for (double v : y_raw_) ss += (v - y_mean_) * (v - y_mean_);
    const double sd = std::sqrt(ss / static_cast<double>(y_raw_.size()));
    y_scale_ = sd > 1e-12 ? sd : 1.0;
  }
  y_.resize(y_raw_.size());
  for (std::size_t i = 0; i < y_raw_.size(); ++i) {
    y_[i] = (y_raw_[i] - y_mean_) / y_scale_;
  }

  if (options_.optimize_hyperparameters &&
      static_cast<int>(y_.size()) >=
          std::max(3, options_.hyperopt_min_obs)) {
    optimize_hyperparameters();
  }
  const double lml = refit_with_current_params();
  if (!std::isfinite(lml)) {
    throw std::runtime_error(
        "GpRegressor::fit: covariance factorization failed");
  }
  adds_since_refit_ = 0;
  fit_version_ = next_fit_version();
  lml_per_obs_at_refit_ = lml / static_cast<double>(y_.size());
}

double GpRegressor::refit_with_current_params() {
  const std::size_t n = x_.rows();
  linalg::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = (*kernel_)(x_.row(i), x_.row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  if (homoscedastic_noise()) {
    // Bit-exact legacy path: every multi-fidelity-free fit lands here.
    k.add_to_diagonal(noise_stddev_ * noise_stddev_);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const double m = noise_multipliers_[i];
      k(i, i) += noise_stddev_ * noise_stddev_ * m * m;
    }
  }

  try {
    factor_.emplace(k);
  } catch (const std::runtime_error&) {
    factor_.reset();
    return -std::numeric_limits<double>::infinity();
  }
  w_ = factor_->solve_lower(y_);
  alpha_ = factor_->solve_lower_transpose(w_);

  const double fit_term = -0.5 * linalg::dot(y_, alpha_);
  const double complexity_term = -0.5 * factor_->log_determinant();
  const double norm_term = -0.5 * static_cast<double>(n) *
                           std::log(2.0 * std::numbers::pi);
  return fit_term + complexity_term + norm_term;
}

void GpRegressor::optimize_hyperparameters() {
  // Parameter vector: kernel log-params followed by log noise stddev.
  std::vector<double> start = kernel_->log_params();
  start.push_back(std::log(noise_stddev_));

  const std::size_t nparams = start.size();
  if (!options_.log_param_lower.empty() &&
      options_.log_param_lower.size() != nparams) {
    throw std::invalid_argument(
        "GpOptions::log_param_lower size must match param count");
  }
  if (!options_.log_param_upper.empty() &&
      options_.log_param_upper.size() != nparams) {
    throw std::invalid_argument(
        "GpOptions::log_param_upper size must match param count");
  }

  auto objective = [this](const std::vector<double>& p) {
    // Reject pathological or out-of-bounds scales early; keeps Cholesky
    // jitter rare and stops the MLE collapsing to flat overconfident fits.
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double v = p[i];
      const double lo = options_.log_param_lower.empty()
                            ? -12.0
                            : options_.log_param_lower[i];
      const double hi = options_.log_param_upper.empty()
                            ? 12.0
                            : options_.log_param_upper[i];
      if (!std::isfinite(v) || v < lo || v > hi) {
        return std::numeric_limits<double>::infinity();
      }
    }
    kernel_->set_log_params(
        std::span<const double>(p.data(), p.size() - 1));
    noise_stddev_ = std::exp(p.back());
    return -refit_with_current_params();
  };

  if (!options_.log_param_lower.empty()) {
    for (std::size_t i = 0; i < start.size(); ++i) {
      start[i] = std::max(start[i], options_.log_param_lower[i]);
    }
  }
  if (!options_.log_param_upper.empty()) {
    for (std::size_t i = 0; i < start.size(); ++i) {
      start[i] = std::min(start[i], options_.log_param_upper[i]);
    }
  }

  std::vector<double> best_x = start;
  double best_value = objective(start);

  // Deterministic multi-start: perturb each restart with a fixed pattern
  // so fits are reproducible without threading an Rng through here.
  for (int restart = 0; restart < options_.optimizer_restarts; ++restart) {
    std::vector<double> s = start;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const double delta =
          0.5 * static_cast<double>(restart) *
          ((i + restart) % 2 == 0 ? 1.0 : -1.0);
      s[i] += delta;
    }
    const NelderMeadResult r = nelder_mead(objective, s);
    if (r.value < best_value) {
      best_value = r.value;
      best_x = r.x;
    }
  }

  kernel_->set_log_params(
      std::span<const double>(best_x.data(), best_x.size() - 1));
  noise_stddev_ = std::exp(best_x.back());
  MLCD_LOG(kDebug, "gp") << "hyperparameter MLE: -lml=" << best_value
                         << " noise=" << noise_stddev_;
}

void GpRegressor::add_observation(std::span<const double> x, double y) {
  add_observation(x, y, 1.0);
}

void GpRegressor::add_observation(std::span<const double> x, double y,
                                  double noise_multiplier) {
  if (!factor_) {
    throw std::logic_error("GpRegressor::add_observation: call fit() first");
  }
  if (x.size() != x_.cols()) {
    throw std::invalid_argument(
        "GpRegressor::add_observation: dimension mismatch");
  }
  if (!(noise_multiplier > 0.0) || !std::isfinite(noise_multiplier)) {
    throw std::invalid_argument(
        "GpRegressor::add_observation: noise multiplier must be finite "
        "and > 0");
  }

  // Grow the stored design matrix and raw targets.
  linalg::Matrix grown(x_.rows() + 1, x_.cols());
  for (std::size_t r = 0; r < x_.rows(); ++r) {
    for (std::size_t c = 0; c < x_.cols(); ++c) grown(r, c) = x_(r, c);
  }
  for (std::size_t c = 0; c < x_.cols(); ++c) {
    grown(x_.rows(), c) = x[c];
  }
  linalg::Vector y_grown = y_raw_;
  y_grown.push_back(y);
  linalg::Vector m_grown = noise_multipliers_;
  m_grown.push_back(noise_multiplier);

  // Hyperparameters and the target normalization are functions of the
  // whole data set; on the retune schedule a full refit is the correct
  // update. When both are static there is nothing to retune and the
  // incremental path is exact regardless of the schedule.
  const bool params_static = !options_.optimize_hyperparameters &&
                             !options_.normalize_targets;
  const bool scheduled_refit =
      !params_static &&
      (options_.refit_every == 1 ||
       (options_.refit_every > 1 &&
        adds_since_refit_ + 1 >= options_.refit_every));
  if (scheduled_refit) {
    fit(grown, y_grown, m_grown);
    return;
  }

  // Incremental path: border the Cholesky factor with the new point's
  // covariance column and refresh alpha (one triangular solve plus an
  // O(n) forward-solve append, O(n²) total). Hyperparameters and the
  // normalization constants stay frozen until the next scheduled retune.
  const std::size_t n = x_.rows();
  linalg::Vector col(n);
  for (std::size_t i = 0; i < n; ++i) {
    col[i] = (*kernel_)(x_.row(i), x);
  }
  const double diag =
      noise_multiplier == 1.0
          ? (*kernel_)(x, x) + noise_stddev_ * noise_stddev_ +
                factor_->jitter()
          : (*kernel_)(x, x) +
                noise_stddev_ * noise_stddev_ * noise_multiplier *
                    noise_multiplier +
                factor_->jitter();
  if (!factor_->try_extend(col, diag, kMinBorderPivotRatio)) {
    // Tolerance-checked fallback: the border is numerically unsafe
    // (typically a near-duplicate point); the full refit reapplies the
    // escalating-jitter factorization.
    MLCD_LOG(kDebug, "gp")
        << "incremental update rejected (ill-conditioned border), "
           "falling back to full refit";
    fit(grown, y_grown, m_grown);
    return;
  }

  x_ = std::move(grown);
  y_raw_ = std::move(y_grown);
  noise_multipliers_ = std::move(m_grown);
  y_.push_back((y_raw_.back() - y_mean_) / y_scale_);
  factor_->extend_solve_lower(w_, y_);
  alpha_ = factor_->solve_lower_transpose(w_);
  ++adds_since_refit_;

  if (!params_static && options_.refit_evidence_drop > 0.0) {
    const double per_obs =
        log_marginal_likelihood() / static_cast<double>(y_.size());
    if (per_obs < lml_per_obs_at_refit_ - options_.refit_evidence_drop) {
      // Evidence drop: the frozen hyperparameters stopped explaining the
      // data; retune off-schedule.
      MLCD_LOG(kDebug, "gp")
          << "evidence drop (" << per_obs << " vs "
          << lml_per_obs_at_refit_ << " nats/obs at last retune), "
             "refitting early";
      refit_full(true);
    }
  }
}

void GpRegressor::refit_full(bool retune_hyperparameters) {
  if (!factor_) {
    throw std::logic_error("GpRegressor::refit_full: call fit() first");
  }
  if (retune_hyperparameters) {
    const linalg::Matrix x = x_;
    const linalg::Vector y = y_raw_;
    const linalg::Vector m = noise_multipliers_;
    fit(x, y, m);
    return;
  }
  const double lml = refit_with_current_params();
  if (!std::isfinite(lml)) {
    throw std::runtime_error(
        "GpRegressor::refit_full: covariance factorization failed");
  }
  adds_since_refit_ = 0;
  fit_version_ = next_fit_version();
  lml_per_obs_at_refit_ = lml / static_cast<double>(y_.size());
}

Prediction GpRegressor::predict(std::span<const double> x) const {
  if (!factor_) {
    throw std::logic_error("GpRegressor::predict: call fit() first");
  }
  if (x.size() != x_.cols()) {
    throw std::invalid_argument("GpRegressor::predict: dimension mismatch");
  }
  const std::size_t n = x_.rows();
  linalg::Vector k_star(n);
  for (std::size_t i = 0; i < n; ++i) {
    k_star[i] = (*kernel_)(x_.row(i), x);
  }

  const double mean_normalized = linalg::dot(k_star, alpha_);
  const linalg::Vector v = factor_->solve_lower(k_star);
  const double prior_var = (*kernel_)(x, x);
  double variance_normalized = prior_var - linalg::dot(v, v);
  variance_normalized = std::max(variance_normalized, 0.0);

  Prediction p;
  p.mean = mean_normalized * y_scale_ + y_mean_;
  p.variance = variance_normalized * y_scale_ * y_scale_;
  return p;
}

Prediction GpRegressor::predict_cached(std::span<const double> x,
                                       PredictCache& cache) const {
  if (!factor_) {
    throw std::logic_error("GpRegressor::predict_cached: call fit() first");
  }
  if (x.size() != x_.cols()) {
    throw std::invalid_argument(
        "GpRegressor::predict_cached: dimension mismatch");
  }
  const std::size_t n = x_.rows();
  if (cache.fit_version != fit_version_ || cache.k_star.size() > n) {
    cache.k_star.clear();
    cache.v.clear();
    cache.fit_version = fit_version_;
  }
  // Append kernel entries for the observations that arrived since this
  // cache was last used, then extend v = L⁻¹ k_star by the same rows.
  for (std::size_t i = cache.k_star.size(); i < n; ++i) {
    cache.k_star.push_back((*kernel_)(x_.row(i), x));
  }
  factor_->extend_solve_lower(cache.v, cache.k_star);

  const double mean_normalized = linalg::dot(cache.v, w_);
  const double prior_var = (*kernel_)(x, x);
  double variance_normalized = prior_var - linalg::dot(cache.v, cache.v);
  variance_normalized = std::max(variance_normalized, 0.0);

  Prediction p;
  p.mean = mean_normalized * y_scale_ + y_mean_;
  p.variance = variance_normalized * y_scale_ * y_scale_;
  return p;
}

double GpRegressor::log_marginal_likelihood() const {
  if (!factor_) {
    throw std::logic_error(
        "GpRegressor::log_marginal_likelihood: call fit() first");
  }
  const double fit_term = -0.5 * linalg::dot(y_, alpha_);
  const double complexity_term = -0.5 * factor_->log_determinant();
  const double norm_term = -0.5 * static_cast<double>(y_.size()) *
                           std::log(2.0 * std::numbers::pi);
  return fit_term + complexity_term + norm_term;
}

}  // namespace mlcd::gp
