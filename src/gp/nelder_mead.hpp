// Derivative-free Nelder–Mead simplex minimizer.
//
// Used for GP hyperparameter maximum-likelihood estimation in log space
// (a smooth, low-dimensional, cheap-to-evaluate objective — exactly the
// regime where Nelder–Mead is adequate and a gradient implementation
// would add complexity without benefit at n <= ~5 parameters).
#pragma once

#include <functional>
#include <vector>

namespace mlcd::gp {

struct NelderMeadOptions {
  int max_iterations = 400;
  /// Converged when both the simplex function-value spread and the
  /// simplex diameter fall below these.
  double f_tolerance = 1e-9;
  double x_tolerance = 1e-7;
  /// Initial simplex edge length relative to each start coordinate
  /// (absolute when the coordinate is ~0).
  double initial_step = 0.25;
};

struct NelderMeadResult {
  std::vector<double> x;    ///< best point found
  double value = 0.0;       ///< objective at x
  int iterations = 0;       ///< iterations used
  bool converged = false;   ///< tolerances met before max_iterations
};

/// Minimizes `objective` starting at `start`. The objective may return
/// +inf (or NaN, treated as +inf) to reject infeasible points.
/// Throws std::invalid_argument for an empty start point.
NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& start, const NelderMeadOptions& options = {});

}  // namespace mlcd::gp
