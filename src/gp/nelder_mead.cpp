#include "gp/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mlcd::gp {
namespace {

double safe_eval(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& x) {
  const double v = objective(x);
  return std::isnan(v) ? std::numeric_limits<double>::infinity() : v;
}

}  // namespace

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& start, const NelderMeadOptions& options) {
  const std::size_t n = start.size();
  if (n == 0) {
    throw std::invalid_argument("nelder_mead: empty start point");
  }

  // Standard coefficients: reflection, expansion, contraction, shrink.
  constexpr double alpha = 1.0;
  constexpr double gamma = 2.0;
  constexpr double rho = 0.5;
  constexpr double sigma = 0.5;

  std::vector<std::vector<double>> simplex(n + 1, start);
  for (std::size_t i = 0; i < n; ++i) {
    double& coord = simplex[i + 1][i];
    coord += (std::abs(coord) > 1e-12) ? options.initial_step * coord
                                       : options.initial_step;
  }

  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    values[i] = safe_eval(objective, simplex[i]);
  }

  NelderMeadResult result;
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Order vertices by objective value.
    std::vector<std::size_t> order(n + 1);
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return values[a] < values[b];
              });
    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];

    // Convergence: value spread and simplex size.
    double diameter = 0.0;
    for (std::size_t i = 0; i <= n; ++i) {
      double d = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        d = std::max(d, std::abs(simplex[i][k] - simplex[best][k]));
      }
      diameter = std::max(diameter, d);
    }
    if (std::abs(values[worst] - values[best]) < options.f_tolerance &&
        diameter < options.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t k = 0; k < n; ++k) centroid[k] += simplex[i][k];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coeff) {
      std::vector<double> p(n);
      for (std::size_t k = 0; k < n; ++k) {
        p[k] = centroid[k] + coeff * (simplex[worst][k] - centroid[k]);
      }
      return p;
    };

    const std::vector<double> reflected = blend(-alpha);
    const double f_reflected = safe_eval(objective, reflected);

    if (f_reflected < values[best]) {
      const std::vector<double> expanded = blend(-gamma);
      const double f_expanded = safe_eval(objective, expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        values[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        values[worst] = f_reflected;
      }
      continue;
    }
    if (f_reflected < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = f_reflected;
      continue;
    }

    const std::vector<double> contracted = blend(rho);
    const double f_contracted = safe_eval(objective, contracted);
    if (f_contracted < values[worst]) {
      simplex[worst] = contracted;
      values[worst] = f_contracted;
      continue;
    }

    // Shrink toward the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t k = 0; k < n; ++k) {
        simplex[i][k] =
            simplex[best][k] + sigma * (simplex[i][k] - simplex[best][k]);
      }
      values[i] = safe_eval(objective, simplex[i]);
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (values[i] < values[best]) best = i;
  }
  result.x = simplex[best];
  result.value = values[best];
  result.iterations = iter;
  return result;
}

}  // namespace mlcd::gp
