// Probe admission/reuse hook: the profiler-side seam the multi-tenant
// search service plugs into (src/service/).
//
// A fleet of concurrent deployment searches probes the *same* catalog of
// deployments over and over — HeterBO alone opens every search with one
// single-node probe per instance type — so identical probes are measured
// once and reused, and the simulated nodes a live probe occupies are
// drawn from a shared capacity pool. Both concerns meet the profiler at
// the same point (the moment a probe is about to launch), so they share
// one gate interface:
//
//   admit()   — called before a live probe launches. May return the
//               journal-record image of an identical probe measured
//               earlier (a cache hit: nothing launches, no capacity is
//               consumed, the record is re-accounted exactly like a
//               journal-resume replay), or block until the deployment's
//               nodes fit the capacity pool and return nullopt.
//   publish() — called after a live probe completes: releases the
//               capacity admit() acquired and offers the outcome to the
//               shared cache for future jobs.
//   abandon() — error path: releases capacity without publishing.
//
// The soundness contract is carried by ProbeKey: it fingerprints every
// input of the probe computation — the job-invariant substrate (model,
// platform, catalog, market, profiler knobs, seed) plus a running hash
// of the job's entire prior probe sequence. All profiler state (the
// measurement RNG, the fault stream position, the billing meter, the
// profiling clock) is a deterministic function of those inputs, so two
// jobs holding the same key would measure bit-identical outcomes —
// which is what lets a cache hit replace a live probe without breaking
// the solo-vs-batch trace-identity invariant (docs/service.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "cloud/deployment.hpp"
#include "journal/journal.hpp"
#include "profiler/fidelity.hpp"

namespace mlcd::profiler {

/// Identity of one probe computation. Equal keys => bit-identical
/// outcomes (see the contract above). The requested fidelity is part of
/// the key: a low-fidelity measurement of a deployment must never be
/// served where a full-fidelity one was requested (or vice versa, or
/// across different rungs) — the two are different computations with
/// different cost, noise, and bias.
struct ProbeKey {
  /// Job-invariant fingerprint: model, platform, topology, seed,
  /// max_nodes, market, catalog hash, profiler-options hash.
  std::uint64_t substrate = 0;
  /// Running hash of every prior probe of this job (deployment +
  /// outcome), journal-replayed and cache-served probes included.
  std::uint64_t history = 0;
  /// 1-based position of this probe in the job's probe sequence.
  int probe_index = 0;
  std::size_t type_index = 0;
  int nodes = 0;
  /// Requested probe fidelity (Fidelity{} = full).
  double sample_fraction = 1.0;
  int iteration_tier = 0;

  bool operator==(const ProbeKey&) const = default;
};

struct ProbeKeyHash {
  std::size_t operator()(const ProbeKey& key) const noexcept;
};

/// Probe admission hook. Implementations must be safe to call from many
/// search sessions concurrently (each session calls it serially).
class ProbeGate {
 public:
  virtual ~ProbeGate() = default;

  /// Cache lookup + capacity admission for the probe identified by
  /// `key`. A returned record is served instead of launching anything;
  /// nullopt means the probe was admitted (capacity for `d.nodes`
  /// acquired where a pool is configured) and must be followed by
  /// exactly one publish() or abandon() for the same deployment.
  virtual std::optional<journal::ProbeRecord> admit(
      const ProbeKey& key, const cloud::Deployment& d) = 0;

  /// Completes an admitted probe: releases its capacity and offers the
  /// measurement to the shared cache (first writer wins).
  virtual void publish(const ProbeKey& key, const cloud::Deployment& d,
                       const journal::ProbeRecord& outcome) = 0;

  /// Releases an admitted probe's capacity without publishing (the
  /// probe threw); must not throw.
  virtual void abandon(const cloud::Deployment& d) noexcept = 0;
};

}  // namespace mlcd::profiler
