#include "profiler/fidelity.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "journal/journal.hpp"

namespace mlcd::profiler {

double fidelity_window_fraction(int iteration_tier) noexcept {
  return std::pow(0.5, iteration_tier);
}

std::uint64_t hash_fidelity_ladder(const FidelityOptions& options) noexcept {
  if (!options.enabled()) return 0;
  journal::HashStream h;
  h.mix(static_cast<std::uint64_t>(options.rungs.size()));
  for (const Fidelity& rung : options.rungs) {
    h.mix(rung.sample_fraction).mix(rung.iteration_tier);
  }
  h.mix(options.max_speed_bias).mix(options.max_extra_noise);
  const std::uint64_t digest = h.digest();
  // 0 is reserved for "no ladder" (version-1 headers); remap the
  // astronomically unlikely collision instead of aliasing it.
  return digest != 0 ? digest : 1;
}

std::vector<Fidelity> parse_fidelity_rungs(const std::string& spec) {
  const auto fail = [&](const std::string& why) -> void {
    throw std::invalid_argument("invalid fidelity ladder '" + spec + "': " +
                                why + " (expected e.g. \"0.5:1,0.25:2\")");
  };
  std::vector<Fidelity> rungs;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string rung_spec = spec.substr(pos, comma - pos);
    const std::size_t colon = rung_spec.find(':');
    if (rung_spec.empty() || colon == std::string::npos ||
        colon + 1 >= rung_spec.size()) {
      fail("each rung must be <sample_fraction>:<iteration_tier>");
    }
    Fidelity rung;
    try {
      std::size_t used = 0;
      rung.sample_fraction = std::stod(rung_spec.substr(0, colon), &used);
      if (used != colon) fail("malformed sample fraction");
      const std::string tier_spec = rung_spec.substr(colon + 1);
      rung.iteration_tier = std::stoi(tier_spec, &used);
      if (used != tier_spec.size()) fail("malformed iteration tier");
    } catch (const std::invalid_argument&) {
      fail("non-numeric rung");
    } catch (const std::out_of_range&) {
      fail("rung out of range");
    }
    if (!(rung.sample_fraction > 0.0) || rung.sample_fraction > 1.0) {
      fail("sample fraction must be in (0, 1]");
    }
    if (rung.iteration_tier < 0 || rung.iteration_tier > 8) {
      fail("iteration tier must be in [0, 8]");
    }
    if (rung.is_full()) {
      fail("the full-fidelity rung is implicit and must not be listed");
    }
    rungs.push_back(rung);
    pos = comma + 1;
  }
  if (rungs.empty()) fail("ladder is empty");
  return rungs;
}

std::string format_fidelity_rungs(const std::vector<Fidelity>& rungs) {
  std::string out;
  for (const Fidelity& rung : rungs) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g:%d", rung.sample_fraction,
                  rung.iteration_tier);
    if (!out.empty()) out += ',';
    out += buf;
  }
  return out;
}

}  // namespace mlcd::profiler
