// The MLCD Profiler (paper §IV).
//
// Executes a short training run on a candidate deployment and reports the
// measured throughput together with what the probe cost. Time accounting
// follows the paper's evaluation protocol (§V-A): a single-node probe
// takes 10 minutes including cluster setup and warm-up, plus 1 minute for
// every 3 additional nodes. For statistical stability the profiler
// monitors throughput across iterations and extends the measurement
// window while the coefficient of variation stays high.
//
// Measurements are the *only* noisy quantity in the substrate: the
// performance model's true_speed is deterministic and the profiler
// perturbs each iteration with seeded lognormal noise.
#pragma once

#include <cstdint>
#include <string>

#include "cloud/billing.hpp"
#include "cloud/deployment.hpp"
#include "perf/perf_model.hpp"
#include "util/rng.hpp"

namespace mlcd::profiler {

struct ProfilerOptions {
  /// Wall time of a single-node probe including setup/warm-up, hours.
  double base_profile_hours = 10.0 / 60.0;
  /// Additional wall time per 3 extra nodes, hours.
  double extra_hours_per_3_nodes = 1.0 / 60.0;
  /// Iterations measured inside one probe window.
  int iterations = 20;
  /// The probe window must contain at least this many training
  /// iterations to be meaningful; when a model's iteration takes so long
  /// that the base window cannot fit them (huge models on small
  /// deployments), the window — and the bill — stretches accordingly.
  /// This is the second face of heterogeneous profiling cost: probing a
  /// 20B-parameter model is expensive *everywhere*.
  int min_window_iterations = 10;
  /// Per-iteration multiplicative noise (lognormal sigma).
  double noise_sigma = 0.03;
  /// Extend the window while the across-iteration coefficient of
  /// variation exceeds this.
  double cov_threshold = 0.08;
  /// Maximum number of window extensions.
  int max_extensions = 3;
  /// Wall time added per extension, hours.
  double extension_hours = 2.0 / 60.0;
  /// Probability that a probe fails operationally (cluster launch
  /// failure, instance revocation mid-window). A failed probe yields no
  /// measurement but still bills roughly half the window — failures on a
  /// real cloud are not free. 0 disables injection.
  double failure_rate = 0.0;
};

/// Outcome of one profiling probe.
struct ProfileResult {
  cloud::Deployment deployment;
  bool failed = false;          ///< transient operational failure (retryable)
  bool feasible = false;        ///< false when the model cannot run there
  double measured_speed = 0.0;  ///< samples/s (mean over iterations)
  double true_speed = 0.0;      ///< substrate ground truth (diagnostics)
  double profile_hours = 0.0;   ///< wall time consumed by the probe
  double profile_cost = 0.0;    ///< dollars billed for the probe
  int iterations = 0;           ///< iterations actually measured
  int extensions = 0;           ///< stability extensions performed
};

/// Profiles deployments against the simulated substrate, charging every
/// probe to the supplied billing meter.
class Profiler {
 public:
  Profiler(const perf::TrainingPerfModel& perf,
           const cloud::DeploymentSpace& space, cloud::BillingMeter& meter,
           std::uint64_t seed, ProfilerOptions options = {});

  /// Runs one probe. Infeasible deployments still consume (and bill) the
  /// base probe time — discovering that a model does not fit costs real
  /// money on a real cloud too.
  ProfileResult profile(const perf::TrainingConfig& config,
                        const cloud::Deployment& d);

  /// Deterministic expected wall time of probing `d` (the quantity
  /// HeterBO's penalty terms use), hours — the paper's t(m, n). Includes
  /// the window stretch needed to fit min_window_iterations of the given
  /// model (static arithmetic on model FLOPs and instance specs — no
  /// profiling required to estimate it).
  double expected_profile_hours(const perf::TrainingConfig& config,
                                const cloud::Deployment& d) const;

  /// Expected dollar cost of probing `d` — the paper's PL_C
  /// = P(m) * n * t(m, n).
  double expected_profile_cost(const perf::TrainingConfig& config,
                               const cloud::Deployment& d) const;

  const ProfilerOptions& options() const noexcept { return options_; }
  int probes_performed() const noexcept { return probes_; }

 private:
  const perf::TrainingPerfModel* perf_;
  const cloud::DeploymentSpace* space_;
  cloud::BillingMeter* meter_;
  util::Rng rng_;
  ProfilerOptions options_;
  int probes_ = 0;
};

}  // namespace mlcd::profiler
