// The MLCD Profiler (paper §IV).
//
// Executes a short training run on a candidate deployment and reports the
// measured throughput together with what the probe cost. Time accounting
// follows the paper's evaluation protocol (§V-A): a single-node probe
// takes 10 minutes including cluster setup and warm-up, plus 1 minute for
// every 3 additional nodes. For statistical stability the profiler
// monitors throughput across iterations and extends the measurement
// window while the coefficient of variation stays high.
//
// Measurements are the *only* noisy quantity in the substrate: the
// performance model's true_speed is deterministic and the profiler
// perturbs each iteration with seeded lognormal noise.
//
// Operational faults are injected through a cloud::FaultModel and
// recovered from with a cloud::RetryPolicy: each probe launches up to
// max_attempts clusters, every failed attempt bills the meter and the
// clock (a real cloud charges for the nodes that came up), and backoff
// delays between attempts charge the deadline clock only. The fault
// model draws from its own seeded stream, so a fault-free configuration
// is bit-identical to a profiler without the fault layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/deployment.hpp"
#include "cloud/fault_model.hpp"
#include "journal/journal.hpp"
#include "perf/perf_model.hpp"
#include "profiler/fidelity.hpp"
#include "profiler/probe_gate.hpp"
#include "util/rng.hpp"

namespace mlcd::profiler {

struct ProfilerOptions {
  /// Wall time of a single-node probe including setup/warm-up, hours.
  double base_profile_hours = 10.0 / 60.0;
  /// Additional wall time per 3 extra nodes, hours.
  double extra_hours_per_3_nodes = 1.0 / 60.0;
  /// Iterations measured inside one probe window.
  int iterations = 20;
  /// The probe window must contain at least this many training
  /// iterations to be meaningful; when a model's iteration takes so long
  /// that the base window cannot fit them (huge models on small
  /// deployments), the window — and the bill — stretches accordingly.
  /// This is the second face of heterogeneous profiling cost: probing a
  /// 20B-parameter model is expensive *everywhere*.
  int min_window_iterations = 10;
  /// Per-iteration multiplicative noise (lognormal sigma).
  double noise_sigma = 0.03;
  /// Extend the window while the across-iteration coefficient of
  /// variation exceeds this.
  double cov_threshold = 0.08;
  /// Maximum number of window extensions.
  int max_extensions = 3;
  /// Wall time added per extension, hours.
  double extension_hours = 2.0 / 60.0;
  /// The fidelity ladder low-cost exploratory probes may descend (see
  /// fidelity.hpp). Empty (the default) disables multi-fidelity: every
  /// probe runs at full fidelity and the profiler is bit-identical to
  /// the single-fidelity engine.
  FidelityOptions fidelity;
  /// Operational hazards injected per launch attempt.
  cloud::FaultModelOptions faults;
  /// Recovery discipline when an attempt fails.
  cloud::RetryPolicy retry;
  /// Seed of the fault stream; 0 derives one from the profiler seed.
  std::uint64_t fault_seed = 0;
  /// Probe watchdog: simulated wall-hours deadline per launch attempt.
  /// An attempt whose window would run longer than this is killed at the
  /// deadline and surfaces as a retryable FaultKind::kProbeTimeout that
  /// bills the elapsed (capped) window — the loop never stalls on a
  /// straggler-stretched or runaway probe, and the reserve still pays
  /// for the time the cluster ran. 0 disables. Timeouts are retried per
  /// `retry` even when no cloud faults are configured.
  double probe_attempt_timeout_hours = 0.0;
  /// Probe watchdog, real-time face: wall-clock seconds the measurement
  /// computation itself may take before the attempt is abandoned (for
  /// hangs in the measurement path, not the simulated cluster). Runs the
  /// measurement under util::ThreadPool::run_with_deadline with a
  /// self-contained state block. 0 disables (the default — when enabled,
  /// an expiry depends on host speed, so bit-identical traces across
  /// machines are only guaranteed while it never fires).
  double watchdog_wall_seconds = 0.0;
};

/// What to probe, and how hard: the single entry point of
/// Profiler::profile. Strategies propose (deployment, fidelity) jointly
/// — a cheap low-fidelity sweep of a deployment and its full-fidelity
/// confirmation are different probes with different cost and different
/// information content.
struct ProbeRequest {
  cloud::Deployment deployment;
  Fidelity fidelity{};  ///< default: a full-fidelity probe
};

/// Outcome of one profiling probe.
struct ProfileResult {
  cloud::Deployment deployment;
  /// The fidelity the probe ran at (echoed from the request).
  Fidelity fidelity{};
  bool failed = false;          ///< all launch attempts failed (retryable)
  bool feasible = false;        ///< false when the model cannot run there
  double measured_speed = 0.0;  ///< samples/s (mean over iterations)
  double true_speed = 0.0;      ///< substrate ground truth (diagnostics)
  double profile_hours = 0.0;   ///< wall time consumed, incl. retries+backoff
  double profile_cost = 0.0;    ///< dollars billed across all attempts
  int iterations = 0;           ///< iterations actually measured
  int extensions = 0;           ///< stability extensions performed
  int attempts = 1;             ///< launch attempts made (>= 1)
  /// Fault on the final attempt: kNone for a clean success, kStraggler
  /// for a stretched success, otherwise why the probe ultimately failed.
  cloud::FaultKind fault = cloud::FaultKind::kNone;
  double backoff_hours = 0.0;   ///< retry delays (clock only, never billed)
  /// Per-attempt accounting; profile_cost == sum of attempt costs.
  std::vector<cloud::AttemptRecord> attempt_log;
  /// True when this result was served from a resume journal instead of
  /// executing the probe (spend re-accounted, nothing re-run).
  bool replayed = false;
};

/// Fingerprint of every profiler knob (fault hazards, retry policy,
/// watchdog deadlines, noise, fidelity ladder): the journal header and
/// the service's probe-cache keys both refuse to match runs whose knobs
/// differ. The fidelity ladder is mixed only when enabled, so digests
/// of ladder-free configurations are stable across engine versions.
std::uint64_t hash_options(const ProfilerOptions& options) noexcept;

/// Expected optimistic throughput bias of a probe at `fidelity`:
/// measured_speed over-estimates true throughput by a factor of
/// (1 + bias). Exactly 0.0 at full fidelity.
double fidelity_speed_bias(const ProfilerOptions& options,
                           const Fidelity& fidelity) noexcept;

/// Measurement-noise inflation of a probe at `fidelity` relative to a
/// full-fidelity probe (sigma ratio x sqrt of the iteration-count
/// ratio) — the per-observation noise multiplier the search's GP uses
/// to de-weight cheap observations (TrimTuner's heteroscedastic
/// treatment). Exactly 1.0 at full fidelity.
double fidelity_noise_multiplier(const ProfilerOptions& options,
                                 const Fidelity& fidelity) noexcept;

/// Iterations one measurement window contains at `fidelity`
/// (options.iterations at full fidelity, halved per tier, floored at 2).
int fidelity_iterations(const ProfilerOptions& options,
                        const Fidelity& fidelity) noexcept;

/// The measurement image of a probe outcome: the journal-record fields
/// the profiler itself produces. Session-side fields (cumulative spend,
/// acquisition score, reason) are left zero — they belong to the search
/// trace, not the measurement, and the service's probe cache must store
/// records that are identical for every job that reuses them.
journal::ProbeRecord measurement_record(const ProfileResult& result);

/// Profiles deployments against the simulated substrate, charging every
/// probe to the supplied billing meter.
class Profiler {
 public:
  Profiler(const perf::TrainingPerfModel& perf,
           const cloud::DeploymentSpace& space, cloud::BillingMeter& meter,
           std::uint64_t seed, ProfilerOptions options = {});

  /// Runs one probe at the requested fidelity. Infeasible deployments
  /// still consume (and bill) the base probe time — discovering that a
  /// model does not fit costs real money on a real cloud too. Under
  /// injected faults the probe retries failed launches per the
  /// RetryPolicy, billing every attempt. A full-fidelity request is
  /// bit-identical (draws, charges, clock) to the pre-multi-fidelity
  /// engine; a reduced request shrinks the window and the bill, biases
  /// the measured throughput optimistically by fidelity_speed_bias, and
  /// widens its noise by fidelity_noise_multiplier.
  ProfileResult profile(const perf::TrainingConfig& config,
                        const ProbeRequest& request);

  /// Deterministic expected wall time of probing `d` at `fidelity` (the
  /// quantity HeterBO's penalty terms use), hours — the paper's t(m, n).
  /// Includes the window stretch needed to fit min_window_iterations of
  /// the given model (static arithmetic on model FLOPs and instance
  /// specs — no profiling required to estimate it). Sub-sampled probes
  /// shrink setup/warm-up, truncated tiers shrink the measurement
  /// window; the full-fidelity default reproduces the legacy arithmetic
  /// bit-for-bit.
  double expected_profile_hours(const perf::TrainingConfig& config,
                                const cloud::Deployment& d,
                                const Fidelity& fidelity = {}) const;

  /// Expected dollar cost of probing `d` — the paper's PL_C
  /// = P(m) * n * t(m, n).
  double expected_profile_cost(const perf::TrainingConfig& config,
                               const cloud::Deployment& d,
                               const Fidelity& fidelity = {}) const;

  /// Upper bound on the wall time one probe of `d` at `fidelity` can
  /// consume: every attempt fails at the worst fault, every backoff hits
  /// its cap, and a straggler stretches a fully-extended window. Equals
  /// expected_profile_hours when no faults are configured. The protective
  /// reserve budgets probes against this, which is what keeps the
  /// deadline guarantee intact under injected failures.
  double worst_case_profile_hours(const perf::TrainingConfig& config,
                                  const cloud::Deployment& d,
                                  const Fidelity& fidelity = {}) const;

  /// Dollar analogue of worst_case_profile_hours (backoff is free).
  double worst_case_profile_cost(const perf::TrainingConfig& config,
                                 const cloud::Deployment& d,
                                 const Fidelity& fidelity = {}) const;

  const ProfilerOptions& options() const noexcept { return options_; }
  int probes_performed() const noexcept { return probes_; }

  /// Arms crash-recovery replay: the next `records.size()` profile()
  /// calls are served from the journal instead of being executed —
  /// billing, the profiling clock, and every seeded stream advance
  /// exactly as they did in the original run, so the continuation is
  /// bit-identical to an uninterrupted search. Each served call verifies
  /// the requested deployment, the fault sequence, and the re-derived
  /// charges against the record and throws
  /// journal::JournalError(kReplayDiverged) on any mismatch.
  void set_replay(std::vector<journal::ProbeRecord> records);
  /// True while journaled records remain to be served.
  bool replay_pending() const noexcept {
    return replay_pos_ < replay_.size();
  }
  /// Probes served from the journal so far.
  int replayed_probes() const noexcept { return replayed_; }

  /// Arms the multi-tenant probe gate (service layer): every live probe
  /// is first offered to `gate` under a ProbeKey derived from
  /// `substrate` and the probe history. A record returned by admit() is
  /// served exactly like a journal replay — billing, clock, and every
  /// seeded stream advance as if the probe had run — except the result
  /// is *not* marked replayed: cache service is trace-neutral, so a
  /// gated run's trace is bit-identical to a solo run. Not owned;
  /// nullptr disarms.
  void set_gate(ProbeGate* gate, std::uint64_t substrate) noexcept {
    gate_ = gate;
    substrate_ = substrate;
  }
  /// Probes served from the shared probe cache so far.
  int cache_served_probes() const noexcept { return cache_served_; }

  /// The ProbeKey the *next* profile() call for `request` would carry —
  /// the same fingerprint profile() derives before consulting the gate.
  /// Lets a probe-granularity scheduler pre-check the shared cache (a
  /// hit needs no capacity) before deciding whether to run, park, or
  /// serve the session's pending probe.
  ProbeKey next_probe_key(const ProbeRequest& request) const noexcept {
    ProbeKey key;
    key.substrate = substrate_;
    key.history = history_;
    key.probe_index = probes_ + 1;
    key.type_index = request.deployment.type_index;
    key.nodes = request.deployment.nodes;
    key.sample_fraction = request.fidelity.sample_fraction;
    key.iteration_tier = request.fidelity.iteration_tier;
    return key;
  }

  const cloud::FaultModel& fault_model() const noexcept {
    return fault_model_;
  }
  /// Wall-clock hours of profiling performed so far (drives the fault
  /// model's outage calendar).
  double clock_hours() const noexcept { return clock_hours_; }
  /// True when `type_index` is under a capacity outage right now.
  bool type_in_outage(std::size_t type_index) const {
    return fault_model_.in_outage(type_index, clock_hours_);
  }

 private:
  /// Executes one probe against the substrate (the historical profile()
  /// body); profile() wraps it with replay service and the probe gate.
  ProfileResult profile_live(const perf::TrainingConfig& config,
                             const ProbeRequest& request);
  ProfileResult replay_next(const perf::TrainingConfig& config,
                            const ProbeRequest& request);
  /// Serves a recorded outcome instead of executing: advances billing,
  /// the clock, and every seeded stream exactly as the original
  /// execution did, verifying the record against the substrate at each
  /// step (JournalError(kReplayDiverged) on mismatch). `from_journal`
  /// selects the replayed flag/counter vs the cache-served counter.
  ProfileResult serve_record(const perf::TrainingConfig& config,
                             const ProbeRequest& request,
                             const journal::ProbeRecord& rec,
                             bool from_journal);
  /// Folds a completed probe into the history fingerprint ProbeKeys
  /// carry. Called for live, replayed, and cache-served probes alike —
  /// all three mix the identical measurement image, so the fingerprint
  /// tracks the probe *sequence*, not how each outcome was obtained.
  void note_history(const ProfileResult& result);

  const perf::TrainingPerfModel* perf_;
  const cloud::DeploymentSpace* space_;
  cloud::BillingMeter* meter_;
  util::Rng rng_;
  ProfilerOptions options_;
  cloud::FaultModel fault_model_;
  double clock_hours_ = 0.0;
  int probes_ = 0;
  std::vector<journal::ProbeRecord> replay_;
  std::size_t replay_pos_ = 0;
  int replayed_ = 0;
  ProbeGate* gate_ = nullptr;
  std::uint64_t substrate_ = 0;
  std::uint64_t history_ = 0xcbf29ce484222325ULL;  // FNV offset basis
  int cache_served_ = 0;
};

}  // namespace mlcd::profiler
