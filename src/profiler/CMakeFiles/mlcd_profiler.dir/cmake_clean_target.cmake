file(REMOVE_RECURSE
  "libmlcd_profiler.a"
)
