# Empty dependencies file for mlcd_profiler.
# This may be replaced when dependencies are built.
