file(REMOVE_RECURSE
  "CMakeFiles/mlcd_profiler.dir/fidelity.cpp.o"
  "CMakeFiles/mlcd_profiler.dir/fidelity.cpp.o.d"
  "CMakeFiles/mlcd_profiler.dir/profiler.cpp.o"
  "CMakeFiles/mlcd_profiler.dir/profiler.cpp.o.d"
  "libmlcd_profiler.a"
  "libmlcd_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcd_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
