// Probe fidelity: the knob that makes explorations cheap on purpose.
//
// The paper's premise is that explorations have heterogeneous cost; this
// header adds the second half of the lever: a probe does not have to be
// a *full* profiling run. Following TrimTuner (sub-sampled datasets) and
// the paramount-iteration literature (truncated measurement windows), a
// Fidelity describes how much of the real measurement a probe performs:
//
//  - `sample_fraction` — fraction of the training dataset the probe's
//    short run touches. Sub-sampling shrinks setup/warm-up wall time but
//    biases the measured throughput optimistically (smaller working
//    sets cache better), by up to FidelityOptions::max_speed_bias.
//  - `iteration_tier` — halvings of the measurement window: tier t
//    measures iterations * 0.5^t iterations. Fewer iterations mean a
//    cheaper window and a noisier mean.
//
// The default Fidelity{} is the full-fidelity probe: bit-identical in
// arithmetic, streams, and cost to the pre-multi-fidelity engine. Every
// low-fidelity observation carries a known bias envelope and a noise
// multiplier (fidelity_noise_multiplier in profiler.hpp) so the search's
// GP can de-bias and de-weight it instead of trusting it blindly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mlcd::profiler {

/// How much of a real profiling run one probe performs. The default is
/// the full-fidelity probe; anything else is cheaper, noisier, and
/// optimistically biased.
struct Fidelity {
  /// Dataset sub-sample fraction in (0, 1]; 1.0 = the full dataset.
  double sample_fraction = 1.0;
  /// Measurement-window halvings: the probe measures
  /// iterations * 0.5^tier iterations. 0 = the full window.
  int iteration_tier = 0;

  bool is_full() const noexcept {
    return sample_fraction == 1.0 && iteration_tier == 0;
  }
  bool operator==(const Fidelity&) const = default;
};

/// Fraction of the full measurement window a tier keeps (0.5^tier).
double fidelity_window_fraction(int iteration_tier) noexcept;

/// The fidelity ladder a search may climb. `rungs` lists the *reduced*
/// rungs only, ordered from highest to lowest fidelity — the full
/// probe is always implicitly available and is never listed. An empty
/// ladder disables multi-fidelity entirely: every probe is full and the
/// engine is bit-identical to the single-fidelity one.
struct FidelityOptions {
  std::vector<Fidelity> rungs{};
  /// Throughput over-estimation of a probe that samples none of the
  /// dataset (linearly interpolated: bias = max_speed_bias * (1 - s)).
  double max_speed_bias = 0.25;
  /// Extra lognormal sigma a zero-sample probe adds on top of the
  /// profiler's noise_sigma (same linear interpolation).
  double max_extra_noise = 0.06;

  bool enabled() const noexcept { return !rungs.empty(); }
  /// The cheapest rung — what exploratory sweeps probe at.
  Fidelity exploration_rung() const noexcept {
    return rungs.empty() ? Fidelity{} : rungs.back();
  }
};

/// Fingerprint of the ladder for the journal header: a resume under a
/// different ladder is a different search. Returns 0 (and mixes
/// nothing) for a disabled ladder, which is exactly what a pre-ladder
/// version-1 journal header carries — old journals resume as
/// full-fidelity runs, new-ladder resumes of old journals are refused.
std::uint64_t hash_fidelity_ladder(const FidelityOptions& options) noexcept;

/// Parses a CLI/workload ladder spec: comma-separated
/// `<sample_fraction>:<iteration_tier>` rungs, e.g. "0.5:1,0.25:2".
/// Throws std::invalid_argument on malformed or out-of-range rungs
/// (fraction outside (0, 1], tier outside [0, 8], or a full-fidelity
/// rung, which must not be listed).
std::vector<Fidelity> parse_fidelity_rungs(const std::string& spec);

/// Inverse of parse_fidelity_rungs ("" for an empty ladder).
std::string format_fidelity_rungs(const std::vector<Fidelity>& rungs);

}  // namespace mlcd::profiler
