#include "profiler/profiler.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/summary.hpp"
#include "util/logging.hpp"

namespace mlcd::profiler {

Profiler::Profiler(const perf::TrainingPerfModel& perf,
                   const cloud::DeploymentSpace& space,
                   cloud::BillingMeter& meter, std::uint64_t seed,
                   ProfilerOptions options)
    : perf_(&perf),
      space_(&space),
      meter_(&meter),
      rng_(seed),
      options_(options) {
  if (options_.iterations < 2) {
    throw std::invalid_argument("Profiler: need at least 2 iterations");
  }
  if (options_.base_profile_hours <= 0.0 || options_.noise_sigma < 0.0 ||
      options_.max_extensions < 0 || options_.failure_rate < 0.0 ||
      options_.failure_rate >= 1.0) {
    throw std::invalid_argument("Profiler: invalid options");
  }
}

double Profiler::expected_profile_hours(
    const perf::TrainingConfig& config, const cloud::Deployment& d) const {
  const int extra_nodes = d.nodes - 1;
  const double base = options_.base_profile_hours +
                      options_.extra_hours_per_3_nodes * (extra_nodes / 3);
  // Window stretch: half the base window is measurement budget; models
  // whose iterations cannot fit min_window_iterations into it stretch
  // the probe (huge models are expensive to profile *anywhere*).
  const perf::IterationBreakdown b = perf_->breakdown(config, d);
  if (!b.feasible) return base;
  const double needed_h =
      options_.min_window_iterations * b.iteration_s / 3600.0;
  return base + std::max(0.0, needed_h - 0.5 * base);
}

double Profiler::expected_profile_cost(const perf::TrainingConfig& config,
                                       const cloud::Deployment& d) const {
  return expected_profile_hours(config, d) * space_->hourly_price(d);
}

ProfileResult Profiler::profile(const perf::TrainingConfig& config,
                                const cloud::Deployment& d) {
  if (!space_->contains(d)) {
    throw std::invalid_argument("Profiler::profile: deployment out of space");
  }
  ++probes_;
  util::Rng probe_rng = rng_.fork(static_cast<std::uint64_t>(probes_));

  ProfileResult result;
  result.deployment = d;
  result.true_speed = perf_->true_speed(config, d);
  result.profile_hours = expected_profile_hours(config, d);

  if (options_.failure_rate > 0.0 &&
      probe_rng.uniform() < options_.failure_rate) {
    // Operational failure: the cluster came up (or half came up) and the
    // run died before producing a stable measurement. Half the window is
    // billed; the caller may retry the same deployment.
    result.failed = true;
    result.profile_hours *= 0.5;
    result.profile_cost = meter_->charge(d, result.profile_hours,
                                         cloud::UsageKind::kProfiling,
                                         "probe (failed)");
    MLCD_LOG(kDebug, "profiler")
        << "probe failed operationally at " << space_->describe(d);
    return result;
  }

  if (result.true_speed <= 0.0) {
    // The job fails to launch (out of memory); the cluster time until the
    // failure is diagnosed is still billed.
    result.feasible = false;
    result.profile_cost = meter_->charge(d, result.profile_hours,
                                         cloud::UsageKind::kProfiling,
                                         "probe (infeasible)");
    MLCD_LOG(kDebug, "profiler")
        << "infeasible probe " << space_->describe(d);
    return result;
  }

  // Measure noisy per-iteration throughput; extend while unstable.
  stats::RunningStats window;
  auto measure_iterations = [&](int count) {
    for (int i = 0; i < count; ++i) {
      window.add(probe_rng.lognormal_median(result.true_speed,
                                            options_.noise_sigma));
    }
  };
  measure_iterations(options_.iterations);
  while (window.coefficient_of_variation() > options_.cov_threshold &&
         result.extensions < options_.max_extensions) {
    ++result.extensions;
    result.profile_hours += options_.extension_hours;
    measure_iterations(options_.iterations);
  }

  result.feasible = true;
  result.measured_speed = window.mean();
  result.iterations = static_cast<int>(window.count());
  result.profile_cost =
      meter_->charge(d, result.profile_hours, cloud::UsageKind::kProfiling,
                     "probe " + space_->describe(d));
  MLCD_LOG(kDebug, "profiler")
      << "probe " << space_->describe(d) << " speed=" << result.measured_speed
      << " (true " << result.true_speed << ") hours=" << result.profile_hours
      << " cost=$" << result.profile_cost;
  return result;
}

}  // namespace mlcd::profiler
