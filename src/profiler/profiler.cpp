#include "profiler/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "stats/summary.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace mlcd::profiler {

namespace {

std::uint64_t fault_stream_seed(std::uint64_t profiler_seed,
                                const ProfilerOptions& options) {
  if (options.fault_seed != 0) return options.fault_seed;
  return util::splitmix64(profiler_seed ^ 0xfa'17'5e'edULL);
}

}  // namespace

std::size_t ProbeKeyHash::operator()(const ProbeKey& key) const noexcept {
  std::uint64_t sample_bits = 0;
  static_assert(sizeof(sample_bits) == sizeof(key.sample_fraction));
  std::memcpy(&sample_bits, &key.sample_fraction, sizeof(sample_bits));
  std::uint64_t h = key.substrate;
  h = util::splitmix64(h ^ key.history);
  h = util::splitmix64(h ^ static_cast<std::uint64_t>(key.probe_index));
  h = util::splitmix64(h ^ static_cast<std::uint64_t>(key.type_index));
  h = util::splitmix64(h ^ static_cast<std::uint64_t>(key.nodes));
  h = util::splitmix64(h ^ sample_bits);
  h = util::splitmix64(h ^ static_cast<std::uint64_t>(key.iteration_tier));
  return static_cast<std::size_t>(h);
}

std::uint64_t hash_options(const ProfilerOptions& o) noexcept {
  journal::HashStream h;
  h.mix(o.base_profile_hours)
      .mix(o.extra_hours_per_3_nodes)
      .mix(o.iterations)
      .mix(o.min_window_iterations)
      .mix(o.noise_sigma)
      .mix(o.cov_threshold)
      .mix(o.max_extensions)
      .mix(o.extension_hours);
  const cloud::FaultModelOptions& f = o.faults;
  // Slot layout: the per-node launch hazard occupies the slot of the
  // retired `failure_rate` alias, and the alias's successor slot mixes a
  // constant 0.0. Configurations the alias could express keep their
  // pre-removal digest, so their journals still fingerprint-match.
  h.mix(f.launch_failure_per_node)
      .mix(0.0)
      .mix(f.spot_revocation_scale)
      .mix(f.outage_episodes_per_100h)
      .mix(f.outage_mean_hours)
      .mix(f.outage_horizon_hours)
      .mix(static_cast<std::uint64_t>(f.scheduled_outages.size()));
  for (const auto& [type, episode] : f.scheduled_outages) {
    h.mix(static_cast<std::uint64_t>(type))
        .mix(episode.start_hours)
        .mix(episode.end_hours);
  }
  h.mix(f.straggler_rate)
      .mix(f.straggler_slowdown)
      .mix(f.launch_failure_fraction)
      .mix(f.revocation_fraction_floor)
      .mix(f.outage_wall_fraction);
  const cloud::RetryPolicy& r = o.retry;
  h.mix(r.max_attempts)
      .mix(r.base_backoff_hours)
      .mix(r.backoff_multiplier)
      .mix(r.max_backoff_hours)
      .mix(r.backoff_jitter_sigma);
  h.mix(o.fault_seed)
      .mix(o.probe_attempt_timeout_hours)
      .mix(o.watchdog_wall_seconds);
  // Mixed only when enabled: ladder-free configurations keep the digest
  // they had before the fidelity axis existed, so their journals and
  // cache keys stay valid across the engine versions.
  if (o.fidelity.enabled()) h.mix(hash_fidelity_ladder(o.fidelity));
  return h.digest();
}

double fidelity_speed_bias(const ProfilerOptions& options,
                           const Fidelity& fidelity) noexcept {
  if (fidelity.is_full()) return 0.0;
  return options.fidelity.max_speed_bias * (1.0 - fidelity.sample_fraction);
}

int fidelity_iterations(const ProfilerOptions& options,
                        const Fidelity& fidelity) noexcept {
  if (fidelity.is_full()) return options.iterations;
  const double w = fidelity_window_fraction(fidelity.iteration_tier);
  return std::max(
      2, static_cast<int>(std::lround(options.iterations * w)));
}

double fidelity_noise_multiplier(const ProfilerOptions& options,
                                 const Fidelity& fidelity) noexcept {
  if (fidelity.is_full()) return 1.0;
  // Sigma inflation from sub-sampling x the sqrt-of-n penalty of a
  // shorter measurement window. The floor keeps the ratio finite for a
  // (degenerate) noise-free profiler.
  const double base_sigma = std::max(options.noise_sigma, 1e-9);
  const double low_sigma =
      base_sigma +
      options.fidelity.max_extra_noise * (1.0 - fidelity.sample_fraction);
  const double iteration_ratio =
      static_cast<double>(options.iterations) /
      static_cast<double>(fidelity_iterations(options, fidelity));
  return (low_sigma / base_sigma) * std::sqrt(iteration_ratio);
}

journal::ProbeRecord measurement_record(const ProfileResult& result) {
  journal::ProbeRecord rec;
  rec.type_index = result.deployment.type_index;
  rec.nodes = result.deployment.nodes;
  rec.sample_fraction = result.fidelity.sample_fraction;
  rec.iteration_tier = result.fidelity.iteration_tier;
  rec.failed = result.failed;
  rec.feasible = result.feasible;
  rec.measured_speed = result.measured_speed;
  rec.true_speed = result.true_speed;
  rec.profile_hours = result.profile_hours;
  rec.profile_cost = result.profile_cost;
  rec.attempts = result.attempts;
  rec.fault = static_cast<int>(result.fault);
  rec.backoff_hours = result.backoff_hours;
  rec.attempt_log.reserve(result.attempt_log.size());
  for (const cloud::AttemptRecord& a : result.attempt_log) {
    rec.attempt_log.push_back(
        {static_cast<int>(a.fault), a.hours, a.cost, a.backoff_hours});
  }
  return rec;
}

Profiler::Profiler(const perf::TrainingPerfModel& perf,
                   const cloud::DeploymentSpace& space,
                   cloud::BillingMeter& meter, std::uint64_t seed,
                   ProfilerOptions options)
    : perf_(&perf),
      space_(&space),
      meter_(&meter),
      rng_(seed),
      options_(options),
      fault_model_(space.catalog(), fault_stream_seed(seed, options),
                   options.faults) {
  if (options_.iterations < 2) {
    throw std::invalid_argument("Profiler: need at least 2 iterations");
  }
  if (options_.base_profile_hours <= 0.0 || options_.noise_sigma < 0.0 ||
      options_.max_extensions < 0) {
    throw std::invalid_argument("Profiler: invalid options");
  }
  for (const Fidelity& rung : options_.fidelity.rungs) {
    if (!(rung.sample_fraction > 0.0) || rung.sample_fraction > 1.0 ||
        rung.iteration_tier < 0 || rung.iteration_tier > 8 ||
        rung.is_full()) {
      throw std::invalid_argument(
          "Profiler: invalid fidelity rung (sample fraction must be in "
          "(0, 1], tier in [0, 8], and the full rung is implicit)");
    }
  }
  if (options_.fidelity.max_speed_bias < 0.0 ||
      options_.fidelity.max_speed_bias >= 1.0 ||
      options_.fidelity.max_extra_noise < 0.0) {
    throw std::invalid_argument("Profiler: invalid fidelity options");
  }
  if (options_.retry.max_attempts < 1 ||
      options_.retry.base_backoff_hours < 0.0 ||
      options_.retry.max_backoff_hours < 0.0 ||
      options_.retry.backoff_multiplier < 1.0) {
    throw std::invalid_argument("Profiler: invalid retry policy");
  }
  if (options_.probe_attempt_timeout_hours < 0.0 ||
      options_.watchdog_wall_seconds < 0.0) {
    throw std::invalid_argument("Profiler: negative watchdog deadline");
  }
}

void Profiler::set_replay(std::vector<journal::ProbeRecord> records) {
  replay_ = std::move(records);
  replay_pos_ = 0;
}

double Profiler::expected_profile_hours(const perf::TrainingConfig& config,
                                        const cloud::Deployment& d,
                                        const Fidelity& fidelity) const {
  const int extra_nodes = d.nodes - 1;
  const double base = options_.base_profile_hours +
                      options_.extra_hours_per_3_nodes * (extra_nodes / 3);
  // Window stretch: half the base window is measurement budget; models
  // whose iterations cannot fit min_window_iterations into it stretch
  // the probe (huge models are expensive to profile *anywhere*).
  const perf::IterationBreakdown b = perf_->breakdown(config, d);
  if (fidelity.is_full()) {
    // The exact legacy arithmetic, kept on its own branch: restructuring
    // it through the reduced-fidelity formula below would not be bitwise
    // identical, and the full-fidelity engine must be.
    if (!b.feasible) return base;
    const double needed_h =
        options_.min_window_iterations * b.iteration_s / 3600.0;
    return base + std::max(0.0, needed_h - 0.5 * base);
  }
  // Reduced fidelity. Half the base window is setup/warm-up; dataset
  // sub-sampling shrinks that half linearly (a smaller working set
  // stages and warms faster). The other half is measurement budget —
  // equivalently max(0.5 * base, needed_h) of window — scaled by the
  // tier's window fraction.
  const double w = fidelity_window_fraction(fidelity.iteration_tier);
  const double setup = 0.5 * base * (0.5 + 0.5 * fidelity.sample_fraction);
  if (!b.feasible) return setup + 0.5 * base * w;
  const double needed_h =
      options_.min_window_iterations * b.iteration_s / 3600.0;
  return setup + std::max(0.5 * base, needed_h) * w;
}

double Profiler::expected_profile_cost(const perf::TrainingConfig& config,
                                       const cloud::Deployment& d,
                                       const Fidelity& fidelity) const {
  return expected_profile_hours(config, d, fidelity) *
         space_->hourly_price(d);
}

double Profiler::worst_case_profile_hours(const perf::TrainingConfig& config,
                                          const cloud::Deployment& d,
                                          const Fidelity& fidelity) const {
  const double planned = expected_profile_hours(config, d, fidelity);
  const bool faults_on = fault_model_.enabled(space_->market());
  const double timeout = options_.probe_attempt_timeout_hours;
  if (!faults_on && timeout <= 0.0) return planned;
  const auto& faults = fault_model_.options();
  const double slowdown = (faults_on && faults.straggler_rate > 0.0)
                              ? std::max(1.0, faults.straggler_slowdown)
                              : 1.0;
  const double extension_hours =
      fidelity.is_full()
          ? options_.extension_hours
          : options_.extension_hours *
                fidelity_window_fraction(fidelity.iteration_tier);
  // Worst success: fully extended window on a straggling cluster. The
  // watchdog caps every attempt's wall time at its deadline (an attempt
  // that would run longer is killed and retried), so the deadline also
  // caps the bound.
  const double success_natural =
      (planned + options_.max_extensions * extension_hours) * slowdown;
  const double success =
      timeout > 0.0 ? std::min(success_natural, timeout) : success_natural;
  // Worst retry chain: every preceding attempt fails at the costliest
  // fault and every backoff hits its (hard) cap.
  double per_failed_wall =
      faults_on
          ? planned * fault_model_.worst_failed_wall_fraction(space_->market())
          : 0.0;
  if (timeout > 0.0) {
    per_failed_wall = std::min(per_failed_wall, timeout);
    // When even a clean window overruns the deadline, measurement
    // attempts themselves time out after a full deadline's worth of wall.
    if (success_natural > timeout) per_failed_wall = timeout;
  }
  if (!faults_on && per_failed_wall <= 0.0) return success;  // cannot fail
  const int retries = options_.retry.max_attempts - 1;
  return success +
         retries * (per_failed_wall + options_.retry.max_backoff_hours);
}

double Profiler::worst_case_profile_cost(const perf::TrainingConfig& config,
                                         const cloud::Deployment& d,
                                         const Fidelity& fidelity) const {
  const bool faults_on = fault_model_.enabled(space_->market());
  const double timeout = options_.probe_attempt_timeout_hours;
  if (!faults_on && timeout <= 0.0) {
    return expected_profile_cost(config, d, fidelity);
  }
  const double planned = expected_profile_hours(config, d, fidelity);
  const double price = space_->hourly_price(d);
  const auto& faults = fault_model_.options();
  const double slowdown = (faults_on && faults.straggler_rate > 0.0)
                              ? std::max(1.0, faults.straggler_slowdown)
                              : 1.0;
  const double extension_hours =
      fidelity.is_full()
          ? options_.extension_hours
          : options_.extension_hours *
                fidelity_window_fraction(fidelity.iteration_tier);
  // The meter rounds every charge up to whole seconds with a 60 s
  // minimum; bound each attempt's charge by hours + 1 s, floored at 60 s.
  const auto billed = [&](double hours) {
    return std::max(hours + 1.0 / 3600.0, 60.0 / 3600.0) * price;
  };
  const double success_natural =
      (planned + options_.max_extensions * extension_hours) * slowdown;
  const double success = billed(
      timeout > 0.0 ? std::min(success_natural, timeout) : success_natural);
  double per_failed_bill =
      faults_on
          ? planned * fault_model_.worst_failed_bill_fraction(space_->market())
          : 0.0;
  if (timeout > 0.0) {
    per_failed_bill = std::min(per_failed_bill, timeout);
    // A timed-out measurement attempt bills the full deadline it ran.
    if (success_natural > timeout) per_failed_bill = timeout;
  }
  if (!faults_on && per_failed_bill <= 0.0) return success;  // cannot fail
  const int retries = options_.retry.max_attempts - 1;
  return success + retries * billed(per_failed_bill);
}

ProfileResult Profiler::profile(const perf::TrainingConfig& config,
                                const ProbeRequest& request) {
  const cloud::Deployment& d = request.deployment;
  if (!space_->contains(d)) {
    throw std::invalid_argument("Profiler::profile: deployment out of space");
  }
  ProfileResult result;
  if (replay_pending()) {
    result = replay_next(config, request);
  } else if (gate_ != nullptr) {
    const ProbeKey key = next_probe_key(request);
    if (std::optional<journal::ProbeRecord> hit = gate_->admit(key, d)) {
      // Another job already measured this exact probe (same fidelity
      // included — the key forbids cross-fidelity aliasing): serve the
      // shared record the way journal resume would, but trace-neutrally.
      result = serve_record(config, request, *hit, /*from_journal=*/false);
    } else {
      // Admitted: capacity for d.nodes is held until publish/abandon.
      try {
        result = profile_live(config, request);
      } catch (...) {
        gate_->abandon(d);
        throw;
      }
      gate_->publish(key, d, measurement_record(result));
    }
  } else {
    result = profile_live(config, request);
  }
  note_history(result);
  return result;
}

ProfileResult Profiler::profile_live(const perf::TrainingConfig& config,
                                     const ProbeRequest& request) {
  const cloud::Deployment& d = request.deployment;
  const Fidelity& fidelity = request.fidelity;
  ++probes_;
  util::Rng probe_rng = rng_.fork(static_cast<std::uint64_t>(probes_));

  ProfileResult result;
  result.deployment = d;
  result.fidelity = fidelity;
  result.true_speed = perf_->true_speed(config, d);
  const double planned = expected_profile_hours(config, d, fidelity);

  const bool faults_on = fault_model_.enabled(space_->market());
  const double timeout = options_.probe_attempt_timeout_hours;
  // Timed-out attempts are retryable even on a fault-free cloud.
  const int max_attempts =
      (faults_on || timeout > 0.0) ? options_.retry.max_attempts : 1;

  // Watchdog conversion: an attempt that outruns its deadline is killed
  // at the deadline — the cluster ran that long, so the deadline's worth
  // of wall time is billed and charged to the clock, and the attempt
  // becomes a retryable kProbeTimeout failure.
  const auto kill_at_deadline = [&](double wall_hours, double bill_hours,
                                    int attempt) {
    double cost = 0.0;
    if (bill_hours > 0.0) {
      cost = meter_->charge(d, bill_hours, cloud::UsageKind::kProfiling,
                            "probe attempt failed: probe-timeout");
    }
    result.fault = cloud::FaultKind::kProbeTimeout;
    result.profile_hours += wall_hours;
    result.profile_cost += cost;
    clock_hours_ += wall_hours;
    double backoff = 0.0;
    if (attempt < max_attempts) {
      backoff = options_.retry.backoff_hours_after(attempt, probe_rng);
      result.backoff_hours += backoff;
      result.profile_hours += backoff;
      clock_hours_ += backoff;
    }
    result.attempt_log.push_back(
        {cloud::FaultKind::kProbeTimeout, wall_hours, cost, backoff});
    MLCD_LOG(kDebug, "profiler")
        << "probe attempt " << attempt << "/" << max_attempts << " at "
        << space_->describe(d) << " killed by watchdog after " << wall_hours
        << " h";
  };

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    result.attempts = attempt;
    cloud::AttemptOutcome outcome;
    if (faults_on) {
      outcome =
          fault_model_.attempt(d, space_->market(), planned, clock_hours_);
    }

    if (outcome.failed()) {
      if (timeout > 0.0 && planned * outcome.wall_fraction > timeout) {
        // The watchdog fires before the underlying fault is diagnosed.
        kill_at_deadline(
            timeout,
            outcome.bill_fraction > 0.0
                ? std::min(planned * outcome.bill_fraction, timeout)
                : 0.0,
            attempt);
        continue;
      }
      // The attempt died before producing a measurement. Whatever ran is
      // billed (a real cloud charges for the nodes that came up), the
      // wall clock advances, and — unless this was the last attempt — a
      // jittered backoff charges the deadline clock only.
      const double hours = planned * outcome.wall_fraction;
      double cost = 0.0;
      if (outcome.bill_fraction > 0.0) {
        cost = meter_->charge(
            d, planned * outcome.bill_fraction, cloud::UsageKind::kProfiling,
            "probe attempt failed: " +
                std::string(cloud::fault_kind_name(outcome.fault)));
      }
      result.fault = outcome.fault;
      result.profile_hours += hours;
      result.profile_cost += cost;
      clock_hours_ += hours;
      double backoff = 0.0;
      if (attempt < max_attempts) {
        backoff = options_.retry.backoff_hours_after(attempt, probe_rng);
        result.backoff_hours += backoff;
        result.profile_hours += backoff;
        clock_hours_ += backoff;
      }
      result.attempt_log.push_back({outcome.fault, hours, cost, backoff});
      MLCD_LOG(kDebug, "profiler")
          << "probe attempt " << attempt << "/" << max_attempts << " at "
          << space_->describe(d) << " failed: "
          << cloud::fault_kind_name(outcome.fault);
      continue;
    }

    // Launch succeeded (possibly on a straggling cluster).
    result.fault = outcome.fault;  // kNone or kStraggler

    if (result.true_speed <= 0.0) {
      // The job fails to launch (out of memory); the cluster time until
      // the failure is diagnosed is still billed. Infeasibility is a
      // property of the deployment, not of the weather — never retried.
      const double hours = planned * outcome.slowdown;
      if (timeout > 0.0 && hours > timeout) {
        // Killed before the diagnosis completes: from the controller's
        // side a hang and a slow OOM are indistinguishable.
        kill_at_deadline(timeout, timeout, attempt);
        continue;
      }
      const double cost = meter_->charge(
          d, hours, cloud::UsageKind::kProfiling, "probe (infeasible)");
      result.feasible = false;
      result.profile_hours += hours;
      result.profile_cost += cost;
      clock_hours_ += hours;
      result.attempt_log.push_back({outcome.fault, hours, cost, 0.0});
      MLCD_LOG(kDebug, "profiler")
          << "infeasible probe " << space_->describe(d);
      return result;
    }

    // Measure noisy per-iteration throughput; extend while unstable. The
    // measurement runs on a self-contained state block so the real-time
    // watchdog can abandon a hung computation without sharing any state
    // with it; when the watchdog is off (or the task finishes in time)
    // the block is copied back and the draws are bit-identical to the
    // historical inline path.
    struct MeasureState {
      util::Rng rng;
      stats::RunningStats window;
      int extensions = 0;
      double attempt_hours = 0.0;
    };
    auto state = std::make_shared<MeasureState>(MeasureState{probe_rng});
    state->extensions = result.extensions;
    state->attempt_hours = planned;
    // Fidelity semantics, each on an is_full() branch so the full path
    // reuses the exact values (and therefore the exact draws) of the
    // single-fidelity engine: a sub-sampled dataset biases the measured
    // throughput optimistically and adds measurement noise; a truncated
    // tier measures fewer iterations per (cheaper) window.
    const double median_speed =
        fidelity.is_full()
            ? result.true_speed
            : result.true_speed *
                  (1.0 + fidelity_speed_bias(options_, fidelity));
    const double sigma =
        fidelity.is_full()
            ? options_.noise_sigma
            : options_.noise_sigma + options_.fidelity.max_extra_noise *
                                         (1.0 - fidelity.sample_fraction);
    const int window_iterations = fidelity_iterations(options_, fidelity);
    const double extension_hours =
        fidelity.is_full()
            ? options_.extension_hours
            : options_.extension_hours *
                  fidelity_window_fraction(fidelity.iteration_tier);
    const ProfilerOptions& opts = options_;
    const auto measure = [state, median_speed, sigma, window_iterations,
                          extension_hours, &opts] {
      auto measure_iterations = [&](int count) {
        for (int i = 0; i < count; ++i) {
          state->window.add(
              state->rng.lognormal_median(median_speed, sigma));
        }
      };
      measure_iterations(window_iterations);
      while (state->window.coefficient_of_variation() > opts.cov_threshold &&
             state->extensions < opts.max_extensions) {
        ++state->extensions;
        state->attempt_hours += extension_hours;
        measure_iterations(window_iterations);
      }
    };
    if (!util::ThreadPool::run_with_deadline(measure,
                                             options_.watchdog_wall_seconds)) {
      // Real-time expiry: the measurement computation itself hung. The
      // simulated cluster ran its (deadline-capped) window for nothing.
      const double wall = planned * outcome.slowdown;
      const double capped =
          timeout > 0.0 ? std::min(wall, timeout) : wall;
      kill_at_deadline(capped, capped, attempt);
      continue;
    }
    probe_rng = state->rng;
    result.extensions = state->extensions;
    const stats::RunningStats& window = state->window;
    double attempt_hours = state->attempt_hours;
    attempt_hours *= outcome.slowdown;

    if (timeout > 0.0 && attempt_hours > timeout) {
      // The (possibly straggler-stretched, possibly extended) window
      // overran the per-attempt deadline: the watchdog kills the cluster
      // at the deadline and the measurement is discarded.
      kill_at_deadline(timeout, timeout, attempt);
      continue;
    }

    result.feasible = true;
    result.measured_speed = window.mean();
    result.iterations = static_cast<int>(window.count());
    const double cost =
        meter_->charge(d, attempt_hours, cloud::UsageKind::kProfiling,
                       "probe " + space_->describe(d));
    result.profile_hours += attempt_hours;
    result.profile_cost += cost;
    clock_hours_ += attempt_hours;
    result.attempt_log.push_back({outcome.fault, attempt_hours, cost, 0.0});
    MLCD_LOG(kDebug, "profiler")
        << "probe " << space_->describe(d)
        << " speed=" << result.measured_speed << " (true "
        << result.true_speed << ") hours=" << result.profile_hours
        << " cost=$" << result.profile_cost
        << " attempts=" << result.attempts;
    return result;
  }

  // Every launch attempt failed: billed but uninformative.
  result.failed = true;
  MLCD_LOG(kDebug, "profiler")
      << "probe failed operationally at " << space_->describe(d) << " after "
      << result.attempts << " attempts ("
      << cloud::fault_kind_name(result.fault) << ")";
  return result;
}

ProfileResult Profiler::replay_next(const perf::TrainingConfig& config,
                                    const ProbeRequest& request) {
  const journal::ProbeRecord& rec = replay_[replay_pos_];
  ++replay_pos_;
  return serve_record(config, request, rec, /*from_journal=*/true);
}

ProfileResult Profiler::serve_record(const perf::TrainingConfig& config,
                                     const ProbeRequest& request,
                                     const journal::ProbeRecord& rec,
                                     bool from_journal) {
  const cloud::Deployment& d = request.deployment;
  const int probe_number = probes_ + 1;
  const auto diverged = [&](const std::string& what) -> void {
    const std::string context =
        from_journal
            ? "replaying probe " + std::to_string(probe_number)
            : "probe-cache hit at probe " + std::to_string(probe_number);
    throw journal::JournalError(
        journal::JournalErrorCode::kReplayDiverged,
        context + " at " + space_->describe(d) + ": " + what +
            " — the run configuration or binary has drifted since the " +
            (from_journal ? "journal was written" : "record was cached"));
  };
  if (rec.type_index != d.type_index || rec.nodes != d.nodes) {
    diverged("record holds type " + std::to_string(rec.type_index) + " x " +
             std::to_string(rec.nodes) +
             " but the search requested a different deployment");
  }
  if (rec.sample_fraction != request.fidelity.sample_fraction ||
      rec.iteration_tier != request.fidelity.iteration_tier) {
    diverged("record was measured at a different fidelity than requested");
  }
  ++probes_;
  // Advance the probe fork exactly as the original run did (fork mutates
  // the parent engine). The child stream fed only this probe's noise and
  // backoff draws, which the journal already captured — drop it.
  (void)rng_.fork(static_cast<std::uint64_t>(probes_));

  ProfileResult result;
  result.deployment = d;
  result.fidelity = request.fidelity;
  result.true_speed = perf_->true_speed(config, d);
  if (result.true_speed != rec.true_speed) {
    diverged("substrate true speed differs from the recorded value");
  }
  // The fault stream re-roll below must see the window the original run
  // planned — which depends on the record's fidelity.
  const double planned = expected_profile_hours(config, d, request.fidelity);
  const bool faults_on = fault_model_.enabled(space_->market());

  for (std::size_t i = 0; i < rec.attempt_log.size(); ++i) {
    const journal::AttemptEntry& entry = rec.attempt_log[i];
    const auto kind = static_cast<cloud::FaultKind>(entry.fault);
    if (faults_on) {
      // Re-roll the fault stream: attempt() is a pure function of
      // (seed, deployment, market, window, clock), so this advances the
      // stream to exactly where the original run left it — and doubles
      // as a divergence check. A journaled timeout may wrap any
      // underlying outcome (the watchdog fired first), so it matches all.
      const cloud::AttemptOutcome outcome =
          fault_model_.attempt(d, space_->market(), planned, clock_hours_);
      if (kind != cloud::FaultKind::kProbeTimeout && outcome.fault != kind) {
        diverged("fault stream produced '" +
                 std::string(cloud::fault_kind_name(outcome.fault)) +
                 "' where the journal recorded '" +
                 std::string(cloud::fault_kind_name(kind)) + "'");
      }
    }
    double cost = 0.0;
    if (entry.cost > 0.0) {
      // Re-bill through the meter with the recorded wall hours (billed
      // hours equal wall hours on every charging path), reproducing the
      // original charge — and its ledger line — bit-identically.
      const bool last = i + 1 == rec.attempt_log.size();
      std::string note;
      if (!last || rec.failed) {
        note = "probe attempt failed: " +
               std::string(cloud::fault_kind_name(kind));
      } else if (!rec.feasible) {
        note = "probe (infeasible)";
      } else {
        note = "probe " + space_->describe(d);
      }
      cost = meter_->charge(d, entry.hours, cloud::UsageKind::kProfiling,
                            note);
      if (cost != entry.cost) {
        diverged("re-derived charge differs from the journaled cost");
      }
    }
    clock_hours_ += entry.hours + entry.backoff_hours;
    result.attempt_log.push_back({kind, entry.hours, cost,
                                  entry.backoff_hours});
  }

  result.failed = rec.failed;
  result.feasible = rec.feasible;
  result.measured_speed = rec.measured_speed;
  result.profile_hours = rec.profile_hours;
  result.profile_cost = rec.profile_cost;
  result.attempts = rec.attempts;
  result.fault = static_cast<cloud::FaultKind>(rec.fault);
  result.backoff_hours = rec.backoff_hours;
  if (from_journal) {
    result.replayed = true;
    ++replayed_;
    MLCD_LOG(kDebug, "profiler")
        << "replayed probe " << replayed_ << " at " << space_->describe(d)
        << " from journal";
  } else {
    // Cache service is trace-neutral: the result is indistinguishable
    // from a live execution, so solo and batch traces stay bit-identical.
    ++cache_served_;
    MLCD_LOG(kDebug, "profiler")
        << "served probe " << probe_number << " at " << space_->describe(d)
        << " from the shared probe cache";
  }
  return result;
}

void Profiler::note_history(const ProfileResult& result) {
  const journal::ProbeRecord rec = measurement_record(result);
  journal::HashStream h;
  h.mix(history_)
      .mix(static_cast<std::uint64_t>(rec.type_index))
      .mix(rec.nodes)
      .mix(rec.failed)
      .mix(rec.feasible)
      .mix(rec.measured_speed)
      .mix(rec.true_speed)
      .mix(rec.profile_hours)
      .mix(rec.profile_cost)
      .mix(rec.attempts)
      .mix(rec.fault)
      .mix(rec.backoff_hours)
      .mix(static_cast<std::uint64_t>(rec.attempt_log.size()));
  for (const journal::AttemptEntry& a : rec.attempt_log) {
    h.mix(a.fault).mix(a.hours).mix(a.cost).mix(a.backoff_hours);
  }
  // Full-fidelity records mix nothing extra so a ladder-free run keeps
  // the exact pre-multi-fidelity history digest (and hence ProbeKeys).
  if (!(rec.sample_fraction == 1.0 && rec.iteration_tier == 0)) {
    h.mix(rec.sample_fraction).mix(rec.iteration_tier);
  }
  history_ = h.digest();
}

}  // namespace mlcd::profiler
