#include "profiler/profiler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "stats/summary.hpp"
#include "util/logging.hpp"

namespace mlcd::profiler {

namespace {

// The legacy failure_rate knob becomes a per-node launch hazard: for a
// 1-node probe the probability is unchanged, and larger clusters are now
// (correctly) riskier.
cloud::FaultModelOptions merge_legacy_failure_rate(
    const ProfilerOptions& options) {
  if (options.failure_rate < 0.0 || options.failure_rate >= 1.0) {
    throw std::invalid_argument("Profiler: invalid options");
  }
  cloud::FaultModelOptions faults = options.faults;
  faults.launch_failure_per_node =
      std::max(faults.launch_failure_per_node, options.failure_rate);
  return faults;
}

std::uint64_t fault_stream_seed(std::uint64_t profiler_seed,
                                const ProfilerOptions& options) {
  if (options.fault_seed != 0) return options.fault_seed;
  return util::splitmix64(profiler_seed ^ 0xfa'17'5e'edULL);
}

}  // namespace

Profiler::Profiler(const perf::TrainingPerfModel& perf,
                   const cloud::DeploymentSpace& space,
                   cloud::BillingMeter& meter, std::uint64_t seed,
                   ProfilerOptions options)
    : perf_(&perf),
      space_(&space),
      meter_(&meter),
      rng_(seed),
      options_(options),
      fault_model_(space.catalog(), fault_stream_seed(seed, options),
                   merge_legacy_failure_rate(options)) {
  if (options_.iterations < 2) {
    throw std::invalid_argument("Profiler: need at least 2 iterations");
  }
  if (options_.base_profile_hours <= 0.0 || options_.noise_sigma < 0.0 ||
      options_.max_extensions < 0 || options_.failure_rate < 0.0 ||
      options_.failure_rate >= 1.0) {
    throw std::invalid_argument("Profiler: invalid options");
  }
  if (options_.retry.max_attempts < 1 ||
      options_.retry.base_backoff_hours < 0.0 ||
      options_.retry.max_backoff_hours < 0.0 ||
      options_.retry.backoff_multiplier < 1.0) {
    throw std::invalid_argument("Profiler: invalid retry policy");
  }
}

double Profiler::expected_profile_hours(
    const perf::TrainingConfig& config, const cloud::Deployment& d) const {
  const int extra_nodes = d.nodes - 1;
  const double base = options_.base_profile_hours +
                      options_.extra_hours_per_3_nodes * (extra_nodes / 3);
  // Window stretch: half the base window is measurement budget; models
  // whose iterations cannot fit min_window_iterations into it stretch
  // the probe (huge models are expensive to profile *anywhere*).
  const perf::IterationBreakdown b = perf_->breakdown(config, d);
  if (!b.feasible) return base;
  const double needed_h =
      options_.min_window_iterations * b.iteration_s / 3600.0;
  return base + std::max(0.0, needed_h - 0.5 * base);
}

double Profiler::expected_profile_cost(const perf::TrainingConfig& config,
                                       const cloud::Deployment& d) const {
  return expected_profile_hours(config, d) * space_->hourly_price(d);
}

double Profiler::worst_case_profile_hours(
    const perf::TrainingConfig& config, const cloud::Deployment& d) const {
  const double planned = expected_profile_hours(config, d);
  if (!fault_model_.enabled(space_->market())) return planned;
  const auto& faults = fault_model_.options();
  const double slowdown = faults.straggler_rate > 0.0
                              ? std::max(1.0, faults.straggler_slowdown)
                              : 1.0;
  // Worst success: fully extended window on a straggling cluster.
  const double success =
      (planned + options_.max_extensions * options_.extension_hours) *
      slowdown;
  // Worst retry chain: every preceding attempt fails at the costliest
  // fault and every backoff hits its (hard) cap.
  const int retries = options_.retry.max_attempts - 1;
  const double per_failure =
      planned * fault_model_.worst_failed_wall_fraction(space_->market()) +
      options_.retry.max_backoff_hours;
  return success + retries * per_failure;
}

double Profiler::worst_case_profile_cost(
    const perf::TrainingConfig& config, const cloud::Deployment& d) const {
  if (!fault_model_.enabled(space_->market())) {
    return expected_profile_cost(config, d);
  }
  const double planned = expected_profile_hours(config, d);
  const double price = space_->hourly_price(d);
  const auto& faults = fault_model_.options();
  const double slowdown = faults.straggler_rate > 0.0
                              ? std::max(1.0, faults.straggler_slowdown)
                              : 1.0;
  // The meter rounds every charge up to whole seconds with a 60 s
  // minimum; bound each attempt's charge by hours + 1 s, floored at 60 s.
  const auto billed = [&](double hours) {
    return std::max(hours + 1.0 / 3600.0, 60.0 / 3600.0) * price;
  };
  const double success = billed(
      (planned + options_.max_extensions * options_.extension_hours) *
      slowdown);
  const int retries = options_.retry.max_attempts - 1;
  const double per_failure = billed(
      planned * fault_model_.worst_failed_bill_fraction(space_->market()));
  return success + retries * per_failure;
}

ProfileResult Profiler::profile(const perf::TrainingConfig& config,
                                const cloud::Deployment& d) {
  if (!space_->contains(d)) {
    throw std::invalid_argument("Profiler::profile: deployment out of space");
  }
  ++probes_;
  util::Rng probe_rng = rng_.fork(static_cast<std::uint64_t>(probes_));

  ProfileResult result;
  result.deployment = d;
  result.true_speed = perf_->true_speed(config, d);
  const double planned = expected_profile_hours(config, d);

  const bool faults_on = fault_model_.enabled(space_->market());
  const int max_attempts = faults_on ? options_.retry.max_attempts : 1;

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    result.attempts = attempt;
    cloud::AttemptOutcome outcome;
    if (faults_on) {
      outcome =
          fault_model_.attempt(d, space_->market(), planned, clock_hours_);
    }

    if (outcome.failed()) {
      // The attempt died before producing a measurement. Whatever ran is
      // billed (a real cloud charges for the nodes that came up), the
      // wall clock advances, and — unless this was the last attempt — a
      // jittered backoff charges the deadline clock only.
      const double hours = planned * outcome.wall_fraction;
      double cost = 0.0;
      if (outcome.bill_fraction > 0.0) {
        cost = meter_->charge(
            d, planned * outcome.bill_fraction, cloud::UsageKind::kProfiling,
            "probe attempt failed: " +
                std::string(cloud::fault_kind_name(outcome.fault)));
      }
      result.fault = outcome.fault;
      result.profile_hours += hours;
      result.profile_cost += cost;
      clock_hours_ += hours;
      double backoff = 0.0;
      if (attempt < max_attempts) {
        backoff = options_.retry.backoff_hours_after(attempt, probe_rng);
        result.backoff_hours += backoff;
        result.profile_hours += backoff;
        clock_hours_ += backoff;
      }
      result.attempt_log.push_back({outcome.fault, hours, cost, backoff});
      MLCD_LOG(kDebug, "profiler")
          << "probe attempt " << attempt << "/" << max_attempts << " at "
          << space_->describe(d) << " failed: "
          << cloud::fault_kind_name(outcome.fault);
      continue;
    }

    // Launch succeeded (possibly on a straggling cluster).
    result.fault = outcome.fault;  // kNone or kStraggler

    if (result.true_speed <= 0.0) {
      // The job fails to launch (out of memory); the cluster time until
      // the failure is diagnosed is still billed. Infeasibility is a
      // property of the deployment, not of the weather — never retried.
      const double hours = planned * outcome.slowdown;
      const double cost = meter_->charge(
          d, hours, cloud::UsageKind::kProfiling, "probe (infeasible)");
      result.feasible = false;
      result.profile_hours += hours;
      result.profile_cost += cost;
      clock_hours_ += hours;
      result.attempt_log.push_back({outcome.fault, hours, cost, 0.0});
      MLCD_LOG(kDebug, "profiler")
          << "infeasible probe " << space_->describe(d);
      return result;
    }

    // Measure noisy per-iteration throughput; extend while unstable.
    stats::RunningStats window;
    auto measure_iterations = [&](int count) {
      for (int i = 0; i < count; ++i) {
        window.add(probe_rng.lognormal_median(result.true_speed,
                                              options_.noise_sigma));
      }
    };
    double attempt_hours = planned;
    measure_iterations(options_.iterations);
    while (window.coefficient_of_variation() > options_.cov_threshold &&
           result.extensions < options_.max_extensions) {
      ++result.extensions;
      attempt_hours += options_.extension_hours;
      measure_iterations(options_.iterations);
    }
    attempt_hours *= outcome.slowdown;

    result.feasible = true;
    result.measured_speed = window.mean();
    result.iterations = static_cast<int>(window.count());
    const double cost =
        meter_->charge(d, attempt_hours, cloud::UsageKind::kProfiling,
                       "probe " + space_->describe(d));
    result.profile_hours += attempt_hours;
    result.profile_cost += cost;
    clock_hours_ += attempt_hours;
    result.attempt_log.push_back({outcome.fault, attempt_hours, cost, 0.0});
    MLCD_LOG(kDebug, "profiler")
        << "probe " << space_->describe(d)
        << " speed=" << result.measured_speed << " (true "
        << result.true_speed << ") hours=" << result.profile_hours
        << " cost=$" << result.profile_cost
        << " attempts=" << result.attempts;
    return result;
  }

  // Every launch attempt failed: billed but uninformative.
  result.failed = true;
  MLCD_LOG(kDebug, "profiler")
      << "probe failed operationally at " << space_->describe(d) << " after "
      << result.attempts << " attempts ("
      << cloud::fault_kind_name(result.fault) << ")";
  return result;
}

}  // namespace mlcd::profiler
