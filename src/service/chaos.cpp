#include "service/chaos.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace mlcd::service {

namespace {

constexpr std::uint64_t kSaltLaneCrash = 0x6c616e65u;    // "lane"
constexpr std::uint64_t kSaltRevocation = 0x73706f74u;   // "spot"
constexpr std::uint64_t kSaltProbeLoss = 0x6c6f7373u;    // "loss"
constexpr std::uint64_t kSaltStall = 0x7374616cu;        // "stal"
constexpr std::uint64_t kSaltBackoff = 0x77616974u;      // "wait"

void check_rate(double rate, const char* name) {
  if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument(std::string("chaos: '") + name +
                                "' must be a finite rate in [0, 1]");
  }
}

}  // namespace

std::string_view chaos_fault_name(ChaosFault fault) noexcept {
  switch (fault) {
    case ChaosFault::kNone:
      return "none";
    case ChaosFault::kLaneCrash:
      return "lane_crash";
    case ChaosFault::kSpotRevocation:
      return "spot_revocation";
    case ChaosFault::kProbeLoss:
      return "probe_loss";
    case ChaosFault::kSchedulerStall:
      return "scheduler_stall";
  }
  return "unknown";
}

bool ChaosOptions::enabled() const noexcept {
  return lane_crash_rate > 0.0 || revocation_rate > 0.0 ||
         probe_loss_rate > 0.0 || stall_rate > 0.0;
}

void ChaosOptions::validate() const {
  check_rate(lane_crash_rate, "lane_crash_rate");
  check_rate(revocation_rate, "revocation_rate");
  check_rate(probe_loss_rate, "probe_loss_rate");
  check_rate(stall_rate, "stall_rate");
  if (retry.max_attempts < 1) {
    throw std::invalid_argument("chaos: retry.max_attempts must be >= 1");
  }
  if (!std::isfinite(retry.base_backoff_hours) ||
      retry.base_backoff_hours < 0.0 ||
      !std::isfinite(retry.max_backoff_hours) ||
      retry.max_backoff_hours < 0.0) {
    throw std::invalid_argument(
        "chaos: retry backoff bounds must be finite and >= 0");
  }
}

ChaosInjector::ChaosInjector(ChaosOptions options)
    : options_(options) {
  options_.validate();
}

std::uint64_t ChaosInjector::job_key(std::string_view job_name) noexcept {
  return util::fnv1a64(job_name);
}

double ChaosInjector::draw(std::uint64_t job_key, int step,
                           std::uint64_t salt) const noexcept {
  // Pure hash-based Bernoulli source: no shared stream to advance, so
  // the schedule cannot depend on which lane or thread asks first.
  std::uint64_t x = util::splitmix64(options_.seed ^ salt);
  x = util::splitmix64(x ^ job_key);
  x = util::splitmix64(x + static_cast<std::uint64_t>(step));
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

ChaosFault ChaosInjector::roll(std::uint64_t job_key,
                               int step) const noexcept {
  if (options_.lane_crash_rate > 0.0 &&
      draw(job_key, step, kSaltLaneCrash) < options_.lane_crash_rate) {
    return ChaosFault::kLaneCrash;
  }
  if (options_.revocation_rate > 0.0 &&
      draw(job_key, step, kSaltRevocation) < options_.revocation_rate) {
    return ChaosFault::kSpotRevocation;
  }
  if (options_.probe_loss_rate > 0.0 &&
      draw(job_key, step, kSaltProbeLoss) < options_.probe_loss_rate) {
    return ChaosFault::kProbeLoss;
  }
  if (options_.stall_rate > 0.0 &&
      draw(job_key, step, kSaltStall) < options_.stall_rate) {
    return ChaosFault::kSchedulerStall;
  }
  return ChaosFault::kNone;
}

double ChaosInjector::revocation_backoff_hours(std::uint64_t job_key,
                                               int ordinal) const {
  // A fresh forked stream per (job, ordinal): the jittered delay is a
  // pure function of the chaos identity, like every other decision.
  util::Rng rng(util::splitmix64(options_.seed ^ kSaltBackoff) ^
                util::splitmix64(job_key +
                                 static_cast<std::uint64_t>(ordinal)));
  return options_.retry.backoff_hours_after(ordinal + 1, rng);
}

}  // namespace mlcd::service
