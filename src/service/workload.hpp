// Workload: the unit of admission for the multi-tenant search service.
//
// A workload is a JSON file naming a fleet of deployment-search jobs —
// one per training job a tenant wants placed — each carrying the same
// knobs `mlcd deploy` accepts (model, scenario bounds, search method,
// seed, chaos knobs, journal path). The scheduler (scheduler.hpp) runs
// the fleet concurrently; parsing and validation live here so the CLI,
// the examples, and the tests share one format.
//
// Format (see docs/service.md and examples/workloads/):
//
//   {
//     "schema_version": 1,
//     "jobs": [
//       {
//         "name": "acme-resnet",          // required, unique
//         "tenant": "acme",               // quota bucket; default: name
//         "model": "resnet",              // required
//         "platform": "tensorflow",
//         "method": "heterbo",
//         "seed": 7,
//         "deadline_hours": 24.0,         // optional scenario bounds
//         "budget_dollars": 400.0,
//         "max_nodes": 50,
//         "use_spot": false,
//         "threads": 1,                   // per-job candidate-scan lanes
//         "gp_refit_every": 1,
//         "journal": "acme-resnet.mlcdj"  // optional durable journal
//       }
//     ]
//   }
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "mlcd/mlcd.hpp"

namespace mlcd::service {

/// One named job of a workload: a tenant label (the quota bucket) plus
/// the full deploy request.
struct JobSpec {
  std::string name;
  std::string tenant;
  system::JobRequest request;
};

/// A fleet of jobs admitted and scheduled together.
struct Workload {
  static constexpr int kJsonSchemaVersion = 1;

  std::vector<JobSpec> jobs;
};

/// Parses a workload document. Throws std::invalid_argument on
/// malformed JSON, an unsupported schema_version, missing required
/// fields, duplicate or empty job names, or out-of-range numbers.
/// (Unknown models/methods are *not* rejected here — the scheduler
/// surfaces those as per-job JobErrors, matching `mlcd deploy`.)
Workload parse_workload(std::string_view json);

/// Reads and parses a workload file; throws std::runtime_error when the
/// file cannot be read.
Workload load_workload(const std::string& path);

}  // namespace mlcd::service
