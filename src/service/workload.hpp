// Workload: the unit of admission for the multi-tenant search service.
//
// A workload is a JSON file naming a fleet of deployment-search jobs —
// one per training job a tenant wants placed — each carrying the same
// knobs `mlcd deploy` accepts (model, scenario bounds, search method,
// seed, chaos knobs, journal path). The scheduler (scheduler.hpp) runs
// the fleet concurrently; parsing and validation live here so the CLI,
// the examples, and the tests share one format.
//
// Format (see docs/service.md and examples/workloads/):
//
//   {
//     "schema_version": 1,
//     "jobs": [
//       {
//         "name": "acme-resnet",          // required, unique
//         "tenant": "acme",               // quota bucket; default: name
//         "model": "resnet",              // required
//         "platform": "tensorflow",
//         "method": "heterbo",
//         "seed": 7,
//         "deadline_hours": 24.0,         // optional scenario bounds
//         "budget_dollars": 400.0,
//         "max_nodes": 50,
//         "use_spot": false,
//         "threads": 1,                   // per-job candidate-scan lanes
//         "gp_refit_every": 1,
//         "journal": "acme-resnet.mlcdj", // optional durable journal
//         "journal_on_error": "degrade",  // "abort" (default) or
//                                         //   "degrade" (docs/crash-safety.md)
//         "fidelity_rungs": "0.5:1,0.25:2", // optional multi-fidelity
//         "fidelity_max_bias": 0.25,      //   ladder (docs/multi-fidelity.md)
//         "fidelity_max_noise": 0.06,
//         "slo_deadline_hours": 12.0,     // optional service SLOs
//         "slo_budget_dollars": 80.0,
//         "slo_max_probes": 30
//       }
//     ],
//     "scheduler": "sharded",             // optional dispatch mode:
//                                         //   "sharded" (default),
//                                         //   "central", "job" — the
//                                         //   --scheduler flag overrides
//     "cache_stripes": 16,                // optional probe-cache stripe
//                                         //   count (power of two; the
//                                         //   --cache-stripes flag
//                                         //   overrides)
//     "chaos": {                          // optional fault injection
//       "seed": 7,                        // (docs/chaos.md)
//       "lane_crash_rate": 0.05,
//       "revocation_rate": 0.05,
//       "probe_loss_rate": 0.02,
//       "stall_rate": 0.02
//     }
//   }
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "mlcd/mlcd.hpp"
#include "service/chaos.hpp"

namespace mlcd::service {

/// Per-tenant service-level objectives, enforced by the scheduler at
/// probe boundaries in *simulated* units (the session's own profiling
/// clock and billing meter), so a breach fires at the same step at any
/// thread count. A job over its SLO is not aborted: its session is
/// finalized early through the safe-mode path — best-known deployment
/// from the trace so far — and the outcome is typed `slo_exceeded`.
/// Distinct from JobRequest::requirements (deadline_hours /
/// budget_dollars), which shape the *search scenario* the tenant asked
/// to solve; SLOs bound what the service lets the search spend.
struct SloPolicy {
  double deadline_hours = 0.0;   ///< cap on spent profiling hours; 0 = off
  double budget_dollars = 0.0;   ///< cap on spent profiling dollars; 0 = off
  int max_probes = 0;            ///< cap on executed probes; 0 = off

  bool enabled() const noexcept {
    return deadline_hours > 0.0 || budget_dollars > 0.0 || max_probes > 0;
  }
};

/// One named job of a workload: a tenant label (the quota bucket) plus
/// the full deploy request and the tenant's service-level objectives.
struct JobSpec {
  std::string name;
  std::string tenant;
  system::JobRequest request;
  SloPolicy slo;
};

/// A fleet of jobs admitted and scheduled together, plus the fault
/// environment the batch runs under (defaults to fault-free).
struct Workload {
  static constexpr int kJsonSchemaVersion = 1;

  std::vector<JobSpec> jobs;
  ChaosOptions chaos;
  /// Dispatch mode the workload asks for: "sharded", "central", "job",
  /// or the legacy alias "probe" (= sharded). Empty = unset (the CLI
  /// default or --scheduler flag decides). Committed fleet files can
  /// pin the mode; the flag still overrides per run.
  std::string scheduler_mode;
  /// Probe-cache stripe count the workload asks for: 0 = the built-in
  /// default, otherwise a power of two. -1 = unset (CLI decides).
  int cache_stripes = -1;
};

/// Parses a workload document. Throws std::invalid_argument on
/// malformed JSON, an unsupported schema_version, missing required
/// fields, duplicate or empty job names, or out-of-range numbers.
/// (Unknown models/methods are *not* rejected here — the scheduler
/// surfaces those as per-job JobErrors, matching `mlcd deploy`.)
Workload parse_workload(std::string_view json);

/// Reads and parses a workload file; throws std::runtime_error when the
/// file cannot be read.
Workload load_workload(const std::string& path);

}  // namespace mlcd::service
