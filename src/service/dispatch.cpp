#include "service/dispatch.hpp"

#include <utility>

namespace mlcd::service {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

// --------------------------------------------------------------------
// JobClaims
// --------------------------------------------------------------------

JobClaims::JobClaims(std::vector<std::string> tenants, int tenant_max_jobs)
    : tenants_(std::move(tenants)),
      quota_(tenant_max_jobs),
      claimed_(tenants_.size(), false) {}

std::size_t JobClaims::try_claim() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < claimed_.size(); ++i) {
    if (claimed_[i]) continue;
    int& running = tenant_running_[tenants_[i]];
    if (quota_ > 0 && running >= quota_) {
      continue;  // quota-blocked; later jobs may still be eligible
    }
    claimed_[i] = true;
    ++running;
    peak_tenant_ = peak_tenant_ < running ? running : peak_tenant_;
    return i;
  }
  return kNoJob;
}

void JobClaims::finished(std::size_t job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --tenant_running_[tenants_[job]];
  }
  completed_.fetch_add(1, std::memory_order_acq_rel);
}

int JobClaims::peak_tenant() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_tenant_;
}

// --------------------------------------------------------------------
// ParkQueue
// --------------------------------------------------------------------

bool ParkQueue::admit_or_park(CapacityPool& pool, std::size_t job, int nodes,
                              std::size_t owner_lane,
                              const std::function<void()>& on_park) {
  // Fast path: nobody parked, so there is no FIFO to respect — a
  // lock-free try_acquire decides. A first park racing this admission
  // resolves at the try_acquire's linearization point: success means
  // this probe admitted as-if it arrived just before the park.
  if (parked_count_.load(std::memory_order_seq_cst) == 0 &&
      pool.try_acquire(nodes)) {
    return true;
  }
  // Slow path: serialize against sweeps. The emptiness re-check and the
  // acquire happen under the lock, so once sessions are parked nothing
  // ever overtakes them.
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty() && pool.try_acquire(nodes)) return true;
  queue_.push_back(Parked{job, nodes, owner_lane, Clock::now()});
  parked_count_.store(queue_.size(), std::memory_order_seq_cst);
  if (on_park) on_park();
  return false;
}

std::vector<ParkQueue::Resumed> ParkQueue::park_revoked(
    CapacityPool& pool, std::size_t job, int nodes, std::size_t owner_lane,
    const std::function<void()>& on_park) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Only reclaim a grant the pool could re-issue right now with nothing
  // parked ahead — otherwise the revocation is a pure park and the
  // nodes were never this session's to return.
  const bool reclaimed = queue_.empty() && pool.try_acquire(nodes);
  queue_.push_back(Parked{job, nodes, owner_lane, Clock::now()});
  parked_count_.store(queue_.size(), std::memory_order_seq_cst);
  if (on_park) on_park();
  if (!reclaimed) return {};
  // Park *before* revoking so the sweep can restage this very session
  // when nothing else holds the pool.
  pool.revoke(nodes);
  return sweep_locked(pool);
}

std::vector<ParkQueue::Resumed> ParkQueue::release_and_sweep(
    CapacityPool& pool, int nodes) {
  pool.release(nodes);
  std::lock_guard<std::mutex> lock(mutex_);
  return sweep_locked(pool);
}

std::vector<ParkQueue::Resumed> ParkQueue::revoke_and_sweep(
    CapacityPool& pool, int nodes) {
  pool.revoke(nodes);
  std::lock_guard<std::mutex> lock(mutex_);
  return sweep_locked(pool);
}

std::vector<ParkQueue::Resumed> ParkQueue::sweep_locked(CapacityPool& pool) {
  std::vector<Resumed> resumed;
  while (!queue_.empty()) {
    const Parked& head = queue_.front();
    if (!pool.try_acquire(head.nodes)) break;
    resumed.push_back(
        Resumed{head.job, head.owner_lane, seconds_since(head.since)});
    queue_.pop_front();
  }
  if (!resumed.empty()) {
    parked_count_.store(queue_.size(), std::memory_order_seq_cst);
  }
  return resumed;
}

// --------------------------------------------------------------------
// CentralDispatcher
// --------------------------------------------------------------------

std::size_t CentralDispatcher::next_job(std::size_t /*lane*/) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (claims_->done()) return kNoJob;
    if (!ready_.empty()) {
      const std::size_t job = ready_.front();
      ready_.pop_front();
      return job;
    }
    const std::size_t fresh = claims_->try_claim();
    if (fresh != kNoJob) return fresh;
    cv_.wait(lock);
  }
}

void CentralDispatcher::enqueue(std::size_t job, std::size_t /*owner_lane*/) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ready_.push_back(job);
  }
  cv_.notify_all();
}

void CentralDispatcher::on_job_finished() {
  // Taken-and-dropped on purpose: a lane between its done()/claim check
  // and cv_.wait holds mutex_, so ordering the notify behind the lock
  // means it cannot miss the wakeup that lets it observe done() or a
  // freed quota slot.
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
}

// --------------------------------------------------------------------
// ShardedDispatcher
// --------------------------------------------------------------------

ShardedDispatcher::ShardedDispatcher(std::size_t lanes, JobClaims* claims)
    : claims_(claims) {
  lanes_.reserve(lanes == 0 ? 1 : lanes);
  for (std::size_t i = 0; i < (lanes == 0 ? 1 : lanes); ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

std::size_t ShardedDispatcher::next_job(std::size_t lane) {
  Lane& own = *lanes_[lane % lanes_.size()];
  for (;;) {
    if (claims_->done()) return kNoJob;
    // 1. Own queue, front (the owner end).
    {
      std::lock_guard<std::mutex> lock(own.mutex);
      if (!own.queue.empty()) {
        const std::size_t job = own.queue.front();
        own.queue.pop_front();
        queued_.fetch_sub(1, std::memory_order_seq_cst);
        return job;
      }
    }
    // 2. Steal from a victim's back. Queued sessions may carry acquired
    // capacity grants, so draining them beats claiming fresh work; the
    // atomic count skips the scan entirely when every queue is empty.
    if (queued_.load(std::memory_order_seq_cst) > 0) {
      for (std::size_t k = 1; k < lanes_.size(); ++k) {
        Lane& victim = *lanes_[(lane + k) % lanes_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.queue.empty()) continue;
        const std::size_t job = victim.queue.back();
        victim.queue.pop_back();
        queued_.fetch_sub(1, std::memory_order_seq_cst);
        steals_.fetch_add(1, std::memory_order_relaxed);
        return job;
      }
    }
    // 3. Fresh job.
    {
      const std::size_t fresh = claims_->try_claim();
      if (fresh != kNoJob) return fresh;
    }
    // 4. Idle. The generation counter closes the scan-to-park window:
    // anything enqueued or finished after `gen` was captured bumps it,
    // so the wait predicate sees the change even if the notify fired
    // before this lane parked.
    std::unique_lock<std::mutex> idle(idle_mutex_);
    const std::uint64_t gen = generation_;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (queued_.load(std::memory_order_seq_cst) > 0 || claims_->done()) {
      // Work (or the batch end) raced in while we prepared to park:
      // rescan instead of idling with a non-empty run queue somewhere.
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      idle_rescues_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    idle_cv_.wait(idle,
                  [&] { return generation_ != gen || claims_->done(); });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void ShardedDispatcher::enqueue(std::size_t job, std::size_t owner_lane) {
  Lane& lane = *lanes_[owner_lane % lanes_.size()];
  {
    std::lock_guard<std::mutex> lock(lane.mutex);
    lane.queue.push_back(job);
  }
  // seq_cst bump *before* the sleeper check: pairs with the parking
  // lane's sleepers_-then-queued_ sequence so at least one side always
  // observes the other (no lane parks while this session sits queued).
  queued_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> idle(idle_mutex_);
      ++generation_;
    }
    idle_cv_.notify_all();
  }
}

void ShardedDispatcher::on_job_finished() {
  // Always bump: freed quota slots can make fresh jobs claimable, and
  // the final finish must propagate done() to every parked lane.
  {
    std::lock_guard<std::mutex> idle(idle_mutex_);
    ++generation_;
  }
  idle_cv_.notify_all();
}

}  // namespace mlcd::service
