#include "service/batch_report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/json.hpp"

namespace mlcd::service {

std::string_view slo_breach_name(SloBreach breach) noexcept {
  switch (breach) {
    case SloBreach::kNone:
      return "none";
    case SloBreach::kDeadline:
      return "deadline";
    case SloBreach::kBudget:
      return "budget";
    case SloBreach::kProbes:
      return "probes";
  }
  return "unknown";
}

int BatchReport::succeeded() const noexcept {
  int count = 0;
  for (const JobOutcome& job : jobs) count += job.ok ? 1 : 0;
  return count;
}

int BatchReport::total_cache_hits() const noexcept {
  int count = 0;
  for (const JobOutcome& job : jobs) count += job.stats.cache_hits;
  return count;
}

int BatchReport::total_session_parks() const noexcept {
  int count = 0;
  for (const JobOutcome& job : jobs) count += job.stats.session_parks;
  return count;
}

int BatchReport::total_lane_crashes() const noexcept {
  int count = 0;
  for (const JobOutcome& job : jobs) count += job.stats.lane_crashes;
  return count;
}

int BatchReport::total_revocations() const noexcept {
  int count = 0;
  for (const JobOutcome& job : jobs) count += job.stats.grant_revocations;
  return count;
}

int BatchReport::total_probe_losses() const noexcept {
  int count = 0;
  for (const JobOutcome& job : jobs) count += job.stats.probe_losses;
  return count;
}

int BatchReport::total_scheduler_stalls() const noexcept {
  int count = 0;
  for (const JobOutcome& job : jobs) count += job.stats.scheduler_stalls;
  return count;
}

int BatchReport::total_low_fidelity_probes() const noexcept {
  int count = 0;
  for (const JobOutcome& job : jobs) count += job.stats.low_fidelity_probes;
  return count;
}

int BatchReport::total_full_fidelity_probes() const noexcept {
  int count = 0;
  for (const JobOutcome& job : jobs) count += job.stats.full_fidelity_probes;
  return count;
}

int BatchReport::resumed_jobs() const noexcept {
  int count = 0;
  for (const JobOutcome& job : jobs) {
    count += job.stats.resumed_from_journal ? 1 : 0;
  }
  return count;
}

int BatchReport::replayed_reports() const noexcept {
  int count = 0;
  for (const JobOutcome& job : jobs) {
    count += job.stats.replayed_from_journal ? 1 : 0;
  }
  return count;
}

int BatchReport::slo_exceeded_count() const noexcept {
  int count = 0;
  for (const JobOutcome& job : jobs) {
    count += job.slo != SloBreach::kNone ? 1 : 0;
  }
  return count;
}

double BatchReport::total_lane_busy_seconds() const noexcept {
  double total = 0.0;
  for (const JobOutcome& job : jobs) total += job.stats.lane_busy_seconds;
  return total;
}

double BatchReport::lane_idle_fraction() const noexcept {
  const int lanes =
      std::min(threads, static_cast<int>(jobs.size()));
  const double lane_time = static_cast<double>(lanes) * makespan_seconds;
  if (lane_time <= 0.0) return 0.0;
  const double idle = 1.0 - total_lane_busy_seconds() / lane_time;
  return std::clamp(idle, 0.0, 1.0);
}

std::string BatchReport::render() const {
  std::ostringstream out;
  out << "=== MLCD batch report ===\n";
  out << "jobs: " << jobs.size() << " (" << succeeded() << " succeeded), "
      << "scheduler threads: " << threads << " ("
      << (probe_granularity ? "probe granularity, " + scheduler_mode +
                                  " dispatch"
                            : "job per lane")
      << ")";
  if (capacity_nodes > 0) out << ", capacity: " << capacity_nodes << " nodes";
  if (tenant_max_jobs > 0) {
    out << ", tenant quota: " << tenant_max_jobs << " concurrent";
  }
  out << "\n";
  out << std::fixed << std::setprecision(2);
  out << "makespan: " << makespan_seconds << " s, peak capacity in use: "
      << peak_capacity_nodes << " nodes, peak tenant concurrency: "
      << peak_tenant_jobs << "\n";
  out << "lanes: " << std::setprecision(1)
      << 100.0 * (1.0 - lane_idle_fraction()) << "% busy ("
      << std::setprecision(2) << total_lane_busy_seconds()
      << " s occupied, " << total_session_parks() << " session parks, "
      << lane_steals << " steals)\n";
  out << "probe cache: " << cache.size << " records, " << cache.hits << "/"
      << cache.lookups << " hits\n";
  if (total_low_fidelity_probes() > 0) {
    out << "fidelity: " << total_low_fidelity_probes()
        << " reduced-rung probes, " << total_full_fidelity_probes()
        << " full-fidelity probes\n";
  }
  if (resumed_jobs() + replayed_reports() > 0) {
    out << "resume: " << replayed_reports()
        << " reports replayed from journals, " << resumed_jobs()
        << " in-flight jobs resumed\n";
  }
  if (batch_journal_degraded) {
    out << "WARNING: batch manifest write failed ("
        << batch_journal_degrade_reason
        << "); results are complete but this batch is no longer "
           "kill-resumable\n";
  }
  if (chaos.enabled()) {
    out << "chaos (seed " << chaos.seed << "): "
        << total_lane_crashes() << " lane crashes, "
        << total_revocations() << " revocations, "
        << total_probe_losses() << " probe losses, "
        << total_scheduler_stalls() << " stalls absorbed; "
        << slo_exceeded_count() << " jobs over SLO\n";
  }
  for (const JobOutcome& job : jobs) {
    out << "--- " << job.name << " (tenant " << job.tenant << ")";
    if (!job.ok) {
      out << " FAILED [" << job.error_code << "]: " << job.error_message
          << "\n";
      continue;
    }
    if (job.slo != SloBreach::kNone) {
      out << " [" << kSloExceeded << ": " << slo_breach_name(job.slo)
          << "]";
    }
    out << "\n";
    out << "    " << job.report.result.method << " -> "
        << job.report.result.best_description << "\n";
    out << "    queue wait " << job.stats.queue_wait_seconds << " s, ran "
        << job.stats.run_seconds << " s; cache hits "
        << job.stats.cache_hits << " (reused $" << job.stats.reused_probe_cost
        << "), published " << job.stats.cache_publishes
        << "; capacity stalls " << job.stats.capacity_stalls << " ("
        << job.stats.capacity_stall_seconds << " s), parks "
        << job.stats.session_parks << ", lane busy "
        << job.stats.lane_busy_seconds << " s\n";
    if (job.stats.lane_crashes + job.stats.grant_revocations +
            job.stats.probe_losses + job.stats.scheduler_stalls >
        0) {
      out << "    chaos absorbed: " << job.stats.lane_crashes
          << " lane crashes, " << job.stats.grant_revocations
          << " revocations (" << job.stats.chaos_backoff_hours
          << " h backoff), " << job.stats.probe_losses
          << " probe losses, " << job.stats.scheduler_stalls
          << " stalls\n";
    }
  }
  return out.str();
}

std::string BatchReport::to_json() const {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema_version").value(kJsonSchemaVersion);
  json.key("scheduler").begin_object();
  json.key("threads").value(threads);
  json.key("mode").value(scheduler_mode);
  json.key("probe_granularity").value(probe_granularity);
  json.key("lane_steals").value(lane_steals);
  json.key("capacity_nodes").value(capacity_nodes);
  json.key("tenant_max_jobs").value(tenant_max_jobs);
  json.key("makespan_seconds").value(makespan_seconds);
  json.key("peak_capacity_nodes").value(peak_capacity_nodes);
  json.key("peak_tenant_jobs").value(peak_tenant_jobs);
  json.key("lane_idle_fraction").value(lane_idle_fraction());
  json.key("resumed_jobs").value(resumed_jobs());
  json.key("replayed_reports").value(replayed_reports());
  if (batch_journal_degraded) {
    // Sparse warning keys (schema v5): only a degraded batch carries
    // them, so journaled and journal-less happy-path documents stay
    // key-identical.
    json.key("batch_journal_degraded").value(true);
    json.key("batch_journal_degrade_reason")
        .value(batch_journal_degrade_reason);
  }
  json.key("chaos_seed").value(static_cast<std::int64_t>(chaos.seed));
  json.key("chaos").begin_object();
  json.key("enabled").value(chaos.enabled());
  json.key("lane_crash_rate").value(chaos.lane_crash_rate);
  json.key("revocation_rate").value(chaos.revocation_rate);
  json.key("probe_loss_rate").value(chaos.probe_loss_rate);
  json.key("stall_rate").value(chaos.stall_rate);
  json.end_object();
  json.end_object();
  json.key("faults").begin_object();
  json.key("lane_crashes").value(total_lane_crashes());
  json.key("grant_revocations").value(total_revocations());
  json.key("probe_losses").value(total_probe_losses());
  json.key("scheduler_stalls").value(total_scheduler_stalls());
  json.key("slo_exceeded").value(slo_exceeded_count());
  json.end_object();
  json.key("fidelity").begin_object();
  json.key("low_fidelity_probes").value(total_low_fidelity_probes());
  json.key("full_fidelity_probes").value(total_full_fidelity_probes());
  json.end_object();
  json.key("probe_cache").begin_object();
  json.key("lookups").value(cache.lookups);
  json.key("hits").value(cache.hits);
  json.key("inserts").value(cache.inserts);
  json.key("size").value(static_cast<std::int64_t>(cache.size));
  json.key("stripes").value(cache.stripes);
  json.key("stripe_max_imbalance").value(cache.max_stripe_imbalance);
  json.end_object();
  json.key("jobs").begin_array();
  for (const JobOutcome& job : jobs) {
    json.begin_object();
    json.key("name").value(job.name);
    json.key("tenant").value(job.tenant);
    json.key("ok").value(job.ok);
    json.key("stats").begin_object();
    json.key("queue_wait_seconds").value(job.stats.queue_wait_seconds);
    json.key("run_seconds").value(job.stats.run_seconds);
    json.key("cache_hits").value(job.stats.cache_hits);
    json.key("cache_publishes").value(job.stats.cache_publishes);
    json.key("reused_probe_cost").value(job.stats.reused_probe_cost);
    json.key("capacity_stalls").value(job.stats.capacity_stalls);
    json.key("capacity_stall_seconds")
        .value(job.stats.capacity_stall_seconds);
    json.key("session_parks").value(job.stats.session_parks);
    json.key("lane_busy_seconds").value(job.stats.lane_busy_seconds);
    json.key("lane_crashes").value(job.stats.lane_crashes);
    json.key("grant_revocations").value(job.stats.grant_revocations);
    json.key("probe_losses").value(job.stats.probe_losses);
    json.key("scheduler_stalls").value(job.stats.scheduler_stalls);
    json.key("chaos_backoff_hours").value(job.stats.chaos_backoff_hours);
    json.key("low_fidelity_probes").value(job.stats.low_fidelity_probes);
    json.key("full_fidelity_probes").value(job.stats.full_fidelity_probes);
    json.key("resumed_from_journal").value(job.stats.resumed_from_journal);
    json.key("replayed_from_journal").value(job.stats.replayed_from_journal);
    json.end_object();
    json.key("slo").begin_object();
    json.key("exceeded").value(job.slo != SloBreach::kNone);
    json.key("code").value(job.slo != SloBreach::kNone
                               ? std::string(kSloExceeded)
                               : std::string());
    json.key("breach").value(std::string(slo_breach_name(job.slo)));
    json.end_object();
    if (job.ok) {
      // The solo-identical RunReport, spliced in verbatim: its bytes are
      // exactly `mlcd deploy --json` of the same JobSpec.
      json.key("report").raw(job.report.to_json());
    } else {
      json.key("error").begin_object();
      json.key("code").value(job.error_code);
      json.key("message").value(job.error_message);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace mlcd::service
