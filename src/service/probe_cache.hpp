// Shared cross-job probe cache (service layer).
//
// A fleet of concurrent searches probes the same deployment catalog —
// HeterBO alone opens every run with one single-node probe per instance
// type — so the service measures each distinct probe once and serves
// every later identical request from this cache. "Identical" is decided
// by profiler::ProbeKey, which fingerprints every input of the probe
// computation (substrate + full prior probe history); see
// profiler/probe_gate.hpp for why a key match implies a bit-identical
// outcome, which is what keeps batch traces equal to solo traces.
//
// Records are stored as journal::ProbeRecord measurement images (the
// same representation crash-resume replays), first writer wins, and the
// map only ever grows — entries are immutable once published, so a hit
// can be copied out under a short lock with no coherence protocol.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "journal/journal.hpp"
#include "profiler/probe_gate.hpp"

namespace mlcd::service {

/// Thread-safe, grow-only map from probe identity to measured outcome.
class ProbeCache {
 public:
  struct Stats {
    std::int64_t lookups = 0;
    std::int64_t hits = 0;
    std::int64_t inserts = 0;   ///< records accepted (first writer)
    std::int64_t rejected = 0;  ///< publish lost the first-writer race
    std::size_t size = 0;
  };

  /// The record published under `key`, if any.
  std::optional<journal::ProbeRecord> lookup(const profiler::ProbeKey& key);

  /// Publishes a measurement; first writer wins (a concurrent duplicate
  /// is dropped — by the ProbeKey contract it holds identical bytes).
  /// Returns true when this call inserted the record.
  bool insert(const profiler::ProbeKey& key,
              const journal::ProbeRecord& record);

  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<profiler::ProbeKey, journal::ProbeRecord,
                     profiler::ProbeKeyHash>
      records_;
  Stats stats_;
};

}  // namespace mlcd::service
