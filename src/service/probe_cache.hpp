// Shared cross-job probe cache (service layer).
//
// A fleet of concurrent searches probes the same deployment catalog —
// HeterBO alone opens every run with one single-node probe per instance
// type — so the service measures each distinct probe once and serves
// every later identical request from this cache. "Identical" is decided
// by profiler::ProbeKey, which fingerprints every input of the probe
// computation (substrate + full prior probe history); see
// profiler/probe_gate.hpp for why a key match implies a bit-identical
// outcome, which is what keeps batch traces equal to solo traces.
//
// The map is sharded into N power-of-two stripes keyed by the ProbeKey
// hash: concurrent lanes looking up or publishing *different* keys take
// different stripe mutexes, so the cache stops being the fleet-wide
// serialization point it was as a single-mutex map. Sharding is
// invisible to the replay semantics — which stripe a key lands on never
// changes what record a lookup returns — and the ProbeGate contract is
// untouched.
//
// Records are stored as journal::ProbeRecord measurement images (the
// same representation crash-resume replays), first writer wins, and the
// stripes only ever grow — entries are immutable once published, so a
// hit can be copied out under a short per-stripe lock with no coherence
// protocol. Counters are relaxed atomics (per stripe) aggregated at
// stats() time: hot-path bumps never contend, and a stats() racing live
// lookups reads a recent — not torn — snapshot.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "journal/journal.hpp"
#include "profiler/probe_gate.hpp"

namespace mlcd::service {

/// Thread-safe, grow-only map from probe identity to measured outcome,
/// sharded over independently locked stripes.
class ProbeCache {
 public:
  /// Default stripe count when the caller passes 0 (auto).
  static constexpr int kDefaultStripes = 16;

  struct Stats {
    std::int64_t lookups = 0;
    std::int64_t hits = 0;
    std::int64_t inserts = 0;   ///< records accepted (first writer)
    std::int64_t rejected = 0;  ///< publish lost the first-writer race
    std::size_t size = 0;
    int stripes = 0;            ///< stripe count the cache ran with
    /// Largest stripe's record count divided by the mean stripe record
    /// count (1.0 = perfectly balanced; 0 while the cache is empty).
    /// A hash that funnels keys into few stripes shows up here long
    /// before it shows up as lock contention.
    double max_stripe_imbalance = 0.0;
  };

  /// `stripes` must be 0 (= kDefaultStripes) or a power of two; throws
  /// std::invalid_argument otherwise.
  explicit ProbeCache(int stripes = 0);

  /// The record published under `key`, if any.
  std::optional<journal::ProbeRecord> lookup(const profiler::ProbeKey& key);

  /// Publishes a measurement; first writer wins (a concurrent duplicate
  /// is dropped — by the ProbeKey contract it holds identical bytes).
  /// Returns true when this call inserted the record.
  bool insert(const profiler::ProbeKey& key,
              const journal::ProbeRecord& record);

  int stripe_count() const noexcept {
    return static_cast<int>(stripes_.size());
  }

  /// Aggregated across stripes. Safe to call while lanes are live: the
  /// counters are relaxed atomics, so the snapshot is recent and
  /// untorn, just not a cross-stripe linearization point.
  Stats stats() const;

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<profiler::ProbeKey, journal::ProbeRecord,
                       profiler::ProbeKeyHash>
        records;
    // Relaxed: each is an independent event counter; stats() only needs
    // a recent sum, never cross-counter ordering.
    std::atomic<std::int64_t> lookups{0};
    std::atomic<std::int64_t> hits{0};
    std::atomic<std::int64_t> inserts{0};
    std::atomic<std::int64_t> rejected{0};
  };

  Stripe& stripe_for(const profiler::ProbeKey& key);

  // unique_ptr elements: Stripe is neither movable nor copyable (mutex,
  // atomics), and the vector is sized once in the constructor.
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t mask_ = 0;  ///< stripes_.size() - 1 (power-of-two index mask)
};

}  // namespace mlcd::service
