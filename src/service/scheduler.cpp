#include "service/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "service/capacity.hpp"
#include "service/probe_cache.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace mlcd::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-job ProbeGate: cache lookup first, then capacity admission.
/// The cache and pool are shared (and internally locked); `stats` is the
/// job's own and is only ever touched from the job's thread — the
/// profiler calls the gate serially.
class JobGate final : public profiler::ProbeGate {
 public:
  JobGate(ProbeCache* cache, CapacityPool* capacity, JobStats* stats)
      : cache_(cache), capacity_(capacity), stats_(stats) {}

  std::optional<journal::ProbeRecord> admit(
      const profiler::ProbeKey& key, const cloud::Deployment& d) override {
    if (cache_ != nullptr) {
      if (std::optional<journal::ProbeRecord> hit = cache_->lookup(key)) {
        // Served, not launched: no capacity consumed, and the service-
        // level ledger bills the measurement to the tenant that first
        // ran it — this job only re-accounts it internally.
        ++stats_->cache_hits;
        stats_->reused_probe_cost += hit->profile_cost;
        return hit;
      }
    }
    const CapacityPool::Admission admission = capacity_->acquire(d.nodes);
    if (admission.stalled) {
      ++stats_->capacity_stalls;
      stats_->capacity_stall_seconds += admission.wait_seconds;
    }
    return std::nullopt;
  }

  void publish(const profiler::ProbeKey& key, const cloud::Deployment& d,
               const journal::ProbeRecord& outcome) override {
    capacity_->release(d.nodes);
    if (cache_ != nullptr) {
      cache_->insert(key, outcome);
      ++stats_->cache_publishes;
    }
  }

  void abandon(const cloud::Deployment& d) noexcept override {
    capacity_->release(d.nodes);
  }

 private:
  ProbeCache* cache_;
  CapacityPool* capacity_;
  JobStats* stats_;
};

}  // namespace

Scheduler::Scheduler(const system::Mlcd& mlcd, SchedulerOptions options)
    : mlcd_(&mlcd), options_(options) {
  if (options_.threads < 1) options_.threads = 1;
  if (options_.capacity_nodes < 0) {
    throw std::invalid_argument("Scheduler: negative capacity_nodes");
  }
  if (options_.tenant_max_jobs < 0) {
    throw std::invalid_argument("Scheduler: negative tenant_max_jobs");
  }
}

BatchReport Scheduler::run(const Workload& workload) const {
  const std::size_t n = workload.jobs.size();
  if (n == 0) {
    throw std::invalid_argument("Scheduler: empty workload");
  }
  // Admission control: a probe larger than the whole pool would wedge
  // the FIFO queue forever — refuse the workload instead of deadlocking
  // mid-batch. (Searchers never probe beyond the job's max_nodes.)
  if (options_.capacity_nodes > 0) {
    for (const JobSpec& spec : workload.jobs) {
      if (spec.request.max_nodes > options_.capacity_nodes) {
        throw std::invalid_argument(
            "Scheduler: admission refused — job '" + spec.name +
            "' may probe up to " + std::to_string(spec.request.max_nodes) +
            " nodes but the capacity pool holds only " +
            std::to_string(options_.capacity_nodes));
      }
    }
  }

  BatchReport report;
  report.threads = options_.threads;
  report.capacity_nodes = options_.capacity_nodes;
  report.tenant_max_jobs = options_.tenant_max_jobs;
  report.jobs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    report.jobs[i].name = workload.jobs[i].name;
    report.jobs[i].tenant = workload.jobs[i].tenant;
  }

  ProbeCache cache;
  CapacityPool capacity(options_.capacity_nodes);

  // Job claiming: workers pull the lowest-index unclaimed job whose
  // tenant is under quota; when every unclaimed job is quota-blocked
  // they sleep until some job completes. A quota slot is only ever held
  // by a running job and running jobs always finish, so this cannot
  // deadlock.
  std::mutex mutex;
  std::condition_variable claim_cv;
  std::vector<bool> claimed(n, false);
  std::map<std::string, int> tenant_running;
  int peak_tenant = 0;
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

  const Clock::time_point batch_start = Clock::now();

  const auto claim_next = [&]() -> std::size_t {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      bool any_unclaimed = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (claimed[i]) continue;
        any_unclaimed = true;
        int& running = tenant_running[workload.jobs[i].tenant];
        if (options_.tenant_max_jobs > 0 &&
            running >= options_.tenant_max_jobs) {
          continue;  // quota-blocked; later jobs may still be eligible
        }
        claimed[i] = true;
        ++running;
        peak_tenant = std::max(peak_tenant, running);
        return i;
      }
      if (!any_unclaimed) return kNone;
      claim_cv.wait(lock);
    }
  };
  const auto complete = [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(mutex);
    --tenant_running[workload.jobs[i].tenant];
    claim_cv.notify_all();
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(options_.threads, n));
  util::ThreadPool pool(workers);
  pool.parallel_for(
      static_cast<std::size_t>(workers),
      [&](std::size_t begin, std::size_t end) {
        // One claim loop per worker lane (chunks are [w, w+1)).
        for (std::size_t lane = begin; lane < end; ++lane) {
          for (std::size_t i = claim_next(); i != kNone; i = claim_next()) {
            const JobSpec& spec = workload.jobs[i];
            JobOutcome& outcome = report.jobs[i];
            outcome.stats.queue_wait_seconds = seconds_since(batch_start);
            const Clock::time_point job_start = Clock::now();
            JobGate gate(options_.share_probes ? &cache : nullptr, &capacity,
                         &outcome.stats);
            system::JobRequest request = spec.request;
            request.probe_gate = &gate;
            try {
              system::DeployResult result = mlcd_->deploy(request);
              if (result.ok()) {
                outcome.ok = true;
                outcome.report = std::move(result).report();
              } else {
                outcome.error_code = std::string(
                    system::job_error_code_name(result.error().code));
                outcome.error_message = result.error().message;
              }
            } catch (const std::exception& e) {
              // One job's internal failure must not take the fleet down.
              outcome.error_code = "internal";
              outcome.error_message = e.what();
            }
            outcome.stats.run_seconds = seconds_since(job_start);
            if (!outcome.ok) {
              MLCD_LOG(kWarn, "service")
                  << "job '" << spec.name << "' failed ["
                  << outcome.error_code << "]: " << outcome.error_message;
            }
            complete(i);
          }
        }
      });

  report.makespan_seconds = seconds_since(batch_start);
  report.peak_capacity_nodes = capacity.peak_in_use();
  report.peak_tenant_jobs = peak_tenant;
  report.cache = cache.stats();
  MLCD_LOG(kInfo, "service")
      << "batch of " << n << " jobs done in " << report.makespan_seconds
      << " s (" << report.succeeded() << " ok, "
      << report.total_cache_hits() << " cache hits, peak "
      << report.peak_capacity_nodes << " nodes)";
  return report;
}

}  // namespace mlcd::service
