#include "service/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "journal/journal.hpp"
#include "search/probe_driver.hpp"
#include "search/search_result.hpp"
#include "service/batch_journal.hpp"
#include "service/capacity.hpp"
#include "service/chaos.hpp"
#include "service/dispatch.hpp"
#include "service/probe_cache.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace mlcd::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// SLO check against the session's *simulated* spend — deterministic at
/// any thread count, unlike every wall-clock quantity the scheduler
/// tracks.
SloBreach slo_breach(const SloPolicy& slo,
                     const search::SearchSession& session) {
  if (!slo.enabled()) return SloBreach::kNone;
  if (slo.max_probes > 0 &&
      static_cast<int>(session.trace().size()) >= slo.max_probes) {
    return SloBreach::kProbes;
  }
  if (slo.deadline_hours > 0.0 &&
      session.spent_hours() >= slo.deadline_hours) {
    return SloBreach::kDeadline;
  }
  if (slo.budget_dollars > 0.0 &&
      session.spent_cost() >= slo.budget_dollars) {
    return SloBreach::kBudget;
  }
  return SloBreach::kNone;
}

// --------------------------------------------------------------------
// Durable batches (--journal-dir)
// --------------------------------------------------------------------

/// How one job of a durable batch starts, decided from the manifest
/// before any lane runs: fresh (create its journal), resumed (continue
/// an in-flight journal), or replayed (re-materialize a finished report
/// from its journal with zero probes re-executed).
struct DurablePlan {
  /// Full path of the job's auto-managed run journal.
  std::string journal_file;
  /// Request wiring: true sets journal_path (create/truncate), false
  /// sets resume_path (replay + continue).
  bool fresh_create = true;
  bool resumed = false;
  bool replayed = false;
  /// The manifest's finished-record digest; a replayed report that
  /// hashes differently diverged and is refused (kReplayDiverged).
  std::uint64_t expected_digest = 0;
};

/// The batch manifest plus the batch-level write-failure policy.
/// append() never throws: a write failure latches the first error,
/// stops all further manifest writes (both policies — a half-written
/// manifest must not keep growing), and Scheduler::run settles the
/// policy after the fleet drains: kAbort rethrows it as a typed
/// JournalError, kDegrade flags the report and carries on. Either way
/// no in-memory job state is touched.
class ManifestHandle {
 public:
  /// `initial_error` non-empty latches the handle immediately: the
  /// manifest failed to even be created under the degrade policy, so
  /// `manifest` is null and every append is a no-op.
  ManifestHandle(std::unique_ptr<BatchJournal> manifest,
                 journal::OnError on_error,
                 std::string initial_error = {})
      : manifest_(std::move(manifest)),
        on_error_(on_error),
        error_(std::move(initial_error)) {}

  void append(const BatchJobRecord& record) noexcept {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_.empty() || manifest_ == nullptr) return;
    }
    try {
      manifest_->append(record);
    } catch (const journal::JournalError& e) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error_.empty()) error_ = e.what();
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error_.empty()) error_ = e.what();
    }
  }

  journal::OnError on_error() const noexcept { return on_error_; }

  /// First write error, empty while the manifest is healthy.
  std::string error() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return error_;
  }

 private:
  std::unique_ptr<BatchJournal> manifest_;
  journal::OnError on_error_;
  mutable std::mutex mutex_;
  std::string error_;
};

/// Basename of job i's auto-managed journal: stable across resumes
/// (index + sanitized name), so a resumed process derives the same path
/// without trusting manifest contents.
std::string job_journal_name(std::size_t i, const std::string& name) {
  std::string safe;
  safe.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    safe.push_back(ok ? c : '_');
  }
  return "job-" + std::to_string(i) + "-" + safe + ".mlcdj";
}

/// Refuses a resume whose workload or capacity/quota configuration does
/// not fingerprint-match the manifest: it describes a different batch.
void verify_manifest_header(const BatchManifestHeader& recorded,
                            const BatchManifestHeader& expected,
                            const std::string& path) {
  std::string diff;
  if (recorded.workload_hash != expected.workload_hash) {
    diff = "workload";
  } else if (recorded.chaos_seed != expected.chaos_seed) {
    diff = "chaos_seed";
  } else if (recorded.job_count != expected.job_count) {
    diff = "job_count";
  } else if (recorded.capacity_nodes != expected.capacity_nodes) {
    diff = "capacity_nodes";
  } else if (recorded.tenant_max_jobs != expected.tenant_max_jobs) {
    diff = "tenant_max_jobs";
  }
  if (!diff.empty()) {
    throw journal::JournalError(
        journal::JournalErrorCode::kHeaderMismatch,
        "batch manifest '" + path + "' records a different batch: " + diff +
            " differs");
  }
}

/// Plans a durable batch: verifies no job claims its own journal,
/// creates/resumes the manifest, decides each job's recovery path, and
/// rewrites the workload copy `durable` with the auto-managed journal
/// wiring. Throws journal::JournalError for every manifest-read problem
/// (resume-side read failures refuse regardless of policy) and
/// std::invalid_argument for admission conflicts.
std::vector<DurablePlan> plan_durable_batch(
    const Workload& workload, const SchedulerOptions& options,
    Workload& durable, std::unique_ptr<BatchJournal>& manifest,
    std::string& create_error) {
  namespace fs = std::filesystem;
  for (const JobSpec& spec : workload.jobs) {
    if (!spec.request.journal_path.empty() ||
        !spec.request.resume_path.empty() ||
        !spec.request.replay_records.empty()) {
      throw std::invalid_argument(
          "Scheduler: admission refused — job '" + spec.name +
          "' declares its own journal/resume, but --journal-dir manages "
          "every per-job journal");
    }
  }
  std::error_code ec;
  fs::create_directories(options.journal_dir, ec);
  if (ec) {
    journal::JournalError error(
        journal::JournalErrorCode::kIo,
        "cannot create journal dir '" + options.journal_dir + "' (" +
            ec.message() + ")");
    // Resume cannot proceed without reading the manifest, and abort
    // surfaces the failure before any probe spends. Degrade runs the
    // batch journal-less: each job's own journal create will fail and
    // degrade the same way, so the batch still completes correctly.
    if (options.resume ||
        options.journal_on_error == journal::OnError::kAbort) {
      throw error;
    }
    create_error = error.what();
  }

  const std::size_t n = workload.jobs.size();
  const std::string manifest_path = options.journal_dir + "/batch.mlcdb";
  const BatchManifestHeader header = make_manifest_header(
      workload, options.capacity_nodes, options.tenant_max_jobs);
  std::vector<DurablePlan> plans(n);
  for (std::size_t i = 0; i < n; ++i) {
    plans[i].journal_file = options.journal_dir + "/" +
                            job_journal_name(i, workload.jobs[i].name);
  }

  if (options.resume) {
    const BatchManifestContents contents = read_manifest(manifest_path);
    verify_manifest_header(contents.header, header, manifest_path);
    int replays = 0;
    int resumes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const BatchJobState& state = contents.jobs[i];
      const bool have_file = fs::exists(plans[i].journal_file);
      if (state.finished && state.ok && have_file) {
        // Finished before the kill: replay the whole report from the
        // per-job journal, bit-identically and probe-free, then verify
        // it against the manifest digest.
        plans[i].fresh_create = false;
        plans[i].replayed = true;
        plans[i].expected_digest = state.report_digest;
        ++replays;
      } else if (state.assigned && have_file) {
        // In flight when the process died: replay the journaled prefix
        // and execute the rest live, continuing the same journal.
        plans[i].fresh_create = false;
        plans[i].resumed = true;
        ++resumes;
      }
      // Everything else — never started, finished-but-failed (failures
      // are deterministic), or a journal file lost from disk — runs
      // fresh, re-creating its journal.
    }
    manifest = BatchJournal::append_to(manifest_path, contents.valid_bytes);
    MLCD_LOG(kInfo, "service")
        << "resuming batch from " << manifest_path << ": " << replays
        << " finished reports to replay, " << resumes
        << " in-flight jobs to resume, "
        << (n - static_cast<std::size_t>(replays + resumes))
        << " to run fresh"
        << (contents.truncated_tail ? " (torn manifest tail dropped)" : "");
  } else if (create_error.empty()) {
    try {
      manifest = BatchJournal::create(manifest_path, header);
      // Write-ahead: the whole fleet is journaled as admitted before any
      // probe runs, so a kill during job 0 still knows the batch roster.
      for (std::size_t i = 0; i < n; ++i) {
        BatchJobRecord record;
        record.phase = BatchJobPhase::kAdmitted;
        record.job = static_cast<int>(i);
        record.name = workload.jobs[i].name;
        manifest->append(record);
      }
    } catch (const journal::JournalError& e) {
      // Write failures obey the batch policy even this early: degrade
      // runs the batch manifest-less (per-job journals may still work),
      // abort surfaces the typed error before any probe spends.
      if (options.journal_on_error == journal::OnError::kAbort) throw;
      manifest.reset();
      create_error = e.what();
    }
  }

  durable = workload;
  for (std::size_t i = 0; i < n; ++i) {
    system::JobRequest& request = durable.jobs[i].request;
    request.journal_on_error = options.journal_on_error;
    if (plans[i].fresh_create) {
      request.journal_path = plans[i].journal_file;
    } else {
      request.resume_path = plans[i].journal_file;
    }
  }
  return plans;
}

// --------------------------------------------------------------------
// Legacy job-per-lane mode
// --------------------------------------------------------------------

/// Per-job ProbeGate: cache lookup first, then (blocking) capacity
/// admission. The cache and pool are shared (and internally locked);
/// `stats` is the job's own and is only ever touched from the job's
/// thread — the profiler calls the gate serially.
class JobGate final : public profiler::ProbeGate {
 public:
  JobGate(ProbeCache* cache, CapacityPool* capacity, JobStats* stats)
      : cache_(cache), capacity_(capacity), stats_(stats) {}

  std::optional<journal::ProbeRecord> admit(
      const profiler::ProbeKey& key, const cloud::Deployment& d) override {
    if (cache_ != nullptr) {
      if (std::optional<journal::ProbeRecord> hit = cache_->lookup(key)) {
        // Served, not launched: no capacity consumed, and the service-
        // level ledger bills the measurement to the tenant that first
        // ran it — this job only re-accounts it internally.
        ++stats_->cache_hits;
        stats_->reused_probe_cost += hit->profile_cost;
        return hit;
      }
    }
    const CapacityPool::Admission admission = capacity_->acquire(d.nodes);
    if (admission.stalled) {
      ++stats_->capacity_stalls;
      stats_->capacity_stall_seconds += admission.wait_seconds;
    }
    return std::nullopt;
  }

  void publish(const profiler::ProbeKey& key, const cloud::Deployment& d,
               const journal::ProbeRecord& outcome) override {
    capacity_->release(d.nodes);
    if (cache_ != nullptr) {
      cache_->insert(key, outcome);
      ++stats_->cache_publishes;
    }
  }

  void abandon(const cloud::Deployment& d) noexcept override {
    capacity_->release(d.nodes);
  }

 private:
  ProbeCache* cache_;
  CapacityPool* capacity_;
  JobStats* stats_;
};

/// The pre-ask/tell scheduler: one job owns one lane from claim to
/// completion, blocking inside CapacityPool::acquire while its lane sits
/// idle. Kept behind SchedulerOptions::probe_granularity = false as the
/// baseline the scheduler-efficiency bench compares against. Returns
/// the peak per-tenant concurrency.
int run_job_mode(const system::Mlcd& mlcd, const SchedulerOptions& options,
                 const Workload& workload, BatchReport& report,
                 ProbeCache* cache, CapacityPool& capacity,
                 util::ThreadPool& scan_pool, Clock::time_point batch_start) {
  const std::size_t n = workload.jobs.size();

  // Job claiming: workers pull the lowest-index unclaimed job whose
  // tenant is under quota; when every unclaimed job is quota-blocked
  // they sleep until some job completes. A quota slot is only ever held
  // by a running job and running jobs always finish, so this cannot
  // deadlock.
  std::mutex mutex;
  std::condition_variable claim_cv;
  std::vector<bool> claimed(n, false);
  std::map<std::string, int> tenant_running;
  int peak_tenant = 0;

  const auto claim_next = [&]() -> std::size_t {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      bool any_unclaimed = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (claimed[i]) continue;
        any_unclaimed = true;
        int& running = tenant_running[workload.jobs[i].tenant];
        if (options.tenant_max_jobs > 0 &&
            running >= options.tenant_max_jobs) {
          continue;  // quota-blocked; later jobs may still be eligible
        }
        claimed[i] = true;
        ++running;
        peak_tenant = std::max(peak_tenant, running);
        return i;
      }
      if (!any_unclaimed) return kNoJob;
      claim_cv.wait(lock);
    }
  };
  const auto complete = [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(mutex);
    --tenant_running[workload.jobs[i].tenant];
    claim_cv.notify_all();
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(options.threads, n));
  util::ThreadPool pool(workers);
  pool.parallel_for(
      static_cast<std::size_t>(workers),
      [&](std::size_t begin, std::size_t end) {
        // One claim loop per worker lane (chunks are [w, w+1)).
        for (std::size_t lane = begin; lane < end; ++lane) {
          for (std::size_t i = claim_next(); i != kNoJob; i = claim_next()) {
            const JobSpec& spec = workload.jobs[i];
            JobOutcome& outcome = report.jobs[i];
            outcome.stats.queue_wait_seconds = seconds_since(batch_start);
            const Clock::time_point job_start = Clock::now();
            JobGate gate(cache, &capacity, &outcome.stats);
            system::JobRequest request = spec.request;
            request.probe_gate = &gate;
            request.scan_pool = &scan_pool;
            try {
              system::DeployResult result = mlcd.deploy(request);
              if (result.ok()) {
                outcome.ok = true;
                outcome.report = std::move(result).report();
              } else {
                outcome.error_code = std::string(
                    system::job_error_code_name(result.error().code));
                outcome.error_message = result.error().message;
              }
            } catch (const std::exception& e) {
              // One job's internal failure must not take the fleet down.
              outcome.error_code = "internal";
              outcome.error_message = e.what();
            }
            outcome.stats.run_seconds = seconds_since(job_start);
            // The lane was occupied for the whole run except the time
            // the gate spent blocked inside CapacityPool::acquire —
            // which job-per-lane charges as *idle* lane time, the
            // inefficiency probe granularity removes.
            outcome.stats.lane_busy_seconds =
                std::max(0.0, outcome.stats.run_seconds -
                                  outcome.stats.capacity_stall_seconds);
            if (!outcome.ok) {
              MLCD_LOG(kWarn, "service")
                  << "job '" << spec.name << "' failed ["
                  << outcome.error_code << "]: " << outcome.error_message;
            }
            complete(i);
          }
        }
      });
  return peak_tenant;
}

// --------------------------------------------------------------------
// Probe-granularity mode
// --------------------------------------------------------------------

class ProbeBatch;

/// ProbeGate whose admission decision is made *by the scheduler before*
/// ProbeDriver::step runs, not inside the profiler: the lane stages
/// either a cache hit or a pre-acquired capacity grant, then steps the
/// session, and admit() merely consumes what was staged. This is what
/// lets a lane decide run-vs-park without ever blocking: the blocking
/// CapacityPool::acquire of JobGate is replaced by the scheduler's own
/// parked-session FIFO.
///
/// Only the lane currently driving the session touches the staged state
/// — except stage_admitted() from the sweep in release_and_sweep(),
/// which runs strictly while the session is parked (on no lane at all),
/// so the state is still never touched concurrently.
class StagedGate final : public profiler::ProbeGate {
 public:
  void bind(ProbeBatch* batch, ProbeCache* cache, JobStats* stats) {
    batch_ = batch;
    cache_ = cache;
    stats_ = stats;
  }

  /// Stage the shared-cache record for the session's pending probe.
  void stage_hit(journal::ProbeRecord record) {
    staged_ = Staged::kHit;
    record_ = std::move(record);
  }

  /// Stage a capacity grant (the scheduler already holds the nodes).
  void stage_admitted() { staged_ = Staged::kAdmitted; }

  bool staged() const noexcept { return staged_ != Staged::kNone; }

  /// Drops whatever is staged without running a probe (the chaos / SLO
  /// early-exit paths). Returns true when an admitted capacity grant
  /// was staged — the caller must return those nodes to the pool. A
  /// dropped cache hit needs no cleanup: the record stays in the shared
  /// cache and will simply be looked up again.
  bool unstage() noexcept {
    const bool admitted = staged_ == Staged::kAdmitted;
    staged_ = Staged::kNone;
    record_.reset();
    return admitted;
  }

  std::optional<journal::ProbeRecord> admit(
      const profiler::ProbeKey& /*key*/, const cloud::Deployment&) override {
    switch (staged_) {
      case Staged::kHit: {
        staged_ = Staged::kNone;
        ++stats_->cache_hits;
        stats_->reused_probe_cost += record_->profile_cost;
        std::optional<journal::ProbeRecord> hit = std::move(record_);
        record_.reset();
        return hit;
      }
      case Staged::kAdmitted:
        staged_ = Staged::kNone;
        return std::nullopt;
      case Staged::kNone:
        break;
    }
    throw std::logic_error(
        "StagedGate::admit: probe stepped without a staged admission "
        "(scheduler bug)");
  }

  void publish(const profiler::ProbeKey& key, const cloud::Deployment& d,
               const journal::ProbeRecord& outcome) override;

  void abandon(const cloud::Deployment& d) noexcept override;

 private:
  enum class Staged { kNone, kHit, kAdmitted };

  ProbeBatch* batch_ = nullptr;
  ProbeCache* cache_ = nullptr;
  JobStats* stats_ = nullptr;
  Staged staged_ = Staged::kNone;
  std::optional<journal::ProbeRecord> record_;
};

/// One workload run under the probe-granularity scheduler: M sessions
/// multiplexed over N lanes, parked sessions queued FIFO.
///
/// The probe-granularity machinery is split three ways (dispatch.hpp)
/// so that no per-probe step ever takes a batch-wide lock: JobClaims
/// (fresh jobs + tenant quotas, touched once per job lifetime),
/// ParkQueue (the capacity FIFO with a lock-free admission fast path),
/// and a Dispatcher (per-lane run queues with work stealing, or the
/// legacy central queue behind --scheduler central).
///
/// Liveness invariant: a session parks only while some other session
/// holds pool capacity, capacity is only held across one
/// ProbeDriver::step executing on some lane, and every step ends in
/// publish()/abandon() — which releases the nodes and sweeps the parked
/// queue. So a parked session is always eventually restaged, and a
/// restaged (enqueued) session is always eventually picked up by a
/// lane: no deadlock, with the same strict-FIFO fairness the blocking
/// pool gives job-per-lane mode.
class ProbeBatch {
 public:
  /// `manifest` / `plans` are both null for a non-durable batch; for a
  /// durable one `plans` holds one entry per workload job.
  ProbeBatch(const system::Mlcd& mlcd, const SchedulerOptions& options,
             const Workload& workload, BatchReport& report,
             ProbeCache* cache, CapacityPool& capacity,
             util::ThreadPool& scan_pool, Clock::time_point batch_start,
             ManifestHandle* manifest = nullptr,
             const std::vector<DurablePlan>* plans = nullptr)
      : mlcd_(&mlcd),
        options_(&options),
        workload_(&workload),
        report_(&report),
        cache_(cache),
        capacity_(&capacity),
        scan_pool_(&scan_pool),
        manifest_(manifest),
        plans_(plans),
        batch_start_(batch_start),
        lane_count_(std::min<std::size_t>(
            static_cast<std::size_t>(options.threads),
            workload.jobs.size())),
        claims_(tenants_of(workload), options.tenant_max_jobs),
        states_(workload.jobs.size()) {
    if (workload.chaos.enabled()) chaos_.emplace(workload.chaos);
    for (std::size_t i = 0; i < states_.size(); ++i) {
      states_[i].gate.bind(this, cache_, &report_->jobs[i].stats);
      states_[i].chaos_key = ChaosInjector::job_key(workload.jobs[i].name);
    }
    if (options.sharded_dispatch) {
      dispatcher_ = std::make_unique<ShardedDispatcher>(lane_count_, &claims_);
    } else {
      dispatcher_ = std::make_unique<CentralDispatcher>(&claims_);
    }
  }

  void run() {
    util::ThreadPool pool(static_cast<int>(lane_count_));
    pool.parallel_for(
        lane_count_, [this](std::size_t begin, std::size_t end) {
          // One drive loop per lane (chunks are [w, w+1)).
          for (std::size_t lane = begin; lane < end; ++lane) {
            for (std::size_t i = dispatcher_->next_job(lane); i != kNoJob;
                 i = dispatcher_->next_job(lane)) {
              drive(i, lane);
            }
          }
        });
  }

  int peak_tenant() const { return claims_.peak_tenant(); }
  std::int64_t steals() const noexcept { return dispatcher_->steals(); }

  /// Returns a finished probe's nodes to the pool and restages every
  /// parked session (FIFO) that now fits, handing each its capacity
  /// grant before it ever reaches a lane. Called from
  /// StagedGate::publish / abandon on whichever lane ran the probe.
  void release_and_sweep(int nodes) noexcept {
    restage(park_.release_and_sweep(*capacity_, nodes));
  }

  /// Like release_and_sweep, but the nodes come back through a spot
  /// revocation: the pool counts the reclamation, and the freed
  /// capacity goes to the *head* parked session first — the revoked
  /// session itself re-admits behind every earlier-parked one, so
  /// strict FIFO holds under revocation too.
  void revoke_and_sweep(int nodes) noexcept {
    restage(park_.revoke_and_sweep(*capacity_, nodes));
  }

 private:
  struct JobState {
    StagedGate gate;
    /// The prepared session, pinned here across parks. Engaged from
    /// first lane assignment until finish().
    std::optional<system::PreparedJob> prepared;
    bool started = false;
    Clock::time_point job_start{};
    /// Stable chaos identity (hash of the job name).
    std::uint64_t chaos_key = 0;
    /// First step index whose chaos roll is still outstanding. Fault
    /// decisions fire at most once per (job, step): a crashed step,
    /// once replayed, is never re-crashed — which is what makes every
    /// recovery loop convergent.
    int chaos_cursor = 0;
    /// Revocations absorbed so far (the backoff ordinal).
    int revocations = 0;
    /// An injected probe-result loss armed for the next executed step.
    bool pending_loss = false;
    /// An injected spot revocation armed for the next capacity
    /// acquisition.
    bool pending_revocation = false;
  };

  static std::vector<std::string> tenants_of(const Workload& workload) {
    std::vector<std::string> tenants;
    tenants.reserve(workload.jobs.size());
    for (const JobSpec& spec : workload.jobs) tenants.push_back(spec.tenant);
    return tenants;
  }

  /// Routes swept sessions back into circulation. Each arrives with its
  /// capacity grant already acquired and *exclusively owned by the
  /// sweeping thread* (the ParkQueue popped it under its lock): the
  /// gate is staged and the stall wait booked before the enqueue makes
  /// the session visible to any lane, so no lock beyond the run-queue
  /// handoff is needed.
  void restage(const std::vector<ParkQueue::Resumed>& resumed) noexcept {
    for (const ParkQueue::Resumed& r : resumed) {
      states_[r.job].gate.stage_admitted();
      report_->jobs[r.job].stats.capacity_stall_seconds += r.waited_seconds;
      dispatcher_->enqueue(r.job, r.owner_lane);
    }
  }

  /// Drives job `i` on lane `lane` until it finishes, fails, or parks
  /// for capacity. The tenant-quota slot is held across parks — a
  /// parked job is still "running" from the tenant's point of view —
  /// which is deadlock-free because parked sessions resume off probe
  /// completions, never off quota slots.
  ///
  /// Lane migration: the lane binds itself as the session's exclusive
  /// driver on entry and releases inside the park callback (under the
  /// park lock, *before* the entry becomes sweepable) or before a
  /// requeue — the last point where this lane still owns the session.
  /// A finished/failed session is destroyed while bound; the next lane
  /// to drive a crash-re-staged replacement binds the fresh session.
  void drive(std::size_t i, std::size_t lane) {
    const Clock::time_point segment_start = Clock::now();
    const std::uint32_t driver = static_cast<std::uint32_t>(lane);
    JobState& job = states_[i];
    const JobSpec& spec = workload_->jobs[i];
    JobOutcome& outcome = report_->jobs[i];

    if (!job.started) {
      job.started = true;
      outcome.stats.queue_wait_seconds = seconds_since(batch_start_);
      job.job_start = Clock::now();
      if (manifest_ != nullptr && plans_ != nullptr) {
        const DurablePlan& plan = (*plans_)[i];
        // Write-ahead: the assigned record lands *before* prepare()
        // touches the per-job journal file, so a kill in between leaves
        // an assigned-but-fileless job — which a resume simply reruns
        // fresh. Resumed/replayed jobs are already assigned on disk.
        if (!plan.resumed && !plan.replayed) {
          BatchJobRecord record;
          record.phase = BatchJobPhase::kAssigned;
          record.job = static_cast<int>(i);
          record.name = spec.name;
          record.journal_file = plan.journal_file;
          manifest_->append(record);
        }
      }
      system::JobRequest request = spec.request;
      request.probe_gate = &job.gate;
      request.scan_pool = scan_pool_;
      system::PrepareResult prepared = mlcd_->prepare(request);
      if (!prepared.ok()) {
        outcome.error_code = std::string(
            system::job_error_code_name(prepared.error().code));
        outcome.error_message = prepared.error().message;
        finish_job(i, segment_start);
        return;
      }
      job.prepared.emplace(std::move(prepared.job()));
    }

    job.prepared->session().bind_driver(driver);
    try {
      for (;;) {
        // Re-fetched each iteration: a lane-crash re-staging replaces
        // the prepared job (and with it the session object) in place.
        search::SearchSession& session = job.prepared->session();
        const search::ProbeRequest* request = session.next();
        if (request == nullptr) {
          finalize(i);
          finish_job(i, segment_start);
          return;
        }
        if (!session.replaying()) {
          // Per-tenant SLO: checked in *simulated* units before the
          // next probe launches, so a breach fires at the same step at
          // any thread count. The session is finalized through the
          // safe-mode path — best-known deployment from the trace so
          // far — instead of aborting the batch.
          const SloBreach breach = slo_breach(spec.slo, session);
          if (breach != SloBreach::kNone) {
            drop_staged(i, request->deployment.nodes, /*revoked=*/false);
            outcome.slo = breach;
            MLCD_LOG(kWarn, "service")
                << "job '" << spec.name << "' exceeded its "
                << slo_breach_name(breach)
                << " SLO; finalizing with best-known deployment";
            finalize(i);
            finish_job(i, segment_start);
            return;
          }
          // Chaos rolls fire at most once per (job, step): pure
          // functions of (seed, job, step), independent of lanes,
          // threads, and cache state.
          const int step = static_cast<int>(session.trace().size());
          if (chaos_.has_value() && step >= job.chaos_cursor) {
            job.chaos_cursor = step + 1;
            const ChaosFault fault = chaos_->roll(job.chaos_key, step);
            if (fault != ChaosFault::kNone &&
                !absorb_fault(i, lane, fault, request->deployment.nodes,
                              segment_start)) {
              return;  // the session left this lane (or failed)
            }
          }
        }
        // Journal-replayed probes bypass the gate entirely (no capacity,
        // no cache — same as solo resume); a park-resumed session
        // already carries its staged grant.
        if (!session.replaying() && !job.gate.staged()) {
          // Everything the lane must settle before a park makes the
          // session visible to other lanes: stats (they would race the
          // resuming lane otherwise) and the driver-token release. Runs
          // under the park lock, before the entry becomes sweepable.
          const auto on_park = [&]() {
            ++outcome.stats.capacity_stalls;
            ++outcome.stats.session_parks;
            outcome.stats.lane_busy_seconds += seconds_since(segment_start);
            session.release_driver(driver);
          };
          if (job.pending_revocation) {
            // The capacity this probe reserved is spot-revoked as it
            // launches: reclaim any grant reserve-safely and park for
            // elastic re-admission through the same FIFO as every
            // capacity wait.
            job.pending_revocation = false;
            restage(park_.park_revoked(*capacity_, i,
                                       request->deployment.nodes, lane,
                                       on_park));
            return;  // lane freed; the sweep will restage this session
          }
          const profiler::ProbeKey key = session.profiler().next_probe_key(
              profiler::ProbeRequest{request->deployment, request->fidelity});
          std::optional<journal::ProbeRecord> hit =
              cache_ != nullptr ? cache_->lookup(key) : std::nullopt;
          if (hit.has_value()) {
            job.gate.stage_hit(std::move(*hit));
          } else if (park_.admit_or_park(*capacity_, i,
                                         request->deployment.nodes, lane,
                                         on_park)) {
            job.gate.stage_admitted();
          } else {
            return;  // parked; the sweep will restage this session
          }
        }
        if (job.pending_loss && !session.replaying()) {
          // The probe executes and is journaled normally, but its
          // in-memory result envelope is lost before admission; the
          // write-ahead record image recovers it bit-identically —
          // zero probes re-executed.
          job.pending_loss = false;
          ++outcome.stats.probe_losses;
          const journal::ProbeRecord image =
              search::ProbeDriver::step_losing_result(session);
          search::ProbeDriver::admit_recovered(session, image);
        } else {
          search::ProbeDriver::step(session);
        }
      }
    } catch (const journal::JournalError& e) {
      // Mid-search journal failures are typed rejections, exactly as
      // Mlcd::deploy reports them.
      outcome.error_code = std::string(system::job_error_code_name(
          system::JobErrorCode::kJournalError));
      outcome.error_message = e.what();
    } catch (const std::exception& e) {
      // One job's internal failure must not take the fleet down.
      outcome.error_code = "internal";
      outcome.error_message = e.what();
    }
    finish_job(i, segment_start);
  }

  /// Finalizes the session via Searcher::finish and records the
  /// outcome. For an unfinished session (the SLO breach path) this is
  /// the safe-mode finalization: the best-known deployment is selected
  /// from the trace so far.
  void finalize(std::size_t i) {
    JobState& job = states_[i];
    JobOutcome& outcome = report_->jobs[i];
    system::DeployResult result = job.prepared->finish();
    if (result.ok()) {
      outcome.ok = true;
      outcome.report = std::move(result).report();
      // Schema-v4 fidelity counters, derived from the final trace so
      // replays and cache hits are counted exactly once each.
      for (const search::ProbeStep& step : outcome.report.result.trace) {
        if (step.fidelity.is_full()) {
          ++outcome.stats.full_fidelity_probes;
        } else {
          ++outcome.stats.low_fidelity_probes;
        }
      }
    } else {
      outcome.error_code = std::string(
          system::job_error_code_name(result.error().code));
      outcome.error_message = result.error().message;
    }
    if (outcome.ok && plans_ != nullptr &&
        (*plans_)[i].replayed) {
      // Replay verification: the re-materialized report must hash to
      // exactly what the manifest's finished record promised
      // (kReplayDiverged otherwise) — the journal is not allowed to
      // drift underneath a finished result.
      const DurablePlan& plan = (*plans_)[i];
      const std::uint64_t digest = digest_run_report(outcome.report);
      if (digest != plan.expected_digest) {
        outcome.ok = false;
        outcome.report = system::RunReport{};
        outcome.stats.low_fidelity_probes = 0;
        outcome.stats.full_fidelity_probes = 0;
        outcome.error_code = std::string(system::job_error_code_name(
            system::JobErrorCode::kJournalError));
        outcome.error_message =
            journal::JournalError(
                journal::JournalErrorCode::kReplayDiverged,
                "journal '" + plan.journal_file +
                    "' replayed a report that diverged from the batch "
                    "manifest digest")
                .what();
      }
    }
  }

  /// Hands a live session back into circulation (chaos crash / stall
  /// paths): it re-enters `lane`'s run queue, and that lane — or a
  /// stealing one — drives it next. The caller must have released the
  /// driver token (or replaced the session) first.
  void requeue(std::size_t i, std::size_t lane) {
    dispatcher_->enqueue(i, lane);
  }

  /// Returns a staged-but-unused capacity grant to the pool (released
  /// or spot-revoked) and sweeps the parked FIFO. No-op when nothing
  /// admitted was staged. Defensive on the chaos paths: faults roll
  /// only at fresh step boundaries, which never carry a staged grant.
  void drop_staged(std::size_t i, int nodes, bool revoked) noexcept {
    if (!states_[i].gate.unstage()) return;
    if (revoked) {
      revoke_and_sweep(nodes);
    } else {
      release_and_sweep(nodes);
    }
  }

  /// Applies one injected fault at a step boundary. Returns true when
  /// the lane should keep driving the session (revocation and probe
  /// loss arm a pending flag and continue), false when the session left
  /// this lane (crash re-staging, stall) or failed to re-stage — lane
  /// accounting is already settled in that case.
  bool absorb_fault(std::size_t i, std::size_t lane, ChaosFault fault,
                    int nodes, Clock::time_point segment_start) {
    JobState& job = states_[i];
    JobOutcome& outcome = report_->jobs[i];
    switch (fault) {
      case ChaosFault::kLaneCrash:
        ++outcome.stats.lane_crashes;
        drop_staged(i, nodes, /*revoked=*/false);
        // The crashed session dies bound to this lane; the fresh
        // re-staged one is unbound until whichever lane pops the
        // requeue binds it.
        if (!restage_crashed(i)) {
          finish_job(i, segment_start);  // typed error already recorded
          return false;
        }
        outcome.stats.lane_busy_seconds += seconds_since(segment_start);
        requeue(i, lane);
        return false;
      case ChaosFault::kSpotRevocation:
        ++outcome.stats.grant_revocations;
        // The re-admission delay: PR 1's capped jittered backoff,
        // billed at the service level (the job's own clock and meter
        // stay solo-identical).
        outcome.stats.chaos_backoff_hours +=
            chaos_->revocation_backoff_hours(job.chaos_key,
                                             job.revocations++);
        job.pending_revocation = true;
        return true;
      case ChaosFault::kProbeLoss:
        job.pending_loss = true;
        return true;
      case ChaosFault::kSchedulerStall:
        ++outcome.stats.scheduler_stalls;
        outcome.stats.lane_busy_seconds += seconds_since(segment_start);
        // Stats settled and driver released before the enqueue makes
        // the session visible to another lane.
        job.prepared->session().release_driver(
            static_cast<std::uint32_t>(lane));
        requeue(i, lane);
        return false;
      case ChaosFault::kNone:
        break;
    }
    return true;
  }

  /// Rebuilds a crashed lane's in-flight session from its ask/tell
  /// state: every admitted step is captured as a journal-record image
  /// and replayed through a fresh PreparedJob — billing, clock, and
  /// every seeded stream advance exactly as the original — so the
  /// re-staged session continues bit-identically with zero re-executed
  /// probes. Journaled jobs re-stage through their own WAL file (the
  /// same path a process crash would resume from). Returns false with
  /// the typed error recorded when re-preparation fails.
  bool restage_crashed(std::size_t i) {
    JobState& job = states_[i];
    const JobSpec& spec = workload_->jobs[i];
    JobOutcome& outcome = report_->jobs[i];
    system::JobRequest request = spec.request;
    request.probe_gate = &job.gate;
    request.scan_pool = scan_pool_;
    if (!request.journal_path.empty() || !request.resume_path.empty()) {
      request.resume_path = !request.journal_path.empty()
                                ? request.journal_path
                                : request.resume_path;
    } else {
      const search::SearchSession& session = job.prepared->session();
      request.replay_records.reserve(session.trace().size());
      for (const search::ProbeStep& step : session.trace()) {
        request.replay_records.push_back(search::to_journal_record(step));
      }
    }
    job.prepared.reset();  // the crashed lane's context dies with it
                           // (closing any journal writer before reopen)
    system::PrepareResult prepared = mlcd_->prepare(request);
    if (!prepared.ok()) {
      outcome.error_code = std::string(
          system::job_error_code_name(prepared.error().code));
      outcome.error_message = prepared.error().message;
      return false;
    }
    job.prepared.emplace(std::move(prepared.job()));
    return true;
  }

  void finish_job(std::size_t i, Clock::time_point segment_start) {
    JobState& job = states_[i];
    JobOutcome& outcome = report_->jobs[i];
    outcome.stats.lane_busy_seconds += seconds_since(segment_start);
    outcome.stats.run_seconds = seconds_since(job.job_start);
    job.prepared.reset();  // release the session before the lane moves on
                           // (and close its journal writer first)
    if (manifest_ != nullptr && plans_ != nullptr &&
        !(*plans_)[i].replayed) {
      // Durably record the outcome *after* the per-job journal writer
      // closed, so a kill from here on replays the finished report
      // instead of re-running anything. Replayed jobs already carry
      // their finished record.
      BatchJobRecord record;
      record.phase = BatchJobPhase::kFinished;
      record.job = static_cast<int>(i);
      record.name = workload_->jobs[i].name;
      record.journal_file = (*plans_)[i].journal_file;
      record.ok = outcome.ok;
      record.outcome =
          outcome.ok ? (outcome.slo != SloBreach::kNone
                            ? std::string(kSloExceeded)
                            : std::string("ok"))
                     : outcome.error_code;
      record.report_digest =
          outcome.ok ? digest_run_report(outcome.report) : 0;
      manifest_->append(record);
    }
    if (!outcome.ok) {
      MLCD_LOG(kWarn, "service")
          << "job '" << workload_->jobs[i].name << "' failed ["
          << outcome.error_code << "]: " << outcome.error_message;
    }
    claims_.finished(i);
    dispatcher_->on_job_finished();
  }

  const system::Mlcd* mlcd_;
  const SchedulerOptions* options_;
  const Workload* workload_;
  BatchReport* report_;
  ProbeCache* cache_;
  CapacityPool* capacity_;
  util::ThreadPool* scan_pool_;
  ManifestHandle* manifest_;              ///< null: batch not durable
  const std::vector<DurablePlan>* plans_; ///< null: batch not durable
  const Clock::time_point batch_start_;
  const std::size_t lane_count_;

  /// Engaged when the workload declares a chaotic fault environment.
  std::optional<ChaosInjector> chaos_;

  // The three lock domains that replaced the old batch-wide mutex —
  // see dispatch.hpp for what each one guards and why.
  JobClaims claims_;
  ParkQueue park_;
  std::unique_ptr<Dispatcher> dispatcher_;

  std::vector<JobState> states_;
};

void StagedGate::publish(const profiler::ProbeKey& key,
                         const cloud::Deployment& d,
                         const journal::ProbeRecord& outcome) {
  batch_->release_and_sweep(d.nodes);
  if (cache_ != nullptr) {
    cache_->insert(key, outcome);
    ++stats_->cache_publishes;
  }
}

void StagedGate::abandon(const cloud::Deployment& d) noexcept {
  batch_->release_and_sweep(d.nodes);
}

}  // namespace

Scheduler::Scheduler(const system::Mlcd& mlcd, SchedulerOptions options)
    : mlcd_(&mlcd), options_(options) {
  if (options_.threads < 1) options_.threads = 1;
  if (options_.capacity_nodes < 0) {
    throw std::invalid_argument("Scheduler: negative capacity_nodes");
  }
  if (options_.tenant_max_jobs < 0) {
    throw std::invalid_argument("Scheduler: negative tenant_max_jobs");
  }
  if (options_.cache_stripes < 0 ||
      (options_.cache_stripes > 0 &&
       (options_.cache_stripes & (options_.cache_stripes - 1)) != 0)) {
    throw std::invalid_argument(
        "Scheduler: cache_stripes must be 0 (default) or a power of two "
        "(got " +
        std::to_string(options_.cache_stripes) + ")");
  }
}

BatchReport Scheduler::run(const Workload& workload) const {
  const std::size_t n = workload.jobs.size();
  if (n == 0) {
    throw std::invalid_argument("Scheduler: empty workload");
  }
  // Admission control: a probe larger than the whole pool would wedge
  // the FIFO queue forever — refuse the workload instead of deadlocking
  // mid-batch. (Searchers never probe beyond the job's max_nodes.)
  if (options_.capacity_nodes > 0) {
    for (const JobSpec& spec : workload.jobs) {
      if (spec.request.max_nodes > options_.capacity_nodes) {
        throw std::invalid_argument(
            "Scheduler: admission refused — job '" + spec.name +
            "' may probe up to " + std::to_string(spec.request.max_nodes) +
            " nodes but the capacity pool holds only " +
            std::to_string(options_.capacity_nodes));
      }
    }
  }

  // Chaos and SLO enforcement live at probe boundaries — only the
  // probe-granularity scheduler has them. Refuse up front rather than
  // silently running a chaotic workload fault-free.
  workload.chaos.validate();
  bool slo_declared = false;
  for (const JobSpec& spec : workload.jobs) {
    slo_declared = slo_declared || spec.slo.enabled();
  }
  if ((workload.chaos.enabled() || slo_declared) &&
      !options_.probe_granularity) {
    throw std::invalid_argument(
        "Scheduler: service-level chaos injection and SLO enforcement "
        "require a probe-granularity scheduler (--scheduler sharded or "
        "central)");
  }
  if (!options_.journal_dir.empty() && !options_.probe_granularity) {
    throw std::invalid_argument(
        "Scheduler: durable batches (--journal-dir) require a "
        "probe-granularity scheduler (--scheduler sharded or central)");
  }
  if (options_.resume && options_.journal_dir.empty()) {
    throw std::invalid_argument(
        "Scheduler: --resume requires --journal-dir (the manifest to "
        "resume from lives there)");
  }

  // Durable batches: plan every job's recovery path from the manifest
  // (or write a fresh one) before any lane runs, and swap in the
  // workload copy carrying the auto-managed journal wiring.
  std::unique_ptr<BatchJournal> manifest;
  std::optional<ManifestHandle> manifest_handle;
  std::vector<DurablePlan> plans;
  Workload durable;
  const Workload* active = &workload;
  if (!options_.journal_dir.empty()) {
    std::string create_error;
    plans = plan_durable_batch(workload, options_, durable, manifest,
                               create_error);
    manifest_handle.emplace(std::move(manifest), options_.journal_on_error,
                            std::move(create_error));
    active = &durable;
  }

  BatchReport report;
  report.chaos = workload.chaos;
  report.threads = options_.threads;
  report.capacity_nodes = options_.capacity_nodes;
  report.tenant_max_jobs = options_.tenant_max_jobs;
  report.probe_granularity = options_.probe_granularity;
  report.scheduler_mode =
      options_.probe_granularity
          ? (options_.sharded_dispatch ? "sharded" : "central")
          : "job";
  report.jobs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    report.jobs[i].name = workload.jobs[i].name;
    report.jobs[i].tenant = workload.jobs[i].tenant;
    if (!plans.empty()) {
      report.jobs[i].stats.resumed_from_journal = plans[i].resumed;
      report.jobs[i].stats.replayed_from_journal = plans[i].replayed;
    }
  }

  ProbeCache cache(options_.cache_stripes);
  ProbeCache* shared_cache = options_.share_probes ? &cache : nullptr;
  CapacityPool capacity(options_.capacity_nodes);
  // One candidate-scan pool for the whole fleet, sized to the widest
  // job: sessions submit their acquisition scans here instead of each
  // spawning its own workers (trace-neutral; see SearchProblem::
  // scan_pool). Lane threads participate in the batches they submit.
  int scan_threads = 1;
  for (const JobSpec& spec : workload.jobs) {
    scan_threads = std::max(scan_threads, spec.request.threads);
  }
  util::ThreadPool scan_pool(scan_threads);

  const Clock::time_point batch_start = Clock::now();
  int peak_tenant = 0;
  if (options_.probe_granularity) {
    ProbeBatch batch(*mlcd_, options_, *active, report, shared_cache,
                     capacity, scan_pool, batch_start,
                     manifest_handle ? &*manifest_handle : nullptr,
                     plans.empty() ? nullptr : &plans);
    batch.run();
    peak_tenant = batch.peak_tenant();
    report.lane_steals = batch.steals();
  } else {
    peak_tenant = run_job_mode(*mlcd_, options_, workload, report,
                               shared_cache, capacity, scan_pool,
                               batch_start);
  }

  // Settle the manifest write-failure policy only after every lane
  // drained: no in-memory job state depends on the manifest, so all
  // results above are complete and correct either way.
  if (manifest_handle.has_value()) {
    const std::string manifest_error = manifest_handle->error();
    if (!manifest_error.empty()) {
      if (options_.journal_on_error == journal::OnError::kAbort) {
        throw journal::JournalError(
            journal::JournalErrorCode::kIo,
            "batch manifest append failed: " + manifest_error);
      }
      report.batch_journal_degraded = true;
      report.batch_journal_degrade_reason = manifest_error;
      MLCD_LOG(kWarn, "service")
          << "batch manifest write failed (" << manifest_error
          << "); continuing without a manifest — this batch is no "
             "longer kill-resumable";
    }
  }

  report.makespan_seconds = seconds_since(batch_start);
  report.peak_capacity_nodes = capacity.peak_in_use();
  report.peak_tenant_jobs = peak_tenant;
  report.cache = cache.stats();
  MLCD_LOG(kInfo, "service")
      << "batch of " << n << " jobs done in " << report.makespan_seconds
      << " s (" << report.succeeded() << " ok, "
      << report.total_cache_hits() << " cache hits, "
      << report.total_session_parks() << " parks, peak "
      << report.peak_capacity_nodes << " nodes)";
  return report;
}

}  // namespace mlcd::service
