#include "service/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "journal/journal.hpp"
#include "search/probe_driver.hpp"
#include "service/capacity.hpp"
#include "service/probe_cache.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace mlcd::service {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --------------------------------------------------------------------
// Legacy job-per-lane mode
// --------------------------------------------------------------------

/// Per-job ProbeGate: cache lookup first, then (blocking) capacity
/// admission. The cache and pool are shared (and internally locked);
/// `stats` is the job's own and is only ever touched from the job's
/// thread — the profiler calls the gate serially.
class JobGate final : public profiler::ProbeGate {
 public:
  JobGate(ProbeCache* cache, CapacityPool* capacity, JobStats* stats)
      : cache_(cache), capacity_(capacity), stats_(stats) {}

  std::optional<journal::ProbeRecord> admit(
      const profiler::ProbeKey& key, const cloud::Deployment& d) override {
    if (cache_ != nullptr) {
      if (std::optional<journal::ProbeRecord> hit = cache_->lookup(key)) {
        // Served, not launched: no capacity consumed, and the service-
        // level ledger bills the measurement to the tenant that first
        // ran it — this job only re-accounts it internally.
        ++stats_->cache_hits;
        stats_->reused_probe_cost += hit->profile_cost;
        return hit;
      }
    }
    const CapacityPool::Admission admission = capacity_->acquire(d.nodes);
    if (admission.stalled) {
      ++stats_->capacity_stalls;
      stats_->capacity_stall_seconds += admission.wait_seconds;
    }
    return std::nullopt;
  }

  void publish(const profiler::ProbeKey& key, const cloud::Deployment& d,
               const journal::ProbeRecord& outcome) override {
    capacity_->release(d.nodes);
    if (cache_ != nullptr) {
      cache_->insert(key, outcome);
      ++stats_->cache_publishes;
    }
  }

  void abandon(const cloud::Deployment& d) noexcept override {
    capacity_->release(d.nodes);
  }

 private:
  ProbeCache* cache_;
  CapacityPool* capacity_;
  JobStats* stats_;
};

/// The pre-ask/tell scheduler: one job owns one lane from claim to
/// completion, blocking inside CapacityPool::acquire while its lane sits
/// idle. Kept behind SchedulerOptions::probe_granularity = false as the
/// baseline the scheduler-efficiency bench compares against. Returns
/// the peak per-tenant concurrency.
int run_job_mode(const system::Mlcd& mlcd, const SchedulerOptions& options,
                 const Workload& workload, BatchReport& report,
                 ProbeCache* cache, CapacityPool& capacity,
                 util::ThreadPool& scan_pool, Clock::time_point batch_start) {
  const std::size_t n = workload.jobs.size();

  // Job claiming: workers pull the lowest-index unclaimed job whose
  // tenant is under quota; when every unclaimed job is quota-blocked
  // they sleep until some job completes. A quota slot is only ever held
  // by a running job and running jobs always finish, so this cannot
  // deadlock.
  std::mutex mutex;
  std::condition_variable claim_cv;
  std::vector<bool> claimed(n, false);
  std::map<std::string, int> tenant_running;
  int peak_tenant = 0;

  const auto claim_next = [&]() -> std::size_t {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      bool any_unclaimed = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (claimed[i]) continue;
        any_unclaimed = true;
        int& running = tenant_running[workload.jobs[i].tenant];
        if (options.tenant_max_jobs > 0 &&
            running >= options.tenant_max_jobs) {
          continue;  // quota-blocked; later jobs may still be eligible
        }
        claimed[i] = true;
        ++running;
        peak_tenant = std::max(peak_tenant, running);
        return i;
      }
      if (!any_unclaimed) return kNone;
      claim_cv.wait(lock);
    }
  };
  const auto complete = [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(mutex);
    --tenant_running[workload.jobs[i].tenant];
    claim_cv.notify_all();
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(options.threads, n));
  util::ThreadPool pool(workers);
  pool.parallel_for(
      static_cast<std::size_t>(workers),
      [&](std::size_t begin, std::size_t end) {
        // One claim loop per worker lane (chunks are [w, w+1)).
        for (std::size_t lane = begin; lane < end; ++lane) {
          for (std::size_t i = claim_next(); i != kNone; i = claim_next()) {
            const JobSpec& spec = workload.jobs[i];
            JobOutcome& outcome = report.jobs[i];
            outcome.stats.queue_wait_seconds = seconds_since(batch_start);
            const Clock::time_point job_start = Clock::now();
            JobGate gate(cache, &capacity, &outcome.stats);
            system::JobRequest request = spec.request;
            request.probe_gate = &gate;
            request.scan_pool = &scan_pool;
            try {
              system::DeployResult result = mlcd.deploy(request);
              if (result.ok()) {
                outcome.ok = true;
                outcome.report = std::move(result).report();
              } else {
                outcome.error_code = std::string(
                    system::job_error_code_name(result.error().code));
                outcome.error_message = result.error().message;
              }
            } catch (const std::exception& e) {
              // One job's internal failure must not take the fleet down.
              outcome.error_code = "internal";
              outcome.error_message = e.what();
            }
            outcome.stats.run_seconds = seconds_since(job_start);
            // The lane was occupied for the whole run except the time
            // the gate spent blocked inside CapacityPool::acquire —
            // which job-per-lane charges as *idle* lane time, the
            // inefficiency probe granularity removes.
            outcome.stats.lane_busy_seconds =
                std::max(0.0, outcome.stats.run_seconds -
                                  outcome.stats.capacity_stall_seconds);
            if (!outcome.ok) {
              MLCD_LOG(kWarn, "service")
                  << "job '" << spec.name << "' failed ["
                  << outcome.error_code << "]: " << outcome.error_message;
            }
            complete(i);
          }
        }
      });
  return peak_tenant;
}

// --------------------------------------------------------------------
// Probe-granularity mode
// --------------------------------------------------------------------

class ProbeBatch;

/// ProbeGate whose admission decision is made *by the scheduler before*
/// ProbeDriver::step runs, not inside the profiler: the lane stages
/// either a cache hit or a pre-acquired capacity grant, then steps the
/// session, and admit() merely consumes what was staged. This is what
/// lets a lane decide run-vs-park without ever blocking: the blocking
/// CapacityPool::acquire of JobGate is replaced by the scheduler's own
/// parked-session FIFO.
///
/// Only the lane currently driving the session touches the staged state
/// — except stage_admitted() from the sweep in release_and_sweep(),
/// which runs strictly while the session is parked (on no lane at all),
/// so the state is still never touched concurrently.
class StagedGate final : public profiler::ProbeGate {
 public:
  void bind(ProbeBatch* batch, ProbeCache* cache, JobStats* stats) {
    batch_ = batch;
    cache_ = cache;
    stats_ = stats;
  }

  /// Stage the shared-cache record for the session's pending probe.
  void stage_hit(journal::ProbeRecord record) {
    staged_ = Staged::kHit;
    record_ = std::move(record);
  }

  /// Stage a capacity grant (the scheduler already holds the nodes).
  void stage_admitted() { staged_ = Staged::kAdmitted; }

  bool staged() const noexcept { return staged_ != Staged::kNone; }

  std::optional<journal::ProbeRecord> admit(
      const profiler::ProbeKey& /*key*/, const cloud::Deployment&) override {
    switch (staged_) {
      case Staged::kHit: {
        staged_ = Staged::kNone;
        ++stats_->cache_hits;
        stats_->reused_probe_cost += record_->profile_cost;
        std::optional<journal::ProbeRecord> hit = std::move(record_);
        record_.reset();
        return hit;
      }
      case Staged::kAdmitted:
        staged_ = Staged::kNone;
        return std::nullopt;
      case Staged::kNone:
        break;
    }
    throw std::logic_error(
        "StagedGate::admit: probe stepped without a staged admission "
        "(scheduler bug)");
  }

  void publish(const profiler::ProbeKey& key, const cloud::Deployment& d,
               const journal::ProbeRecord& outcome) override;

  void abandon(const cloud::Deployment& d) noexcept override;

 private:
  enum class Staged { kNone, kHit, kAdmitted };

  ProbeBatch* batch_ = nullptr;
  ProbeCache* cache_ = nullptr;
  JobStats* stats_ = nullptr;
  Staged staged_ = Staged::kNone;
  std::optional<journal::ProbeRecord> record_;
};

/// One workload run under the probe-granularity scheduler: M sessions
/// multiplexed over N lanes, parked sessions queued FIFO.
///
/// Liveness invariant: a session parks only while some other session
/// holds pool capacity, capacity is only held across one
/// ProbeDriver::step executing on some lane, and every step ends in
/// publish()/abandon() — which releases the nodes and sweeps the parked
/// queue. So a parked session is always eventually restaged, and a
/// restaged (ready) session is always eventually picked up by a lane:
/// no deadlock, with the same strict-FIFO fairness the blocking pool
/// gives job-per-lane mode.
class ProbeBatch {
 public:
  ProbeBatch(const system::Mlcd& mlcd, const SchedulerOptions& options,
             const Workload& workload, BatchReport& report,
             ProbeCache* cache, CapacityPool& capacity,
             util::ThreadPool& scan_pool, Clock::time_point batch_start)
      : mlcd_(&mlcd),
        options_(&options),
        workload_(&workload),
        report_(&report),
        cache_(cache),
        capacity_(&capacity),
        scan_pool_(&scan_pool),
        batch_start_(batch_start),
        states_(workload.jobs.size()),
        claimed_(workload.jobs.size(), false) {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      states_[i].gate.bind(this, cache_, &report_->jobs[i].stats);
    }
  }

  void run() {
    const std::size_t n = workload_->jobs.size();
    const int lanes =
        static_cast<int>(std::min<std::size_t>(options_->threads, n));
    util::ThreadPool pool(lanes);
    pool.parallel_for(
        static_cast<std::size_t>(lanes),
        [this](std::size_t begin, std::size_t end) {
          // One drive loop per lane (chunks are [w, w+1)).
          for (std::size_t lane = begin; lane < end; ++lane) {
            for (std::size_t i = next_job(); i != kNone; i = next_job()) {
              drive(i);
            }
          }
        });
  }

  int peak_tenant() const noexcept { return peak_tenant_; }

  /// Returns a finished probe's nodes to the pool and restages as many
  /// parked sessions (FIFO) as now fit, handing each its capacity grant
  /// before it ever reaches a lane. Called from StagedGate::publish /
  /// abandon on whichever lane ran the probe.
  void release_and_sweep(int nodes) noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_->release(nodes);
    bool resumed = false;
    while (!parked_.empty()) {
      const Parked& head = parked_.front();
      if (!capacity_->try_acquire(head.nodes)) break;
      states_[head.job].gate.stage_admitted();
      report_->jobs[head.job].stats.capacity_stall_seconds +=
          seconds_since(head.since);
      ready_.push_back(head.job);
      parked_.pop_front();
      resumed = true;
    }
    if (resumed) lane_cv_.notify_all();
  }

 private:
  struct JobState {
    StagedGate gate;
    /// The prepared session, pinned here across parks. Engaged from
    /// first lane assignment until finish().
    std::optional<system::PreparedJob> prepared;
    bool started = false;
    Clock::time_point job_start{};
  };

  struct Parked {
    std::size_t job;
    int nodes;                 ///< capacity the pending probe needs
    Clock::time_point since;   ///< when the session left its lane
  };

  /// Next session for a free lane: resumed (ready) sessions first —
  /// they hold pre-acquired capacity, so draining them promptly keeps
  /// the pool honest — then the lowest-index unclaimed job whose tenant
  /// is under quota. Blocks when everything is parked, running, or
  /// quota-blocked; returns kNone once all jobs completed.
  std::size_t next_job() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (completed_ == workload_->jobs.size()) return kNone;
      if (!ready_.empty()) {
        const std::size_t i = ready_.front();
        ready_.pop_front();
        return i;
      }
      for (std::size_t i = 0; i < claimed_.size(); ++i) {
        if (claimed_[i]) continue;
        int& running = tenant_running_[workload_->jobs[i].tenant];
        if (options_->tenant_max_jobs > 0 &&
            running >= options_->tenant_max_jobs) {
          continue;  // quota-blocked; later jobs may still be eligible
        }
        claimed_[i] = true;
        ++running;
        peak_tenant_ = std::max(peak_tenant_, running);
        return i;
      }
      lane_cv_.wait(lock);
    }
  }

  /// Drives job `i` on the calling lane until it finishes, fails, or
  /// parks for capacity. The tenant-quota slot is held across parks —
  /// a parked job is still "running" from the tenant's point of view —
  /// which is deadlock-free because parked sessions resume off probe
  /// completions, never off quota slots.
  void drive(std::size_t i) {
    const Clock::time_point segment_start = Clock::now();
    JobState& job = states_[i];
    const JobSpec& spec = workload_->jobs[i];
    JobOutcome& outcome = report_->jobs[i];

    if (!job.started) {
      job.started = true;
      outcome.stats.queue_wait_seconds = seconds_since(batch_start_);
      job.job_start = Clock::now();
      system::JobRequest request = spec.request;
      request.probe_gate = &job.gate;
      request.scan_pool = scan_pool_;
      system::PrepareResult prepared = mlcd_->prepare(request);
      if (!prepared.ok()) {
        outcome.error_code = std::string(
            system::job_error_code_name(prepared.error().code));
        outcome.error_message = prepared.error().message;
        finish_job(i, segment_start);
        return;
      }
      job.prepared.emplace(std::move(prepared.job()));
    }

    search::SearchSession& session = job.prepared->session();
    try {
      for (;;) {
        const search::ProbeRequest* request = session.next();
        if (request == nullptr) {
          system::DeployResult result = job.prepared->finish();
          if (result.ok()) {
            outcome.ok = true;
            outcome.report = std::move(result).report();
          } else {
            outcome.error_code = std::string(
                system::job_error_code_name(result.error().code));
            outcome.error_message = result.error().message;
          }
          finish_job(i, segment_start);
          return;
        }
        // Journal-replayed probes bypass the gate entirely (no capacity,
        // no cache — same as solo resume); a park-resumed session
        // already carries its staged grant.
        if (!session.replaying() && !job.gate.staged()) {
          const profiler::ProbeKey key =
              session.profiler().next_probe_key(request->deployment);
          std::optional<journal::ProbeRecord> hit =
              cache_ != nullptr ? cache_->lookup(key) : std::nullopt;
          if (hit.has_value()) {
            job.gate.stage_hit(std::move(*hit));
          } else {
            const int nodes = request->deployment.nodes;
            std::unique_lock<std::mutex> lock(mutex_);
            // Never overtake an earlier-parked session, even when this
            // probe would fit: strict FIFO, like the blocking pool.
            if (!parked_.empty() || !capacity_->try_acquire(nodes)) {
              parked_.push_back(Parked{i, nodes, Clock::now()});
              ++outcome.stats.capacity_stalls;
              ++outcome.stats.session_parks;
              lock.unlock();
              outcome.stats.lane_busy_seconds +=
                  seconds_since(segment_start);
              return;  // lane freed; the sweep will restage this session
            }
            job.gate.stage_admitted();
          }
        }
        search::ProbeDriver::step(session);
      }
    } catch (const journal::JournalError& e) {
      // Mid-search journal failures are typed rejections, exactly as
      // Mlcd::deploy reports them.
      outcome.error_code = std::string(system::job_error_code_name(
          system::JobErrorCode::kJournalError));
      outcome.error_message = e.what();
    } catch (const std::exception& e) {
      // One job's internal failure must not take the fleet down.
      outcome.error_code = "internal";
      outcome.error_message = e.what();
    }
    finish_job(i, segment_start);
  }

  void finish_job(std::size_t i, Clock::time_point segment_start) {
    JobState& job = states_[i];
    JobOutcome& outcome = report_->jobs[i];
    outcome.stats.lane_busy_seconds += seconds_since(segment_start);
    outcome.stats.run_seconds = seconds_since(job.job_start);
    job.prepared.reset();  // release the session before the lane moves on
    if (!outcome.ok) {
      MLCD_LOG(kWarn, "service")
          << "job '" << workload_->jobs[i].name << "' failed ["
          << outcome.error_code << "]: " << outcome.error_message;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    --tenant_running_[workload_->jobs[i].tenant];
    ++completed_;
    lane_cv_.notify_all();
  }

  const system::Mlcd* mlcd_;
  const SchedulerOptions* options_;
  const Workload* workload_;
  BatchReport* report_;
  ProbeCache* cache_;
  CapacityPool* capacity_;
  util::ThreadPool* scan_pool_;
  const Clock::time_point batch_start_;

  std::vector<JobState> states_;

  std::mutex mutex_;
  std::condition_variable lane_cv_;
  std::vector<bool> claimed_;
  std::deque<Parked> parked_;        ///< capacity-blocked sessions, FIFO
  std::deque<std::size_t> ready_;    ///< restaged sessions awaiting a lane
  std::map<std::string, int> tenant_running_;
  std::size_t completed_ = 0;
  int peak_tenant_ = 0;
};

void StagedGate::publish(const profiler::ProbeKey& key,
                         const cloud::Deployment& d,
                         const journal::ProbeRecord& outcome) {
  batch_->release_and_sweep(d.nodes);
  if (cache_ != nullptr) {
    cache_->insert(key, outcome);
    ++stats_->cache_publishes;
  }
}

void StagedGate::abandon(const cloud::Deployment& d) noexcept {
  batch_->release_and_sweep(d.nodes);
}

}  // namespace

Scheduler::Scheduler(const system::Mlcd& mlcd, SchedulerOptions options)
    : mlcd_(&mlcd), options_(options) {
  if (options_.threads < 1) options_.threads = 1;
  if (options_.capacity_nodes < 0) {
    throw std::invalid_argument("Scheduler: negative capacity_nodes");
  }
  if (options_.tenant_max_jobs < 0) {
    throw std::invalid_argument("Scheduler: negative tenant_max_jobs");
  }
}

BatchReport Scheduler::run(const Workload& workload) const {
  const std::size_t n = workload.jobs.size();
  if (n == 0) {
    throw std::invalid_argument("Scheduler: empty workload");
  }
  // Admission control: a probe larger than the whole pool would wedge
  // the FIFO queue forever — refuse the workload instead of deadlocking
  // mid-batch. (Searchers never probe beyond the job's max_nodes.)
  if (options_.capacity_nodes > 0) {
    for (const JobSpec& spec : workload.jobs) {
      if (spec.request.max_nodes > options_.capacity_nodes) {
        throw std::invalid_argument(
            "Scheduler: admission refused — job '" + spec.name +
            "' may probe up to " + std::to_string(spec.request.max_nodes) +
            " nodes but the capacity pool holds only " +
            std::to_string(options_.capacity_nodes));
      }
    }
  }

  BatchReport report;
  report.threads = options_.threads;
  report.capacity_nodes = options_.capacity_nodes;
  report.tenant_max_jobs = options_.tenant_max_jobs;
  report.probe_granularity = options_.probe_granularity;
  report.jobs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    report.jobs[i].name = workload.jobs[i].name;
    report.jobs[i].tenant = workload.jobs[i].tenant;
  }

  ProbeCache cache;
  ProbeCache* shared_cache = options_.share_probes ? &cache : nullptr;
  CapacityPool capacity(options_.capacity_nodes);
  // One candidate-scan pool for the whole fleet, sized to the widest
  // job: sessions submit their acquisition scans here instead of each
  // spawning its own workers (trace-neutral; see SearchProblem::
  // scan_pool). Lane threads participate in the batches they submit.
  int scan_threads = 1;
  for (const JobSpec& spec : workload.jobs) {
    scan_threads = std::max(scan_threads, spec.request.threads);
  }
  util::ThreadPool scan_pool(scan_threads);

  const Clock::time_point batch_start = Clock::now();
  int peak_tenant = 0;
  if (options_.probe_granularity) {
    ProbeBatch batch(*mlcd_, options_, workload, report, shared_cache,
                     capacity, scan_pool, batch_start);
    batch.run();
    peak_tenant = batch.peak_tenant();
  } else {
    peak_tenant = run_job_mode(*mlcd_, options_, workload, report,
                               shared_cache, capacity, scan_pool,
                               batch_start);
  }

  report.makespan_seconds = seconds_since(batch_start);
  report.peak_capacity_nodes = capacity.peak_in_use();
  report.peak_tenant_jobs = peak_tenant;
  report.cache = cache.stats();
  MLCD_LOG(kInfo, "service")
      << "batch of " << n << " jobs done in " << report.makespan_seconds
      << " s (" << report.succeeded() << " ok, "
      << report.total_cache_hits() << " cache hits, "
      << report.total_session_parks() << " parks, peak "
      << report.peak_capacity_nodes << " nodes)";
  return report;
}

}  // namespace mlcd::service
