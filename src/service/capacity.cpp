#include "service/capacity.hpp"

#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>

namespace mlcd::service {

namespace {

void validate_request(int nodes, int capacity) {
  if (nodes <= 0) {
    throw std::invalid_argument("CapacityPool: non-positive node count");
  }
  if (capacity > 0 && nodes > capacity) {
    throw std::invalid_argument(
        "CapacityPool: probe of " + std::to_string(nodes) +
        " nodes exceeds the pool of " + std::to_string(capacity) +
        " (the scheduler should have rejected this workload)");
  }
}

}  // namespace

CapacityPool::CapacityPool(int capacity_nodes)
    : capacity_(capacity_nodes > 0 ? capacity_nodes : 0) {
  // Spread the tokens across the stripes up front (remainder to the low
  // stripes) so concurrent gatherers start out on disjoint cache lines.
  const int per = capacity_ / kTokenStripes;
  int rem = capacity_ % kTokenStripes;
  for (TokenStripe& stripe : stripes_) {
    stripe.tokens.store(per + (rem > 0 ? 1 : 0), std::memory_order_relaxed);
    if (rem > 0) --rem;
  }
}

std::size_t CapacityPool::home_stripe() const noexcept {
  // A thread keeps returning tokens to — and gathering first from — the
  // same stripe, so steady-state traffic from different lanes stays on
  // different cache lines.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) &
         static_cast<std::size_t>(kTokenStripes - 1);
}

bool CapacityPool::gather(int nodes) noexcept {
  const std::size_t home = home_stripe();
  int taken = 0;
  for (int i = 0; i < kTokenStripes && taken < nodes; ++i) {
    TokenStripe& stripe =
        stripes_[(home + static_cast<std::size_t>(i)) &
                 static_cast<std::size_t>(kTokenStripes - 1)];
    int cur = stripe.tokens.load(std::memory_order_relaxed);
    while (cur > 0) {
      const int take = cur < nodes - taken ? cur : nodes - taken;
      if (stripe.tokens.compare_exchange_weak(cur, cur - take,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
        taken += take;
        break;
      }
    }
  }
  if (taken == nodes) return true;
  if (taken > 0) scatter(taken);
  return false;
}

void CapacityPool::scatter(int nodes) noexcept {
  stripes_[home_stripe()].tokens.fetch_add(nodes, std::memory_order_acq_rel);
}

void CapacityPool::note_acquired(int nodes) noexcept {
  const int now = in_use_.fetch_add(nodes, std::memory_order_relaxed) + nodes;
  int peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

int CapacityPool::clamp_release(int nodes) noexcept {
  if (nodes <= 0) return 0;
  // CAS loop so concurrent releases can never drive occupancy negative:
  // each release reclaims at most what is actually in use at its
  // linearization point (the reserve-safe arithmetic the revoke ledger
  // depends on).
  int cur = in_use_.load(std::memory_order_relaxed);
  while (true) {
    const int reclaimed = nodes < cur ? nodes : cur;
    if (reclaimed <= 0) return 0;
    if (in_use_.compare_exchange_weak(cur, cur - reclaimed,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      return reclaimed;
    }
  }
}

void CapacityPool::wake_waiters() noexcept {
  // Empty critical section on purpose: taking the mutex orders this
  // notify after any waiter that checked its predicate but has not yet
  // parked on the condition variable, closing the missed-wakeup window.
  { std::lock_guard<std::mutex> lock(mutex_); }
  turn_cv_.notify_all();
}

CapacityPool::Admission CapacityPool::acquire(int nodes) {
  validate_request(nodes, capacity_);
  Admission admission;
  if (capacity_ == 0) {  // unlimited pool: only track occupancy
    note_acquired(nodes);
    return admission;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  std::chrono::steady_clock::time_point wait_start;
  bool waited = false;
  // Strict FIFO: only the head ticket may gather, and it holds the
  // mutex while it does, so at most one blocking gather is in flight —
  // its transient partial holds can only ever starve try_acquire
  // callers, who resolve that through their own serialized retry.
  bool admitted = serving_ == ticket && gather(nodes);
  while (!admitted) {
    if (!waited) {
      waited = true;
      admission.stalled = true;
      ++stalls_;
      wait_start = std::chrono::steady_clock::now();
      // seq_cst publish: a try_acquire that starts after this point
      // must observe the waiter and refuse (FIFO non-overtake). The
      // counter stays raised through every wake-and-recheck until this
      // ticket is admitted.
      waiters_.fetch_add(1, std::memory_order_seq_cst);
      // Dekker handoff with release()/revoke(): they scatter tokens,
      // fence, then read waiters_. We registered, fence, then re-check
      // the tokens. In every interleaving at least one side observes
      // the other — either the releaser sees this waiter and wakes it,
      // or this re-check sees the released tokens — so a final release
      // racing our registration can never strand us parked.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      admitted = serving_ == ticket && gather(nodes);
      if (admitted) break;
    }
    turn_cv_.wait(lock);
    admitted = serving_ == ticket && gather(nodes);
  }
  if (waited) {
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
    admission.wait_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wait_start)
            .count();
    stall_seconds_ += admission.wait_seconds;
  }
  note_acquired(nodes);
  ++serving_;
  // The next ticket holder may already fit alongside us.
  turn_cv_.notify_all();
  return admission;
}

bool CapacityPool::try_acquire(int nodes) {
  validate_request(nodes, capacity_);
  if (capacity_ == 0) {  // unlimited pool: only track occupancy
    note_acquired(nodes);
    return true;
  }
  // A blocked acquire() holds the FIFO head; overtaking it would starve
  // large probes exactly the way the ticket queue exists to prevent. So
  // any queued ticket makes the answer no, before we touch a token.
  if (waiters_.load(std::memory_order_seq_cst) > 0) return false;
  if (gather(nodes)) {
    note_acquired(nodes);
    return true;
  }
  // Shortfall. Either the pool is genuinely full, or concurrent
  // gatherers fragmented each other (each transiently holding partial
  // token sets that sum to enough for one of them). One serialized
  // retry under the pool mutex settles it: every failed gatherer
  // returns its partials *before* queueing here, so the last contender
  // through this section sees the true free-token count — a serialized
  // failure therefore means a real holder exists, and liveness rides on
  // that holder's eventual release.
  std::lock_guard<std::mutex> lock(mutex_);
  if (waiters_.load(std::memory_order_seq_cst) > 0) return false;
  if (gather(nodes)) {
    note_acquired(nodes);
    return true;
  }
  // Our earlier transient partial hold may have made the head ticket's
  // gather fail just before the tokens came back; re-wake it so it
  // re-checks the settled state (we hold the mutex, so this orders
  // after any waiter about to park on the condition variable).
  if (waiters_.load(std::memory_order_seq_cst) > 0) turn_cv_.notify_all();
  return false;
}

void CapacityPool::release(int nodes) noexcept {
  const int reclaimed = clamp_release(nodes);
  if (capacity_ > 0 && reclaimed > 0) scatter(reclaimed);
  // Fence pairs with the one in acquire()'s registration path: after
  // the tokens are back, either we see the registering waiter here and
  // wake it, or its post-registration re-check sees our tokens.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (waiters_.load(std::memory_order_seq_cst) > 0) wake_waiters();
}

void CapacityPool::revoke(int nodes) noexcept {
  // Same reserve-safe arithmetic as release(): occupancy can never go
  // negative, and queued tickets are re-checked head-first. The
  // revocation ledger only counts nodes that were actually in use: a
  // revoke that races a release (or a stray double-revoke) reclaims
  // nothing and must not inflate the stats — revoked_nodes_ would
  // otherwise drift past what the pool ever held.
  const int reclaimed = clamp_release(nodes);
  if (reclaimed > 0) {
    if (capacity_ > 0) scatter(reclaimed);
    revocations_.fetch_add(1, std::memory_order_relaxed);
    revoked_nodes_.fetch_add(reclaimed, std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (waiters_.load(std::memory_order_seq_cst) > 0) wake_waiters();
}

int CapacityPool::in_use() const noexcept {
  return in_use_.load(std::memory_order_relaxed);
}

int CapacityPool::peak_in_use() const noexcept {
  return peak_.load(std::memory_order_relaxed);
}

std::int64_t CapacityPool::stalls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stalls_;
}

double CapacityPool::stall_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stall_seconds_;
}

std::int64_t CapacityPool::revocations() const noexcept {
  return revocations_.load(std::memory_order_relaxed);
}

int CapacityPool::revoked_nodes() const noexcept {
  return revoked_nodes_.load(std::memory_order_relaxed);
}

}  // namespace mlcd::service
