#include "service/capacity.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

namespace mlcd::service {

CapacityPool::CapacityPool(int capacity_nodes)
    : capacity_(capacity_nodes > 0 ? capacity_nodes : 0) {}

CapacityPool::Admission CapacityPool::acquire(int nodes) {
  if (nodes <= 0) {
    throw std::invalid_argument("CapacityPool: non-positive node count");
  }
  Admission admission;
  std::unique_lock<std::mutex> lock(mutex_);
  if (capacity_ == 0) {  // unlimited pool: only track occupancy
    in_use_ += nodes;
    peak_ = std::max(peak_, in_use_);
    return admission;
  }
  if (nodes > capacity_) {
    throw std::invalid_argument(
        "CapacityPool: probe of " + std::to_string(nodes) +
        " nodes exceeds the pool of " + std::to_string(capacity_) +
        " (the scheduler should have rejected this workload)");
  }
  const std::uint64_t ticket = next_ticket_++;
  const bool must_wait = serving_ != ticket || in_use_ + nodes > capacity_;
  if (must_wait) {
    const auto started = std::chrono::steady_clock::now();
    turn_cv_.wait(lock, [&] {
      return serving_ == ticket && in_use_ + nodes <= capacity_;
    });
    admission.stalled = true;
    admission.wait_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    ++stalls_;
    stall_seconds_ += admission.wait_seconds;
  }
  in_use_ += nodes;
  peak_ = std::max(peak_, in_use_);
  ++serving_;
  // The next ticket holder may already fit alongside us.
  turn_cv_.notify_all();
  return admission;
}

bool CapacityPool::try_acquire(int nodes) {
  if (nodes <= 0) {
    throw std::invalid_argument("CapacityPool: non-positive node count");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) {  // unlimited pool: only track occupancy
    in_use_ += nodes;
    peak_ = std::max(peak_, in_use_);
    return true;
  }
  if (nodes > capacity_) {
    throw std::invalid_argument(
        "CapacityPool: probe of " + std::to_string(nodes) +
        " nodes exceeds the pool of " + std::to_string(capacity_) +
        " (the scheduler should have rejected this workload)");
  }
  // A blocked acquire() holds the FIFO head; overtaking it would starve
  // large probes exactly the way the ticket queue exists to prevent.
  if (serving_ != next_ticket_ || in_use_ + nodes > capacity_) {
    return false;
  }
  in_use_ += nodes;
  peak_ = std::max(peak_, in_use_);
  return true;
}

void CapacityPool::release(int nodes) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  in_use_ = std::max(0, in_use_ - nodes);
  turn_cv_.notify_all();
}

void CapacityPool::revoke(int nodes) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  // Same reserve-safe arithmetic as release(): occupancy can never go
  // negative, and notify_all() re-checks queued tickets head-first (the
  // `serving_ == ticket` predicate keeps the FIFO strict even though
  // every waiter wakes). The revocation ledger only counts nodes that
  // were actually in use: a revoke that races a release (or a stray
  // double-revoke) reclaims nothing and must not inflate the stats —
  // revoked_nodes_ would otherwise drift past what the pool ever held.
  const int reclaimed = std::min(std::max(nodes, 0), in_use_);
  in_use_ -= reclaimed;
  if (reclaimed > 0) {
    ++revocations_;
    revoked_nodes_ += reclaimed;
  }
  turn_cv_.notify_all();
}

int CapacityPool::in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_use_;
}

int CapacityPool::peak_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

std::int64_t CapacityPool::stalls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stalls_;
}

double CapacityPool::stall_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stall_seconds_;
}

std::int64_t CapacityPool::revocations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return revocations_;
}

int CapacityPool::revoked_nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return revoked_nodes_;
}

}  // namespace mlcd::service
